/**
 * @file
 * membw_sim — DineroIII-style command-line trace-driven simulator.
 *
 * Drives the membw functional cache (and optionally the
 * minimal-traffic cache) over a synthetic workload or a saved trace:
 *
 *   membw_sim --workload Compress --size 64K --assoc 1 --block 32
 *   membw_sim --workload Swm --l2-size 1M --l2-block 64 --l2-assoc 4
 *   membw_sim --load-trace refs.mbwt --size 8K --mtc
 *   membw_sim --workload Eqntott --save-trace refs.mbwt
 *
 * Long runs are fault tolerant: --checkpoint/--checkpoint-every
 * snapshot the full simulation state at reference granularity,
 * --resume restarts from a snapshot (producing output byte-identical
 * to an uninterrupted run with --stable-json), and SIGINT/SIGTERM
 * drain the current reference, write a final checkpoint plus partial
 * stats, and exit with a distinct code (see --help).
 *
 * Run with --help for the full flag list.
 */

#include <algorithm>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <optional>
#include <string>
#include <vector>

#include "cache/hierarchy.hh"
#include "common/log.hh"
#include "common/parse.hh"
#include "common/stats.hh"
#include "common/table.hh"
#include "exec/collapsed_sweep.hh"
#include "exec/ladder_sweep.hh"
#include "exec/parallel_sweep.hh"
#include "exec/simd.hh"
#include "exec/thread_pool.hh"
#include "exec/time_partition.hh"
#include "mtc/min_cache.hh"
#include "obs/build_info.hh"
#include "obs/emit.hh"
#include "obs/epoch_profiler.hh"
#include "obs/export.hh"
#include "obs/manifest.hh"
#include "obs/profile_sources.hh"
#include "obs/progress.hh"
#include "obs/registry.hh"
#include "obs/trace_export.hh"
#include "obs/trace_span.hh"
#include "resilience/checkpoint.hh"
#include "resilience/exit_codes.hh"
#include "resilience/fault_injection.hh"
#include "resilience/signals.hh"
#include "serve/sweep_service.hh"
#include "trace/block_stream.hh"
#include "trace/trace_io.hh"
#include "trace/trace_mmap.hh"
#include "workloads/workload.hh"

using namespace membw;

namespace {

[[noreturn]] void
usage(int code)
{
    std::printf(
        "membw_sim — trace-driven cache simulator "
        "(Burger/Goodman/Kagi ISCA'96 reproduction)\n\n"
        "Trace source (choose one):\n"
        "  --workload NAME     synthetic kernel (see --list)\n"
        "  --load-trace FILE   previously saved binary trace\n"
        "  --list              list workload names and exit\n\n"
        "Generation:\n"
        "  --scale S           trace-length scale (default 1.0)\n"
        "  --seed N            generation seed (default 42)\n"
        "  --save-trace FILE   write the trace and exit\n"
        "  --compact           use the varint-delta trace format\n"
        "  --trace-format F    raw, compact, or mmap (zero-copy\n"
        "                      columnar format; loaded without "
        "decoding)\n\n"
        "L1 cache (defaults: 64K/1way/32B WB-WA LRU):\n"
        "  --size BYTES        e.g. 64K, 1M, 8192\n"
        "  --assoc N           0 = fully associative\n"
        "  --block BYTES\n"
        "  --sector BYTES      sub-block transfer size (0 = off)\n"
        "  --repl lru|fifo|random\n"
        "  --write wb|wt\n"
        "  --alloc wa|wna|wv\n"
        "  --prefetch          tagged sequential prefetch\n"
        "  --stream-buffers N  Jouppi stream buffers\n"
        "  --stream-depth N    blocks per stream (default 4)\n\n"
        "Optional L2 (enables a two-level hierarchy):\n"
        "  --l2-size BYTES --l2-assoc N --l2-block BYTES\n\n"
        "Analysis:\n"
        "  --mtc               also run the same-size minimal-traffic "
        "cache\n"
        "  --pin-bandwidth MBs physical pin bandwidth for E_pin "
        "(default 800)\n\n"
        "Sweep mode (multi-config, one shared trace):\n"
        "  --sweep-sizes LIST  comma-separated L1 sizes "
        "(e.g. 1K,64K,1M);\n"
        "                      one cell per size x block, fanned "
        "across --jobs\n"
        "                      workers; with --mtc, one extra MTC "
        "cell per size.\n"
        "                      Fully-associative LRU load-only "
        "sweeps collapse\n"
        "                      into a single stack-distance pass; "
        "set-associative\n"
        "                      LRU cells collapse into one-pass "
        "ladder kernels.\n"
        "  --no-collapse       force direct per-cell simulation "
        "(disable the\n"
        "                      exact one-pass sweep engines)\n"
        "  --no-partition      disable intra-trace set partitioning "
        "(the exact\n"
        "                      parallel ladder kernel used when one "
        "config has\n"
        "                      more workers than passes).  Output is\n"
        "                      byte-identical either way.\n"
        "  --sweep-blocks LIST comma-separated block sizes "
        "(default: --block)\n"
        "  --jobs N            sweep workers (default: hardware "
        "concurrency,\n"
        "                      max 256).  Output is byte-identical "
        "at any N.\n"
        "                      --jobs 0 and oversubscribed counts "
        "are rejected\n"
        "                      as invalid input (exit 1).  Sweep "
        "mode excludes\n"
        "                      --checkpoint/--resume and --l2-*.\n\n"
        "Fault tolerance:\n"
        "  --checkpoint FILE   snapshot simulation state to FILE\n"
        "  --checkpoint-every N  snapshot every N references "
        "(default 1000000 when --checkpoint is given)\n"
        "  --resume FILE       restore state from FILE and continue\n"
        "  --watchdog N        per-reference downstream-event budget "
        "(default 1000000; 0 disables)\n"
        "  --sigterm-after N   raise SIGTERM after N references "
        "(deterministic shutdown testing;\n"
        "                      in sweep mode N counts completed "
        "cells and output is\n"
        "                      truncated to exactly N cells at any "
        "--jobs value)\n"
        "  --fault-inject SPEC arm deterministic fault injection; "
        "SPEC is a comma-\n"
        "                      separated list of site:trigger=value "
        "clauses, e.g.\n"
        "                      'enospc:at=1' or "
        "'crash:at=5000,seed=7' (sites and\n"
        "                      triggers: docs/resilience.md)\n\n"
        "Telemetry:\n"
        "  --stats-json FILE   write manifest + full stats as JSON\n"
        "  --stable-json       omit wall-clock fields from the JSON "
        "(byte-identical across reruns)\n"
        "  --stats-every N     stderr progress line every N refs\n"
        "  --trace-out FILE    write a Chrome trace-event JSON "
        "(load in Perfetto;\n"
        "                      inspect with membw_trace_report)\n"
        "  --series-out FILE   append a JSONL time series of live "
        "counters\n"
        "  --profile-out FILE  write per-epoch model telemetry JSON "
        "(per-level\n"
        "                      traffic, R_i, heatmaps; inspect with "
        "membw_profile_report)\n"
        "  --profile-epoch N   simulated references per epoch "
        "(default 65536)\n\n"
        "Provenance:\n"
        "  --version           print tool version and git describe\n"
        "  --build-info        print build flags and runtime SIMD "
        "tier\n\n"
        "%s",
        exitCodeHelp);
    std::exit(code);
}

/** Report a malformed flag value and die: names the flag, echoes the
 * offending value, and shows a working example. */
[[noreturn]] void
badFlag(const std::string &flag, const std::string &value,
        const Error &error, const std::string &example)
{
    fatal("invalid value '" + value + "' for " + flag + ": " +
          error.message + " (example: " + flag + " " + example + ")");
}

Bytes
sizeFlag(const std::string &flag, const std::string &value)
{
    auto r = tryParseSize(value);
    if (!r.ok())
        badFlag(flag, value, r.error(), "64K");
    return r.value();
}

std::uint64_t
countFlag(const std::string &flag, const std::string &value)
{
    auto r = tryParseU64(value);
    if (!r.ok())
        badFlag(flag, value, r.error(), "100000");
    return r.value();
}

unsigned
smallFlag(const std::string &flag, const std::string &value)
{
    auto r = tryParseInt(value, 0, 1 << 20);
    if (!r.ok())
        badFlag(flag, value, r.error(), "4");
    return static_cast<unsigned>(r.value());
}

double
doubleFlag(const std::string &flag, const std::string &value)
{
    auto r = tryParseDouble(value);
    if (!r.ok())
        badFlag(flag, value, r.error(), "1.0");
    return r.value();
}

std::vector<Bytes>
sizeListFlag(const std::string &flag, const std::string &value)
{
    auto r = tryParseSizeList(value);
    if (!r.ok())
        badFlag(flag, value, r.error(), "1K,64K,1M");
    return r.value();
}

unsigned
jobsFlag(const std::string &flag, const std::string &value)
{
    auto r = tryParseJobs(value);
    if (!r.ok())
        badFlag(flag, value, r.error(), "4");
    return r.value();
}

struct Options
{
    std::string workload;
    std::string loadTrace;
    std::string saveTrace;
    TraceFormat format = TraceFormat::Raw;
    double scale = 1.0;
    std::uint64_t seed = 42;
    CacheConfig l1;
    bool haveL2 = false;
    CacheConfig l2;
    bool runMtc = false;
    bool noCollapse = false;
    bool noPartition = false;
    double pinBandwidthMBs = 800.0;
    std::vector<Bytes> sweepSizes;  ///< non-empty = sweep mode
    std::vector<Bytes> sweepBlocks; ///< default: the single --block
    unsigned jobs = defaultJobs();
    std::string statsJson;
    bool stableJson = false;
    std::uint64_t statsEvery = 0;
    std::string traceOut;
    std::string seriesOut;
    std::string profileOut;
    std::uint64_t profileEpoch = 0;
    std::string checkpoint;
    std::uint64_t checkpointEvery = 0;
    std::string resume;
    std::uint64_t eventBudget = 1'000'000;
    std::uint64_t sigtermAfter = 0;
    std::string faultInject;
    /// How the trace reached the simulator ("generated", "binary",
    /// or "mmap"); recorded in non-stable stats-JSON manifests.
    std::string traceFormat = "generated";
};

Options
parse(int argc, char **argv)
{
    Options o;
    o.l1.name = "L1";
    o.l1.size = 64_KiB;
    o.l2.name = "L2";
    o.l2.size = 1_MiB;
    o.l2.assoc = 4;
    o.l2.blockBytes = 64;

    auto need = [&](int &i) -> std::string {
        if (i + 1 >= argc) {
            emitLinef("missing value for %s (run --help for the "
                      "flag list)",
                      argv[i]);
            std::exit(exitUsage);
        }
        return argv[++i];
    };

    for (int i = 1; i < argc; ++i) {
        const std::string a = argv[i];
        if (a == "--help" || a == "-h") {
            usage(exitOk);
        } else if (a == "--version") {
            std::printf("%s\n",
                        formatVersionLine("membw_sim").c_str());
            std::exit(exitOk);
        } else if (a == "--build-info") {
            std::printf("%s", formatBuildInfo(
                                  "membw_sim",
                                  simdTierName(simdTier()))
                                  .c_str());
            std::exit(exitOk);
        } else if (a == "--list") {
            for (const auto &n : allWorkloadNames())
                std::printf("%s\n", n.c_str());
            std::exit(exitOk);
        } else if (a == "--workload") {
            o.workload = need(i);
        } else if (a == "--load-trace") {
            o.loadTrace = need(i);
        } else if (a == "--save-trace") {
            o.saveTrace = need(i);
        } else if (a == "--compact") {
            o.format = TraceFormat::Compact;
        } else if (a == "--trace-format") {
            const std::string v = need(i);
            o.format = v == "raw"       ? TraceFormat::Raw
                       : v == "compact" ? TraceFormat::Compact
                       : v == "mmap"
                           ? TraceFormat::Mmap
                           : (fatal("invalid value '" + v +
                                    "' for --trace-format: expected "
                                    "raw, compact, or mmap"),
                              TraceFormat::Raw);
        } else if (a == "--scale") {
            o.scale = doubleFlag(a, need(i));
        } else if (a == "--seed") {
            o.seed = countFlag(a, need(i));
        } else if (a == "--size") {
            o.l1.size = sizeFlag(a, need(i));
        } else if (a == "--assoc") {
            o.l1.assoc = smallFlag(a, need(i));
        } else if (a == "--block") {
            o.l1.blockBytes = sizeFlag(a, need(i));
        } else if (a == "--sector") {
            o.l1.sectorBytes = sizeFlag(a, need(i));
        } else if (a == "--repl") {
            const std::string v = need(i);
            o.l1.repl = v == "lru"    ? ReplPolicy::LRU
                        : v == "fifo" ? ReplPolicy::FIFO
                        : v == "random"
                            ? ReplPolicy::Random
                            : (fatal("invalid value '" + v +
                                     "' for --repl: expected lru, "
                                     "fifo, or random"),
                               ReplPolicy::LRU);
        } else if (a == "--write") {
            const std::string v = need(i);
            o.l1.write = v == "wb"   ? WritePolicy::WriteBack
                         : v == "wt" ? WritePolicy::WriteThrough
                                     : (fatal("invalid value '" + v +
                                              "' for --write: "
                                              "expected wb or wt"),
                                        WritePolicy::WriteBack);
        } else if (a == "--alloc") {
            const std::string v = need(i);
            o.l1.alloc = v == "wa"    ? AllocPolicy::WriteAllocate
                         : v == "wna" ? AllocPolicy::WriteNoAllocate
                         : v == "wv"  ? AllocPolicy::WriteValidate
                                      : (fatal("invalid value '" + v +
                                               "' for --alloc: "
                                               "expected wa, wna, or "
                                               "wv"),
                                         AllocPolicy::WriteAllocate);
        } else if (a == "--prefetch") {
            o.l1.taggedPrefetch = true;
        } else if (a == "--stream-buffers") {
            o.l1.streamBuffers = smallFlag(a, need(i));
        } else if (a == "--stream-depth") {
            o.l1.streamDepth = smallFlag(a, need(i));
        } else if (a == "--l2-size") {
            o.l2.size = sizeFlag(a, need(i));
            o.haveL2 = true;
        } else if (a == "--l2-assoc") {
            o.l2.assoc = smallFlag(a, need(i));
            o.haveL2 = true;
        } else if (a == "--l2-block") {
            o.l2.blockBytes = sizeFlag(a, need(i));
            o.haveL2 = true;
        } else if (a == "--mtc") {
            o.runMtc = true;
        } else if (a == "--no-collapse") {
            o.noCollapse = true;
        } else if (a == "--no-partition") {
            o.noPartition = true;
        } else if (a == "--sweep-sizes") {
            o.sweepSizes = sizeListFlag(a, need(i));
        } else if (a == "--sweep-blocks") {
            o.sweepBlocks = sizeListFlag(a, need(i));
        } else if (a == "--jobs") {
            o.jobs = jobsFlag(a, need(i));
        } else if (a == "--pin-bandwidth") {
            o.pinBandwidthMBs = doubleFlag(a, need(i));
        } else if (a == "--stats-json") {
            o.statsJson = need(i);
        } else if (a == "--stable-json") {
            o.stableJson = true;
        } else if (a == "--stats-every") {
            o.statsEvery = countFlag(a, need(i));
        } else if (a == "--trace-out") {
            o.traceOut = need(i);
        } else if (a == "--series-out") {
            o.seriesOut = need(i);
        } else if (a == "--profile-out") {
            o.profileOut = need(i);
        } else if (a == "--profile-epoch") {
            o.profileEpoch = countFlag(a, need(i));
        } else if (a == "--checkpoint") {
            o.checkpoint = need(i);
        } else if (a == "--checkpoint-every") {
            o.checkpointEvery = countFlag(a, need(i));
        } else if (a == "--resume") {
            o.resume = need(i);
        } else if (a == "--watchdog") {
            o.eventBudget = countFlag(a, need(i));
        } else if (a == "--sigterm-after") {
            o.sigtermAfter = countFlag(a, need(i));
        } else if (a == "--fault-inject") {
            o.faultInject = need(i);
        } else {
            emitLinef("unknown flag '%s' (run --help for the flag "
                      "list)",
                      a.c_str());
            std::exit(exitUsage);
        }
    }
    if (o.workload.empty() && o.loadTrace.empty())
        usage(exitUsage);
    if (!o.checkpoint.empty() && o.checkpointEvery == 0)
        o.checkpointEvery = 1'000'000;
    if (o.profileEpoch && o.profileOut.empty())
        fatal("--profile-epoch requires --profile-out");
    if (!o.profileOut.empty() && o.profileEpoch == 0)
        o.profileEpoch = 65536;
    return o;
}

/** Simulation phases, in execution order. */
enum : std::uint8_t
{
    phaseHierarchy = 0,
    phaseMtc = 1,
};

/**
 * Everything the run needs to persist and verify.  The identity
 * fields (trace CRC + config digest) prove a --resume replays the
 * same input under the same configuration.
 */
struct RunState
{
    std::uint32_t traceCrc = 0;
    std::uint64_t configDigest = 0;
    std::uint8_t phase = phaseHierarchy;
    std::uint64_t cursor = 0; ///< refs consumed in the active phase
    TrafficResult hierResult; ///< valid once phase > phaseHierarchy
};

void
writeCheckpoint(const Options &o, const RunState &state,
                const CacheHierarchy *hier, const MinCacheSim *mtc)
{
    MEMBW_SPAN("checkpoint.write");
    ChkWriter w;
    w.beginSection(chkTag("META"));
    w.str("membw_sim");
    w.u32(state.traceCrc);
    w.u64(state.configDigest);
    w.u8(state.phase);
    w.u64(state.cursor);
    w.endSection();

    if (state.phase == phaseHierarchy) {
        hier->saveState(w);
    } else {
        saveTrafficResult(w, state.hierResult);
        mtc->saveState(w);
    }
    if (const EpochProfiler *prof = profilerActive())
        prof->saveState(w);

    auto result = w.writeFile(o.checkpoint);
    if (!result.ok())
        fatal("checkpoint failed: " + result.error().describe());
}

void
loadCheckpoint(const Options &o, RunState &state, CacheHierarchy &hier,
               MinCacheSim *mtc)
{
    MEMBW_SPAN("checkpoint.load");
    auto opened = ChkReader::fromFile(o.resume);
    if (!opened.ok())
        fatal("cannot resume from '" + o.resume +
              "': " + opened.error().describe());
    ChkReader r = std::move(opened.value());

    r.enterSection(chkTag("META"));
    const std::string tool = r.str();
    const std::uint32_t crc = r.u32();
    const std::uint64_t digest = r.u64();
    state.phase = r.u8();
    state.cursor = r.u64();
    r.leaveSection();

    if (r.failed())
        fatal("cannot resume from '" + o.resume +
              "': " + r.error().describe());
    if (tool != "membw_sim")
        fatal("cannot resume from '" + o.resume +
              "': checkpoint was written by '" + tool + "'");
    if (crc != state.traceCrc)
        fatal("cannot resume from '" + o.resume +
              "': checkpoint was taken over a different trace "
              "(CRC mismatch — same workload/scale/seed or trace "
              "file required)");
    if (digest != state.configDigest)
        fatal("cannot resume from '" + o.resume +
              "': checkpoint was taken under a different cache "
              "configuration");
    if (state.phase == phaseMtc && !o.runMtc)
        fatal("cannot resume from '" + o.resume +
              "': checkpoint is in the MTC phase but --mtc was not "
              "given");

    if (state.phase == phaseHierarchy) {
        hier.loadState(r);
    } else {
        loadTrafficResult(r, state.hierResult);
        if (mtc)
            mtc->loadState(r);
    }
    if (EpochProfiler *prof = profilerActive()) {
        if (r.remaining() == 0)
            fatal("cannot resume from '" + o.resume +
                  "': checkpoint carries no profiler state (was "
                  "the interrupted run started without "
                  "--profile-out?)");
        prof->loadState(r);
    } else if (r.remaining() != 0) {
        fatal("cannot resume from '" + o.resume +
              "': checkpoint carries profiler state; rerun with "
              "the interrupted run's --profile-out/--profile-epoch");
    }
    if (r.failed())
        fatal("cannot resume from '" + o.resume +
              "': " + r.error().describe());
}

void
writeStatsJson(const Options &o, const RunState &state,
               const Trace &trace, const TrafficResult *traffic,
               const MinCacheStats *mtc, double wallSeconds,
               bool interrupted)
{
    StatsRegistry registry;
    if (traffic)
        publishStats(registry, *traffic);
    if (mtc) {
        StatsGroup mtcGroup = registry.group("mtc");
        publishMinCacheStats(mtcGroup, *mtc);
    }

    RunManifest manifest;
    manifest.tool = "membw_sim";
    manifest.workload = o.workload.empty() ? o.loadTrace : o.workload;
    manifest.config = o.l1.describe();
    if (o.haveL2)
        manifest.config += " + " + o.l2.describe();
    manifest.seed = o.seed;
    manifest.scale = o.scale;
    manifest.refs = trace.size();
    manifest.wallSeconds = wallSeconds;
    manifest.interrupted = interrupted;
    manifest.omitTiming = o.stableJson;
    if (interrupted) {
        manifest.set("interrupted_phase",
                     state.phase == phaseHierarchy ? "hierarchy"
                                                   : "mtc");
    }
    if (o.runMtc)
        manifest.set("mtc_config", canonicalMtc(o.l1.size).describe());
    // Execution provenance (how the trace arrived, which SIMD tier
    // served it) describes this run rather than what it computed, so
    // it is omitted under --stable-json like wall_seconds.
    if (!o.stableJson) {
        manifest.set("trace_format", o.traceFormat);
        manifest.set("simd_tier", simdTierName(simdTier()));
    }
    writeProfileManifest(manifest, o.stableJson);

    JsonWriter w;
    w.beginObject();
    w.key("manifest");
    manifest.write(w);
    w.key("stats");
    writeStatsArray(registry, w);
    w.endObject();
    writeFileOrDie(o.statsJson, w.str());
}

/**
 * Drain point: called between references once a SIGINT/SIGTERM has
 * been latched.  Persists a final checkpoint and partial stats, then
 * exits with the interrupted code.
 */
[[noreturn]] void
shutdownNow(const Options &o, const RunState &state, const Trace &trace,
            const CacheHierarchy *hier, const MinCacheSim *mtc,
            double wallSeconds)
{
    tracingInstant("shutdown", shutdownSignalName());
    SeriesWriter::global().sample(
        {{"refs", static_cast<double>(state.cursor)},
         {"phase", static_cast<double>(state.phase)}},
        /*force=*/true);
    emitLinef("\n%s received: drained reference %llu, shutting "
              "down",
              shutdownSignalName(),
              static_cast<unsigned long long>(state.cursor));
    if (!o.checkpoint.empty()) {
        writeCheckpoint(o, state, hier, mtc);
        emitLinef("final checkpoint: %s", o.checkpoint.c_str());
    }
    if (!o.statsJson.empty()) {
        // Partial snapshot: hierarchy stats straight off the live
        // caches (no flush), or the completed hierarchy result plus
        // a conservative MTC snapshot.
        if (state.phase == phaseHierarchy) {
            const TrafficResult partial = hier->summarize();
            writeStatsJson(o, state, trace, &partial, nullptr,
                           wallSeconds, true);
        } else {
            const MinCacheStats partial = mtc->finalize();
            writeStatsJson(o, state, trace, &state.hierResult,
                           &partial, wallSeconds, true);
        }
        emitLinef("partial stats: %s", o.statsJson.c_str());
    }
    std::exit(exitInterrupted);
}

/**
 * Multi-config sweep mode: one cell per (size, block) pair — plus one
 * MTC cell per size with --mtc — fanned across --jobs workers over
 * the shared read-only trace.  Results are consumed in submission
 * order, so stdout and --stats-json are byte-identical at any --jobs
 * value; --sigterm-after N truncates output to exactly N completed
 * cells for jobs-independent shutdown testing.
 *
 * The engine is the shared serve-layer pair
 * executeSweep()/renderSweepStatsJson() — the same calls the
 * membw_served daemon makes, which is what keeps served responses
 * byte-identical to this tool's --stats-json output.  The tool owns
 * only stdout narration, telemetry sampling, the SIGTERM wiring, and
 * exit codes.
 */
int
runSweep(const Options &o, const Trace &trace,
         const MappedTrace *mapped)
{
    if (!o.checkpoint.empty() || !o.resume.empty())
        fatal("sweep mode does not support --checkpoint/--resume: "
              "individual cells are cheap to rerun, so drop those "
              "flags (or run single-config)");
    if (o.haveL2)
        fatal("sweep mode is single-level: drop the --l2-* flags");
    if (!o.profileOut.empty())
        fatal("sweep mode does not support --profile-out: cells run "
              "concurrently and share no reference clock (profile a "
              "single-config run instead)");

    SweepRequest req;
    req.workload = o.workload;
    req.label = o.workload.empty() ? o.loadTrace : o.workload;
    req.scale = o.scale;
    req.seed = o.seed;
    req.l1 = o.l1;
    req.runMtc = o.runMtc;
    req.sizes = o.sweepSizes;
    req.blocks = o.sweepBlocks;
    req.stableJson = o.stableJson;
    req.noCollapse = o.noCollapse;
    req.noPartition = o.noPartition;
    req.eventBudget = o.eventBudget;
    req.traceFormat = o.traceFormat;

    const std::vector<Bytes> blocks = resolveSweepBlocks(req);
    const std::size_t nHier = req.sizes.size() * blocks.size();
    const std::size_t nCells =
        nHier + (o.runMtc ? req.sizes.size() : 0);

    // Pre-validate every cell geometry so the diagnostic lands
    // before any sweep banner (executeSweep validates again; both
    // passes are cheap).
    for (std::size_t i = 0; i < nHier; ++i)
        sweepConfigFor(req, blocks, i).validate();

    // The worker count goes to stderr: stdout must stay
    // byte-identical at any --jobs value.
    std::printf("\nsweep: %zu cells (%zu sizes x %zu blocks%s)\n",
                nCells, req.sizes.size(), blocks.size(),
                o.runMtc ? " + MTC" : "");
    emitLinef("membw_sim: sweep using %u worker%s", o.jobs,
              o.jobs == 1 ? "" : "s");

    SweepExecOptions eopts;
    eopts.jobs = o.jobs;
    eopts.mapped = mapped;
    // A latched SIGINT/SIGTERM stops scheduling further cells; the
    // daemon deliberately leaves this hook unset (drained requests
    // must not look interrupted), so the wiring lives here.
    eopts.cancel = [] { return shutdownRequested() != 0; };
    eopts.sigtermAfter = o.sigtermAfter;
    eopts.onPlan = [&](const CollapsedSweep &collapsed,
                       std::size_t nHierPlanned, std::size_t) {
        if (collapsed.mattsonPasses() == 1)
            std::printf("FA-LRU sweep collapsed into one "
                        "stack-distance pass\n");
        else if (collapsed.mattsonPasses() > 1)
            std::printf("FA-LRU sweep collapsed into %zu "
                        "stack-distance passes\n",
                        collapsed.mattsonPasses());
        if (collapsed.ladderPasses() > 0)
            emitLinef("membw_sim: %zu of %zu cells precomputed "
                      "by %zu ladder-kernel pass%s",
                      collapsed.covered(), nHierPlanned,
                      collapsed.ladderPasses(),
                      collapsed.ladderPasses() == 1 ? "" : "es");
    };
    eopts.onPrefix = [&](std::size_t prefix) {
        // Serialized under the sweep mutex, so sampling here is safe.
        SeriesWriter::global().sample(
            {{"cells_done", static_cast<double>(prefix)},
             {"cells_total", static_cast<double>(nCells)},
             {"pool_queue_depth",
              static_cast<double>(poolQueueDepth())},
             {"pool_busy_workers",
              static_cast<double>(poolBusyWorkers())}});
        if (o.statsEvery)
            emitLinef("membw_sim: sweep %zu/%zu cells", prefix,
                      nCells);
        if (o.sigtermAfter && prefix == o.sigtermAfter)
            std::raise(SIGTERM);
    };

    SweepOutcome outcome = executeSweep(req, trace, eopts);
    SeriesWriter::global().sample(
        {{"cells_done", static_cast<double>(outcome.completed)},
         {"cells_total", static_cast<double>(nCells)}},
        /*force=*/true);
    // A signal latched after the last cancel poll still counts.
    outcome.interrupted =
        outcome.interrupted || shutdownRequested() != 0;

    const std::size_t usable = outcome.usable;
    const std::vector<char> &cellFailed = outcome.cellFailed;
    const bool interrupted = outcome.interrupted;
    const bool degraded = outcome.degraded;

    TextTable t;
    std::vector<std::string> hdr{"size"};
    for (Bytes b : blocks)
        hdr.push_back("R @" + formatSize(b));
    if (o.runMtc)
        hdr.push_back("MTC KB");
    t.header(hdr);
    for (std::size_t si = 0; si < req.sizes.size(); ++si) {
        std::vector<std::string> row{formatSize(req.sizes[si])};
        for (std::size_t bi = 0; bi < blocks.size(); ++bi) {
            const std::size_t idx = si * blocks.size() + bi;
            row.push_back(
                idx >= usable ? "..."
                : cellFailed[idx]
                    ? "fail"
                    : fixed(outcome.cells[idx].traffic.trafficRatio,
                            4));
        }
        if (o.runMtc) {
            const std::size_t idx = nHier + si;
            row.push_back(
                idx >= usable ? "..."
                : cellFailed[idx]
                    ? "fail"
                    : std::to_string(
                          outcome.cells[idx].mtc.trafficBelow() /
                          1024) +
                          "K");
        }
        t.row(row);
    }
    std::printf("\n%s\n", t.render().c_str());
    if (interrupted)
        std::printf("sweep interrupted: %zu of %zu cells completed\n",
                    usable, nCells);
    if (degraded)
        std::printf("sweep degraded: %zu of %zu cells failed\n",
                    outcome.nFailed, nCells);

    if (!o.statsJson.empty())
        writeFileOrDie(o.statsJson,
                       renderSweepStatsJson(req, trace.size(),
                                            outcome));
    // Precedence: interruption outranks degradation — an interrupted
    // degraded sweep resumes first and reports failures on the rerun.
    if (interrupted)
        return exitInterrupted;
    return degraded ? exitDegraded : exitOk;
}

} // namespace

int
main(int argc, char **argv)
{
    try {
        Options o = parse(argc, argv);
        if (!o.faultInject.empty()) {
            auto armed = armFaultPlan(o.faultInject);
            if (!armed.ok())
                fatal("invalid --fault-inject: " +
                      armed.error().describe());
        }
        installShutdownHandlers();
        if (!o.traceOut.empty())
            tracingInit(o.traceOut, "membw_sim");
        if (!o.seriesOut.empty())
            SeriesWriter::global().init(o.seriesOut);
        if (!o.profileOut.empty() && o.sweepSizes.empty())
            profilerInit(o.profileOut, o.profileEpoch)
                .setVerbose(logEnabled(LogLevel::Debug));

        Trace trace;
        // Zero-copy path: an mmap-format trace stays mapped for the
        // sweep engines (BlockStreams borrow its columns) and is
        // materialized once for everything that walks MemRefs.
        std::optional<MappedTrace> mapped;
        if (!o.loadTrace.empty()) {
            auto m = tryLoadMappedTrace(o.loadTrace);
            if (m.ok()) {
                mapped = std::move(m.value());
                trace = mapped->materialize();
                o.traceFormat = "mmap";
            } else if (m.error().code == Errc::BadMagic) {
                trace = loadTrace(o.loadTrace); // raw/compact
                o.traceFormat = "binary";
            } else {
                fatal("cannot load trace '" + o.loadTrace +
                      "': " + m.error().describe());
            }
            std::printf("trace: %s (%zu refs)\n", o.loadTrace.c_str(),
                        trace.size());
        } else {
            MEMBW_SPAN_D("trace.generate", o.workload);
            WorkloadParams p;
            p.scale = o.scale;
            p.seed = o.seed;
            trace = makeWorkload(o.workload)->trace(p);
            std::printf("workload: %s (%zu refs, scale %.2f, "
                        "seed %llu)\n",
                        o.workload.c_str(), trace.size(), o.scale,
                        static_cast<unsigned long long>(o.seed));
        }

        if (!o.saveTrace.empty()) {
            saveTrace(trace, o.saveTrace, o.format);
            std::printf("saved trace to %s\n", o.saveTrace.c_str());
            return exitOk;
        }

        if (!o.sweepSizes.empty())
            return runSweep(o, trace,
                            mapped ? &*mapped : nullptr);

        std::vector<CacheConfig> levels{o.l1};
        if (o.haveL2)
            levels.push_back(o.l2);

        RunState state;
        state.traceCrc = traceCrc32(trace);
        {
            std::string identity = o.l1.describe();
            if (o.haveL2)
                identity += " + " + o.l2.describe();
            identity += o.runMtc ? " +mtc" : "";
            state.configDigest = fnv1a64(identity);
        }

        CacheHierarchy hier(levels);
        hier.setEventBudget(o.eventBudget);

        // The MTC's next-use pass is O(n) over the trace, so only
        // build the simulator when the phase can actually run.
        std::optional<MinCacheSim> mtcSim;
        if (o.runMtc)
            mtcSim.emplace(trace, canonicalMtc(o.l1.size));

        if (!o.resume.empty()) {
            loadCheckpoint(o, state, hier,
                           o.runMtc ? &*mtcSim : nullptr);
            std::printf("resumed from %s (%s phase, ref %llu)\n",
                        o.resume.c_str(),
                        state.phase == phaseHierarchy ? "hierarchy"
                                                      : "mtc",
                        static_cast<unsigned long long>(
                            state.cursor));
        }

        MEMBW_SPAN("run");
        WallTimer timer;
        EpochProfiler *const prof = profilerActive();
        ProgressMeter meter("membw_sim", o.statsEvery);
        std::uint64_t lastCkptRef = state.cursor;
        meter.setAnnotator([&] {
            char buf[96];
            if (o.checkpointEvery) {
                std::snprintf(
                    buf, sizeof(buf),
                    "ckpt age %llu refs | wd slack %.0f%%",
                    static_cast<unsigned long long>(state.cursor -
                                                    lastCkptRef),
                    100.0 * hier.eventHeadroom());
            } else {
                std::snprintf(buf, sizeof(buf), "wd slack %.0f%%",
                              100.0 * hier.eventHeadroom());
            }
            return std::string(buf);
        });

        const std::size_t total = trace.size();

        // Single-config parallel fast path: with spare workers and no
        // per-reference obligations, the hierarchy phase runs the
        // exact set-partitioned ladder kernel (time_partition.hh)
        // instead of the per-reference loop below — byte-identical
        // output at any --jobs value; --no-partition forces the loop
        // for the equivalence diff.  Flags that observe or persist
        // per-reference state need the loop and keep the serial path.
        const bool perRefState =
            !o.checkpoint.empty() || !o.resume.empty() ||
            o.sigtermAfter != 0 || o.statsEvery != 0 ||
            !o.profileOut.empty() || !o.seriesOut.empty() ||
            !o.faultInject.empty();
        if (state.phase == phaseHierarchy && o.jobs > 1 &&
            !o.noPartition && !perRefState && !o.haveL2 &&
            ladderKernelSupported(o.l1)) {
            // All-word traces (the QPT recording invariant — every
            // generated workload qualifies) replay fused straight
            // off the MemRef array; the fused kernels validate the
            // invariant inline, so the attempt needs no eligibility
            // pre-scan and a trace with non-word references aborts
            // it at the first violation, falling back to a decoded
            // BlockStream.  Both are byte-identical to the serial
            // loop.
            MEMBW_SPAN("phase.hierarchy.partitioned");
            PartitionOptions popt;
            popt.jobs = o.jobs;
            popt.cancel = [] { return shutdownRequested(); };
            std::optional<TrafficResult> res;
            bool eligible = false;
            TrafficResult word;
            switch (partitionedLadderRunWord(trace, o.l1, popt,
                                             word)) {
            case WordRunOutcome::Done:
                eligible = true;
                res = word;
                break;
            case WordRunOutcome::Interrupted:
                eligible = true;
                break;
            case WordRunOutcome::NotAllWord: {
                const BlockStream stream =
                    mapped ? buildBlockStream(*mapped, o.l1.blockBytes)
                           : buildBlockStream(trace, o.l1.blockBytes);
                if (ladderCollapsible(stream, {o.l1})) {
                    eligible = true;
                    res = partitionedLadderRun(stream, o.l1, popt);
                }
                break;
            }
            }
            if (eligible) {
                emitLinef("membw_sim: set-partitioned hierarchy "
                          "pass across %u workers (%u partitions)",
                          o.jobs,
                          partitionPartsFor(o.l1, o.jobs, 0, 1));
                if (!res) {
                    emitLinef("\n%s received: partitioned pass "
                              "abandoned, shutting down",
                              shutdownSignalName());
                    return exitInterrupted;
                }
                state.hierResult = *res;
                state.phase = phaseMtc;
                state.cursor = 0;
            }
        }

        // Phase 0: the functional hierarchy, reference by reference.
        if (state.phase == phaseHierarchy) {
            MEMBW_SPAN("phase.hierarchy");
            if (prof) {
                // On --resume this re-enters the interrupted run and
                // re-attaches the sources over the restored prev
                // snapshots; a fresh run snapshots the zero state.
                prof->beginRun("hierarchy");
                prof->setRunAttr("pin_mbs", o.pinBandwidthMBs);
                attachHierarchySources(*prof, hier);
                hier.attachProbe(prof);
            }
            for (std::size_t i = state.cursor; i < total; ++i) {
                hier.access(trace[i]);
                state.cursor = i + 1;
                // 'crash:at=N' dies here (as if kill -9) once the
                // run's absolute position crosses N, so the torture
                // harness can cut a run at any reference.
                (void)MEMBW_FAULT_POINT_MARK("crash", state.cursor);
                // Close any epoch ending here before a checkpoint at
                // the same reference can be written, so resumed runs
                // replay identical boundaries.
                if (prof)
                    prof->advanceTo(state.cursor);
                meter.tick(state.cursor, total);
                // Stride-gated so the sampler's clock read stays off
                // the per-reference path.
                if ((state.cursor & 0xFFFF) == 0)
                    SeriesWriter::global().sample(
                        {{"refs",
                          static_cast<double>(state.cursor)},
                         {"ckpt_age_refs",
                          static_cast<double>(state.cursor -
                                              lastCkptRef)},
                         {"wd_slack", hier.eventHeadroom()}});
                if (o.sigtermAfter && state.cursor == o.sigtermAfter)
                    std::raise(SIGTERM);
                if (!o.checkpoint.empty() &&
                    state.cursor % o.checkpointEvery == 0) {
                    writeCheckpoint(o, state, &hier, nullptr);
                    lastCkptRef = state.cursor;
                }
                if (shutdownRequested())
                    shutdownNow(o, state, trace, &hier, nullptr,
                                timer.seconds());
            }
            hier.flush();
            if (prof) {
                // The final (possibly partial) epoch picks up the
                // flush write-backs, so Σ(epochs) == aggregates.
                prof->endRun(total);
                hier.attachProbe(nullptr);
            }
            state.hierResult = hier.summarize();
            state.phase = phaseMtc;
            state.cursor = 0;
            lastCkptRef = 0;
        }

        const TrafficResult &r = state.hierResult;

        std::printf("\nL1: %s\n", o.l1.describe().c_str());
        if (o.haveL2)
            std::printf("L2: %s\n", o.l2.describe().c_str());
        std::printf("  accesses        : %llu\n",
                    static_cast<unsigned long long>(r.l1.accesses));
        std::printf("  miss rate       : %.4f\n", r.l1.missRate());
        std::printf("  request bytes   : %llu\n",
                    static_cast<unsigned long long>(r.requestBytes));
        std::printf("  pin bytes       : %llu\n",
                    static_cast<unsigned long long>(r.pinBytes));
        for (std::size_t i = 0; i < r.levelRatios.size(); ++i)
            std::printf("  R (level %zu)     : %.4f\n", i + 1,
                        r.levelRatios[i]);
        std::printf("  total R         : %.4f\n", r.trafficRatio);
        std::printf("  E_pin           : %.1f MB/s (physical %.1f)\n",
                    o.pinBandwidthMBs / r.trafficRatio,
                    o.pinBandwidthMBs);

        MinCacheStats mtc;
        if (o.runMtc) {
            // Phase 1: the minimal-traffic cache, in checkpointable
            // slices.
            const std::size_t slice =
                o.checkpointEvery
                    ? static_cast<std::size_t>(o.checkpointEvery)
                    : (o.statsEvery
                           ? static_cast<std::size_t>(o.statsEvery)
                           : std::size_t{1} << 20);
            MEMBW_SPAN("phase.mtc");
            if (prof) {
                prof->beginRun("mtc");
                prof->addSource(
                    "mtc", minCacheMetricNames(),
                    [sim = &*mtcSim] {
                        // Monotonic raw counters mid-run; once the
                        // trace is done the snapshot switches to
                        // finalize() so the last epoch carries the
                        // dirty flush exactly once.
                        return snapshotMinCacheStats(
                            sim->done() ? sim->finalize()
                                        : sim->stats(),
                            sim->victimScanPops());
                    });
                mtcSim->setProbe(prof);
            }
            while (!mtcSim->done()) {
                const std::size_t before = mtcSim->cursor();
                std::size_t stepN = slice;
                if (prof) // stop exactly on epoch boundaries
                    stepN = static_cast<std::size_t>(
                        std::min<std::uint64_t>(
                            stepN, prof->refsToNextTarget(before)));
                mtcSim->step(stepN);
                state.cursor = mtcSim->cursor();
                // Absolute run position continues past the hierarchy
                // phase so one crash ref addresses either phase.
                (void)MEMBW_FAULT_POINT_MARK(
                    "crash", trace.size() + state.cursor);
                if (prof)
                    prof->advanceTo(state.cursor);
                meter.tick(state.cursor, total);
                SeriesWriter::global().sample(
                    {{"refs", static_cast<double>(state.cursor)},
                     {"ckpt_age_refs",
                      static_cast<double>(state.cursor -
                                          lastCkptRef)},
                     {"phase", 1.0}});
                if (o.sigtermAfter && before < o.sigtermAfter &&
                    state.cursor >= o.sigtermAfter)
                    std::raise(SIGTERM);
                if (!o.checkpoint.empty() && !mtcSim->done() &&
                    state.cursor - lastCkptRef >=
                        o.checkpointEvery) {
                    writeCheckpoint(o, state, nullptr, &*mtcSim);
                    lastCkptRef = state.cursor;
                }
                if (shutdownRequested())
                    shutdownNow(o, state, trace, nullptr, &*mtcSim,
                                timer.seconds());
            }
            mtc = mtcSim->finalize();
            if (prof) {
                prof->endRun(state.cursor);
                mtcSim->setProbe(nullptr);
            }

            const double g = static_cast<double>(r.levelTraffic[0]) /
                             static_cast<double>(mtc.trafficBelow());
            std::printf("\nMTC (%s):\n",
                        canonicalMtc(o.l1.size).describe().c_str());
            std::printf("  MTC traffic     : %llu bytes\n",
                        static_cast<unsigned long long>(
                            mtc.trafficBelow()));
            std::printf("  inefficiency G  : %.2f\n", g);
            std::printf("  OE_pin          : %.1f MB/s\n",
                        o.pinBandwidthMBs * g / r.levelRatios[0]);
        }

        if (!o.statsJson.empty())
            writeStatsJson(o, state, trace, &r,
                           o.runMtc ? &mtc : nullptr, timer.seconds(),
                           false);
        if (prof) {
            profilerWriteNow("membw_sim");
            std::printf("profile: %s\n", o.profileOut.c_str());
        }
        return exitOk;
    } catch (const WatchdogError &e) {
        emitLine(e.what());
        return exitWatchdog;
    } catch (const FatalError &e) {
        emitLine(e.what());
        return exitFatal;
    }
}
