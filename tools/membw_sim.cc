/**
 * @file
 * membw_sim — DineroIII-style command-line trace-driven simulator.
 *
 * Drives the membw functional cache (and optionally the
 * minimal-traffic cache) over a synthetic workload or a saved trace:
 *
 *   membw_sim --workload Compress --size 64K --assoc 1 --block 32
 *   membw_sim --workload Swm --l2-size 1M --l2-block 64 --l2-assoc 4
 *   membw_sim --load-trace refs.mbwt --size 8K --mtc
 *   membw_sim --workload Eqntott --save-trace refs.mbwt
 *
 * Run with --help for the full flag list.
 */

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "cache/hierarchy.hh"
#include "common/log.hh"
#include "mtc/min_cache.hh"
#include "obs/export.hh"
#include "obs/manifest.hh"
#include "obs/progress.hh"
#include "obs/registry.hh"
#include "trace/trace_io.hh"
#include "workloads/workload.hh"

using namespace membw;

namespace {

[[noreturn]] void
usage(int code)
{
    std::printf(
        "membw_sim — trace-driven cache simulator "
        "(Burger/Goodman/Kagi ISCA'96 reproduction)\n\n"
        "Trace source (choose one):\n"
        "  --workload NAME     synthetic kernel (see --list)\n"
        "  --load-trace FILE   previously saved binary trace\n"
        "  --list              list workload names and exit\n\n"
        "Generation:\n"
        "  --scale S           trace-length scale (default 1.0)\n"
        "  --seed N            generation seed (default 42)\n"
        "  --save-trace FILE   write the trace and exit\n"
        "  --compact           use the varint-delta trace format\n\n"
        "L1 cache (defaults: 64K/1way/32B WB-WA LRU):\n"
        "  --size BYTES        e.g. 64K, 1M, 8192\n"
        "  --assoc N           0 = fully associative\n"
        "  --block BYTES\n"
        "  --sector BYTES      sub-block transfer size (0 = off)\n"
        "  --repl lru|fifo|random\n"
        "  --write wb|wt\n"
        "  --alloc wa|wna|wv\n"
        "  --prefetch          tagged sequential prefetch\n"
        "  --stream-buffers N  Jouppi stream buffers\n"
        "  --stream-depth N    blocks per stream (default 4)\n\n"
        "Optional L2 (enables a two-level hierarchy):\n"
        "  --l2-size BYTES --l2-assoc N --l2-block BYTES\n\n"
        "Analysis:\n"
        "  --mtc               also run the same-size minimal-traffic "
        "cache\n"
        "  --pin-bandwidth MBs physical pin bandwidth for E_pin "
        "(default 800)\n\n"
        "Telemetry:\n"
        "  --stats-json FILE   write manifest + full stats as JSON\n"
        "  --stats-every N     stderr progress line every N refs\n");
    std::exit(code);
}

Bytes
parseSize(const std::string &s)
{
    char *end = nullptr;
    const double v = std::strtod(s.c_str(), &end);
    if (end == s.c_str() || v <= 0)
        fatal("bad size '" + s + "'");
    Bytes mult = 1;
    if (*end) {
        switch (*end) {
          case 'k': case 'K': mult = 1_KiB; ++end; break;
          case 'm': case 'M': mult = 1_MiB; ++end; break;
          case 'g': case 'G': mult = 1_GiB; ++end; break;
        }
        if (*end == 'b' || *end == 'B') // 64K and 64KB both work
            ++end;
        if (*end)
            fatal("bad size suffix in '" + s + "'");
    }
    const double bytes = v * static_cast<double>(mult);
    if (bytes >= 9.0e18) // would overflow the 64-bit byte count
        fatal("size '" + s + "' is too large");
    return static_cast<Bytes>(bytes);
}

struct Options
{
    std::string workload;
    std::string loadTrace;
    std::string saveTrace;
    TraceFormat format = TraceFormat::Raw;
    double scale = 1.0;
    std::uint64_t seed = 42;
    CacheConfig l1;
    bool haveL2 = false;
    CacheConfig l2;
    bool runMtc = false;
    double pinBandwidthMBs = 800.0;
    std::string statsJson;
    std::uint64_t statsEvery = 0;
};

Options
parse(int argc, char **argv)
{
    Options o;
    o.l1.name = "L1";
    o.l1.size = 64_KiB;
    o.l2.name = "L2";
    o.l2.size = 1_MiB;
    o.l2.assoc = 4;
    o.l2.blockBytes = 64;

    auto need = [&](int &i) -> std::string {
        if (i + 1 >= argc)
            fatal(std::string("missing value for ") + argv[i]);
        return argv[++i];
    };

    for (int i = 1; i < argc; ++i) {
        const std::string a = argv[i];
        if (a == "--help" || a == "-h") {
            usage(0);
        } else if (a == "--list") {
            for (const auto &n : allWorkloadNames())
                std::printf("%s\n", n.c_str());
            std::exit(0);
        } else if (a == "--workload") {
            o.workload = need(i);
        } else if (a == "--load-trace") {
            o.loadTrace = need(i);
        } else if (a == "--save-trace") {
            o.saveTrace = need(i);
        } else if (a == "--compact") {
            o.format = TraceFormat::Compact;
        } else if (a == "--scale") {
            o.scale = std::atof(need(i).c_str());
        } else if (a == "--seed") {
            o.seed = std::strtoull(need(i).c_str(), nullptr, 10);
        } else if (a == "--size") {
            o.l1.size = parseSize(need(i));
        } else if (a == "--assoc") {
            o.l1.assoc = std::atoi(need(i).c_str());
        } else if (a == "--block") {
            o.l1.blockBytes = parseSize(need(i));
        } else if (a == "--sector") {
            o.l1.sectorBytes = parseSize(need(i));
        } else if (a == "--repl") {
            const std::string v = need(i);
            o.l1.repl = v == "lru"    ? ReplPolicy::LRU
                        : v == "fifo" ? ReplPolicy::FIFO
                        : v == "random"
                            ? ReplPolicy::Random
                            : (fatal("bad --repl '" + v + "'"),
                               ReplPolicy::LRU);
        } else if (a == "--write") {
            const std::string v = need(i);
            o.l1.write = v == "wb"   ? WritePolicy::WriteBack
                         : v == "wt" ? WritePolicy::WriteThrough
                                     : (fatal("bad --write"),
                                        WritePolicy::WriteBack);
        } else if (a == "--alloc") {
            const std::string v = need(i);
            o.l1.alloc = v == "wa"    ? AllocPolicy::WriteAllocate
                         : v == "wna" ? AllocPolicy::WriteNoAllocate
                         : v == "wv"  ? AllocPolicy::WriteValidate
                                      : (fatal("bad --alloc"),
                                         AllocPolicy::WriteAllocate);
        } else if (a == "--prefetch") {
            o.l1.taggedPrefetch = true;
        } else if (a == "--stream-buffers") {
            o.l1.streamBuffers = std::atoi(need(i).c_str());
        } else if (a == "--stream-depth") {
            o.l1.streamDepth = std::atoi(need(i).c_str());
        } else if (a == "--l2-size") {
            o.l2.size = parseSize(need(i));
            o.haveL2 = true;
        } else if (a == "--l2-assoc") {
            o.l2.assoc = std::atoi(need(i).c_str());
            o.haveL2 = true;
        } else if (a == "--l2-block") {
            o.l2.blockBytes = parseSize(need(i));
            o.haveL2 = true;
        } else if (a == "--mtc") {
            o.runMtc = true;
        } else if (a == "--pin-bandwidth") {
            o.pinBandwidthMBs = std::atof(need(i).c_str());
        } else if (a == "--stats-json") {
            o.statsJson = need(i);
        } else if (a == "--stats-every") {
            o.statsEvery = std::strtoull(need(i).c_str(), nullptr, 10);
        } else {
            std::fprintf(stderr, "unknown flag '%s'\n", a.c_str());
            usage(1);
        }
    }
    if (o.workload.empty() && o.loadTrace.empty())
        usage(1);
    return o;
}

} // namespace

int
main(int argc, char **argv)
{
    try {
        const Options o = parse(argc, argv);

        Trace trace;
        if (!o.loadTrace.empty()) {
            trace = loadTrace(o.loadTrace);
            std::printf("trace: %s (%zu refs)\n",
                        o.loadTrace.c_str(), trace.size());
        } else {
            WorkloadParams p;
            p.scale = o.scale;
            p.seed = o.seed;
            trace = makeWorkload(o.workload)->trace(p);
            std::printf("workload: %s (%zu refs, scale %.2f, "
                        "seed %llu)\n",
                        o.workload.c_str(), trace.size(), o.scale,
                        static_cast<unsigned long long>(o.seed));
        }

        if (!o.saveTrace.empty()) {
            saveTrace(trace, o.saveTrace, o.format);
            std::printf("saved trace to %s\n", o.saveTrace.c_str());
            return 0;
        }

        std::vector<CacheConfig> levels{o.l1};
        if (o.haveL2)
            levels.push_back(o.l2);

        WallTimer timer;
        ProgressMeter meter("membw_sim", o.statsEvery);
        TraceProgressFn progress;
        if (o.statsEvery)
            progress = [&meter](std::size_t done, std::size_t total) {
                meter.tick(done, total);
            };
        const TrafficResult r = runTrace(trace, levels, progress);

        std::printf("\nL1: %s\n", o.l1.describe().c_str());
        if (o.haveL2)
            std::printf("L2: %s\n", o.l2.describe().c_str());
        std::printf("  accesses        : %llu\n",
                    static_cast<unsigned long long>(r.l1.accesses));
        std::printf("  miss rate       : %.4f\n", r.l1.missRate());
        std::printf("  request bytes   : %llu\n",
                    static_cast<unsigned long long>(r.requestBytes));
        std::printf("  pin bytes       : %llu\n",
                    static_cast<unsigned long long>(r.pinBytes));
        for (std::size_t i = 0; i < r.levelRatios.size(); ++i)
            std::printf("  R (level %zu)     : %.4f\n", i + 1,
                        r.levelRatios[i]);
        std::printf("  total R         : %.4f\n", r.trafficRatio);
        std::printf("  E_pin           : %.1f MB/s (physical %.1f)\n",
                    o.pinBandwidthMBs / r.trafficRatio,
                    o.pinBandwidthMBs);

        MinCacheStats mtc;
        if (o.runMtc) {
            mtc = runMinCache(trace, canonicalMtc(o.l1.size));
            const double g =
                static_cast<double>(r.levelTraffic[0]) /
                static_cast<double>(mtc.trafficBelow());
            std::printf("\nMTC (%s):\n",
                        canonicalMtc(o.l1.size).describe().c_str());
            std::printf("  MTC traffic     : %llu bytes\n",
                        static_cast<unsigned long long>(
                            mtc.trafficBelow()));
            std::printf("  inefficiency G  : %.2f\n", g);
            std::printf("  OE_pin          : %.1f MB/s\n",
                        o.pinBandwidthMBs * g /
                            r.levelRatios[0]);
        }

        if (!o.statsJson.empty()) {
            StatsRegistry registry;
            publishStats(registry, r);
            if (o.runMtc) {
                StatsGroup mtcGroup = registry.group("mtc");
                publishMinCacheStats(mtcGroup, mtc);
            }

            RunManifest manifest;
            manifest.tool = "membw_sim";
            manifest.workload =
                o.workload.empty() ? o.loadTrace : o.workload;
            manifest.config = o.l1.describe();
            if (o.haveL2)
                manifest.config += " + " + o.l2.describe();
            manifest.seed = o.seed;
            manifest.scale = o.scale;
            manifest.refs = trace.size();
            manifest.wallSeconds = timer.seconds();
            if (o.runMtc)
                manifest.set("mtc_config",
                             canonicalMtc(o.l1.size).describe());

            JsonWriter w;
            w.beginObject();
            w.key("manifest");
            manifest.write(w);
            w.key("stats");
            writeStatsArray(registry, w);
            w.endObject();
            writeFileOrDie(o.statsJson, w.str());
        }
        return 0;
    } catch (const FatalError &e) {
        std::fprintf(stderr, "%s\n", e.what());
        return 1;
    }
}
