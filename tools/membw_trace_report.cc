/**
 * @file
 * membw_trace_report — offline analyzer for --trace-out files.
 *
 * Reads the Chrome trace-event JSON written by membw_sim /
 * membw_decompose / the bench drivers and prints three analyses:
 *
 *   - self-time per phase: wall time inside each span name minus its
 *     nested children (where does the run actually go?);
 *   - per-worker utilization: fraction of the trace window each
 *     thread spent inside top-level spans;
 *   - critical-path cell: the single longest sweep cell, with its
 *     config/route detail.
 *
 * The file is validated on the way in (complete "X" events only,
 * timestamps monotonic per thread track) so a malformed trace fails
 * loudly instead of producing a nonsense table.  --series validates
 * and summarizes a --series-out JSONL file alongside.
 *
 *   membw_trace_report trace.json
 *   membw_trace_report trace.json --series series.jsonl
 */

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "common/log.hh"
#include "common/stats.hh"
#include "common/table.hh"
#include "obs/emit.hh"
#include "obs/json.hh"
#include "resilience/exit_codes.hh"

using namespace membw;

namespace {

[[noreturn]] void
usage(int code)
{
    std::printf(
        "membw_trace_report — analyze a --trace-out span trace\n\n"
        "  membw_trace_report TRACE.json [--series FILE] [--top N]\n\n"
        "  TRACE.json      Chrome trace-event file from --trace-out\n"
        "  --series FILE   also validate/summarize a --series-out "
        "JSONL file\n"
        "  --top N         rows in the self-time table (default "
        "15)\n\n"
        "Prints self-time per phase, per-worker utilization, and the\n"
        "critical-path (longest) sweep cell.  Exits 1 on a malformed\n"
        "trace (incomplete events, non-monotonic per-thread "
        "timestamps).\n");
    std::exit(code);
}

std::string
readFileOrDie(const std::string &path)
{
    std::FILE *f = std::fopen(path.c_str(), "rb");
    if (!f)
        fatal("cannot open '" + path + "' for reading");
    std::string out;
    char buf[1 << 16];
    std::size_t n;
    while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0)
        out.append(buf, n);
    const bool bad = std::ferror(f);
    std::fclose(f);
    if (bad)
        fatal("cannot read '" + path + "'");
    return out;
}

/** One complete ("X") span event, timestamps in microseconds. */
struct Span
{
    std::string name;
    std::string detail;
    std::int64_t tid = 0;
    double ts = 0.0;
    double dur = 0.0;
};

struct TraceDoc
{
    std::vector<Span> spans;
    std::map<std::int64_t, std::string> threadNames;
    std::set<std::int64_t> tids; ///< every track with any event
    std::uint64_t counters = 0;
    std::uint64_t instants = 0;
    std::uint64_t dropped = 0;
    std::string tool;
};

double
numField(const JsonValue &ev, const char *key, std::size_t index)
{
    const JsonValue *v = ev.find(key);
    if (!v || !v->isNumber())
        fatal("malformed trace: event " + std::to_string(index) +
              " lacks numeric '" + key + "'");
    return v->number;
}

TraceDoc
loadTrace(const std::string &path)
{
    const JsonValue doc = parseJson(readFileOrDie(path));
    if (!doc.isObject())
        fatal("malformed trace: top level is not an object");
    const JsonValue *evs = doc.find("traceEvents");
    if (!evs || !evs->isArray())
        fatal("malformed trace: no traceEvents array");

    TraceDoc out;
    if (const JsonValue *other = doc.find("otherData")) {
        if (const JsonValue *t = other->find("tool"))
            out.tool = t->isString() ? t->string : "";
        if (const JsonValue *d = other->find("dropped_events"))
            out.dropped =
                d->isNumber() ? static_cast<std::uint64_t>(d->number)
                              : 0;
    }

    // File-order monotonicity per thread track: the exporters sort
    // by (tid, ts), and Perfetto relies on it.
    std::map<std::int64_t, double> lastTs;
    for (std::size_t i = 0; i < evs->array.size(); ++i) {
        const JsonValue &ev = evs->array[i];
        if (!ev.isObject())
            fatal("malformed trace: event " + std::to_string(i) +
                  " is not an object");
        const JsonValue *ph = ev.find("ph");
        if (!ph || !ph->isString())
            fatal("malformed trace: event " + std::to_string(i) +
                  " lacks 'ph'");
        const std::string &kind = ph->string;
        if (kind == "M")
            continue; // metadata handled below
        if (kind == "B" || kind == "E")
            fatal("malformed trace: event " + std::to_string(i) +
                  " is an unmatched begin/end ('" + kind +
                  "'); the exporters only emit complete X events");

        const auto tid =
            static_cast<std::int64_t>(numField(ev, "tid", i));
        const double ts = numField(ev, "ts", i);
        auto [it, fresh] = lastTs.try_emplace(tid, ts);
        if (!fresh && ts < it->second)
            fatal("malformed trace: ts not monotonic on tid " +
                  std::to_string(tid) + " at event " +
                  std::to_string(i));
        it->second = ts;
        out.tids.insert(tid);

        if (kind == "C") {
            out.counters++;
            continue;
        }
        if (kind == "i") {
            out.instants++;
            continue;
        }
        if (kind != "X")
            fatal("malformed trace: event " + std::to_string(i) +
                  " has unsupported ph '" + kind + "'");

        Span s;
        const JsonValue *name = ev.find("name");
        if (!name || !name->isString())
            fatal("malformed trace: X event " + std::to_string(i) +
                  " lacks a name");
        s.name = name->string;
        s.tid = tid;
        s.ts = ts;
        s.dur = numField(ev, "dur", i);
        if (s.dur < 0)
            fatal("malformed trace: X event " + std::to_string(i) +
                  " has negative dur");
        if (const JsonValue *args = ev.find("args"))
            if (const JsonValue *d = args->find("detail"))
                if (d->isString())
                    s.detail = d->string;
        out.spans.push_back(std::move(s));
    }

    for (const JsonValue &ev : evs->array) {
        const JsonValue *ph = ev.find("ph");
        if (!ph || ph->string != "M")
            continue;
        const JsonValue *name = ev.find("name");
        const JsonValue *tid = ev.find("tid");
        const JsonValue *args = ev.find("args");
        if (name && name->string == "thread_name" && tid &&
            tid->isNumber() && args)
            if (const JsonValue *n = args->find("name"))
                out.threadNames[static_cast<std::int64_t>(
                    tid->number)] = n->string;
    }
    return out;
}

struct PhaseAgg
{
    double selfUs = 0.0;
    double totalUs = 0.0;
    std::uint64_t count = 0;
};

/**
 * Nesting pass over one thread's spans (sorted by begin ts, ties
 * broken longest-first so parents precede their children): a span is
 * a child of the nearest enclosing open span; self = dur − children.
 * Returns the thread's top-level busy time in µs.
 */
double
selfTimes(std::vector<const Span *> &track,
          std::map<std::string, PhaseAgg> &byPhase)
{
    std::stable_sort(track.begin(), track.end(),
                     [](const Span *a, const Span *b) {
                         if (a->ts != b->ts)
                             return a->ts < b->ts;
                         return a->dur > b->dur;
                     });
    struct Open
    {
        const Span *span;
        double childUs = 0.0;
    };
    std::vector<Open> stack;
    double busyUs = 0.0;
    auto close = [&](const Open &top) {
        PhaseAgg &agg = byPhase[top.span->name];
        agg.selfUs += top.span->dur - top.childUs;
        agg.totalUs += top.span->dur;
        agg.count++;
    };
    for (const Span *s : track) {
        while (!stack.empty() &&
               stack.back().span->ts + stack.back().span->dur <=
                   s->ts) {
            close(stack.back());
            stack.pop_back();
        }
        if (stack.empty())
            busyUs += s->dur;
        else
            stack.back().childUs += s->dur;
        stack.push_back(Open{s});
    }
    while (!stack.empty()) {
        close(stack.back());
        stack.pop_back();
    }
    return busyUs;
}

std::string
fmtMs(double us)
{
    return fixed(us / 1e3, 3);
}

int
report(const std::string &tracePath, const std::string &seriesPath,
       std::size_t topN)
{
    const TraceDoc doc = loadTrace(tracePath);

    if (doc.spans.empty()) {
        std::printf("%s: no span events (%llu counters, %llu "
                    "instants, %llu dropped)\n",
                    tracePath.c_str(),
                    static_cast<unsigned long long>(doc.counters),
                    static_cast<unsigned long long>(doc.instants),
                    static_cast<unsigned long long>(doc.dropped));
        return exitOk;
    }

    double beginUs = doc.spans.front().ts, endUs = 0.0;
    for (const Span &s : doc.spans) {
        beginUs = std::min(beginUs, s.ts);
        endUs = std::max(endUs, s.ts + s.dur);
    }
    const double wallUs = endUs - beginUs;

    std::printf("trace: %s (%s)\n", tracePath.c_str(),
                doc.tool.empty() ? "unknown tool" : doc.tool.c_str());
    std::printf("spans %zu | counters %llu | instants %llu | "
                "dropped %llu | threads %zu\n",
                doc.spans.size(),
                static_cast<unsigned long long>(doc.counters),
                static_cast<unsigned long long>(doc.instants),
                static_cast<unsigned long long>(doc.dropped),
                doc.tids.size());
    // Stable machine-readable line for the telemetry golden test.
    std::printf("trace wall seconds: %.6f\n", wallUs / 1e6);

    // ---- self-time per phase ------------------------------------
    std::map<std::int64_t, std::vector<const Span *>> tracks;
    for (const Span &s : doc.spans)
        tracks[s.tid].push_back(&s);

    std::map<std::string, PhaseAgg> byPhase;
    std::map<std::int64_t, double> busyUs;
    for (auto &[tid, track] : tracks)
        busyUs[tid] = selfTimes(track, byPhase);

    std::vector<std::pair<std::string, PhaseAgg>> phases(
        byPhase.begin(), byPhase.end());
    std::sort(phases.begin(), phases.end(),
              [](const auto &a, const auto &b) {
                  return a.second.selfUs > b.second.selfUs;
              });

    TextTable pt;
    pt.header({"phase", "self ms", "total ms", "count", "self %"});
    std::size_t rows = 0;
    for (const auto &[name, agg] : phases) {
        if (rows++ >= topN)
            break;
        pt.row({name, fmtMs(agg.selfUs), fmtMs(agg.totalUs),
                std::to_string(agg.count),
                wallUs > 0 ? fixed(100.0 * agg.selfUs / wallUs, 1)
                           : "0.0"});
    }
    std::printf("\nself time per phase (top %zu of %zu):\n%s\n",
                std::min(topN, phases.size()), phases.size(),
                pt.render().c_str());

    // ---- per-worker utilization ---------------------------------
    TextTable ut;
    ut.header({"tid", "thread", "busy ms", "util %"});
    for (const auto &[tid, busy] : busyUs) {
        const auto nameIt = doc.threadNames.find(tid);
        ut.row({std::to_string(tid),
                nameIt != doc.threadNames.end() ? nameIt->second
                                                : "?",
                fmtMs(busy),
                wallUs > 0 ? fixed(100.0 * busy / wallUs, 1)
                           : "0.0"});
    }
    std::printf("per-worker utilization (window %.3f ms):\n%s\n",
                wallUs / 1e3, ut.render().c_str());

    // ---- critical-path cell -------------------------------------
    const Span *longest = nullptr;
    for (const Span &s : doc.spans)
        if (s.name == "cell" && (!longest || s.dur > longest->dur))
            longest = &s;
    if (longest)
        std::printf("critical-path cell: %.3f ms on tid %lld (%s)\n",
                    longest->dur / 1e3,
                    static_cast<long long>(longest->tid),
                    longest->detail.empty() ? "no detail"
                                            : longest->detail.c_str());
    else
        std::printf("critical-path cell: no sweep cells in trace\n");

    // ---- optional series summary --------------------------------
    if (!seriesPath.empty()) {
        // An absent or empty series file is a normal outcome (a run
        // that never sampled, or telemetry disabled), not a
        // malformed input: note it and keep the exit status clean.
        std::FILE *probe = std::fopen(seriesPath.c_str(), "rb");
        if (!probe) {
            std::printf("\nseries: %s (no samples: file absent)\n",
                        seriesPath.c_str());
            return exitOk;
        }
        std::fclose(probe);
        const std::string text = readFileOrDie(seriesPath);
        std::size_t lines = 0;
        double tMin = 0.0, tMax = 0.0;
        std::set<std::string> fields;
        std::size_t pos = 0;
        while (pos < text.size()) {
            std::size_t eol = text.find('\n', pos);
            if (eol == std::string::npos)
                eol = text.size();
            const std::string_view line(text.data() + pos,
                                        eol - pos);
            pos = eol + 1;
            if (line.empty())
                continue;
            const JsonValue v = parseJson(line);
            if (!v.isObject())
                fatal("malformed series: line " +
                      std::to_string(lines + 1) +
                      " is not an object");
            const JsonValue *t = v.find("t");
            if (!t || !t->isNumber())
                fatal("malformed series: line " +
                      std::to_string(lines + 1) +
                      " lacks numeric 't'");
            if (lines == 0)
                tMin = t->number;
            tMax = t->number;
            for (const auto &[k, val] : v.object)
                if (k != "t")
                    fields.insert(k);
            lines++;
        }
        std::string names;
        for (const auto &f : fields)
            names += (names.empty() ? "" : ", ") + f;
        if (lines == 0)
            std::printf("\nseries: %s (no samples)\n",
                        seriesPath.c_str());
        else
            std::printf("\nseries: %s (%zu samples over %.3f s: "
                        "%s)\n",
                        seriesPath.c_str(), lines, tMax - tMin,
                        names.empty() ? "no fields" : names.c_str());
    }
    return exitOk;
}

} // namespace

int
main(int argc, char **argv)
{
    try {
        std::string tracePath, seriesPath;
        std::size_t topN = 15;
        for (int i = 1; i < argc; ++i) {
            const std::string a = argv[i];
            auto need = [&]() -> std::string {
                if (i + 1 >= argc) {
                    emitLinef("missing value for %s", a.c_str());
                    std::exit(exitUsage);
                }
                return argv[++i];
            };
            if (a == "--help" || a == "-h")
                usage(exitOk);
            else if (a == "--series")
                seriesPath = need();
            else if (a == "--top")
                topN = static_cast<std::size_t>(
                    std::strtoul(need().c_str(), nullptr, 10));
            else if (!a.empty() && a[0] != '-' && tracePath.empty())
                tracePath = a;
            else
                usage(exitUsage);
        }
        if (tracePath.empty())
            usage(exitUsage);
        if (topN == 0)
            topN = 15;
        return report(tracePath, seriesPath, topN);
    } catch (const FatalError &e) {
        emitLine(e.what());
        return exitFatal;
    } catch (const std::exception &e) {
        // Safety net for hostile input: classify as a fatal error
        // instead of letting an exception escape main().
        emitLine(std::string("error: ") + e.what());
        return exitFatal;
    }
}
