/**
 * @file
 * membw_profile_report — offline analyzer for --profile-out files.
 *
 * Reads the membw-profile-v1 JSON written by membw_sim /
 * membw_decompose / the instrumented benches and prints:
 *
 *   - a run inventory (epochs, clamped/dropped, sources);
 *   - a phase table per run, clustering consecutive epochs into
 *     miss-rate regimes (where does the workload change behaviour?);
 *   - the peak pin-demand epoch (max per-epoch r_total when the run
 *     carries a pin_mbs attribute, max below-traffic delta
 *     otherwise) and the hottest conflict sets from the churn
 *     heatmap.
 *
 * The file is validated on the way in: the schema string must match,
 * column lengths must agree with the epoch count, and for every
 * ended source the per-epoch columns must sum exactly to the
 * end-of-run aggregate — the delta-snapshot invariant the profiler
 * promises.  A violation exits 1 instead of printing nonsense.
 *
 *   membw_profile_report profile.json
 *   membw_profile_report profile.json --csv epochs.csv
 *   membw_profile_report profile.json --gnuplot missrate.gp
 */

#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "common/log.hh"
#include "common/stats.hh"
#include "common/table.hh"
#include "obs/emit.hh"
#include "obs/json.hh"
#include "resilience/exit_codes.hh"

using namespace membw;

namespace {

[[noreturn]] void
usage(int code)
{
    std::printf(
        "membw_profile_report — analyze a --profile-out epoch "
        "profile\n\n"
        "  membw_profile_report PROFILE.json [--csv FILE] "
        "[--gnuplot FILE]\n\n"
        "  PROFILE.json    membw-profile-v1 file from --profile-out\n"
        "  --csv FILE      long-format per-epoch dump "
        "(run,epoch,end_ref,source,metric,delta)\n"
        "  --gnuplot FILE  gnuplot script plotting per-epoch miss "
        "rates\n\n"
        "Prints the run inventory, a miss-rate phase table per run,\n"
        "the peak pin-demand epoch, and the hottest conflict sets.\n"
        "Exits 1 on a malformed profile (wrong schema, ragged\n"
        "columns, or epoch sums that disagree with the run "
        "aggregate).\n");
    std::exit(code);
}

std::string
readFileOrDie(const std::string &path)
{
    std::FILE *f = std::fopen(path.c_str(), "rb");
    if (!f)
        fatal("cannot open '" + path + "' for reading");
    std::string out;
    char buf[1 << 16];
    std::size_t n;
    while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0)
        out.append(buf, n);
    const bool bad = std::ferror(f);
    std::fclose(f);
    if (bad)
        fatal("cannot read '" + path + "'");
    return out;
}

std::uint64_t
u64Field(const JsonValue &obj, const char *key, const std::string &ctx)
{
    const JsonValue *v = obj.find(key);
    if (!v || !v->isNumber())
        fatal("malformed profile: " + ctx + " lacks numeric '" + key +
              "'");
    return static_cast<std::uint64_t>(v->number);
}

std::vector<std::uint64_t>
u64Array(const JsonValue &arr, const std::string &ctx)
{
    std::vector<std::uint64_t> out;
    out.reserve(arr.array.size());
    for (const JsonValue &v : arr.array) {
        if (!v.isNumber())
            fatal("malformed profile: non-numeric entry in " + ctx);
        out.push_back(static_cast<std::uint64_t>(v.number));
    }
    return out;
}

struct SourceData
{
    std::string component;
    std::vector<std::string> metrics;
    /** columns[m][e]: metric m's delta over epoch e. */
    std::vector<std::vector<std::uint64_t>> columns;
    std::vector<std::uint64_t> aggregate; ///< empty unless ended
};

struct RunData
{
    std::string name;
    bool ended = false;
    std::uint64_t clamped = 0;
    std::uint64_t dropped = 0;
    std::vector<std::uint64_t> endRef;
    std::vector<SourceData> sources;
    std::vector<double> rTotal;  ///< derived, empty without pin_mbs
    std::vector<double> epinMbs; ///< derived, empty without pin_mbs
};

struct ProfileDoc
{
    std::string tool;
    std::uint64_t epochRefs = 0;
    std::uint64_t clamped = 0;
    std::uint64_t dropped = 0;
    std::vector<RunData> runs;
    JsonValue raw; ///< for set_churn / region_heat / probe_totals
};

std::vector<double>
doubleArray(const JsonValue &arr)
{
    std::vector<double> out;
    out.reserve(arr.array.size());
    for (const JsonValue &v : arr.array)
        out.push_back(v.isNumber() ? v.number : 0.0);
    return out;
}

RunData
loadRun(const JsonValue &rv, std::size_t index)
{
    const std::string ctx = "run " + std::to_string(index);
    if (!rv.isObject())
        fatal("malformed profile: " + ctx + " is not an object");
    RunData run;
    const JsonValue *name = rv.find("name");
    if (!name || !name->isString())
        fatal("malformed profile: " + ctx + " lacks a name");
    run.name = name->string;
    if (const JsonValue *e = rv.find("ended"))
        run.ended = e->boolean;
    run.clamped = u64Field(rv, "clamped", ctx);
    run.dropped = u64Field(rv, "dropped", ctx);

    const std::uint64_t epochs = u64Field(rv, "epochs", ctx);
    const JsonValue *endRef = rv.find("end_ref");
    if (!endRef || !endRef->isArray())
        fatal("malformed profile: " + ctx + " lacks end_ref");
    run.endRef = u64Array(*endRef, ctx + " end_ref");
    if (run.endRef.size() != epochs)
        fatal("malformed profile: " + ctx + " declares " +
              std::to_string(epochs) + " epochs but end_ref has " +
              std::to_string(run.endRef.size()));

    const JsonValue *sources = rv.find("sources");
    if (!sources || !sources->isArray())
        fatal("malformed profile: " + ctx + " lacks sources");
    for (const JsonValue &sv : sources->array) {
        const JsonValue *comp = sv.find("component");
        if (!comp || !comp->isString())
            fatal("malformed profile: source in " + ctx +
                  " lacks a component");
        SourceData src;
        src.component = comp->string;
        const std::string sctx = ctx + " source " + src.component;

        const JsonValue *metrics = sv.find("metrics");
        if (!metrics || !metrics->isArray())
            fatal("malformed profile: " + sctx + " lacks metrics");
        for (const JsonValue &m : metrics->array)
            src.metrics.push_back(m.string);

        const JsonValue *cols = sv.find("columns");
        if (!cols || !cols->isArray() ||
            cols->array.size() != src.metrics.size())
            fatal("malformed profile: " + sctx +
                  " columns do not match its metrics");
        for (std::size_t m = 0; m < cols->array.size(); ++m) {
            std::vector<std::uint64_t> col = u64Array(
                cols->array[m], sctx + " column " + src.metrics[m]);
            if (col.size() != epochs)
                fatal("malformed profile: " + sctx + " column '" +
                      src.metrics[m] + "' has " +
                      std::to_string(col.size()) + " entries for " +
                      std::to_string(epochs) + " epochs");
            src.columns.push_back(std::move(col));
        }

        if (const JsonValue *agg = sv.find("aggregate")) {
            src.aggregate = u64Array(*agg, sctx + " aggregate");
            if (src.aggregate.size() != src.metrics.size())
                fatal("malformed profile: " + sctx +
                      " aggregate does not match its metrics");
            // The delta-snapshot invariant: per-epoch deltas sum
            // exactly to the end-of-run aggregate.  Anything else
            // means the writer and sampler disagree — fail loudly.
            for (std::size_t m = 0; m < src.metrics.size(); ++m) {
                std::uint64_t sum = 0;
                for (std::uint64_t d : src.columns[m])
                    sum += d;
                if (sum != src.aggregate[m])
                    fatal("malformed profile: " + sctx + " metric '" +
                          src.metrics[m] + "' epochs sum to " +
                          std::to_string(sum) + " but aggregate is " +
                          std::to_string(src.aggregate[m]));
            }
        } else if (run.ended) {
            fatal("malformed profile: " + sctx +
                  " is ended but has no aggregate");
        }
        run.sources.push_back(std::move(src));
    }

    if (const JsonValue *derived = rv.find("derived")) {
        if (const JsonValue *rt = derived->find("r_total"))
            run.rTotal = doubleArray(*rt);
        if (const JsonValue *ep = derived->find("epin_mbs"))
            run.epinMbs = doubleArray(*ep);
    }
    return run;
}

ProfileDoc
loadProfile(const std::string &path)
{
    ProfileDoc doc;
    doc.raw = parseJson(readFileOrDie(path));
    if (!doc.raw.isObject())
        fatal("malformed profile: top level is not an object");
    const JsonValue *schema = doc.raw.find("schema");
    if (!schema || !schema->isString())
        fatal("malformed profile: no schema string");
    if (schema->string != "membw-profile-v1")
        fatal("unsupported profile schema '" + schema->string +
              "' (expected membw-profile-v1)");
    if (const JsonValue *t = doc.raw.find("tool"))
        doc.tool = t->isString() ? t->string : "";
    doc.epochRefs = u64Field(doc.raw, "epoch_refs", "top level");
    doc.clamped = u64Field(doc.raw, "clamped_epochs", "top level");
    doc.dropped = u64Field(doc.raw, "dropped_epochs", "top level");

    const JsonValue *runs = doc.raw.find("runs");
    if (!runs || !runs->isArray())
        fatal("malformed profile: no runs array");
    for (std::size_t i = 0; i < runs->array.size(); ++i)
        doc.runs.push_back(loadRun(runs->array[i], i));
    return doc;
}

/** First source exposing both accesses and misses, or nullptr. */
const SourceData *
missRateSource(const RunData &run, std::size_t &accIdx,
               std::size_t &missIdx)
{
    for (const SourceData &s : run.sources) {
        const auto acc = std::find(s.metrics.begin(), s.metrics.end(),
                                   "accesses");
        const auto miss = std::find(s.metrics.begin(),
                                    s.metrics.end(), "misses");
        if (acc != s.metrics.end() && miss != s.metrics.end()) {
            accIdx = static_cast<std::size_t>(acc - s.metrics.begin());
            missIdx =
                static_cast<std::size_t>(miss - s.metrics.begin());
            return &s;
        }
    }
    return nullptr;
}

/** Consecutive epochs whose miss rate stays inside one band. */
struct Regime
{
    std::size_t first = 0; ///< epoch index, inclusive
    std::size_t last = 0;  ///< epoch index, inclusive
    std::uint64_t accesses = 0;
    std::uint64_t misses = 0;

    double
    rate() const
    {
        return accesses ? static_cast<double>(misses) /
                              static_cast<double>(accesses)
                        : 0.0;
    }
};

/**
 * Cluster epochs into miss-rate regimes: an epoch joins the open
 * regime while its rate stays within max(1 point, 25% relative) of
 * the regime's running mean, else it opens a new one.  Coarse by
 * design — the table should show "warm-up, steady state, phase
 * change", not one row per epoch.
 */
std::vector<Regime>
clusterRegimes(const SourceData &src, std::size_t accIdx,
               std::size_t missIdx)
{
    std::vector<Regime> out;
    const std::size_t epochs = src.columns[accIdx].size();
    for (std::size_t e = 0; e < epochs; ++e) {
        const std::uint64_t acc = src.columns[accIdx][e];
        const std::uint64_t miss = src.columns[missIdx][e];
        const double rate =
            acc ? static_cast<double>(miss) / static_cast<double>(acc)
                : 0.0;
        if (!out.empty()) {
            Regime &open = out.back();
            const double mean = open.rate();
            const double band = std::max(0.01, 0.25 * mean);
            if (std::abs(rate - mean) <= band) {
                open.last = e;
                open.accesses += acc;
                open.misses += miss;
                continue;
            }
        }
        Regime r;
        r.first = r.last = e;
        r.accesses = acc;
        r.misses = miss;
        out.push_back(r);
    }
    return out;
}

void
printRun(const ProfileDoc &doc, const RunData &run)
{
    std::string srcNames;
    for (const SourceData &s : run.sources)
        srcNames +=
            (srcNames.empty() ? "" : ", ") + s.component;
    std::printf("\nrun %s: %zu epochs%s, sources: %s\n",
                run.name.c_str(), run.endRef.size(),
                run.ended ? "" : " (not ended)",
                srcNames.empty() ? "none" : srcNames.c_str());
    if (run.clamped || run.dropped)
        std::printf("  %llu clamped epochs, %llu dropped\n",
                    static_cast<unsigned long long>(run.clamped),
                    static_cast<unsigned long long>(run.dropped));

    // ---- miss-rate phase table ----------------------------------
    std::size_t accIdx = 0, missIdx = 0;
    const SourceData *src = missRateSource(run, accIdx, missIdx);
    if (src && !run.endRef.empty()) {
        const auto regimes = clusterRegimes(*src, accIdx, missIdx);
        TextTable t;
        t.header({"phase", "epochs", "end ref", "accesses", "misses",
                  "miss rate"});
        for (std::size_t i = 0; i < regimes.size(); ++i) {
            const Regime &r = regimes[i];
            const std::string span =
                r.first == r.last
                    ? std::to_string(r.first)
                    : std::to_string(r.first) + "-" +
                          std::to_string(r.last);
            t.row({std::to_string(i), span,
                   std::to_string(run.endRef[r.last]),
                   std::to_string(r.accesses),
                   std::to_string(r.misses), fixed(r.rate(), 4)});
        }
        std::printf("  miss-rate phases (%s, %zu regimes):\n%s",
                    src->component.c_str(), regimes.size(),
                    t.render().c_str());
    }

    // ---- peak pin-demand epoch ----------------------------------
    // With a pin_mbs attribute the derived per-epoch r_total is the
    // direct demand signal (Equation 5: E_pin = B_pin / prod R_i);
    // otherwise fall back to the last source's below-traffic delta.
    if (!run.rTotal.empty()) {
        std::size_t peak = 0;
        for (std::size_t e = 1; e < run.rTotal.size(); ++e)
            if (run.rTotal[e] > run.rTotal[peak])
                peak = e;
        std::printf("  peak pin-demand epoch: %zu (end ref %llu, "
                    "r_total %.4f",
                    peak,
                    static_cast<unsigned long long>(run.endRef[peak]),
                    run.rTotal[peak]);
        if (peak < run.epinMbs.size())
            std::printf(", E_pin %.0f MB/s", run.epinMbs[peak]);
        std::printf(")\n");
    } else if (!run.sources.empty() && !run.endRef.empty()) {
        const SourceData &last = run.sources.back();
        const auto below = std::find(last.metrics.begin(),
                                     last.metrics.end(),
                                     "below_bytes");
        if (below != last.metrics.end()) {
            const auto &col = last.columns[static_cast<std::size_t>(
                below - last.metrics.begin())];
            std::size_t peak = 0;
            for (std::size_t e = 1; e < col.size(); ++e)
                if (col[e] > col[peak])
                    peak = e;
            std::printf("  peak pin-demand epoch: %zu (end ref "
                        "%llu, %llu bytes below %s)\n",
                        peak,
                        static_cast<unsigned long long>(
                            run.endRef[peak]),
                        static_cast<unsigned long long>(col[peak]),
                        last.component.c_str());
        }
    }
    (void)doc;
}

void
printStructural(const ProfileDoc &doc)
{
    const JsonValue *churn = doc.raw.find("set_churn");
    if (churn && churn->isArray() && !churn->array.empty()) {
        std::printf("\nhottest conflict sets:\n");
        for (const JsonValue &lv : churn->array) {
            const auto level = static_cast<unsigned long long>(
                lv.at("level").asNumber());
            const auto touched = static_cast<unsigned long long>(
                lv.at("sets_touched").asNumber());
            const auto evict = static_cast<unsigned long long>(
                lv.at("evictions").asNumber());
            std::string tops;
            const JsonValue *top = lv.find("top");
            std::size_t shown = 0;
            if (top && top->isArray())
                for (const JsonValue &t : top->array) {
                    if (shown++ >= 4)
                        break;
                    tops += (tops.empty() ? "" : ", ") + std::string(
                        "set ") +
                        std::to_string(static_cast<std::uint64_t>(
                            t.at("set").asNumber())) +
                        " (" +
                        std::to_string(static_cast<std::uint64_t>(
                            t.at("evictions").asNumber())) +
                        ")";
                }
            std::printf("  level %llu: %llu evictions over %llu "
                        "sets; top: %s\n",
                        level, evict, touched,
                        tops.empty() ? "none" : tops.c_str());
        }
    }

    const JsonValue *heat = doc.raw.find("region_heat");
    if (heat && heat->isObject()) {
        const JsonValue *buckets = heat->find("buckets");
        const std::size_t n =
            buckets && buckets->isArray() ? buckets->array.size() : 0;
        if (n) {
            std::size_t hot = 0;
            double total = 0;
            for (std::size_t i = 0; i < n; ++i) {
                const double v = buckets->array[i].number;
                total += v;
                if (v > buckets->array[hot].number)
                    hot = i;
            }
            std::printf("address-region heat: %llu bytes touched in "
                        "%zu buckets; hottest bucket %zu carries "
                        "%.1f%% of traffic\n",
                        static_cast<unsigned long long>(
                            heat->at("touched_bytes").asNumber()),
                        n, hot,
                        total > 0 ? 100.0 *
                                        buckets->array[hot].number /
                                        total
                                  : 0.0);
        }
    }

    if (const JsonValue *totals = doc.raw.find("probe_totals")) {
        const auto hits = static_cast<unsigned long long>(
            totals->at("dram_row_hits").asNumber());
        const auto misses = static_cast<unsigned long long>(
            totals->at("dram_row_misses").asNumber());
        const auto pops = static_cast<unsigned long long>(
            totals->at("mtc_scan_pops").asNumber());
        if (hits || misses || pops)
            std::printf("probe totals: %llu DRAM row hits, %llu row "
                        "misses, %llu MTC victim-scan pops\n",
                        hits, misses, pops);
    }
}

void
writeTextFile(const std::string &path, const std::string &text)
{
    std::FILE *f = std::fopen(path.c_str(), "wb");
    if (!f)
        fatal("cannot open '" + path + "' for writing");
    const bool bad =
        std::fwrite(text.data(), 1, text.size(), f) != text.size();
    if (std::fclose(f) != 0 || bad)
        fatal("cannot write '" + path + "'");
}

/** Long-format CSV: one row per (run, epoch, source, metric). */
std::string
csvDump(const ProfileDoc &doc)
{
    std::string out = "run,epoch,end_ref,source,metric,delta\n";
    for (const RunData &run : doc.runs)
        for (const SourceData &src : run.sources)
            for (std::size_t m = 0; m < src.metrics.size(); ++m)
                for (std::size_t e = 0; e < run.endRef.size(); ++e)
                    out += run.name + "," + std::to_string(e) + "," +
                           std::to_string(run.endRef[e]) + "," +
                           src.component + "," + src.metrics[m] +
                           "," +
                           std::to_string(src.columns[m][e]) + "\n";
    return out;
}

/** Gnuplot script with inline data: per-epoch miss rate per run. */
std::string
gnuplotDump(const ProfileDoc &doc)
{
    std::string out =
        "# membw_profile_report --gnuplot: per-epoch miss rate\n"
        "set xlabel 'references'\n"
        "set ylabel 'miss rate'\n"
        "set key outside\n"
        "set grid\n";
    std::vector<std::string> series;
    for (const RunData &run : doc.runs) {
        std::size_t accIdx = 0, missIdx = 0;
        const SourceData *src = missRateSource(run, accIdx, missIdx);
        if (!src || run.endRef.empty())
            continue;
        const std::string block = "$run" +
                                  std::to_string(series.size());
        out += block + " << EOD\n";
        for (std::size_t e = 0; e < run.endRef.size(); ++e) {
            const std::uint64_t acc = src->columns[accIdx][e];
            const double rate =
                acc ? static_cast<double>(src->columns[missIdx][e]) /
                          static_cast<double>(acc)
                    : 0.0;
            out += std::to_string(run.endRef[e]) + " " +
                   fixed(rate, 6) + "\n";
        }
        out += "EOD\n";
        series.push_back(block + " using 1:2 with linespoints title "
                         "'" + run.name + "'");
    }
    if (series.empty())
        return out + "# no runs with accesses/misses metrics\n";
    out += "plot ";
    for (std::size_t i = 0; i < series.size(); ++i)
        out += (i ? ", \\\n     " : "") + series[i];
    out += "\n";
    return out;
}

int
report(const std::string &profilePath, const std::string &csvPath,
       const std::string &gnuplotPath)
{
    const ProfileDoc doc = loadProfile(profilePath);

    std::size_t ended = 0;
    for (const RunData &r : doc.runs)
        ended += r.ended ? 1 : 0;
    std::printf("profile: %s (%s)\n", profilePath.c_str(),
                doc.tool.empty() ? "unknown tool" : doc.tool.c_str());
    std::printf("epoch %llu refs | runs %zu (%zu ended) | clamped "
                "%llu | dropped %llu\n",
                static_cast<unsigned long long>(doc.epochRefs),
                doc.runs.size(), ended,
                static_cast<unsigned long long>(doc.clamped),
                static_cast<unsigned long long>(doc.dropped));
    // Stable machine-readable line for the e2e cross-check test.
    std::uint64_t totalEpochs = 0;
    for (const RunData &r : doc.runs)
        totalEpochs += r.endRef.size();
    std::printf("profile epochs validated: %llu\n",
                static_cast<unsigned long long>(totalEpochs));

    for (const RunData &run : doc.runs)
        printRun(doc, run);
    printStructural(doc);

    if (!csvPath.empty()) {
        writeTextFile(csvPath, csvDump(doc));
        std::printf("csv: %s\n", csvPath.c_str());
    }
    if (!gnuplotPath.empty()) {
        writeTextFile(gnuplotPath, gnuplotDump(doc));
        std::printf("gnuplot: %s\n", gnuplotPath.c_str());
    }
    return exitOk;
}

} // namespace

int
main(int argc, char **argv)
{
    try {
        std::string profilePath, csvPath, gnuplotPath;
        for (int i = 1; i < argc; ++i) {
            const std::string a = argv[i];
            auto need = [&]() -> std::string {
                if (i + 1 >= argc) {
                    emitLinef("missing value for %s", a.c_str());
                    std::exit(exitUsage);
                }
                return argv[++i];
            };
            if (a == "--help" || a == "-h")
                usage(exitOk);
            else if (a == "--csv")
                csvPath = need();
            else if (a == "--gnuplot")
                gnuplotPath = need();
            else if (!a.empty() && a[0] != '-' && profilePath.empty())
                profilePath = a;
            else
                usage(exitUsage);
        }
        if (profilePath.empty())
            usage(exitUsage);
        return report(profilePath, csvPath, gnuplotPath);
    } catch (const FatalError &e) {
        emitLine(e.what());
        return exitFatal;
    } catch (const std::exception &e) {
        // Safety net for hostile input: classify as a fatal error
        // instead of letting an exception escape main().
        emitLine(std::string("error: ") + e.what());
        return exitFatal;
    }
}
