/**
 * @file
 * membw_client: command-line client for the membw_served daemon.
 *
 * Subcommands build one wire request, send it, and render the
 * response:
 *
 *   membw_client --socket S ping
 *   membw_client --socket S stats
 *   membw_client --socket S shutdown
 *   membw_client --socket S sweep --workload Compress --sizes 1K,64K \
 *       --assoc 4 --mtc --stable-json [--out FILE]
 *   membw_client --socket S decompose --workload Swm --experiment F \
 *       [--out FILE]
 *
 * For sweep/decompose the response body is the byte-exact stats-JSON
 * document the equivalent membw_sim / membw_decompose run writes, so
 * `membw_client --out f.json` + `cmp` against a fresh CLI run is the
 * end-to-end serving test.  The process exit code mirrors the
 * envelope's "exit" field (0 ok, 5 degraded); busy and error
 * responses exit 1 with a diagnostic on stderr.
 */

#include <cstdio>
#include <string>

#include "common/log.hh"
#include "common/parse.hh"
#include "exec/simd.hh"
#include "obs/build_info.hh"
#include "obs/json.hh"
#include "resilience/exit_codes.hh"
#include "serve/client.hh"

using namespace membw;

namespace {

void
usage(const char *argv0)
{
    std::fprintf(
        stderr,
        "usage: %s --socket PATH COMMAND [options]\n\n"
        "Commands: ping | stats | shutdown | sweep | decompose\n\n"
        "Common options:\n"
        "  --socket PATH       daemon socket (required)\n"
        "  --out FILE          write the response body to FILE\n"
        "  --wait MS           wait up to MS for the daemon to answer\n"
        "  --version           print version and exit\n"
        "  --build-info        print build provenance and exit\n\n"
        "Sweep options (mirror membw_sim):\n"
        "  --workload NAME --sizes LIST [--blocks LIST] [--mtc]\n"
        "  [--scale F] [--seed N] [--label NAME] [--stable-json]\n"
        "  [--no-collapse] [--no-partition] [--watchdog N]\n"
        "  [--size BYTES] [--assoc N] [--block BYTES] [--sector BYTES]\n"
        "  [--repl lru|fifo|random] [--write wb|wt] [--alloc wa|wna|wv]\n"
        "  [--prefetch] [--stream-buffers N] [--stream-depth N]\n\n"
        "Decompose options (mirror membw_decompose):\n"
        "  --workload NAME [--experiment A-F] [--spec95] [--scale F]\n"
        "  [--seed N] [--stable-json] [--watchdog N] [--mshrs N]\n"
        "  [--window N] [--issue-width N] [--no-prefetch]\n"
        "  [--l1l2-bus N] [--mem-bus N] [--dram KIND]\n",
        argv0);
}

/** Append a ,"key":value pair (value already JSON-rendered). */
void
jsonField(std::string &req, const char *key, const std::string &value)
{
    req += ",\"";
    req += key;
    req += "\":";
    req += value;
}

bool
writeFile(const std::string &path, const std::string &contents)
{
    std::FILE *f = std::fopen(path.c_str(), "wb");
    if (!f)
        return false;
    const bool ok =
        std::fwrite(contents.data(), 1, contents.size(), f) ==
        contents.size();
    return !(std::fclose(f) != 0 || !ok);
}

} // namespace

int
main(int argc, char **argv)
{
    std::string socketPath;
    std::string outPath;
    std::string command;
    int waitMs = 0;
    // Request fields accumulate as rendered JSON members.
    std::string fields;

    auto need = [&](int &i) -> std::string {
        if (i + 1 >= argc)
            fatal(std::string(argv[i]) + " requires a value");
        return argv[++i];
    };

    try {
        for (int i = 1; i < argc; ++i) {
            const std::string a = argv[i];
            if (a == "--help" || a == "-h") {
                usage(argv[0]);
                return exitOk;
            } else if (a == "--version") {
                std::printf("%s\n",
                            formatVersionLine("membw_client").c_str());
                return exitOk;
            } else if (a == "--build-info") {
                std::printf("%s", formatBuildInfo(
                                      "membw_client",
                                      simdTierName(simdTier()))
                                      .c_str());
                return exitOk;
            } else if (a == "--socket") {
                socketPath = need(i);
            } else if (a == "--out") {
                outPath = need(i);
            } else if (a == "--wait") {
                waitMs = static_cast<int>(
                    tryParseInt(need(i), 0, 3600000).orDie());
            } else if (a == "--workload") {
                jsonField(fields, "workload", jsonEscape(need(i)));
            } else if (a == "--label") {
                jsonField(fields, "label", jsonEscape(need(i)));
            } else if (a == "--experiment") {
                jsonField(fields, "experiment", jsonEscape(need(i)));
            } else if (a == "--dram") {
                jsonField(fields, "dram", jsonEscape(need(i)));
            } else if (a == "--repl") {
                jsonField(fields, "repl", jsonEscape(need(i)));
            } else if (a == "--write") {
                jsonField(fields, "write", jsonEscape(need(i)));
            } else if (a == "--alloc") {
                jsonField(fields, "alloc", jsonEscape(need(i)));
            } else if (a == "--sizes") {
                jsonField(fields, "sizes", jsonEscape(need(i)));
            } else if (a == "--blocks") {
                jsonField(fields, "blocks", jsonEscape(need(i)));
            } else if (a == "--size") {
                jsonField(fields, "size", jsonEscape(need(i)));
            } else if (a == "--block") {
                jsonField(fields, "block", jsonEscape(need(i)));
            } else if (a == "--sector") {
                jsonField(fields, "sector", jsonEscape(need(i)));
            } else if (a == "--scale") {
                jsonField(fields, "scale",
                          formatJsonNumber(
                              tryParseDouble(need(i)).orDie()));
            } else if (a == "--seed") {
                jsonField(fields, "seed",
                          std::to_string(tryParseU64(need(i)).orDie()));
            } else if (a == "--watchdog") {
                jsonField(
                    fields, "watchdog",
                    std::to_string(tryParseU64(need(i)).orDie()));
            } else if (a == "--assoc") {
                jsonField(fields, "assoc",
                          std::to_string(tryParseU64(need(i)).orDie()));
            } else if (a == "--stream-buffers") {
                jsonField(
                    fields, "stream_buffers",
                    std::to_string(tryParseU64(need(i)).orDie()));
            } else if (a == "--stream-depth") {
                jsonField(
                    fields, "stream_depth",
                    std::to_string(tryParseU64(need(i)).orDie()));
            } else if (a == "--mshrs") {
                jsonField(fields, "mshrs",
                          std::to_string(tryParseInt(need(i), 0, 1024)
                                             .orDie()));
            } else if (a == "--window") {
                jsonField(fields, "window",
                          std::to_string(tryParseInt(need(i), 1, 4096)
                                             .orDie()));
            } else if (a == "--issue-width") {
                jsonField(fields, "issue_width",
                          std::to_string(
                              tryParseInt(need(i), 1, 64).orDie()));
            } else if (a == "--l1l2-bus") {
                jsonField(fields, "l1l2_bus",
                          std::to_string(tryParseInt(need(i), 1, 4096)
                                             .orDie()));
            } else if (a == "--mem-bus") {
                jsonField(fields, "mem_bus",
                          std::to_string(tryParseInt(need(i), 1, 4096)
                                             .orDie()));
            } else if (a == "--mtc") {
                jsonField(fields, "mtc", "true");
            } else if (a == "--stable-json") {
                jsonField(fields, "stable", "true");
            } else if (a == "--no-collapse") {
                jsonField(fields, "no_collapse", "true");
            } else if (a == "--no-partition") {
                jsonField(fields, "no_partition", "true");
            } else if (a == "--prefetch") {
                jsonField(fields, "prefetch", "true");
            } else if (a == "--spec95") {
                jsonField(fields, "spec95", "true");
            } else if (a == "--no-prefetch") {
                jsonField(fields, "no_prefetch", "true");
            } else if (!a.empty() && a[0] == '-') {
                std::fprintf(stderr, "unknown option '%s'\n\n",
                             a.c_str());
                usage(argv[0]);
                return exitUsage;
            } else if (command.empty()) {
                command = a;
            } else {
                std::fprintf(stderr, "unexpected argument '%s'\n\n",
                             a.c_str());
                usage(argv[0]);
                return exitUsage;
            }
        }
    } catch (const FatalError &e) {
        std::fprintf(stderr, "%s\n", e.what());
        return exitUsage;
    }

    if (socketPath.empty() || command.empty()) {
        usage(argv[0]);
        return exitUsage;
    }
    if (command != "ping" && command != "stats" &&
        command != "shutdown" && command != "sweep" &&
        command != "decompose") {
        std::fprintf(stderr, "unknown command '%s'\n\n",
                     command.c_str());
        usage(argv[0]);
        return exitUsage;
    }

    if (waitMs > 0 && !waitForServer(socketPath, waitMs)) {
        std::fprintf(stderr,
                     "membw_client: no daemon on '%s' after %dms\n",
                     socketPath.c_str(), waitMs);
        return exitFatal;
    }

    const std::string request =
        "{\"op\":\"" + command + "\"" + fields + "}";
    const auto replyLine = serveRequestOnce(socketPath, request);
    if (!replyLine) {
        std::fprintf(stderr,
                     "membw_client: cannot reach daemon on '%s'\n",
                     socketPath.c_str());
        return exitFatal;
    }

    JsonValue reply;
    try {
        reply = parseJson(*replyLine);
    } catch (const FatalError &e) {
        std::fprintf(stderr, "membw_client: bad response: %s\n",
                     e.what());
        return exitFatal;
    }
    const std::string status =
        reply.find("status") ? reply.at("status").asString() : "";
    if (status == "busy") {
        std::fprintf(
            stderr,
            "membw_client: daemon busy (queued %d of %d)\n",
            static_cast<int>(reply.at("queued").asNumber()),
            static_cast<int>(reply.at("capacity").asNumber()));
        return exitFatal;
    }
    if (status != "ok") {
        const JsonValue *err = reply.find("error");
        std::fprintf(stderr, "membw_client: %s\n",
                     err ? err->asString().c_str()
                         : "malformed response");
        return exitFatal;
    }

    // ping/stats envelopes carry their payload in the envelope
    // itself; sweep/decompose carry the stats document in "body".
    const JsonValue *body = reply.find("body");
    const std::string &payload =
        body ? body->asString() : *replyLine;
    if (!outPath.empty()) {
        if (!writeFile(outPath, payload)) {
            std::fprintf(stderr,
                         "membw_client: cannot write '%s'\n",
                         outPath.c_str());
            return exitFatal;
        }
    } else {
        std::fwrite(payload.data(), 1, payload.size(), stdout);
        if (payload.empty() || payload.back() != '\n')
            std::fputc('\n', stdout);
    }

    const JsonValue *exitField = reply.find("exit");
    return exitField ? static_cast<int>(exitField->asNumber())
                     : exitOk;
}
