/**
 * @file
 * membw_decompose — command-line execution-time decomposition driver.
 *
 * Runs a workload on one of the paper's machines (A-F, SPEC92 or
 * SPEC95 parameter set) or on a custom variant, and prints the
 * T_P / T_I / T split with f_P/f_L/f_B:
 *
 *   membw_decompose --workload Swm --experiment F
 *   membw_decompose --workload Vortex --experiment E --spec95
 *   membw_decompose --workload Swm --experiment F --dram sdram
 *   membw_decompose --workload Swm --experiment E --mshrs 2 --no-prefetch
 *
 * The decomposition is three independent deterministic runs (perfect
 * memory, infinite-width, full system), so fault tolerance is
 * phase-granular: --checkpoint saves each completed phase's result,
 * --resume skips completed phases and re-runs only the interrupted
 * one, and SIGINT/SIGTERM abort the in-flight phase cleanly with a
 * final checkpoint, partial stats, and a distinct exit code (see
 * --help).
 */

#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "common/log.hh"
#include "common/parse.hh"
#include "common/stats.hh"
#include "common/table.hh"
#include "cpu/experiment.hh"
#include "exec/parallel_sweep.hh"
#include "exec/simd.hh"
#include "exec/thread_pool.hh"
#include "dram/dram.hh"
#include "obs/build_info.hh"
#include "obs/emit.hh"
#include "obs/epoch_profiler.hh"
#include "obs/export.hh"
#include "obs/manifest.hh"
#include "obs/profile_sources.hh"
#include "obs/progress.hh"
#include "obs/registry.hh"
#include "obs/trace_export.hh"
#include "obs/trace_span.hh"
#include "resilience/checkpoint.hh"
#include "resilience/exit_codes.hh"
#include "resilience/fault_injection.hh"
#include "resilience/signals.hh"
#include "resilience/watchdog.hh"
#include "serve/decompose_service.hh"
#include "workloads/workload.hh"

using namespace membw;

namespace {

[[noreturn]] void
usage(int code)
{
    std::printf(
        "membw_decompose — execution-time decomposition "
        "(Equations 1-3)\n\n"
        "  --workload NAME      synthetic kernel (required)\n"
        "  --experiment A-F     Table 5 machine (default F)\n"
        "  --experiment all     all six machines at once: 18 "
        "phase-cells\n"
        "                       (6 experiments x 3 runs) fanned "
        "across\n"
        "                       --jobs workers; output is "
        "byte-identical at\n"
        "                       any worker count.  Excludes "
        "--checkpoint,\n"
        "                       --resume, and --sigterm-after.\n"
        "  --jobs N             workers for --experiment all "
        "(default:\n"
        "                       hardware concurrency, max 256).  0 "
        "and\n"
        "                       oversubscribed counts are rejected "
        "as\n"
        "                       invalid input (exit 1).\n"
        "  --spec95             use the SPEC95 parameter set\n"
        "  --scale S            trace-length scale (default 0.5)\n"
        "  --seed N             generation seed (default 42)\n"
        "Overrides:\n"
        "  --mshrs N            outstanding misses when lockup-free\n"
        "  --window N           RUU/in-flight entries\n"
        "  --issue-width N      fetch/issue/retire width\n"
        "  --no-prefetch        disable tagged prefetch\n"
        "  --l1l2-bus BYTES     L1/L2 bus width\n"
        "  --mem-bus BYTES      memory bus width\n"
        "  --dram fpm|edo|sdram|rdram   banked DRAM backend\n"
        "Fault tolerance:\n"
        "  --checkpoint FILE    save each completed phase to FILE\n"
        "  --resume FILE        skip phases already completed in FILE\n"
        "  --watchdog N         max cycles between retirements before\n"
        "                       declaring livelock (default 1000000;\n"
        "                       0 disables)\n"
        "  --sigterm-after N    raise SIGTERM once this process has\n"
        "                       simulated N micro-ops (testing)\n"
        "  --fault-inject SPEC  arm deterministic fault injection\n"
        "                       (site:trigger=value clauses, comma-\n"
        "                       separated; see docs/resilience.md)\n"
        "Telemetry:\n"
        "  --stats-json FILE    write manifest + full stats as JSON\n"
        "  --stable-json        omit wall-clock fields from the JSON\n"
        "  --stats-every N      stderr progress line every N instrs\n"
        "  --trace-out FILE     write a Chrome trace-event JSON "
        "(Perfetto)\n"
        "  --series-out FILE    append a JSONL time series of live "
        "counters\n"
        "  --profile-out FILE   write per-epoch model telemetry JSON "
        "(one run\n"
        "                       per phase; inspect with "
        "membw_profile_report)\n"
        "  --profile-epoch N    simulated micro-ops per epoch "
        "(default 65536)\n"
        "Provenance:\n"
        "  --version            print tool version and git describe\n"
        "  --build-info         print build flags and runtime SIMD "
        "tier\n\n"
        "%s",
        exitCodeHelp);
    std::exit(code);
}

/** Report a malformed flag value and die: names the flag, echoes the
 * offending value, and shows a working example. */
[[noreturn]] void
badFlag(const std::string &flag, const std::string &value,
        const Error &error, const std::string &example)
{
    fatal("invalid value '" + value + "' for " + flag + ": " +
          error.message + " (example: " + flag + " " + example + ")");
}

unsigned
smallFlag(const std::string &flag, const std::string &value)
{
    auto r = tryParseInt(value, 1, 1 << 20);
    if (!r.ok())
        badFlag(flag, value, r.error(), "4");
    return static_cast<unsigned>(r.value());
}

std::uint64_t
countFlag(const std::string &flag, const std::string &value)
{
    auto r = tryParseU64(value);
    if (!r.ok())
        badFlag(flag, value, r.error(), "100000");
    return r.value();
}

double
doubleFlag(const std::string &flag, const std::string &value)
{
    auto r = tryParseDouble(value);
    if (!r.ok())
        badFlag(flag, value, r.error(), "0.5");
    return r.value();
}

unsigned
jobsFlag(const std::string &flag, const std::string &value)
{
    auto r = tryParseJobs(value);
    if (!r.ok())
        badFlag(flag, value, r.error(), "4");
    return r.value();
}

/** Thrown from the progress hook to abort an in-flight phase once a
 * shutdown signal has been latched. */
struct PhaseInterrupt
{
};

void
writeCheckpoint(const std::string &path, std::uint64_t digest,
                std::uint64_t streamSize, unsigned phasesDone,
                const CoreResult *results)
{
    MEMBW_SPAN("checkpoint.write");
    ChkWriter w;
    w.beginSection(chkTag("META"));
    w.str("membw_decompose");
    w.u64(digest);
    w.u64(streamSize);
    w.u8(static_cast<std::uint8_t>(phasesDone));
    w.endSection();
    for (unsigned i = 0; i < phasesDone; ++i)
        saveCoreResult(w, results[i]);
    if (const EpochProfiler *prof = profilerActive())
        prof->saveState(w);

    auto result = w.writeFile(path);
    if (!result.ok())
        fatal("checkpoint failed: " + result.error().describe());
}

unsigned
loadCheckpoint(const std::string &path, std::uint64_t digest,
               std::uint64_t streamSize, CoreResult *results)
{
    MEMBW_SPAN("checkpoint.load");
    auto opened = ChkReader::fromFile(path);
    if (!opened.ok())
        fatal("cannot resume from '" + path +
              "': " + opened.error().describe());
    ChkReader r = std::move(opened.value());

    r.enterSection(chkTag("META"));
    const std::string tool = r.str();
    const std::uint64_t chkDigest = r.u64();
    const std::uint64_t chkStream = r.u64();
    const unsigned phasesDone = r.u8();
    r.leaveSection();

    if (r.failed())
        fatal("cannot resume from '" + path +
              "': " + r.error().describe());
    if (tool != "membw_decompose")
        fatal("cannot resume from '" + path +
              "': checkpoint was written by '" + tool + "'");
    if (chkDigest != digest)
        fatal("cannot resume from '" + path +
              "': checkpoint was taken under a different "
              "experiment/workload configuration");
    if (chkStream != streamSize)
        fatal("cannot resume from '" + path +
              "': checkpoint simulated a different instruction "
              "stream (" +
              std::to_string(chkStream) + " vs " +
              std::to_string(streamSize) + " micro-ops)");
    if (phasesDone > decompositionPhases)
        fatal("cannot resume from '" + path +
              "': implausible completed-phase count " +
              std::to_string(phasesDone));

    for (unsigned i = 0; i < phasesDone; ++i) {
        loadCoreResult(r, results[i]);
        if (r.failed())
            fatal("cannot resume from '" + path +
                  "': " + r.error().describe());
    }
    if (EpochProfiler *prof = profilerActive()) {
        if (r.remaining() == 0)
            fatal("cannot resume from '" + path +
                  "': checkpoint carries no profiler state (was the "
                  "interrupted run started without --profile-out?)");
        prof->loadState(r);
        if (r.failed())
            fatal("cannot resume from '" + path +
                  "': " + r.error().describe());
    } else if (r.remaining() != 0) {
        fatal("cannot resume from '" + path +
              "': checkpoint carries profiler state; rerun with "
              "the interrupted run's --profile-out/--profile-epoch");
    }
    return phasesDone;
}

} // namespace

int
main(int argc, char **argv)
{
    try {
        std::string workload;
        char letter = 'F';
        bool allExperiments = false;
        unsigned jobs = defaultJobs();
        bool spec95 = false;
        double scale = 0.5;
        std::uint64_t seed = 42;
        std::string statsJson;
        bool stableJson = false;
        std::uint64_t statsEvery = 0;
        std::string traceOut;
        std::string seriesOut;
        std::string profileOut;
        std::uint64_t profileEpoch = 0;
        std::string checkpoint;
        std::string resume;
        Cycle watchdogCycles = 1'000'000;
        std::uint64_t sigtermAfter = 0;
        std::string faultInject;

        DecomposeOverrides ov;

        auto need = [&](int &i) -> std::string {
            if (i + 1 >= argc) {
                emitLinef("missing value for %s (run --help for "
                          "the flag list)",
                          argv[i]);
                std::exit(exitUsage);
            }
            return argv[++i];
        };

        for (int i = 1; i < argc; ++i) {
            const std::string a = argv[i];
            if (a == "--help" || a == "-h")
                usage(exitOk);
            else if (a == "--version") {
                std::printf(
                    "%s\n",
                    formatVersionLine("membw_decompose").c_str());
                std::exit(exitOk);
            } else if (a == "--build-info") {
                std::printf("%s",
                            formatBuildInfo("membw_decompose",
                                            simdTierName(simdTier()))
                                .c_str());
                std::exit(exitOk);
            } else if (a == "--workload")
                workload = need(i);
            else if (a == "--experiment") {
                const std::string v = need(i);
                if (v == "all")
                    allExperiments = true;
                else
                    letter = v[0];
            } else if (a == "--jobs")
                jobs = jobsFlag(a, need(i));
            else if (a == "--spec95")
                spec95 = true;
            else if (a == "--scale")
                scale = doubleFlag(a, need(i));
            else if (a == "--seed")
                seed = countFlag(a, need(i));
            else if (a == "--mshrs")
                ov.mshrs = static_cast<int>(smallFlag(a, need(i)));
            else if (a == "--window")
                ov.window = static_cast<int>(smallFlag(a, need(i)));
            else if (a == "--issue-width")
                ov.width = static_cast<int>(smallFlag(a, need(i)));
            else if (a == "--no-prefetch")
                ov.noPrefetch = true;
            else if (a == "--l1l2-bus")
                ov.l1l2 = static_cast<int>(smallFlag(a, need(i)));
            else if (a == "--mem-bus")
                ov.membus = static_cast<int>(smallFlag(a, need(i)));
            else if (a == "--dram")
                ov.dram = need(i);
            else if (a == "--stats-json")
                statsJson = need(i);
            else if (a == "--stable-json")
                stableJson = true;
            else if (a == "--stats-every")
                statsEvery = countFlag(a, need(i));
            else if (a == "--trace-out")
                traceOut = need(i);
            else if (a == "--series-out")
                seriesOut = need(i);
            else if (a == "--profile-out")
                profileOut = need(i);
            else if (a == "--profile-epoch")
                profileEpoch = countFlag(a, need(i));
            else if (a == "--checkpoint")
                checkpoint = need(i);
            else if (a == "--resume")
                resume = need(i);
            else if (a == "--watchdog")
                watchdogCycles = countFlag(a, need(i));
            else if (a == "--sigterm-after")
                sigtermAfter = countFlag(a, need(i));
            else if (a == "--fault-inject")
                faultInject = need(i);
            else {
                emitLinef("unknown flag '%s' (run --help for the "
                          "flag list)",
                          a.c_str());
                std::exit(exitUsage);
            }
        }
        if (workload.empty())
            usage(exitUsage);
        if (profileEpoch && profileOut.empty())
            fatal("--profile-epoch requires --profile-out");
        if (!profileOut.empty() && profileEpoch == 0)
            profileEpoch = 65536;

        if (!faultInject.empty()) {
            auto armed = armFaultPlan(faultInject);
            if (!armed.ok())
                fatal("invalid --fault-inject: " +
                      armed.error().describe());
        }
        installShutdownHandlers();
        if (!traceOut.empty())
            tracingInit(traceOut, "membw_decompose");
        if (!seriesOut.empty())
            SeriesWriter::global().init(seriesOut);

        // Shared with the membw_served daemon (serve layer), which is
        // what keeps served decompose responses byte-identical to
        // this tool's --stats-json output.
        auto applyOverrides = [&](ExperimentConfig &cfg) {
            applyDecomposeOverrides(cfg, ov);
        };

        ExperimentConfig cfg = makeExperiment(letter, spec95);
        applyOverrides(cfg);

        const InstrStream stream =
            buildDecomposeStream(workload, scale, seed);

        if (allExperiments) {
            if (!checkpoint.empty() || !resume.empty())
                fatal("--experiment all does not support "
                      "--checkpoint/--resume: each of the 18 phase "
                      "cells is cheap to rerun, so drop those flags "
                      "(or run one experiment)");
            if (sigtermAfter)
                fatal("--sigterm-after is not supported with "
                      "--experiment all: micro-op counts are "
                      "per-cell and scheduling is parallel; use a "
                      "single experiment");
            if (!profileOut.empty())
                fatal("--experiment all does not support "
                      "--profile-out: cells run concurrently and "
                      "share no reference clock (profile a single "
                      "experiment instead)");

            static constexpr char letters[] = {'A', 'B', 'C',
                                               'D', 'E', 'F'};
            constexpr std::size_t nCells = 6 * decompositionPhases;

            std::printf("%s on experiments A-F%s (%zu micro-ops)\n",
                        workload.c_str(), spec95 ? " (SPEC95)" : "",
                        stream.size());
            // Worker count goes to stderr: stdout must stay
            // byte-identical at any --jobs value.
            emitLinef("membw_decompose: %u worker%s over %zu "
                      "cells",
                      jobs, jobs == 1 ? "" : "s", nCells);

            MEMBW_SPAN("run");
            WallTimer timer;
            SweepOptions sopt;
            sopt.jobs = jobs;
            // Degraded mode (exit 5): a failing cell takes out only
            // its experiment's row; a watchdog trip still aborts the
            // whole run with exit 4.
            sopt.tolerateCellFailures = true;
            sopt.abortAnyway = [](const std::exception &e) {
                return dynamic_cast<const WatchdogError *>(&e) !=
                       nullptr;
            };
            sopt.cancel = [] { return shutdownRequested(); };
            sopt.onPrefix = [&](std::size_t prefix) {
                // Serialized under the sweep mutex.
                SeriesWriter::global().sample(
                    {{"cells_done", static_cast<double>(prefix)},
                     {"cells_total", static_cast<double>(nCells)},
                     {"pool_queue_depth",
                      static_cast<double>(poolQueueDepth())},
                     {"pool_busy_workers",
                      static_cast<double>(poolBusyWorkers())}});
            };

            SweepResult<CoreResult> sweep;
            try {
                sweep = parallelSweep(
                    nCells, sopt, [&](std::size_t i) {
                        MEMBW_SPAN_D(
                            "cell",
                            std::string("exp=") +
                                letters[i / decompositionPhases] +
                                " phase=" +
                                phaseName(static_cast<unsigned>(
                                    i % decompositionPhases)));
                        if (MEMBW_FAULT_POINT_AT("cell", i))
                            fatal("injected cell fault (cell " +
                                  std::to_string(i) + ")");
                        ExperimentConfig cell = makeExperiment(
                            letters[i / decompositionPhases],
                            spec95);
                        applyOverrides(cell);
                        Watchdog watchdog(watchdogCycles);
                        cell.core.watchdog = &watchdog;
                        // The hook is a shutdown poll only:
                        // progress meters and stats registries are
                        // not thread-safe, so cells stay silent.
                        cell.core.progressEvery = 65536;
                        cell.core.progress = [](std::size_t,
                                                std::size_t) {
                            if (shutdownRequested())
                                throw PhaseInterrupt{};
                        };
                        return runPhase(stream, cell,
                                        static_cast<unsigned>(
                                            i % decompositionPhases));
                    });
            } catch (const PhaseInterrupt &) {
                emitLinef("\n%s received: aborted --experiment "
                          "all sweep",
                          shutdownSignalName());
                return exitInterrupted;
            }
            if (sweep.interrupted || sweep.completed < nCells) {
                emitLinef("\n%s received: %zu of %zu cells "
                          "completed",
                          shutdownSignalName(), sweep.completed,
                          nCells);
                return exitInterrupted;
            }

            // A failed cell poisons only its experiment: the other
            // five rows (and stats groups) come out identical to a
            // clean run at any --jobs value.
            const bool degraded = sweep.degraded();
            bool expFailed[6] = {};
            for (const CellFailure &f : sweep.failedCells)
                expFailed[f.cell / decompositionPhases] = true;

            TextTable t;
            t.header({"exp", "T_P", "T_I", "T", "f_P", "f_L", "f_B",
                      "IPC"});
            StatsRegistry registry;
            for (std::size_t e = 0; e < 6; ++e) {
                if (expFailed[e]) {
                    t.row({std::string(1, letters[e]), "fail", "fail",
                           "fail", "fail", "fail", "fail", "fail"});
                    continue;
                }
                const DecompositionResult r = assembleDecomposition(
                    sweep.cells[e * decompositionPhases],
                    sweep.cells[e * decompositionPhases + 1],
                    sweep.cells[e * decompositionPhases + 2]);
                t.row({std::string(1, letters[e]),
                       std::to_string(r.split.perfectCycles),
                       std::to_string(r.split.infiniteCycles),
                       std::to_string(r.split.fullCycles),
                       fixed(r.split.fP(), 3),
                       fixed(r.split.fL(), 3),
                       fixed(r.split.fB(), 3),
                       fixed(r.full.ipc, 2)});
                if (!statsJson.empty()) {
                    StatsGroup g = registry.group(
                        std::string(1, letters[e]));
                    publishDecompositionStats(g, r);
                }
            }
            std::printf("%s\n", t.render().c_str());
            if (degraded)
                std::printf("sweep degraded: %zu of %zu cells "
                            "failed\n",
                            sweep.failedCells.size(), nCells);

            if (!statsJson.empty()) {
                RunManifest manifest;
                manifest.tool = "membw_decompose";
                manifest.experiment = "all";
                manifest.workload = workload;
                manifest.config = spec95 ? "Table 5 A-F (SPEC95)"
                                         : "Table 5 A-F";
                manifest.seed = seed;
                manifest.scale = scale;
                manifest.refs = stream.size();
                manifest.wallSeconds = timer.seconds();
                manifest.degraded = degraded;
                manifest.omitTiming = stableJson;
                // --jobs deliberately unrecorded: the JSON must be
                // byte-identical at any worker count.
                JsonWriter w;
                w.beginObject();
                w.key("manifest");
                manifest.write(w);
                if (degraded) {
                    w.key("failed_cells");
                    w.beginArray();
                    for (const CellFailure &f : sweep.failedCells) {
                        w.beginObject();
                        w.field("cell", static_cast<std::uint64_t>(
                                            f.cell));
                        w.field(
                            "config",
                            std::string("exp=") +
                                letters[f.cell /
                                        decompositionPhases] +
                                " phase=" +
                                phaseName(static_cast<unsigned>(
                                    f.cell % decompositionPhases)));
                        w.field("error", f.message);
                        w.endObject();
                    }
                    w.endArray();
                }
                w.key("stats");
                writeStatsArray(registry, w);
                w.endObject();
                writeFileOrDie(statsJson, w.str());
            }
            return degraded ? exitDegraded : exitOk;
        }

        if (!profileOut.empty())
            profilerInit(profileOut, profileEpoch)
                .setVerbose(logEnabled(LogLevel::Debug));

        // Checkpoint identity: the full machine description plus the
        // stream's provenance.  The stream size is verified
        // separately for a clearer message.
        const std::uint64_t digest = fnv1a64(
            cfg.describe() + "|" + workload + "|" +
            std::to_string(seed) + "|" + std::to_string(scale));

        CoreResult results[decompositionPhases];
        unsigned phasesDone = 0;
        if (!resume.empty()) {
            phasesDone = loadCheckpoint(resume, digest, stream.size(),
                                        results);
            std::printf("resumed from %s (%u of %u phases done)\n",
                        resume.c_str(), phasesDone,
                        decompositionPhases);
        }

        MEMBW_SPAN("run");
        WallTimer timer;
        EpochProfiler *const prof = profilerActive();
        ProgressMeter meter("membw_decompose", statsEvery);

        // Per-phase watchdog; the cycle domain restarts at zero each
        // phase, so the guard must too.
        const Watchdog *liveWatchdog = nullptr;
        unsigned livePhase = 0;
        meter.setAnnotator([&] {
            char buf[96];
            std::snprintf(buf, sizeof(buf),
                          "phase %s | wd slack %.0f%%",
                          phaseName(livePhase),
                          100.0 * (liveWatchdog
                                       ? liveWatchdog->headroom()
                                       : 1.0));
            return std::string(buf);
        });

        // The progress hook doubles as the shutdown poll (and the
        // deterministic SIGTERM test point), so it must stay armed
        // even without --stats-every.  --sigterm-after counts
        // micro-ops across all three phases (including phases a
        // resume skipped), so the same flag value always interrupts
        // the same phase.
        bool sigtermFired = false;
        std::uint64_t opsCompleted = phasesDone * stream.size();
        cfg.core.progressEvery = statsEvery ? statsEvery : 65536;
        cfg.core.progress = [&](std::size_t done, std::size_t total) {
            // Stride-driven epoch clock: boundaries may overshoot by
            // up to progressEvery micro-ops (counted as clamped).
            if (prof)
                prof->advanceTo(done);
            meter.tick(done, total);
            SeriesWriter::global().sample(
                {{"ops",
                  static_cast<double>(opsCompleted + done)},
                 {"phase", static_cast<double>(livePhase)},
                 {"wd_slack", liveWatchdog
                                  ? liveWatchdog->headroom()
                                  : 1.0}});
            if (sigtermAfter && !sigtermFired &&
                opsCompleted + done >= sigtermAfter) {
                sigtermFired = true;
                std::raise(SIGTERM);
            }
            // 'crash:at=N' counts micro-ops across all phases, like
            // --sigterm-after, so one ref addresses any phase.
            (void)MEMBW_FAULT_POINT_MARK("crash",
                                         opsCompleted + done);
            if (shutdownRequested())
                throw PhaseInterrupt{};
        };

        std::printf("%s on %s (%.0f MHz)\n", workload.c_str(),
                    cfg.describe().c_str(), cfg.cpuMHz);

        for (; phasesDone < decompositionPhases; ++phasesDone) {
            Watchdog watchdog(watchdogCycles);
            cfg.core.watchdog = &watchdog;
            liveWatchdog = &watchdog;
            livePhase = phasesDone;
            // Profile each phase as its own run: sources live only
            // as long as the phase's MemorySystem, so attachment and
            // the closing endRun() both happen inside the hooks.
            MemSysHook preRun, postRun;
            if (prof) {
                preRun = [&](MemorySystem &mem) {
                    prof->beginRun(phaseName(livePhase));
                    attachMemSysSources(*prof, mem);
                    mem.attachProbe(prof);
                };
                postRun = [&](MemorySystem &mem) {
                    prof->endRun(stream.size());
                    mem.attachProbe(nullptr);
                };
            }
            try {
                MEMBW_SPAN_D("phase",
                             std::string(phaseName(phasesDone)));
                results[phasesDone] = runPhase(
                    stream, cfg, phasesDone, preRun, postRun);
            } catch (const PhaseInterrupt &) {
                tracingInstant("shutdown", shutdownSignalName());
                // The interrupted phase re-runs whole on --resume,
                // so its partial profiler run (and probe counts)
                // must not reach the checkpoint.
                if (prof)
                    prof->abortRun();
                // Drained: the completed phases are all durable
                // state there is; the interrupted phase re-runs
                // from its start on --resume.
                emitLinef("\n%s received: aborted %s phase "
                          "(%u of %u phases complete)",
                          shutdownSignalName(),
                          phaseName(phasesDone), phasesDone,
                          decompositionPhases);
                if (!checkpoint.empty()) {
                    writeCheckpoint(checkpoint, digest,
                                    stream.size(), phasesDone,
                                    results);
                    emitLinef("final checkpoint: %s",
                              checkpoint.c_str());
                }
                if (!statsJson.empty()) {
                    StatsRegistry registry;
                    for (unsigned i = 0; i < phasesDone; ++i) {
                        StatsGroup g =
                            registry.group(phaseName(i));
                        publishCoreStats(g, results[i]);
                    }
                    RunManifest manifest;
                    manifest.tool = "membw_decompose";
                    manifest.experiment = std::string(1, letter);
                    manifest.workload = workload;
                    manifest.config = cfg.describe();
                    manifest.seed = seed;
                    manifest.scale = scale;
                    manifest.refs = stream.size();
                    manifest.wallSeconds = timer.seconds();
                    manifest.interrupted = true;
                    manifest.omitTiming = stableJson;
                    manifest.set("phases_done",
                                 std::to_string(phasesDone));
                    writeProfileManifest(manifest, stableJson);

                    JsonWriter w;
                    w.beginObject();
                    w.key("manifest");
                    manifest.write(w);
                    w.key("stats");
                    writeStatsArray(registry, w);
                    w.endObject();
                    writeFileOrDie(statsJson, w.str());
                    emitLinef("partial stats: %s",
                              statsJson.c_str());
                }
                return exitInterrupted;
            }
            cfg.core.watchdog = nullptr;
            liveWatchdog = nullptr;
            opsCompleted += stream.size();
            if (!checkpoint.empty())
                writeCheckpoint(checkpoint, digest, stream.size(),
                                phasesDone + 1, results);
        }

        const DecompositionResult r = assembleDecomposition(
            results[0], results[1], results[2]);

        std::printf("T_P %llu | T_I %llu | T %llu cycles\n",
                    static_cast<unsigned long long>(
                        r.split.perfectCycles),
                    static_cast<unsigned long long>(
                        r.split.infiniteCycles),
                    static_cast<unsigned long long>(
                        r.split.fullCycles));
        std::printf("f_P %.3f | f_L %.3f | f_B %.3f\n", r.split.fP(),
                    r.split.fL(), r.split.fB());
        std::printf("IPC %.2f | L1 miss %llu | L2 miss %llu | "
                    "I-miss %llu | mispredict %llu\n",
                    r.full.ipc,
                    static_cast<unsigned long long>(
                        r.full.mem.l1Misses),
                    static_cast<unsigned long long>(
                        r.full.mem.l2Misses),
                    static_cast<unsigned long long>(
                        r.full.mem.iMisses),
                    static_cast<unsigned long long>(
                        r.full.mispredicts));
        if (r.full.mem.dramRowHits + r.full.mem.dramRowMisses)
            std::printf("DRAM row hit rate %.1f%%\n",
                        100.0 * r.full.mem.dramRowHits /
                            (r.full.mem.dramRowHits +
                             r.full.mem.dramRowMisses));

        if (!statsJson.empty()) {
            // Render through the shared serve-layer formatter so the
            // document is byte-for-byte what the daemon serves for
            // the same request.
            DecomposeRequest dreq;
            dreq.workload = workload;
            dreq.letter = letter;
            dreq.spec95 = spec95;
            dreq.scale = scale;
            dreq.seed = seed;
            dreq.overrides = ov;
            dreq.stableJson = stableJson;
            dreq.watchdogCycles = watchdogCycles;
            writeFileOrDie(statsJson,
                           renderDecomposeStatsJson(
                               dreq, stream.size(), r,
                               timer.seconds()));
        }
        if (prof) {
            profilerWriteNow("membw_decompose");
            std::printf("profile: %s\n", profileOut.c_str());
        }
        return exitOk;
    } catch (const WatchdogError &e) {
        emitLine(e.what());
        return exitWatchdog;
    } catch (const FatalError &e) {
        emitLine(e.what());
        return exitFatal;
    }
}
