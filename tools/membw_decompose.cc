/**
 * @file
 * membw_decompose — command-line execution-time decomposition driver.
 *
 * Runs a workload on one of the paper's machines (A-F, SPEC92 or
 * SPEC95 parameter set) or on a custom variant, and prints the
 * T_P / T_I / T split with f_P/f_L/f_B:
 *
 *   membw_decompose --workload Swm --experiment F
 *   membw_decompose --workload Vortex --experiment E --spec95
 *   membw_decompose --workload Swm --experiment F --dram sdram
 *   membw_decompose --workload Swm --experiment E --mshrs 2 --no-prefetch
 */

#include <cstdio>
#include <cstdlib>
#include <string>

#include "common/log.hh"
#include "cpu/experiment.hh"
#include "dram/dram.hh"
#include "obs/export.hh"
#include "obs/manifest.hh"
#include "obs/progress.hh"
#include "obs/registry.hh"
#include "workloads/workload.hh"

using namespace membw;

namespace {

[[noreturn]] void
usage(int code)
{
    std::printf(
        "membw_decompose — execution-time decomposition "
        "(Equations 1-3)\n\n"
        "  --workload NAME      synthetic kernel (required)\n"
        "  --experiment A-F     Table 5 machine (default F)\n"
        "  --spec95             use the SPEC95 parameter set\n"
        "  --scale S            trace-length scale (default 0.5)\n"
        "  --seed N             generation seed (default 42)\n"
        "Overrides:\n"
        "  --mshrs N            outstanding misses when lockup-free\n"
        "  --window N           RUU/in-flight entries\n"
        "  --issue-width N      fetch/issue/retire width\n"
        "  --no-prefetch        disable tagged prefetch\n"
        "  --l1l2-bus BYTES     L1/L2 bus width\n"
        "  --mem-bus BYTES      memory bus width\n"
        "  --dram fpm|edo|sdram|rdram   banked DRAM backend\n"
        "Telemetry:\n"
        "  --stats-json FILE    write manifest + full stats as JSON\n"
        "  --stats-every N      stderr progress line every N instrs\n");
    std::exit(code);
}

} // namespace

int
main(int argc, char **argv)
{
    try {
        std::string workload;
        char letter = 'F';
        bool spec95 = false;
        double scale = 0.5;
        std::uint64_t seed = 42;
        std::string statsJson;
        std::uint64_t statsEvery = 0;

        struct Overrides
        {
            int mshrs = -1, window = -1, width = -1;
            int l1l2 = -1, membus = -1;
            bool noPrefetch = false;
            std::string dram;
        } ov;

        auto need = [&](int &i) -> std::string {
            if (i + 1 >= argc)
                fatal(std::string("missing value for ") + argv[i]);
            return argv[++i];
        };

        for (int i = 1; i < argc; ++i) {
            const std::string a = argv[i];
            if (a == "--help" || a == "-h")
                usage(0);
            else if (a == "--workload")
                workload = need(i);
            else if (a == "--experiment")
                letter = need(i)[0];
            else if (a == "--spec95")
                spec95 = true;
            else if (a == "--scale")
                scale = std::atof(need(i).c_str());
            else if (a == "--seed")
                seed = std::strtoull(need(i).c_str(), nullptr, 10);
            else if (a == "--mshrs")
                ov.mshrs = std::atoi(need(i).c_str());
            else if (a == "--window")
                ov.window = std::atoi(need(i).c_str());
            else if (a == "--issue-width")
                ov.width = std::atoi(need(i).c_str());
            else if (a == "--no-prefetch")
                ov.noPrefetch = true;
            else if (a == "--l1l2-bus")
                ov.l1l2 = std::atoi(need(i).c_str());
            else if (a == "--mem-bus")
                ov.membus = std::atoi(need(i).c_str());
            else if (a == "--dram")
                ov.dram = need(i);
            else if (a == "--stats-json")
                statsJson = need(i);
            else if (a == "--stats-every")
                statsEvery =
                    std::strtoull(need(i).c_str(), nullptr, 10);
            else {
                std::fprintf(stderr, "unknown flag '%s'\n",
                             a.c_str());
                usage(1);
            }
        }
        if (workload.empty())
            usage(1);

        ExperimentConfig cfg = makeExperiment(letter, spec95);
        if (ov.mshrs > 0)
            cfg.mem.mshrs = static_cast<unsigned>(ov.mshrs);
        if (ov.window > 0)
            cfg.core.windowSlots = static_cast<unsigned>(ov.window);
        if (ov.width > 0)
            cfg.core.issueWidth = static_cast<unsigned>(ov.width);
        if (ov.noPrefetch)
            cfg.mem.taggedPrefetch = false;
        if (ov.l1l2 > 0)
            cfg.mem.l1l2BusBytes = static_cast<Bytes>(ov.l1l2);
        if (ov.membus > 0)
            cfg.mem.memBusBytes = static_cast<Bytes>(ov.membus);
        if (!ov.dram.empty()) {
            const DramKind kind =
                ov.dram == "fpm"     ? DramKind::FastPageMode
                : ov.dram == "edo"   ? DramKind::EDO
                : ov.dram == "sdram" ? DramKind::Synchronous
                : ov.dram == "rdram"
                    ? DramKind::Rambus
                    : (fatal("bad --dram '" + ov.dram + "'"),
                       DramKind::FastPageMode);
            cfg.mem.dram = DramConfig::preset(kind, cfg.cpuMHz);
        }

        WorkloadParams p;
        p.scale = scale;
        p.seed = seed;
        const auto run = makeWorkload(workload)->run(p);
        const InstrStream stream = InstrStream::fromRun(
            run, codeFootprintBytes(workload), seed);

        WallTimer timer;
        ProgressMeter meter("membw_decompose", statsEvery);
        if (statsEvery) {
            cfg.core.progressEvery = statsEvery;
            cfg.core.progress = [&meter](std::size_t done,
                                         std::size_t total) {
                meter.tick(done, total);
            };
        }

        std::printf("%s on %s (%.0f MHz)\n", workload.c_str(),
                    cfg.describe().c_str(), cfg.cpuMHz);
        const DecompositionResult r = runDecomposition(stream, cfg);

        std::printf("T_P %llu | T_I %llu | T %llu cycles\n",
                    static_cast<unsigned long long>(
                        r.split.perfectCycles),
                    static_cast<unsigned long long>(
                        r.split.infiniteCycles),
                    static_cast<unsigned long long>(
                        r.split.fullCycles));
        std::printf("f_P %.3f | f_L %.3f | f_B %.3f\n", r.split.fP(),
                    r.split.fL(), r.split.fB());
        std::printf("IPC %.2f | L1 miss %llu | L2 miss %llu | "
                    "I-miss %llu | mispredict %llu\n",
                    r.full.ipc,
                    static_cast<unsigned long long>(
                        r.full.mem.l1Misses),
                    static_cast<unsigned long long>(
                        r.full.mem.l2Misses),
                    static_cast<unsigned long long>(
                        r.full.mem.iMisses),
                    static_cast<unsigned long long>(
                        r.full.mispredicts));
        if (r.full.mem.dramRowHits + r.full.mem.dramRowMisses)
            std::printf("DRAM row hit rate %.1f%%\n",
                        100.0 * r.full.mem.dramRowHits /
                            (r.full.mem.dramRowHits +
                             r.full.mem.dramRowMisses));

        if (!statsJson.empty()) {
            StatsRegistry registry;
            publishDecompositionStats(registry, r);

            RunManifest manifest;
            manifest.tool = "membw_decompose";
            manifest.experiment = std::string(1, letter);
            manifest.workload = workload;
            manifest.config = cfg.describe();
            manifest.seed = seed;
            manifest.scale = scale;
            manifest.refs = stream.size();
            manifest.wallSeconds = timer.seconds();

            JsonWriter w;
            w.beginObject();
            w.key("manifest");
            manifest.write(w);
            w.key("stats");
            writeStatsArray(registry, w);
            w.endObject();
            writeFileOrDie(statsJson, w.str());
        }
        return 0;
    } catch (const FatalError &e) {
        std::fprintf(stderr, "%s\n", e.what());
        return 1;
    }
}
