/**
 * @file
 * membw_served: long-lived sweep/decompose daemon.
 *
 * Listens on a Unix domain socket for newline-delimited JSON
 * requests (see docs/serving.md and src/serve/protocol.hh), shares
 * one ThreadPool across requests, and layers a content-addressed
 * artifact cache plus a digest-keyed result cache so a warm repeat
 * request is a hash lookup instead of a simulation.
 *
 * Exit codes follow the resilience contract: 0 after a `shutdown`
 * request, 3 after SIGTERM/SIGINT (in-flight requests are drained
 * and answered first), 1 on fatal setup errors, 2 on usage errors.
 */

#include <cstdio>
#include <cstring>
#include <string>

#include "common/log.hh"
#include "common/parse.hh"
#include "exec/simd.hh"
#include "obs/build_info.hh"
#include "resilience/exit_codes.hh"
#include "resilience/fault_injection.hh"
#include "resilience/signals.hh"
#include "serve/server.hh"

using namespace membw;

namespace {

void
usage(const char *argv0)
{
    std::fprintf(
        stderr,
        "usage: %s --socket PATH [options]\n\n"
        "Long-lived simulation daemon (see docs/serving.md).\n\n"
        "Options:\n"
        "  --socket PATH       Unix socket path (default membw.sock)\n"
        "  --jobs N            shared worker pool size (default 1)\n"
        "  --cache-bytes N     result-cache bound (default 64M)\n"
        "  --artifact-bytes N  artifact-cache bound (default 512M)\n"
        "  --queue N           admission queue capacity (default 8)\n"
        "  --spill-dir DIR     spill evicted clean results here\n"
        "  --sigterm-after N   raise SIGTERM as the Nth compute job\n"
        "                      starts (drain-path testing)\n"
        "  --fault-inject SPEC deterministic fault injection\n"
        "                      (site[:at=N][:prob=P[:seed=S]])\n"
        "  --version           print version and exit\n"
        "  --build-info        print build provenance and exit\n"
        "  --help              this text\n\n"
        "%s",
        argv0, exitCodeHelp);
}

} // namespace

int
main(int argc, char **argv)
{
    ServerOptions opts;
    opts.socketPath = "membw.sock";

    auto need = [&](int &i) -> std::string {
        if (i + 1 >= argc)
            fatal(std::string(argv[i]) + " requires a value");
        return argv[++i];
    };

    try {
        for (int i = 1; i < argc; ++i) {
            const std::string a = argv[i];
            if (a == "--help" || a == "-h") {
                usage(argv[0]);
                return exitOk;
            } else if (a == "--version") {
                std::printf("%s\n",
                            formatVersionLine("membw_served").c_str());
                return exitOk;
            } else if (a == "--build-info") {
                std::printf("%s", formatBuildInfo(
                                      "membw_served",
                                      simdTierName(simdTier()))
                                      .c_str());
                return exitOk;
            } else if (a == "--socket") {
                opts.socketPath = need(i);
            } else if (a == "--jobs") {
                opts.jobs = tryParseJobs(need(i)).orDie();
            } else if (a == "--cache-bytes") {
                opts.resultCacheBytes = tryParseSize(need(i)).orDie();
            } else if (a == "--artifact-bytes") {
                opts.artifactCacheBytes =
                    tryParseSize(need(i)).orDie();
            } else if (a == "--queue") {
                opts.queueCapacity = static_cast<std::size_t>(
                    tryParseInt(need(i), 1, 1 << 20).orDie());
            } else if (a == "--spill-dir") {
                opts.spillDir = need(i);
            } else if (a == "--sigterm-after") {
                opts.sigtermAfterJobs = tryParseU64(need(i)).orDie();
            } else if (a == "--fault-inject") {
                armFaultPlan(need(i)).orDie();
            } else {
                std::fprintf(stderr, "unknown option '%s'\n\n",
                             a.c_str());
                usage(argv[0]);
                return exitUsage;
            }
        }
    } catch (const FatalError &e) {
        std::fprintf(stderr, "%s\n", e.what());
        return exitUsage;
    }

    installShutdownHandlers();
    try {
        ServeServer server(std::move(opts));
        return server.run();
    } catch (const FatalError &e) {
        std::fprintf(stderr, "%s\n", e.what());
        return exitFatal;
    }
}
