/**
 * @file
 * membw_torture — crash-recovery torture harness.
 *
 * Generates hundreds of seeded kill/inject/resume schedules against
 * membw_sim and asserts that every one of them converges to final
 * --stable-json stats byte-identical to an uninterrupted baseline:
 *
 *   membw_torture --sim build/tools/membw_sim --schedules 200
 *
 * Each schedule is one of:
 *   crash/resume   1-3 'crash:at=N' kills (simulated kill -9 via
 *                  --fault-inject, exit 137) at seeded positions
 *                  across both simulation phases, each followed by a
 *                  --resume leg, ending in a clean leg;
 *   ckpt-fault     an injected disk-full on the Kth checkpoint write
 *                  (exit 1); the previous committed checkpoint must
 *                  survive untorn and resume cleanly;
 *   stats-fault    injected failures on the stats artifact write —
 *                  hard ENOSPC (exit 1, no file, no .tmp), one
 *                  transient short write (retry succeeds, exit 0),
 *                  or exhausted retries (exit 1, no file).
 *
 * On any divergence the harness stops, prints every command of the
 * failing schedule (replayable by hand), keeps the artifact
 * directory, and exits 1.
 *
 * --served PATH switches to daemon schedules against membw_served:
 * SIGTERM mid-request (the daemon must drain and answer the in-flight
 * request byte-identically before exiting 3), an injected allocation
 * fault on the result cache (every response recomputes, none cached,
 * no crash), and an injected io-write fault on the spill path (evicted
 * results drop instead of spilling; responses stay correct).
 */

#include <sys/stat.h>
#include <sys/types.h>
#include <sys/wait.h>

#include <dirent.h>
#include <fcntl.h>
#include <unistd.h>

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include <csignal>

#include "common/log.hh"
#include "common/parse.hh"
#include "common/rng.hh"
#include "obs/emit.hh"
#include "obs/json.hh"
#include "resilience/exit_codes.hh"
#include "serve/client.hh"

using namespace membw;

namespace {

[[noreturn]] void
usage(int code)
{
    std::printf(
        "membw_torture — seeded kill/inject/resume torture harness\n\n"
        "  --sim PATH       membw_sim binary to torture\n"
        "  --served PATH    membw_served binary: run daemon schedules\n"
        "                   instead (SIGTERM drain, cache-alloc and\n"
        "                   spill io-write fault injection)\n"
        "  --schedules N    schedules to run (default 200)\n"
        "  --seed N         master schedule seed (default 1)\n"
        "  --start N        first schedule index (default 0; use the\n"
        "                   index a failure reported to replay it)\n"
        "  --workload NAME  workload under test (default Compress)\n"
        "  --scale S        trace-length scale (default 0.05)\n"
        "  --dir PATH       artifact directory (default: a fresh\n"
        "                   directory under $TMPDIR)\n"
        "  --keep           keep artifacts on success\n\n"
        "Exit 0 when every schedule converges byte-identically, 1 on\n"
        "the first divergence (artifacts kept, commands printed).\n");
    std::exit(code);
}

struct Options
{
    std::string sim;
    std::string served; ///< daemon mode when non-empty
    std::size_t schedules = 200;
    std::uint64_t seed = 1;
    std::size_t start = 0;
    std::string workload = "Compress";
    double scale = 0.05;
    std::string dir;
    bool keep = false;
};

/** One child invocation of the simulator. */
struct Leg
{
    std::vector<std::string> args; ///< argv tail (after the binary)
    int exitStatus = -1;
};

std::string
quoteCmd(const std::string &sim, const Leg &leg)
{
    std::string s = sim;
    for (const std::string &a : leg.args) {
        s += ' ';
        s += a;
    }
    return s;
}

/**
 * fork/exec the simulator with stdout+stderr redirected to @p log.
 * Returns the child's exit status (137 for the injected crash), or
 * dies on infrastructure failures (fork/exec themselves).
 */
int
runLeg(const std::string &sim, const Leg &leg, const std::string &log)
{
    const pid_t pid = ::fork();
    if (pid < 0)
        fatal("fork failed: " + std::string(std::strerror(errno)));
    if (pid == 0) {
        const int fd = ::open(log.c_str(),
                              O_WRONLY | O_CREAT | O_TRUNC, 0644);
        if (fd >= 0) {
            ::dup2(fd, 1);
            ::dup2(fd, 2);
            ::close(fd);
        }
        std::vector<char *> argv;
        argv.push_back(const_cast<char *>(sim.c_str()));
        for (const std::string &a : leg.args)
            argv.push_back(const_cast<char *>(a.c_str()));
        argv.push_back(nullptr);
        ::execv(sim.c_str(), argv.data());
        std::fprintf(stderr, "exec '%s' failed: %s\n", sim.c_str(),
                     std::strerror(errno));
        std::_Exit(127);
    }
    int status = 0;
    if (::waitpid(pid, &status, 0) != pid)
        fatal("waitpid failed");
    if (WIFSIGNALED(status))
        return 128 + WTERMSIG(status);
    return WEXITSTATUS(status);
}

bool
fileExists(const std::string &path)
{
    struct stat st;
    return ::stat(path.c_str(), &st) == 0;
}

std::string
slurp(const std::string &path)
{
    std::FILE *f = std::fopen(path.c_str(), "rb");
    if (!f)
        fatal("cannot open '" + path + "' for reading");
    std::string out;
    char buf[65536];
    std::size_t n;
    while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0)
        out.append(buf, n);
    std::fclose(f);
    return out;
}

void
removeTree(const std::string &dir)
{
    if (DIR *d = ::opendir(dir.c_str())) {
        while (const dirent *e = ::readdir(d)) {
            const std::string name = e->d_name;
            if (name != "." && name != "..")
                std::remove((dir + "/" + name).c_str());
        }
        ::closedir(d);
    }
    ::rmdir(dir.c_str());
}

Options
parse(int argc, char **argv)
{
    Options o;
    auto need = [&](int &i) -> std::string {
        if (i + 1 >= argc) {
            emitLinef("missing value for %s", argv[i]);
            std::exit(exitUsage);
        }
        return argv[++i];
    };
    auto count = [&](const std::string &flag, const std::string &v) {
        auto r = tryParseU64(v);
        if (!r.ok())
            fatal("invalid value '" + v + "' for " + flag + ": " +
                  r.error().message);
        return r.value();
    };
    for (int i = 1; i < argc; ++i) {
        const std::string a = argv[i];
        if (a == "--help" || a == "-h")
            usage(exitOk);
        else if (a == "--sim")
            o.sim = need(i);
        else if (a == "--served")
            o.served = need(i);
        else if (a == "--schedules")
            o.schedules = static_cast<std::size_t>(count(a, need(i)));
        else if (a == "--seed")
            o.seed = count(a, need(i));
        else if (a == "--start")
            o.start = static_cast<std::size_t>(count(a, need(i)));
        else if (a == "--workload")
            o.workload = need(i);
        else if (a == "--scale") {
            auto r = tryParseDouble(need(i));
            if (!r.ok())
                fatal("invalid --scale: " + r.error().message);
            o.scale = r.value();
        } else if (a == "--dir")
            o.dir = need(i);
        else if (a == "--keep")
            o.keep = true;
        else {
            emitLinef("unknown flag '%s' (run --help)", a.c_str());
            std::exit(exitUsage);
        }
    }
    if (o.sim.empty() && o.served.empty()) {
        emitLinef("--sim PATH or --served PATH is required "
                  "(run --help)");
        std::exit(exitUsage);
    }
    return o;
}

/** Shared flags making a run deterministic and byte-comparable. */
std::vector<std::string>
baseArgs(const Options &o)
{
    char scale[32];
    std::snprintf(scale, sizeof(scale), "%g", o.scale);
    return {"--workload", o.workload, "--scale",  scale,
            "--mtc",      "--stable-json"};
}

struct ScheduleOutcome
{
    bool ok = true;
    std::string why;
    std::vector<std::string> commands; ///< for the failure report
};

/** Run one schedule; every assertion lands in the outcome. */
ScheduleOutcome
runSchedule(const Options &o, std::size_t index,
            const std::string &baseline, std::uint64_t totalPos)
{
    ScheduleOutcome out;
    Rng rng(o.seed * 0x9e3779b97f4a7c15ull + index);
    const std::string dir = o.dir;
    const std::string ck = dir + "/ck";
    const std::string statsJson = dir + "/final.json";
    const std::string log = dir + "/leg.log";
    std::remove(ck.c_str());
    std::remove((ck + ".tmp").c_str());
    std::remove(statsJson.c_str());
    std::remove((statsJson + ".tmp").c_str());

    auto fail = [&](const std::string &why) {
        out.ok = false;
        out.why = why;
    };
    auto exec = [&](Leg &leg) {
        out.commands.push_back(quoteCmd(o.sim, leg));
        leg.exitStatus = runLeg(o.sim, leg, log);
        return leg.exitStatus;
    };
    auto compareFinal = [&] {
        if (!fileExists(statsJson)) {
            fail("final stats file was never written");
            return;
        }
        if (slurp(statsJson) != baseline)
            fail("final stats diverged from the uninterrupted "
                 "baseline");
    };

    // Checkpoint cadence: small enough that most crash positions have
    // a committed snapshot behind them, varied to move the boundaries.
    const std::uint64_t every = 1000 + rng.below(totalPos / 2 + 1);
    const std::string everyStr = std::to_string(every);

    const std::uint64_t kind = rng.below(10);
    if (kind < 6) {
        // crash/resume: 1-3 kills at increasing positions, then a
        // clean leg; every leg checkpoints so the next can resume.
        const std::size_t crashes = 1 + rng.below(3);
        std::uint64_t pos = 0;
        for (std::size_t c = 0; c < crashes; ++c) {
            pos += 1 + rng.below(totalPos / crashes);
            if (pos > totalPos)
                pos = totalPos;
            Leg leg;
            leg.args = baseArgs(o);
            leg.args.insert(leg.args.end(),
                            {"--stats-json", statsJson,
                             "--checkpoint", ck,
                             "--checkpoint-every", everyStr,
                             "--fault-inject",
                             "crash:at=" + std::to_string(pos)});
            if (fileExists(ck))
                leg.args.insert(leg.args.end(), {"--resume", ck});
            const int status = exec(leg);
            // The crash may land after the run finished (position
            // past the final mark): that leg completes cleanly.
            if (status == exitOk) {
                compareFinal();
                return out;
            }
            if (status != 137) {
                fail("crash leg exited " + std::to_string(status) +
                     " (expected 137 or 0)");
                return out;
            }
            if (fileExists(ck + ".tmp")) {
                fail("crash left a torn checkpoint temp file");
                return out;
            }
        }
        Leg leg;
        leg.args = baseArgs(o);
        leg.args.insert(leg.args.end(),
                        {"--stats-json", statsJson, "--checkpoint",
                         ck, "--checkpoint-every", everyStr});
        if (fileExists(ck))
            leg.args.insert(leg.args.end(), {"--resume", ck});
        if (exec(leg) != exitOk) {
            fail("clean resume leg exited " +
                 std::to_string(leg.exitStatus));
            return out;
        }
        compareFinal();
        return out;
    }

    if (kind < 8) {
        // ckpt-fault: disk-full on the Kth checkpoint write.  The
        // run dies (exit 1) but the previously committed checkpoint
        // must survive and resume to the baseline.
        const std::uint64_t nCkpts = totalPos / 2 / every;
        const std::uint64_t k = 1 + rng.below(nCkpts ? nCkpts : 1);
        Leg leg;
        leg.args = baseArgs(o);
        leg.args.insert(leg.args.end(),
                        {"--stats-json", statsJson, "--checkpoint",
                         ck, "--checkpoint-every", everyStr,
                         "--fault-inject",
                         "enospc:at=" + std::to_string(k)});
        const int status = exec(leg);
        if (status == exitOk) {
            // Fewer checkpoints than k: the fault never fired.
            compareFinal();
            return out;
        }
        if (status != exitFatal) {
            fail("ckpt-fault leg exited " + std::to_string(status) +
                 " (expected 1 or 0)");
            return out;
        }
        if (fileExists(ck + ".tmp")) {
            fail("failed checkpoint left its temp file behind");
            return out;
        }
        if (k > 1 && !fileExists(ck)) {
            fail("previously committed checkpoint vanished");
            return out;
        }
        Leg resume;
        resume.args = baseArgs(o);
        resume.args.insert(resume.args.end(),
                           {"--stats-json", statsJson});
        if (fileExists(ck))
            resume.args.insert(resume.args.end(), {"--resume", ck});
        if (exec(resume) != exitOk) {
            fail("resume after checkpoint fault exited " +
                 std::to_string(resume.exitStatus));
            return out;
        }
        compareFinal();
        return out;
    }

    // stats-fault: the artifact write itself fails.
    const std::uint64_t variant = rng.below(3);
    Leg leg;
    leg.args = baseArgs(o);
    leg.args.insert(leg.args.end(), {"--stats-json", statsJson});
    if (variant == 0) {
        // Hard ENOSPC: exit 1, no file, no temp.
        leg.args.insert(leg.args.end(),
                        {"--fault-inject", "enospc:at=1"});
        if (exec(leg) != exitFatal) {
            fail("enospc stats leg exited " +
                 std::to_string(leg.exitStatus) + " (expected 1)");
            return out;
        }
        if (fileExists(statsJson) ||
            fileExists(statsJson + ".tmp")) {
            fail("failed stats write left a file behind");
            return out;
        }
        return out;
    }
    if (variant == 1) {
        // One transient short write: the retry loop recovers and the
        // artifact is byte-identical to the baseline.
        leg.args.insert(leg.args.end(),
                        {"--fault-inject", "io-write:at=1"});
        if (exec(leg) != exitOk) {
            fail("transient stats leg exited " +
                 std::to_string(leg.exitStatus) + " (expected 0)");
            return out;
        }
        compareFinal();
        return out;
    }
    // Every attempt fails: retries exhaust, exit 1, nothing torn.
    leg.args.insert(leg.args.end(),
                    {"--fault-inject", "io-write:after=0"});
    if (exec(leg) != exitFatal) {
        fail("exhausted-retries leg exited " +
             std::to_string(leg.exitStatus) + " (expected 1)");
        return out;
    }
    if (fileExists(statsJson) || fileExists(statsJson + ".tmp")) {
        fail("exhausted-retries write left a file behind");
        return out;
    }
    return out;
}

// ---------------------------------------------------------------------
// Daemon schedules (--served)
// ---------------------------------------------------------------------

/** Spawn the daemon in the background with output to @p log. */
pid_t
spawnDaemon(const std::string &daemon,
            const std::vector<std::string> &args,
            const std::string &log)
{
    const pid_t pid = ::fork();
    if (pid < 0)
        fatal("fork failed: " + std::string(std::strerror(errno)));
    if (pid == 0) {
        const int fd = ::open(log.c_str(),
                              O_WRONLY | O_CREAT | O_TRUNC, 0644);
        if (fd >= 0) {
            ::dup2(fd, 1);
            ::dup2(fd, 2);
            ::close(fd);
        }
        std::vector<char *> argv;
        argv.push_back(const_cast<char *>(daemon.c_str()));
        for (const std::string &a : args)
            argv.push_back(const_cast<char *>(a.c_str()));
        argv.push_back(nullptr);
        ::execv(daemon.c_str(), argv.data());
        std::fprintf(stderr, "exec '%s' failed: %s\n", daemon.c_str(),
                     std::strerror(errno));
        std::_Exit(127);
    }
    return pid;
}

int
waitDaemon(pid_t pid)
{
    int status = 0;
    if (::waitpid(pid, &status, 0) != pid)
        fatal("waitpid failed");
    if (WIFSIGNALED(status))
        return 128 + WTERMSIG(status);
    return WEXITSTATUS(status);
}

/** The two canonical sweep requests every daemon schedule replays. */
std::pair<std::string, std::string>
servedRequests(const Options &o)
{
    char scale[32];
    std::snprintf(scale, sizeof(scale), "%g", o.scale);
    auto req = [&](const char *sizes) {
        return std::string("{\"op\":\"sweep\",\"workload\":\"") +
               o.workload + "\",\"scale\":" + scale +
               ",\"sizes\":\"" + sizes +
               "\",\"mtc\":true,\"stable\":true}";
    };
    return {req("1K,4K"), req("8K")};
}

/** The envelope's "body"; empty on non-ok responses. */
std::string
servedBody(const std::string &line)
{
    const JsonValue v = parseJson(line);
    const JsonValue *status = v.find("status");
    if (!status || status->asString() != "ok")
        return {};
    const JsonValue *body = v.find("body");
    return body ? body->asString() : std::string();
}

/**
 * One daemon schedule.  Kind 0 proves the SIGTERM drain contract:
 * the signal is raised as the first compute job starts, yet the
 * in-flight client still receives the complete, byte-correct
 * response before the daemon exits with the interrupted code.
 * Kinds 1 and 2 arm fault injection on the result-cache insert
 * ("alloc") and the spill write ("io-write"): the daemon must keep
 * answering correctly — degraded to recomputing, never crashing.
 */
ScheduleOutcome
runServedSchedule(const Options &o, std::size_t index,
                  const std::string &body1, const std::string &body2)
{
    ScheduleOutcome out;
    Rng rng(o.seed * 0x9e3779b97f4a7c15ull + index);
    const std::string sock = o.dir + "/served.sock";
    const std::string log = o.dir + "/served.log";
    const std::string spill = o.dir + "/spill";
    std::remove(sock.c_str());
    const auto [req1, req2] = servedRequests(o);

    auto fail = [&](const std::string &why) {
        out.ok = false;
        out.why = why;
    };

    const std::uint64_t kind = rng.below(3);
    std::vector<std::string> args{"--socket", sock, "--jobs", "2"};
    if (kind == 0) {
        args.insert(args.end(), {"--sigterm-after", "1"});
    } else if (kind == 1) {
        args.insert(args.end(), {"--fault-inject", "alloc:after=0"});
    } else {
        // Bound the cache just above one response so the second
        // request evicts the first; the injected io-write fault makes
        // every spill attempt fail.
        ::mkdir(spill.c_str(), 0755);
        args.insert(args.end(),
                    {"--cache-bytes",
                     std::to_string(body1.size() + 512), "--spill-dir",
                     spill, "--fault-inject", "io-write:after=0"});
    }
    {
        std::string cmd = o.served;
        for (const std::string &a : args)
            cmd += " " + a;
        out.commands.push_back(cmd);
    }

    const pid_t pid = spawnDaemon(o.served, args, log);
    if (!waitForServer(sock, 10'000)) {
        ::kill(pid, SIGKILL);
        waitDaemon(pid);
        fail("daemon did not come up on " + sock);
        return out;
    }

    if (kind == 0) {
        // The in-flight request must be drained and answered in full.
        auto resp = serveRequestOnce(sock, req1);
        if (!resp || servedBody(*resp) != body1) {
            ::kill(pid, SIGKILL);
            waitDaemon(pid);
            fail("drained response missing or diverged from the "
                 "clean-daemon baseline");
            return out;
        }
        const int status = waitDaemon(pid);
        if (status != exitInterrupted) {
            fail("daemon exited " + std::to_string(status) +
                 " after SIGTERM (expected " +
                 std::to_string(exitInterrupted) + ")");
            return out;
        }
        if (fileExists(sock))
            fail("daemon left its socket behind after SIGTERM");
        return out;
    }

    // Fault kinds: alternate requests so kind 2 keeps evicting (and
    // keeps failing to spill); every response must stay byte-correct
    // and uncached computation must not crash the daemon.
    const std::size_t rounds = 2 + rng.below(3);
    for (std::size_t r = 0; r < rounds; ++r) {
        const bool first = r % 2 == 0;
        auto resp = serveRequestOnce(sock, first ? req1 : req2);
        if (!resp || servedBody(*resp) != (first ? body1 : body2)) {
            ::kill(pid, SIGKILL);
            waitDaemon(pid);
            fail("degraded response " + std::to_string(r) +
                 " missing or diverged under fault injection");
            return out;
        }
        if (kind == 1) {
            // The alloc fault blocks every insert: no response may
            // ever be served from cache.
            const JsonValue v = parseJson(*resp);
            if (const JsonValue *cached = v.find("cached");
                cached && cached->asBool()) {
                ::kill(pid, SIGKILL);
                waitDaemon(pid);
                fail("response was cached despite the injected "
                     "alloc fault");
                return out;
            }
        }
    }
    (void)serveRequestOnce(sock, "{\"op\":\"shutdown\"}");
    const int status = waitDaemon(pid);
    if (status != exitOk)
        fail("daemon exited " + std::to_string(status) +
             " under fault injection (expected 0)");
    return out;
}

/** Daemon-mode torture: clean baseline responses, then schedules. */
int
runServedTorture(const Options &o)
{
    const std::string sock = o.dir + "/served.sock";
    const auto [req1, req2] = servedRequests(o);

    // Clean daemon: the baseline bodies every schedule must match.
    const pid_t pid = spawnDaemon(o.served,
                                  {"--socket", sock, "--jobs", "2"},
                                  o.dir + "/base.log");
    if (!waitForServer(sock, 10'000)) {
        ::kill(pid, SIGKILL);
        waitDaemon(pid);
        fatal("baseline daemon did not come up (see " + o.dir +
              "/base.log)");
    }
    const std::string body1 =
        servedBody(serveRequestOnce(sock, req1).value_or("{}"));
    const std::string body2 =
        servedBody(serveRequestOnce(sock, req2).value_or("{}"));
    (void)serveRequestOnce(sock, "{\"op\":\"shutdown\"}");
    if (waitDaemon(pid) != exitOk || body1.empty() || body2.empty())
        fatal("baseline daemon run failed (see " + o.dir +
              "/base.log)");

    std::printf("torture: %zu daemon schedules (seed %llu)\n",
                o.schedules,
                static_cast<unsigned long long>(o.seed));
    for (std::size_t s = o.start; s < o.start + o.schedules; ++s) {
        const ScheduleOutcome r =
            runServedSchedule(o, s, body1, body2);
        if (!r.ok) {
            std::printf("\nschedule %zu FAILED: %s\n", s,
                        r.why.c_str());
            std::printf("replay: --served %s --seed %llu --start "
                        "%zu --schedules 1 --dir %s\n",
                        o.served.c_str(),
                        static_cast<unsigned long long>(o.seed), s,
                        o.dir.c_str());
            for (const std::string &c : r.commands)
                std::printf("  %s\n", c.c_str());
            std::printf("artifacts kept in %s\n", o.dir.c_str());
            return exitFatal;
        }
        if ((s + 1) % 25 == 0 || s + 1 == o.start + o.schedules)
            emitLinef("membw_torture: %zu/%zu daemon schedules ok",
                      s + 1 - o.start, o.schedules);
    }
    std::printf("torture: all %zu daemon schedules converged\n",
                o.schedules);
    return exitOk;
}

} // namespace

int
main(int argc, char **argv)
{
    try {
        Options o = parse(argc, argv);

        bool madeDir = false;
        if (o.dir.empty()) {
            const char *tmp = std::getenv("TMPDIR");
            std::string tmpl = std::string(tmp && *tmp ? tmp : "/tmp") +
                               "/membw_torture.XXXXXX";
            std::vector<char> buf(tmpl.begin(), tmpl.end());
            buf.push_back('\0');
            if (!::mkdtemp(buf.data()))
                fatal("mkdtemp failed: " +
                      std::string(std::strerror(errno)));
            o.dir = buf.data();
            madeDir = true;
        } else {
            ::mkdir(o.dir.c_str(), 0755);
        }

        if (!o.served.empty()) {
            const int rc = runServedTorture(o);
            if (rc == exitOk && !o.keep && madeDir) {
                removeTree(o.dir + "/spill");
                removeTree(o.dir);
            }
            else if (rc == exitOk)
                std::printf("artifacts in %s\n", o.dir.c_str());
            return rc;
        }

        // Uninterrupted baseline: the byte-exact target every
        // schedule must converge to, and the source of the run's
        // reference count (positions span both phases).
        const std::string basePath = o.dir + "/base.json";
        Leg base;
        base.args = baseArgs(o);
        base.args.insert(base.args.end(), {"--stats-json", basePath});
        std::printf("baseline: %s\n",
                    quoteCmd(o.sim, base).c_str());
        if (runLeg(o.sim, base, o.dir + "/base.log") != exitOk)
            fatal("baseline run failed (see " + o.dir +
                  "/base.log)");
        const std::string baseline = slurp(basePath);
        const std::uint64_t refs = static_cast<std::uint64_t>(
            parseJson(baseline).at("manifest").at("refs").asNumber());
        if (refs == 0)
            fatal("baseline reports zero references");
        const std::uint64_t totalPos = 2 * refs; // hierarchy + MTC

        std::printf("torture: %zu schedules (seed %llu, %llu refs, "
                    "%llu positions)\n",
                    o.schedules,
                    static_cast<unsigned long long>(o.seed),
                    static_cast<unsigned long long>(refs),
                    static_cast<unsigned long long>(totalPos));

        for (std::size_t s = o.start; s < o.start + o.schedules;
             ++s) {
            const ScheduleOutcome r =
                runSchedule(o, s, baseline, totalPos);
            if (!r.ok) {
                std::printf("\nschedule %zu FAILED: %s\n", s,
                            r.why.c_str());
                std::printf("replay: --seed %llu --start %zu "
                            "--schedules 1 --dir %s\n",
                            static_cast<unsigned long long>(o.seed),
                            s, o.dir.c_str());
                for (const std::string &c : r.commands)
                    std::printf("  %s\n", c.c_str());
                std::printf("artifacts kept in %s\n", o.dir.c_str());
                return exitFatal;
            }
            if ((s + 1) % 25 == 0 || s + 1 == o.start + o.schedules)
                emitLinef("membw_torture: %zu/%zu schedules ok",
                          s + 1 - o.start, o.schedules);
        }
        std::printf("torture: all %zu schedules converged "
                    "byte-identically\n",
                    o.schedules);
        if (!o.keep && madeDir)
            removeTree(o.dir);
        else
            std::printf("artifacts in %s\n", o.dir.c_str());
        return exitOk;
    } catch (const FatalError &e) {
        emitLine(e.what());
        return exitFatal;
    }
}
