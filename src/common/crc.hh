/**
 * @file
 * CRC-32 (IEEE 802.3, reflected polynomial 0xEDB88320).
 *
 * Used to guard checkpoint payloads and to digest in-memory traces so
 * a resumed run can prove it is replaying the same input it was
 * interrupted on.  A CRC is an integrity check against accidental
 * corruption (truncated copies, bit rot), not an authenticity check.
 */

#ifndef MEMBW_COMMON_CRC_HH
#define MEMBW_COMMON_CRC_HH

#include <cstddef>
#include <cstdint>

namespace membw {

/** Incremental CRC-32 accumulator. */
class Crc32
{
  public:
    /** Fold @p size bytes at @p data into the running value. */
    void update(const void *data, std::size_t size);

    /** Fold one integral value (little-endian byte order). */
    template <typename T>
    void
    updateScalar(T v)
    {
        unsigned char bytes[sizeof(T)];
        for (std::size_t i = 0; i < sizeof(T); ++i)
            bytes[i] = static_cast<unsigned char>(
                static_cast<std::uint64_t>(v) >> (8 * i));
        update(bytes, sizeof(T));
    }

    /** The finalized CRC of everything folded so far. */
    std::uint32_t value() const { return state_ ^ 0xffffffffu; }

  private:
    std::uint32_t state_ = 0xffffffffu;
};

/** One-shot convenience. */
std::uint32_t crc32(const void *data, std::size_t size);

} // namespace membw

#endif // MEMBW_COMMON_CRC_HH
