/**
 * @file
 * Deterministic pseudo-random number generator (xoshiro256**).
 *
 * Every synthetic workload is seeded explicitly so that trace
 * generation is bit-for-bit reproducible across runs and platforms —
 * a requirement for regression-testing the tables in EXPERIMENTS.md.
 */

#ifndef MEMBW_COMMON_RNG_HH
#define MEMBW_COMMON_RNG_HH

#include <array>
#include <cstdint>

namespace membw {

/**
 * xoshiro256** by Blackman & Vigna (public domain reference
 * implementation, re-expressed).  Fast, high-quality, and — unlike
 * std::mt19937 shuffles/distributions — identical everywhere.
 */
class Rng
{
  public:
    explicit Rng(std::uint64_t seed) { reseed(seed); }

    /** Re-initialize the state from a 64-bit seed via splitmix64. */
    void
    reseed(std::uint64_t seed)
    {
        for (auto &word : state_)
            word = splitmix64(seed);
    }

    /** Next raw 64-bit value. */
    std::uint64_t
    next()
    {
        const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
        const std::uint64_t t = state_[1] << 17;
        state_[2] ^= state_[0];
        state_[3] ^= state_[1];
        state_[1] ^= state_[2];
        state_[0] ^= state_[3];
        state_[2] ^= t;
        state_[3] = rotl(state_[3], 45);
        return result;
    }

    /** Uniform integer in [0, bound). @p bound must be non-zero. */
    std::uint64_t
    below(std::uint64_t bound)
    {
        // Lemire-style multiply-shift; bias is negligible for our
        // simulation use (bounds << 2^64).
        return static_cast<std::uint64_t>(
            (static_cast<unsigned __int128>(next()) * bound) >> 64);
    }

    /** Uniform double in [0, 1). */
    double
    uniform()
    {
        return static_cast<double>(next() >> 11) * 0x1.0p-53;
    }

    /** Bernoulli draw with probability @p p. */
    bool chance(double p) { return uniform() < p; }

    /** The raw 256-bit state, for checkpointing. */
    std::array<std::uint64_t, 4>
    state() const
    {
        return {state_[0], state_[1], state_[2], state_[3]};
    }

    /** Restore a state captured by state(). */
    void
    setState(const std::array<std::uint64_t, 4> &s)
    {
        for (int i = 0; i < 4; ++i)
            state_[i] = s[static_cast<std::size_t>(i)];
    }

    /**
     * Geometric-ish draw used for burst lengths: value in [1, cap]
     * with mean roughly @p mean.
     */
    std::uint64_t
    burst(double mean, std::uint64_t cap)
    {
        std::uint64_t n = 1;
        const double cont = 1.0 - 1.0 / (mean > 1.0 ? mean : 1.0);
        while (n < cap && chance(cont))
            ++n;
        return n;
    }

  private:
    static std::uint64_t
    rotl(std::uint64_t x, int k)
    {
        return (x << k) | (x >> (64 - k));
    }

    static std::uint64_t
    splitmix64(std::uint64_t &x)
    {
        std::uint64_t z = (x += 0x9e3779b97f4a7c15ULL);
        z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
        z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
        return z ^ (z >> 31);
    }

    std::uint64_t state_[4];
};

} // namespace membw

#endif // MEMBW_COMMON_RNG_HH
