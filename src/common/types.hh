/**
 * @file
 * Fundamental scalar types shared by every membw module.
 *
 * The paper (Burger, Goodman, Kagi; ISCA 1996) measures all traffic in
 * bytes and all requests in 4-byte words, matching the QPT tracer it
 * used.  We keep those conventions library-wide.
 */

#ifndef MEMBW_COMMON_TYPES_HH
#define MEMBW_COMMON_TYPES_HH

#include <cstdint>

namespace membw {

/** A physical/virtual memory address.  The library is agnostic. */
using Addr = std::uint64_t;

/** A quantity of bytes (sizes, traffic volumes). */
using Bytes = std::uint64_t;

/** A processor cycle count. */
using Cycle = std::uint64_t;

/** A simulation tick index (position in a trace). */
using Tick = std::uint64_t;

/** The word size assumed by all experiments (Section 5.2, footnote 1). */
constexpr Bytes wordBytes = 4;

/** Sentinel: "never referenced again" for next-use computations. */
constexpr Tick tickInfinity = ~Tick{0};

/** Sentinel for an invalid/unset address. */
constexpr Addr addrInvalid = ~Addr{0};

constexpr Bytes operator""_KiB(unsigned long long v) { return v << 10; }
constexpr Bytes operator""_MiB(unsigned long long v) { return v << 20; }
constexpr Bytes operator""_GiB(unsigned long long v) { return v << 30; }

} // namespace membw

#endif // MEMBW_COMMON_TYPES_HH
