#include "common/stats.hh"

#include <cmath>
#include <cstdio>
#include <vector>

#include "common/log.hh"

namespace membw {

double
mean(std::span<const double> xs)
{
    if (xs.empty())
        return 0.0;
    double sum = 0.0;
    for (double x : xs)
        sum += x;
    return sum / static_cast<double>(xs.size());
}

double
geomean(std::span<const double> xs)
{
    if (xs.empty())
        return 0.0;
    double logsum = 0.0;
    for (double x : xs) {
        if (x <= 0.0)
            fatal("geomean requires positive inputs");
        logsum += std::log(x);
    }
    return std::exp(logsum / static_cast<double>(xs.size()));
}

double
stddev(std::span<const double> xs)
{
    if (xs.size() < 2)
        return 0.0;
    const double mu = mean(xs);
    double acc = 0.0;
    for (double x : xs)
        acc += (x - mu) * (x - mu);
    return std::sqrt(acc / static_cast<double>(xs.size() - 1));
}

LinearFit
linearFit(std::span<const double> x, std::span<const double> y)
{
    if (x.size() != y.size() || x.size() < 2)
        fatal("linearFit needs matching spans with >= 2 points");

    const double n = static_cast<double>(x.size());
    double sx = 0, sy = 0, sxx = 0, sxy = 0, syy = 0;
    for (std::size_t i = 0; i < x.size(); ++i) {
        sx += x[i];
        sy += y[i];
        sxx += x[i] * x[i];
        sxy += x[i] * y[i];
        syy += y[i] * y[i];
    }

    const double denom = n * sxx - sx * sx;
    if (denom == 0.0)
        fatal("linearFit: degenerate x values");

    LinearFit fit;
    fit.slope = (n * sxy - sx * sy) / denom;
    fit.intercept = (sy - fit.slope * sx) / n;

    const double ssTot = syy - sy * sy / n;
    double ssRes = 0.0;
    for (std::size_t i = 0; i < x.size(); ++i) {
        const double e = y[i] - (fit.slope * x[i] + fit.intercept);
        ssRes += e * e;
    }
    fit.r2 = ssTot > 0.0 ? 1.0 - ssRes / ssTot : 1.0;
    return fit;
}

GrowthFit
exponentialFit(std::span<const double> x, std::span<const double> y,
               double x0)
{
    std::vector<double> logy(y.size());
    for (std::size_t i = 0; i < y.size(); ++i) {
        if (y[i] <= 0.0)
            fatal("exponentialFit requires positive y values");
        logy[i] = std::log(y[i]);
    }
    const LinearFit lf = linearFit(x, logy);

    GrowthFit gf;
    gf.annualFactor = std::exp(lf.slope);
    gf.valueAtX0 = std::exp(lf.slope * x0 + lf.intercept);
    gf.r2 = lf.r2;
    return gf;
}

std::string
fixed(double v, int prec)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.*f", prec, v);
    return buf;
}

} // namespace membw
