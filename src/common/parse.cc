#include "common/parse.hh"

#include <cerrno>
#include <cmath>
#include <cstdlib>
#include <limits>

namespace membw {

Result<Bytes>
tryParseSize(const std::string &text)
{
    if (text.empty())
        return makeError(Errc::BadValue, "empty size");
    errno = 0;
    char *end = nullptr;
    const double v = std::strtod(text.c_str(), &end);
    if (end == text.c_str() || errno == ERANGE || !std::isfinite(v))
        return makeError(Errc::BadValue,
                         "'" + text + "' is not a number");
    if (v <= 0)
        return makeError(Errc::BadValue,
                         "size '" + text + "' must be positive");
    Bytes mult = 1;
    if (*end) {
        switch (*end) {
          case 'k': case 'K': mult = 1_KiB; ++end; break;
          case 'm': case 'M': mult = 1_MiB; ++end; break;
          case 'g': case 'G': mult = 1_GiB; ++end; break;
        }
        if (*end == 'b' || *end == 'B') // 64K and 64KB both work
            ++end;
        if (*end)
            return makeError(Errc::BadValue,
                             "bad size suffix in '" + text +
                                 "' (want K, M, or G)");
    }
    const double bytes = v * static_cast<double>(mult);
    if (bytes >= 9.0e18) // would overflow the 64-bit byte count
        return makeError(Errc::TooLarge,
                         "size '" + text + "' overflows 64 bits");
    return static_cast<Bytes>(bytes);
}

Result<std::uint64_t>
tryParseU64(const std::string &text)
{
    if (text.empty() || text[0] == '-' || text[0] == '+')
        return makeError(Errc::BadValue,
                         "'" + text +
                             "' is not a non-negative integer");
    errno = 0;
    char *end = nullptr;
    const unsigned long long v =
        std::strtoull(text.c_str(), &end, 10);
    if (end == text.c_str() || *end || errno == ERANGE)
        return makeError(Errc::BadValue,
                         "'" + text +
                             "' is not a non-negative integer");
    return static_cast<std::uint64_t>(v);
}

Result<std::int64_t>
tryParseInt(const std::string &text, std::int64_t min,
            std::int64_t max)
{
    errno = 0;
    char *end = nullptr;
    const long long v =
        text.empty() ? 0 : std::strtoll(text.c_str(), &end, 10);
    if (text.empty() || end == text.c_str() || *end ||
        errno == ERANGE)
        return makeError(Errc::BadValue,
                         "'" + text + "' is not an integer");
    if (v < min || v > max)
        return makeError(Errc::BadValue,
                         "'" + text + "' is out of range [" +
                             std::to_string(min) + ", " +
                             std::to_string(max) + "]");
    return static_cast<std::int64_t>(v);
}

Result<double>
tryParseDouble(const std::string &text)
{
    errno = 0;
    char *end = nullptr;
    const double v =
        text.empty() ? 0.0 : std::strtod(text.c_str(), &end);
    if (text.empty() || end == text.c_str() || *end ||
        errno == ERANGE || !std::isfinite(v))
        return makeError(Errc::BadValue,
                         "'" + text + "' is not a finite number");
    return v;
}

Result<unsigned>
tryParseJobs(const std::string &text)
{
    Result<std::uint64_t> n = tryParseU64(text);
    if (!n.ok())
        return makeError(Errc::BadValue,
                         "'" + text + "' is not a worker count");
    if (n.value() == 0)
        return makeError(Errc::BadValue,
                         "0 workers would run nothing — "
                         "--jobs needs at least 1");
    if (n.value() > maxParallelJobs)
        return makeError(Errc::TooLarge,
                         "'" + text +
                             "' oversubscribes the host: worker "
                             "counts above " +
                             std::to_string(maxParallelJobs) +
                             " are rejected");
    return static_cast<unsigned>(n.value());
}

Result<std::vector<Bytes>>
tryParseSizeList(const std::string &text)
{
    std::vector<Bytes> sizes;
    std::size_t start = 0;
    while (start <= text.size()) {
        const std::size_t comma = text.find(',', start);
        const std::string item =
            text.substr(start, comma == std::string::npos
                                   ? std::string::npos
                                   : comma - start);
        Result<Bytes> size = tryParseSize(item);
        if (!size.ok())
            return makeError(size.error().code,
                             "bad list element: " +
                                 size.error().message);
        sizes.push_back(size.value());
        if (comma == std::string::npos)
            break;
        start = comma + 1;
    }
    if (sizes.empty())
        return makeError(Errc::BadValue, "empty size list");
    return sizes;
}

} // namespace membw
