/**
 * @file
 * Plain-text table formatter used by the bench binaries to print the
 * paper's tables and figure series in a diff-friendly layout.
 */

#ifndef MEMBW_COMMON_TABLE_HH
#define MEMBW_COMMON_TABLE_HH

#include <string>
#include <vector>

namespace membw {

/**
 * A right-aligned text table with a header row.  Cells are strings so
 * callers control numeric formatting (see fixed() in stats.hh).
 */
class TextTable
{
  public:
    /** Set the header row; defines the column count. */
    void header(std::vector<std::string> cells);

    /** Append a data row (padded/truncated to the column count). */
    void row(std::vector<std::string> cells);

    /** Render with single-space-padded, right-aligned columns. */
    std::string render() const;

    /** Number of data rows added so far. */
    std::size_t rows() const { return rows_.size(); }

    /** Header cells (empty until header() is called). */
    const std::vector<std::string> &headerCells() const
    {
        return header_;
    }

    /** All data rows, in insertion order. */
    const std::vector<std::vector<std::string>> &dataRows() const
    {
        return rows_;
    }

  private:
    std::vector<std::string> header_;
    std::vector<std::vector<std::string>> rows_;
};

} // namespace membw

#endif // MEMBW_COMMON_TABLE_HH
