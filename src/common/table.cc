#include "common/table.hh"

#include <algorithm>

namespace membw {

void
TextTable::header(std::vector<std::string> cells)
{
    header_ = std::move(cells);
}

void
TextTable::row(std::vector<std::string> cells)
{
    cells.resize(header_.empty() ? cells.size() : header_.size());
    rows_.push_back(std::move(cells));
}

std::string
TextTable::render() const
{
    const std::size_t ncols =
        header_.empty() ? (rows_.empty() ? 0 : rows_[0].size())
                        : header_.size();

    std::vector<std::size_t> width(ncols, 0);
    auto widen = [&](const std::vector<std::string> &cells) {
        for (std::size_t c = 0; c < ncols && c < cells.size(); ++c)
            width[c] = std::max(width[c], cells[c].size());
    };
    widen(header_);
    for (const auto &r : rows_)
        widen(r);

    std::string out;
    auto emit = [&](const std::vector<std::string> &cells) {
        for (std::size_t c = 0; c < ncols; ++c) {
            const std::string &cell = c < cells.size() ? cells[c] : "";
            out.append(width[c] - cell.size(), ' ');
            out += cell;
            out += c + 1 == ncols ? "\n" : "  ";
        }
    };

    if (!header_.empty()) {
        emit(header_);
        std::size_t total = 0;
        for (std::size_t c = 0; c < ncols; ++c)
            total += width[c] + (c + 1 == ncols ? 0 : 2);
        out.append(total, '-');
        out += "\n";
    }
    for (const auto &r : rows_)
        emit(r);
    return out;
}

} // namespace membw
