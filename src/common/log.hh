/**
 * @file
 * gem5-style error reporting plus leveled diagnostic logging.
 *
 * fatal():  the *user* asked for something impossible (bad config).
 * panic():  the *library* is broken (internal invariant violated).
 *
 * Diagnostics go through logDebug/logInfo/logWarn/logError and are
 * filtered by the MEMBW_LOG environment variable
 * (debug|info|warn|error, default info).  warnOnce() emits a given
 * warning at most once per process, so a per-reference condition
 * cannot flood stderr on a multi-million-reference trace.
 */

#ifndef MEMBW_COMMON_LOG_HH
#define MEMBW_COMMON_LOG_HH

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <mutex>
#include <stdexcept>
#include <string>
#include <unordered_set>

namespace membw {

/** Thrown by fatal(): invalid user-supplied configuration. */
class FatalError : public std::runtime_error
{
  public:
    explicit FatalError(const std::string &what)
        : std::runtime_error(what) {}
};

/** Report an unrecoverable user/configuration error. */
[[noreturn]] inline void
fatal(const std::string &msg)
{
    throw FatalError("fatal: " + msg);
}

/** Report an internal invariant violation (library bug). */
[[noreturn]] inline void
panic(const std::string &msg)
{
    std::fprintf(stderr, "panic: %s\n", msg.c_str());
    std::abort();
}

/** Diagnostic severities, least to most severe. */
enum class LogLevel : int
{
    Debug = 0,
    Info = 1,
    Warn = 2,
    Error = 3,
};

/** Threshold from $MEMBW_LOG (debug|info|warn|error; default info). */
inline LogLevel
logThreshold()
{
    static const LogLevel level = [] {
        const char *env = std::getenv("MEMBW_LOG");
        if (!env)
            return LogLevel::Info;
        if (!std::strcmp(env, "debug"))
            return LogLevel::Debug;
        if (!std::strcmp(env, "info"))
            return LogLevel::Info;
        if (!std::strcmp(env, "warn"))
            return LogLevel::Warn;
        if (!std::strcmp(env, "error"))
            return LogLevel::Error;
        std::fprintf(stderr,
                     "warn: unknown MEMBW_LOG level '%s' "
                     "(want debug|info|warn|error)\n",
                     env);
        return LogLevel::Info;
    }();
    return level;
}

inline bool
logEnabled(LogLevel level)
{
    return static_cast<int>(level) >=
           static_cast<int>(logThreshold());
}

/** Emit one stderr line when @p level passes the threshold. */
inline void
logAt(LogLevel level, const std::string &msg)
{
    if (!logEnabled(level))
        return;
    static constexpr const char *tags[] = {"debug", "info", "warn",
                                           "error"};
    std::fprintf(stderr, "%s: %s\n",
                 tags[static_cast<int>(level)], msg.c_str());
}

inline void logDebug(const std::string &m) { logAt(LogLevel::Debug, m); }
inline void logInfo(const std::string &m) { logAt(LogLevel::Info, m); }
inline void logError(const std::string &m) { logAt(LogLevel::Error, m); }

/** Non-fatal warning to stderr (subject to MEMBW_LOG). */
inline void
warn(const std::string &msg)
{
    logAt(LogLevel::Warn, msg);
}

/**
 * warn(), but at most once per distinct @p msg for the whole
 * process.  Safe to call per reference on a long trace.
 */
inline void
warnOnce(const std::string &msg)
{
    static std::unordered_set<std::string> seen;
    static std::mutex mutex;
    {
        std::lock_guard<std::mutex> lock(mutex);
        if (!seen.insert(msg).second)
            return;
    }
    warn(msg + " (further occurrences suppressed)");
}

} // namespace membw

#endif // MEMBW_COMMON_LOG_HH
