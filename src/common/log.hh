/**
 * @file
 * gem5-style fatal()/panic() error reporting.
 *
 * fatal():  the *user* asked for something impossible (bad config).
 * panic():  the *library* is broken (internal invariant violated).
 */

#ifndef MEMBW_COMMON_LOG_HH
#define MEMBW_COMMON_LOG_HH

#include <cstdio>
#include <cstdlib>
#include <stdexcept>
#include <string>

namespace membw {

/** Thrown by fatal(): invalid user-supplied configuration. */
class FatalError : public std::runtime_error
{
  public:
    explicit FatalError(const std::string &what)
        : std::runtime_error(what) {}
};

/** Report an unrecoverable user/configuration error. */
[[noreturn]] inline void
fatal(const std::string &msg)
{
    throw FatalError("fatal: " + msg);
}

/** Report an internal invariant violation (library bug). */
[[noreturn]] inline void
panic(const std::string &msg)
{
    std::fprintf(stderr, "panic: %s\n", msg.c_str());
    std::abort();
}

/** Non-fatal warning to stderr. */
inline void
warn(const std::string &msg)
{
    std::fprintf(stderr, "warn: %s\n", msg.c_str());
}

} // namespace membw

#endif // MEMBW_COMMON_LOG_HH
