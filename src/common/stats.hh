/**
 * @file
 * Small statistics helpers: means, regressions, ratio formatting.
 */

#ifndef MEMBW_COMMON_STATS_HH
#define MEMBW_COMMON_STATS_HH

#include <cstddef>
#include <span>
#include <string>

namespace membw {

/** Arithmetic mean of @p xs; 0 for an empty span. */
double mean(std::span<const double> xs);

/** Geometric mean of @p xs (all entries must be positive). */
double geomean(std::span<const double> xs);

/** Sample standard deviation; 0 for fewer than two points. */
double stddev(std::span<const double> xs);

/** Result of an ordinary least-squares line fit y = slope*x + icept. */
struct LinearFit
{
    double slope = 0.0;
    double intercept = 0.0;
    double r2 = 0.0;
};

/** Least-squares fit of y over x (sizes must match, >= 2 points). */
LinearFit linearFit(std::span<const double> x, std::span<const double> y);

/**
 * Fit an exponential growth curve y = a * g^(x - x0) by regressing
 * log(y) on x.  Returns the annual growth factor g and the fitted
 * value at @p x0 — this is how the paper derives "pins grow 16%/yr"
 * from Figure 1a.
 */
struct GrowthFit
{
    double annualFactor = 1.0; ///< g: multiplicative growth per unit x
    double valueAtX0 = 0.0;    ///< fitted y at the reference x0
    double r2 = 0.0;
};

GrowthFit exponentialFit(std::span<const double> x,
                         std::span<const double> y, double x0);

/** Format a double with @p prec digits after the point. */
std::string fixed(double v, int prec = 2);

} // namespace membw

#endif // MEMBW_COMMON_STATS_HH
