/**
 * @file
 * Small bit-manipulation helpers used by cache indexing code.
 */

#ifndef MEMBW_COMMON_BITOPS_HH
#define MEMBW_COMMON_BITOPS_HH

#include <bit>
#include <cassert>
#include <cstdint>

#include "common/types.hh"

namespace membw {

/** True iff @p v is a power of two (and non-zero). */
constexpr bool
isPowerOfTwo(std::uint64_t v)
{
    return v != 0 && (v & (v - 1)) == 0;
}

/** floor(log2(v)); @p v must be non-zero. */
constexpr unsigned
floorLog2(std::uint64_t v)
{
    assert(v != 0);
    return 63u - static_cast<unsigned>(std::countl_zero(v));
}

/** Align @p addr down to a multiple of @p align (power of two). */
constexpr Addr
alignDown(Addr addr, std::uint64_t align)
{
    assert(isPowerOfTwo(align));
    return addr & ~(align - 1);
}

/** Align @p addr up to a multiple of @p align (power of two). */
constexpr Addr
alignUp(Addr addr, std::uint64_t align)
{
    assert(isPowerOfTwo(align));
    return (addr + align - 1) & ~(align - 1);
}

/** Integer ceiling division. */
constexpr std::uint64_t
divCeil(std::uint64_t a, std::uint64_t b)
{
    assert(b != 0);
    return (a + b - 1) / b;
}

} // namespace membw

#endif // MEMBW_COMMON_BITOPS_HH
