/**
 * @file
 * Checked scalar parsing for command-line flag values.
 *
 * The tools originally used atoi/atof/strtod directly, which silently
 * accept garbage ("--scale 1.5x" parsed as 1.5, "--assoc foo" as 0)
 * — precisely the "subtly invalid config" failure mode that kills a
 * sweep hours in.  These helpers validate the whole token and return
 * a classified Result so the caller can name the flag, the offending
 * value, and the reason in one fatal diagnostic.
 */

#ifndef MEMBW_COMMON_PARSE_HH
#define MEMBW_COMMON_PARSE_HH

#include <cstdint>
#include <string>
#include <vector>

#include "common/result.hh"
#include "common/types.hh"

namespace membw {

/**
 * Hard ceiling for --jobs worker counts.  Sweep cells are
 * memory-bound; beyond this every extra thread is pure
 * oversubscription (stacks + scheduler churn, no throughput), so the
 * parser rejects larger requests outright rather than letting a
 * typo'd "--jobs 40000" take down the host.
 */
inline constexpr unsigned maxParallelJobs = 256;

/**
 * Parse a byte size: a positive number with an optional K/M/G suffix
 * (optionally followed by 'B'), e.g. "64K", "1M", "8192", "1.5MB".
 * Rejects trailing garbage, non-positive values, and sizes that would
 * overflow a 64-bit byte count.
 */
Result<Bytes> tryParseSize(const std::string &text);

/** Parse a whole non-negative decimal integer; rejects garbage. */
Result<std::uint64_t> tryParseU64(const std::string &text);

/**
 * Parse a whole decimal integer in [@p min, @p max]; rejects garbage
 * and out-of-range values with a message naming the allowed range.
 */
Result<std::int64_t> tryParseInt(const std::string &text,
                                 std::int64_t min, std::int64_t max);

/** Parse a finite double; rejects garbage, NaN, and infinity. */
Result<double> tryParseDouble(const std::string &text);

/**
 * Parse a --jobs worker count: an integer in [1, maxParallelJobs].
 * 0 ("run nothing"?) and oversubscribed counts are classified
 * errors, so every tool reports them identically.
 */
Result<unsigned> tryParseJobs(const std::string &text);

/**
 * Parse a comma-separated list of byte sizes ("1K,64K,2M"), each
 * validated by tryParseSize; rejects empty lists/elements.
 */
Result<std::vector<Bytes>> tryParseSizeList(const std::string &text);

} // namespace membw

#endif // MEMBW_COMMON_PARSE_HH
