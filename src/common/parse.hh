/**
 * @file
 * Checked scalar parsing for command-line flag values.
 *
 * The tools originally used atoi/atof/strtod directly, which silently
 * accept garbage ("--scale 1.5x" parsed as 1.5, "--assoc foo" as 0)
 * — precisely the "subtly invalid config" failure mode that kills a
 * sweep hours in.  These helpers validate the whole token and return
 * a classified Result so the caller can name the flag, the offending
 * value, and the reason in one fatal diagnostic.
 */

#ifndef MEMBW_COMMON_PARSE_HH
#define MEMBW_COMMON_PARSE_HH

#include <cstdint>
#include <string>

#include "common/result.hh"
#include "common/types.hh"

namespace membw {

/**
 * Parse a byte size: a positive number with an optional K/M/G suffix
 * (optionally followed by 'B'), e.g. "64K", "1M", "8192", "1.5MB".
 * Rejects trailing garbage, non-positive values, and sizes that would
 * overflow a 64-bit byte count.
 */
Result<Bytes> tryParseSize(const std::string &text);

/** Parse a whole non-negative decimal integer; rejects garbage. */
Result<std::uint64_t> tryParseU64(const std::string &text);

/**
 * Parse a whole decimal integer in [@p min, @p max]; rejects garbage
 * and out-of-range values with a message naming the allowed range.
 */
Result<std::int64_t> tryParseInt(const std::string &text,
                                 std::int64_t min, std::int64_t max);

/** Parse a finite double; rejects garbage, NaN, and infinity. */
Result<double> tryParseDouble(const std::string &text);

} // namespace membw

#endif // MEMBW_COMMON_PARSE_HH
