/**
 * @file
 * Structured error layer for untrusted input.
 *
 * fatal()/FatalError (common/log.hh) is the right tool when the
 * caller *is* the user: the message propagates to main() and the
 * process exits.  It is the wrong tool inside parsers fed untrusted
 * bytes (trace files, checkpoint files, flag values), where callers
 * need to distinguish *why* the input was rejected — a truncated
 * file, a bad magic number, and an implausible record count deserve
 * different diagnostics, different tests, and different fuzz oracles.
 *
 * Result<T> is a minimal expected-style carrier: either a value or an
 * Error{Errc, message}.  Parsers return Result and never throw on bad
 * bytes; boundary wrappers (loadTrace, tool flag handling) convert a
 * failed Result into a classified FatalError for the human.
 */

#ifndef MEMBW_COMMON_RESULT_HH
#define MEMBW_COMMON_RESULT_HH

#include <string>
#include <utility>
#include <variant>

#include "common/log.hh"

namespace membw {

/** Classified failure causes for untrusted-input parsing. */
enum class Errc : int
{
    Ok = 0,
    IoError,      ///< open/read/write failed at the OS level
    BadMagic,     ///< leading magic bytes are not ours
    BadVersion,   ///< recognized container, unsupported version
    Truncated,    ///< file ends before the declared content does
    Corrupt,      ///< structure decodes but violates an invariant
    TooLarge,     ///< declared size exceeds a sane/overflow-safe cap
    BadValue,     ///< a scalar field fails range/garbage validation
    Mismatch,     ///< input is valid but inconsistent with the run
};

/** Stable lower-case identifier, e.g. for test assertions and logs. */
constexpr const char *
errcName(Errc code)
{
    switch (code) {
      case Errc::Ok: return "ok";
      case Errc::IoError: return "io_error";
      case Errc::BadMagic: return "bad_magic";
      case Errc::BadVersion: return "bad_version";
      case Errc::Truncated: return "truncated";
      case Errc::Corrupt: return "corrupt";
      case Errc::TooLarge: return "too_large";
      case Errc::BadValue: return "bad_value";
      case Errc::Mismatch: return "mismatch";
    }
    return "unknown";
}

/** A classified failure with a human-readable message. */
struct Error
{
    Errc code = Errc::Ok;
    std::string message;

    /** "truncated: trace 'x.mbwt' ends inside record 7". */
    std::string
    describe() const
    {
        return std::string(errcName(code)) + ": " + message;
    }
};

/** Either a T or an Error.  Moves freely; never throws on failure. */
template <typename T>
class Result
{
  public:
    Result(T value) : state_(std::move(value)) {}
    Result(Error error) : state_(std::move(error)) {}

    bool ok() const { return std::holds_alternative<T>(state_); }
    explicit operator bool() const { return ok(); }

    /** The value; panics if !ok() (caller must check). */
    T &
    value()
    {
        if (!ok())
            panic("Result::value() on error: " + error().describe());
        return std::get<T>(state_);
    }
    const T &
    value() const
    {
        if (!ok())
            panic("Result::value() on error: " + error().describe());
        return std::get<T>(state_);
    }

    /** The error; panics if ok(). */
    const Error &
    error() const
    {
        if (ok())
            panic("Result::error() on success");
        return std::get<Error>(state_);
    }

    Errc code() const { return ok() ? Errc::Ok : error().code; }

    /** Unwrap or convert the classified error into a FatalError. */
    T
    orDie() &&
    {
        if (!ok())
            fatal(error().describe());
        return std::move(std::get<T>(state_));
    }

  private:
    std::variant<T, Error> state_;
};

/** Convenience factory: Result<T>(Error{code, msg}) reads poorly. */
inline Error
makeError(Errc code, std::string message)
{
    return Error{code, std::move(message)};
}

} // namespace membw

#endif // MEMBW_COMMON_RESULT_HH
