#include "serve/protocol.hh"

#include <algorithm>
#include <cmath>
#include <initializer_list>

#include "common/log.hh"
#include "common/parse.hh"
#include "obs/json.hh"

namespace membw {

namespace {

/** Reject typo'd field names instead of silently ignoring them — a
 * client asking for "no_colapse" must not get a collapsed sweep. */
void
checkKnownFields(const JsonValue &doc,
                 std::initializer_list<const char *> allowed)
{
    for (const auto &[key, value] : doc.object) {
        (void)value;
        const bool known =
            std::any_of(allowed.begin(), allowed.end(),
                        [&](const char *a) { return key == a; });
        if (!known)
            fatal("unknown request field '" + key + "'");
    }
}

std::string
stringField(const JsonValue &doc, const char *key,
            const std::string &def)
{
    const JsonValue *v = doc.find(key);
    if (!v)
        return def;
    if (!v->isString())
        fatal(std::string("request field '") + key +
              "' must be a string");
    return v->string;
}

bool
boolField(const JsonValue &doc, const char *key, bool def)
{
    const JsonValue *v = doc.find(key);
    if (!v)
        return def;
    if (v->kind != JsonValue::Kind::Bool)
        fatal(std::string("request field '") + key +
              "' must be a boolean");
    return v->boolean;
}

double
doubleField(const JsonValue &doc, const char *key, double def)
{
    const JsonValue *v = doc.find(key);
    if (!v)
        return def;
    if (!v->isNumber() || !std::isfinite(v->number))
        fatal(std::string("request field '") + key +
              "' must be a finite number");
    return v->number;
}

std::uint64_t
u64Field(const JsonValue &doc, const char *key, std::uint64_t def)
{
    const JsonValue *v = doc.find(key);
    if (!v)
        return def;
    if (!v->isNumber() || v->number < 0 ||
        v->number != std::floor(v->number))
        fatal(std::string("request field '") + key +
              "' must be a non-negative integer");
    return static_cast<std::uint64_t>(v->number);
}

int
intField(const JsonValue &doc, const char *key, int def)
{
    const JsonValue *v = doc.find(key);
    if (!v)
        return def;
    if (!v->isNumber() || v->number != std::floor(v->number))
        fatal(std::string("request field '") + key +
              "' must be an integer");
    return static_cast<int>(v->number);
}

/** Byte sizes accept either a number (bytes) or a suffixed string
 * ("64K"), matching the CLI flags. */
Bytes
sizeField(const JsonValue &doc, const char *key, Bytes def)
{
    const JsonValue *v = doc.find(key);
    if (!v)
        return def;
    if (v->isNumber()) {
        if (v->number <= 0 || v->number != std::floor(v->number))
            fatal(std::string("request field '") + key +
                  "' must be a positive byte count");
        return static_cast<Bytes>(v->number);
    }
    if (v->isString()) {
        Result<Bytes> parsed = tryParseSize(v->string);
        if (!parsed.ok())
            fatal(std::string("request field '") + key + "': " +
                  parsed.error().describe());
        return parsed.value();
    }
    fatal(std::string("request field '") + key +
          "' must be a byte size (number or \"64K\" string)");
}

std::vector<Bytes>
sizeListField(const JsonValue &doc, const char *key)
{
    const JsonValue *v = doc.find(key);
    if (!v)
        return {};
    if (!v->isString())
        fatal(std::string("request field '") + key +
              "' must be a comma-separated size string");
    Result<std::vector<Bytes>> parsed = tryParseSizeList(v->string);
    if (!parsed.ok())
        fatal(std::string("request field '") + key + "': " +
              parsed.error().describe());
    return std::move(parsed.value());
}

SweepRequest
parseSweepFields(const JsonValue &doc)
{
    checkKnownFields(
        doc, {"op", "workload", "label", "scale", "seed", "sizes",
              "blocks", "mtc", "stable", "no_collapse", "no_partition",
              "watchdog", "size", "assoc", "block", "sector", "repl",
              "write", "alloc", "prefetch", "stream_buffers",
              "stream_depth"});
    SweepRequest req;
    req.workload = stringField(doc, "workload", "");
    if (req.workload.empty())
        fatal("sweep request requires a 'workload' field");
    req.label = stringField(doc, "label", "");
    req.scale = doubleField(doc, "scale", req.scale);
    req.seed = u64Field(doc, "seed", req.seed);
    req.sizes = sizeListField(doc, "sizes");
    if (req.sizes.empty())
        fatal("sweep request requires a 'sizes' field (\"1K,64K\")");
    req.blocks = sizeListField(doc, "blocks");
    req.runMtc = boolField(doc, "mtc", false);
    req.stableJson = boolField(doc, "stable", false);
    req.noCollapse = boolField(doc, "no_collapse", false);
    req.noPartition = boolField(doc, "no_partition", false);
    req.eventBudget = u64Field(doc, "watchdog", req.eventBudget);

    req.l1.size = sizeField(doc, "size", req.l1.size);
    req.l1.assoc = static_cast<unsigned>(
        u64Field(doc, "assoc", req.l1.assoc));
    req.l1.blockBytes = sizeField(doc, "block", req.l1.blockBytes);
    req.l1.sectorBytes = sizeField(doc, "sector", req.l1.sectorBytes);
    if (const std::string v = stringField(doc, "repl", "");
        !v.empty()) {
        req.l1.repl = v == "lru"    ? ReplPolicy::LRU
                      : v == "fifo" ? ReplPolicy::FIFO
                      : v == "random"
                          ? ReplPolicy::Random
                          : (fatal("bad 'repl' value '" + v +
                                   "': expected lru, fifo, or random"),
                             ReplPolicy::LRU);
    }
    if (const std::string v = stringField(doc, "write", "");
        !v.empty()) {
        req.l1.write = v == "wb"   ? WritePolicy::WriteBack
                       : v == "wt" ? WritePolicy::WriteThrough
                                   : (fatal("bad 'write' value '" + v +
                                            "': expected wb or wt"),
                                      WritePolicy::WriteBack);
    }
    if (const std::string v = stringField(doc, "alloc", "");
        !v.empty()) {
        req.l1.alloc = v == "wa"    ? AllocPolicy::WriteAllocate
                       : v == "wna" ? AllocPolicy::WriteNoAllocate
                       : v == "wv"
                           ? AllocPolicy::WriteValidate
                           : (fatal("bad 'alloc' value '" + v +
                                    "': expected wa, wna, or wv"),
                              AllocPolicy::WriteAllocate);
    }
    req.l1.taggedPrefetch = boolField(doc, "prefetch", false);
    req.l1.streamBuffers = static_cast<unsigned>(
        u64Field(doc, "stream_buffers", req.l1.streamBuffers));
    req.l1.streamDepth = static_cast<unsigned>(
        u64Field(doc, "stream_depth", req.l1.streamDepth));
    return req;
}

DecomposeRequest
parseDecomposeFields(const JsonValue &doc)
{
    checkKnownFields(doc, {"op", "workload", "experiment", "spec95",
                           "scale", "seed", "stable", "watchdog",
                           "mshrs", "window", "issue_width",
                           "no_prefetch", "l1l2_bus", "mem_bus",
                           "dram"});
    DecomposeRequest req;
    req.workload = stringField(doc, "workload", "");
    if (req.workload.empty())
        fatal("decompose request requires a 'workload' field");
    const std::string letter =
        stringField(doc, "experiment", std::string(1, req.letter));
    if (letter.size() != 1 || letter[0] < 'A' || letter[0] > 'F')
        fatal("bad 'experiment' value '" + letter +
              "': expected a letter A-F");
    req.letter = letter[0];
    req.spec95 = boolField(doc, "spec95", false);
    req.scale = doubleField(doc, "scale", req.scale);
    req.seed = u64Field(doc, "seed", req.seed);
    req.stableJson = boolField(doc, "stable", false);
    req.watchdogCycles = u64Field(doc, "watchdog", req.watchdogCycles);
    req.overrides.mshrs = intField(doc, "mshrs", -1);
    req.overrides.window = intField(doc, "window", -1);
    req.overrides.width = intField(doc, "issue_width", -1);
    req.overrides.noPrefetch = boolField(doc, "no_prefetch", false);
    req.overrides.l1l2 = intField(doc, "l1l2_bus", -1);
    req.overrides.membus = intField(doc, "mem_bus", -1);
    if (const std::string v = stringField(doc, "dram", "");
        !v.empty()) {
        if (v != "fpm" && v != "edo" && v != "sdram" && v != "rdram")
            fatal("bad 'dram' value '" + v +
                  "': expected fpm, edo, sdram, or rdram");
        req.overrides.dram = v;
    }
    return req;
}

} // namespace

const char *
serveOpName(ServeOp op)
{
    switch (op) {
      case ServeOp::Ping: return "ping";
      case ServeOp::Stats: return "stats";
      case ServeOp::Shutdown: return "shutdown";
      case ServeOp::Sweep: return "sweep";
      case ServeOp::Decompose: return "decompose";
    }
    return "unknown";
}

ServeRequest
parseServeRequest(std::string_view line)
{
    const JsonValue doc = parseJson(line);
    if (!doc.isObject())
        fatal("request must be a JSON object");
    const JsonValue *opField = doc.find("op");
    if (!opField || !opField->isString())
        fatal("request requires a string 'op' field");
    const std::string &op = opField->string;

    ServeRequest req;
    if (op == "ping" || op == "stats" || op == "shutdown") {
        checkKnownFields(doc, {"op"});
        req.op = op == "ping"    ? ServeOp::Ping
                 : op == "stats" ? ServeOp::Stats
                                 : ServeOp::Shutdown;
    } else if (op == "sweep") {
        req.op = ServeOp::Sweep;
        req.sweep = parseSweepFields(doc);
    } else if (op == "decompose") {
        req.op = ServeOp::Decompose;
        req.decompose = parseDecomposeFields(doc);
    } else {
        fatal("unknown op '" + op +
              "': expected ping, stats, shutdown, sweep, or "
              "decompose");
    }
    return req;
}

std::string
serveRequestKey(const ServeRequest &req)
{
    switch (req.op) {
      case ServeOp::Sweep:
        return sweepRequestKey(req.sweep); // self-prefixed "sweep|"
      case ServeOp::Decompose:
        return decomposeRequestKey(req.decompose);
      default:
        return serveOpName(req.op);
    }
}

std::string
okEnvelope(ServeOp op, bool cached, int exitCode,
           std::string_view body)
{
    std::string out = "{\"status\":\"ok\",\"op\":\"";
    out += serveOpName(op);
    out += "\",\"cached\":";
    out += cached ? "true" : "false";
    out += ",\"exit\":";
    out += std::to_string(exitCode);
    out += ",\"body\":";
    out += jsonEscape(body);
    out += "}";
    return out;
}

std::string
busyEnvelope(ServeOp op, std::size_t queued, std::size_t capacity)
{
    std::string out = "{\"status\":\"busy\",\"op\":\"";
    out += serveOpName(op);
    out += "\",\"queued\":";
    out += std::to_string(queued);
    out += ",\"capacity\":";
    out += std::to_string(capacity);
    out += "}";
    return out;
}

std::string
errorEnvelope(ServeOp op, std::string_view message)
{
    return errorEnvelope(std::string_view(serveOpName(op)), message);
}

std::string
errorEnvelope(std::string_view opName, std::string_view message)
{
    std::string out = "{\"status\":\"error\",\"op\":\"";
    out += opName;
    out += "\",\"error\":";
    out += jsonEscape(message);
    out += "}";
    return out;
}

} // namespace membw
