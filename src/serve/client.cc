#include "serve/client.hh"

#include <cerrno>
#include <cstring>

#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <chrono>
#include <thread>

namespace membw {

ServeClient::~ServeClient()
{
    close();
}

bool
ServeClient::connect(const std::string &socketPath)
{
    close();
    sockaddr_un addr{};
    addr.sun_family = AF_UNIX;
    if (socketPath.size() >= sizeof(addr.sun_path)) {
        errno = ENAMETOOLONG;
        return false;
    }
    std::memcpy(addr.sun_path, socketPath.c_str(),
                socketPath.size() + 1);
    const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (fd < 0)
        return false;
    if (::connect(fd, reinterpret_cast<const sockaddr *>(&addr),
                  sizeof(addr)) != 0) {
        const int saved = errno;
        ::close(fd);
        errno = saved;
        return false;
    }
    fd_ = fd;
    buffer_.clear();
    return true;
}

void
ServeClient::close()
{
    if (fd_ >= 0) {
        ::close(fd_);
        fd_ = -1;
    }
    buffer_.clear();
}

bool
ServeClient::sendLine(std::string_view line)
{
    if (fd_ < 0)
        return false;
    std::string framed(line);
    framed += '\n';
    std::size_t sent = 0;
    while (sent < framed.size()) {
        // MSG_NOSIGNAL: a daemon that exits mid-exchange must surface
        // as a failed send, not a SIGPIPE that kills the bench/CLI.
        const ssize_t n = ::send(fd_, framed.data() + sent,
                                 framed.size() - sent, MSG_NOSIGNAL);
        if (n < 0) {
            if (errno == EINTR)
                continue;
            return false;
        }
        sent += static_cast<std::size_t>(n);
    }
    return true;
}

std::optional<std::string>
ServeClient::recvLine()
{
    if (fd_ < 0)
        return std::nullopt;
    for (;;) {
        if (const auto nl = buffer_.find('\n');
            nl != std::string::npos) {
            std::string line = buffer_.substr(0, nl);
            buffer_.erase(0, nl + 1);
            return line;
        }
        char chunk[1 << 16];
        const ssize_t n = ::read(fd_, chunk, sizeof(chunk));
        if (n < 0) {
            if (errno == EINTR)
                continue;
            return std::nullopt;
        }
        if (n == 0)
            return std::nullopt; // EOF mid-line: treat as error
        buffer_.append(chunk, static_cast<std::size_t>(n));
    }
}

std::optional<std::string>
serveRequestOnce(const std::string &socketPath,
                 std::string_view requestLine)
{
    ServeClient client;
    if (!client.connect(socketPath))
        return std::nullopt;
    if (!client.sendLine(requestLine))
        return std::nullopt;
    return client.recvLine();
}

bool
waitForServer(const std::string &socketPath, int timeoutMs)
{
    using Clock = std::chrono::steady_clock;
    const auto deadline =
        Clock::now() + std::chrono::milliseconds(timeoutMs);
    for (;;) {
        if (auto reply = serveRequestOnce(socketPath, "{\"op\":\"ping\"}");
            reply && reply->find("\"status\":\"ok\"") !=
                         std::string::npos)
            return true;
        if (Clock::now() >= deadline)
            return false;
        std::this_thread::sleep_for(std::chrono::milliseconds(20));
    }
}

} // namespace membw
