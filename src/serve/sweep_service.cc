#include "serve/sweep_service.hh"

#include <cstdio>

#include "common/log.hh"
#include "exec/simd.hh"
#include "obs/export.hh"
#include "obs/json.hh"
#include "obs/manifest.hh"
#include "obs/progress.hh"
#include "obs/registry.hh"
#include "obs/trace_span.hh"
#include "resilience/exit_codes.hh"
#include "resilience/fault_injection.hh"

namespace membw {

std::vector<Bytes>
resolveSweepBlocks(const SweepRequest &req)
{
    return req.blocks.empty() ? std::vector<Bytes>{req.l1.blockBytes}
                              : req.blocks;
}

CacheConfig
sweepConfigFor(const SweepRequest &req, const std::vector<Bytes> &blocks,
               std::size_t cell)
{
    CacheConfig cfg = req.l1;
    cfg.size = req.sizes[cell / blocks.size()];
    cfg.blockBytes = blocks[cell % blocks.size()];
    return cfg;
}

std::string
sweepRequestKey(const SweepRequest &req)
{
    // Every field that changes the stable response bytes, joined with
    // an unambiguous separator.  scale goes through the JSON number
    // formatter so 0.05 and 0.050 collide (they render identically).
    std::string key = "sweep|";
    key += req.workload;
    key += '|';
    key += req.label.empty() ? req.workload : req.label;
    key += '|';
    key += formatJsonNumber(req.scale);
    key += '|';
    key += std::to_string(req.seed);
    key += '|';
    key += req.l1.describe();
    key += '|';
    for (Bytes b : req.sizes) {
        key += formatSize(b);
        key += ',';
    }
    key += '|';
    for (Bytes b : resolveSweepBlocks(req)) {
        key += formatSize(b);
        key += ',';
    }
    key += '|';
    key += req.runMtc ? "mtc" : "-";
    key += req.stableJson ? "|stable" : "|full";
    key += req.noCollapse ? "|nocollapse" : "|collapse";
    key += req.noPartition ? "|nopartition" : "|partition";
    key += '|';
    key += std::to_string(req.eventBudget);
    return key;
}

namespace {

/** One direct-fallback sweep cell: a fresh single-level hierarchy
 * over the shared trace, honouring the per-reference watchdog
 * budget. */
TrafficResult
runSweepCell(const Trace &trace, const CacheConfig &cfg,
             std::uint64_t eventBudget)
{
    CacheHierarchy hier({cfg});
    hier.setEventBudget(eventBudget);
    for (const MemRef &ref : trace)
        hier.access(ref);
    hier.flush();
    return hier.summarize();
}

} // namespace

SweepOutcome
executeSweep(const SweepRequest &req, const Trace &trace,
             const SweepExecOptions &opts)
{
    SweepOutcome out;
    out.blocks = resolveSweepBlocks(req);
    const std::vector<Bytes> &blocks = out.blocks;
    out.nHier = req.sizes.size() * blocks.size();
    out.nCells = out.nHier + (req.runMtc ? req.sizes.size() : 0);
    const std::size_t nHier = out.nHier;
    const std::size_t nCells = out.nCells;

    // Validate every cell geometry up front: one clear diagnostic on
    // the calling thread instead of an exception out of a worker.
    for (std::size_t i = 0; i < nHier; ++i)
        sweepConfigFor(req, blocks, i).validate();

    // Route every coverable cell to an exact one-pass engine:
    // FA-LRU groups over load-only traces collapse into Mattson
    // stack-distance passes and set-associative LRU groups into
    // chunked ladder-kernel passes.  Results are exact and
    // jobs-independent, so covered hierarchy cells become lookups;
    // anything the guards reject falls back to direct simulation.
    if (!req.noCollapse) {
        std::vector<CacheConfig> cfgs;
        cfgs.reserve(nHier);
        for (std::size_t i = 0; i < nHier; ++i)
            cfgs.push_back(sweepConfigFor(req, blocks, i));
        CollapseOptions copt;
        copt.jobs = opts.jobs;
        copt.noPartition = req.noPartition;
        copt.mapped = opts.mapped;
        copt.pool = opts.pool;
        copt.streamProvider = opts.streamProvider;
        copt.profileProvider = opts.profileProvider;
        out.collapsed = CollapsedSweep(trace, cfgs, copt);
    }
    if (opts.onPlan)
        opts.onPlan(out.collapsed, nHier, nCells);
    const CollapsedSweep &collapsed = out.collapsed;

    // Per-cell span detail: config, routing decision, and a short
    // config digest so Perfetto rows tie back to exact cells.
    auto cellDetail = [&](std::size_t i) {
        char buf[traceDetailBytes];
        if (i >= nHier) {
            const Bytes size = req.sizes[i - nHier];
            std::snprintf(
                buf, sizeof(buf), "cfg=%s/mtc route=mtc d=%08llx",
                formatSize(size).c_str(),
                static_cast<unsigned long long>(
                    fnv1a64(canonicalMtc(size).describe()) &
                    0xffffffffu));
        } else {
            const CacheConfig cfg = sweepConfigFor(req, blocks, i);
            std::snprintf(
                buf, sizeof(buf), "cfg=%s/%s route=%s d=%08llx",
                formatSize(cfg.size).c_str(),
                formatSize(cfg.blockBytes).c_str(),
                cellRouteName(collapsed.route(i)),
                static_cast<unsigned long long>(
                    fnv1a64(cfg.describe()) & 0xffffffffu));
        }
        return std::string(buf);
    };

    MEMBW_SPAN("run");
    WallTimer timer;
    SweepOptions sopt;
    sopt.jobs = opts.jobs;
    sopt.pool = opts.pool;
    // Degraded mode: a failing cell is recorded and the sweep carries
    // on (exit 5), but a watchdog trip is a simulator bug and must
    // still abort the whole run with exit 4.
    sopt.tolerateCellFailures = true;
    sopt.abortAnyway = [](const std::exception &e) {
        return dynamic_cast<const WatchdogError *>(&e) != nullptr;
    };
    sopt.cancel = opts.cancel;
    sopt.onPrefix = opts.onPrefix;

    // All MTC cells share one next-use side table (pass one of the
    // two-pass MIN simulation depends only on the trace and block
    // granularity, and the canonical MTC always uses word blocks).
    const NextUseTable mtcNextUse =
        req.runMtc ? (opts.nextUseProvider
                          ? opts.nextUseProvider()
                          : makeNextUseTable(trace, wordBytes))
                   : nullptr;

    auto sweepRes = parallelSweep(
        nCells, sopt, [&](std::size_t i) -> SweepCellOut {
            MEMBW_SPAN_D("cell", cellDetail(i));
            // First thing in the cell so an injected fault covers
            // every route (ladder/Mattson lookups included), keyed by
            // index so 'cell:at=N' hits cell N-1 at any --jobs value.
            if (MEMBW_FAULT_POINT_AT("cell", i))
                fatal("injected cell fault (cell " +
                      std::to_string(i) + ")");
            SweepCellOut cell;
            if (i >= nHier)
                cell.mtc = runMinCache(
                    trace, canonicalMtc(req.sizes[i - nHier]),
                    mtcNextUse);
            else if (collapsed.has(i))
                cell.traffic = collapsed.result(i);
            else
                cell.traffic = runSweepCell(
                    trace, sweepConfigFor(req, blocks, i),
                    req.eventBudget);
            return cell;
        });

    // --sigterm-after fires once the completed prefix reaches N, but
    // with jobs > 1 in-flight cells drain past it; truncate to
    // exactly N so every --jobs value reports the same cells.
    const bool sigFired =
        opts.sigtermAfter && sweepRes.completed >= opts.sigtermAfter;
    out.completed = sweepRes.completed;
    out.usable = sweepRes.completed;
    if (sigFired && out.usable > opts.sigtermAfter)
        out.usable = static_cast<std::size_t>(opts.sigtermAfter);
    out.interrupted = sweepRes.interrupted || sigFired;

    // Tolerated failures inside the usable prefix degrade the run:
    // their cells render as "fail", their stats are omitted, and the
    // caller exits with code 5.
    out.cells = std::move(sweepRes.cells);
    out.failedCells = std::move(sweepRes.failedCells);
    out.cellFailed.assign(nCells, 0);
    for (const CellFailure &f : out.failedCells)
        if (f.cell < out.usable) {
            out.cellFailed[f.cell] = 1;
            ++out.nFailed;
        }
    out.degraded = out.nFailed > 0;
    out.wallSeconds = timer.seconds();
    return out;
}

std::string
renderSweepStatsJson(const SweepRequest &req, std::size_t traceRefs,
                     const SweepOutcome &o)
{
    const std::vector<Bytes> &blocks = o.blocks;
    StatsRegistry registry;
    for (std::size_t i = 0; i < o.usable && i < o.nHier; ++i) {
        if (o.cellFailed[i])
            continue;
        const CacheConfig cfg = sweepConfigFor(req, blocks, i);
        StatsGroup g =
            registry.group("sweep." + formatSize(cfg.size) + "." +
                           formatSize(cfg.blockBytes));
        publishStats(g, o.cells[i].traffic);
    }
    for (std::size_t i = o.nHier; i < o.usable; ++i) {
        if (o.cellFailed[i])
            continue;
        StatsGroup g = registry.group(
            "sweep.mtc." + formatSize(req.sizes[i - o.nHier]));
        publishMinCacheStats(g, o.cells[i].mtc);
    }

    RunManifest manifest;
    manifest.tool = "membw_sim";
    manifest.workload = req.label.empty() ? req.workload : req.label;
    manifest.config = req.l1.describe() + " [sweep]";
    manifest.seed = req.seed;
    manifest.scale = req.scale;
    manifest.refs = traceRefs;
    manifest.wallSeconds = o.wallSeconds;
    manifest.interrupted = o.interrupted;
    manifest.degraded = o.degraded;
    manifest.omitTiming = req.stableJson;
    // --jobs is deliberately not recorded: the JSON must be
    // byte-identical at any worker count.
    auto joinSizes = [](const std::vector<Bytes> &v) {
        std::string s;
        for (Bytes b : v) {
            if (!s.empty())
                s += ',';
            s += formatSize(b);
        }
        return s;
    };
    manifest.set("sweep_sizes", joinSizes(req.sizes));
    manifest.set("sweep_blocks", joinSizes(blocks));
    manifest.set("sweep_cells", std::to_string(o.nCells));
    manifest.set("sweep_completed", std::to_string(o.usable));
    if (o.collapsed.mattsonPasses() > 0)
        manifest.set("fa_collapse", "stack-distance");
    // Run attribution: how the trace reached the simulator and which
    // probe tier executed.  Both describe this execution rather than
    // the computed result, so — like wall_seconds — they are omitted
    // under --stable-json.
    if (!req.stableJson) {
        manifest.set("trace_format", req.traceFormat);
        manifest.set("simd_tier", simdTierName(simdTier()));
    }

    JsonWriter w;
    w.beginObject();
    w.key("manifest");
    manifest.write(w);
    // Tolerated failures, in cell-index order.  Deterministic
    // (the fault plan and cell geometry are), so it stays in the
    // --stable-json output and the equivalence tests can
    // byte-diff degraded runs across --jobs values.
    if (o.degraded) {
        w.key("failed_cells");
        w.beginArray();
        for (const CellFailure &f : o.failedCells) {
            if (f.cell >= o.usable)
                continue;
            w.beginObject();
            w.field("cell", static_cast<std::uint64_t>(f.cell));
            w.field("config",
                    f.cell >= o.nHier
                        ? canonicalMtc(req.sizes[f.cell - o.nHier])
                              .describe()
                        : sweepConfigFor(req, blocks, f.cell)
                              .describe());
            w.field("error", f.message);
            w.endObject();
        }
        w.endArray();
    }
    // Per-cell kernel routing.  Describes how this run executed
    // rather than what it computed, so — like wall_seconds — it
    // is omitted under --stable-json (the equivalence tests
    // byte-diff that output across --jobs and --no-collapse).
    if (!req.stableJson) {
        std::size_t nLadder = 0, nMattson = 0, nDirect = 0;
        for (std::size_t i = 0; i < o.usable && i < o.nHier; ++i) {
            switch (o.collapsed.route(i)) {
            case CellRoute::Ladder:
                nLadder++;
                break;
            case CellRoute::Mattson:
                nMattson++;
                break;
            case CellRoute::Direct:
                nDirect++;
                break;
            }
        }
        const std::size_t nMtc =
            o.usable > o.nHier ? o.usable - o.nHier : 0;
        w.key("routing");
        w.beginObject();
        w.field("ladder", static_cast<std::uint64_t>(nLadder));
        w.field("mattson", static_cast<std::uint64_t>(nMattson));
        w.field("direct", static_cast<std::uint64_t>(nDirect));
        w.field("mtc", static_cast<std::uint64_t>(nMtc));
        w.field("ladder_passes",
                static_cast<std::uint64_t>(
                    o.collapsed.ladderPasses()));
        w.field("partitioned_passes",
                static_cast<std::uint64_t>(
                    o.collapsed.partitionedPasses()));
        w.field("mattson_passes",
                static_cast<std::uint64_t>(
                    o.collapsed.mattsonPasses()));
        w.endObject();
    }
    w.key("stats");
    writeStatsArray(registry, w);
    w.endObject();
    return w.str();
}

} // namespace membw
