#include "serve/server.hh"

#include <cerrno>
#include <csignal>
#include <cstring>

#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include "cache/stack_distance.hh"
#include "common/log.hh"
#include "exec/simd.hh"
#include "mtc/next_use.hh"
#include "obs/build_info.hh"
#include "obs/manifest.hh"
#include "obs/progress.hh"
#include "resilience/exit_codes.hh"
#include "resilience/signals.hh"
#include "serve/decompose_service.hh"
#include "serve/sweep_service.hh"
#include "trace/block_stream.hh"
#include "trace/trace_io.hh"
#include "workloads/workload.hh"

namespace membw {

namespace {

/** send(2) until @p data is fully sent; false on error.  MSG_NOSIGNAL
 * turns a client that closed its socket mid-response into an EPIPE
 * return instead of a process-killing SIGPIPE. */
bool
writeAll(int fd, std::string_view data)
{
    std::size_t sent = 0;
    while (sent < data.size()) {
        const ssize_t n = ::send(fd, data.data() + sent,
                                 data.size() - sent, MSG_NOSIGNAL);
        if (n < 0) {
            if (errno == EINTR)
                continue;
            return false;
        }
        sent += static_cast<std::size_t>(n);
    }
    return true;
}

std::string
formatScale(double scale)
{
    return formatJsonNumber(scale);
}

} // namespace

struct ServeServer::ServedTrace
{
    Trace trace;
    std::uint32_t crc = 0;
};

ServeServer::ServeServer(ServerOptions opts)
    : opts_(std::move(opts)),
      artifacts_(opts_.artifactCacheBytes),
      results_(opts_.resultCacheBytes, opts_.spillDir),
      broker_(opts_.queueCapacity)
{
    if (opts_.jobs > 1)
        pool_.emplace(opts_.jobs);
    if (opts_.sigtermAfterJobs > 0) {
        const std::uint64_t target = opts_.sigtermAfterJobs;
        broker_.onJobStart([target](std::uint64_t nth) {
            if (nth == target)
                std::raise(SIGTERM);
        });
    }
}

ServeServer::~ServeServer()
{
    stopping_.store(true);
    broker_.drainAndStop();
    joinAllThreads();
}

void
ServeServer::reapFinishedThreads()
{
    std::vector<std::thread> done;
    {
        std::lock_guard<std::mutex> lock(threadsMutex_);
        for (const std::uint64_t id : finishedThreads_) {
            if (auto it = threads_.find(id); it != threads_.end()) {
                done.push_back(std::move(it->second));
                threads_.erase(it);
            }
        }
        finishedThreads_.clear();
    }
    // Join outside the lock: each thread's last act is to enqueue its
    // id under threadsMutex_, so these joins return immediately.
    for (auto &t : done)
        t.join();
}

void
ServeServer::joinAllThreads()
{
    std::unordered_map<std::uint64_t, std::thread> all;
    {
        std::lock_guard<std::mutex> lock(threadsMutex_);
        all.swap(threads_);
        finishedThreads_.clear();
    }
    for (auto &[id, t] : all) {
        (void)id;
        if (t.joinable())
            t.join();
    }
}

int
ServeServer::run()
{
    // Belt and braces with writeAll's MSG_NOSIGNAL: no disconnecting
    // client may take the long-lived daemon down with a SIGPIPE.
    std::signal(SIGPIPE, SIG_IGN);

    sockaddr_un addr{};
    addr.sun_family = AF_UNIX;
    if (opts_.socketPath.size() >= sizeof(addr.sun_path)) {
        logError("socket path too long: " + opts_.socketPath);
        return exitFatal;
    }
    std::memcpy(addr.sun_path, opts_.socketPath.c_str(),
                opts_.socketPath.size() + 1);

    const int listenFd = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (listenFd < 0) {
        logError(std::string("socket: ") + std::strerror(errno));
        return exitFatal;
    }
    ::unlink(opts_.socketPath.c_str());
    if (::bind(listenFd, reinterpret_cast<const sockaddr *>(&addr),
               sizeof(addr)) != 0 ||
        ::listen(listenFd, 64) != 0) {
        logError("bind/listen on '" + opts_.socketPath +
                 "': " + std::strerror(errno));
        ::close(listenFd);
        return exitFatal;
    }
    logInfo("membw_served listening on " + opts_.socketPath);

    // Accept loop: poll with a short timeout so a latched signal or a
    // shutdown request is noticed within ~200ms.
    while (!shutdownRequested() && shutdownExit_.load() < 0) {
        pollfd pfd{listenFd, POLLIN, 0};
        const int ready = ::poll(&pfd, 1, 200);
        if (ready < 0) {
            if (errno == EINTR)
                continue;
            logError(std::string("poll: ") + std::strerror(errno));
            break;
        }
        if (ready == 0)
            continue;
        const int fd = ::accept(listenFd, nullptr, nullptr);
        if (fd < 0)
            continue;
        reapFinishedThreads();
        std::lock_guard<std::mutex> lock(threadsMutex_);
        const std::uint64_t id = nextThreadId_++;
        threads_.emplace(id, std::thread([this, fd, id] {
            handleConnection(fd);
            std::lock_guard<std::mutex> lock(threadsMutex_);
            finishedThreads_.push_back(id);
        }));
    }

    // Drain: every admitted job finishes and its waiting clients get
    // their complete responses before the listener goes away.
    stopping_.store(true);
    broker_.drainAndStop();
    ::close(listenFd);
    joinAllThreads();
    ::unlink(opts_.socketPath.c_str());

    if (shutdownExit_.load() >= 0) {
        logInfo("membw_served: shutdown requested; exiting");
        return shutdownExit_.load();
    }
    logInfo(std::string("membw_served: ") + shutdownSignalName() +
            " received; drained in-flight requests");
    return exitInterrupted;
}

void
ServeServer::handleConnection(int fd)
{
    std::string buffer;
    bool open = true;
    while (open) {
        // Serve any fully-buffered lines first.
        std::size_t nl;
        while ((nl = buffer.find('\n')) != std::string::npos) {
            std::string line = buffer.substr(0, nl);
            buffer.erase(0, nl + 1);
            if (line.empty())
                continue;
            const std::string response = handleRequest(line);
            if (!writeAll(fd, response + "\n")) {
                open = false;
                break;
            }
        }
        if (!open)
            break;
        if (stopping_.load() || shutdownRequested() ||
            shutdownExit_.load() >= 0)
            break;
        pollfd pfd{fd, POLLIN, 0};
        const int ready = ::poll(&pfd, 1, 200);
        if (ready < 0) {
            if (errno == EINTR)
                continue;
            break;
        }
        if (ready == 0)
            continue;
        char chunk[1 << 16];
        const ssize_t n = ::read(fd, chunk, sizeof(chunk));
        if (n <= 0)
            break;
        buffer.append(chunk, static_cast<std::size_t>(n));
    }
    ::close(fd);
}

std::string
ServeServer::handleRequest(const std::string &line)
{
    requests_.fetch_add(1);
    ServeRequest req;
    try {
        req = parseServeRequest(line);
    } catch (const FatalError &e) {
        return errorEnvelope("request", e.what());
    }

    switch (req.op) {
      case ServeOp::Ping:
        return pingEnvelope();
      case ServeOp::Stats:
        return statsEnvelope();
      case ServeOp::Shutdown:
        shutdownExit_.store(exitOk);
        return okEnvelope(ServeOp::Shutdown, false, exitOk,
                          "shutting down");
      case ServeOp::Sweep:
      case ServeOp::Decompose:
        break;
    }

    // Keying can itself reject a request (serveRequestKey canonicalises
    // through the experiment config, which fatal()s on bad overrides);
    // that must become an error envelope, not an escaped exception that
    // terminates the connection thread.
    std::string key;
    std::uint64_t digest = 0;
    try {
        key = serveRequestKey(req);
        digest = fnv1a64(key);
    } catch (const FatalError &e) {
        return errorEnvelope(req.op, e.what());
    }
    if (auto hit = results_.get(digest, key))
        return okEnvelope(req.op, true, hit->exitCode, hit->body);

    auto submission = broker_.submit(
        digest, [this, req, key, digest] {
            return computeResponse(req, key, digest);
        });
    if (submission.busy)
        return busyEnvelope(req.op, submission.queued,
                            opts_.queueCapacity);
    return RequestBroker::wait(submission.job);
}

std::string
ServeServer::computeResponse(const ServeRequest &req,
                             const std::string &key,
                             std::uint64_t digest)
{
    // A coalescing race can complete this digest between the probe
    // and the dispatch; the recheck keeps that case a cache hit.
    if (auto hit = results_.get(digest, key, /*recordMiss=*/false))
        return okEnvelope(req.op, true, hit->exitCode, hit->body);
    try {
        if (req.op == ServeOp::Sweep)
            return computeSweep(req.sweep, key, digest);
        return computeDecompose(req.decompose, key, digest);
    } catch (const WatchdogError &e) {
        return errorEnvelope(req.op, e.what());
    } catch (const FatalError &e) {
        return errorEnvelope(req.op, e.what());
    }
}

std::shared_ptr<const ServeServer::ServedTrace>
ServeServer::traceFor(const std::string &workload, double scale,
                      std::uint64_t seed)
{
    const std::string key = "trace|" + workload + "|" +
                            formatScale(scale) + "|" +
                            std::to_string(seed);
    return artifacts_.getOrBuild<ServedTrace>(key, [&] {
        WorkloadParams p;
        p.scale = scale;
        p.seed = seed;
        auto served = std::make_shared<ServedTrace>();
        served->trace = makeWorkload(workload)->trace(p);
        served->crc = traceCrc32(served->trace);
        const std::size_t bytes =
            served->trace.size() * sizeof(MemRef);
        return ArtifactCache::Built<ServedTrace>{std::move(served),
                                                 bytes};
    });
}

std::string
ServeServer::computeSweep(const SweepRequest &req,
                          const std::string &key,
                          std::uint64_t digest)
{
    auto served = traceFor(req.workload, req.scale, req.seed);
    const std::string crc = std::to_string(served->crc);

    SweepExecOptions eopts;
    eopts.jobs = opts_.jobs;
    eopts.pool = pool_ ? &*pool_ : nullptr;
    // The daemon deliberately wires no cancel hook: a drained
    // in-flight request must produce the same bytes as an
    // undisturbed run (see sweep_service.hh).
    eopts.streamProvider =
        [this, served, crc](Bytes blockBytes) {
            const std::string key = "stream|" + crc + "|" +
                                    std::to_string(blockBytes);
            return artifacts_.getOrBuild<BlockStream>(key, [&] {
                auto stream = std::make_shared<BlockStream>(
                    buildBlockStream(served->trace, blockBytes));
                // Estimated decode-array footprint: 19 bytes per
                // reference (8+1+2+8 across the four columns).
                const std::size_t bytes = stream->refs * 19;
                return ArtifactCache::Built<BlockStream>{
                    std::move(stream), bytes};
            });
        };
    eopts.profileProvider =
        [this, served, crc](Bytes blockBytes) {
            const std::string key = "sdprof|" + crc + "|" +
                                    std::to_string(blockBytes);
            return artifacts_.getOrBuild<StackDistanceProfile>(
                key, [&] {
                    auto profile =
                        std::make_shared<StackDistanceProfile>(
                            served->trace, blockBytes);
                    // Histogram bound: ~16 bytes per reference.
                    const std::size_t bytes =
                        served->trace.size() * 16;
                    return ArtifactCache::Built<StackDistanceProfile>{
                        std::move(profile), bytes};
                });
        };
    eopts.nextUseProvider = [this, served, crc] {
        const std::string key = "nextuse|" + crc + "|" +
                                std::to_string(wordBytes);
        return artifacts_.getOrBuild<std::vector<Tick>>(key, [&] {
            auto table = std::make_shared<std::vector<Tick>>(
                buildNextUse(served->trace, wordBytes));
            const std::size_t bytes =
                table->size() * sizeof(Tick);
            return ArtifactCache::Built<std::vector<Tick>>{
                std::move(table), bytes};
        });
    };

    SweepOutcome outcome =
        executeSweep(req, served->trace, eopts);
    const std::string body =
        renderSweepStatsJson(req, served->trace.size(), outcome);
    const int exitCode = outcome.degraded ? exitDegraded : exitOk;
    results_.put(digest, key, CachedResult{body, exitCode});
    return okEnvelope(ServeOp::Sweep, false, exitCode, body);
}

std::string
ServeServer::computeDecompose(const DecomposeRequest &req,
                              const std::string &key,
                              std::uint64_t digest)
{
    const std::string streamKey = "instr|" + req.workload + "|" +
                                  formatScale(req.scale) + "|" +
                                  std::to_string(req.seed);
    auto stream = artifacts_.getOrBuild<InstrStream>(streamKey, [&] {
        auto built = std::make_shared<InstrStream>(
            buildDecomposeStream(req.workload, req.scale, req.seed));
        const std::size_t bytes = built->size() * sizeof(MicroOp);
        return ArtifactCache::Built<InstrStream>{std::move(built),
                                                 bytes};
    });

    WallTimer timer;
    DecompositionResult r = executeDecompose(req, *stream);
    const std::string body = renderDecomposeStatsJson(
        req, stream->size(), r, timer.seconds());
    results_.put(digest, key, CachedResult{body, exitOk});
    return okEnvelope(ServeOp::Decompose, false, exitOk, body);
}

std::string
ServeServer::pingEnvelope() const
{
    const BuildInfo &b = buildInfo();
    std::string out = "{\"status\":\"ok\",\"op\":\"ping\"";
    out += ",\"version\":" + jsonEscape(b.version);
    out += ",\"git_describe\":" + jsonEscape(b.gitDescribe);
    out += ",\"simd\":";
    out += b.simd ? "true" : "false";
    if (b.simd)
        out += ",\"simd_tier\":" +
               jsonEscape(simdTierName(simdTier()));
    out += ",\"tracing\":";
    out += b.tracing ? "true" : "false";
    out += ",\"profiling\":";
    out += b.profiling ? "true" : "false";
    out += ",\"sanitizer\":" + jsonEscape(b.sanitizer);
    out += ",\"jobs\":" + std::to_string(opts_.jobs);
    out += "}";
    return out;
}

std::string
ServeServer::statsEnvelope() const
{
    std::string out = "{\"status\":\"ok\",\"op\":\"stats\"";
    out += ",\"requests\":" + std::to_string(requests_.load());
    out += ",\"executed\":" + std::to_string(broker_.executed());
    out += ",\"coalesced\":" + std::to_string(broker_.coalesced());
    out += ",\"busy_rejected\":" +
           std::to_string(broker_.busyRejected());
    out += ",\"queue_depth\":" + std::to_string(broker_.queueDepth());
    out += ",\"result_hits\":" + std::to_string(results_.hits());
    out += ",\"result_misses\":" + std::to_string(results_.misses());
    out += ",\"result_evictions\":" +
           std::to_string(results_.evictions());
    out += ",\"result_spills\":" + std::to_string(results_.spills());
    out += ",\"result_spill_hits\":" +
           std::to_string(results_.spillHits());
    out += ",\"result_bytes\":" +
           std::to_string(results_.bytesResident());
    out += ",\"result_entries\":" + std::to_string(results_.entries());
    out += ",\"artifact_hits\":" + std::to_string(artifacts_.hits());
    out += ",\"artifact_misses\":" +
           std::to_string(artifacts_.misses());
    out += ",\"artifact_evictions\":" +
           std::to_string(artifacts_.evictions());
    out += ",\"artifact_bytes\":" +
           std::to_string(artifacts_.bytesResident());
    out += ",\"artifact_entries\":" +
           std::to_string(artifacts_.entries());
    out += "}";
    return out;
}

} // namespace membw
