/**
 * @file
 * The sweep engine behind both `membw_sim` sweep mode and the
 * `membw_served` daemon.
 *
 * Byte-identical serving is a *structural* property here, not a
 * testing aspiration: the tool and the daemon call the same
 * executeSweep() + renderSweepStatsJson() pair, so a served `sweep`
 * response cannot drift from what a fresh `membw_sim --stats-json`
 * run writes (tests/served_test.sh still byte-diffs the two as the
 * regression tripwire).
 *
 * The split of responsibilities:
 *
 *  - executeSweep() owns everything jobs-invariant: cell geometry
 *    and validation, collapse planning, the deterministic fan-out
 *    with degraded-mode accounting, and --sigterm-after truncation.
 *  - renderSweepStatsJson() reproduces the stats-JSON document.
 *  - the caller owns process concerns: stdout narration, exit
 *    codes, and whether a latched SIGTERM interrupts the run.  The
 *    daemon deliberately passes no cancel hook — a drained in-flight
 *    request must produce the same bytes as an undisturbed run, with
 *    no "interrupted" flag leaking into the response.
 */

#ifndef MEMBW_SERVE_SWEEP_SERVICE_HH
#define MEMBW_SERVE_SWEEP_SERVICE_HH

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "cache/config.hh"
#include "cache/hierarchy.hh"
#include "exec/collapsed_sweep.hh"
#include "exec/parallel_sweep.hh"
#include "mtc/min_cache.hh"
#include "mtc/next_use.hh"
#include "trace/trace.hh"

namespace membw {

struct MappedTrace;
class ThreadPool;

/** Everything that identifies a sweep computation (the result-cache
 * key hashes exactly these fields). */
struct SweepRequest
{
    std::string workload;   ///< generator name (daemon trace source)
    std::string label;      ///< manifest workload field; defaults to
                            ///< workload when empty
    double scale = 1.0;
    std::uint64_t seed = 42;
    CacheConfig l1;         ///< geometry template for every cell
    bool runMtc = false;
    std::vector<Bytes> sizes;
    std::vector<Bytes> blocks; ///< empty = {l1.blockBytes}
    bool stableJson = false;
    bool noCollapse = false;
    bool noPartition = false;
    std::uint64_t eventBudget = 1'000'000;
    /** Manifest attribution (satellite of PR 9): how the trace
     * reached the simulator — "generated", "binary", or "mmap".
     * Omitted from --stable-json output, so not part of the result
     * identity. */
    std::string traceFormat = "generated";

    SweepRequest() { l1.name = "L1"; l1.size = 64_KiB; }
};

/** Block-size list with the single-block default applied. */
std::vector<Bytes> resolveSweepBlocks(const SweepRequest &req);

/** Config of hierarchy cell @p cell (cell < sizes×blocks). */
CacheConfig sweepConfigFor(const SweepRequest &req,
                           const std::vector<Bytes> &blocks,
                           std::size_t cell);

/**
 * Canonical identity string for the result cache, built from every
 * request field that changes the (stable) response bytes.  Digest it
 * with fnv1a64() — the same hash the run manifests use for config
 * digests.
 */
std::string sweepRequestKey(const SweepRequest &req);

/** One sweep cell's output (exactly one member is meaningful). */
struct SweepCellOut
{
    TrafficResult traffic;
    MinCacheStats mtc;
};

/** Execution-context knobs — everything here is jobs/daemon policy
 * and must not change the computed bytes. */
struct SweepExecOptions
{
    unsigned jobs = 1;
    /** Shared pool (see SweepOptions::pool); jobs is ignored for the
     * fan-out when set. */
    ThreadPool *pool = nullptr;
    /** Zero-copy trace mapping for ladder BlockStreams. */
    const MappedTrace *mapped = nullptr;
    /** Poll to stop scheduling cells (membw_sim wires
     * shutdownRequested(); the daemon leaves it unset). */
    std::function<bool()> cancel;
    /** Serialized progress hook (contiguous completed prefix). */
    std::function<void(std::size_t donePrefix)> onPrefix;
    /** Truncate output to exactly N completed cells once the prefix
     * reaches N (--sigterm-after); 0 = off. */
    std::uint64_t sigtermAfter = 0;
    /** Fires after collapse planning, before the cell fan-out, so
     * the tool can print its collapse summary lines. */
    std::function<void(const CollapsedSweep &collapsed,
                       std::size_t nHier, std::size_t nCells)>
        onPlan;
    /** Artifact-cache hooks, forwarded into CollapseOptions. */
    std::function<std::shared_ptr<const BlockStream>(Bytes)>
        streamProvider;
    std::function<std::shared_ptr<const StackDistanceProfile>(Bytes)>
        profileProvider;
    /** Word-granularity next-use table for the MTC cells; unset
     * builds one per sweep. */
    std::function<NextUseTable()> nextUseProvider;
};

/** What a sweep computed, in renderable form. */
struct SweepOutcome
{
    std::vector<Bytes> blocks; ///< resolved block list
    std::size_t nHier = 0;
    std::size_t nCells = 0;
    std::vector<SweepCellOut> cells;
    std::vector<char> cellFailed; ///< within the usable prefix
    std::size_t nFailed = 0;
    std::vector<CellFailure> failedCells;
    std::size_t completed = 0; ///< raw contiguous prefix
    std::size_t usable = 0;    ///< after --sigterm-after truncation
    bool interrupted = false;  ///< cancel/sigterm fired (callers may
                               ///< OR in a late shutdown poll)
    bool degraded = false;
    CollapsedSweep collapsed;  ///< for route() accounting
    double wallSeconds = 0.0;
};

/**
 * Validate and run the sweep.  Throws FatalError on invalid cell
 * geometry (daemon callers catch it per request) and WatchdogError
 * if a cell trips its event budget.
 */
SweepOutcome executeSweep(const SweepRequest &req, const Trace &trace,
                          const SweepExecOptions &opts);

/**
 * The stats-JSON document for a completed sweep — byte-for-byte what
 * membw_sim --stats-json writes for the same request and outcome.
 */
std::string renderSweepStatsJson(const SweepRequest &req,
                                 std::size_t traceRefs,
                                 const SweepOutcome &outcome);

} // namespace membw

#endif // MEMBW_SERVE_SWEEP_SERVICE_HH
