#include "serve/artifact_cache.hh"

namespace membw {

void
ArtifactCache::insert(const std::string &key,
                      std::shared_ptr<const void> ptr,
                      std::size_t bytes)
{
    // Oversized artifacts (or a zero-byte cache) pass through
    // uncached rather than flushing everything else.
    if (bytes > maxBytes_)
        return;
    while (bytes_ + bytes > maxBytes_ && !lru_.empty()) {
        const std::string victim = lru_.front();
        lru_.pop_front();
        auto it = entries_.find(victim);
        bytes_ -= it->second.bytes;
        entries_.erase(it);
        ++evictions_;
    }
    Entry e;
    e.ptr = std::move(ptr);
    e.bytes = bytes;
    e.lru = lru_.insert(lru_.end(), key);
    entries_.emplace(key, std::move(e));
    bytes_ += bytes;
}

} // namespace membw
