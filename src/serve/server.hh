/**
 * @file
 * The membw_served daemon core: a Unix-domain-socket server that
 * keeps the expensive state — one shared ThreadPool, the
 * content-addressed artifact cache, and the digest-keyed result
 * cache — alive across requests, so repeat sweeps are hash lookups
 * instead of simulations.
 *
 * Request flow per connection thread:
 *
 *   parse line → result-cache probe (warm path: one lookup, one
 *   write) → RequestBroker::submit (admission control + coalescing)
 *   → compute on the dispatcher thread via the shared services
 *   (executeSweep / executeDecompose with artifact-cache providers)
 *   → cache + respond.
 *
 * Shutdown contract (exit-code contract of docs/resilience.md):
 *   - `shutdown` op: respond ok, drain admitted jobs, exit 0.
 *   - SIGTERM/SIGINT: stop accepting, drain admitted jobs so every
 *     in-flight client still receives its complete response, exit 3.
 *   - --sigterm-after N (tests): raise SIGTERM as the Nth compute
 *     job starts, exercising the drain path deterministically.
 */

#ifndef MEMBW_SERVE_SERVER_HH
#define MEMBW_SERVE_SERVER_HH

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "exec/thread_pool.hh"
#include "serve/artifact_cache.hh"
#include "serve/broker.hh"
#include "serve/protocol.hh"
#include "serve/result_cache.hh"

namespace membw {

struct ServerOptions
{
    std::string socketPath = "membw.sock";
    unsigned jobs = 1;
    /** Result-cache bound (rendered response bytes). */
    std::size_t resultCacheBytes = std::size_t{64} << 20;
    /** Artifact-cache bound (estimated trace/stream/profile bytes). */
    std::size_t artifactCacheBytes = std::size_t{512} << 20;
    /** Admission-queue capacity; a full queue answers `busy`. */
    std::size_t queueCapacity = 8;
    /** Spill directory for evicted clean results; empty disables. */
    std::string spillDir;
    /** Raise SIGTERM as the Nth compute job starts (0 = off). */
    std::uint64_t sigtermAfterJobs = 0;
};

class ServeServer
{
  public:
    explicit ServeServer(ServerOptions opts);
    ~ServeServer();

    /**
     * Bind, listen, and serve until a `shutdown` request or a
     * latched SIGTERM/SIGINT.  Returns the process exit code
     * (exitOk / exitInterrupted / exitFatal on socket failure).
     * installShutdownHandlers() must already be in place.
     */
    int run();

  private:
    void handleConnection(int fd);
    std::string handleRequest(const std::string &line);
    std::string computeResponse(const ServeRequest &req,
                                const std::string &key,
                                std::uint64_t digest);
    std::string computeSweep(const SweepRequest &req,
                             const std::string &key,
                             std::uint64_t digest);
    std::string computeDecompose(const DecomposeRequest &req,
                                 const std::string &key,
                                 std::uint64_t digest);
    void reapFinishedThreads();
    void joinAllThreads();
    std::string pingEnvelope() const;
    std::string statsEnvelope() const;

    /** A generated trace plus its CRC, cached as one artifact so the
     * CRC that keys the derived artifacts is computed once. */
    struct ServedTrace;
    std::shared_ptr<const ServedTrace> traceFor(
        const std::string &workload, double scale,
        std::uint64_t seed);

    const ServerOptions opts_;
    std::optional<ThreadPool> pool_; ///< engaged when jobs > 1
    ArtifactCache artifacts_;
    ResultCache results_;
    RequestBroker broker_;

    std::atomic<bool> stopping_{false};
    std::atomic<int> shutdownExit_{-1}; ///< set by the shutdown op
    std::atomic<std::uint64_t> requests_{0};

    /** Connection threads, keyed by id so the accept loop can join
     * completed ones promptly instead of accumulating joinable
     * handles (and their stacks) until shutdown. */
    std::mutex threadsMutex_;
    std::unordered_map<std::uint64_t, std::thread> threads_;
    std::vector<std::uint64_t> finishedThreads_;
    std::uint64_t nextThreadId_ = 0;
};

} // namespace membw

#endif // MEMBW_SERVE_SERVER_HH
