/**
 * @file
 * Content-addressed LRU cache for immutable simulation artifacts.
 *
 * The daemon's warm path lives here: traces keyed by
 * (workload, scale, seed), BlockStreams by (trace CRC, block size),
 * Mattson stack-distance profiles and MTC next-use tables by
 * (trace CRC, granularity), instruction streams by
 * (workload, scale, seed).  Everything stored is immutable and
 * handed out as shared_ptr<const T>, so an entry can be evicted
 * while a request still computes over it — the bytes stay alive
 * until the last reader drops its reference.
 *
 * Eviction is size-bounded LRU over the caller-estimated byte cost.
 * Counters (hits, misses, evictions, bytes resident) feed the
 * daemon's `stats` op and the stats-registry export.
 *
 * Thread safety: every public method locks; getOrBuild() holds the
 * lock across the builder, which serializes builds.  That is the
 * intended admission behaviour — the daemon executes requests one at
 * a time, and two threads racing to build the same trace would waste
 * the work the cache exists to save.
 */

#ifndef MEMBW_SERVE_ARTIFACT_CACHE_HH
#define MEMBW_SERVE_ARTIFACT_CACHE_HH

#include <cstdint>
#include <functional>
#include <list>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <utility>

namespace membw {

class ArtifactCache
{
  public:
    /** @p maxBytes bounds the estimated resident total; 0 disables
     * caching entirely (every lookup misses and nothing is kept). */
    explicit ArtifactCache(std::size_t maxBytes)
        : maxBytes_(maxBytes)
    {
    }

    /** A built artifact plus its estimated resident byte cost. */
    template <typename T>
    using Built = std::pair<std::shared_ptr<const T>, std::size_t>;

    /**
     * Return the cached artifact under @p key, or invoke @p build,
     * cache the result, and return it.  An artifact larger than the
     * whole cache is returned uncached.
     */
    template <typename T>
    std::shared_ptr<const T>
    getOrBuild(const std::string &key,
               const std::function<Built<T>()> &build)
    {
        std::lock_guard<std::mutex> lock(mutex_);
        if (auto it = entries_.find(key); it != entries_.end()) {
            ++hits_;
            touch(it->second);
            return std::static_pointer_cast<const T>(it->second.ptr);
        }
        ++misses_;
        auto [ptr, bytes] = build();
        insert(key, std::static_pointer_cast<const void>(ptr), bytes);
        return ptr;
    }

    std::uint64_t hits() const { return counter(hits_); }
    std::uint64_t misses() const { return counter(misses_); }
    std::uint64_t evictions() const { return counter(evictions_); }
    std::uint64_t
    bytesResident() const
    {
        std::lock_guard<std::mutex> lock(mutex_);
        return bytes_;
    }
    std::size_t
    entries() const
    {
        std::lock_guard<std::mutex> lock(mutex_);
        return entries_.size();
    }

  private:
    struct Entry
    {
        std::shared_ptr<const void> ptr;
        std::size_t bytes = 0;
        std::list<std::string>::iterator lru;
    };

    /** Move @p e to the most-recently-used end. */
    void touch(Entry &e) { lru_.splice(lru_.end(), lru_, e.lru); }

    void insert(const std::string &key, std::shared_ptr<const void> ptr,
                std::size_t bytes);

    std::uint64_t
    counter(const std::uint64_t &c) const
    {
        std::lock_guard<std::mutex> lock(mutex_);
        return c;
    }

    const std::size_t maxBytes_;
    mutable std::mutex mutex_;
    std::unordered_map<std::string, Entry> entries_;
    std::list<std::string> lru_; ///< front = least recently used
    std::size_t bytes_ = 0;
    std::uint64_t hits_ = 0;
    std::uint64_t misses_ = 0;
    std::uint64_t evictions_ = 0;
};

} // namespace membw

#endif // MEMBW_SERVE_ARTIFACT_CACHE_HH
