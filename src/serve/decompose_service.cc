#include "serve/decompose_service.hh"

#include "common/log.hh"
#include "dram/dram.hh"
#include "obs/epoch_profiler.hh"
#include "obs/export.hh"
#include "obs/json.hh"
#include "obs/manifest.hh"
#include "obs/registry.hh"
#include "obs/trace_span.hh"
#include "resilience/watchdog.hh"

namespace membw {

void
applyDecomposeOverrides(ExperimentConfig &cfg,
                        const DecomposeOverrides &ov)
{
    if (ov.mshrs > 0)
        cfg.mem.mshrs = static_cast<unsigned>(ov.mshrs);
    if (ov.window > 0)
        cfg.core.windowSlots = static_cast<unsigned>(ov.window);
    if (ov.width > 0)
        cfg.core.issueWidth = static_cast<unsigned>(ov.width);
    if (ov.noPrefetch)
        cfg.mem.taggedPrefetch = false;
    if (ov.l1l2 > 0)
        cfg.mem.l1l2BusBytes = static_cast<Bytes>(ov.l1l2);
    if (ov.membus > 0)
        cfg.mem.memBusBytes = static_cast<Bytes>(ov.membus);
    if (!ov.dram.empty()) {
        const DramKind kind =
            ov.dram == "fpm"     ? DramKind::FastPageMode
            : ov.dram == "edo"   ? DramKind::EDO
            : ov.dram == "sdram" ? DramKind::Synchronous
            : ov.dram == "rdram"
                ? DramKind::Rambus
                : (fatal("invalid value '" + ov.dram +
                         "' for --dram: expected fpm, edo, "
                         "sdram, or rdram"),
                   DramKind::FastPageMode);
        cfg.mem.dram = DramConfig::preset(kind, cfg.cpuMHz);
    }
}

ExperimentConfig
decomposeConfig(const DecomposeRequest &req)
{
    ExperimentConfig cfg = makeExperiment(req.letter, req.spec95);
    applyDecomposeOverrides(cfg, req.overrides);
    return cfg;
}

InstrStream
buildDecomposeStream(const std::string &workload, double scale,
                     std::uint64_t seed)
{
    MEMBW_SPAN_D("stream.build", workload);
    WorkloadParams p;
    p.scale = scale;
    p.seed = seed;
    const auto run = makeWorkload(workload)->run(p);
    return InstrStream::fromRun(run, codeFootprintBytes(workload),
                                seed);
}

std::string
decomposeRequestKey(const DecomposeRequest &req)
{
    std::string key = "decompose|";
    key += req.workload;
    key += '|';
    key += decomposeConfig(req).describe();
    key += '|';
    key += std::string(1, req.letter);
    key += req.spec95 ? "|spec95|" : "|spec92|";
    key += formatJsonNumber(req.scale);
    key += '|';
    key += std::to_string(req.seed);
    key += req.stableJson ? "|stable|" : "|full|";
    key += std::to_string(req.watchdogCycles);
    return key;
}

DecompositionResult
executeDecompose(const DecomposeRequest &req, const InstrStream &stream,
                 const std::function<void(std::size_t, std::size_t)>
                     &progress)
{
    ExperimentConfig cfg = decomposeConfig(req);
    cfg.core.progressEvery = 65536;
    cfg.core.progress = progress;

    CoreResult results[decompositionPhases];
    for (unsigned phase = 0; phase < decompositionPhases; ++phase) {
        // Per-phase watchdog; the cycle domain restarts at zero each
        // phase, so the guard must too.
        Watchdog watchdog(req.watchdogCycles);
        cfg.core.watchdog = &watchdog;
        MEMBW_SPAN_D("phase", std::string(phaseName(phase)));
        results[phase] = runPhase(stream, cfg, phase);
        cfg.core.watchdog = nullptr;
    }
    return assembleDecomposition(results[0], results[1], results[2]);
}

std::string
renderDecomposeStatsJson(const DecomposeRequest &req,
                         std::size_t streamRefs,
                         const DecompositionResult &r,
                         double wallSeconds)
{
    StatsRegistry registry;
    publishDecompositionStats(registry, r);

    RunManifest manifest;
    manifest.tool = "membw_decompose";
    manifest.experiment = std::string(1, req.letter);
    manifest.workload = req.workload;
    manifest.config = decomposeConfig(req).describe();
    manifest.seed = req.seed;
    manifest.scale = req.scale;
    manifest.refs = streamRefs;
    manifest.wallSeconds = wallSeconds;
    manifest.omitTiming = req.stableJson;
    writeProfileManifest(manifest, req.stableJson);

    JsonWriter w;
    w.beginObject();
    w.key("manifest");
    manifest.write(w);
    w.key("stats");
    writeStatsArray(registry, w);
    w.endObject();
    return w.str();
}

} // namespace membw
