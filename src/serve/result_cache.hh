/**
 * @file
 * Bounded LRU cache of rendered response documents, keyed by the
 * FNV-1a digest of the canonical request key (the same hash family
 * the run manifests use for config digests).
 *
 * A hit is the daemon's entire warm path: the stored body is the
 * byte-exact stats-JSON document a fresh run would produce, so a
 * repeat request costs one hash lookup and one socket write.
 *
 * The full canonical request key is stored next to every entry and
 * compared on lookup, so a 64-bit digest collision degrades to a miss
 * (recompute) instead of silently serving the wrong response.
 *
 * Eviction spills clean results (exit 0) to `<spillDir>/<digest>.json`
 * through GuardedFile::writeAtomic — torn spill files are impossible,
 * and a spill failure (disk full, injected io-write fault) degrades
 * to "evict without spilling", never a crash.  Spill files carry a
 * `membw-spill-v1` header embedding the full request key; a reload
 * verifies both, so a stale file from an older (different-format)
 * build or a colliding digest is ignored rather than served.  A later
 * miss reloads the spilled document.  Degraded results (exit 5) are
 * cached in memory but never spilled: a rerun should get the chance
 * to succeed after a restart.
 *
 * An MEMBW_FAULT_POINT("alloc") guards insertion so the torture
 * harness can prove the daemon serves correct (uncached) responses
 * when the cache cannot take new entries.
 */

#ifndef MEMBW_SERVE_RESULT_CACHE_HH
#define MEMBW_SERVE_RESULT_CACHE_HH

#include <cstdint>
#include <list>
#include <mutex>
#include <optional>
#include <string>
#include <string_view>
#include <unordered_map>

namespace membw {

/** A cached response: the rendered document plus the exit-code
 * contract value the equivalent CLI run would return (0 or 5). */
struct CachedResult
{
    std::string body;
    int exitCode = 0;
};

class ResultCache
{
  public:
    /** @p spillDir empty disables spill; @p maxBytes bounds resident
     * body bytes. */
    ResultCache(std::size_t maxBytes, std::string spillDir);

    /** Lookup by digest; checks memory, then the spill directory.
     * @p key is the full canonical request key the digest was hashed
     * from — an entry whose stored key differs (digest collision,
     * stale spill file) is a miss.  @p recordMiss false suppresses
     * the miss counter — for the dispatcher's post-coalescing
     * recheck, which would otherwise double-count the miss already
     * recorded at admission. */
    std::optional<CachedResult> get(std::uint64_t digest,
                                    std::string_view key,
                                    bool recordMiss = true);

    /** Insert (no-op when an injected alloc fault fires or the body
     * exceeds the cache bound). */
    void put(std::uint64_t digest, std::string_view key,
             const CachedResult &result);

    std::uint64_t hits() const;
    std::uint64_t misses() const;
    std::uint64_t evictions() const;
    std::uint64_t spills() const;
    std::uint64_t spillHits() const;
    std::uint64_t bytesResident() const;
    std::size_t entries() const;

  private:
    std::string spillPath(std::uint64_t digest) const;
    void putLocked(std::uint64_t digest, std::string_view key,
                   const CachedResult &result);
    void evictOne();

    const std::size_t maxBytes_;
    const std::string spillDir_;
    mutable std::mutex mutex_;

    struct Entry
    {
        std::string key; ///< full request key; verified on hit
        CachedResult result;
        std::list<std::uint64_t>::iterator lru;
    };
    std::unordered_map<std::uint64_t, Entry> entries_;
    std::list<std::uint64_t> lru_; ///< front = least recently used
    std::size_t bytes_ = 0;
    std::uint64_t hits_ = 0;
    std::uint64_t misses_ = 0;
    std::uint64_t evictions_ = 0;
    std::uint64_t spills_ = 0;
    std::uint64_t spillHits_ = 0;
};

} // namespace membw

#endif // MEMBW_SERVE_RESULT_CACHE_HH
