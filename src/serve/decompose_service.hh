/**
 * @file
 * Shared execution-time-decomposition engine for `membw_decompose`
 * and the `membw_served` daemon.
 *
 * A decompose request is three deterministic phase runs (perfect
 * memory, infinite width, full system) over one InstrStream.  The
 * daemon memoizes the stream by (workload, scale, seed) and renders
 * the stats document through the same renderDecomposeStatsJson()
 * the tool uses, so served responses byte-match fresh
 * `membw_decompose --stats-json` output under `--stable-json`.
 */

#ifndef MEMBW_SERVE_DECOMPOSE_SERVICE_HH
#define MEMBW_SERVE_DECOMPOSE_SERVICE_HH

#include <cstdint>
#include <functional>
#include <string>

#include "cpu/experiment.hh"
#include "workloads/workload.hh"

namespace membw {

/** Machine-parameter overrides (the tool's --mshrs/--window/... ). */
struct DecomposeOverrides
{
    int mshrs = -1, window = -1, width = -1;
    int l1l2 = -1, membus = -1;
    bool noPrefetch = false;
    std::string dram; ///< "", fpm, edo, sdram, rdram
};

/** Apply @p ov to @p cfg; fatal() on an unknown --dram kind. */
void applyDecomposeOverrides(ExperimentConfig &cfg,
                             const DecomposeOverrides &ov);

/** Everything that identifies a decompose computation. */
struct DecomposeRequest
{
    std::string workload;
    char letter = 'F';
    bool spec95 = false;
    double scale = 0.5;
    std::uint64_t seed = 42;
    DecomposeOverrides overrides;
    bool stableJson = false;
    std::uint64_t watchdogCycles = 1'000'000;
};

/** The machine for @p req with overrides applied. */
ExperimentConfig decomposeConfig(const DecomposeRequest &req);

/** The instruction stream for @p req — the expensive memoizable
 * artifact (workload, scale, seed determine it completely). */
InstrStream buildDecomposeStream(const std::string &workload,
                                 double scale, std::uint64_t seed);

/** Canonical identity string for the result cache (see
 * sweepRequestKey). */
std::string decomposeRequestKey(const DecomposeRequest &req);

/**
 * Run the three phases serially with a fresh per-phase watchdog and
 * assemble the decomposition.  @p progress, when set, is installed
 * as the core progress hook (poll cadence 65536 micro-ops); throwing
 * from it aborts the in-flight phase.
 */
DecompositionResult
executeDecompose(const DecomposeRequest &req, const InstrStream &stream,
                 const std::function<void(std::size_t done,
                                          std::size_t total)> &progress =
                     {});

/**
 * The stats-JSON document for a completed decomposition —
 * byte-for-byte what membw_decompose --stats-json writes for the
 * same request (single-experiment clean-completion path).
 */
std::string renderDecomposeStatsJson(const DecomposeRequest &req,
                                     std::size_t streamRefs,
                                     const DecompositionResult &r,
                                     double wallSeconds);

} // namespace membw

#endif // MEMBW_SERVE_DECOMPOSE_SERVICE_HH
