/**
 * @file
 * Admission control + request coalescing for the daemon.
 *
 * Compute requests flow through a single dispatcher thread: a
 * bounded FIFO queue provides backpressure (a full queue yields an
 * immediate `busy` response instead of unbounded latency), and
 * identical in-flight requests — same canonical-key digest — are
 * coalesced onto one execution, so N concurrent clients asking for
 * the same fig4 cell trigger one simulation and N copies of its
 * bytes.
 *
 * Serial execution is a correctness choice, not a simplification:
 * each sweep already fans across the shared ThreadPool internally
 * (parallelSweep submits drain-tasks and wait()s), so the pool must
 * be otherwise idle per sweep — the dispatcher is what serializes
 * sweeps onto it.
 *
 * Shutdown contract: drainAndStop() stops admitting, finishes every
 * already-admitted job, and joins the dispatcher — so SIGTERM drains
 * in-flight requests and every waiting client still receives its
 * response before the daemon exits.
 */

#ifndef MEMBW_SERVE_BROKER_HH
#define MEMBW_SERVE_BROKER_HH

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_map>

namespace membw {

class RequestBroker
{
  public:
    /** @p queueCapacity bounds jobs admitted but not yet started;
     * joiners of an in-flight job never count against it. */
    explicit RequestBroker(std::size_t queueCapacity);
    ~RequestBroker();

    struct Submission
    {
        bool busy = false;        ///< rejected by admission control
        std::size_t queued = 0;   ///< queue depth at rejection
        bool coalesced = false;   ///< joined an in-flight execution
        std::shared_ptr<struct BrokerJob> job; ///< null when busy
    };

    /**
     * Admit (or coalesce) a job.  @p compute runs exactly once on
     * the dispatcher thread per admitted digest; call wait() on the
     * returned job for the result.  After drainAndStop() every
     * submission is rejected busy.
     */
    Submission submit(std::uint64_t digest,
                      std::function<std::string()> compute);

    /** Block until @p job completes and return its result. */
    static const std::string &wait(const std::shared_ptr<BrokerJob> &j);

    /** Stop admitting, run every admitted job to completion, join
     * the dispatcher.  Idempotent. */
    void drainAndStop();

    /** Hook fired on the dispatcher thread as the Nth job (1-based)
     * begins executing — the daemon's deterministic --sigterm-after
     * trigger. */
    void onJobStart(std::function<void(std::uint64_t nth)> hook);

    std::uint64_t executed() const;
    std::uint64_t coalesced() const;
    std::uint64_t busyRejected() const;
    std::size_t queueDepth() const;

  private:
    void dispatchLoop();

    const std::size_t capacity_;
    mutable std::mutex mutex_;
    std::condition_variable cv_;
    std::deque<std::shared_ptr<BrokerJob>> queue_;
    /** Digest → in-flight (queued or executing) job. */
    std::unordered_map<std::uint64_t, std::shared_ptr<BrokerJob>>
        inflight_;
    std::function<void(std::uint64_t)> onJobStart_;
    bool stopping_ = false;
    std::uint64_t executed_ = 0;
    std::uint64_t coalesced_ = 0;
    std::uint64_t busyRejected_ = 0;
    std::thread dispatcher_;
};

} // namespace membw

#endif // MEMBW_SERVE_BROKER_HH
