#include "serve/result_cache.hh"

#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "resilience/fault_injection.hh"
#include "resilience/guarded_io.hh"

namespace membw {

namespace {

/** Spill-file format tag.  Bump when the response document format
 * changes incompatibly: a reload only trusts files whose header
 * matches this tag byte-for-byte, so stale spill files from an older
 * build in a reused --spill-dir are ignored, not served. */
constexpr const char *spillMagic = "membw-spill-v1 ";

/** Best-effort slurp; empty optional when absent or unreadable. */
std::optional<std::string>
readFileIfExists(const std::string &path)
{
    std::FILE *f = std::fopen(path.c_str(), "rb");
    if (!f)
        return std::nullopt;
    std::string out;
    char buf[1 << 16];
    std::size_t n;
    while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0)
        out.append(buf, n);
    const bool bad = std::ferror(f);
    std::fclose(f);
    if (bad)
        return std::nullopt;
    return out;
}

/** Serialise a spill file: `membw-spill-v1 <keylen>\n<key><body>`. */
std::string
encodeSpill(std::string_view key, std::string_view body)
{
    std::string out = spillMagic;
    out += std::to_string(key.size());
    out += '\n';
    out += key;
    out += body;
    return out;
}

/** Extract the body from a spill file iff the header tag and embedded
 * request key both match; nullopt for stale formats or collisions. */
std::optional<std::string>
decodeSpill(const std::string &raw, std::string_view key)
{
    const std::size_t magicLen = std::strlen(spillMagic);
    if (raw.compare(0, magicLen, spillMagic) != 0)
        return std::nullopt;
    const std::size_t nl = raw.find('\n', magicLen);
    if (nl == std::string::npos)
        return std::nullopt;
    char *end = nullptr;
    const std::string lenStr = raw.substr(magicLen, nl - magicLen);
    const unsigned long long keyLen =
        std::strtoull(lenStr.c_str(), &end, 10);
    if (!end || *end != '\0' || lenStr.empty())
        return std::nullopt;
    const std::size_t keyBegin = nl + 1;
    if (keyBegin + keyLen > raw.size())
        return std::nullopt;
    if (std::string_view(raw).substr(keyBegin, keyLen) != key)
        return std::nullopt;
    return raw.substr(keyBegin + keyLen);
}

} // namespace

ResultCache::ResultCache(std::size_t maxBytes, std::string spillDir)
    : maxBytes_(maxBytes), spillDir_(std::move(spillDir))
{
}

std::string
ResultCache::spillPath(std::uint64_t digest) const
{
    char name[32];
    std::snprintf(name, sizeof(name), "%016llx.json",
                  static_cast<unsigned long long>(digest));
    return spillDir_ + "/" + name;
}

std::optional<CachedResult>
ResultCache::get(std::uint64_t digest, std::string_view key,
                 bool recordMiss)
{
    std::lock_guard<std::mutex> lock(mutex_);
    if (auto it = entries_.find(digest);
        it != entries_.end() && it->second.key == key) {
        ++hits_;
        lru_.splice(lru_.end(), lru_, it->second.lru);
        return it->second.result;
    }
    if (!spillDir_.empty()) {
        if (auto raw = readFileIfExists(spillPath(digest))) {
            if (auto body = decodeSpill(*raw, key)) {
                // Spilled results are always clean (exit 0) by
                // construction; promote back into memory.
                ++hits_;
                ++spillHits_;
                CachedResult r{std::move(*body), 0};
                putLocked(digest, key, r);
                return r;
            }
        }
    }
    if (recordMiss)
        ++misses_;
    return std::nullopt;
}

void
ResultCache::put(std::uint64_t digest, std::string_view key,
                 const CachedResult &result)
{
    std::lock_guard<std::mutex> lock(mutex_);
    putLocked(digest, key, result);
}

void
ResultCache::putLocked(std::uint64_t digest, std::string_view key,
                       const CachedResult &result)
{
    if (entries_.count(digest))
        return;
    // Degrade-don't-crash insertion: an injected allocation fault (or
    // an oversized body) means this response just is not memoized.
    if (MEMBW_FAULT_POINT("alloc"))
        return;
    if (result.body.size() > maxBytes_)
        return;
    while (bytes_ + result.body.size() > maxBytes_ && !lru_.empty())
        evictOne();
    Entry e;
    e.key = std::string(key);
    e.result = result;
    e.lru = lru_.insert(lru_.end(), digest);
    bytes_ += result.body.size();
    entries_.emplace(digest, std::move(e));
}

void
ResultCache::evictOne()
{
    const std::uint64_t victim = lru_.front();
    lru_.pop_front();
    auto it = entries_.find(victim);
    if (!spillDir_.empty() && it->second.result.exitCode == 0) {
        // Spill through the guarded writer: on failure (disk full,
        // injected io-write fault) the entry is simply dropped — a
        // later repeat recomputes, which is degradation, not damage.
        auto written = GuardedFile::writeAtomic(
            spillPath(victim),
            encodeSpill(it->second.key, it->second.result.body));
        if (written.ok())
            ++spills_;
    }
    bytes_ -= it->second.result.body.size();
    entries_.erase(it);
    ++evictions_;
}

std::uint64_t
ResultCache::hits() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return hits_;
}

std::uint64_t
ResultCache::misses() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return misses_;
}

std::uint64_t
ResultCache::evictions() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return evictions_;
}

std::uint64_t
ResultCache::spills() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return spills_;
}

std::uint64_t
ResultCache::spillHits() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return spillHits_;
}

std::uint64_t
ResultCache::bytesResident() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return bytes_;
}

std::size_t
ResultCache::entries() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return entries_.size();
}

} // namespace membw
