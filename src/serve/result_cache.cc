#include "serve/result_cache.hh"

#include <cstdio>

#include "resilience/fault_injection.hh"
#include "resilience/guarded_io.hh"

namespace membw {

namespace {

/** Best-effort slurp; empty optional when absent or unreadable. */
std::optional<std::string>
readFileIfExists(const std::string &path)
{
    std::FILE *f = std::fopen(path.c_str(), "rb");
    if (!f)
        return std::nullopt;
    std::string out;
    char buf[1 << 16];
    std::size_t n;
    while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0)
        out.append(buf, n);
    const bool bad = std::ferror(f);
    std::fclose(f);
    if (bad)
        return std::nullopt;
    return out;
}

} // namespace

ResultCache::ResultCache(std::size_t maxBytes, std::string spillDir)
    : maxBytes_(maxBytes), spillDir_(std::move(spillDir))
{
}

std::string
ResultCache::spillPath(std::uint64_t digest) const
{
    char name[32];
    std::snprintf(name, sizeof(name), "%016llx.json",
                  static_cast<unsigned long long>(digest));
    return spillDir_ + "/" + name;
}

std::optional<CachedResult>
ResultCache::get(std::uint64_t digest, bool recordMiss)
{
    std::lock_guard<std::mutex> lock(mutex_);
    if (auto it = entries_.find(digest); it != entries_.end()) {
        ++hits_;
        lru_.splice(lru_.end(), lru_, it->second.lru);
        return it->second.result;
    }
    if (!spillDir_.empty()) {
        if (auto body = readFileIfExists(spillPath(digest))) {
            // Spilled results are always clean (exit 0) by
            // construction; promote back into memory.
            ++hits_;
            ++spillHits_;
            CachedResult r{std::move(*body), 0};
            putLocked(digest, r);
            return r;
        }
    }
    if (recordMiss)
        ++misses_;
    return std::nullopt;
}

void
ResultCache::put(std::uint64_t digest, const CachedResult &result)
{
    std::lock_guard<std::mutex> lock(mutex_);
    putLocked(digest, result);
}

void
ResultCache::putLocked(std::uint64_t digest, const CachedResult &result)
{
    if (entries_.count(digest))
        return;
    // Degrade-don't-crash insertion: an injected allocation fault (or
    // an oversized body) means this response just is not memoized.
    if (MEMBW_FAULT_POINT("alloc"))
        return;
    if (result.body.size() > maxBytes_)
        return;
    while (bytes_ + result.body.size() > maxBytes_ && !lru_.empty())
        evictOne();
    Entry e;
    e.result = result;
    e.lru = lru_.insert(lru_.end(), digest);
    bytes_ += result.body.size();
    entries_.emplace(digest, std::move(e));
}

void
ResultCache::evictOne()
{
    const std::uint64_t victim = lru_.front();
    lru_.pop_front();
    auto it = entries_.find(victim);
    if (!spillDir_.empty() && it->second.result.exitCode == 0) {
        // Spill through the guarded writer: on failure (disk full,
        // injected io-write fault) the entry is simply dropped — a
        // later repeat recomputes, which is degradation, not damage.
        auto written = GuardedFile::writeAtomic(
            spillPath(victim), it->second.result.body);
        if (written.ok())
            ++spills_;
    }
    bytes_ -= it->second.result.body.size();
    entries_.erase(it);
    ++evictions_;
}

std::uint64_t
ResultCache::hits() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return hits_;
}

std::uint64_t
ResultCache::misses() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return misses_;
}

std::uint64_t
ResultCache::evictions() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return evictions_;
}

std::uint64_t
ResultCache::spills() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return spills_;
}

std::uint64_t
ResultCache::spillHits() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return spillHits_;
}

std::uint64_t
ResultCache::bytesResident() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return bytes_;
}

std::size_t
ResultCache::entries() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return entries_.size();
}

} // namespace membw
