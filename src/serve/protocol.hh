/**
 * @file
 * membw_served wire protocol: newline-delimited JSON over a Unix
 * domain socket.
 *
 * Requests are single-line JSON objects with an "op" field:
 *
 *   {"op":"ping"}
 *   {"op":"stats"}
 *   {"op":"shutdown"}
 *   {"op":"sweep","workload":"Compress","scale":0.05,"seed":42,
 *    "sizes":"1K,4K,64K","blocks":"32","mtc":true,"stable":true}
 *   {"op":"decompose","workload":"Swm","experiment":"F",
 *    "scale":0.1,"stable":true}
 *
 * Responses are single-line JSON envelopes:
 *
 *   {"status":"ok","op":"sweep","cached":true,"exit":0,
 *    "body":"<full stats-JSON document, escaped>"}
 *   {"status":"busy","op":"sweep","queued":8,"capacity":8}
 *   {"status":"error","op":"sweep","error":"<message>"}
 *
 * The body string is the byte-exact document the equivalent CLI run
 * writes with --stats-json; jsonEscape()/parseJson round-trip it
 * losslessly, so `membw_client --out` + `cmp` is the end-to-end
 * equality test.  "exit" carries the exit-code-contract value the
 * CLI run would have returned (0 ok, 5 degraded).
 *
 * Full sweep-request schema (defaults match the membw_sim flags):
 *   workload (required), scale, seed, sizes (required, "1K,64K"),
 *   blocks ("32,64"), mtc, stable, no_collapse, no_partition,
 *   watchdog, size, assoc, block, sector, repl ("lru|fifo|random"),
 *   write ("wb|wt"), alloc ("wa|wna|wv"), prefetch, stream_buffers,
 *   stream_depth.
 * Full decompose-request schema:
 *   workload (required), experiment ("A".."F"), spec95, scale, seed,
 *   stable, watchdog, mshrs, window, issue_width, no_prefetch,
 *   l1l2_bus, mem_bus, dram.
 */

#ifndef MEMBW_SERVE_PROTOCOL_HH
#define MEMBW_SERVE_PROTOCOL_HH

#include <string>
#include <string_view>

#include "serve/decompose_service.hh"
#include "serve/sweep_service.hh"

namespace membw {

enum class ServeOp
{
    Ping,
    Stats,
    Shutdown,
    Sweep,
    Decompose,
};

/** Stable lowercase op name for envelopes and logs. */
const char *serveOpName(ServeOp op);

/** A parsed request (the member matching op is meaningful). */
struct ServeRequest
{
    ServeOp op = ServeOp::Ping;
    SweepRequest sweep;
    DecomposeRequest decompose;
};

/** Parse one request line; throws FatalError (with a client-worthy
 * message) on malformed JSON, unknown ops, or bad field values. */
ServeRequest parseServeRequest(std::string_view line);

/** Canonical cache key for a compute request (sweep/decompose). */
std::string serveRequestKey(const ServeRequest &req);

// --- single-line response envelopes ---------------------------------

std::string okEnvelope(ServeOp op, bool cached, int exitCode,
                       std::string_view body);
std::string busyEnvelope(ServeOp op, std::size_t queued,
                         std::size_t capacity);
std::string errorEnvelope(ServeOp op, std::string_view message);
/** For failures before an op is known (parse errors). */
std::string errorEnvelope(std::string_view opName,
                          std::string_view message);

} // namespace membw

#endif // MEMBW_SERVE_PROTOCOL_HH
