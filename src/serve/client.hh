/**
 * @file
 * Minimal Unix-domain-socket client for the membw_served wire
 * protocol, shared by membw_client, bench/served_qps, and the
 * torture harness.
 *
 * The transport is deliberately dumb: one connection, newline-framed
 * request/response lines, blocking I/O.  Responses can be large (a
 * full stats-JSON document escaped into one line), so recvLine()
 * buffers across reads.
 */

#ifndef MEMBW_SERVE_CLIENT_HH
#define MEMBW_SERVE_CLIENT_HH

#include <optional>
#include <string>
#include <string_view>

namespace membw {

class ServeClient
{
  public:
    ServeClient() = default;
    ~ServeClient();

    ServeClient(const ServeClient &) = delete;
    ServeClient &operator=(const ServeClient &) = delete;

    /** Connect to @p socketPath; false (with errno intact) on
     * failure. */
    bool connect(const std::string &socketPath);

    bool connected() const { return fd_ >= 0; }
    void close();

    /** Send @p line (newline appended); false on a write error. */
    bool sendLine(std::string_view line);

    /** Read one newline-terminated line (newline stripped); empty
     * optional on EOF or error. */
    std::optional<std::string> recvLine();

  private:
    int fd_ = -1;
    std::string buffer_; ///< bytes past the last returned line
};

/**
 * One-shot request helper: connect, send @p requestLine, read the
 * response line.  Empty optional when the daemon is unreachable or
 * hangs up early.
 */
std::optional<std::string> serveRequestOnce(
    const std::string &socketPath, std::string_view requestLine);

/**
 * Poll @p socketPath with ping requests until the daemon answers ok
 * or @p timeoutMs elapses.  Returns true once live.
 */
bool waitForServer(const std::string &socketPath, int timeoutMs);

} // namespace membw

#endif // MEMBW_SERVE_CLIENT_HH
