#include "serve/broker.hh"

namespace membw {

/** One admitted computation; waiters block on done. */
struct BrokerJob
{
    std::uint64_t digest = 0;
    std::function<std::string()> compute;
    std::mutex mutex;
    std::condition_variable cv;
    bool done = false;
    std::string result;
};

RequestBroker::RequestBroker(std::size_t queueCapacity)
    : capacity_(queueCapacity ? queueCapacity : 1),
      dispatcher_([this] { dispatchLoop(); })
{
}

RequestBroker::~RequestBroker()
{
    drainAndStop();
}

RequestBroker::Submission
RequestBroker::submit(std::uint64_t digest,
                      std::function<std::string()> compute)
{
    Submission s;
    std::lock_guard<std::mutex> lock(mutex_);
    if (auto it = inflight_.find(digest); it != inflight_.end()) {
        // Same request already admitted: ride its execution.
        ++coalesced_;
        s.coalesced = true;
        s.job = it->second;
        return s;
    }
    if (stopping_ || queue_.size() >= capacity_) {
        ++busyRejected_;
        s.busy = true;
        s.queued = queue_.size();
        return s;
    }
    auto job = std::make_shared<BrokerJob>();
    job->digest = digest;
    job->compute = std::move(compute);
    inflight_.emplace(digest, job);
    queue_.push_back(job);
    s.job = std::move(job);
    cv_.notify_all();
    return s;
}

const std::string &
RequestBroker::wait(const std::shared_ptr<BrokerJob> &j)
{
    std::unique_lock<std::mutex> lock(j->mutex);
    j->cv.wait(lock, [&] { return j->done; });
    return j->result;
}

void
RequestBroker::dispatchLoop()
{
    for (;;) {
        std::shared_ptr<BrokerJob> job;
        std::function<void(std::uint64_t)> startHook;
        std::uint64_t nth = 0;
        {
            std::unique_lock<std::mutex> lock(mutex_);
            cv_.wait(lock,
                     [&] { return stopping_ || !queue_.empty(); });
            if (queue_.empty() && stopping_)
                return;
            job = queue_.front();
            queue_.pop_front();
            nth = ++executed_;
            startHook = onJobStart_;
        }
        if (startHook)
            startHook(nth);
        // Compute outside every lock: the job can take seconds, and
        // coalescing joiners must be able to attach meanwhile.
        std::string result = job->compute();
        {
            std::lock_guard<std::mutex> lock(mutex_);
            inflight_.erase(job->digest);
        }
        {
            std::lock_guard<std::mutex> lock(job->mutex);
            job->result = std::move(result);
            job->done = true;
        }
        job->cv.notify_all();
    }
}

void
RequestBroker::drainAndStop()
{
    {
        std::lock_guard<std::mutex> lock(mutex_);
        if (stopping_ && !dispatcher_.joinable())
            return;
        stopping_ = true;
    }
    cv_.notify_all();
    if (dispatcher_.joinable())
        dispatcher_.join();
}

void
RequestBroker::onJobStart(std::function<void(std::uint64_t)> hook)
{
    std::lock_guard<std::mutex> lock(mutex_);
    onJobStart_ = std::move(hook);
}

std::uint64_t
RequestBroker::executed() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return executed_;
}

std::uint64_t
RequestBroker::coalesced() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return coalesced_;
}

std::uint64_t
RequestBroker::busyRejected() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return busyRejected_;
}

std::size_t
RequestBroker::queueDepth() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return queue_.size();
}

} // namespace membw
