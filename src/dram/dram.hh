/**
 * @file
 * Main-memory DRAM interface models.
 *
 * Section 2.3 observes that "high-bandwidth DRAM chips have already
 * appeared on the market (extended data-out, enhanced, synchronous,
 * and Rambus DRAMs)" and concludes DRAM banks are "unlikely to become
 * a long-term performance bottleneck" — the pins are.  This module
 * implements the four interface generations as row-buffer bank
 * models so that claim can be measured (ablation_dram_interface)
 * instead of assumed.
 *
 * The default membw timing model keeps the paper's flat 90ns /
 * infinite-bank memory; a DramModel can be plugged into the
 * MemorySystem to replace it.
 */

#ifndef MEMBW_DRAM_DRAM_HH
#define MEMBW_DRAM_DRAM_HH

#include <cstdint>
#include <string>
#include <vector>

#include "common/types.hh"
#include "obs/mem_probe.hh"

namespace membw {

class StatsGroup;

/** Mid-1990s DRAM interface generations (Prince [34]). */
enum class DramKind : std::uint8_t
{
    FastPageMode, ///< classic FPM: page hits via CAS-only cycles
    EDO,          ///< extended data-out: shorter page-hit cycles
    Synchronous,  ///< SDRAM: clocked bursts from an open row
    Rambus,       ///< RDRAM: narrow, very fast packet channel
};

/** Timing/geometry bundle for one DRAM subsystem. */
struct DramConfig
{
    DramKind kind = DramKind::FastPageMode;
    unsigned banks = 4;        ///< independent banks (row buffers)
    Bytes rowBytes = 2_KiB;    ///< row-buffer (page) size
    double cpuMHz = 300.0;     ///< for ns -> CPU-cycle conversion

    /** Preset timing numbers for @p kind at @p cpuMHz. */
    static DramConfig preset(DramKind kind, double cpuMHz);

    // Derived timing (filled by preset(); all in nanoseconds).
    double rowAccessNs = 60.0;  ///< row activate + first column
    double pageHitNs = 35.0;    ///< subsequent column in open row
    double prechargeNs = 35.0;  ///< close row before a new activate
    double beatNs = 35.0;       ///< per-transfer-beat time
    Bytes beatBytes = 8;        ///< interface width per beat

    std::string describe() const;
};

/** Per-run counters. */
struct DramStats
{
    std::uint64_t accesses = 0;
    std::uint64_t rowHits = 0;
    std::uint64_t rowMisses = 0;
    Cycle busyCycles = 0;

    double
    rowHitRate() const
    {
        return accesses ? static_cast<double>(rowHits) / accesses
                        : 0.0;
    }
};

/** Completion report for one DRAM access. */
struct DramAccess
{
    Cycle firstBeat = 0; ///< critical word available
    Cycle done = 0;      ///< full transfer complete
};

/**
 * Row-buffer bank model.  Each bank keeps its open row and a
 * busy-until time; accesses to an open row pay the page-hit latency,
 * others precharge + activate.  Transfers stream at beatNs per
 * beatBytes.
 */
class DramModel
{
  public:
    explicit DramModel(const DramConfig &config);

    /** Service a @p bytes transfer at @p addr, not before @p when. */
    DramAccess access(Addr addr, Bytes bytes, Cycle when);

    const DramStats &stats() const { return stats_; }
    const DramConfig &config() const { return config_; }

    /** Attach @p probe (null to detach) reporting row outcomes. */
    void setProbe(MemProbe *probe) { probe_ = probe; }

  private:
    struct Bank
    {
        Addr openRow = addrInvalid;
        Cycle busyUntil = 0;
    };

    Cycle ns(double v) const;

    DramConfig config_;
    std::vector<Bank> banks_;
    DramStats stats_;
    MemProbe *probe_ = nullptr;
};

/** Publish @p stats under @p group (typically "dram"). */
void publishDramStats(StatsGroup &group, const DramStats &stats);

} // namespace membw

#endif // MEMBW_DRAM_DRAM_HH
