#include "dram/dram.hh"

#include "obs/registry.hh"

#include <algorithm>
#include <cmath>

#include "common/bitops.hh"
#include "common/log.hh"

namespace membw {

DramConfig
DramConfig::preset(DramKind kind, double cpuMHz)
{
    DramConfig c;
    c.kind = kind;
    c.cpuMHz = cpuMHz;
    switch (kind) {
      case DramKind::FastPageMode:
        // ~60ns RAC parts: 35ns page-mode column cycles, 8B module.
        c.rowAccessNs = 60.0;
        c.pageHitNs = 35.0;
        c.prechargeNs = 35.0;
        c.beatNs = 35.0;
        c.beatBytes = 8;
        c.banks = 2;
        break;
      case DramKind::EDO:
        // EDO overlaps column address with data-out: ~25ns cycles.
        c.rowAccessNs = 60.0;
        c.pageHitNs = 25.0;
        c.prechargeNs = 35.0;
        c.beatNs = 25.0;
        c.beatBytes = 8;
        c.banks = 2;
        break;
      case DramKind::Synchronous:
        // 100MHz SDRAM: CAS-3 (~30ns), 10ns burst beats, 4 banks.
        c.rowAccessNs = 50.0;
        c.pageHitNs = 30.0;
        c.prechargeNs = 30.0;
        c.beatNs = 10.0;
        c.beatBytes = 8;
        c.banks = 4;
        break;
      case DramKind::Rambus:
        // 500MB/s byte-wide channel: 2ns/byte packets, more banks.
        c.rowAccessNs = 50.0;
        c.pageHitNs = 26.0;
        c.prechargeNs = 30.0;
        c.beatNs = 2.0;
        c.beatBytes = 1;
        c.banks = 8;
        break;
    }
    return c;
}

std::string
DramConfig::describe() const
{
    const char *names[] = {"FPM", "EDO", "SDRAM", "RDRAM"};
    return std::string(names[static_cast<int>(kind)]) + "/" +
           std::to_string(banks) + "banks/" +
           std::to_string(rowBytes >> 10) + "KBrows";
}

DramModel::DramModel(const DramConfig &config) : config_(config)
{
    if (config_.banks == 0 || !isPowerOfTwo(config_.banks))
        fatal("DRAM banks must be a non-zero power of two");
    if (!isPowerOfTwo(config_.rowBytes))
        fatal("DRAM row size must be a power of two");
    banks_.resize(config_.banks);
}

Cycle
DramModel::ns(double v) const
{
    return static_cast<Cycle>(
        std::ceil(v * config_.cpuMHz / 1000.0));
}

DramAccess
DramModel::access(Addr addr, Bytes bytes, Cycle when)
{
    stats_.accesses++;

    const Addr row = addr / config_.rowBytes;
    // Rows interleave across banks so streams hit all banks.
    const std::size_t bank_idx =
        static_cast<std::size_t>(row & (config_.banks - 1));
    Bank &bank = banks_[bank_idx];

    Cycle start = std::max(when, bank.busyUntil);
    Cycle first_latency;
    if (bank.openRow == row) {
        stats_.rowHits++;
        MEMBW_PROBE(probe_, onDramAccess(true));
        first_latency = ns(config_.pageHitNs);
    } else {
        stats_.rowMisses++;
        MEMBW_PROBE(probe_, onDramAccess(false));
        first_latency =
            ns(bank.openRow == addrInvalid ? config_.rowAccessNs
                                           : config_.prechargeNs +
                                                 config_.rowAccessNs);
        bank.openRow = row;
    }

    const Cycle beats = divCeil(bytes, config_.beatBytes);
    DramAccess result;
    result.firstBeat = start + first_latency + ns(config_.beatNs);
    result.done =
        start + first_latency + beats * ns(config_.beatNs);
    bank.busyUntil = result.done;
    stats_.busyCycles += result.done - start;
    return result;
}

void
publishDramStats(StatsGroup &group, const DramStats &stats)
{
    auto &accesses =
        group.addCounter("accesses", "DRAM accesses", "events");
    accesses.set(stats.accesses);
    auto &rowHits = group.addCounter(
        "row_hits", "accesses hitting an open row", "events");
    rowHits.set(stats.rowHits);
    group.addCounter("row_misses",
                     "accesses needing precharge+activate", "events")
        .set(stats.rowMisses);
    group.addRatio("row_hit_rate", "row_hits / accesses", rowHits,
                   accesses);
    group.addCounter("busy_cycles", "bank busy time", "cycles")
        .set(stats.busyCycles);
}

} // namespace membw
