#include "cache/stack_distance.hh"

#include <unordered_map>

#include "common/bitops.hh"
#include "common/log.hh"

namespace membw {

namespace {

/** Fenwick tree counting "active" last-access positions. */
class BitTree
{
  public:
    explicit BitTree(std::size_t n) : tree_(n + 1, 0) {}

    void
    add(std::size_t i, int delta)
    {
        for (++i; i < tree_.size(); i += i & (0 - i))
            tree_[i] += delta;
    }

    /** Sum of entries in [0, i]. */
    std::int64_t
    prefix(std::size_t i) const
    {
        std::int64_t s = 0;
        for (++i; i > 0; i -= i & (0 - i))
            s += tree_[i];
        return s;
    }

  private:
    std::vector<std::int64_t> tree_;
};

} // namespace

StackDistanceProfile::StackDistanceProfile(const Trace &trace,
                                           Bytes blockBytes)
    : blockBytes_(blockBytes)
{
    if (!isPowerOfTwo(blockBytes))
        fatal("stack-distance granularity must be a power of two");

    const std::size_t n = trace.size();
    BitTree active(n);
    std::unordered_map<Addr, std::size_t> last;
    last.reserve(n / 8 + 16);
    std::int64_t active_count = 0;

    for (std::size_t i = 0; i < n; ++i) {
        const Addr block = alignDown(trace[i].addr, blockBytes);
        ++refs_;

        auto it = last.find(block);
        if (it == last.end()) {
            ++cold_;
        } else {
            const std::size_t t0 = it->second;
            // Distinct blocks touched strictly after t0 = active
            // marks in (t0, i).
            const std::int64_t after =
                active_count - active.prefix(t0);
            const auto dist = static_cast<std::size_t>(after);
            if (hist_.size() <= dist)
                hist_.resize(dist + 1, 0);
            ++hist_[dist];
            active.add(t0, -1);
            --active_count;
        }
        active.add(i, +1);
        ++active_count;
        last[block] = i;
    }

    // Cumulative hit counts: hits with stack distance <= d.
    cumulative_.resize(hist_.size());
    std::uint64_t acc = 0;
    for (std::size_t d = 0; d < hist_.size(); ++d) {
        acc += hist_[d];
        cumulative_[d] = acc;
    }
}

std::uint64_t
StackDistanceProfile::missesAtCapacity(std::uint64_t blocks) const
{
    if (blocks == 0)
        return refs_;
    // A capacity-C LRU cache hits every reference with stack
    // distance < C.
    std::uint64_t hits = 0;
    if (!cumulative_.empty()) {
        const std::uint64_t d = blocks - 1;
        hits = d < cumulative_.size() ? cumulative_[d]
                                      : cumulative_.back();
    }
    return refs_ - hits;
}

} // namespace membw
