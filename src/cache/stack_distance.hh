/**
 * @file
 * One-pass LRU stack-distance (reuse-distance) profiling.
 *
 * Mattson's stack algorithm: because fully-associative LRU caches
 * have the inclusion property, a single pass over a trace yields the
 * miss count of *every* cache size at once.  The library uses it to
 * draw miss-ratio-versus-size curves cheaply and to cross-check the
 * direct simulator (they must agree exactly for fully-associative
 * LRU geometries).
 */

#ifndef MEMBW_CACHE_STACK_DISTANCE_HH
#define MEMBW_CACHE_STACK_DISTANCE_HH

#include <cstdint>
#include <vector>

#include "common/types.hh"
#include "trace/trace.hh"

namespace membw {

/** Result of a stack-distance profile at one block granularity. */
class StackDistanceProfile
{
  public:
    /**
     * Profile @p trace at @p blockBytes granularity.
     * Runs in O(n log n) via an order-statistic structure.
     */
    StackDistanceProfile(const Trace &trace, Bytes blockBytes);

    /** Total references profiled. */
    std::uint64_t references() const { return refs_; }

    /** Cold (first-touch) misses — infinite stack distance. */
    std::uint64_t coldMisses() const { return cold_; }

    /**
     * Misses of a fully-associative LRU cache holding @p blocks
     * blocks (capacity in blocks, not bytes).
     */
    std::uint64_t missesAtCapacity(std::uint64_t blocks) const;

    /** Convenience: misses for a cache of @p bytes capacity. */
    std::uint64_t
    missesAtSize(Bytes bytes) const
    {
        return missesAtCapacity(bytes / blockBytes_);
    }

    /** Miss ratio for a cache of @p bytes capacity. */
    double
    missRatioAtSize(Bytes bytes) const
    {
        return refs_ ? static_cast<double>(missesAtSize(bytes)) /
                           static_cast<double>(refs_)
                     : 0.0;
    }

    /**
     * The raw histogram: hist()[d] = number of references with stack
     * distance exactly d (0 = re-reference of the most recent
     * block).  Cold misses are not included.
     */
    const std::vector<std::uint64_t> &histogram() const
    {
        return hist_;
    }

  private:
    Bytes blockBytes_;
    std::uint64_t refs_ = 0;
    std::uint64_t cold_ = 0;
    std::vector<std::uint64_t> hist_;
    std::vector<std::uint64_t> cumulative_; ///< hits within dist <= d
};

} // namespace membw

#endif // MEMBW_CACHE_STACK_DISTANCE_HH
