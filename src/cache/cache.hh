/**
 * @file
 * Functional (timing-free) cache simulator with byte-exact traffic
 * accounting — the library's DineroIII equivalent (Section 4.1).
 *
 * Traffic convention (matches the paper):
 *  - traffic *above* the cache = sum of request sizes (loads+stores);
 *  - traffic *below* the cache = block fills + partial-word fills +
 *    write-backs + write-throughs + the end-of-run dirty flush;
 *  - request/address traffic is never counted.
 */

#ifndef MEMBW_CACHE_CACHE_HH
#define MEMBW_CACHE_CACHE_HH

#include <cstdint>
#include <functional>
#include <memory>
#include <unordered_map>
#include <vector>

#include "cache/config.hh"
#include "common/rng.hh"
#include "common/types.hh"
#include "obs/mem_probe.hh"
#include "trace/mem_ref.hh"

namespace membw {

class StatsGroup;
class ChkWriter;
class ChkReader;

/** Byte counters for one cache level. */
struct CacheStats
{
    std::uint64_t accesses = 0;
    std::uint64_t loads = 0;
    std::uint64_t stores = 0;
    std::uint64_t hits = 0;
    std::uint64_t misses = 0;
    std::uint64_t loadMisses = 0;
    std::uint64_t storeMisses = 0;
    std::uint64_t evictions = 0;      ///< valid lines displaced/flushed
    std::uint64_t writebacks = 0;     ///< evictions that moved data
    std::uint64_t partialFills = 0;   ///< word fills into WV lines
    std::uint64_t prefetches = 0;     ///< prefetch fills issued
    std::uint64_t streamHits = 0;     ///< misses served by a stream
    std::uint64_t streamAllocs = 0;   ///< stream (re)allocations

    Bytes requestBytes = 0;           ///< traffic above (D_{i-1})
    Bytes demandFetchBytes = 0;       ///< full-block demand fills
    Bytes partialFillBytes = 0;       ///< word-granularity fills (WV)
    Bytes prefetchFetchBytes = 0;     ///< tagged-prefetch fills
    Bytes streamFetchBytes = 0;       ///< stream-buffer fills
    Bytes writebackBytes = 0;         ///< dirty evictions
    Bytes writeThroughBytes = 0;      ///< stores propagated (WT/WNA)
    Bytes flushWritebackBytes = 0;    ///< final dirty flush

    /** Total data traffic below this cache (D_i). */
    Bytes
    trafficBelow() const
    {
        return demandFetchBytes + partialFillBytes +
               prefetchFetchBytes + streamFetchBytes +
               writebackBytes + writeThroughBytes +
               flushWritebackBytes;
    }

    double
    missRate() const
    {
        return accesses ? static_cast<double>(misses) / accesses : 0.0;
    }

    /** R = D_i / D_{i-1} (Equation 4). */
    double
    trafficRatio() const
    {
        return requestBytes
                   ? static_cast<double>(trafficBelow()) / requestBytes
                   : 0.0;
    }
};

/** Outcome of one access, for callers that need per-access detail. */
struct AccessResult
{
    bool hit = false;
    Bytes fetchedBytes = 0;     ///< demand bytes pulled from below
    Bytes writebackBytes = 0;   ///< eviction bytes pushed below
    Bytes writeThroughBytes = 0;
};

/**
 * One level of cache.
 *
 * Supports every knob the paper turns: direct-mapped through fully
 * associative, 4B-256B blocks, write-back/write-through,
 * write-allocate/no-allocate/write-validate, LRU/FIFO/Random
 * replacement, and Gindele tagged sequential prefetch.  Per-word
 * valid/dirty masks implement write-validate exactly (Jouppi [25]).
 */
class Cache
{
  public:
    /**
     * Downstream hook: plain function pointer plus an opaque context,
     * so forwarding a fill or write-back to the next level costs one
     * indirect call — no std::function dispatch (and no possible
     * allocation) on the per-reference hot path.
     */
    using DownstreamFn = void (*)(void *ctx, Addr addr, Bytes bytes);

    /** Legacy std::function hooks (tests, ad-hoc recorders). */
    using FetchFn = std::function<void(Addr addr, Bytes bytes)>;
    using WritebackFn = std::function<void(Addr addr, Bytes bytes)>;

    explicit Cache(const CacheConfig &config);

    /**
     * Wire this cache above another level (or a memory recorder).
     * @p ctx is passed through to both callbacks verbatim; either
     * may be null to drop that event class.
     */
    void setBelow(DownstreamFn fetch, DownstreamFn writeback,
                  void *ctx);

    /**
     * Convenience overload for std::function callers.  Keeps the old
     * capture-anything API for tests and one-off recorders at the
     * cost of one std::function dispatch per downstream event; the
     * hierarchy and the timing memory system use the raw form above.
     */
    void setBelow(FetchFn fetch, WritebackFn writeback);

    /**
     * Simulate one reference.  @p ref must not span a block boundary
     * of this cache.
     */
    AccessResult access(const MemRef &ref);

    /**
     * Write back all dirty data and invalidate (program completion;
     * Section 4.1 includes these write-backs in traffic).
     * @return bytes written back.
     */
    Bytes flush();

    const CacheStats &stats() const { return stats_; }
    const CacheConfig &config() const { return config_; }

    /**
     * Attach @p probe (null to detach) reporting this cache's
     * evictions and below-traffic as hierarchy level @p level.  One
     * null check per miss-frequency event when unattached; stripped
     * entirely under -DMEMBW_PROFILING=OFF.
     */
    void
    setProbe(MemProbe *probe, unsigned level)
    {
        probe_ = probe;
        probeLevel_ = level;
    }

    /** Register this cache's counters under @p group (see docs/observability.md). */
    void publishStats(StatsGroup &group) const;

    /** True iff the block containing @p addr is resident. */
    bool contains(Addr addr) const;

    /**
     * Serialize tag array, dirty/valid masks, stream buffers, RNG,
     * and counters into one "CACH" checkpoint section.  Must not be
     * called mid-access.
     */
    void saveState(ChkWriter &w) const;

    /**
     * Restore state written by saveState() into a cache built from
     * the same config.  Geometry mismatches and malformed sections
     * latch a classified error on @p r instead of throwing.
     */
    void loadState(ChkReader &r);

  private:
    struct Line
    {
        Addr blockAddr = addrInvalid;
        std::uint64_t lastUse = 0;
        std::uint64_t insertSeq = 0;
        std::uint64_t validMask = 0;
        std::uint64_t dirtyMask = 0;
        bool valid = false;
        bool prefetchTag = false;
    };

    struct Set
    {
        std::vector<Line> ways;
        std::unordered_map<Addr, unsigned> index; ///< blockAddr -> way
    };

    Addr blockAddr(Addr addr) const { return addr & ~(blockBytes_ - 1); }

    /**
     * blockBytes is a power of two (validate() enforces it), so the
     * block number is a shift, not a 64-bit divide, and the set mask
     * folds the power-of-two set count.
     */
    unsigned
    setIndex(Addr block_addr) const
    {
        return static_cast<unsigned>((block_addr >> blockShift_) &
                                     setMask_);
    }
    std::uint64_t wordsMask(Addr addr, Bytes size) const;
    std::uint64_t fullMask() const;
    /** Words covered by the sectors containing @p words (or the
     * whole block when sectoring is off). */
    std::uint64_t sectorExpand(std::uint64_t words) const;

    Line *findLine(Addr block_addr);
    unsigned pickVictim(Set &set);
    /** Evict @p way of @p set; returns write-back bytes (counted). */
    Bytes evict(Set &set, unsigned way, bool to_flush);
    /** Insert @p block_addr; returns the line (victim evicted). */
    Line &insert(Addr block_addr);

    void maybePrefetch(Addr demand_block);
    Bytes writebackSize(const Line &line) const;

    /**
     * Consult the stream buffers for a demand-miss @p block.
     * @return true when the block was resident in a buffer head (its
     * fill traffic was already paid when the stream fetched it).
     */
    bool streamLookup(Addr block);

    void sendFetch(Addr addr, Bytes bytes);
    void sendWriteback(Addr addr, Bytes bytes);

    CacheConfig config_;
    Bytes blockBytes_;
    unsigned blockShift_;   ///< log2(blockBytes_)
    unsigned wordsPerBlock_;
    unsigned nsets_;
    Addr setMask_;          ///< nsets_ - 1
    /**
     * Lookup strategy: sets with few ways are probed by linear tag
     * scan (fits in a cache line, no hashing); wide/fully-associative
     * sets keep the blockAddr -> way hash index.
     */
    bool useIndex_;
    std::vector<Set> sets_;
    std::uint64_t seq_ = 0;
    Rng rng_;
    CacheStats stats_;
    DownstreamFn fetchBelow_ = nullptr;
    DownstreamFn writebackBelow_ = nullptr;
    void *belowCtx_ = nullptr;
    MemProbe *probe_ = nullptr;
    unsigned probeLevel_ = 0;
    /** Storage behind the std::function setBelow() overload. */
    struct FnShim
    {
        FetchFn fetch;
        WritebackFn writeback;
    };
    std::unique_ptr<FnShim> shim_;
    bool inPrefetch_ = false;

    /** One Jouppi stream buffer: FIFO of prefetched blocks. */
    struct Stream
    {
        std::vector<Addr> fifo; ///< front = index head_
        std::size_t head = 0;
        std::uint64_t lastUse = 0;
    };
    std::vector<Stream> streams_;
};

/**
 * Publish @p stats into @p group: event counters, per-class byte
 * counters under a "bytes" subtree, and derived miss_rate /
 * traffic_ratio ratios.
 */
void publishCacheStats(StatsGroup &group, const CacheStats &stats);

/** Append @p s's counters (fixed field order, no section framing). */
void saveCacheStats(ChkWriter &w, const CacheStats &s);

/** Read back what saveCacheStats() wrote. */
void loadCacheStats(ChkReader &r, CacheStats &s);

} // namespace membw

#endif // MEMBW_CACHE_CACHE_HH
