#include "cache/hierarchy.hh"

#include "common/log.hh"
#include "obs/registry.hh"

namespace membw {

namespace {

/** Hierarchy aggregates shared by the live and snapshot publishers. */
void
publishLevels(StatsRegistry &registry,
              const std::vector<const CacheStats *> &levels)
{
    for (std::size_t i = 0; i < levels.size(); ++i) {
        StatsGroup g =
            registry.group("l" + std::to_string(i + 1));
        publishCacheStats(g, *levels[i]);
    }

    StatsGroup hier = registry.group("hier");
    hier.addCounter("levels", "cache levels simulated")
        .set(levels.size());
    auto &request = hier.addCounter(
        "request_bytes", "processor-side request traffic (D_0)",
        "bytes");
    request.set(levels.front()->requestBytes);
    auto &pin = hier.addCounter(
        "pin_bytes", "traffic below the last level (D_k)", "bytes");
    pin.set(levels.back()->trafficBelow());
    hier.addRatio("traffic_ratio",
                  "total R = pin_bytes / request_bytes", pin,
                  request);
}

} // namespace

CacheHierarchy::CacheHierarchy(const std::vector<CacheConfig> &configs)
{
    if (configs.empty())
        fatal("hierarchy needs at least one level");

    for (std::size_t i = 0; i < configs.size(); ++i) {
        if (i > 0 && configs[i].blockBytes < configs[i - 1].blockBytes)
            fatal("lower-level block size must not shrink");
        caches_.push_back(std::make_unique<Cache>(configs[i]));
    }

    // Wire each level's fills and write-backs into the next level.
    for (std::size_t i = 0; i + 1 < caches_.size(); ++i) {
        Cache *below = caches_[i + 1].get();
        caches_[i]->setBelow(
            [below](Addr addr, Bytes bytes) {
                below->access(MemRef{addr, bytes, RefKind::Load});
            },
            [below](Addr addr, Bytes bytes) {
                below->access(MemRef{addr, bytes, RefKind::Store});
            });
    }
}

void
CacheHierarchy::access(const MemRef &ref)
{
    caches_[0]->access(ref);
}

void
CacheHierarchy::flush()
{
    for (auto &cache : caches_)
        cache->flush();
}

Bytes
CacheHierarchy::trafficBelow(std::size_t i) const
{
    return caches_[i]->stats().trafficBelow();
}

double
CacheHierarchy::trafficRatio(std::size_t i) const
{
    return caches_[i]->stats().trafficRatio();
}

double
CacheHierarchy::totalTrafficRatio() const
{
    const Bytes above = caches_[0]->stats().requestBytes;
    return above ? static_cast<double>(trafficBelow(levels() - 1)) /
                       static_cast<double>(above)
                 : 0.0;
}

void
CacheHierarchy::publishStats(StatsRegistry &registry) const
{
    std::vector<const CacheStats *> levels;
    for (const auto &cache : caches_)
        levels.push_back(&cache->stats());
    publishLevels(registry, levels);
}

TrafficResult
runTrace(const Trace &trace, const std::vector<CacheConfig> &configs)
{
    return runTrace(trace, configs, TraceProgressFn{});
}

TrafficResult
runTrace(const Trace &trace, const std::vector<CacheConfig> &configs,
         const TraceProgressFn &progress)
{
    CacheHierarchy hier(configs);
    if (progress) {
        const std::size_t total = trace.size();
        for (std::size_t i = 0; i < total; ++i) {
            hier.access(trace[i]);
            progress(i + 1, total);
        }
    } else {
        for (const MemRef &ref : trace)
            hier.access(ref);
    }
    hier.flush();

    TrafficResult result;
    result.requestBytes = hier.level(0).stats().requestBytes;
    result.pinBytes = hier.trafficBelow(hier.levels() - 1);
    result.trafficRatio = hier.totalTrafficRatio();
    for (std::size_t i = 0; i < hier.levels(); ++i) {
        result.levelRatios.push_back(hier.trafficRatio(i));
        result.levelTraffic.push_back(hier.trafficBelow(i));
        result.levels.push_back(hier.level(i).stats());
    }
    result.l1 = hier.level(0).stats();
    return result;
}

TrafficResult
runTrace(const Trace &trace, const CacheConfig &config)
{
    return runTrace(trace, std::vector<CacheConfig>{config});
}

void
publishStats(StatsRegistry &registry, const TrafficResult &result)
{
    std::vector<const CacheStats *> levels;
    for (const CacheStats &s : result.levels)
        levels.push_back(&s);
    publishLevels(registry, levels);
}

} // namespace membw
