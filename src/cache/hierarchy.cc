#include "cache/hierarchy.hh"

#include "common/log.hh"
#include "obs/registry.hh"
#include "resilience/checkpoint.hh"
#include "resilience/exit_codes.hh"

namespace membw {

namespace {

/**
 * Hierarchy aggregates shared by the live and snapshot publishers.
 * @p parent is a StatsRegistry (top-level layout) or a StatsGroup
 * (per-cell sweep subtree); both expose group().
 */
template <typename Parent>
void
publishLevels(Parent &parent,
              const std::vector<const CacheStats *> &levels)
{
    for (std::size_t i = 0; i < levels.size(); ++i) {
        StatsGroup g = parent.group("l" + std::to_string(i + 1));
        publishCacheStats(g, *levels[i]);
    }

    StatsGroup hier = parent.group("hier");
    hier.addCounter("levels", "cache levels simulated")
        .set(levels.size());
    auto &request = hier.addCounter(
        "request_bytes", "processor-side request traffic (D_0)",
        "bytes");
    request.set(levels.front()->requestBytes);
    auto &pin = hier.addCounter(
        "pin_bytes", "traffic below the last level (D_k)", "bytes");
    pin.set(levels.back()->trafficBelow());
    hier.addRatio("traffic_ratio",
                  "total R = pin_bytes / request_bytes", pin,
                  request);
}

} // namespace

CacheHierarchy::CacheHierarchy(const std::vector<CacheConfig> &configs)
{
    if (configs.empty())
        fatal("hierarchy needs at least one level");

    for (std::size_t i = 0; i < configs.size(); ++i) {
        if (i > 0 && configs[i].blockBytes < configs[i - 1].blockBytes)
            fatal("lower-level block size must not shrink");
        caches_.push_back(std::make_unique<Cache>(configs[i]));
    }

    // Wire each level's fills and write-backs into the next level
    // through the non-allocating callback form (one indirect call
    // per transfer).  Every inter-level transfer counts against the
    // per-reference event budget so a run-away fill/prefetch chain
    // trips the watchdog instead of hanging the run.
    links_.reserve(caches_.size());
    for (std::size_t i = 0; i + 1 < caches_.size(); ++i) {
        links_.push_back(DownLink{this, caches_[i + 1].get()});
        caches_[i]->setBelow(&CacheHierarchy::forwardFetch,
                             &CacheHierarchy::forwardWriteback,
                             &links_.back());
    }
}

void
CacheHierarchy::forwardFetch(void *ctx, Addr addr, Bytes bytes)
{
    auto *link = static_cast<DownLink *>(ctx);
    link->hier->noteDownstreamEvent();
    link->below->access(MemRef{addr, bytes, RefKind::Load});
}

void
CacheHierarchy::forwardWriteback(void *ctx, Addr addr, Bytes bytes)
{
    auto *link = static_cast<DownLink *>(ctx);
    link->hier->noteDownstreamEvent();
    link->below->access(MemRef{addr, bytes, RefKind::Store});
}

void
CacheHierarchy::noteDownstreamEvent()
{
    if (++accessEvents_ > maxEvents_)
        maxEvents_ = accessEvents_;
    if (eventBudget_ && accessEvents_ > eventBudget_)
        throw WatchdogError(
            "hierarchy watchdog: one reference triggered more than " +
            std::to_string(eventBudget_) +
            " downstream transfers — a fill/prefetch livelock "
            "between cache levels (raise the budget with "
            "setEventBudget() only if this chain is expected)");
}

void
CacheHierarchy::access(const MemRef &ref)
{
    accessEvents_ = 0;
    caches_[0]->access(ref);
}

void
CacheHierarchy::flush()
{
    for (auto &cache : caches_)
        cache->flush();
}

Bytes
CacheHierarchy::trafficBelow(std::size_t i) const
{
    return caches_[i]->stats().trafficBelow();
}

double
CacheHierarchy::trafficRatio(std::size_t i) const
{
    return caches_[i]->stats().trafficRatio();
}

double
CacheHierarchy::totalTrafficRatio() const
{
    const Bytes above = caches_[0]->stats().requestBytes;
    return above ? static_cast<double>(trafficBelow(levels() - 1)) /
                       static_cast<double>(above)
                 : 0.0;
}

void
CacheHierarchy::publishStats(StatsRegistry &registry) const
{
    std::vector<const CacheStats *> levels;
    for (const auto &cache : caches_)
        levels.push_back(&cache->stats());
    publishLevels(registry, levels);
}

TrafficResult
CacheHierarchy::summarize() const
{
    TrafficResult result;
    result.requestBytes = level(0).stats().requestBytes;
    result.pinBytes = trafficBelow(levels() - 1);
    result.trafficRatio = totalTrafficRatio();
    for (std::size_t i = 0; i < levels(); ++i) {
        result.levelRatios.push_back(trafficRatio(i));
        result.levelTraffic.push_back(trafficBelow(i));
        result.levels.push_back(level(i).stats());
    }
    result.l1 = level(0).stats();
    return result;
}

void
CacheHierarchy::saveState(ChkWriter &w) const
{
    w.beginSection(chkTag("HIER"));
    w.u32(static_cast<std::uint32_t>(caches_.size()));
    w.endSection();
    for (const auto &cache : caches_)
        cache->saveState(w);
}

void
CacheHierarchy::loadState(ChkReader &r)
{
    r.enterSection(chkTag("HIER"));
    const std::uint32_t count = r.u32();
    r.leaveSection();
    if (r.failed())
        return;
    if (count != caches_.size()) {
        r.fail(Errc::Mismatch,
               "checkpoint holds " + std::to_string(count) +
                   " cache levels but the configuration builds " +
                   std::to_string(caches_.size()));
        return;
    }
    for (auto &cache : caches_) {
        cache->loadState(r);
        if (r.failed())
            return;
    }
}

TrafficResult
runTrace(const Trace &trace, const std::vector<CacheConfig> &configs)
{
    return runTrace(trace, configs, TraceProgressFn{});
}

TrafficResult
runTrace(const Trace &trace, const std::vector<CacheConfig> &configs,
         const TraceProgressFn &progress)
{
    CacheHierarchy hier(configs);
    if (progress) {
        const std::size_t total = trace.size();
        for (std::size_t i = 0; i < total; ++i) {
            hier.access(trace[i]);
            progress(i + 1, total);
        }
    } else {
        for (const MemRef &ref : trace)
            hier.access(ref);
    }
    hier.flush();
    return hier.summarize();
}

TrafficResult
runTrace(const Trace &trace, const CacheConfig &config)
{
    return runTrace(trace, std::vector<CacheConfig>{config});
}

void
saveTrafficResult(ChkWriter &w, const TrafficResult &result)
{
    w.beginSection(chkTag("TRFR"));
    w.u64(result.requestBytes);
    w.u64(result.pinBytes);
    w.f64(result.trafficRatio);
    w.u64(result.levels.size());
    for (std::size_t i = 0; i < result.levels.size(); ++i) {
        w.f64(result.levelRatios[i]);
        w.u64(result.levelTraffic[i]);
        saveCacheStats(w, result.levels[i]);
    }
    w.endSection();
}

void
loadTrafficResult(ChkReader &r, TrafficResult &result)
{
    result = TrafficResult{};
    r.enterSection(chkTag("TRFR"));
    result.requestBytes = r.u64();
    result.pinBytes = r.u64();
    result.trafficRatio = r.f64();
    const std::uint64_t levels = r.u64();
    if (r.failed())
        return;
    // A level costs well over 100 bytes; 1/16th is a safe floor for
    // the pre-allocation cap.
    if (levels == 0 || levels > r.remaining() / 16) {
        r.fail(Errc::Corrupt, "implausible traffic-level count " +
                                  std::to_string(levels));
        return;
    }
    for (std::uint64_t i = 0; i < levels && !r.failed(); ++i) {
        result.levelRatios.push_back(r.f64());
        result.levelTraffic.push_back(r.u64());
        CacheStats stats;
        loadCacheStats(r, stats);
        result.levels.push_back(stats);
    }
    r.leaveSection();
    if (!r.failed())
        result.l1 = result.levels.front();
}

void
publishStats(StatsRegistry &registry, const TrafficResult &result)
{
    std::vector<const CacheStats *> levels;
    for (const CacheStats &s : result.levels)
        levels.push_back(&s);
    publishLevels(registry, levels);
}

void
publishStats(StatsGroup &group, const TrafficResult &result)
{
    std::vector<const CacheStats *> levels;
    for (const CacheStats &s : result.levels)
        levels.push_back(&s);
    publishLevels(group, levels);
}

} // namespace membw
