#include "cache/hierarchy.hh"

#include "common/log.hh"

namespace membw {

CacheHierarchy::CacheHierarchy(const std::vector<CacheConfig> &configs)
{
    if (configs.empty())
        fatal("hierarchy needs at least one level");

    for (std::size_t i = 0; i < configs.size(); ++i) {
        if (i > 0 && configs[i].blockBytes < configs[i - 1].blockBytes)
            fatal("lower-level block size must not shrink");
        caches_.push_back(std::make_unique<Cache>(configs[i]));
    }

    // Wire each level's fills and write-backs into the next level.
    for (std::size_t i = 0; i + 1 < caches_.size(); ++i) {
        Cache *below = caches_[i + 1].get();
        caches_[i]->setBelow(
            [below](Addr addr, Bytes bytes) {
                below->access(MemRef{addr, bytes, RefKind::Load});
            },
            [below](Addr addr, Bytes bytes) {
                below->access(MemRef{addr, bytes, RefKind::Store});
            });
    }
}

void
CacheHierarchy::access(const MemRef &ref)
{
    caches_[0]->access(ref);
}

void
CacheHierarchy::flush()
{
    for (auto &cache : caches_)
        cache->flush();
}

Bytes
CacheHierarchy::trafficBelow(std::size_t i) const
{
    return caches_[i]->stats().trafficBelow();
}

double
CacheHierarchy::trafficRatio(std::size_t i) const
{
    return caches_[i]->stats().trafficRatio();
}

double
CacheHierarchy::totalTrafficRatio() const
{
    const Bytes above = caches_[0]->stats().requestBytes;
    return above ? static_cast<double>(trafficBelow(levels() - 1)) /
                       static_cast<double>(above)
                 : 0.0;
}

TrafficResult
runTrace(const Trace &trace, const std::vector<CacheConfig> &configs)
{
    CacheHierarchy hier(configs);
    for (const MemRef &ref : trace)
        hier.access(ref);
    hier.flush();

    TrafficResult result;
    result.requestBytes = hier.level(0).stats().requestBytes;
    result.pinBytes = hier.trafficBelow(hier.levels() - 1);
    result.trafficRatio = hier.totalTrafficRatio();
    for (std::size_t i = 0; i < hier.levels(); ++i) {
        result.levelRatios.push_back(hier.trafficRatio(i));
        result.levelTraffic.push_back(hier.trafficBelow(i));
    }
    result.l1 = hier.level(0).stats();
    return result;
}

TrafficResult
runTrace(const Trace &trace, const CacheConfig &config)
{
    return runTrace(trace, std::vector<CacheConfig>{config});
}

} // namespace membw
