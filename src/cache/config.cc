#include "cache/config.hh"

#include "common/bitops.hh"
#include "common/log.hh"

namespace membw {

unsigned
CacheConfig::ways() const
{
    if (assoc != 0)
        return assoc;
    return static_cast<unsigned>(size / blockBytes);
}

unsigned
CacheConfig::sets() const
{
    return static_cast<unsigned>(size / (blockBytes * ways()));
}

void
CacheConfig::validate() const
{
    if (blockBytes < wordBytes || !isPowerOfTwo(blockBytes))
        fatal(name + ": block size must be a power of two >= 4B");
    if (blockBytes > 64 * wordBytes)
        fatal(name + ": block size above 256B is unsupported");
    if (size == 0 || size % blockBytes != 0)
        fatal(name + ": size must be a non-zero multiple of the block");
    const unsigned nblocks = static_cast<unsigned>(size / blockBytes);
    if (ways() > nblocks)
        fatal(name + ": associativity exceeds block count");
    if (nblocks % ways() != 0 || !isPowerOfTwo(sets()))
        fatal(name + ": sets must be a power of two");
    if (alloc == AllocPolicy::WriteValidate &&
        write == WritePolicy::WriteThrough)
        fatal(name + ": write-validate requires write-back");
    if (sectorBytes != 0) {
        if (sectorBytes < wordBytes || !isPowerOfTwo(sectorBytes) ||
            blockBytes % sectorBytes != 0)
            fatal(name + ": sector size must be a power-of-two "
                         "divisor of the block size");
        if (alloc == AllocPolicy::WriteValidate)
            fatal(name + ": sectoring and write-validate are "
                         "mutually exclusive");
    }
    if (streamBuffers != 0 && streamDepth == 0)
        fatal(name + ": stream buffers need a non-zero depth");
    if (streamBuffers != 0 && taggedPrefetch)
        fatal(name + ": choose one prefetcher (tagged or stream)");
}

std::string
CacheConfig::describe() const
{
    std::string assoc_str =
        assoc == 0 ? "full" : std::to_string(assoc) + "way";
    return formatSize(size) + "/" + assoc_str + "/" +
           formatSize(blockBytes) +
           (sectorBytes ? "(" + formatSize(sectorBytes) + " sect)"
                        : "") +
           " " + toString(write) + "-" + toString(alloc) + " " +
           toString(repl) + (taggedPrefetch ? "+pf" : "");
}

std::string
toString(WritePolicy p)
{
    return p == WritePolicy::WriteBack ? "WB" : "WT";
}

std::string
toString(AllocPolicy p)
{
    switch (p) {
      case AllocPolicy::WriteAllocate: return "WA";
      case AllocPolicy::WriteNoAllocate: return "WNA";
      case AllocPolicy::WriteValidate: return "WV";
    }
    return "?";
}

std::string
toString(ReplPolicy p)
{
    switch (p) {
      case ReplPolicy::LRU: return "LRU";
      case ReplPolicy::FIFO: return "FIFO";
      case ReplPolicy::Random: return "RND";
    }
    return "?";
}

std::string
formatSize(Bytes bytes)
{
    if (bytes >= 1_MiB && bytes % 1_MiB == 0)
        return std::to_string(bytes >> 20) + "MB";
    if (bytes >= 1_KiB && bytes % 1_KiB == 0)
        return std::to_string(bytes >> 10) + "KB";
    return std::to_string(bytes) + "B";
}

} // namespace membw
