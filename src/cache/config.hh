/**
 * @file
 * Cache configuration: geometry, write policies, replacement.
 *
 * The enum values cover every configuration the paper exercises:
 * Table 7/8 (direct-mapped, 32B, write-back write-allocate), Figure 4
 * (4-way, 4B-128B blocks), and the Table 10 factor-isolation pairs
 * (LRU vs MIN, 1-way vs fully-associative, write-allocate vs
 * write-validate).
 */

#ifndef MEMBW_CACHE_CONFIG_HH
#define MEMBW_CACHE_CONFIG_HH

#include <cstdint>
#include <string>

#include "common/types.hh"

namespace membw {

/** What happens on a store hit / how stores propagate downward. */
enum class WritePolicy : std::uint8_t
{
    WriteBack,    ///< dirty data written below only on eviction/flush
    WriteThrough, ///< every store also writes below immediately
};

/** What happens on a store miss. */
enum class AllocPolicy : std::uint8_t
{
    WriteAllocate,   ///< fetch the block, then write into it
    WriteNoAllocate, ///< write below; do not allocate
    WriteValidate,   ///< allocate w/o fetch; per-word valid bits [25]
};

/** Replacement policy for set-associative lookups. */
enum class ReplPolicy : std::uint8_t
{
    LRU,
    FIFO,
    Random,
};

/** Geometry and policy bundle for one cache level. */
struct CacheConfig
{
    std::string name = "cache";
    Bytes size = 8_KiB;     ///< total data capacity
    unsigned assoc = 1;     ///< ways per set; 0 means fully associative
    Bytes blockBytes = 32;  ///< line size (power of two, >= wordBytes)
    WritePolicy write = WritePolicy::WriteBack;
    AllocPolicy alloc = AllocPolicy::WriteAllocate;
    ReplPolicy repl = ReplPolicy::LRU;
    bool taggedPrefetch = false; ///< Gindele tagged sequential prefetch
    /**
     * Sector (sub-block) size; 0 disables sectoring.  With sectors,
     * the address/allocation unit stays blockBytes but misses
     * transfer only the sector covering the request — the
     * miss-ratio/traffic-ratio trade-off Hill & Smith [20] studied
     * (Section 6.1).  Must divide blockBytes.
     */
    Bytes sectorBytes = 0;
    /**
     * Number of Jouppi-style stream buffers (0 disables them).  On a
     * demand miss that matches no buffer head, a buffer is allocated
     * and begins fetching the successive blocks; head hits pop the
     * buffer and extend the stream.  Stream buffers "prefetch
     * unnecessary data at the end of a stream" (Section 2.1) — that
     * waste shows up in the traffic counters.
     */
    unsigned streamBuffers = 0;
    unsigned streamDepth = 4;    ///< blocks buffered per stream
    std::uint64_t seed = 1;      ///< for ReplPolicy::Random

    /** Number of sets implied by the geometry. */
    unsigned sets() const;

    /** Effective associativity (ways per set). */
    unsigned ways() const;

    /** Validate; calls fatal() with a diagnostic if inconsistent. */
    void validate() const;

    /** Human-readable one-line summary, e.g. "64KB/1way/32B WB-WA". */
    std::string describe() const;
};

/** Short text form of each enum, for table output. */
std::string toString(WritePolicy p);
std::string toString(AllocPolicy p);
std::string toString(ReplPolicy p);

/** Format a byte count as "4B", "64KB", "2MB"... */
std::string formatSize(Bytes bytes);

} // namespace membw

#endif // MEMBW_CACHE_CONFIG_HH
