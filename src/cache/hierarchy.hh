/**
 * @file
 * Multi-level cache hierarchy for traffic simulation.
 *
 * Chains caches so that each level's miss fills and write-backs
 * become the next level's request stream, giving per-level traffic
 * D_0 (processor requests) through D_k (pin traffic).  Used to
 * compute multi-level traffic ratios and effective pin bandwidth
 * (Equations 4-5).
 */

#ifndef MEMBW_CACHE_HIERARCHY_HH
#define MEMBW_CACHE_HIERARCHY_HH

#include <functional>
#include <memory>
#include <vector>

#include "cache/cache.hh"
#include "trace/trace.hh"

namespace membw {

class StatsRegistry;

/**
 * An ordered stack of cache levels (index 0 is closest to the
 * processor).  Lower levels must have block sizes >= the level above
 * so fills/write-backs never span a lower-level block.
 */
class CacheHierarchy
{
  public:
    /** Build from level configs, processor-side first. */
    explicit CacheHierarchy(const std::vector<CacheConfig> &configs);

    /** Simulate one processor reference. */
    void access(const MemRef &ref);

    /** Flush every level (top-down), counting write-back traffic. */
    void flush();

    std::size_t levels() const { return caches_.size(); }
    const Cache &level(std::size_t i) const { return *caches_[i]; }

    /** Traffic below level @p i in bytes (D_{i+1} in paper terms). */
    Bytes trafficBelow(std::size_t i) const;

    /** Traffic ratio of level @p i (Equation 4). */
    double trafficRatio(std::size_t i) const;

    /** Product of all per-level traffic ratios. */
    double totalTrafficRatio() const;

    /**
     * Register every level's counters under "l1", "l2", ... plus the
     * hierarchy aggregates under "hier" (pin bytes, total R).
     */
    void publishStats(StatsRegistry &registry) const;

  private:
    std::vector<std::unique_ptr<Cache>> caches_;
};

/** Per-run summary returned by runTrace(). */
struct TrafficResult
{
    Bytes requestBytes = 0;   ///< processor-side request traffic
    Bytes pinBytes = 0;       ///< traffic below the last level
    double trafficRatio = 0;  ///< pinBytes / requestBytes
    std::vector<double> levelRatios; ///< per-level R_i
    std::vector<Bytes> levelTraffic; ///< per-level D_i
    std::vector<CacheStats> levels;  ///< full per-level snapshots
    CacheStats l1;            ///< stats snapshot of level 0
};

/**
 * Per-reference progress hook: invoked as (refs done, total refs).
 * Callers decide their own reporting cadence (see ProgressMeter).
 */
using TraceProgressFn =
    std::function<void(std::size_t done, std::size_t total)>;

/**
 * Run @p trace through a fresh hierarchy built from @p configs,
 * flush at completion (Section 4.1), and summarize traffic.
 */
TrafficResult runTrace(const Trace &trace,
                       const std::vector<CacheConfig> &configs);

/** As above, with a per-reference progress callback. */
TrafficResult runTrace(const Trace &trace,
                       const std::vector<CacheConfig> &configs,
                       const TraceProgressFn &progress);

/** Single-level convenience overload. */
TrafficResult runTrace(const Trace &trace, const CacheConfig &config);

/**
 * Publish a summarized run under "l1".."lN" and "hier" — the same
 * layout CacheHierarchy::publishStats produces live.
 */
void publishStats(StatsRegistry &registry,
                  const TrafficResult &result);

} // namespace membw

#endif // MEMBW_CACHE_HIERARCHY_HH
