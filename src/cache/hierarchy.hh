/**
 * @file
 * Multi-level cache hierarchy for traffic simulation.
 *
 * Chains caches so that each level's miss fills and write-backs
 * become the next level's request stream, giving per-level traffic
 * D_0 (processor requests) through D_k (pin traffic).  Used to
 * compute multi-level traffic ratios and effective pin bandwidth
 * (Equations 4-5).
 */

#ifndef MEMBW_CACHE_HIERARCHY_HH
#define MEMBW_CACHE_HIERARCHY_HH

#include <functional>
#include <memory>
#include <vector>

#include "cache/cache.hh"
#include "trace/trace.hh"

namespace membw {

class StatsRegistry;
class ChkWriter;
class ChkReader;
struct TrafficResult;

/**
 * An ordered stack of cache levels (index 0 is closest to the
 * processor).  Lower levels must have block sizes >= the level above
 * so fills/write-backs never span a lower-level block.
 */
class CacheHierarchy
{
  public:
    /** Build from level configs, processor-side first. */
    explicit CacheHierarchy(const std::vector<CacheConfig> &configs);

    /** Simulate one processor reference. */
    void access(const MemRef &ref);

    /** Flush every level (top-down), counting write-back traffic. */
    void flush();

    std::size_t levels() const { return caches_.size(); }
    const Cache &level(std::size_t i) const { return *caches_[i]; }

    /** Attach @p probe (null to detach) to every level; level i
     * reports its events as hierarchy level i. */
    void
    attachProbe(MemProbe *probe)
    {
        for (std::size_t i = 0; i < caches_.size(); ++i)
            caches_[i]->setProbe(probe,
                                 static_cast<unsigned>(i));
    }

    /** Traffic below level @p i in bytes (D_{i+1} in paper terms). */
    Bytes trafficBelow(std::size_t i) const;

    /** Traffic ratio of level @p i (Equation 4). */
    double trafficRatio(std::size_t i) const;

    /** Product of all per-level traffic ratios. */
    double totalTrafficRatio() const;

    /**
     * Register every level's counters under "l1", "l2", ... plus the
     * hierarchy aggregates under "hier" (pin bytes, total R).
     */
    void publishStats(StatsRegistry &registry) const;

    /**
     * Snapshot current traffic into a TrafficResult.  Call after
     * flush() for end-of-run semantics; mid-run snapshots are valid
     * but exclude the final dirty flush.
     */
    TrafficResult summarize() const;

    /**
     * Cap the downstream events (fills, write-backs, prefetch and
     * stream transfers between levels) one processor reference may
     * trigger.  A run-away chain — a livelock in cache-interaction
     * logic — trips a WatchdogError instead of hanging the run.
     * 0 disables the guard.
     */
    void setEventBudget(std::uint64_t budget) { eventBudget_ = budget; }

    std::uint64_t eventBudget() const { return eventBudget_; }

    /** Most downstream events any single reference has triggered. */
    std::uint64_t maxDownstreamEvents() const { return maxEvents_; }

    /**
     * Unused fraction of the event budget at the worst reference seen
     * so far (1.0 = nowhere near tripping) — the heartbeat's
     * "watchdog slack" figure.
     */
    double
    eventHeadroom() const
    {
        if (!eventBudget_)
            return 1.0;
        if (maxEvents_ >= eventBudget_)
            return 0.0;
        return 1.0 - static_cast<double>(maxEvents_) /
                         static_cast<double>(eventBudget_);
    }

    /** Serialize every level ("HIER" section + one per cache). */
    void saveState(ChkWriter &w) const;

    /** Restore state saved from an identically configured stack. */
    void loadState(ChkReader &r);

  private:
    void noteDownstreamEvent();

    /**
     * Context for the non-allocating downstream callbacks: which
     * hierarchy (for the event watchdog) and which cache the event
     * lands in.  Addresses must stay stable — the vector is sized
     * once during construction.
     */
    struct DownLink
    {
        CacheHierarchy *hier;
        Cache *below;
    };
    static void forwardFetch(void *ctx, Addr addr, Bytes bytes);
    static void forwardWriteback(void *ctx, Addr addr, Bytes bytes);

    std::vector<std::unique_ptr<Cache>> caches_;
    std::vector<DownLink> links_;
    std::uint64_t eventBudget_ = 1'000'000;
    std::uint64_t accessEvents_ = 0;
    std::uint64_t maxEvents_ = 0;
};

/** Per-run summary returned by runTrace(). */
struct TrafficResult
{
    Bytes requestBytes = 0;   ///< processor-side request traffic
    Bytes pinBytes = 0;       ///< traffic below the last level
    double trafficRatio = 0;  ///< pinBytes / requestBytes
    std::vector<double> levelRatios; ///< per-level R_i
    std::vector<Bytes> levelTraffic; ///< per-level D_i
    std::vector<CacheStats> levels;  ///< full per-level snapshots
    CacheStats l1;            ///< stats snapshot of level 0
};

/**
 * Per-reference progress hook: invoked as (refs done, total refs).
 * Callers decide their own reporting cadence (see ProgressMeter).
 */
using TraceProgressFn =
    std::function<void(std::size_t done, std::size_t total)>;

/**
 * Run @p trace through a fresh hierarchy built from @p configs,
 * flush at completion (Section 4.1), and summarize traffic.
 */
TrafficResult runTrace(const Trace &trace,
                       const std::vector<CacheConfig> &configs);

/** As above, with a per-reference progress callback. */
TrafficResult runTrace(const Trace &trace,
                       const std::vector<CacheConfig> &configs,
                       const TraceProgressFn &progress);

/** Single-level convenience overload. */
TrafficResult runTrace(const Trace &trace, const CacheConfig &config);

/**
 * Publish a summarized run under "l1".."lN" and "hier" — the same
 * layout CacheHierarchy::publishStats produces live.
 */
void publishStats(StatsRegistry &registry,
                  const TrafficResult &result);

/**
 * As above, but nested under @p group — used by sweep mode to give
 * each cell its own "sweep.<config>" subtree.
 */
void publishStats(StatsGroup &group, const TrafficResult &result);

/**
 * Serialize a completed traffic summary ("TRFR" section) so a later
 * phase of a checkpointed run can carry its predecessor's result.
 */
void saveTrafficResult(ChkWriter &w, const TrafficResult &result);

/** Read back what saveTrafficResult() wrote. */
void loadTrafficResult(ChkReader &r, TrafficResult &result);

} // namespace membw

#endif // MEMBW_CACHE_HIERARCHY_HH
