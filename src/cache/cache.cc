#include "cache/cache.hh"

#include <array>
#include <bit>
#include <cassert>

#include "common/bitops.hh"
#include "common/log.hh"
#include "obs/registry.hh"
#include "resilience/checkpoint.hh"

namespace membw {

void
saveCacheStats(ChkWriter &w, const CacheStats &s)
{
    w.u64(s.accesses);
    w.u64(s.loads);
    w.u64(s.stores);
    w.u64(s.hits);
    w.u64(s.misses);
    w.u64(s.loadMisses);
    w.u64(s.storeMisses);
    w.u64(s.evictions);
    w.u64(s.writebacks);
    w.u64(s.partialFills);
    w.u64(s.prefetches);
    w.u64(s.streamHits);
    w.u64(s.streamAllocs);
    w.u64(s.requestBytes);
    w.u64(s.demandFetchBytes);
    w.u64(s.partialFillBytes);
    w.u64(s.prefetchFetchBytes);
    w.u64(s.streamFetchBytes);
    w.u64(s.writebackBytes);
    w.u64(s.writeThroughBytes);
    w.u64(s.flushWritebackBytes);
}

void
loadCacheStats(ChkReader &r, CacheStats &s)
{
    s.accesses = r.u64();
    s.loads = r.u64();
    s.stores = r.u64();
    s.hits = r.u64();
    s.misses = r.u64();
    s.loadMisses = r.u64();
    s.storeMisses = r.u64();
    s.evictions = r.u64();
    s.writebacks = r.u64();
    s.partialFills = r.u64();
    s.prefetches = r.u64();
    s.streamHits = r.u64();
    s.streamAllocs = r.u64();
    s.requestBytes = r.u64();
    s.demandFetchBytes = r.u64();
    s.partialFillBytes = r.u64();
    s.prefetchFetchBytes = r.u64();
    s.streamFetchBytes = r.u64();
    s.writebackBytes = r.u64();
    s.writeThroughBytes = r.u64();
    s.flushWritebackBytes = r.u64();
}

/**
 * Sets this narrow are probed faster by scanning the ways (a handful
 * of tag compares in one or two cache lines) than by hashing into the
 * per-set index map.  Wider sets — notably fully-associative
 * geometries, where ways == blocks — keep the map.
 */
static constexpr unsigned linearScanWays = 8;

Cache::Cache(const CacheConfig &config)
    : config_(config),
      blockBytes_(config.blockBytes),
      blockShift_(static_cast<unsigned>(
          std::countr_zero(config.blockBytes))),
      wordsPerBlock_(static_cast<unsigned>(config.blockBytes / wordBytes)),
      nsets_(config.sets()),
      setMask_(nsets_ - 1),
      useIndex_(config.ways() > linearScanWays),
      rng_(config.seed)
{
    config_.validate();
    sets_.resize(nsets_);
    const unsigned ways = config_.ways();
    for (Set &set : sets_) {
        set.ways.resize(ways);
        if (useIndex_)
            set.index.reserve(ways * 2);
    }
}

void
Cache::setBelow(DownstreamFn fetch, DownstreamFn writeback, void *ctx)
{
    shim_.reset();
    fetchBelow_ = fetch;
    writebackBelow_ = writeback;
    belowCtx_ = ctx;
}

void
Cache::setBelow(FetchFn fetch, WritebackFn writeback)
{
    shim_ = std::make_unique<FnShim>(
        FnShim{std::move(fetch), std::move(writeback)});
    belowCtx_ = shim_.get();
    fetchBelow_ = shim_->fetch ? [](void *ctx, Addr addr, Bytes bytes) {
        static_cast<FnShim *>(ctx)->fetch(addr, bytes);
    } : static_cast<DownstreamFn>(nullptr);
    writebackBelow_ =
        shim_->writeback ? [](void *ctx, Addr addr, Bytes bytes) {
            static_cast<FnShim *>(ctx)->writeback(addr, bytes);
        } : static_cast<DownstreamFn>(nullptr);
}

std::uint64_t
Cache::wordsMask(Addr addr, Bytes size) const
{
    const Addr block = blockAddr(addr);
    const unsigned first =
        static_cast<unsigned>((addr - block) / wordBytes);
    const unsigned last =
        static_cast<unsigned>((addr + size - 1 - block) / wordBytes);
    assert(last < wordsPerBlock_);
    std::uint64_t mask = 0;
    for (unsigned w = first; w <= last; ++w)
        mask |= std::uint64_t{1} << w;
    return mask;
}

std::uint64_t
Cache::fullMask() const
{
    return wordsPerBlock_ == 64 ? ~std::uint64_t{0}
                                : (std::uint64_t{1} << wordsPerBlock_) - 1;
}

std::uint64_t
Cache::sectorExpand(std::uint64_t words) const
{
    if (config_.sectorBytes == 0)
        return words ? fullMask() : 0;
    const unsigned sector_words =
        static_cast<unsigned>(config_.sectorBytes / wordBytes);
    const std::uint64_t sector_mask =
        sector_words == 64 ? ~std::uint64_t{0}
                           : (std::uint64_t{1} << sector_words) - 1;
    std::uint64_t out = 0;
    for (unsigned s = 0; s * sector_words < wordsPerBlock_; ++s) {
        const std::uint64_t in_sector =
            (words >> (s * sector_words)) & sector_mask;
        if (in_sector)
            out |= sector_mask << (s * sector_words);
    }
    return out;
}

Cache::Line *
Cache::findLine(Addr block_addr)
{
    Set &set = sets_[setIndex(block_addr)];
    if (!useIndex_) {
        for (Line &line : set.ways)
            if (line.valid && line.blockAddr == block_addr)
                return &line;
        return nullptr;
    }
    auto it = set.index.find(block_addr);
    if (it == set.index.end())
        return nullptr;
    Line &line = set.ways[it->second];
    assert(line.valid && line.blockAddr == block_addr);
    return &line;
}

unsigned
Cache::pickVictim(Set &set)
{
    const unsigned ways = static_cast<unsigned>(set.ways.size());

    // Prefer an invalid way.
    for (unsigned w = 0; w < ways; ++w)
        if (!set.ways[w].valid)
            return w;

    switch (config_.repl) {
      case ReplPolicy::Random:
        return static_cast<unsigned>(rng_.below(ways));
      case ReplPolicy::LRU: {
        unsigned best = 0;
        for (unsigned w = 1; w < ways; ++w)
            if (set.ways[w].lastUse < set.ways[best].lastUse)
                best = w;
        return best;
      }
      case ReplPolicy::FIFO: {
        unsigned best = 0;
        for (unsigned w = 1; w < ways; ++w)
            if (set.ways[w].insertSeq < set.ways[best].insertSeq)
                best = w;
        return best;
      }
    }
    panic("unreachable replacement policy");
}

Bytes
Cache::writebackSize(const Line &line) const
{
    if (line.dirtyMask == 0)
        return 0;
    if (config_.alloc == AllocPolicy::WriteValidate)
        return static_cast<Bytes>(std::popcount(line.dirtyMask)) *
               wordBytes;
    // Sectored caches write back dirty sectors; plain caches the
    // whole block (sectorExpand degenerates to the full mask).
    return static_cast<Bytes>(
               std::popcount(sectorExpand(line.dirtyMask))) *
           wordBytes;
}

Bytes
Cache::evict(Set &set, unsigned way, bool to_flush)
{
    Line &line = set.ways[way];
    if (!line.valid)
        return 0;

    stats_.evictions++;
    MEMBW_PROBE(probe_,
                onEvict(probeLevel_,
                        static_cast<std::size_t>(&set -
                                                 sets_.data())));
    const Bytes wb = writebackSize(line);
    if (wb) {
        stats_.writebacks++;
        if (to_flush)
            stats_.flushWritebackBytes += wb;
        else
            stats_.writebackBytes += wb;
        sendWriteback(line.blockAddr, wb);
    }
    if (useIndex_)
        set.index.erase(line.blockAddr);
    line = Line{};
    return wb;
}

Cache::Line &
Cache::insert(Addr block_addr)
{
    Set &set = sets_[setIndex(block_addr)];
    const unsigned way = pickVictim(set);
    evict(set, way, false);

    Line &line = set.ways[way];
    line.blockAddr = block_addr;
    line.valid = true;
    line.lastUse = ++seq_;
    line.insertSeq = seq_;
    line.validMask = 0;
    line.dirtyMask = 0;
    line.prefetchTag = false;
    if (useIndex_)
        set.index.emplace(block_addr, way);
    return line;
}

void
Cache::sendFetch(Addr addr, Bytes bytes)
{
    MEMBW_PROBE(probe_, onBelowTraffic(probeLevel_, addr, bytes));
    if (fetchBelow_)
        fetchBelow_(belowCtx_, addr, bytes);
}

void
Cache::sendWriteback(Addr addr, Bytes bytes)
{
    MEMBW_PROBE(probe_, onBelowTraffic(probeLevel_, addr, bytes));
    if (writebackBelow_)
        writebackBelow_(belowCtx_, addr, bytes);
}

void
Cache::maybePrefetch(Addr demand_block)
{
    if (!config_.taggedPrefetch || inPrefetch_)
        return;

    const Addr next = demand_block + blockBytes_;
    if (next < demand_block) // address wrap
        return;
    if (findLine(next))
        return;

    inPrefetch_ = true;
    Line &line = insert(next);
    line.validMask = fullMask();
    line.prefetchTag = true;
    stats_.prefetches++;
    stats_.prefetchFetchBytes += blockBytes_;
    sendFetch(next, blockBytes_);
    inPrefetch_ = false;
}

bool
Cache::streamLookup(Addr block)
{
    if (config_.streamBuffers == 0)
        return false;

    // Head hit: consume the entry and extend the stream by one.
    for (Stream &s : streams_) {
        if (s.head < s.fifo.size() && s.fifo[s.head] == block) {
            ++s.head;
            const Addr tail_next =
                s.fifo.back() + blockBytes_;
            if (tail_next > s.fifo.back()) { // no address wrap
                s.fifo.push_back(tail_next);
                stats_.streamFetchBytes += blockBytes_;
                sendFetch(tail_next, blockBytes_);
            }
            if (s.head > 64) { // compact the consumed prefix
                s.fifo.erase(s.fifo.begin(),
                             s.fifo.begin() +
                                 static_cast<std::ptrdiff_t>(s.head));
                s.head = 0;
            }
            s.lastUse = ++seq_;
            stats_.streamHits++;
            return true;
        }
    }

    // No hit: (re)allocate the LRU stream at block+1..block+depth.
    if (streams_.size() < config_.streamBuffers)
        streams_.emplace_back();
    Stream *victim = &streams_[0];
    for (Stream &s : streams_)
        if (s.lastUse < victim->lastUse)
            victim = &s;
    victim->fifo.clear();
    victim->head = 0;
    victim->lastUse = ++seq_;
    for (unsigned d = 1; d <= config_.streamDepth; ++d) {
        const Addr next = block + d * blockBytes_;
        if (next < block)
            break;
        victim->fifo.push_back(next);
        stats_.streamFetchBytes += blockBytes_;
        sendFetch(next, blockBytes_);
    }
    stats_.streamAllocs++;
    return false;
}

AccessResult
Cache::access(const MemRef &ref)
{
    if (blockAddr(ref.addr) != blockAddr(ref.addr + ref.size - 1))
        fatal(config_.name + ": reference spans a block boundary");

    AccessResult result;
    const Addr block = blockAddr(ref.addr);
    const std::uint64_t words = wordsMask(ref.addr, ref.size);

    stats_.accesses++;
    stats_.requestBytes += ref.size;
    if (ref.isLoad())
        stats_.loads++;
    else
        stats_.stores++;

    Line *line = findLine(block);

    // Tagged prefetch: first demand touch of a prefetched line
    // triggers the next sequential prefetch (Gindele [17]).
    if (line && line->prefetchTag) {
        line->prefetchTag = false;
        maybePrefetch(block);
    }

    if (ref.isLoad()) {
        if (line) {
            const std::uint64_t missing = words & ~line->validMask;
            if (missing) {
                // Partially-valid line: write-validate fills only
                // the missing words; a sectored cache fills the
                // missing sectors.
                const std::uint64_t fill =
                    config_.sectorBytes
                        ? sectorExpand(missing) & ~line->validMask
                        : missing;
                const Bytes bytes =
                    static_cast<Bytes>(std::popcount(fill)) *
                    wordBytes;
                stats_.partialFills++;
                stats_.partialFillBytes += bytes;
                result.fetchedBytes += bytes;
                sendFetch(ref.addr, bytes);
                line->validMask |= fill;
            }
            stats_.hits++;
            result.hit = true;
            line->lastUse = ++seq_;
        } else {
            stats_.misses++;
            stats_.loadMisses++;
            const bool from_stream = streamLookup(block);
            Line &nl = insert(block);
            if (from_stream) {
                // The block was waiting in a stream buffer: its
                // fill traffic was paid when the stream fetched it.
                nl.validMask = fullMask();
            } else {
                const std::uint64_t fill = sectorExpand(words);
                const Bytes bytes =
                    static_cast<Bytes>(std::popcount(fill)) *
                    wordBytes;
                nl.validMask = fill;
                stats_.demandFetchBytes += bytes;
                result.fetchedBytes += bytes;
                sendFetch(block, bytes);
            }
            // A demand miss prefetches the next sequential block [17].
            maybePrefetch(block);
        }
        return result;
    }

    // Store.
    if (line) {
        stats_.hits++;
        result.hit = true;
        line->lastUse = ++seq_;
        line->validMask |= words;
        if (config_.write == WritePolicy::WriteBack) {
            line->dirtyMask |= words;
        } else {
            stats_.writeThroughBytes += ref.size;
            result.writeThroughBytes = ref.size;
            sendWriteback(ref.addr, ref.size);
        }
        return result;
    }

    stats_.misses++;
    stats_.storeMisses++;
    switch (config_.alloc) {
      case AllocPolicy::WriteAllocate: {
        Line &nl = insert(block);
        const std::uint64_t fill = sectorExpand(words);
        const Bytes bytes =
            static_cast<Bytes>(std::popcount(fill)) * wordBytes;
        nl.validMask = fill;
        stats_.demandFetchBytes += bytes;
        result.fetchedBytes += bytes;
        sendFetch(block, bytes);
        if (config_.write == WritePolicy::WriteBack) {
            nl.dirtyMask |= words;
        } else {
            stats_.writeThroughBytes += ref.size;
            result.writeThroughBytes = ref.size;
            sendWriteback(ref.addr, ref.size);
        }
        maybePrefetch(block);
        break;
      }
      case AllocPolicy::WriteNoAllocate: {
        stats_.writeThroughBytes += ref.size;
        result.writeThroughBytes = ref.size;
        sendWriteback(ref.addr, ref.size);
        break;
      }
      case AllocPolicy::WriteValidate: {
        // Allocate without fetching; written words become valid+dirty.
        Line &nl = insert(block);
        nl.validMask = words;
        nl.dirtyMask = words;
        break;
      }
    }
    return result;
}

Bytes
Cache::flush()
{
    Bytes total = 0;
    for (Set &set : sets_) {
        for (unsigned w = 0; w < set.ways.size(); ++w)
            total += evict(set, w, true);
    }
    return total;
}

void
Cache::publishStats(StatsGroup &group) const
{
    publishCacheStats(group, stats_);
}

void
publishCacheStats(StatsGroup &group, const CacheStats &stats)
{
    auto &accesses = group.addCounter(
        "accesses", "references presented to this level", "refs");
    accesses.set(stats.accesses);
    group.addCounter("loads", "load references", "refs")
        .set(stats.loads);
    group.addCounter("stores", "store references", "refs")
        .set(stats.stores);
    group.addCounter("hits", "references satisfied in place", "refs")
        .set(stats.hits);
    auto &misses = group.addCounter(
        "demand_misses", "demand references that missed", "refs");
    misses.set(stats.misses);
    group.addCounter("load_misses", "demand load misses", "refs")
        .set(stats.loadMisses);
    group.addCounter("store_misses", "demand store misses", "refs")
        .set(stats.storeMisses);
    group.addCounter("partial_fills",
                     "word-granularity fills into valid lines",
                     "events")
        .set(stats.partialFills);
    group.addCounter("prefetches", "tagged-prefetch fills issued",
                     "events")
        .set(stats.prefetches);
    group.addCounter("stream_hits",
                     "misses served from a stream buffer", "events")
        .set(stats.streamHits);
    group.addCounter("stream_allocs", "stream (re)allocations",
                     "events")
        .set(stats.streamAllocs);
    group.addCounter("evictions", "valid lines displaced or flushed",
                     "events")
        .set(stats.evictions);
    group.addCounter("writebacks", "evictions that wrote data below",
                     "events")
        .set(stats.writebacks);
    group.addRatio("miss_rate", "demand_misses / accesses", misses,
                   accesses);

    StatsGroup bytes = group.group("bytes");
    auto &request = bytes.addCounter(
        "request", "traffic above this level (D_{i-1})", "bytes");
    request.set(stats.requestBytes);
    bytes.addCounter("demand_fetch", "full-block demand fills",
                     "bytes")
        .set(stats.demandFetchBytes);
    bytes.addCounter("partial_fill", "word-granularity fills (WV)",
                     "bytes")
        .set(stats.partialFillBytes);
    bytes.addCounter("prefetch_fetch", "tagged-prefetch fills",
                     "bytes")
        .set(stats.prefetchFetchBytes);
    bytes.addCounter("stream_fetch", "stream-buffer fills", "bytes")
        .set(stats.streamFetchBytes);
    bytes.addCounter("writeback", "dirty evictions", "bytes")
        .set(stats.writebackBytes);
    bytes.addCounter("write_through", "stores propagated (WT/WNA)",
                     "bytes")
        .set(stats.writeThroughBytes);
    bytes.addCounter("flush_writeback", "end-of-run dirty flush",
                     "bytes")
        .set(stats.flushWritebackBytes);
    auto &below = bytes.addCounter(
        "below", "total traffic below this level (D_i)", "bytes");
    below.set(stats.trafficBelow());
    group.addRatio("traffic_ratio",
                   "R = bytes.below / bytes.request (Equation 4)",
                   below, request);
}

void
Cache::saveState(ChkWriter &w) const
{
    w.beginSection(chkTag("CACH"));

    // Geometry guard: a checkpoint only restores into an identically
    // shaped cache.
    w.u32(nsets_);
    w.u32(config_.ways());
    w.u64(blockBytes_);

    w.u64(seq_);
    for (std::uint64_t word : rng_.state())
        w.u64(word);
    saveCacheStats(w, stats_);

    for (const Set &set : sets_) {
        for (const Line &line : set.ways) {
            w.u8(line.valid ? 1 : 0);
            w.u64(line.blockAddr);
            w.u64(line.lastUse);
            w.u64(line.insertSeq);
            w.u64(line.validMask);
            w.u64(line.dirtyMask);
            w.u8(line.prefetchTag ? 1 : 0);
        }
    }

    w.u64(streams_.size());
    for (const Stream &s : streams_) {
        w.u64(s.lastUse);
        w.u64(s.head);
        w.u64(s.fifo.size());
        for (Addr a : s.fifo)
            w.u64(a);
    }

    w.endSection();
}

void
Cache::loadState(ChkReader &r)
{
    r.enterSection(chkTag("CACH"));

    const std::uint32_t nsets = r.u32();
    const std::uint32_t ways = r.u32();
    const std::uint64_t block = r.u64();
    if (r.failed())
        return;
    if (nsets != nsets_ || ways != config_.ways() ||
        block != blockBytes_) {
        r.fail(Errc::Mismatch,
               config_.name + ": checkpoint geometry " +
                   std::to_string(nsets) + "x" + std::to_string(ways) +
                   "x" + std::to_string(block) +
                   "B does not match the configured " +
                   std::to_string(nsets_) + "x" +
                   std::to_string(config_.ways()) + "x" +
                   std::to_string(blockBytes_) + "B cache");
        return;
    }

    seq_ = r.u64();
    std::array<std::uint64_t, 4> rstate;
    for (std::uint64_t &word : rstate)
        word = r.u64();
    rng_.setState(rstate);
    loadCacheStats(r, stats_);

    for (Set &set : sets_) {
        set.index.clear();
        for (unsigned way = 0; way < set.ways.size(); ++way) {
            Line &line = set.ways[way];
            line.valid = r.u8() != 0;
            line.blockAddr = r.u64();
            line.lastUse = r.u64();
            line.insertSeq = r.u64();
            line.validMask = r.u64();
            line.dirtyMask = r.u64();
            line.prefetchTag = r.u8() != 0;
            if (r.failed())
                return;
            if (line.valid &&
                !set.index.emplace(line.blockAddr, way).second) {
                r.fail(Errc::Corrupt,
                       config_.name +
                           ": duplicate resident block in set");
                return;
            }
        }
        // The map above doubles as the duplicate detector; linear-
        // scan geometries don't keep it at runtime.
        if (!useIndex_)
            set.index.clear();
    }

    const std::uint64_t nstreams = r.u64();
    if (nstreams > config_.streamBuffers) {
        r.fail(Errc::Corrupt,
               config_.name + ": checkpoint carries " +
                   std::to_string(nstreams) +
                   " stream buffers but the config allows " +
                   std::to_string(config_.streamBuffers));
        return;
    }
    streams_.clear();
    streams_.resize(static_cast<std::size_t>(nstreams));
    for (Stream &s : streams_) {
        s.lastUse = r.u64();
        s.head = static_cast<std::size_t>(r.u64());
        const std::uint64_t depth = r.u64();
        if (r.failed())
            return;
        if (depth > r.remaining() / 8 || s.head > depth) {
            r.fail(Errc::Corrupt,
                   config_.name + ": malformed stream buffer");
            return;
        }
        s.fifo.resize(static_cast<std::size_t>(depth));
        for (Addr &a : s.fifo)
            a = r.u64();
    }

    r.leaveSection();
}

bool
Cache::contains(Addr addr) const
{
    // findLine is logically const; use a const_cast shim.
    return const_cast<Cache *>(this)->findLine(blockAddr(addr)) !=
           nullptr;
}

} // namespace membw
