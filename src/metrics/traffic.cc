#include "metrics/traffic.hh"

#include "common/log.hh"

namespace membw {

double
trafficRatio(Bytes below, Bytes above)
{
    if (above == 0)
        fatal("traffic ratio undefined: no traffic above the cache");
    return static_cast<double>(below) / static_cast<double>(above);
}

double
trafficInefficiency(Bytes cacheTraffic, Bytes mtcTraffic)
{
    if (mtcTraffic == 0)
        fatal("traffic inefficiency undefined: MTC generated no "
              "traffic");
    return static_cast<double>(cacheTraffic) /
           static_cast<double>(mtcTraffic);
}

double
effectivePinBandwidth(double pinBandwidth,
                      std::span<const double> ratios)
{
    if (pinBandwidth <= 0.0)
        fatal("pin bandwidth must be positive");
    double product = 1.0;
    for (double r : ratios) {
        if (r <= 0.0)
            fatal("traffic ratios must be positive");
        product *= r;
    }
    return pinBandwidth / product;
}

double
optimalEffectivePinBandwidth(double pinBandwidth,
                             std::span<const double> ratios,
                             std::span<const double> gaps)
{
    double gap_product = 1.0;
    for (double g : gaps) {
        if (g <= 0.0)
            fatal("traffic inefficiencies must be positive");
        gap_product *= g;
    }
    return effectivePinBandwidth(pinBandwidth, ratios) * gap_product;
}

} // namespace membw
