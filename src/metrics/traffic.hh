/**
 * @file
 * Traffic-derived metrics: traffic ratio, traffic inefficiency,
 * effective pin bandwidth and its upper bound (Sections 4-5).
 */

#ifndef MEMBW_METRICS_TRAFFIC_HH
#define MEMBW_METRICS_TRAFFIC_HH

#include <span>

#include "common/types.hh"

namespace membw {

/** R_i = D_i / D_{i-1} (Equation 4). */
double trafficRatio(Bytes below, Bytes above);

/**
 * G_i = D_cache / D_MTC (Equation 6).  By definition >= 1 for a true
 * minimal-traffic reference; we clamp tiny numerical dips and return
 * the raw ratio otherwise.
 */
double trafficInefficiency(Bytes cacheTraffic, Bytes mtcTraffic);

/**
 * E_pin = B_pin / prod(R_i) (Equation 5).
 * @param pinBandwidth physical pin bandwidth (bytes/sec).
 * @param ratios per-level traffic ratios, processor-side first.
 */
double effectivePinBandwidth(double pinBandwidth,
                             std::span<const double> ratios);

/**
 * OE_pin = B_pin * prod(G_i) / prod(R_i) (Equation 7): the upper
 * bound on effective pin bandwidth reachable by perfect on-chip
 * memory management with the same processor reference stream.
 */
double optimalEffectivePinBandwidth(double pinBandwidth,
                                    std::span<const double> ratios,
                                    std::span<const double> gaps);

} // namespace membw

#endif // MEMBW_METRICS_TRAFFIC_HH
