#include "metrics/decomposition.hh"

#include "common/log.hh"

namespace membw {

double
Decomposition::fP() const
{
    return fullCycles ? static_cast<double>(perfectCycles) / fullCycles
                      : 0.0;
}

double
Decomposition::fL() const
{
    return fullCycles ? static_cast<double>(latencyStall()) / fullCycles
                      : 0.0;
}

double
Decomposition::fB() const
{
    return fullCycles
               ? static_cast<double>(bandwidthStall()) / fullCycles
               : 0.0;
}

Cycle
Decomposition::latencyStall() const
{
    return infiniteCycles >= perfectCycles
               ? infiniteCycles - perfectCycles
               : 0;
}

Cycle
Decomposition::bandwidthStall() const
{
    return fullCycles >= infiniteCycles ? fullCycles - infiniteCycles
                                        : 0;
}

bool
Decomposition::consistent() const
{
    return perfectCycles <= infiniteCycles &&
           infiniteCycles <= fullCycles;
}

Decomposition
decompose(Cycle perfect, Cycle infinite, Cycle full)
{
    Decomposition d;
    d.perfectCycles = perfect;
    d.infiniteCycles = infinite;
    d.fullCycles = full;
    if (!d.consistent())
        warnOnce("decomposition ordering violated (T_P <= T_I <= T)");
    return d;
}

} // namespace membw
