/**
 * @file
 * Execution-time decomposition into processing, latency, and
 * bandwidth components (Section 2, Equations 1-3).
 */

#ifndef MEMBW_METRICS_DECOMPOSITION_HH
#define MEMBW_METRICS_DECOMPOSITION_HH

#include "common/types.hh"

namespace membw {

/**
 * The paper's three-way split of a program's execution time.
 *
 *  - T_P: cycles with a perfect memory system (1-cycle accesses);
 *  - T_I: cycles with intrinsic latencies but infinitely wide paths;
 *  - T:   cycles on the full system.
 *
 * Then f_P = T_P/T, f_L = (T_I - T_P)/T, f_B = (T - T_I)/T.
 */
struct Decomposition
{
    Cycle perfectCycles = 0;  ///< T_P
    Cycle infiniteCycles = 0; ///< T_I
    Cycle fullCycles = 0;     ///< T

    double fP() const;
    double fL() const;
    double fB() const;

    /** Latency stall cycles T_L = T_I - T_P. */
    Cycle latencyStall() const;

    /** Bandwidth stall cycles T_B = T - T_I. */
    Cycle bandwidthStall() const;

    /** Check T_P <= T_I <= T; returns false on a violated identity. */
    bool consistent() const;
};

/** Build a decomposition from the three simulation runs' cycles. */
Decomposition decompose(Cycle perfect, Cycle infinite, Cycle full);

} // namespace membw

#endif // MEMBW_METRICS_DECOMPOSITION_HH
