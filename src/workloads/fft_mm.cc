/**
 * @file
 * FftMmKernel: the two Dnasa7 kernels the paper keeps (2-D FFT and a
 * 4-way unrolled matrix multiply).
 */

#include "workloads/kernels.hh"

#include "common/bitops.hh"
#include "common/rng.hh"

namespace membw {

Bytes
FftMmKernel::nominalDataSetBytes() const
{
    const Bytes fft = static_cast<Bytes>(params_.fftSide) *
                      params_.fftSide * 16; // double complex
    const Bytes mm =
        (static_cast<Bytes>(params_.mmM) * params_.mmK +
         static_cast<Bytes>(params_.mmK) * params_.mmN +
         static_cast<Bytes>(params_.mmM) * params_.mmN) *
        8; // doubles
    return fft + mm;
}

void
FftMmKernel::generate(TraceRecorder &recorder,
                      const WorkloadParams &wp) const
{
    Rng rng(wp.seed ^ 0xFF7);

    const unsigned n = params_.fftSide;
    const Region grid = recorder.allocate(
        "fftgrid",
        static_cast<Bytes>(n) * n * 16); // double-complex elements

    const Region ma = recorder.allocate(
        "mmA", static_cast<Bytes>(params_.mmM) * params_.mmK * 8);
    const Region mb = recorder.allocate(
        "mmB", static_cast<Bytes>(params_.mmK) * params_.mmN * 8);
    const Region mc = recorder.allocate(
        "mmC", static_cast<Bytes>(params_.mmM) * params_.mmN * 8);

    const auto target = static_cast<std::uint64_t>(
        static_cast<double>(params_.targetRefs) * wp.scale);
    std::uint64_t refs = 0;

    // Complex element i of row r: two doubles (re, im), QPT-split
    // into four word references.
    auto load_c = [&](unsigned r, unsigned i) {
        const Addr at =
            grid.base + (static_cast<Bytes>(r) * n + i) * 16;
        recorder.loadDouble(at);
        recorder.loadDouble(at + 8);
        refs += 4;
    };
    auto store_c = [&](unsigned r, unsigned i) {
        const Addr at =
            grid.base + (static_cast<Bytes>(r) * n + i) * 16;
        recorder.storeDouble(at);
        recorder.storeDouble(at + 8);
        refs += 4;
    };

    while (refs < target) {
        // ---- 2-D FFT: row FFTs then column FFTs ----
        // Row pass: log2(n) butterfly stages, strides n/2 .. 1.
        for (unsigned r = 0; r < n && refs < target; ++r) {
            for (unsigned stride = n / 2; stride >= 1; stride /= 2) {
                for (unsigned i = 0; i + stride < n; i += 2 * stride) {
                    for (unsigned j = i; j < i + stride; ++j) {
                        load_c(r, j);
                        load_c(r, j + stride);
                        recorder.compute(10); // complex twiddle+add
                        store_c(r, j);
                        store_c(r, j + stride);
                    }
                }
                recorder.branch(stride > 1);
                if (refs >= target)
                    break;
            }
        }
        // Column pass: same butterflies down columns (stride n in
        // memory -> poor spatial locality, the FFT's signature).
        for (unsigned c = 0; c < n && refs < target; ++c) {
            for (unsigned stride = n / 2; stride >= 1; stride /= 2) {
                for (unsigned i = 0; i + stride < n; i += 2 * stride) {
                    for (unsigned j = i; j < i + stride; ++j) {
                        load_c(j, c);
                        load_c(j + stride, c);
                        recorder.compute(10);
                        store_c(j, c);
                        store_c(j + stride, c);
                    }
                }
                recorder.branch(stride > 1);
                if (refs >= target)
                    break;
            }
        }

        // ---- 4-way unrolled matrix multiply C = A*B ----
        // Fortran column-major layout: the inner-k walk strides A by
        // a full column (M doubles), missing on every access in
        // caches smaller than A — the behaviour behind Dnasa2's
        // elevated small-cache traffic ratios.
        auto a_at = [&](unsigned i, unsigned k) {
            return ma.base + (static_cast<Bytes>(k) * params_.mmM + i) * 8;
        };
        auto b_at = [&](unsigned k, unsigned j) {
            return mb.base + (static_cast<Bytes>(j) * params_.mmK + k) * 8;
        };
        auto c_at = [&](unsigned i, unsigned j) {
            return mc.base + (static_cast<Bytes>(j) * params_.mmM + i) * 8;
        };

        for (unsigned i = 0; i < params_.mmM && refs < target; ++i) {
            for (unsigned j = 0; j < params_.mmN; j += 4) {
                // Accumulators live in registers; unrolled by 4 in j.
                for (unsigned k = 0; k < params_.mmK; ++k) {
                    recorder.loadDouble(a_at(i, k));
                    refs += 2;
                    for (unsigned u = 0; u < 4; ++u) {
                        recorder.loadDouble(b_at(k, j + u));
                        refs += 2;
                    }
                    recorder.compute(8); // 4 multiply-adds
                }
                for (unsigned u = 0; u < 4; ++u) {
                    recorder.storeDouble(c_at(i, j + u));
                    refs += 2;
                }
                recorder.branch(j + 4 < params_.mmN);
                if (refs >= target)
                    break;
            }
        }
        (void)rng;
    }
}

} // namespace membw
