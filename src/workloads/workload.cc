#include "workloads/workload.hh"

namespace membw {

WorkloadRun
Workload::run(const WorkloadParams &params) const
{
    TraceRecorder recorder;
    generate(recorder, params);
    WorkloadRun result;
    result.annotations = recorder.annotations();
    result.trace = recorder.takeTrace();
    return result;
}

Trace
Workload::trace(const WorkloadParams &params) const
{
    TraceRecorder recorder;
    generate(recorder, params);
    return recorder.takeTrace();
}

} // namespace membw
