/**
 * @file
 * Benchmark registry: instantiates the kernel families with the
 * per-benchmark parameters that reproduce Table 3's data-set sizes
 * and the reference-character notes of Sections 4.2/5.3.
 */

#include "workloads/workload.hh"

#include "common/log.hh"
#include "workloads/kernels.hh"

namespace membw {

std::unique_ptr<Workload>
makeWorkload(const std::string &name)
{
    // ---------------- SPEC92 (trace studies + timing) ----------------
    if (name == "Compress") {
        // 0.41MB hash tables; near-random probes, no spatial locality.
        HashTableKernel::Params p;
        p.name = "Compress";
        p.tableBytes = 276_KiB;
        p.auxBytes = 138_KiB;
        p.textBytes = 16_KiB;
        p.reuseProb = 0.95;
        return std::make_unique<HashTableKernel>(p);
    }
    if (name == "Dnasa2") {
        // 0.18MB: 64x64 complex FFT + 128x64x64 unrolled MM.
        FftMmKernel::Params p;
        p.name = "Dnasa2";
        return std::make_unique<FftMmKernel>(p);
    }
    if (name == "Eqntott") {
        // 1.63MB: 8192 rows x 44 words + index + write-once output.
        BitVectorSortKernel::Params p;
        p.name = "Eqntott";
        return std::make_unique<BitVectorSortKernel>(p);
    }
    if (name == "Espresso") {
        // 0.04MB working set: cache-resident from 64KB up.
        SmallSetKernel::Params p;
        p.name = "Espresso";
        return std::make_unique<SmallSetKernel>(p);
    }
    if (name == "Su2cor") {
        // 1.53MB: six 256KB arrays colliding below 64KB caches.
        ConflictArrayKernel::Params p;
        p.name = "Su2cor";
        p.arrays = 6;
        p.arrayBytes = 256_KiB;
        // 16KB spacing: conflicts in every DM cache up to 32KB, gone
        // at 64KB, as Section 4.2 describes for Su2cor.
        p.conflictSpacing = 16_KiB;
        return std::make_unique<ConflictArrayKernel>(p);
    }
    if (name == "Swm") {
        // 0.93MB: seven 180x180 single-precision grids, streaming.
        StreamStencilKernel::Params p;
        p.name = "Swm";
        p.rows = 180;
        p.cols = 180;
        p.arrays = 7;
        p.elemBytes = 4;
        p.computePerPoint = 24;
        return std::make_unique<StreamStencilKernel>(p);
    }
    if (name == "Tomcatv") {
        // 3.67MB: seven 256x256 double-precision mesh arrays.
        StreamStencilKernel::Params p;
        p.name = "Tomcatv";
        // The real Tomcatv uses 257x257 arrays; the odd row length
        // (2056B) avoids pathological power-of-two row aliasing.
        p.rows = 257;
        p.cols = 257;
        p.arrays = 7;
        p.elemBytes = 8;
        p.computePerPoint = 48;
        return std::make_unique<StreamStencilKernel>(p);
    }

    // ---------------- SPEC95 (timing studies, Figure 3) --------------
    if (name == "Applu") {
        // 32.4MB: ten 640x640 double grids, wide-stencil SSOR-like.
        StreamStencilKernel::Params p;
        p.name = "Applu";
        p.rows = 640;
        p.cols = 641; // odd row length: no row aliasing
        p.arrays = 10;
        p.elemBytes = 8;
        p.readsPerPoint = 4;
        p.writesPerPoint = 2;
        p.computePerPoint = 32;
        p.targetRefs = 1'600'000;
        return std::make_unique<StreamStencilKernel>(p);
    }
    if (name == "Hydro2d") {
        // 8.7MB: ten 330x330 double grids.
        StreamStencilKernel::Params p;
        p.name = "Hydro2d";
        p.rows = 330;
        p.cols = 330;
        p.arrays = 10;
        p.elemBytes = 8;
        p.readsPerPoint = 4;
        p.writesPerPoint = 2;
        p.computePerPoint = 32;
        return std::make_unique<StreamStencilKernel>(p);
    }
    if (name == "Li") {
        // 0.12MB cons pool; pointer chasing + GC sweeps.
        PointerChaseKernel::Params p;
        p.name = "Li";
        return std::make_unique<PointerChaseKernel>(p);
    }
    if (name == "Perl") {
        // 25.7MB: 12MB hash + 12MB string heap + code tables.
        HashTableKernel::Params p;
        p.name = "Perl";
        p.tableBytes = 12_MiB;
        p.auxBytes = 2_MiB;
        p.textBytes = 64_KiB;
        p.insertRate = 0.25;
        p.stringScanRate = 0.5;
        p.scanWords = 12;
        p.targetRefs = 1'600'000;
        return std::make_unique<HashTableKernel>(p);
    }
    if (name == "Su2cor95") {
        // 22.5MB: eleven 2MB arrays, conflicts below 64KB.
        ConflictArrayKernel::Params p;
        p.name = "Su2cor95";
        p.arrays = 11;
        p.arrayBytes = 2_MiB;
        p.conflictSpacing = 64_KiB;
        p.targetRefs = 1'600'000;
        return std::make_unique<ConflictArrayKernel>(p);
    }
    if (name == "Swim") {
        // 14.5MB: fourteen 512x512 single-precision grids.
        StreamStencilKernel::Params p;
        p.name = "Swim";
        p.rows = 512;
        p.cols = 512;
        p.arrays = 14;
        p.elemBytes = 4;
        p.computePerPoint = 24;
        p.targetRefs = 1'600'000;
        return std::make_unique<StreamStencilKernel>(p);
    }
    if (name == "Vortex") {
        // 19.9MB record heap + index; transactional lookups.
        ObjectDbKernel::Params p;
        p.name = "Vortex";
        return std::make_unique<ObjectDbKernel>(p);
    }

    fatal("unknown workload '" + name + "'");
}

std::vector<std::string>
spec92Names()
{
    return {"Compress", "Dnasa2", "Eqntott", "Espresso",
            "Su2cor",   "Swm",    "Tomcatv"};
}

std::vector<std::string>
spec95Names()
{
    return {"Applu", "Hydro2d", "Li", "Perl",
            "Su2cor95", "Swim", "Vortex"};
}

Bytes
codeFootprintBytes(const std::string &name)
{
    if (name == "Perl")
        return 192_KiB;
    if (name == "Vortex")
        return 320_KiB;
    if (name == "Li")
        return 32_KiB;
    if (name == "Espresso")
        return 48_KiB;
    if (name == "Eqntott" || name == "Compress")
        return 24_KiB;
    // Loop-dominated FP kernels: small hot code.
    return 16_KiB;
}

std::vector<std::string>
allWorkloadNames()
{
    auto names = spec92Names();
    for (auto &n : spec95Names())
        names.push_back(n);
    return names;
}

} // namespace membw
