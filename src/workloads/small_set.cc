/**
 * @file
 * SmallSetKernel: Espresso-like logic-minimization loops over a tiny,
 * hot working set.
 */

#include "workloads/kernels.hh"

#include <algorithm>

#include "common/rng.hh"

namespace membw {

Bytes
SmallSetKernel::nominalDataSetBytes() const
{
    return params_.cubeBytes + params_.coverBytes;
}

void
SmallSetKernel::generate(TraceRecorder &recorder,
                         const WorkloadParams &wp) const
{
    Rng rng(wp.seed ^ 0xE59);

    const Region cube = recorder.allocate("cube", params_.cubeBytes);
    const Region cover = recorder.allocate("cover", params_.coverBytes);

    const std::size_t cube_words = cube.words();
    const std::size_t cover_words = cover.words();
    const std::size_t row_words = 16;
    const std::size_t cube_rows = cube_words / row_words;
    const std::size_t hot_rows =
        std::max<std::size_t>(1, params_.hotBytes /
                                     (row_words * wordBytes));
    const auto target = static_cast<std::uint64_t>(
        static_cast<double>(params_.targetRefs) * wp.scale);

    std::uint64_t refs = 0;
    std::size_t hot_base = 0; ///< drifting active-region origin
    std::uint64_t iter = 0;

    while (refs < target) {
        // Pick a cube row from the hot, slowly drifting region.
        const std::size_t row =
            ((hot_base + rng.below(hot_rows)) % cube_rows) * row_words;

        // Sweep it testing cube containment: high reuse, unit stride.
        for (std::size_t w = 0; w < row_words && refs < target; ++w) {
            recorder.load(cube.word(row + w));
            ++refs;
            recorder.compute(2);
        }
        recorder.branch(rng.chance(0.6)); // containment outcome

        // Update a small, hot slice of the cover set.
        const std::size_t cover_base =
            (hot_base * 4) % (cover_words - 8);
        for (unsigned u = 0; u < 3 && refs < target; ++u) {
            const std::size_t c = cover_base + rng.below(8);
            recorder.load(cover.word(c));
            ++refs;
            recorder.compute(1);
            if (rng.chance(0.5)) {
                recorder.store(cover.word(c));
                ++refs;
            }
            recorder.branch(u == 2);
        }

        // Rare irregular excursion (sharp/complement operations).
        if (rng.chance(params_.randomTouch)) {
            const std::size_t w = rng.below(cube_words);
            recorder.load(cube.word(w));
            recorder.store(cube.word(w));
            refs += 2;
        }

        // Drift the hot region slowly across the data set.
        if (++iter % 2048 == 0)
            hot_base = (hot_base + hot_rows / 8) % cube_rows;
    }
}

} // namespace membw
