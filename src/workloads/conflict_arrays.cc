/**
 * @file
 * ConflictArrayKernel: interleaved windowed sweeps over large arrays
 * whose bases are staggered so they collide in small direct-mapped
 * caches (Su2cor's behaviour in Table 7).
 */

#include "workloads/kernels.hh"

#include <vector>

#include "common/bitops.hh"
#include "common/log.hh"
#include "common/rng.hh"

namespace membw {

Bytes
ConflictArrayKernel::nominalDataSetBytes() const
{
    return static_cast<Bytes>(params_.arrays) * params_.arrayBytes;
}

void
ConflictArrayKernel::generate(TraceRecorder &recorder,
                              const WorkloadParams &wp) const
{
    if (!isPowerOfTwo(params_.conflictSpacing))
        fatal(name() + ": conflict spacing must be a power of two");
    if (params_.elemBytes != 4 && params_.elemBytes != 8)
        fatal(name() + ": element size must be 4 or 8 bytes");

    Rng rng(wp.seed ^ 0x52C0B1ull);

    if (params_.arrayBytes % params_.conflictSpacing != 0)
        fatal(name() + ": array size must be a spacing multiple");

    // With arrayBytes a multiple of the spacing, the recorder's
    // inter-region pad plus spacing alignment staggers consecutive
    // bases by exactly one spacing unit: the four arrays of a phase
    // occupy distinct offsets 0/1/2/3 * spacing modulo 4*spacing,
    // colliding pairwise in DM caches <= 2*spacing and not at
    // >= 4*spacing.
    std::vector<Region> arrays;
    for (unsigned a = 0; a < params_.arrays; ++a) {
        arrays.push_back(recorder.allocate(
            "array" + std::to_string(a), params_.arrayBytes,
            params_.conflictSpacing));
    }

    const std::size_t elems = params_.arrayBytes / params_.elemBytes;
    const std::size_t window_elems =
        params_.sweepWindowBytes / params_.elemBytes;
    const auto target = static_cast<std::uint64_t>(
        static_cast<double>(params_.targetRefs) * wp.scale);

    auto load_elem = [&](const Region &g, std::size_t i) {
        const Addr addr = g.base + i * params_.elemBytes;
        if (params_.elemBytes == 8)
            recorder.loadDouble(addr);
        else
            recorder.load(addr);
        return params_.elemBytes / wordBytes;
    };
    auto store_elem = [&](const Region &g, std::size_t i) {
        const Addr addr = g.base + i * params_.elemBytes;
        if (params_.elemBytes == 8)
            recorder.storeDouble(addr);
        else
            recorder.store(addr);
        return params_.elemBytes / wordBytes;
    };

    std::uint64_t refs = 0;
    unsigned phase = 0;
    std::size_t window_start = 0;

    while (refs < target) {
        const bool strided = rng.uniform() < params_.stridedFraction;
        const std::size_t stride = strided ? params_.gatherStride : 1;

        // Gauge-field-style update: d[i] = f(a[i], b[i], c[i]) over a
        // rotating window.  Consecutive phases reuse three of the
        // four arrays and most of the window.
        const Region &a = arrays[phase % params_.arrays];
        const Region &b = arrays[(phase + 1) % params_.arrays];
        const Region &c = arrays[(phase + 2) % params_.arrays];
        const Region &d = arrays[(phase + 3) % params_.arrays];

        const std::size_t lo = window_start;
        const std::size_t hi =
            std::min(lo + window_elems, elems);

        for (std::size_t i = lo; i < hi && refs < target;
             i += stride) {
            refs += load_elem(a, i);
            refs += load_elem(b, i);
            refs += load_elem(c, i);
            recorder.compute(params_.computePerElem);
            refs += store_elem(d, i);
            recorder.branch(true);
        }
        recorder.branch(rng.chance(0.85));

        ++phase;
        // Slide the window every full rotation of the arrays.
        if (phase % params_.arrays == 0) {
            window_start += window_elems / 2;
            if (window_start + window_elems > elems)
                window_start = 0;
        }
    }
}

} // namespace membw
