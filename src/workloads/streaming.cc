/**
 * @file
 * StreamStencilKernel: Jacobi-style sweeps over large 2-D arrays.
 */

#include "workloads/kernels.hh"

#include <vector>

#include "common/log.hh"
#include "common/rng.hh"

namespace membw {

Bytes
StreamStencilKernel::nominalDataSetBytes() const
{
    return static_cast<Bytes>(params_.rows) * params_.cols *
           params_.elemBytes * params_.arrays;
}

void
StreamStencilKernel::generate(TraceRecorder &recorder,
                              const WorkloadParams &wp) const
{
    if (params_.readsPerPoint + params_.writesPerPoint > params_.arrays)
        fatal(name() + ": more arrays touched per point than exist");
    if (params_.elemBytes != 4 && params_.elemBytes != 8)
        fatal(name() + ": element size must be 4 or 8 bytes");

    Rng rng(wp.seed ^ 0x57E4C11);

    std::vector<Region> grids;
    for (unsigned a = 0; a < params_.arrays; ++a) {
        grids.push_back(recorder.allocate(
            "grid" + std::to_string(a),
            static_cast<Bytes>(params_.rows) * params_.cols *
                params_.elemBytes,
            params_.baseAlign));
    }

    const auto target = static_cast<std::uint64_t>(
        static_cast<double>(params_.targetRefs) * wp.scale);

    auto elem_addr = [&](const Region &g, unsigned r, unsigned c) {
        return g.base +
               (static_cast<Bytes>(r) * params_.cols + c) *
                   params_.elemBytes;
    };
    auto load_elem = [&](const Region &g, unsigned r, unsigned c) {
        if (params_.elemBytes == 8)
            recorder.loadDouble(elem_addr(g, r, c));
        else
            recorder.load(elem_addr(g, r, c));
        return params_.elemBytes / wordBytes;
    };
    auto store_elem = [&](const Region &g, unsigned r, unsigned c) {
        if (params_.elemBytes == 8)
            recorder.storeDouble(elem_addr(g, r, c));
        else
            recorder.store(elem_addr(g, r, c));
        return params_.elemBytes / wordBytes;
    };

    std::uint64_t refs = 0;
    unsigned sweep = 0;
    while (refs < target) {
        // Rotate which arrays are read vs written each sweep, as the
        // real codes do across their half-step phases.
        const unsigned rot = sweep % params_.arrays;

        for (unsigned r = 1; r + 1 < params_.rows && refs < target;
             ++r) {
            for (unsigned c = 1; c + 1 < params_.cols; ++c) {
                // Read phase: center (+ neighbours for the first
                // array) of readsPerPoint arrays.
                for (unsigned a = 0; a < params_.readsPerPoint; ++a) {
                    const Region &g =
                        grids[(rot + a) % params_.arrays];
                    refs += load_elem(g, r, c);
                    if (params_.neighborStencil && a == 0) {
                        refs += load_elem(g, r - 1, c);
                        refs += load_elem(g, r + 1, c);
                        refs += load_elem(g, r, c - 1);
                        refs += load_elem(g, r, c + 1);
                    }
                }
                recorder.compute(params_.computePerPoint);

                // Write phase.
                for (unsigned a = 0; a < params_.writesPerPoint; ++a) {
                    const Region &g =
                        grids[(rot + params_.readsPerPoint + a) %
                              params_.arrays];
                    refs += store_elem(g, r, c);
                }
                // Inner-loop back edge: a well-predicted taken
                // branch per point, as compiled loops have.
                recorder.branch(c + 2 < params_.cols);
            }
        }
        recorder.branch(rng.chance(0.9)); // convergence test
        ++sweep;
    }
}

} // namespace membw
