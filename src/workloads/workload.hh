/**
 * @file
 * Synthetic workload kernels standing in for the paper's SPEC92/95
 * traces (see DESIGN.md, substitution table).
 *
 * Each kernel *executes* an algorithm with the same reference
 * character as its SPEC namesake — hash probing for Compress,
 * streaming array sweeps for Swm, pointer chasing for Li, and so on —
 * and records its data references through a TraceRecorder.  Nominal
 * data-set sizes match Table 3 so the `<<<` (cache exceeds data set)
 * boundaries of Tables 7/8 land in the same columns.
 */

#ifndef MEMBW_WORKLOADS_WORKLOAD_HH
#define MEMBW_WORKLOADS_WORKLOAD_HH

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/types.hh"
#include "trace/recorder.hh"
#include "trace/trace.hh"

namespace membw {

/** Generation knobs common to all kernels. */
struct WorkloadParams
{
    /**
     * Reference-count scale.  1.0 targets roughly 1-2 million data
     * references per kernel (tables remain shape-accurate at this
     * length); raise it for longer traces.
     */
    double scale = 1.0;

    /** RNG seed; generation is fully deterministic given the seed. */
    std::uint64_t seed = 42;
};

/** Trace plus instruction-stream annotations from one generation. */
struct WorkloadRun
{
    Trace trace;
    std::vector<TraceRecorder::Annotation> annotations;
};

/** Abstract workload kernel. */
class Workload
{
  public:
    virtual ~Workload() = default;

    /** Benchmark name as used in the paper's tables. */
    virtual std::string name() const = 0;

    /** Nominal data-set size (Table 3), before any scaling. */
    virtual Bytes nominalDataSetBytes() const = 0;

    /** Execute the kernel, recording into @p recorder. */
    virtual void generate(TraceRecorder &recorder,
                          const WorkloadParams &params) const = 0;

    /** Convenience: generate into a fresh recorder, return the run. */
    WorkloadRun run(const WorkloadParams &params = {}) const;

    /** Convenience: generate and keep only the memory trace. */
    Trace trace(const WorkloadParams &params = {}) const;
};

/** Factory: build a kernel by paper name; fatal() if unknown. */
std::unique_ptr<Workload> makeWorkload(const std::string &name);

/** The seven SPEC92 benchmarks of Tables 3/7/8 (trace studies). */
std::vector<std::string> spec92Names();

/** The seven SPEC95 benchmarks of Figure 3's lower panel. */
std::vector<std::string> spec95Names();

/** Every registered kernel name. */
std::vector<std::string> allWorkloadNames();

/**
 * Approximate static code footprint for a benchmark (used by the
 * timing model's synthetic I-fetch stream).  Loop-dominated FP codes
 * have small hot code; the big integer codes (Perl, Vortex) have the
 * large I-footprints that made their I-caches work for a living.
 */
Bytes codeFootprintBytes(const std::string &name);

} // namespace membw

#endif // MEMBW_WORKLOADS_WORKLOAD_HH
