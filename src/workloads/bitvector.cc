/**
 * @file
 * BitVectorSortKernel: truth-table row quicksort plus write-once
 * output generation (Eqntott).
 */

#include "workloads/kernels.hh"

#include <utility>
#include <vector>

#include "common/rng.hh"

namespace membw {

Bytes
BitVectorSortKernel::nominalDataSetBytes() const
{
    return static_cast<Bytes>(params_.rowCount) * params_.rowWords *
               wordBytes +
           params_.rowCount * wordBytes + // index array
           params_.outputBytes;
}

void
BitVectorSortKernel::generate(TraceRecorder &recorder,
                              const WorkloadParams &wp) const
{
    Rng rng(wp.seed ^ 0xE0707);

    const Region rows = recorder.allocate(
        "rows",
        static_cast<Bytes>(params_.rowCount) * params_.rowWords *
            wordBytes);
    const Region index = recorder.allocate(
        "index", static_cast<Bytes>(params_.rowCount) * wordBytes);
    const Region output =
        recorder.allocate("output", params_.outputBytes);

    const auto target = static_cast<std::uint64_t>(
        static_cast<double>(params_.targetRefs) * wp.scale);
    std::uint64_t refs = 0;

    auto row_word = [&](std::uint64_t row, unsigned w) {
        return rows.word(row * params_.rowWords + w);
    };

    // cmppt-style comparison: scan both rows until they differ.
    // Short sequential bursts with an early exit.
    auto compare = [&](std::uint64_t r1, std::uint64_t r2) {
        const unsigned len = static_cast<unsigned>(
            rng.burst(3.0, params_.rowWords));
        for (unsigned w = 0; w < len && refs < target; ++w) {
            recorder.load(row_word(r1, w));
            recorder.load(row_word(r2, w));
            refs += 2;
            recorder.compute(2);
            recorder.branch(w + 1 < len); // differ -> exit
        }
    };

    std::uint64_t out_pos = 0;
    const std::uint64_t out_words = output.words();

    // Recursive quicksort over the row-index array, emulated with an
    // explicit range stack.  Recursion revisits the same subranges at
    // geometrically shrinking scales — the source of Eqntott's
    // gradual traffic-ratio decline across cache sizes.
    std::vector<std::pair<std::uint32_t, std::uint32_t>> stack;

    while (refs < target) {
        stack.clear();
        stack.push_back({0, params_.rowCount});

        while (!stack.empty() && refs < target) {
            auto [lo, hi] = stack.back();
            stack.pop_back();
            if (hi - lo < 8) {
                // Insertion-sort leaf: adjacent compares + stores.
                for (std::uint32_t i = lo + 1;
                     i < hi && refs < target; ++i) {
                    recorder.load(index.word(i));
                    ++refs;
                    compare(i - 1, i);
                    recorder.store(index.word(i));
                    ++refs;
                }
                continue;
            }

            // Lomuto partition against the range's middle row.
            const std::uint32_t pivot = lo + (hi - lo) / 2;
            for (std::uint32_t i = lo; i < hi && refs < target; ++i) {
                recorder.load(index.word(i));
                ++refs;
                compare(i, pivot);
                if (rng.chance(0.45)) {
                    recorder.store(index.word(i));
                    ++refs;
                }
            }
            const std::uint32_t mid = lo + (hi - lo) / 2;
            stack.push_back({lo, mid});
            stack.push_back({mid, hi});

            // Interleave write-once output generation (PLA table
            // emission).  These stores hit fresh memory that is never
            // read back: a fetch-on-write cache wastes a whole block
            // fill per miss — the write-validate factor of Table 9.
            const std::uint64_t burst = 32 + rng.below(96);
            for (std::uint64_t w = 0; w < burst && refs < target;
                 ++w) {
                recorder.store(output.word(out_pos));
                ++refs;
                out_pos = (out_pos + 1) % out_words;
            }
            recorder.compute(8);
            recorder.branch(rng.chance(0.7));
        }
    }
}

} // namespace membw
