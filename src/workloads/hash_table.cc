/**
 * @file
 * HashTableKernel: LZW-style compressor / string-hash interpreter.
 */

#include "workloads/kernels.hh"

#include <cmath>
#include <vector>

#include "common/rng.hh"

namespace membw {

Bytes
HashTableKernel::nominalDataSetBytes() const
{
    return params_.tableBytes + params_.auxBytes + params_.textBytes +
           (params_.stringScanRate > 0.0 ? params_.tableBytes : 0);
}

void
HashTableKernel::generate(TraceRecorder &recorder,
                          const WorkloadParams &wp) const
{
    Rng rng(wp.seed ^ 0xC0115EED);

    const Region htab = recorder.allocate("htab", params_.tableBytes);
    const Region codetab = recorder.allocate("codetab", params_.auxBytes);
    const Region text = recorder.allocate("text", params_.textBytes);
    const Region strings =
        params_.stringScanRate > 0.0
            ? recorder.allocate("strings", params_.tableBytes)
            : Region{};

    const std::size_t table_words = htab.words();
    const std::size_t code_words = codetab.words();
    const std::size_t text_words = text.words();

    const auto target = static_cast<std::uint64_t>(
        static_cast<double>(params_.targetRefs) * wp.scale);

    // Reuse-distance machinery: a ring of recently probed slots.
    // Re-references draw a log-uniform distance into the past, so
    // each doubling of cache size captures roughly equal additional
    // probe mass (the near-linear-per-octave decline of Table 7).
    std::vector<std::uint32_t> history;
    history.reserve(1 << 15);
    std::size_t history_head = 0;
    const std::size_t history_cap = 1 << 15;
    const double log_cap = std::log(static_cast<double>(history_cap));

    auto remember = [&](std::size_t slot) {
        if (history.size() < history_cap) {
            history.push_back(static_cast<std::uint32_t>(slot));
        } else {
            history[history_head] = static_cast<std::uint32_t>(slot);
            history_head = (history_head + 1) % history_cap;
        }
    };

    auto next_slot = [&]() -> std::size_t {
        if (!history.empty() && rng.chance(params_.reuseProb)) {
            const double d = std::exp(rng.uniform() * log_cap);
            auto dist = static_cast<std::size_t>(d);
            if (dist >= history.size())
                dist = history.size() - 1;
            const std::size_t pos =
                (history_head + history.size() - 1 - dist) %
                history.size();
            const std::size_t slot = history[pos];
            remember(slot);
            return slot;
        }
        // Fresh probe: scatter a new rank across the table.
        const std::size_t slot =
            (rng.below(table_words) * 2654435761ULL) % table_words;
        remember(slot);
        return slot;
    };

    std::size_t text_pos = 0;
    std::uint64_t refs = 0;

    while (refs < target) {
        // Stream one input word (4 symbols worth), sequentially.
        recorder.load(text.word(text_pos));
        ++refs;
        text_pos = (text_pos + 1) % text_words;
        recorder.compute(2); // unpack symbol, form <prefix,symbol> key

        // Primary hash probe.
        std::size_t h = next_slot();
        recorder.loadDependent(htab.word(h));
        ++refs;
        recorder.compute(3); // compare fcode

        const bool hit = rng.chance(0.6);
        recorder.branch(hit);
        if (hit) {
            // Chain match: read the code table entry.
            recorder.load(codetab.word(h % code_words));
            ++refs;
            recorder.compute(1);
            continue;
        }

        // Secondary probing (open addressing with rehash
        // displacement).  Displaced slots inherit the temporal skew.
        unsigned probes = static_cast<unsigned>(rng.burst(1.3, 3));
        for (unsigned p = 0; p < probes && refs < target; ++p) {
            h = (h + (table_words >> 4) + 1) % table_words;
            remember(h);
            recorder.loadDependent(htab.word(h));
            ++refs;
            recorder.compute(2);
            recorder.branch(p + 1 == probes);
        }

        // Insert a new code with probability insertRate.
        if (rng.chance(params_.insertRate)) {
            recorder.store(htab.word(h));
            recorder.store(codetab.word(h % code_words));
            refs += 2;
            recorder.compute(2);
        }

        // Perl-style payload: scan a value string sequentially.
        if (params_.stringScanRate > 0.0 &&
            rng.chance(params_.stringScanRate)) {
            const std::size_t base =
                rng.below(strings.words() - params_.scanWords);
            for (unsigned w = 0; w < params_.scanWords; ++w) {
                recorder.load(strings.word(base + w));
                ++refs;
            }
            recorder.compute(params_.scanWords);
            recorder.branch(true);
        }
    }
}

} // namespace membw
