/**
 * @file
 * PointerChaseKernel: cons-cell interpreter with mark-and-sweep GC
 * (Li).
 */

#include "workloads/kernels.hh"

#include <algorithm>
#include <vector>

#include "common/rng.hh"

namespace membw {

namespace {
constexpr Bytes cellBytes = 8; // car word + cdr word
} // namespace

Bytes
PointerChaseKernel::nominalDataSetBytes() const
{
    return params_.poolBytes;
}

void
PointerChaseKernel::generate(TraceRecorder &recorder,
                             const WorkloadParams &wp) const
{
    Rng rng(wp.seed ^ 0x115B);

    const Region pool = recorder.allocate("cells", params_.poolBytes);
    const std::size_t cells = params_.poolBytes / cellBytes;

    // Host-side model of the cdr graph; the *simulated* machine still
    // performs a load for every pointer dereference.  Links are
    // locality-biased, as in real heaps where cons cells allocated
    // together point at each other: mostly within a 2K-cell segment,
    // occasionally across the pool.
    // Link mix: mostly within the allocation segment, a good share
    // back into the hot young-generation end (chains drift back to
    // hot data, as interpreter structures do), rarely anywhere.
    const std::size_t segment = std::min<std::size_t>(cells, 2048);
    const std::size_t hot_cells = std::max<std::size_t>(1, cells / 3);
    std::vector<std::uint32_t> cdr(cells);
    for (std::size_t i = 0; i < cells; ++i) {
        const double u = rng.uniform();
        if (u < 0.75) {
            const std::size_t seg_base = (i / segment) * segment;
            const std::size_t seg_len =
                std::min(segment, cells - seg_base);
            cdr[i] = static_cast<std::uint32_t>(
                seg_base + rng.below(seg_len));
        } else if (u < 0.99) {
            cdr[i] =
                static_cast<std::uint32_t>(rng.below(hot_cells));
        } else {
            cdr[i] = static_cast<std::uint32_t>(rng.below(cells));
        }
    }

    auto car_addr = [&](std::size_t c) {
        return pool.base + c * cellBytes;
    };
    auto cdr_addr = [&](std::size_t c) {
        return pool.base + c * cellBytes + wordBytes;
    };

    const auto target = static_cast<std::uint64_t>(
        static_cast<double>(params_.targetRefs) * wp.scale);
    std::uint64_t refs = 0;
    std::size_t alloc_cursor = 0;
    std::uint64_t traversals = 0;

    while (refs < target) {
        // eval() walk: chase a list, touching car and cdr of each
        // cell.  The next cell depends on the loaded cdr — a serial
        // dependence chain with a data-dependent exit branch.
        // Traversals mostly start in the hot young-generation end of
        // the pool, as interpreter workloads do.
        std::size_t cell = rng.chance(0.95) ? rng.below(hot_cells)
                                            : rng.below(cells);
        const unsigned len = static_cast<unsigned>(
            rng.burst(static_cast<double>(params_.listLength), 256));
        for (unsigned step = 0; step < len && refs < target; ++step) {
            recorder.loadDependent(car_addr(cell));
            recorder.compute(2); // type dispatch
            recorder.branch(step + 1 < len);
            recorder.loadDependent(cdr_addr(cell));
            refs += 2;
            cell = cdr[cell];

            // cons: allocate and initialize a fresh cell.
            if (rng.chance(params_.allocRate)) {
                alloc_cursor = (alloc_cursor + 1) % cells;
                recorder.store(car_addr(alloc_cursor));
                recorder.store(cdr_addr(alloc_cursor));
                cdr[alloc_cursor] =
                    static_cast<std::uint32_t>(rng.below(cells));
                refs += 2;
                recorder.compute(1);
            }
        }

        // Periodic mark-and-sweep: sequential sweep of the pool.
        if (++traversals % params_.gcPeriod == 0) {
            for (std::size_t c = 0; c < cells && refs < target; ++c) {
                recorder.load(car_addr(c));
                ++refs;
                recorder.compute(1);
                recorder.branch(rng.chance(0.8)); // marked?
                if (rng.chance(0.1)) {
                    recorder.store(cdr_addr(c)); // free-list link
                    ++refs;
                }
            }
        }
    }
}

} // namespace membw
