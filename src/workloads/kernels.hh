/**
 * @file
 * The parameterized kernel families behind the named benchmarks.
 *
 * Eight distinct generator families cover the fourteen benchmark
 * names (Table 3): each family is a real algorithm whose memory
 * behaviour class matches its SPEC namesakes.  The registry
 * (registry.cc) instantiates them with per-benchmark parameters.
 */

#ifndef MEMBW_WORKLOADS_KERNELS_HH
#define MEMBW_WORKLOADS_KERNELS_HH

#include <cstdint>
#include <string>

#include "workloads/workload.hh"

namespace membw {

/**
 * LZW-style hash-table compressor (Compress, Perl).
 *
 * Streams input symbols and probes/open-addresses a large hash
 * table.  Probes land pseudo-randomly across the table, so the
 * reference stream has almost no spatial locality — the behaviour
 * that makes Compress generate *more* traffic with a cache than
 * without one for blocks > 1 word (Section 4.2).
 */
class HashTableKernel : public Workload
{
  public:
    struct Params
    {
        std::string name = "Compress";
        Bytes tableBytes = 276_KiB;  ///< main hash table
        Bytes auxBytes = 138_KiB;    ///< secondary (code) table
        Bytes textBytes = 64_KiB;    ///< streamed input window
        double insertRate = 0.35;    ///< fraction of probes that insert
        /**
         * Probability that a probe re-references a previously probed
         * slot.  Reuse distances are drawn log-uniformly, giving the
         * gradual miss-rate improvement per cache-size doubling that
         * Compress shows in Table 7.  Slots are scattered in memory,
         * so the reuse is purely temporal (no spatial locality).
         */
        double reuseProb = 0.85;
        double stringScanRate = 0.0; ///< Perl: sequential value scans
        unsigned scanWords = 8;      ///< words per string scan
        std::uint64_t targetRefs = 1'400'000;
    };

    explicit HashTableKernel(Params params) : params_(std::move(params)) {}

    std::string name() const override { return params_.name; }
    Bytes nominalDataSetBytes() const override;
    void generate(TraceRecorder &recorder,
                  const WorkloadParams &wp) const override;

  private:
    Params params_;
};

/**
 * Multi-array grid sweeps (Swm, Tomcatv, Hydro2d, Swim95).
 *
 * Jacobi-style stencil passes over a set of 2-D arrays: unit-stride
 * inner loops (good spatial locality) over a working set far larger
 * than the cache (no temporal locality between sweeps) — the
 * flat-traffic-ratio streaming behaviour of Swm/Tomcatv [36].
 */
class StreamStencilKernel : public Workload
{
  public:
    struct Params
    {
        std::string name = "Swm";
        unsigned rows = 180;
        unsigned cols = 180;
        unsigned arrays = 7;        ///< number of grid arrays
        Bytes elemBytes = 4;        ///< 8 => QPT double-word splits
        unsigned readsPerPoint = 3; ///< arrays read at each point
        unsigned writesPerPoint = 1;///< arrays written at each point
        bool neighborStencil = true;///< read N/S/E/W neighbours too
        unsigned computePerPoint = 8;
        /**
         * Grid base alignment.  1KB alignment makes corresponding
         * elements of the different grids collide in direct-mapped
         * caches of a few KB — the small-cache thrash that gives Swm
         * its R of ~5.8 at 1KB in Table 7.
         */
        Bytes baseAlign = 1_KiB;
        std::uint64_t targetRefs = 1'400'000;
    };

    explicit StreamStencilKernel(Params params)
        : params_(std::move(params)) {}

    std::string name() const override { return params_.name; }
    Bytes nominalDataSetBytes() const override;
    void generate(TraceRecorder &recorder,
                  const WorkloadParams &wp) const override;

  private:
    Params params_;
};

/**
 * Conflicting large-array iteration (Su2cor 92/95, Applu).
 *
 * Interleaves gather/update sweeps over several arrays deliberately
 * placed at power-of-two spacing, so corresponding elements collide
 * in direct-mapped caches below a configurable size — Su2cor's
 * "conflict heavily ... until the cache size reaches 64KB".
 */
class ConflictArrayKernel : public Workload
{
  public:
    struct Params
    {
        std::string name = "Su2cor";
        unsigned arrays = 6;
        Bytes arrayBytes = 256_KiB;
        /**
         * Base-address stagger.  Array i is placed at offset
         * (i % 4) * conflictSpacing modulo 4*conflictSpacing, so the
         * four arrays of any phase collide pairwise in direct-mapped
         * caches up to 2*conflictSpacing and stop colliding at
         * 4*conflictSpacing (Su2cor's "conflict ... until 64KB").
         */
        Bytes conflictSpacing = 16_KiB;
        Bytes elemBytes = 8;            ///< doubles, QPT-split
        unsigned gatherStride = 8;      ///< words, strided phase
        double stridedFraction = 0.35;  ///< strided vs unit sweeps
        /**
         * Per-phase sweep window.  Each phase sweeps only a rotating
         * window of every array, so caches that hold a few windows
         * capture cross-phase reuse (the paper's R decline above
         * 128KB).
         */
        Bytes sweepWindowBytes = 48_KiB;
        unsigned computePerElem = 24;
        std::uint64_t targetRefs = 1'500'000;
    };

    explicit ConflictArrayKernel(Params params)
        : params_(std::move(params)) {}

    std::string name() const override { return params_.name; }
    Bytes nominalDataSetBytes() const override;
    void generate(TraceRecorder &recorder,
                  const WorkloadParams &wp) const override;

  private:
    Params params_;
};

/**
 * Truth-table row sort with write-once output (Eqntott).
 *
 * Quicksorts row indices by lexicographic comparison of bit-vector
 * rows (short sequential scans), then emits large write-once output
 * tables — the store behaviour that makes write-validate worth 31x
 * for Eqntott in Table 9.
 */
class BitVectorSortKernel : public Workload
{
  public:
    struct Params
    {
        std::string name = "Eqntott";
        unsigned rowCount = 8192;
        unsigned rowWords = 44;      ///< words per truth-table row
        Bytes outputBytes = 160_KiB; ///< write-once output area
        unsigned outputPasses = 6;   ///< output regenerations
        std::uint64_t targetRefs = 1'400'000;
    };

    explicit BitVectorSortKernel(Params params)
        : params_(std::move(params)) {}

    std::string name() const override { return params_.name; }
    Bytes nominalDataSetBytes() const override;
    void generate(TraceRecorder &recorder,
                  const WorkloadParams &wp) const override;

  private:
    Params params_;
};

/**
 * Small-working-set cover iteration (Espresso).
 *
 * Repeated passes over a tiny cube matrix with high reuse: runs
 * almost entirely out of any cache of 64KB or more (the `<<<`
 * column boundary in Tables 7/8).
 */
class SmallSetKernel : public Workload
{
  public:
    struct Params
    {
        std::string name = "Espresso";
        Bytes cubeBytes = 24_KiB;
        Bytes coverBytes = 16_KiB;
        /**
         * Size of the hot, slowly drifting active region.  Espresso's
         * inner loops hammer a working set well below its full data
         * set, which is why its traffic ratio collapses to ~0.01 by
         * 32KB (Table 7).
         */
        Bytes hotBytes = 14_KiB;
        double randomTouch = 0.01; ///< occasional irregular accesses
        std::uint64_t targetRefs = 1'200'000;
    };

    explicit SmallSetKernel(Params params) : params_(std::move(params)) {}

    std::string name() const override { return params_.name; }
    Bytes nominalDataSetBytes() const override;
    void generate(TraceRecorder &recorder,
                  const WorkloadParams &wp) const override;

  private:
    Params params_;
};

/**
 * 2-D FFT plus 4-way-unrolled matrix multiply (Dnasa2 — the two
 * Dnasa7 kernels the paper uses).  Strided butterfly passes and a
 * blocked MM with strong reuse.
 */
class FftMmKernel : public Workload
{
  public:
    struct Params
    {
        std::string name = "Dnasa2";
        unsigned fftSide = 64;  ///< 2-D FFT of fftSide x fftSide
        unsigned mmM = 128, mmK = 64, mmN = 64;
        std::uint64_t targetRefs = 1'300'000;
    };

    explicit FftMmKernel(Params params) : params_(std::move(params)) {}

    std::string name() const override { return params_.name; }
    Bytes nominalDataSetBytes() const override;
    void generate(TraceRecorder &recorder,
                  const WorkloadParams &wp) const override;

  private:
    Params params_;
};

/**
 * Cons-cell interpreter with mark-and-sweep GC (Li).
 *
 * Pointer chasing across a small cell pool, heavy branching, periodic
 * sequential sweeps: small data set, latency-bound, low ILP.
 */
class PointerChaseKernel : public Workload
{
  public:
    struct Params
    {
        std::string name = "Li";
        Bytes poolBytes = 120_KiB;
        unsigned listLength = 48;   ///< mean traversal length
        double allocRate = 0.08;    ///< allocations per traversal step
        unsigned gcPeriod = 4000;   ///< traversals between GC sweeps
        std::uint64_t targetRefs = 1'200'000;
    };

    explicit PointerChaseKernel(Params params)
        : params_(std::move(params)) {}

    std::string name() const override { return params_.name; }
    Bytes nominalDataSetBytes() const override;
    void generate(TraceRecorder &recorder,
                  const WorkloadParams &wp) const override;

  private:
    Params params_;
};

/**
 * Object-database transactions (Vortex).
 *
 * Random index lookups into a multi-megabyte record heap followed by
 * sequential field bursts within each record, with inserts and
 * updates: large footprint, mixed locality, store-heavy.
 */
class ObjectDbKernel : public Workload
{
  public:
    struct Params
    {
        std::string name = "Vortex";
        unsigned recordCount = 150'000;
        Bytes recordBytes = 128;
        unsigned indexFanout = 64;  ///< B-tree-like index nodes
        unsigned fieldsTouched = 10;///< words read per transaction
        double updateRate = 0.4;    ///< transactions that also store
        std::uint64_t targetRefs = 1'500'000;
    };

    explicit ObjectDbKernel(Params params) : params_(std::move(params)) {}

    std::string name() const override { return params_.name; }
    Bytes nominalDataSetBytes() const override;
    void generate(TraceRecorder &recorder,
                  const WorkloadParams &wp) const override;

  private:
    Params params_;
};

} // namespace membw

#endif // MEMBW_WORKLOADS_KERNELS_HH
