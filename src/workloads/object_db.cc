/**
 * @file
 * ObjectDbKernel: object-database transactions (Vortex).
 */

#include "workloads/kernels.hh"

#include "common/rng.hh"

namespace membw {

Bytes
ObjectDbKernel::nominalDataSetBytes() const
{
    const Bytes heap =
        static_cast<Bytes>(params_.recordCount) * params_.recordBytes;
    const Bytes index =
        static_cast<Bytes>(params_.recordCount) * wordBytes;
    return heap + index;
}

void
ObjectDbKernel::generate(TraceRecorder &recorder,
                         const WorkloadParams &wp) const
{
    Rng rng(wp.seed ^ 0x0BDB);

    const Region heap = recorder.allocate(
        "heap",
        static_cast<Bytes>(params_.recordCount) * params_.recordBytes);
    const Region index = recorder.allocate(
        "index",
        static_cast<Bytes>(params_.recordCount) * wordBytes);

    const unsigned record_words =
        static_cast<unsigned>(params_.recordBytes / wordBytes);
    const auto target = static_cast<std::uint64_t>(
        static_cast<double>(params_.targetRefs) * wp.scale);

    std::uint64_t refs = 0;
    std::uint64_t insert_cursor = 0;

    auto record_word = [&](std::uint64_t rec, unsigned w) {
        return heap.base + rec * params_.recordBytes + w * wordBytes;
    };

    while (refs < target) {
        // --- index descent: B-tree-like, log_fanout(records) hops ---
        std::uint64_t lo = 0, hi = params_.recordCount;
        while (hi - lo > params_.indexFanout && refs < target) {
            const std::uint64_t mid = lo + (hi - lo) / 2;
            recorder.loadDependent(index.word(mid));
            ++refs;
            recorder.compute(2);
            const bool go_left = rng.chance(0.5);
            recorder.branch(go_left);
            if (go_left)
                hi = mid;
            else
                lo = mid;
        }
        const std::uint64_t rec = lo + rng.below(hi - lo);

        // --- touch a burst of fields within the record ---
        const unsigned fields = params_.fieldsTouched;
        const unsigned first =
            static_cast<unsigned>(rng.below(record_words > fields
                                                ? record_words - fields
                                                : 1));
        for (unsigned f = 0; f < fields && refs < target; ++f) {
            recorder.load(record_word(rec, first + f));
            ++refs;
            recorder.compute(2);
        }

        // --- update or insert ---
        if (rng.chance(params_.updateRate)) {
            const unsigned w =
                first + static_cast<unsigned>(rng.below(fields));
            recorder.store(record_word(rec, w));
            ++refs;
        }
        if (rng.chance(0.08) && refs + record_words < target) {
            // Insert: initialize a whole fresh record + index slot.
            insert_cursor = (insert_cursor + 1) % params_.recordCount;
            for (unsigned w = 0; w < record_words; ++w) {
                recorder.store(record_word(insert_cursor, w));
                ++refs;
            }
            recorder.store(index.word(insert_cursor));
            ++refs;
            recorder.compute(4);
        }
        recorder.branch(rng.chance(0.75)); // transaction commit path
    }
}

} // namespace membw
