#include "obs/emit.hh"

#include <cstdarg>
#include <cstdio>
#include <mutex>
#include <vector>

namespace membw {

namespace {

std::mutex &
emitMutex()
{
    static std::mutex m;
    return m;
}

} // namespace

void
emitLine(const std::string &line)
{
    std::lock_guard<std::mutex> lock(emitMutex());
    std::fwrite(line.data(), 1, line.size(), stderr);
    if (line.empty() || line.back() != '\n')
        std::fputc('\n', stderr);
    std::fflush(stderr);
}

void
emitLinef(const char *fmt, ...)
{
    char fixed[512];
    std::va_list ap;
    va_start(ap, fmt);
    std::va_list ap2;
    va_copy(ap2, ap);
    const int n = std::vsnprintf(fixed, sizeof(fixed), fmt, ap);
    va_end(ap);
    if (n < 0) {
        va_end(ap2);
        return;
    }
    if (static_cast<std::size_t>(n) < sizeof(fixed)) {
        va_end(ap2);
        emitLine(std::string(fixed, static_cast<std::size_t>(n)));
        return;
    }
    std::vector<char> big(static_cast<std::size_t>(n) + 1);
    std::vsnprintf(big.data(), big.size(), fmt, ap2);
    va_end(ap2);
    emitLine(std::string(big.data(), static_cast<std::size_t>(n)));
}

} // namespace membw
