#include "obs/trace_export.hh"

#include <algorithm>
#include <cstdlib>

#include "common/log.hh"
#include "obs/export.hh"
#include "obs/json.hh"
#include "resilience/fault_injection.hh"

namespace membw {

#ifdef MEMBW_TRACING_ENABLED

std::string
tracingChromeJson(const std::string &tool)
{
    using tracedetail::FlatEvent;

    std::vector<FlatEvent> events;
    std::uint64_t dropped = 0;
    std::vector<std::pair<std::uint32_t, std::string>> threads;
    tracedetail::snapshot(events, dropped, threads);

    // Chrome/Perfetto want ts monotonic per thread track; ring order
    // is span-*end* order, so re-sort by (tid, begin ts).
    std::stable_sort(events.begin(), events.end(),
                     [](const FlatEvent &a, const FlatEvent &b) {
                         if (a.tid != b.tid)
                             return a.tid < b.tid;
                         return a.ts < b.ts;
                     });

    JsonWriter w;
    w.beginObject();
    w.field("displayTimeUnit", "ms");
    w.key("otherData");
    w.beginObject();
    w.field("tool", tool);
    w.field("dropped_events", dropped);
    w.endObject();
    w.key("traceEvents");
    w.beginArray();

    auto common = [&](const char *ph, const FlatEvent &e) {
        w.field("ph", ph);
        w.field("pid", std::int64_t{1});
        w.field("tid",
                static_cast<std::int64_t>(e.tid));
        w.field("ts", static_cast<double>(e.ts) / 1e3); // us
    };

    // Thread-name metadata first, then the data events.
    w.beginObject();
    w.field("ph", "M");
    w.field("name", "process_name");
    w.field("pid", std::int64_t{1});
    w.key("args");
    w.beginObject();
    w.field("name", tool);
    w.endObject();
    w.endObject();
    for (const auto &[tid, name] : threads) {
        w.beginObject();
        w.field("ph", "M");
        w.field("name", "thread_name");
        w.field("pid", std::int64_t{1});
        w.field("tid", static_cast<std::int64_t>(tid));
        w.key("args");
        w.beginObject();
        w.field("name", name);
        w.endObject();
        w.endObject();
    }

    for (const FlatEvent &e : events) {
        w.beginObject();
        switch (e.kind) {
        case 0: // span -> complete event
            w.field("name", e.name);
            common("X", e);
            w.field("dur", static_cast<double>(e.dur) / 1e3);
            if (!e.detail.empty() || e.open) {
                w.key("args");
                w.beginObject();
                if (!e.detail.empty())
                    w.field("detail", e.detail);
                if (e.open)
                    w.field("open", true);
                w.endObject();
            }
            break;
        case 1: // counter
            w.field("name", e.name);
            common("C", e);
            w.key("args");
            w.beginObject();
            w.field("value", e.value);
            w.endObject();
            break;
        default: // instant
            w.field("name", e.name);
            common("i", e);
            w.field("s", "t");
            if (!e.detail.empty()) {
                w.key("args");
                w.beginObject();
                w.field("detail", e.detail);
                w.endObject();
            }
            break;
        }
        w.endObject();
    }
    w.endArray();
    w.endObject();
    return w.str();
}

void
tracingWriteChromeTrace(const std::string &path,
                        const std::string &tool)
{
    writeFileOrDie(path, tracingChromeJson(tool));
}

namespace {

/** Registered --trace-out destination (one per process). */
std::string g_tracePath;
std::string g_traceTool;
bool g_flushRegistered = false;
bool g_flushed = false;

void
flushAtExit()
{
    if (!g_flushed && !g_tracePath.empty()) {
        g_flushed = true;
        try {
            tracingWriteChromeTrace(g_tracePath, g_traceTool);
        } catch (const FatalError &e) {
            // Exit path: report, never unwind out of atexit.
            std::fprintf(stderr, "%s\n", e.what());
        }
    }
    SeriesWriter::global().close();
}

} // namespace

void
tracingInit(const std::string &path, const std::string &tool)
{
    // Construct everything flushAtExit() touches *before*
    // registering it: statics die in reverse construction order, so
    // the ring registry (behind tracingStart) and the series writer
    // must exist first or the exit-time flush reads destroyed
    // objects.
    tracingStart();
    SeriesWriter::global();
    g_tracePath = path;
    g_traceTool = tool;
    g_flushed = false;
    if (!g_flushRegistered) {
        g_flushRegistered = true;
        std::atexit(flushAtExit);
    }
}

void
tracingFlushNow()
{
    flushAtExit();
}

#endif // MEMBW_TRACING_ENABLED

// ---------------------------------------------------------------
// SeriesWriter
// ---------------------------------------------------------------

SeriesWriter &
SeriesWriter::global()
{
    static SeriesWriter w;
    return w;
}

SeriesWriter::~SeriesWriter()
{
    close();
}

void
SeriesWriter::init(const std::string &path, double intervalSec)
{
    std::lock_guard<std::mutex> lock(mutex_);
    if (file_)
        std::fclose(file_);
    // Stage into '<path>.tmp'; close() renames the completed series
    // into place so a crash mid-run never leaves a half-written file
    // under the real name.
    path_ = path;
    tmp_ = path + ".tmp";
    file_ = std::fopen(tmp_.c_str(), "w");
    if (!file_)
        fatal("cannot open '" + tmp_ + "' for writing");
    intervalSec_ = intervalSec > 0 ? intervalSec : 0.25;
    epoch_ = std::chrono::steady_clock::now();
    sampledOnce_ = false;
    lines_ = 0;
}

bool
SeriesWriter::sample(Fields fields, bool force)
{
    if (!file_)
        return false;
    std::lock_guard<std::mutex> lock(mutex_);
    if (!file_)
        return false;
    const auto now = std::chrono::steady_clock::now();
    if (!force && sampledOnce_ &&
        std::chrono::duration<double>(now - lastSample_).count() <
            intervalSec_)
        return false;
    lastSample_ = now;
    sampledOnce_ = true;

    std::string line = "{\"t\": ";
    line += formatJsonNumber(
        std::chrono::duration<double>(now - epoch_).count());
    for (const auto &[name, value] : fields) {
        line += ", \"";
        line += name;
        line += "\": ";
        line += formatJsonNumber(value);
    }
    line += "}\n";
    if (MEMBW_FAULT_POINT("series-write")) {
        degradeLocked("injected series write failure");
        return false;
    }
    if (std::fwrite(line.data(), 1, line.size(), file_) !=
            line.size() ||
        std::fflush(file_) != 0) {
        degradeLocked("write error");
        return false;
    }
    ++lines_;
    return true;
}

void
SeriesWriter::degradeLocked(const std::string &why)
{
    // The series is telemetry, not the result: dropping it must not
    // take the simulation down with it.
    warn("series output '" + path_ + "' dropped: " + why);
    std::fclose(file_);
    file_ = nullptr;
    std::remove(tmp_.c_str());
}

void
SeriesWriter::close()
{
    std::lock_guard<std::mutex> lock(mutex_);
    if (file_) {
        const bool flushed = std::fflush(file_) == 0;
        const bool closed = std::fclose(file_) == 0;
        file_ = nullptr;
        if (!flushed || !closed ||
            std::rename(tmp_.c_str(), path_.c_str()) != 0) {
            warn("series output '" + path_ + "' dropped: "
                 "cannot finalise");
            std::remove(tmp_.c_str());
        }
    }
}

} // namespace membw
