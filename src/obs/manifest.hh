/**
 * @file
 * Run manifest: the provenance block at the head of every telemetry
 * file, identifying what was simulated (tool, experiment, workload,
 * config + digest, seed, scale) and how fast the host simulated it
 * (wall-clock, Mrefs/s).  Downstream trajectory tooling keys runs by
 * (experiment, workload, config_digest, seed).
 */

#ifndef MEMBW_OBS_MANIFEST_HH
#define MEMBW_OBS_MANIFEST_HH

#include <cstdint>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "obs/json.hh"

namespace membw {

/** 64-bit FNV-1a, used to digest config descriptions. */
std::uint64_t fnv1a64(std::string_view s);

/** Current telemetry schema; bump on incompatible layout changes. */
constexpr int telemetrySchemaVersion = 1;

struct RunManifest
{
    std::string tool;       ///< emitting binary (membw_sim, ...)
    std::string experiment; ///< paper table/figure or machine letter
    std::string workload;   ///< kernel name ("" for multi-workload)
    std::string config;     ///< human-readable config description
    std::uint64_t seed = 0;
    double scale = 0.0;
    std::uint64_t refs = 0; ///< simulated references (0 = unknown)
    double wallSeconds = 0.0;

    /**
     * True when the run was cut short by SIGINT/SIGTERM; the stats
     * that follow are a partial snapshot.  Only emitted when set, so
     * a resumed run that completes produces the same manifest as an
     * uninterrupted one.
     */
    bool interrupted = false;

    /**
     * True when one or more sweep cells failed but the sweep carried
     * on (exit code 5); the failures are listed under "failed_cells"
     * in the stats document.  Only emitted when set.
     */
    bool degraded = false;

    /**
     * Omit wall_seconds / mrefs_per_sec (--stable-json): these are
     * the only nondeterministic fields, and dropping them makes
     * "byte-identical output" a checkable property for resume tests.
     */
    bool omitTiming = false;

    /** Free-form extra fields appended verbatim to the manifest. */
    std::vector<std::pair<std::string, std::string>> extra;

    /** Extra fields that must emit as JSON numbers, not strings
     * (e.g. "jobs": 4, not "jobs": "4"). */
    std::vector<std::pair<std::string, std::uint64_t>> extraNum;

    void
    set(std::string key, std::string value)
    {
        extra.emplace_back(std::move(key), std::move(value));
    }

    void
    set(std::string key, std::uint64_t value)
    {
        extraNum.emplace_back(std::move(key), value);
    }

    /** Host simulation rate; 0 when refs or wall time is unknown. */
    double
    mrefsPerSec() const
    {
        return wallSeconds > 0.0
                   ? static_cast<double>(refs) / wallSeconds / 1e6
                   : 0.0;
    }

    /** Emit the manifest object (after key() or as array element). */
    void write(JsonWriter &w) const;
};

} // namespace membw

#endif // MEMBW_OBS_MANIFEST_HH
