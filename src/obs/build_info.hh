/**
 * @file
 * Build provenance for `--version` / `--build-info` and the daemon
 * `ping` response.
 *
 * Every long-lived deployment eventually asks "which binary is this?"
 * — the answer here is the git describe string, the compile-time
 * feature set (SIMD kernels, tracing probes, profiling hooks,
 * sanitizer), and the project version, all baked in at configure
 * time.  The *runtime* SIMD tier is deliberately not captured here:
 * obs sits below exec in the layering, so callers that know the tier
 * (the tools link exec) pass its name in.
 */

#ifndef MEMBW_OBS_BUILD_INFO_HH
#define MEMBW_OBS_BUILD_INFO_HH

#include <string>
#include <string_view>

namespace membw {

class JsonWriter;

/** Compile-time build provenance, fixed at configure time. */
struct BuildInfo
{
    std::string_view version;     ///< project version (semver)
    std::string_view gitDescribe; ///< `git describe` or "unknown"
    std::string_view sanitizer;   ///< "none", "address", or "thread"
    bool simd = false;            ///< SIMD ladder kernels compiled in
    bool tracing = false;         ///< span-tracing probes compiled in
    bool profiling = false;       ///< profiling hooks compiled in
};

/** The provenance of this binary. */
const BuildInfo &buildInfo();

/** One-line banner for `--version`: "<tool> <version> (<describe>)". */
std::string formatVersionLine(std::string_view tool);

/**
 * Multi-line block for `--build-info`.  @p runtimeSimdTier is the
 * active dispatch tier ("scalar"/"sse2"/"avx2") as reported by the
 * caller, or empty to omit the line.
 */
std::string formatBuildInfo(std::string_view tool,
                            std::string_view runtimeSimdTier);

/**
 * Emit the provenance as a JSON object value on @p w (the caller
 * supplies the surrounding key).  Used by the daemon `ping` response
 * so ops can confirm what is serving without shelling into the box.
 */
void writeBuildInfo(JsonWriter &w, std::string_view runtimeSimdTier);

} // namespace membw

#endif // MEMBW_OBS_BUILD_INFO_HH
