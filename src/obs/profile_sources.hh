/**
 * @file
 * Canonical EpochProfiler sources for the model layers.
 *
 * Each helper pairs a fixed metric-name list with a snapshot function
 * over the matching stats struct, so every tool and bench that
 * attaches a profiler (--profile-out) exports the same schema.  The
 * synthetic trailing "below_bytes" metric (CacheStats::trafficBelow /
 * MinCacheStats::trafficBelow) is what lets the exporter derive the
 * per-epoch traffic ratio r = Δbelow / Δrequest (Equation 4) without
 * re-deriving the seven-way byte sum downstream.
 *
 * This header lives in src/obs but is included only by drivers
 * (tools/, bench/) — the obs library itself stays below the model
 * layers and never links against them.
 */

#ifndef MEMBW_OBS_PROFILE_SOURCES_HH
#define MEMBW_OBS_PROFILE_SOURCES_HH

#include <cstdint>
#include <string>
#include <vector>

#include "cache/cache.hh"
#include "cache/hierarchy.hh"
#include "cpu/memsys.hh"
#include "mtc/min_cache.hh"
#include "obs/epoch_profiler.hh"

namespace membw {

/** Metric names matching snapshotCacheStats(), in order. */
inline std::vector<std::string>
cacheMetricNames()
{
    return {"accesses",           "loads",
            "stores",             "hits",
            "misses",             "load_misses",
            "store_misses",       "evictions",
            "writebacks",         "partial_fills",
            "prefetches",         "stream_hits",
            "stream_allocs",      "request_bytes",
            "demand_fetch_bytes", "partial_fill_bytes",
            "prefetch_fetch_bytes", "stream_fetch_bytes",
            "writeback_bytes",    "write_through_bytes",
            "flush_writeback_bytes", "below_bytes"};
}

/** Cumulative values for cacheMetricNames(). */
inline std::vector<std::uint64_t>
snapshotCacheStats(const CacheStats &s)
{
    return {s.accesses,           s.loads,
            s.stores,             s.hits,
            s.misses,             s.loadMisses,
            s.storeMisses,        s.evictions,
            s.writebacks,         s.partialFills,
            s.prefetches,         s.streamHits,
            s.streamAllocs,       s.requestBytes,
            s.demandFetchBytes,   s.partialFillBytes,
            s.prefetchFetchBytes, s.streamFetchBytes,
            s.writebackBytes,     s.writeThroughBytes,
            s.flushWritebackBytes, s.trafficBelow()};
}

/** Metric names matching snapshotMinCacheStats(), in order. */
inline std::vector<std::string>
minCacheMetricNames()
{
    return {"accesses",     "hits",
            "misses",       "bypasses",
            "validates",    "request_bytes",
            "fetch_bytes",  "writeback_bytes",
            "flush_writeback_bytes", "below_bytes",
            "victim_scan_pops"};
}

/** Cumulative values for minCacheMetricNames(). */
inline std::vector<std::uint64_t>
snapshotMinCacheStats(const MinCacheStats &s,
                      std::uint64_t victimScanPops)
{
    return {s.accesses,    s.hits,
            s.misses,      s.bypasses,
            s.validates,   s.requestBytes,
            s.fetchBytes,  s.writebackBytes,
            s.flushWritebackBytes, s.trafficBelow(),
            victimScanPops};
}

/** Metric names matching snapshotMemSysStats(), in order.  Covers
 * the stall decomposition inputs (bus busy/wait cycles) and the
 * DRAM row-buffer outcomes. */
inline std::vector<std::string>
memSysMetricNames()
{
    return {"loads",           "stores",
            "ifetches",        "i_misses",
            "l1_misses",       "l2_misses",
            "mshr_merges",     "wrong_path_loads",
            "dram_row_hits",   "dram_row_misses",
            "dram_busy_cycles", "l1l2_bus_busy",
            "mem_bus_busy",    "l1l2_bus_wait",
            "mem_bus_wait",    "l1l2_bus_transfers",
            "mem_bus_transfers"};
}

/** Cumulative values for memSysMetricNames(). */
inline std::vector<std::uint64_t>
snapshotMemSysStats(const MemSysStats &s)
{
    return {s.loads,          s.stores,
            s.ifetches,       s.iMisses,
            s.l1Misses,       s.l2Misses,
            s.mshrMerges,     s.wrongPathLoads,
            s.dramRowHits,    s.dramRowMisses,
            s.dramBusyCycles, s.l1l2BusBusy,
            s.memBusBusy,     s.l1l2BusWait,
            s.memBusWait,     s.l1l2BusTransfers,
            s.memBusTransfers};
}

/**
 * Attach one source per level of @p hier ("L1", "L2", ...) to the
 * open run, point the region heat table at the last level (its
 * below-traffic is the pin traffic), and wire the structural probes.
 * @p hier must outlive the run.
 */
inline void
attachHierarchySources(EpochProfiler &prof,
                       const CacheHierarchy &hier)
{
    for (std::size_t i = 0; i < hier.levels(); ++i)
        prof.addSource("L" + std::to_string(i + 1),
                       cacheMetricNames(), [&hier, i] {
                           return snapshotCacheStats(
                               hier.level(i).stats());
                       });
    prof.setRegionLevel(
        static_cast<unsigned>(hier.levels() - 1));
}

/**
 * Attach the timing memory system's sources to the open run: the
 * "mem" counter block plus per-level cache sources ("L1", optional
 * "IL1", "L2").  @p mem must outlive the run.
 */
inline void
attachMemSysSources(EpochProfiler &prof, const MemorySystem &mem)
{
    prof.addSource("mem", memSysMetricNames(), [&mem] {
        return snapshotMemSysStats(mem.stats());
    });
    prof.addSource("L1", cacheMetricNames(), [&mem] {
        return snapshotCacheStats(mem.l1Stats());
    });
    if (const CacheStats *il1 = mem.il1Stats())
        prof.addSource("IL1", cacheMetricNames(), [il1] {
            return snapshotCacheStats(*il1);
        });
    prof.addSource("L2", cacheMetricNames(), [&mem] {
        return snapshotCacheStats(mem.l2Stats());
    });
    prof.setRegionLevel(1); // L2's below-traffic = pin traffic
}

} // namespace membw

#endif // MEMBW_OBS_PROFILE_SOURCES_HH
