#include "obs/registry.hh"

#include "common/log.hh"

namespace membw {

template <typename T, typename... Args>
T &
StatsRegistry::add(const std::string &name, Args &&...args)
{
    if (name.empty())
        fatal("stat name must not be empty");
    if (byName_.count(name))
        fatal("duplicate stat '" + name + "'");
    auto stat = std::make_unique<T>(name, std::forward<Args>(args)...);
    T &ref = *stat;
    byName_.emplace(name, stat.get());
    stats_.push_back(std::move(stat));
    return ref;
}

ScalarStat &
StatsRegistry::addScalar(const std::string &name,
                         const std::string &desc,
                         const std::string &unit)
{
    return add<ScalarStat>(name, desc, unit);
}

CounterStat &
StatsRegistry::addCounter(const std::string &name,
                          const std::string &desc,
                          const std::string &unit)
{
    return add<CounterStat>(name, desc, unit);
}

DistributionStat &
StatsRegistry::addDistribution(const std::string &name,
                               const std::string &desc,
                               const std::string &unit)
{
    return add<DistributionStat>(name, desc, unit);
}

RatioStat &
StatsRegistry::addRatio(const std::string &name,
                        const std::string &desc,
                        const StatBase &numerator,
                        const StatBase &denominator,
                        const std::string &unit)
{
    return add<RatioStat>(name, desc, unit, numerator, denominator);
}

const StatBase *
StatsRegistry::find(const std::string &name) const
{
    auto it = byName_.find(name);
    return it == byName_.end() ? nullptr : it->second;
}

StatBase *
StatsRegistry::find(const std::string &name)
{
    auto it = byName_.find(name);
    return it == byName_.end() ? nullptr : it->second;
}

StatsGroup
StatsRegistry::group(const std::string &prefix)
{
    return StatsGroup(*this, prefix);
}

} // namespace membw
