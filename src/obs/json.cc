#include "obs/json.hh"

#include <cctype>
#include <charconv>
#include <cmath>
#include <cstdio>

#include "common/log.hh"

namespace membw {

std::string
formatJsonNumber(double v)
{
    if (!std::isfinite(v))
        return "null"; // JSON has no NaN/Inf
    char buf[32];
    const auto res = std::to_chars(buf, buf + sizeof(buf), v);
    return std::string(buf, res.ptr);
}

namespace {

void
appendEscapedTo(std::string &out, std::string_view s)
{
    out.push_back('"');
    for (const char c : s) {
        switch (c) {
          case '"': out.append("\\\""); break;
          case '\\': out.append("\\\\"); break;
          case '\n': out.append("\\n"); break;
          case '\t': out.append("\\t"); break;
          case '\r': out.append("\\r"); break;
          default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof(buf), "\\u%04x", c);
                out.append(buf);
            } else {
                out.push_back(c);
            }
        }
    }
    out.push_back('"');
}

} // namespace

std::string
jsonEscape(std::string_view s)
{
    std::string out;
    out.reserve(s.size() + 2);
    appendEscapedTo(out, s);
    return out;
}

// --- JsonWriter ------------------------------------------------------

void
JsonWriter::newline()
{
    out_.push_back('\n');
    out_.append(2 * stack_.size(), ' ');
}

void
JsonWriter::preValue()
{
    if (stack_.empty()) {
        if (items_ > 0)
            panic("JsonWriter: multiple top-level values");
        ++items_;
        return;
    }
    Scope &s = stack_.back();
    if (s.array) {
        if (s.items > 0)
            out_.push_back(',');
        newline();
        ++s.items;
    } else {
        if (!s.expectValue)
            panic("JsonWriter: object value without a key");
        s.expectValue = false;
    }
}

void
JsonWriter::beginObject()
{
    preValue();
    out_.push_back('{');
    stack_.push_back(Scope{false, false, 0});
}

void
JsonWriter::endObject()
{
    if (stack_.empty() || stack_.back().array ||
        stack_.back().expectValue)
        panic("JsonWriter: mismatched endObject");
    const bool had = stack_.back().items > 0;
    stack_.pop_back();
    if (had)
        newline();
    out_.push_back('}');
}

void
JsonWriter::beginArray()
{
    preValue();
    out_.push_back('[');
    stack_.push_back(Scope{true, false, 0});
}

void
JsonWriter::endArray()
{
    if (stack_.empty() || !stack_.back().array)
        panic("JsonWriter: mismatched endArray");
    const bool had = stack_.back().items > 0;
    stack_.pop_back();
    if (had)
        newline();
    out_.push_back(']');
}

void
JsonWriter::key(std::string_view k)
{
    if (stack_.empty() || stack_.back().array ||
        stack_.back().expectValue)
        panic("JsonWriter: key() outside an object");
    Scope &s = stack_.back();
    if (s.items > 0)
        out_.push_back(',');
    newline();
    ++s.items;
    s.expectValue = true;
    appendEscaped(k);
    out_.append(": ");
}

void
JsonWriter::appendEscaped(std::string_view s)
{
    appendEscapedTo(out_, s);
}

void
JsonWriter::value(std::string_view v)
{
    preValue();
    appendEscaped(v);
}

void
JsonWriter::value(double v)
{
    preValue();
    out_.append(formatJsonNumber(v));
}

void
JsonWriter::value(std::uint64_t v)
{
    preValue();
    out_.append(std::to_string(v));
}

void
JsonWriter::value(std::int64_t v)
{
    preValue();
    out_.append(std::to_string(v));
}

void
JsonWriter::value(bool v)
{
    preValue();
    out_.append(v ? "true" : "false");
}

void
JsonWriter::null()
{
    preValue();
    out_.append("null");
}

// --- JsonValue accessors ---------------------------------------------

const JsonValue *
JsonValue::find(std::string_view key) const
{
    if (kind != Kind::Object)
        return nullptr;
    for (const auto &[k, v] : object)
        if (k == key)
            return &v;
    return nullptr;
}

const JsonValue &
JsonValue::at(std::string_view key) const
{
    const JsonValue *v = find(key);
    if (!v)
        fatal("json: missing key '" + std::string(key) + "'");
    return *v;
}

const JsonValue &
JsonValue::at(std::size_t i) const
{
    if (kind != Kind::Array || i >= array.size())
        fatal("json: array index " + std::to_string(i) +
              " out of range");
    return array[i];
}

double
JsonValue::asNumber() const
{
    if (kind != Kind::Number)
        fatal("json: value is not a number");
    return number;
}

const std::string &
JsonValue::asString() const
{
    if (kind != Kind::String)
        fatal("json: value is not a string");
    return string;
}

bool
JsonValue::asBool() const
{
    if (kind != Kind::Bool)
        fatal("json: value is not a bool");
    return boolean;
}

// --- Parser ----------------------------------------------------------

namespace {

class Parser
{
  public:
    explicit Parser(std::string_view text) : text_(text) {}

    JsonValue
    document()
    {
        JsonValue v = value();
        skipWs();
        if (pos_ != text_.size())
            fail("trailing garbage after document");
        return v;
    }

  private:
    [[noreturn]] void
    fail(const std::string &why)
    {
        fatal("json parse error at offset " + std::to_string(pos_) +
              ": " + why);
    }

    void
    skipWs()
    {
        while (pos_ < text_.size() &&
               std::isspace(static_cast<unsigned char>(text_[pos_])))
            ++pos_;
    }

    char
    peek()
    {
        skipWs();
        if (pos_ >= text_.size())
            fail("unexpected end of input");
        return text_[pos_];
    }

    void
    expect(char c)
    {
        if (peek() != c)
            fail(std::string("expected '") + c + "'");
        ++pos_;
    }

    bool
    consumeLiteral(std::string_view lit)
    {
        if (text_.substr(pos_, lit.size()) != lit)
            return false;
        pos_ += lit.size();
        return true;
    }

    JsonValue
    value()
    {
        // Hostile input like ten thousand '[' characters would
        // otherwise recurse once per bracket and overflow the stack;
        // cap nesting far above anything the tools emit.
        if (depth_ >= maxDepth)
            fail("nesting exceeds " + std::to_string(maxDepth) +
                 " levels");
        ++depth_;
        JsonValue v;
        const char c = peek();
        switch (c) {
          case '{': v = parseObject(); break;
          case '[': v = parseArray(); break;
          case '"': v = parseString(); break;
          case 't': case 'f': v = parseBool(); break;
          case 'n': v = parseNull(); break;
          default: v = parseNumber(); break;
        }
        --depth_;
        return v;
    }

    JsonValue
    parseObject()
    {
        expect('{');
        JsonValue v;
        v.kind = JsonValue::Kind::Object;
        if (peek() == '}') {
            ++pos_;
            return v;
        }
        while (true) {
            if (peek() != '"')
                fail("expected object key");
            JsonValue key = parseString();
            expect(':');
            v.object.emplace_back(std::move(key.string), value());
            const char next = peek();
            ++pos_;
            if (next == '}')
                return v;
            if (next != ',')
                fail("expected ',' or '}'");
        }
    }

    JsonValue
    parseArray()
    {
        expect('[');
        JsonValue v;
        v.kind = JsonValue::Kind::Array;
        if (peek() == ']') {
            ++pos_;
            return v;
        }
        while (true) {
            v.array.push_back(value());
            const char next = peek();
            ++pos_;
            if (next == ']')
                return v;
            if (next != ',')
                fail("expected ',' or ']'");
        }
    }

    JsonValue
    parseString()
    {
        expect('"');
        JsonValue v;
        v.kind = JsonValue::Kind::String;
        while (true) {
            if (pos_ >= text_.size())
                fail("unterminated string");
            const char c = text_[pos_++];
            if (c == '"')
                return v;
            if (c != '\\') {
                v.string.push_back(c);
                continue;
            }
            if (pos_ >= text_.size())
                fail("unterminated escape");
            const char e = text_[pos_++];
            switch (e) {
              case '"': v.string.push_back('"'); break;
              case '\\': v.string.push_back('\\'); break;
              case '/': v.string.push_back('/'); break;
              case 'n': v.string.push_back('\n'); break;
              case 't': v.string.push_back('\t'); break;
              case 'r': v.string.push_back('\r'); break;
              case 'b': v.string.push_back('\b'); break;
              case 'f': v.string.push_back('\f'); break;
              case 'u': {
                if (pos_ + 4 > text_.size())
                    fail("truncated \\u escape");
                unsigned code = 0;
                const auto res = std::from_chars(
                    text_.data() + pos_, text_.data() + pos_ + 4,
                    code, 16);
                if (res.ptr != text_.data() + pos_ + 4)
                    fail("bad \\u escape");
                pos_ += 4;
                // The exporters only emit \u for control chars, so a
                // plain narrow cast covers everything we write.
                if (code > 0x7f)
                    fail("non-ASCII \\u escape unsupported");
                v.string.push_back(static_cast<char>(code));
                break;
              }
              default: fail("unknown escape");
            }
        }
    }

    JsonValue
    parseBool()
    {
        JsonValue v;
        v.kind = JsonValue::Kind::Bool;
        if (consumeLiteral("true"))
            v.boolean = true;
        else if (consumeLiteral("false"))
            v.boolean = false;
        else
            fail("bad literal");
        return v;
    }

    JsonValue
    parseNull()
    {
        if (!consumeLiteral("null"))
            fail("bad literal");
        return JsonValue{};
    }

    JsonValue
    parseNumber()
    {
        const char *first = text_.data() + pos_;
        const char *last = text_.data() + text_.size();
        JsonValue v;
        v.kind = JsonValue::Kind::Number;
        const auto res = std::from_chars(first, last, v.number);
        if (res.ec != std::errc{} || res.ptr == first)
            fail("bad number");
        pos_ = static_cast<std::size_t>(res.ptr - text_.data());
        return v;
    }

    static constexpr std::size_t maxDepth = 256;

    std::string_view text_;
    std::size_t pos_ = 0;
    std::size_t depth_ = 0;
};

} // namespace

JsonValue
parseJson(std::string_view text)
{
    return Parser(text).document();
}

} // namespace membw
