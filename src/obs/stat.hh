/**
 * @file
 * gem5-style statistics primitives.
 *
 * Every counted quantity in the simulator is published as a named
 * Stat with a description and a unit, so exporters (text, JSON, CSV)
 * and downstream tooling see one uniform schema instead of ad-hoc
 * printf tables.  Four kinds cover the paper's needs:
 *
 *  - ScalarStat:       a settable double (T_P, f_B, E_pin, ...);
 *  - CounterStat:      a monotone integer (hits, misses, bytes);
 *  - DistributionStat: moments + extrema of a sampled value
 *                      (RUU/LSQ occupancy, queue depth);
 *  - RatioStat:        a derived quotient of two other stats,
 *                      recomputed at read time (miss rate, R_i).
 */

#ifndef MEMBW_OBS_STAT_HH
#define MEMBW_OBS_STAT_HH

#include <cstdint>
#include <string>

#include "obs/json.hh"

namespace membw {

/** Discriminator for exporters. */
enum class StatKind : std::uint8_t
{
    Scalar,
    Counter,
    Distribution,
    Ratio,
};

const char *toString(StatKind kind);

/**
 * Value-type accumulator behind DistributionStat.  Kept separate so
 * component result structs (e.g. CoreResult's occupancy tracking) can
 * accumulate samples without owning a registry.
 */
struct DistData
{
    std::uint64_t count = 0;
    double sum = 0.0;
    double sumSq = 0.0;
    double minv = 0.0;
    double maxv = 0.0;

    void
    record(double v)
    {
        if (count == 0) {
            minv = maxv = v;
        } else {
            if (v < minv)
                minv = v;
            if (v > maxv)
                maxv = v;
        }
        ++count;
        sum += v;
        sumSq += v * v;
    }

    double mean() const;
    /** Population standard deviation; 0 for fewer than two samples. */
    double stddev() const;
};

/** Common metadata + polymorphic value access. */
class StatBase
{
  public:
    StatBase(std::string name, std::string desc, std::string unit)
        : name_(std::move(name)), desc_(std::move(desc)),
          unit_(std::move(unit))
    {
    }
    virtual ~StatBase() = default;

    StatBase(const StatBase &) = delete;
    StatBase &operator=(const StatBase &) = delete;

    const std::string &name() const { return name_; }
    const std::string &desc() const { return desc_; }
    const std::string &unit() const { return unit_; }

    virtual StatKind kind() const = 0;

    /** The stat's primary value as a double (mean for distributions). */
    virtual double numericValue() const = 0;

    /** Human-readable value for the text exporter. */
    virtual std::string valueString() const;

    /** Emit kind-specific fields into an already-open JSON object. */
    virtual void jsonFields(JsonWriter &w) const;

  private:
    std::string name_;
    std::string desc_;
    std::string unit_;
};

/** A settable floating-point quantity. */
class ScalarStat : public StatBase
{
  public:
    using StatBase::StatBase;

    void set(double v) { value_ = v; }
    double value() const { return value_; }

    StatKind kind() const override { return StatKind::Scalar; }
    double numericValue() const override { return value_; }

  private:
    double value_ = 0.0;
};

/** A monotone event/byte counter. */
class CounterStat : public StatBase
{
  public:
    using StatBase::StatBase;

    void inc(std::uint64_t n = 1) { value_ += n; }
    void set(std::uint64_t v) { value_ = v; }
    std::uint64_t value() const { return value_; }

    StatKind kind() const override { return StatKind::Counter; }
    double
    numericValue() const override
    {
        return static_cast<double>(value_);
    }
    std::string valueString() const override;
    void jsonFields(JsonWriter &w) const override;

  private:
    std::uint64_t value_ = 0;
};

/** Sampled-value moments (occupancies, depths, latencies). */
class DistributionStat : public StatBase
{
  public:
    using StatBase::StatBase;

    void record(double v) { data_.record(v); }
    void set(const DistData &d) { data_ = d; }
    const DistData &data() const { return data_; }

    StatKind kind() const override { return StatKind::Distribution; }
    double numericValue() const override { return data_.mean(); }
    std::string valueString() const override;
    void jsonFields(JsonWriter &w) const override;

  private:
    DistData data_;
};

/**
 * A derived quotient of two registered stats, evaluated lazily so it
 * is always consistent with its operands.  The operands must outlive
 * the ratio (the registry guarantees this for registry-owned stats).
 */
class RatioStat : public StatBase
{
  public:
    RatioStat(std::string name, std::string desc, std::string unit,
              const StatBase &numerator, const StatBase &denominator)
        : StatBase(std::move(name), std::move(desc), std::move(unit)),
          num_(numerator), den_(denominator)
    {
    }

    StatKind kind() const override { return StatKind::Ratio; }
    double numericValue() const override;
    void jsonFields(JsonWriter &w) const override;

    const StatBase &numerator() const { return num_; }
    const StatBase &denominator() const { return den_; }

  private:
    const StatBase &num_;
    const StatBase &den_;
};

} // namespace membw

#endif // MEMBW_OBS_STAT_HH
