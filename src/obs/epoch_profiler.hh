/**
 * @file
 * Interval profiler for the simulated memory system.
 *
 * Samples the model's cumulative counters every N simulated
 * references (an *epoch*) and stores the per-epoch deltas as
 * columnar arrays, giving the time-resolved view of the paper's
 * metrics — per-level traffic, miss/write-back counts, traffic
 * ratios R_i (Equation 4) and effective pin bandwidth E_pin
 * (Equation 5) — that end-of-run aggregates hide.
 *
 * Structure:
 *
 *  - a *run* is one simulation pass (membw_sim's "hierarchy" and
 *    "mtc" phases, one per decomposition phase, one per bench
 *    workload); runs have independent reference clocks;
 *  - a *source* is one component inside a run (a cache level, the
 *    MTC, the timing memory system) exposed as a named metric
 *    vector.  The profiler snapshots every source's cumulative
 *    values at each epoch boundary and records the deltas, so the
 *    per-epoch columns sum to the end-of-run aggregates *exactly*
 *    by construction (no separate event accounting to drift);
 *  - two structural profiles accumulate across the whole process
 *    via MemProbe hooks: a per-set conflict heatmap (tag-churn
 *    counts) and a coarse address-region heat table (bytes per
 *    1/256th of the touched footprint).
 *
 * Epoch boundaries close at the first observation at or past each
 * N-reference target.  Per-reference drivers (membw_sim, the bench
 * representative runs) hit targets exactly; stride-driven callers
 * (membw_decompose's progress hook) may overshoot, which is counted
 * as a *clamped* epoch and surfaced in the manifest.  endRun()
 * closes the final partial epoch — including post-trace activity
 * such as the end-of-run dirty flush — and records each source's
 * aggregate, so Σ(epochs) == aggregate always holds.
 *
 * State round-trips through the checkpoint container ("PROF"
 * section): a SIGTERM-interrupted profiled run resumed with
 * --resume writes byte-identical profile JSON to an uninterrupted
 * one.  The JSON itself contains no wall-clock fields.
 */

#ifndef MEMBW_OBS_EPOCH_PROFILER_HH
#define MEMBW_OBS_EPOCH_PROFILER_HH

#include <cstdint>
#include <functional>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "obs/mem_probe.hh"

namespace membw {

class ChkWriter;
class ChkReader;

class EpochProfiler : public MemProbe
{
  public:
    /** Cumulative metric values, in the order given to addSource. */
    using SnapshotFn = std::function<std::vector<std::uint64_t>()>;

    /** Epochs per run beyond which further sampling is dropped
     * (aggregates stay exact; the drop count is surfaced). */
    static constexpr std::uint64_t maxEpochsPerRun = 1u << 18;

    explicit EpochProfiler(std::uint64_t epochRefs);

    std::uint64_t epochRefs() const { return epochRefs_; }

    // ---- run/source model ----------------------------------------

    /**
     * Open a run named @p name.  When the most recent run has the
     * same name and was never ended (a --resume continuing an
     * interrupted phase), the existing run is re-entered and its
     * sources await re-attachment via addSource().
     */
    void beginRun(const std::string &name);

    /** Attach a numeric attribute (e.g. "pin_mbs") to the open run. */
    void setRunAttr(const std::string &key, double value);

    /**
     * Register (or, after a resume, re-attach) a counter source on
     * the open run.  @p fn returns the component's *cumulative*
     * values, one per metric name; the initial snapshot is taken
     * here.  Sources cannot be added after the run's first epoch
     * has closed (except to re-attach an identical source).
     */
    void addSource(const std::string &component,
                   std::vector<std::string> metrics, SnapshotFn fn);

    /**
     * Advance the open run's reference clock.  One compare until a
     * boundary is reached, so per-reference loops may call this
     * unconditionally.
     */
    void
    advanceTo(std::uint64_t refsDone)
    {
        if (refsDone < nextTarget_)
            return;
        closeEpoch(refsDone);
    }

    /** References until the next epoch boundary (>= 1); used to
     * clamp sliced drivers so they observe boundaries exactly. */
    std::uint64_t
    refsToNextTarget(std::uint64_t refsDone) const
    {
        return refsDone >= nextTarget_ ? 1 : nextTarget_ - refsDone;
    }

    /**
     * Close the open run at @p refsDone: a final (possibly partial,
     * possibly zero-reference) epoch captures any counter movement
     * since the last boundary — the end-of-run flush included — and
     * each source's aggregate snapshot is recorded.
     */
    void endRun(std::uint64_t refsDone);

    /** Discard the open run (an interrupted phase that will re-run
     * from its start on --resume).  No-op when no run is open. */
    void abortRun();

    /** Emit a line-buffered stderr note at each epoch close. */
    void setVerbose(bool on) { verbose_ = on; }

    // The structural-profile hooks (onEvict, onBelowTraffic,
    // onDramAccess, onMtcScan, setRegionLevel) are inherited from
    // MemProbe, which keeps them inline on the probe hot path; this
    // class adds their persistence and export.

    // ---- introspection -------------------------------------------

    std::uint64_t epochsClosed() const;
    std::uint64_t clampedEpochs() const;
    std::uint64_t droppedEpochs() const;

    // ---- persistence ---------------------------------------------

    /** Serialize all profiler state into one "PROF" section. */
    void saveState(ChkWriter &w) const;

    /** Restore what saveState() wrote (sources re-attach via the
     * beginRun()/addSource() resume path); errors latch on @p r. */
    void loadState(ChkReader &r);

    /** Render the versioned columnar JSON document. */
    std::string json(const std::string &tool) const;

    /** json() to @p path; fatal() on I/O failure. */
    void writeFile(const std::string &path,
                   const std::string &tool) const;

  private:
    struct Source
    {
        std::string component;
        std::vector<std::string> metrics;
        SnapshotFn fn; ///< not persisted; re-attached on resume
        std::vector<std::uint64_t> prev; ///< cumulative, last boundary
        /** columns[metric][epoch] = per-epoch delta. */
        std::vector<std::vector<std::uint64_t>> columns;
        std::vector<std::uint64_t> aggregate; ///< set by endRun()
        bool ended = false;
    };

    struct Run
    {
        std::string name;
        std::vector<std::pair<std::string, double>> attrs;
        std::vector<Source> sources;
        std::vector<std::uint64_t> endRef; ///< per closed epoch
        std::uint64_t lastCloseRef = 0;
        std::uint64_t clamped = 0;
        std::uint64_t dropped = 0;
        bool ended = false;
    };

    Run *openRun();
    const Run *openRun() const;
    void closeEpoch(std::uint64_t refsDone);
    void writeRunJson(class JsonWriter &w, const Run &run) const;
    void writeDerivedJson(class JsonWriter &w, const Run &run) const;

    std::uint64_t epochRefs_;
    std::uint64_t nextTarget_ = ~std::uint64_t{0};
    std::vector<Run> runs_;
    bool verbose_ = false;

    /** Probe accumulators as of the open run's beginRun(), restored
     * by abortRun(): an aborted phase re-runs from its start on
     * --resume, so its partial structural-profile contribution must
     * not survive into the checkpoint or it would be counted twice. */
    struct ProbeState
    {
        std::vector<std::vector<std::uint64_t>> churn;
        std::unordered_map<std::uint64_t, std::uint64_t> region;
        std::uint64_t dramRowHits = 0;
        std::uint64_t dramRowMisses = 0;
        std::uint64_t mtcScanPops = 0;
    };
    ProbeState probeAtRunStart_;
};

/** The process-wide profiler behind --profile-out (null until
 * profilerInit()). */
EpochProfiler *profilerActive();

/** Create the global profiler: epoch length @p epochRefs, output
 * registered for @p path.  Fatal on re-initialisation. */
EpochProfiler &profilerInit(const std::string &path,
                            std::uint64_t epochRefs);

/** Write the registered --profile-out file now.  No-op when
 * profiling was never initialised. */
void profilerWriteNow(const std::string &tool);

class RunManifest;

/** Record the active profiler's configuration on @p manifest
 * (profile_epoch, profile_epochs, and clamp/drop counts when
 * nonzero).  The profiling config describes how the run was
 * observed, not what it computed, so — like jobs/collapse elsewhere
 * — it is omitted when @p stableJson.  No-op when profiling is off. */
void writeProfileManifest(RunManifest &manifest, bool stableJson);

} // namespace membw

#endif // MEMBW_OBS_EPOCH_PROFILER_HH
