/**
 * @file
 * Serialized stderr line emitter.
 *
 * The heartbeat (--stats-every), the sweep progress callback, and
 * worker-side diagnostics can all write to stderr concurrently; raw
 * fprintf interleaves their bytes into torn lines at --jobs N.
 * emitLine()/emitLinef() build each message into one buffer and hand
 * it to the stream in a single locked write, so every emitted line
 * arrives whole.
 */

#ifndef MEMBW_OBS_EMIT_HH
#define MEMBW_OBS_EMIT_HH

#include <string>

namespace membw {

/** Write @p line (a trailing '\n' is appended if absent) to stderr
 * as one atomic unit. */
void emitLine(const std::string &line);

/** printf-style emitLine(). */
void emitLinef(const char *fmt, ...)
    __attribute__((format(printf, 1, 2)));

} // namespace membw

#endif // MEMBW_OBS_EMIT_HH
