/**
 * @file
 * Wall-clock helpers: a run timer for the manifest and a periodic
 * progress heartbeat (refs/sec + ETA) for long simulations.
 *
 * The heartbeat writes to stderr so it never contaminates stdout
 * tables or redirected JSON.  Every line goes through the
 * serialized emitter (obs/emit.hh), so heartbeats from --jobs N
 * sweeps never tear against other stderr writers.
 */

#ifndef MEMBW_OBS_PROGRESS_HH
#define MEMBW_OBS_PROGRESS_HH

#include <chrono>
#include <cstdint>
#include <cstdio>
#include <functional>
#include <string>
#include <utility>

#include "obs/emit.hh"

namespace membw {

/** Monotonic stopwatch started at construction. */
class WallTimer
{
  public:
    WallTimer() : start_(std::chrono::steady_clock::now()) {}

    double
    seconds() const
    {
        return std::chrono::duration<double>(
                   std::chrono::steady_clock::now() - start_)
            .count();
    }

  private:
    std::chrono::steady_clock::time_point start_;
};

/**
 * Periodic progress reporter.  Call tick() once per unit of work;
 * every @p every units it prints one stderr line with the completion
 * fraction, the host simulation rate, and the ETA.  every == 0
 * disables all output, so callers can tick() unconditionally.
 */
class ProgressMeter
{
  public:
    /**
     * Extra per-heartbeat status (e.g. checkpoint age, watchdog
     * slack) appended to each line.  Return "" for no annotation.
     */
    using AnnotateFn = std::function<std::string()>;

    ProgressMeter(std::string label, std::uint64_t every)
        : label_(std::move(label)), every_(every)
    {
    }

    void setAnnotator(AnnotateFn fn) { annotate_ = std::move(fn); }

    void
    tick(std::uint64_t done, std::uint64_t total)
    {
        if (every_ == 0 || done == 0 || done % every_ != 0)
            return;
        emit(done, total);
    }

    /** Unconditional report (used for the final 100% line). */
    void
    emit(std::uint64_t done, std::uint64_t total) const
    {
        const double elapsed = timer_.seconds();
        const double rate =
            elapsed > 0.0 ? static_cast<double>(done) / elapsed : 0.0;
        const double pct =
            total ? 100.0 * static_cast<double>(done) /
                        static_cast<double>(total)
                  : 0.0;
        const double eta =
            rate > 0.0 && total > done
                ? static_cast<double>(total - done) / rate
                : 0.0;
        const std::string note = annotate_ ? annotate_() : "";
        emitLinef("[%s] %llu/%llu refs (%.1f%%) | %.2f Mrefs/s | "
                  "ETA %.1fs%s%s",
                  label_.c_str(),
                  static_cast<unsigned long long>(done),
                  static_cast<unsigned long long>(total), pct,
                  rate / 1e6, eta, note.empty() ? "" : " | ",
                  note.c_str());
    }

    double elapsedSeconds() const { return timer_.seconds(); }

  private:
    std::string label_;
    std::uint64_t every_;
    WallTimer timer_;
    AnnotateFn annotate_;
};

} // namespace membw

#endif // MEMBW_OBS_PROGRESS_HH
