#include "obs/build_info.hh"

#include "obs/json.hh"

// Injected by src/obs/CMakeLists.txt; the fallbacks keep non-CMake
// consumers (clangd, fuzz drivers) compiling.
#ifndef MEMBW_VERSION_STRING
#define MEMBW_VERSION_STRING "0.0.0"
#endif
#ifndef MEMBW_GIT_DESCRIBE
#define MEMBW_GIT_DESCRIBE "unknown"
#endif
#ifndef MEMBW_SANITIZE_NAME
#define MEMBW_SANITIZE_NAME "none"
#endif

namespace membw {

const BuildInfo &
buildInfo()
{
    static const BuildInfo info{
        MEMBW_VERSION_STRING,
        MEMBW_GIT_DESCRIBE,
        MEMBW_SANITIZE_NAME,
#ifdef MEMBW_SIMD_ENABLED
        true,
#else
        false,
#endif
#ifdef MEMBW_TRACING_ENABLED
        true,
#else
        false,
#endif
#ifdef MEMBW_PROFILING_ENABLED
        true,
#else
        false,
#endif
    };
    return info;
}

std::string
formatVersionLine(std::string_view tool)
{
    const BuildInfo &b = buildInfo();
    std::string out(tool);
    out += ' ';
    out += b.version;
    out += " (";
    out += b.gitDescribe;
    out += ")";
    return out;
}

std::string
formatBuildInfo(std::string_view tool, std::string_view runtimeSimdTier)
{
    const BuildInfo &b = buildInfo();
    const auto onoff = [](bool v) { return v ? "on" : "off"; };
    std::string out = formatVersionLine(tool);
    out += "\n  simd:       ";
    out += onoff(b.simd);
    if (!runtimeSimdTier.empty()) {
        out += " (runtime tier ";
        out += runtimeSimdTier;
        out += ")";
    }
    out += "\n  tracing:    ";
    out += onoff(b.tracing);
    out += "\n  profiling:  ";
    out += onoff(b.profiling);
    out += "\n  sanitizer:  ";
    out += b.sanitizer;
    out += "\n";
    return out;
}

void
writeBuildInfo(JsonWriter &w, std::string_view runtimeSimdTier)
{
    const BuildInfo &b = buildInfo();
    w.beginObject();
    w.field("version", b.version);
    w.field("git_describe", b.gitDescribe);
    w.field("simd", b.simd);
    if (!runtimeSimdTier.empty())
        w.field("simd_tier", runtimeSimdTier);
    w.field("tracing", b.tracing);
    w.field("profiling", b.profiling);
    w.field("sanitizer", b.sanitizer);
    w.endObject();
}

} // namespace membw
