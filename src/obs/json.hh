/**
 * @file
 * Minimal JSON infrastructure for run telemetry.
 *
 * JsonWriter is a streaming, stack-checked pretty-printer whose
 * output is byte-deterministic for a given call sequence (doubles are
 * rendered with shortest-round-trip std::to_chars), which is what
 * makes "two identical runs emit identical stats files" testable.
 * JsonValue/parseJson is the matching reader, used by the exporters'
 * round-trip tests and by downstream tooling that diffs BENCH_*.json
 * trajectories.
 */

#ifndef MEMBW_OBS_JSON_HH
#define MEMBW_OBS_JSON_HH

#include <cstdint>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace membw {

/** Render @p v with the shortest representation that round-trips. */
std::string formatJsonNumber(double v);

/**
 * Render @p s as a quoted JSON string literal (quotes included),
 * using the same escaping as JsonWriter — so a full JSON document
 * can be embedded verbatim as a string value in a wire envelope and
 * recovered byte-identically by parseJson.
 */
std::string jsonEscape(std::string_view s);

/** Streaming JSON writer with two-space indentation. */
class JsonWriter
{
  public:
    void beginObject();
    void endObject();
    void beginArray();
    void endArray();

    /** Emit an object key; must be followed by exactly one value. */
    void key(std::string_view k);

    void value(std::string_view v);
    void value(const char *v) { value(std::string_view(v)); }
    void value(double v);
    void value(std::uint64_t v);
    void value(std::int64_t v);
    void value(int v) { value(static_cast<std::int64_t>(v)); }
    void value(bool v);
    void null();

    /** key() + value() in one call. */
    template <typename T>
    void
    field(std::string_view k, T v)
    {
        key(k);
        value(v);
    }

    /** The document so far; complete once every scope is closed. */
    const std::string &str() const { return out_; }

    /** True when every begun object/array has been ended. */
    bool complete() const { return stack_.empty() && items_ > 0; }

  private:
    struct Scope
    {
        bool array = false;
        bool expectValue = false; ///< a key was emitted, value pending
        std::size_t items = 0;
    };

    void preValue();
    void newline();
    void appendEscaped(std::string_view s);

    std::string out_;
    std::vector<Scope> stack_;
    std::size_t items_ = 0; ///< top-level values emitted
};

/** Parsed JSON document node. */
class JsonValue
{
  public:
    enum class Kind : std::uint8_t
    {
        Null,
        Bool,
        Number,
        String,
        Array,
        Object,
    };

    Kind kind = Kind::Null;
    bool boolean = false;
    double number = 0.0;
    std::string string;
    std::vector<JsonValue> array;
    /** Insertion-ordered (mirrors the emitted document). */
    std::vector<std::pair<std::string, JsonValue>> object;

    bool isObject() const { return kind == Kind::Object; }
    bool isArray() const { return kind == Kind::Array; }
    bool isNumber() const { return kind == Kind::Number; }
    bool isString() const { return kind == Kind::String; }

    /** Member lookup; nullptr when absent or not an object. */
    const JsonValue *find(std::string_view key) const;

    /** Member access; fatal() when absent. */
    const JsonValue &at(std::string_view key) const;

    /** Array element access; fatal() when out of range. */
    const JsonValue &at(std::size_t i) const;

    double asNumber() const;           ///< fatal() on non-numbers
    const std::string &asString() const;
    bool asBool() const;
};

/** Parse @p text; fatal() on malformed input or trailing garbage. */
JsonValue parseJson(std::string_view text);

} // namespace membw

#endif // MEMBW_OBS_JSON_HH
