/**
 * @file
 * Exporters for the span tracing layer (trace_span.hh):
 *
 *  - tracingInit()/tracingWriteChromeTrace(): flush the per-thread
 *    ring buffers to a Chrome trace-event JSON file ("X" complete
 *    events, "C" counter tracks, "M" thread-name metadata) that
 *    Perfetto and chrome://tracing load directly;
 *  - SeriesWriter: an append-only JSONL time series ({"t": seconds,
 *    name: value, ...} per line) sampled from the run's live
 *    counters (refs retired, sweep cells done, pool queue depth,
 *    checkpoint age) on an interval.
 *
 * Both are no-ops when tracing is configured out or never
 * initialised, so call sites need no guards.
 */

#ifndef MEMBW_OBS_TRACE_EXPORT_HH
#define MEMBW_OBS_TRACE_EXPORT_HH

#include <chrono>
#include <cstdint>
#include <cstdio>
#include <initializer_list>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

#include "obs/trace_span.hh"

namespace membw {

#ifdef MEMBW_TRACING_ENABLED

namespace tracedetail {

/** Ring snapshot record handed to the exporter. */
struct FlatEvent
{
    std::uint32_t tid = 0;
    std::uint64_t ts = 0;  ///< ns since epoch
    std::uint64_t dur = 0; ///< ns (spans)
    double value = 0.0;    ///< counters
    std::string name;
    std::string detail;
    std::uint8_t kind = 0; ///< Event::Kind
    bool open = false;     ///< span unclosed at flush
};

/** Copy every published event + open span out of the rings. */
void snapshot(std::vector<FlatEvent> &out, std::uint64_t &droppedTotal,
              std::vector<std::pair<std::uint32_t, std::string>> &threads);

} // namespace tracedetail

/**
 * Render the current buffers as a complete Chrome trace-event JSON
 * document.  Per-thread event lists are sorted by begin timestamp,
 * so `ts` is monotonic within each `tid`.  Does not clear buffers.
 */
std::string tracingChromeJson(const std::string &tool);

/** tracingChromeJson() to @p path; fatal() on I/O failure. */
void tracingWriteChromeTrace(const std::string &path,
                             const std::string &tool);

/**
 * Turn recording on and arrange for the trace to be written to
 * @p path when the process exits (std::exit included, so the
 * SIGTERM drain paths flush too) or when tracingFlushNow() runs.
 */
void tracingInit(const std::string &path, const std::string &tool);

/** Write the registered --trace-out file now (idempotent per run). */
void tracingFlushNow();

#else // !MEMBW_TRACING_ENABLED

inline std::string
tracingChromeJson(const std::string &)
{
    return "{\n  \"traceEvents\": []\n}";
}
inline void tracingWriteChromeTrace(const std::string &,
                                    const std::string &) {}
inline void tracingInit(const std::string &, const std::string &) {}
inline void tracingFlushNow() {}

#endif // MEMBW_TRACING_ENABLED

/**
 * Interval-sampled JSONL time series.  One writer per process (the
 * --series-out file); every sample() call is cheap when the file is
 * closed or the interval has not elapsed, so hot loops may call it
 * on a stride without further guards.  Thread-safe.
 */
class SeriesWriter
{
  public:
    using Fields =
        std::initializer_list<std::pair<const char *, double>>;

    /** The process-wide writer behind --series-out. */
    static SeriesWriter &global();

    SeriesWriter() = default;
    ~SeriesWriter();
    SeriesWriter(const SeriesWriter &) = delete;
    SeriesWriter &operator=(const SeriesWriter &) = delete;

    /**
     * Open @p path and start the clock.  @p intervalSec is the
     * minimum spacing between un-forced samples (default 250ms).
     * Samples stage into '<path>.tmp'; close() renames the finished
     * series into place, so readers never see a torn file.  A write
     * failure mid-run degrades (drops the series with a warning)
     * rather than killing the simulation.
     */
    void init(const std::string &path, double intervalSec = 0.25);

    bool enabled() const { return file_ != nullptr; }

    /**
     * Append one {"t": seconds, ...fields} line when the interval
     * has elapsed (or always, with @p force).  Returns true when a
     * line was written.
     */
    bool sample(Fields fields, bool force = false);

    /**
     * Flush, close, and rename the staged file into place; further
     * samples are dropped.  Idempotent.
     */
    void close();

    /** Samples written so far. */
    std::uint64_t lines() const { return lines_; }

  private:
    /** Drop the series after a write failure (mutex_ held). */
    void degradeLocked(const std::string &why);

    std::mutex mutex_;
    std::FILE *file_ = nullptr;
    std::string path_;
    std::string tmp_;
    double intervalSec_ = 0.25;
    std::chrono::steady_clock::time_point epoch_{};
    std::chrono::steady_clock::time_point lastSample_{};
    bool sampledOnce_ = false;
    std::uint64_t lines_ = 0;
};

} // namespace membw

#endif // MEMBW_OBS_TRACE_EXPORT_HH
