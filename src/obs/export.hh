/**
 * @file
 * Registry exporters: pretty text (TextTable), JSON, and CSV.
 *
 * All three walk the registry in registration order, so identical
 * runs produce byte-identical output — the property the determinism
 * test in tests/obs_test.cc pins down.
 */

#ifndef MEMBW_OBS_EXPORT_HH
#define MEMBW_OBS_EXPORT_HH

#include <string>

#include "obs/json.hh"
#include "obs/registry.hh"

namespace membw {

/** Render as an aligned text table (name, value, unit, description). */
std::string exportText(const StatsRegistry &registry);

/**
 * Emit the stats array (one object per stat, with name/kind/desc/unit
 * plus kind-specific value fields) into an open writer, as the value
 * following a key() call or as an array element.
 */
void writeStatsArray(const StatsRegistry &registry, JsonWriter &w);

/** Standalone document: {"stats": [...]}. */
std::string exportJson(const StatsRegistry &registry);

/** One line per stat: name,kind,value,unit,description. */
std::string exportCsv(const StatsRegistry &registry);

/** Write @p contents to @p path; fatal() on I/O failure. */
void writeFileOrDie(const std::string &path,
                    const std::string &contents);

} // namespace membw

#endif // MEMBW_OBS_EXPORT_HH
