/**
 * @file
 * Hierarchical statistics registry.
 *
 * Stats live in one flat, registration-ordered table keyed by dotted
 * names ("l1.demand_misses", "core.stall.fetch").  StatsGroup is a
 * lightweight prefix view used by components to publish under their
 * own subtree without knowing where in the hierarchy they sit:
 *
 *   StatsRegistry reg;
 *   StatsGroup l1 = reg.group("l1");
 *   cache.publishStats(l1);          // registers l1.hits, l1.misses...
 *
 * Registration order is deterministic (it follows program order), so
 * exports of identical runs are byte-identical.
 */

#ifndef MEMBW_OBS_REGISTRY_HH
#define MEMBW_OBS_REGISTRY_HH

#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "obs/stat.hh"

namespace membw {

class StatsGroup;

/** Owning container of all stats for one run. */
class StatsRegistry
{
  public:
    StatsRegistry() = default;
    StatsRegistry(const StatsRegistry &) = delete;
    StatsRegistry &operator=(const StatsRegistry &) = delete;

    ScalarStat &addScalar(const std::string &name,
                          const std::string &desc,
                          const std::string &unit = "");
    CounterStat &addCounter(const std::string &name,
                            const std::string &desc,
                            const std::string &unit = "");
    DistributionStat &addDistribution(const std::string &name,
                                      const std::string &desc,
                                      const std::string &unit = "");
    RatioStat &addRatio(const std::string &name,
                        const std::string &desc,
                        const StatBase &numerator,
                        const StatBase &denominator,
                        const std::string &unit = "");

    /** Lookup by full dotted name; nullptr when absent. */
    const StatBase *find(const std::string &name) const;
    StatBase *find(const std::string &name);

    /** All stats in registration order. */
    const std::vector<std::unique_ptr<StatBase>> &
    stats() const
    {
        return stats_;
    }

    std::size_t size() const { return stats_.size(); }

    /** A prefix view; names become "<prefix>.<name>". */
    StatsGroup group(const std::string &prefix);

  private:
    template <typename T, typename... Args>
    T &add(const std::string &name, Args &&...args);

    std::vector<std::unique_ptr<StatBase>> stats_;
    std::unordered_map<std::string, StatBase *> byName_;
};

/** Non-owning prefix view of a registry subtree. */
class StatsGroup
{
  public:
    StatsGroup(StatsRegistry &registry, std::string prefix)
        : registry_(registry), prefix_(std::move(prefix))
    {
    }

    ScalarStat &
    addScalar(const std::string &name, const std::string &desc,
              const std::string &unit = "")
    {
        return registry_.addScalar(qualify(name), desc, unit);
    }

    CounterStat &
    addCounter(const std::string &name, const std::string &desc,
               const std::string &unit = "")
    {
        return registry_.addCounter(qualify(name), desc, unit);
    }

    DistributionStat &
    addDistribution(const std::string &name, const std::string &desc,
                    const std::string &unit = "")
    {
        return registry_.addDistribution(qualify(name), desc, unit);
    }

    RatioStat &
    addRatio(const std::string &name, const std::string &desc,
             const StatBase &numerator, const StatBase &denominator,
             const std::string &unit = "")
    {
        return registry_.addRatio(qualify(name), desc, numerator,
                                  denominator, unit);
    }

    /** Nested subtree: group("bytes") under "l1" -> "l1.bytes". */
    StatsGroup
    group(const std::string &sub)
    {
        return StatsGroup(registry_, qualify(sub));
    }

    const std::string &prefix() const { return prefix_; }
    StatsRegistry &registry() { return registry_; }

  private:
    std::string
    qualify(const std::string &name) const
    {
        return prefix_.empty() ? name : prefix_ + "." + name;
    }

    StatsRegistry &registry_;
    std::string prefix_;
};

} // namespace membw

#endif // MEMBW_OBS_REGISTRY_HH
