#include "obs/stat.hh"

#include <cmath>

namespace membw {

const char *
toString(StatKind kind)
{
    switch (kind) {
      case StatKind::Scalar: return "scalar";
      case StatKind::Counter: return "counter";
      case StatKind::Distribution: return "distribution";
      case StatKind::Ratio: return "ratio";
    }
    return "?";
}

double
DistData::mean() const
{
    return count ? sum / static_cast<double>(count) : 0.0;
}

double
DistData::stddev() const
{
    if (count < 2)
        return 0.0;
    const double n = static_cast<double>(count);
    const double var = sumSq / n - (sum / n) * (sum / n);
    return var > 0.0 ? std::sqrt(var) : 0.0;
}

std::string
StatBase::valueString() const
{
    return formatJsonNumber(numericValue());
}

void
StatBase::jsonFields(JsonWriter &w) const
{
    w.field("value", numericValue());
}

std::string
CounterStat::valueString() const
{
    return std::to_string(value());
}

void
CounterStat::jsonFields(JsonWriter &w) const
{
    w.field("value", value());
}

std::string
DistributionStat::valueString() const
{
    return formatJsonNumber(data_.mean()) + " +/- " +
           formatJsonNumber(data_.stddev());
}

void
DistributionStat::jsonFields(JsonWriter &w) const
{
    w.field("count", data_.count);
    w.field("mean", data_.mean());
    w.field("stddev", data_.stddev());
    w.field("min", data_.count ? data_.minv : 0.0);
    w.field("max", data_.count ? data_.maxv : 0.0);
}

double
RatioStat::numericValue() const
{
    const double den = den_.numericValue();
    return den != 0.0 ? num_.numericValue() / den : 0.0;
}

void
RatioStat::jsonFields(JsonWriter &w) const
{
    w.field("value", numericValue());
    w.field("numerator", num_.name());
    w.field("denominator", den_.name());
}

} // namespace membw
