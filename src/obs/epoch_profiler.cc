#include "obs/epoch_profiler.hh"

#include <algorithm>
#include <map>
#include <memory>

#include "common/log.hh"
#include "obs/emit.hh"
#include "obs/export.hh"
#include "obs/json.hh"
#include "obs/manifest.hh"
#include "resilience/checkpoint.hh"

namespace membw {

namespace {

/** Buckets in the exported region heat table. */
constexpr std::uint64_t regionBuckets = 256;

/** Hot sets reported per level in the conflict heatmap. */
constexpr std::size_t churnTopK = 16;

constexpr std::uint64_t
churnKey(unsigned level, std::size_t set)
{
    return (static_cast<std::uint64_t>(level) << 48) |
           static_cast<std::uint64_t>(set);
}

} // namespace

EpochProfiler::EpochProfiler(std::uint64_t epochRefs)
    : epochRefs_(epochRefs)
{
    if (epochRefs_ == 0)
        fatal("profile epoch length must be at least 1 reference");
}

EpochProfiler::Run *
EpochProfiler::openRun()
{
    if (runs_.empty() || runs_.back().ended)
        return nullptr;
    return &runs_.back();
}

const EpochProfiler::Run *
EpochProfiler::openRun() const
{
    if (runs_.empty() || runs_.back().ended)
        return nullptr;
    return &runs_.back();
}

void
EpochProfiler::beginRun(const std::string &name)
{
    probeAtRunStart_ = {churn_, region_, dramRowHits_, dramRowMisses_,
                        mtcScanPops_};
    if (Run *open = openRun()) {
        if (open->name == name) {
            // --resume re-entering an interrupted run: keep its
            // columns and previous snapshots; sources re-attach.
            nextTarget_ = open->lastCloseRef + epochRefs_;
            return;
        }
        fatal("profiler run '" + open->name +
              "' is still open; cannot begin '" + name + "'");
    }
    Run run;
    run.name = name;
    runs_.push_back(std::move(run));
    nextTarget_ = epochRefs_;
}

void
EpochProfiler::setRunAttr(const std::string &key, double value)
{
    Run *run = openRun();
    if (!run)
        fatal("profiler attr '" + key + "' set with no open run");
    for (auto &attr : run->attrs) {
        if (attr.first == key) {
            attr.second = value;
            return;
        }
    }
    run->attrs.emplace_back(key, value);
}

void
EpochProfiler::addSource(const std::string &component,
                         std::vector<std::string> metrics,
                         SnapshotFn fn)
{
    Run *run = openRun();
    if (!run)
        fatal("profiler source '" + component +
              "' added with no open run");
    for (Source &s : run->sources) {
        if (s.component == component) {
            if (s.metrics != metrics)
                fatal("profiler source '" + component +
                      "' re-attached with different metrics");
            s.fn = std::move(fn);
            return;
        }
    }
    if (!run->endRef.empty())
        fatal("profiler source '" + component +
              "' added after the run's first epoch closed");
    Source s;
    s.component = component;
    s.metrics = std::move(metrics);
    s.fn = std::move(fn);
    s.prev = s.fn();
    if (s.prev.size() != s.metrics.size())
        fatal("profiler source '" + component + "' returned " +
              std::to_string(s.prev.size()) + " values for " +
              std::to_string(s.metrics.size()) + " metrics");
    s.columns.resize(s.metrics.size());
    run->sources.push_back(std::move(s));
}

void
EpochProfiler::closeEpoch(std::uint64_t refsDone)
{
    Run *run = openRun();
    if (!run) {
        nextTarget_ = ~std::uint64_t{0};
        return;
    }
    if (run->endRef.size() >= maxEpochsPerRun) {
        run->dropped++;
        run->lastCloseRef = refsDone;
        nextTarget_ = refsDone + epochRefs_;
        return;
    }
    const bool clamped = refsDone > nextTarget_;
    for (Source &s : run->sources) {
        std::vector<std::uint64_t> snap = s.fn();
        if (snap.size() != s.metrics.size())
            fatal("profiler source '" + s.component +
                  "' changed its metric count mid-run");
        for (std::size_t m = 0; m < snap.size(); ++m)
            s.columns[m].push_back(snap[m] - s.prev[m]);
        s.prev = std::move(snap);
    }
    run->endRef.push_back(refsDone);
    if (clamped)
        run->clamped++;
    run->lastCloseRef = refsDone;
    nextTarget_ = refsDone + epochRefs_;
    if (verbose_)
        emitLinef("profiler: %s epoch %zu closed at ref %llu%s",
                  run->name.c_str(), run->endRef.size(),
                  static_cast<unsigned long long>(refsDone),
                  clamped ? " (clamped)" : "");
}

void
EpochProfiler::endRun(std::uint64_t refsDone)
{
    Run *run = openRun();
    if (!run)
        return;

    // Final snapshots.  A partial epoch is closed whenever the run
    // advanced past the last boundary *or* any counter moved since
    // it (the end-of-run dirty flush lands after the final
    // reference), so Σ(epochs) == aggregate holds exactly.
    std::vector<std::vector<std::uint64_t>> snaps;
    snaps.reserve(run->sources.size());
    bool moved = refsDone > run->lastCloseRef;
    for (Source &s : run->sources) {
        snaps.push_back(s.fn());
        if (snaps.back().size() != s.metrics.size())
            fatal("profiler source '" + s.component +
                  "' changed its metric count mid-run");
        if (snaps.back() != s.prev)
            moved = true;
    }
    if (moved) {
        if (run->endRef.size() >= maxEpochsPerRun) {
            run->dropped++;
        } else {
            for (std::size_t i = 0; i < run->sources.size(); ++i) {
                Source &s = run->sources[i];
                for (std::size_t m = 0; m < s.metrics.size(); ++m)
                    s.columns[m].push_back(snaps[i][m] - s.prev[m]);
            }
            run->endRef.push_back(refsDone);
        }
        run->lastCloseRef = refsDone;
    }
    for (std::size_t i = 0; i < run->sources.size(); ++i) {
        run->sources[i].prev = snaps[i];
        run->sources[i].aggregate = std::move(snaps[i]);
        run->sources[i].ended = true;
    }
    run->ended = true;
    nextTarget_ = ~std::uint64_t{0};
    if (verbose_)
        emitLinef("profiler: %s run ended (%zu epochs, %llu refs)",
                  run->name.c_str(), run->endRef.size(),
                  static_cast<unsigned long long>(refsDone));
}

void
EpochProfiler::abortRun()
{
    if (!openRun())
        return;
    runs_.pop_back();
    // Roll the structural profiles back to the run's start: the
    // aborted phase re-runs whole on --resume and will re-contribute.
    churn_ = probeAtRunStart_.churn;
    region_ = probeAtRunStart_.region;
    regionLastPage_ = ~std::uint64_t{0};
    regionLastCount_ = nullptr;
    dramRowHits_ = probeAtRunStart_.dramRowHits;
    dramRowMisses_ = probeAtRunStart_.dramRowMisses;
    mtcScanPops_ = probeAtRunStart_.mtcScanPops;
    nextTarget_ = ~std::uint64_t{0};
}

// ---- introspection ------------------------------------------------

std::uint64_t
EpochProfiler::epochsClosed() const
{
    std::uint64_t n = 0;
    for (const Run &r : runs_)
        n += r.endRef.size();
    return n;
}

std::uint64_t
EpochProfiler::clampedEpochs() const
{
    std::uint64_t n = 0;
    for (const Run &r : runs_)
        n += r.clamped;
    return n;
}

std::uint64_t
EpochProfiler::droppedEpochs() const
{
    std::uint64_t n = 0;
    for (const Run &r : runs_)
        n += r.dropped;
    return n;
}

// ---- persistence --------------------------------------------------

namespace {
constexpr std::uint32_t profStateVersion = 1;
}

void
EpochProfiler::saveState(ChkWriter &w) const
{
    w.beginSection(chkTag("PROF"));
    w.u32(profStateVersion);
    w.u64(epochRefs_);
#ifdef MEMBW_PROFILING_ENABLED
    w.u8(1);
#else
    w.u8(0);
#endif
    w.u64(dramRowHits_);
    w.u64(dramRowMisses_);
    w.u64(mtcScanPops_);
    w.u32(regionLevel_);

    // Both profiles are written as sorted sparse (key, count) pairs
    // so the image is deterministic.  The dense churn table yields
    // that order directly: level-then-set ascending == churnKey
    // ascending, and zero slots (growth slack) are skipped.
    std::uint64_t churnEntries = 0;
    for (const auto &sets : churn_)
        for (std::uint64_t count : sets)
            if (count)
                churnEntries++;
    w.u64(churnEntries);
    for (std::size_t level = 0; level < churn_.size(); ++level)
        for (std::size_t set = 0; set < churn_[level].size(); ++set)
            if (const std::uint64_t count = churn_[level][set]) {
                w.u64(churnKey(static_cast<unsigned>(level), set));
                w.u64(count);
            }

    std::vector<std::pair<std::uint64_t, std::uint64_t>> regions(
        region_.begin(), region_.end());
    std::sort(regions.begin(), regions.end());
    w.u64(regions.size());
    for (const auto &[key, count] : regions) {
        w.u64(key);
        w.u64(count);
    }

    w.u64(runs_.size());
    for (const Run &run : runs_) {
        w.str(run.name);
        w.u8(run.ended ? 1 : 0);
        w.u64(run.clamped);
        w.u64(run.dropped);
        w.u64(run.lastCloseRef);
        w.u64(run.attrs.size());
        for (const auto &[key, value] : run.attrs) {
            w.str(key);
            w.f64(value);
        }
        w.u64(run.endRef.size());
        for (std::uint64_t ref : run.endRef)
            w.u64(ref);
        w.u64(run.sources.size());
        for (const Source &s : run.sources) {
            w.str(s.component);
            w.u64(s.metrics.size());
            for (const std::string &m : s.metrics)
                w.str(m);
            for (std::uint64_t v : s.prev)
                w.u64(v);
            for (const auto &col : s.columns) {
                w.u64(col.size());
                for (std::uint64_t v : col)
                    w.u64(v);
            }
            w.u8(s.ended ? 1 : 0);
            if (s.ended)
                for (std::uint64_t v : s.aggregate)
                    w.u64(v);
        }
    }
    w.endSection();
}

void
EpochProfiler::loadState(ChkReader &r)
{
    r.enterSection(chkTag("PROF"));
    const std::uint32_t version = r.u32();
    const std::uint64_t epochRefs = r.u64();
    const std::uint8_t probes = r.u8();
    if (r.failed())
        return;
    if (version != profStateVersion) {
        r.fail(Errc::Mismatch,
               "profiler checkpoint version " +
                   std::to_string(version) + " unsupported");
        return;
    }
    if (epochRefs != epochRefs_) {
        r.fail(Errc::Mismatch,
               "checkpoint was taken with --profile-epoch " +
                   std::to_string(epochRefs) + ", not " +
                   std::to_string(epochRefs_));
        return;
    }
#ifdef MEMBW_PROFILING_ENABLED
    const std::uint8_t probesHere = 1;
#else
    const std::uint8_t probesHere = 0;
#endif
    if (probes != probesHere) {
        r.fail(Errc::Mismatch,
               "checkpoint was taken by a build with a different "
               "MEMBW_PROFILING setting");
        return;
    }

    dramRowHits_ = r.u64();
    dramRowMisses_ = r.u64();
    mtcScanPops_ = r.u64();
    regionLevel_ = r.u32();

    // The churn image is sparse (key, count) pairs; rebuilding the
    // dense table from untrusted keys is the one place a small image
    // could demand a huge allocation, so the slot footprint is
    // bounded explicitly (2^24 slots ≈ 128 MB, far past any cache
    // this model sweeps).
    churn_.clear();
    constexpr std::uint64_t maxChurnSlots = std::uint64_t{1} << 24;
    std::uint64_t churnSlots = 0;
    const std::uint64_t nChurn = r.u64();
    if (r.failed() || nChurn > r.remaining() / 16) {
        r.fail(Errc::Corrupt,
               "profiler heatmap entry count implausible");
        return;
    }
    for (std::uint64_t i = 0; i < nChurn && !r.failed(); ++i) {
        const std::uint64_t key = r.u64();
        const std::uint64_t count = r.u64();
        const auto level = static_cast<std::size_t>(key >> 48);
        const auto set = static_cast<std::size_t>(
            key & ((std::uint64_t{1} << 48) - 1));
        if (level >= 256 || set >= maxChurnSlots) {
            r.fail(Errc::Corrupt, "profiler churn key implausible");
            return;
        }
        if (level >= churn_.size())
            churn_.resize(level + 1);
        auto &sets = churn_[level];
        if (set >= sets.size()) {
            churnSlots += set + 1 - sets.size();
            if (churnSlots > maxChurnSlots) {
                r.fail(Errc::Corrupt,
                       "profiler churn footprint implausible");
                return;
            }
            sets.resize(set + 1);
        }
        sets[set] = count;
    }

    region_.clear();
    regionLastPage_ = ~std::uint64_t{0};
    regionLastCount_ = nullptr;
    const std::uint64_t nRegion = r.u64();
    if (r.failed() || nRegion > r.remaining() / 16) {
        r.fail(Errc::Corrupt,
               "profiler heatmap entry count implausible");
        return;
    }
    for (std::uint64_t i = 0; i < nRegion && !r.failed(); ++i) {
        const std::uint64_t key = r.u64();
        region_[key] = r.u64();
    }

    runs_.clear();
    nextTarget_ = ~std::uint64_t{0};
    const std::uint64_t nRuns = r.u64();
    if (r.failed() || nRuns > 4096) {
        r.fail(Errc::Corrupt, "profiler run count implausible");
        return;
    }
    for (std::uint64_t ri = 0; ri < nRuns && !r.failed(); ++ri) {
        Run run;
        run.name = r.str();
        run.ended = r.u8() != 0;
        run.clamped = r.u64();
        run.dropped = r.u64();
        run.lastCloseRef = r.u64();
        const std::uint64_t nAttrs = r.u64();
        if (r.failed() || nAttrs > 256) {
            r.fail(Errc::Corrupt,
                   "profiler attr count implausible");
            return;
        }
        for (std::uint64_t i = 0; i < nAttrs && !r.failed(); ++i) {
            const std::string key = r.str();
            run.attrs.emplace_back(key, r.f64());
        }
        const std::uint64_t nEpochs = r.u64();
        if (r.failed() || nEpochs > maxEpochsPerRun ||
            nEpochs > r.remaining() / 8) {
            r.fail(Errc::Corrupt,
                   "profiler epoch count implausible");
            return;
        }
        run.endRef.reserve(static_cast<std::size_t>(nEpochs));
        for (std::uint64_t i = 0; i < nEpochs && !r.failed(); ++i)
            run.endRef.push_back(r.u64());
        const std::uint64_t nSources = r.u64();
        if (r.failed() || nSources > 256) {
            r.fail(Errc::Corrupt,
                   "profiler source count implausible");
            return;
        }
        for (std::uint64_t si = 0; si < nSources && !r.failed();
             ++si) {
            Source s;
            s.component = r.str();
            const std::uint64_t nMetrics = r.u64();
            if (r.failed() || nMetrics > 256) {
                r.fail(Errc::Corrupt,
                       "profiler metric count implausible");
                return;
            }
            for (std::uint64_t m = 0; m < nMetrics && !r.failed();
                 ++m)
                s.metrics.push_back(r.str());
            s.prev.resize(static_cast<std::size_t>(nMetrics));
            for (auto &v : s.prev)
                v = r.u64();
            s.columns.resize(static_cast<std::size_t>(nMetrics));
            for (auto &col : s.columns) {
                const std::uint64_t n = r.u64();
                if (r.failed() || n != nEpochs) {
                    r.fail(Errc::Corrupt,
                           "profiler column length mismatch");
                    return;
                }
                col.reserve(static_cast<std::size_t>(n));
                for (std::uint64_t i = 0; i < n && !r.failed(); ++i)
                    col.push_back(r.u64());
            }
            s.ended = r.u8() != 0;
            if (s.ended) {
                s.aggregate.resize(
                    static_cast<std::size_t>(nMetrics));
                for (auto &v : s.aggregate)
                    v = r.u64();
            }
            run.sources.push_back(std::move(s));
        }
        runs_.push_back(std::move(run));
    }
    r.leaveSection();
}

// ---- JSON export --------------------------------------------------

namespace {

/** Index of @p name in @p metrics, or npos. */
std::size_t
metricIndex(const std::vector<std::string> &metrics,
            const char *name)
{
    for (std::size_t i = 0; i < metrics.size(); ++i)
        if (metrics[i] == name)
            return i;
    return ~std::size_t{0};
}

} // namespace

void
EpochProfiler::writeDerivedJson(JsonWriter &w, const Run &run) const
{
    // A source exposing both request_bytes (traffic above, D_{i-1})
    // and below_bytes (traffic below, D_i) yields a per-epoch
    // traffic ratio r = ΔD_i / ΔD_{i-1} (Equation 4).  For
    // hierarchy-shaped runs the product over levels collapses to
    // Δbelow(last) / Δrequest(first), giving r_total and — against
    // the run's pin_mbs attribute — per-epoch E_pin (Equation 5).
    struct Ratioed
    {
        const Source *src;
        std::size_t req, below;
    };
    std::vector<Ratioed> levels;
    for (const Source &s : run.sources) {
        const std::size_t req = metricIndex(s.metrics,
                                            "request_bytes");
        const std::size_t below = metricIndex(s.metrics,
                                              "below_bytes");
        if (req != ~std::size_t{0} && below != ~std::size_t{0})
            levels.push_back({&s, req, below});
    }
    if (levels.empty())
        return;

    const std::size_t epochs = run.endRef.size();
    auto ratio = [](std::uint64_t below, std::uint64_t req) {
        return req ? static_cast<double>(below) /
                         static_cast<double>(req)
                   : 0.0;
    };

    w.key("derived");
    w.beginObject();
    w.key("r");
    w.beginObject();
    for (const Ratioed &l : levels) {
        w.key(l.src->component);
        w.beginArray();
        for (std::size_t e = 0; e < epochs; ++e)
            w.value(ratio(l.src->columns[l.below][e],
                          l.src->columns[l.req][e]));
        w.endArray();
    }
    w.endObject();

    double pinMbs = 0;
    for (const auto &[key, value] : run.attrs)
        if (key == "pin_mbs")
            pinMbs = value;
    if (pinMbs > 0) {
        const Ratioed &first = levels.front();
        const Ratioed &last = levels.back();
        w.key("r_total");
        w.beginArray();
        for (std::size_t e = 0; e < epochs; ++e)
            w.value(ratio(last.src->columns[last.below][e],
                          first.src->columns[first.req][e]));
        w.endArray();
        w.key("epin_mbs");
        w.beginArray();
        for (std::size_t e = 0; e < epochs; ++e) {
            const double rt =
                ratio(last.src->columns[last.below][e],
                      first.src->columns[first.req][e]);
            w.value(rt > 0 ? pinMbs / rt : 0.0);
        }
        w.endArray();
    }
    w.endObject();
}

void
EpochProfiler::writeRunJson(JsonWriter &w, const Run &run) const
{
    w.beginObject();
    w.field("name", run.name);
    if (!run.attrs.empty()) {
        w.key("attrs");
        w.beginObject();
        for (const auto &[key, value] : run.attrs)
            w.field(key, value);
        w.endObject();
    }
    w.field("ended", run.ended);
    w.field("epochs",
            static_cast<std::uint64_t>(run.endRef.size()));
    w.field("clamped", run.clamped);
    w.field("dropped", run.dropped);
    w.key("end_ref");
    w.beginArray();
    for (std::uint64_t ref : run.endRef)
        w.value(ref);
    w.endArray();
    w.key("sources");
    w.beginArray();
    for (const Source &s : run.sources) {
        w.beginObject();
        w.field("component", s.component);
        w.key("metrics");
        w.beginArray();
        for (const std::string &m : s.metrics)
            w.value(m);
        w.endArray();
        w.key("columns");
        w.beginArray();
        for (const auto &col : s.columns) {
            w.beginArray();
            for (std::uint64_t v : col)
                w.value(v);
            w.endArray();
        }
        w.endArray();
        if (s.ended) {
            w.key("aggregate");
            w.beginArray();
            for (std::uint64_t v : s.aggregate)
                w.value(v);
            w.endArray();
        }
        w.endObject();
    }
    w.endArray();
    writeDerivedJson(w, run);
    w.endObject();
}

std::string
EpochProfiler::json(const std::string &tool) const
{
    JsonWriter w;
    w.beginObject();
    w.field("schema", std::string("membw-profile-v1"));
    w.field("tool", tool);
    w.field("epoch_refs", epochRefs_);
#ifdef MEMBW_PROFILING_ENABLED
    w.field("probes_compiled", true);
#else
    w.field("probes_compiled", false);
#endif
    w.field("clamped_epochs", clampedEpochs());
    w.field("dropped_epochs", droppedEpochs());

    w.key("runs");
    w.beginArray();
    for (const Run &run : runs_)
        writeRunJson(w, run);
    w.endArray();

    // Per-set conflict heatmap: top-K hot sets per level by
    // tag-churn (eviction) count.
    std::map<unsigned,
             std::vector<std::pair<std::uint64_t, std::uint64_t>>>
        byLevel;
    for (std::size_t level = 0; level < churn_.size(); ++level)
        for (std::size_t set = 0; set < churn_[level].size(); ++set)
            if (const std::uint64_t count = churn_[level][set])
                byLevel[static_cast<unsigned>(level)].emplace_back(
                    set, count);
    w.key("set_churn");
    w.beginArray();
    for (auto &[level, sets] : byLevel) {
        std::uint64_t total = 0;
        for (const auto &[set, count] : sets)
            total += count;
        std::sort(sets.begin(), sets.end(),
                  [](const auto &a, const auto &b) {
                      if (a.second != b.second)
                          return a.second > b.second;
                      return a.first < b.first;
                  });
        w.beginObject();
        w.field("level", static_cast<std::uint64_t>(level));
        w.field("sets_touched",
                static_cast<std::uint64_t>(sets.size()));
        w.field("evictions", total);
        w.key("top");
        w.beginArray();
        for (std::size_t i = 0; i < sets.size() && i < churnTopK;
             ++i) {
            w.beginObject();
            w.field("set", sets[i].first);
            w.field("evictions", sets[i].second);
            w.endObject();
        }
        w.endArray();
        w.endObject();
    }
    w.endArray();

    // Address-region heat: bytes per 1/256th of the touched span.
    w.key("region_heat");
    w.beginObject();
    w.field("grain_bytes", probeRegionGrain);
    if (region_.empty()) {
        w.field("touched_bytes", std::uint64_t{0});
        w.key("buckets");
        w.beginArray();
        w.endArray();
    } else {
        std::uint64_t lo = ~std::uint64_t{0}, hi = 0, touched = 0;
        for (const auto &[page, bytes] : region_) {
            lo = std::min(lo, page);
            hi = std::max(hi, page);
            touched += bytes;
        }
        const std::uint64_t span = hi - lo + 1;
        std::vector<std::uint64_t> buckets(
            static_cast<std::size_t>(
                std::min<std::uint64_t>(regionBuckets, span)),
            0);
        for (const auto &[page, bytes] : region_)
            buckets[static_cast<std::size_t>(
                (page - lo) * buckets.size() / span)] += bytes;
        w.field("touched_bytes", touched);
        w.field("lo_addr", lo * probeRegionGrain);
        w.field("hi_addr", (hi + 1) * probeRegionGrain);
        w.key("buckets");
        w.beginArray();
        for (std::uint64_t b : buckets)
            w.value(b);
        w.endArray();
    }
    w.endObject();

    w.key("probe_totals");
    w.beginObject();
    w.field("dram_row_hits", dramRowHits_);
    w.field("dram_row_misses", dramRowMisses_);
    w.field("mtc_scan_pops", mtcScanPops_);
    w.endObject();

    w.endObject();
    return w.str();
}

void
EpochProfiler::writeFile(const std::string &path,
                         const std::string &tool) const
{
    writeFileOrDie(path, json(tool));
}

// ---- process-wide instance ----------------------------------------

namespace {

struct GlobalProfiler
{
    std::unique_ptr<EpochProfiler> profiler;
    std::string path;
};

GlobalProfiler &
globalProfiler()
{
    static GlobalProfiler g;
    return g;
}

} // namespace

EpochProfiler *
profilerActive()
{
    return globalProfiler().profiler.get();
}

EpochProfiler &
profilerInit(const std::string &path, std::uint64_t epochRefs)
{
    GlobalProfiler &g = globalProfiler();
    if (g.profiler)
        fatal("profiler already initialised");
    g.profiler = std::make_unique<EpochProfiler>(epochRefs);
    g.path = path;
    return *g.profiler;
}

void
profilerWriteNow(const std::string &tool)
{
    GlobalProfiler &g = globalProfiler();
    if (!g.profiler)
        return;
    g.profiler->writeFile(g.path, tool);
}

void
writeProfileManifest(RunManifest &manifest, bool stableJson)
{
    const EpochProfiler *prof = profilerActive();
    if (!prof || stableJson)
        return;
    manifest.set("profile_epoch", std::to_string(prof->epochRefs()));
    manifest.set("profile_epochs",
                 std::to_string(prof->epochsClosed()));
    if (prof->clampedEpochs())
        manifest.set("profile_clamped",
                     std::to_string(prof->clampedEpochs()));
    if (prof->droppedEpochs())
        manifest.set("profile_dropped",
                     std::to_string(prof->droppedEpochs()));
}

} // namespace membw
