/**
 * @file
 * Low-overhead span/counter tracing for the simulator harness.
 *
 * The paper's method is decomposing where *simulated* time goes
 * (T_P/T_L/T_B); this layer applies the same treatment to the
 * harness itself: RAII spans and numeric counters are recorded into
 * per-thread single-writer ring buffers and flushed at exit to a
 * Chrome trace-event JSON file (loadable in Perfetto or
 * chrome://tracing — see trace_export.hh and docs/observability.md).
 *
 * Cost model:
 *  - configured out (-DMEMBW_TRACING=OFF): the MEMBW_SPAN macros
 *    expand to `((void)0)` and every function below is an empty
 *    inline stub — zero code in the binary;
 *  - compiled in but not started (no --trace-out): a span is one
 *    relaxed atomic load;
 *  - recording: two steady-clock reads plus one ring-slot write per
 *    span.  No locks on the hot path: each thread owns its buffer
 *    (single writer), and the flusher only runs at quiescent points
 *    (process exit, after worker pools have drained).
 *
 * When a ring fills, new records wrap around and overwrite the
 * oldest ones — a long run keeps its most recent window — and the
 * overwrite count is reported in `otherData.dropped_events`.
 * Spans still open at flush time (e.g. after a SIGTERM drain) are
 * emitted with their duration clipped to the flush instant and an
 * `"open": true` argument, so the output is always well-formed.
 */

#ifndef MEMBW_OBS_TRACE_SPAN_HH
#define MEMBW_OBS_TRACE_SPAN_HH

#include <cstddef>
#include <cstdint>
#include <string>

namespace membw {

/** Fixed per-event payload space for `key=value` detail strings. */
constexpr std::size_t traceDetailBytes = 48;

#ifdef MEMBW_TRACING_ENABLED

/** True while recording is on (one relaxed atomic load). */
bool tracingActive();

/**
 * Start recording: sets the trace epoch (all timestamps are
 * nanoseconds since this instant) and enables the record paths.
 * Idempotent.
 */
void tracingStart();

/** Stop recording; buffered events remain flushable. */
void tracingStop();

/** Nanoseconds since tracingStart() (0 before the first start). */
std::uint64_t tracingNowNs();

/**
 * Name the calling thread for the exported thread track ("main",
 * "worker-3", ...).  No-op when recording is off.
 */
void tracingSetThreadName(const char *name);

/** Record a numeric sample on a named counter track. */
void tracingCounter(const char *name, double value);

/** Record a zero-duration instant event. */
void tracingInstant(const char *name, const char *detail = "");

/**
 * Ring capacity (events per thread) for buffers created *after* the
 * call; must be a power of two.  Default 1<<15.  Test hook — call
 * before tracingStart().
 */
void tracingSetCapacity(std::size_t eventsPerThread);

/**
 * Drop every buffer and reset the epoch/thread-id counter.  Only
 * valid at quiescent points; test hook.
 */
void tracingReset();

namespace tracedetail {
/** @p name must outlive the trace (string literals in practice). */
void beginSpan(const char *name, const char *detail);
void endSpan();
} // namespace tracedetail

/**
 * RAII span: records [construction, destruction) on the calling
 * thread's track.  Use through the MEMBW_SPAN macros.
 */
class TraceSpan
{
  public:
    /** Inactive span (the runtime-disabled arm of MEMBW_SPAN_D). */
    TraceSpan() = default;

    explicit TraceSpan(const char *name)
    {
        if (tracingActive()) {
            open_ = true;
            tracedetail::beginSpan(name, nullptr);
        }
    }

    TraceSpan(const char *name, const std::string &detail)
    {
        if (tracingActive()) {
            open_ = true;
            tracedetail::beginSpan(name, detail.c_str());
        }
    }

    TraceSpan(TraceSpan &&other) noexcept : open_(other.open_)
    {
        other.open_ = false;
    }

    TraceSpan(const TraceSpan &) = delete;
    TraceSpan &operator=(const TraceSpan &) = delete;
    TraceSpan &operator=(TraceSpan &&) = delete;

    ~TraceSpan()
    {
        if (open_)
            tracedetail::endSpan();
    }

  private:
    bool open_ = false;
};

#define MEMBW_SPAN_CAT2(a, b) a##b
#define MEMBW_SPAN_CAT(a, b) MEMBW_SPAN_CAT2(a, b)

/** Span over the enclosing scope; name must be a string literal. */
#define MEMBW_SPAN(name)                                             \
    ::membw::TraceSpan MEMBW_SPAN_CAT(membwSpan_, __LINE__)(name)

/**
 * Span with a detail payload.  @p detailExpr is only evaluated when
 * recording is active, so call sites may build strings freely.
 */
#define MEMBW_SPAN_D(name, detailExpr)                               \
    ::membw::TraceSpan MEMBW_SPAN_CAT(membwSpan_, __LINE__) =        \
        ::membw::tracingActive()                                     \
            ? ::membw::TraceSpan(name, (detailExpr))                 \
            : ::membw::TraceSpan()

#else // !MEMBW_TRACING_ENABLED

inline bool tracingActive() { return false; }
inline void tracingStart() {}
inline void tracingStop() {}
inline std::uint64_t tracingNowNs() { return 0; }
inline void tracingSetThreadName(const char *) {}
inline void tracingCounter(const char *, double) {}
inline void tracingInstant(const char *, const char * = "") {}
inline void tracingSetCapacity(std::size_t) {}
inline void tracingReset() {}

class TraceSpan
{
};

#define MEMBW_SPAN(name) ((void)0)
#define MEMBW_SPAN_D(name, detailExpr) ((void)0)

#endif // MEMBW_TRACING_ENABLED

} // namespace membw

#endif // MEMBW_OBS_TRACE_SPAN_HH
