#include "obs/trace_span.hh"

#include "obs/trace_export.hh" // tracedetail::FlatEvent

#ifdef MEMBW_TRACING_ENABLED

#include <atomic>
#include <chrono>
#include <cstring>
#include <memory>
#include <mutex>
#include <vector>

#include "common/bitops.hh"
#include "common/log.hh"

namespace membw {

namespace {

/** One recorded event; fixed size so ring slots never allocate. */
struct Event
{
    enum Kind : std::uint8_t
    {
        Span = 0,
        Counter = 1,
        Instant = 2,
    };

    std::uint64_t ts = 0;  ///< ns since epoch (span begin)
    std::uint64_t dur = 0; ///< span duration in ns
    double value = 0.0;    ///< counter sample
    const char *name = nullptr;
    char detail[traceDetailBytes] = {};
    Kind kind = Span;
    bool open = false; ///< span was still open at flush
};

/** A span begun but not yet ended on its owner thread. */
struct OpenSpan
{
    const char *name = nullptr;
    std::uint64_t startNs = 0;
    char detail[traceDetailBytes] = {};
};

/**
 * Single-writer ring.  The owner thread writes slot (count % cap)
 * and then publishes with a release store of count+1.  Once full,
 * new events overwrite the oldest slots (classic wrap-around), so a
 * long run keeps its tail — the part a "why was the end slow"
 * investigation needs.  Readers only run at quiescent points
 * (flush-at-exit, after pools drain), so they never observe a slot
 * mid-overwrite; they acquire count and reconstruct the last
 * min(count, cap) events, reporting count - cap as dropped.
 */
struct Ring
{
    explicit Ring(std::size_t cap, std::uint32_t id) : slots(cap), tid(id)
    {
    }

    std::vector<Event> slots;
    std::atomic<std::uint64_t> written{0}; ///< events ever recorded
    std::uint32_t tid = 0;
    char threadName[32] = {};
    std::vector<OpenSpan> stack; ///< owner thread only
};

struct Global
{
    std::atomic<bool> active{false};
    std::atomic<std::uint64_t> generation{1};
    std::chrono::steady_clock::time_point epoch{};
    bool epochSet = false;

    std::mutex mutex; ///< guards rings / capacity / nextTid
    std::vector<std::shared_ptr<Ring>> rings;
    std::size_t capacity = std::size_t{1} << 15;
    std::uint32_t nextTid = 0;
};

Global &
global()
{
    static Global g;
    return g;
}

thread_local std::shared_ptr<Ring> t_ring;
thread_local std::uint64_t t_generation = 0;

Ring &
ring()
{
    Global &g = global();
    const std::uint64_t gen =
        g.generation.load(std::memory_order_relaxed);
    if (!t_ring || t_generation != gen) {
        std::lock_guard<std::mutex> lock(g.mutex);
        auto r = std::make_shared<Ring>(g.capacity, g.nextTid++);
        std::snprintf(r->threadName, sizeof(r->threadName),
                      r->tid == 0 ? "main" : "thread-%u", r->tid);
        g.rings.push_back(r);
        t_ring = std::move(r);
        t_generation = gen;
    }
    return *t_ring;
}

void
record(Ring &r, const Event &e)
{
    const std::uint64_t n = r.written.load(std::memory_order_relaxed);
    r.slots[n & (r.slots.size() - 1)] = e;
    r.written.store(n + 1, std::memory_order_release);
}

void
copyDetail(char (&dst)[traceDetailBytes], const char *src)
{
    if (!src) {
        dst[0] = '\0';
        return;
    }
    std::strncpy(dst, src, traceDetailBytes - 1);
    dst[traceDetailBytes - 1] = '\0';
}

} // namespace

bool
tracingActive()
{
    return global().active.load(std::memory_order_relaxed);
}

std::uint64_t
tracingNowNs()
{
    Global &g = global();
    if (!g.epochSet)
        return 0;
    return static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now() - g.epoch)
            .count());
}

void
tracingStart()
{
    Global &g = global();
    if (!g.epochSet) {
        g.epoch = std::chrono::steady_clock::now();
        g.epochSet = true;
    }
    g.active.store(true, std::memory_order_relaxed);
}

void
tracingStop()
{
    global().active.store(false, std::memory_order_relaxed);
}

void
tracingSetCapacity(std::size_t eventsPerThread)
{
    if (eventsPerThread == 0 || !isPowerOfTwo(eventsPerThread))
        fatal("trace buffer capacity must be a power of two");
    Global &g = global();
    std::lock_guard<std::mutex> lock(g.mutex);
    g.capacity = eventsPerThread;
}

void
tracingReset()
{
    Global &g = global();
    g.active.store(false, std::memory_order_relaxed);
    std::lock_guard<std::mutex> lock(g.mutex);
    g.rings.clear();
    g.nextTid = 0;
    g.epochSet = false;
    // Invalidate every thread's cached ring so the next event
    // re-registers against the fresh registry.
    g.generation.fetch_add(1, std::memory_order_relaxed);
}

void
tracingSetThreadName(const char *name)
{
    if (!tracingActive() || !name)
        return;
    Ring &r = ring();
    std::strncpy(r.threadName, name, sizeof(r.threadName) - 1);
    r.threadName[sizeof(r.threadName) - 1] = '\0';
}

void
tracingCounter(const char *name, double value)
{
    if (!tracingActive())
        return;
    Event e;
    e.kind = Event::Counter;
    e.ts = tracingNowNs();
    e.value = value;
    e.name = name;
    record(ring(), e);
}

void
tracingInstant(const char *name, const char *detail)
{
    if (!tracingActive())
        return;
    Event e;
    e.kind = Event::Instant;
    e.ts = tracingNowNs();
    e.name = name;
    copyDetail(e.detail, detail);
    record(ring(), e);
}

namespace tracedetail {

void
beginSpan(const char *name, const char *detail)
{
    Ring &r = ring();
    OpenSpan s;
    s.name = name;
    s.startNs = tracingNowNs();
    copyDetail(s.detail, detail);
    r.stack.push_back(s);
}

void
endSpan()
{
    Ring &r = ring();
    if (r.stack.empty())
        return; // stop()/reset() raced a live span; drop silently
    const OpenSpan s = r.stack.back();
    r.stack.pop_back();
    Event e;
    e.kind = Event::Span;
    e.ts = s.startNs;
    e.dur = tracingNowNs() - s.startNs;
    e.name = s.name;
    std::memcpy(e.detail, s.detail, traceDetailBytes);
    record(r, e);
}

} // namespace tracedetail

// ---------------------------------------------------------------
// Snapshot interface for the exporter (trace_export.cc).  Runs at
// quiescent points only: it acquires each ring's published prefix
// and reads open-span stacks that no other thread is mutating.
// ---------------------------------------------------------------

namespace tracedetail {

void
snapshot(std::vector<FlatEvent> &out, std::uint64_t &droppedTotal,
         std::vector<std::pair<std::uint32_t, std::string>> &threads)
{
    Global &g = global();
    std::vector<std::shared_ptr<Ring>> rings;
    {
        std::lock_guard<std::mutex> lock(g.mutex);
        rings = g.rings;
    }
    const std::uint64_t now = tracingNowNs();
    droppedTotal = 0;
    for (const auto &r : rings) {
        threads.emplace_back(r->tid, r->threadName);
        const std::uint64_t n =
            r->written.load(std::memory_order_acquire);
        const std::uint64_t cap = r->slots.size();
        const std::uint64_t kept = n < cap ? n : cap;
        droppedTotal += n - kept;
        for (std::uint64_t i = n - kept; i < n; ++i) {
            const Event &e = r->slots[i & (cap - 1)];
            FlatEvent f;
            f.tid = r->tid;
            f.ts = e.ts;
            f.dur = e.dur;
            f.value = e.value;
            f.name = e.name ? e.name : "";
            f.detail = e.detail;
            f.kind = static_cast<std::uint8_t>(e.kind);
            f.open = false;
            out.push_back(std::move(f));
        }
        // Spans still open (shutdown drain, flush mid-run): clip to
        // the flush instant, outermost first.
        for (const OpenSpan &s : r->stack) {
            FlatEvent f;
            f.tid = r->tid;
            f.ts = s.startNs;
            f.dur = now > s.startNs ? now - s.startNs : 0;
            f.name = s.name ? s.name : "";
            f.detail = s.detail;
            f.kind = static_cast<std::uint8_t>(Event::Span);
            f.open = true;
            out.push_back(std::move(f));
        }
    }
}

} // namespace tracedetail

} // namespace membw

#endif // MEMBW_TRACING_ENABLED
