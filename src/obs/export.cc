#include "obs/export.hh"

#include <cstdio>

#include "common/log.hh"
#include "common/table.hh"
#include "resilience/guarded_io.hh"

namespace membw {

std::string
exportText(const StatsRegistry &registry)
{
    TextTable t;
    t.header({"stat", "value", "unit", "description"});
    for (const auto &stat : registry.stats())
        t.row({stat->name(), stat->valueString(), stat->unit(),
               stat->desc()});
    return t.render();
}

void
writeStatsArray(const StatsRegistry &registry, JsonWriter &w)
{
    w.beginArray();
    for (const auto &stat : registry.stats()) {
        w.beginObject();
        w.field("name", stat->name());
        w.field("kind", toString(stat->kind()));
        stat->jsonFields(w);
        if (!stat->unit().empty())
            w.field("unit", stat->unit());
        w.field("desc", stat->desc());
        w.endObject();
    }
    w.endArray();
}

std::string
exportJson(const StatsRegistry &registry)
{
    JsonWriter w;
    w.beginObject();
    w.key("stats");
    writeStatsArray(registry, w);
    w.endObject();
    return w.str();
}

namespace {

/** CSV-quote when a cell contains a delimiter or quote. */
std::string
csvCell(const std::string &s)
{
    if (s.find_first_of(",\"\n") == std::string::npos)
        return s;
    std::string out = "\"";
    for (const char c : s) {
        if (c == '"')
            out.push_back('"');
        out.push_back(c);
    }
    out.push_back('"');
    return out;
}

} // namespace

std::string
exportCsv(const StatsRegistry &registry)
{
    std::string out = "name,kind,value,unit,description\n";
    for (const auto &stat : registry.stats()) {
        out += csvCell(stat->name());
        out += ',';
        out += toString(stat->kind());
        out += ',';
        out += csvCell(stat->valueString());
        out += ',';
        out += csvCell(stat->unit());
        out += ',';
        out += csvCell(stat->desc());
        out += '\n';
    }
    return out;
}

void
writeFileOrDie(const std::string &path, const std::string &contents)
{
    // Atomic tmp+rename with retry: every artifact funnelled through
    // here (--stats-json, --trace-out, --profile-out, bench --json)
    // is either the complete new file or untouched, never a prefix.
    (void)GuardedFile::writeAtomic(path, contents).orDie();
}

} // namespace membw
