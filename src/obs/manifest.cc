#include "obs/manifest.hh"

#include <cstdio>

namespace membw {

std::uint64_t
fnv1a64(std::string_view s)
{
    std::uint64_t h = 0xcbf29ce484222325ull;
    for (const char c : s) {
        h ^= static_cast<unsigned char>(c);
        h *= 0x100000001b3ull;
    }
    return h;
}

void
RunManifest::write(JsonWriter &w) const
{
    w.beginObject();
    w.field("schema_version",
            static_cast<std::int64_t>(telemetrySchemaVersion));
    w.field("tool", tool);
    w.field("experiment", experiment);
    w.field("workload", workload);
    w.field("config", config);
    char digest[32];
    std::snprintf(digest, sizeof(digest), "0x%016llx",
                  static_cast<unsigned long long>(fnv1a64(config)));
    w.field("config_digest", digest);
    w.field("seed", seed);
    w.field("scale", scale);
    w.field("refs", refs);
    if (interrupted)
        w.field("interrupted", true);
    if (degraded)
        w.field("degraded", true);
    if (!omitTiming) {
        w.field("wall_seconds", wallSeconds);
        w.field("mrefs_per_sec", mrefsPerSec());
    }
    for (const auto &[k, v] : extra)
        w.field(k, v);
    for (const auto &[k, v] : extraNum)
        w.field(k, v);
    w.endObject();
}

} // namespace membw
