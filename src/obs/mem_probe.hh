/**
 * @file
 * Probe accumulators for simulated-machine events.
 *
 * The model layers (Cache, MinCacheSim, DramModel) carry an optional
 * MemProbe pointer and report their miss-frequency events — line
 * evictions, downstream byte movement, DRAM row outcomes, MTC
 * victim-scan work — through the MEMBW_PROBE macro.  The discipline
 * mirrors MEMBW_SPAN (trace_span.hh):
 *
 *  - with MEMBW_PROFILING on (default) each call site is one null
 *    check until a profiler attaches (--profile-out);
 *  - with -DMEMBW_PROFILING=OFF the macro expands to nothing, so
 *    overhead-baseline builds carry zero probe code.
 *
 * MemProbe is deliberately concrete, not a virtual interface: its
 * only consumer is the epoch profiler, and the hooks are small
 * enough that keeping them header-inline turns each attached-probe
 * event into a test and an array or counter bump instead of a
 * virtual dispatch.  Hooks fire only on events that already left
 * the hot hit path (evictions, fills, write-backs), never per
 * access, which together is what keeps an attached profiler inside
 * the CI overhead budget.
 */

#ifndef MEMBW_OBS_MEM_PROBE_HH
#define MEMBW_OBS_MEM_PROBE_HH

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <unordered_map>
#include <vector>

#include "common/types.hh"

namespace membw {

/** Region-heat accumulation grain (bytes). */
constexpr std::uint64_t probeRegionGrain = 4096;

/**
 * Accumulator for model-layer events.  @p level is the
 * wiring-assigned cache level (0 = closest to the processor).
 *
 * The conflict heatmap is dense per level (churn[level][set]) so the
 * per-eviction hook is an array increment, not a hash probe; the
 * region table stays a map (sparse address space) but the hook
 * caches the last bucket's slot, which below-traffic locality hits
 * almost every time.  unordered_map references are stable across
 * inserts, so the cached pointer only dies when the map itself is
 * replaced (EpochProfiler's abortRun/loadState invalidate it).
 */
class MemProbe
{
  public:
    /** A valid line left @p level's set @p set (tag churn). */
    void
    onEvict(unsigned level, std::size_t set)
    {
        if (level >= churn_.size())
            churn_.resize(level + 1);
        auto &sets = churn_[level];
        if (set >= sets.size())
            sets.resize(std::max(set + 1, sets.size() * 2));
        sets[set]++;
    }

    /** @p bytes moved between @p level and the level below. */
    void
    onBelowTraffic(unsigned level, Addr addr, Bytes bytes)
    {
        if (level != regionLevel_)
            return;
        const std::uint64_t page = addr / probeRegionGrain;
        if (page != regionLastPage_) {
            regionLastPage_ = page;
            regionLastCount_ = &region_[page];
        }
        *regionLastCount_ += bytes;
    }

    /** One DRAM access completed as a row hit or miss. */
    void
    onDramAccess(bool rowHit)
    {
        if (rowHit)
            dramRowHits_++;
        else
            dramRowMisses_++;
    }

    /** The MTC's write-aware victim scan popped @p pops candidates. */
    void onMtcScan(std::uint64_t pops) { mtcScanPops_ += pops; }

    /** Level whose below-traffic feeds the region heat table
     * (wiring sets this to the last level: pin traffic). */
    void setRegionLevel(unsigned level) { regionLevel_ = level; }

  protected:
    // Structural-profile state (process-cumulative); the deriving
    // profiler snapshots, persists, and exports it.
    unsigned regionLevel_ = ~0u;
    std::vector<std::vector<std::uint64_t>> churn_;
    std::unordered_map<std::uint64_t, std::uint64_t> region_;
    std::uint64_t regionLastPage_ = ~std::uint64_t{0};
    std::uint64_t *regionLastCount_ = nullptr;
    std::uint64_t dramRowHits_ = 0;
    std::uint64_t dramRowMisses_ = 0;
    std::uint64_t mtcScanPops_ = 0;
};

#ifdef MEMBW_PROFILING_ENABLED

/** Dispatch @p call on @p probe when one is attached. */
#define MEMBW_PROBE(probe, call)                                     \
    do {                                                             \
        if (probe)                                                   \
            (probe)->call;                                           \
    } while (0)

#else // !MEMBW_PROFILING_ENABLED

#define MEMBW_PROBE(probe, call) ((void)0)

#endif // MEMBW_PROFILING_ENABLED

} // namespace membw

#endif // MEMBW_OBS_MEM_PROBE_HH
