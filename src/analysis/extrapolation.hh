/**
 * @file
 * The Section 4.3 package extrapolation: project pin counts and
 * per-pin bandwidth requirements a decade out from the measured
 * growth trends.
 */

#ifndef MEMBW_ANALYSIS_EXTRAPOLATION_HH
#define MEMBW_ANALYSIS_EXTRAPOLATION_HH

namespace membw {

/** Inputs to the extrapolation (the paper's assumptions). */
struct ExtrapolationInputs
{
    double basePins = 599;        ///< today's package (R10000, 1996)
    double pinGrowthPerYear = 0.16;  ///< Figure 1a fit
    double perfGrowthPerYear = 0.60; ///< "conservative" [2]
    int years = 10;                  ///< 1996 -> 2006
    double trafficRatioChange = 1.0; ///< "on-chip ratios stay the same"
};

/** Projected consequences (Section 4.3's narrative numbers). */
struct ExtrapolationResult
{
    double pins = 0;            ///< projected package pin count
    double perfFactor = 0;      ///< total performance growth
    double pinFactor = 0;       ///< total pin-count growth
    /**
     * Ratio of required off-chip bandwidth growth to pin growth:
     * the "factor of 25 greater bandwidth per pin".
     */
    double bandwidthPerPinFactor = 0;
};

/** Compound the growth rates over the horizon. */
ExtrapolationResult extrapolate(const ExtrapolationInputs &inputs);

} // namespace membw

#endif // MEMBW_ANALYSIS_EXTRAPOLATION_HH
