#include "analysis/pin_trends.hh"

#include <array>
#include <vector>

#include "common/log.hh"

namespace membw {

namespace {

/**
 * Reconstructed Figure 1 dataset.  Pin counts are package pins;
 * bandwidth is peak external-bus bandwidth (width x bus clock,
 * accounting for multiplexing where applicable).  Early parts use
 * published VAX-MIPS ratings; post-1990 parts use issue-width x clock
 * as the paper does.
 */
const std::array<ProcessorRecord, 18> dataset = {{
    {"8086",       1978,   40,    0.33,     4.8},
    {"68000",      1979,   64,    0.7,      6.4},
    {"80286",      1982,   68,    1.2,     16.0},
    {"68020",      1984,  114,    2.5,     31.8},
    {"80386",      1985,  132,    5.0,     32.0},
    {"68030",      1987,  128,    6.0,     40.0},
    {"R3000",      1988,  144,   20.0,    100.0},
    {"80486",      1989,  168,   15.0,    100.0},
    {"68040",      1990,  179,   20.0,    100.0},
    {"Harp1",      1993,  379,  120.0,    480.0},
    {"Pentium",    1993,  273,  132.0,    528.0},
    {"SSparc2",    1994,  293,  150.0,    400.0},
    {"68060",      1994,  223,  100.0,    264.0},
    {"21164",      1995,  499, 1200.0,   1200.0},
    {"P6",         1995,  387,  600.0,    528.0},
    {"UltraSparc", 1995,  521,  668.0,   1328.0},
    {"R10000",     1996,  599,  800.0,    800.0},
    {"PA8000",     1996, 1085,  720.0,    960.0},
}};

std::vector<double>
years()
{
    std::vector<double> xs;
    for (const auto &r : dataset)
        xs.push_back(static_cast<double>(r.year));
    return xs;
}

} // namespace

std::span<const ProcessorRecord>
processorDataset()
{
    return dataset;
}

const ProcessorRecord &
findProcessor(const std::string &name)
{
    for (const auto &r : dataset)
        if (r.name == name)
            return r;
    fatal("unknown processor '" + name + "'");
}

GrowthFit
pinCountGrowth()
{
    std::vector<double> ys;
    for (const auto &r : dataset)
        ys.push_back(r.pins);
    const auto xs = years();
    return exponentialFit(xs, ys, 1978.0);
}

GrowthFit
performanceGrowth()
{
    std::vector<double> ys;
    for (const auto &r : dataset)
        ys.push_back(r.mips);
    const auto xs = years();
    return exponentialFit(xs, ys, 1978.0);
}

GrowthFit
mipsPerPinGrowth()
{
    std::vector<double> ys;
    for (const auto &r : dataset)
        ys.push_back(r.mipsPerPin());
    const auto xs = years();
    return exponentialFit(xs, ys, 1978.0);
}

} // namespace membw
