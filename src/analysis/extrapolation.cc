#include "analysis/extrapolation.hh"

#include <cmath>

#include "common/log.hh"

namespace membw {

ExtrapolationResult
extrapolate(const ExtrapolationInputs &inputs)
{
    if (inputs.basePins <= 0 || inputs.years < 0)
        fatal("extrapolation inputs must be positive");

    ExtrapolationResult result;
    result.pinFactor =
        std::pow(1.0 + inputs.pinGrowthPerYear, inputs.years);
    result.perfFactor =
        std::pow(1.0 + inputs.perfGrowthPerYear, inputs.years);
    result.pins = inputs.basePins * result.pinFactor;

    // Off-chip traffic scales with performance divided by any traffic-
    // ratio improvement; pins absorb pinFactor of it; the rest lands
    // on each pin.
    result.bandwidthPerPinFactor =
        result.perfFactor / inputs.trafficRatioChange /
        result.pinFactor;
    return result;
}

} // namespace membw
