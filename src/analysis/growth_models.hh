/**
 * @file
 * Asymptotic compute-vs-traffic growth models (Table 2 / Figure 2).
 *
 * For each algorithm the paper derives, Hong-Kung style [21], how the
 * ratio of computation C to off-chip traffic D changes when on-chip
 * memory S grows by a factor k.  We implement the concrete formulas
 * so the bench can print Table 2 and numerically verify the
 * "four-times-the-gates needs only sqrt(4) more speed" argument of
 * Section 2.4.
 */

#ifndef MEMBW_ANALYSIS_GROWTH_MODELS_HH
#define MEMBW_ANALYSIS_GROWTH_MODELS_HH

#include <memory>
#include <string>
#include <vector>

namespace membw {

/**
 * One algorithm's asymptotic model.  N is the problem-size parameter
 * as used in Table 2, S the on-chip memory size in elements.
 */
class GrowthModel
{
  public:
    virtual ~GrowthModel() = default;

    virtual std::string name() const = 0;

    /** Memory requirement in elements. */
    virtual double memory(double n) const = 0;

    /** Computation count C(N). */
    virtual double compute(double n) const = 0;

    /** Off-chip traffic D(N, S) in elements. */
    virtual double traffic(double n, double s) const = 0;

    /** C/D, the computation available per unit of off-chip traffic. */
    double
    ratio(double n, double s) const
    {
        return compute(n) / traffic(n, s);
    }

    /**
     * Growth of C/D when S is scaled by k (the paper's right-most
     * column): ratio(n, k*s) / ratio(n, s).
     */
    double
    ratioGrowth(double n, double s, double k) const
    {
        return ratio(n, k * s) / ratio(n, s);
    }

    /** Table 2's symbolic entry for the C/D growth column. */
    virtual std::string ratioGrowthSymbol() const = 0;

    /** Predicted growth value for a given k (e.g. k or log2 k). */
    virtual double ratioGrowthPredicted(double k) const = 0;
};

/** Tiled matrix multiply: O(N^2) mem, O(N^3) comp, O(N^3/sqrt(S)). */
std::unique_ptr<GrowthModel> makeTmmModel();

/** Iterative stencil: O(N^2) mem, O(N^2) comp/iter, O(N^2/sqrt(S)). */
std::unique_ptr<GrowthModel> makeStencilModel();

/** N-point FFT: O(N) mem, O(N log N) comp, O(N log N / log S). */
std::unique_ptr<GrowthModel> makeFftModel();

/** Merge sort: O(N) mem, O(N log N) comp, O(N log N / log S). */
std::unique_ptr<GrowthModel> makeSortModel();

/** All four Table 2 models, in the paper's row order. */
std::vector<std::unique_ptr<GrowthModel>> allGrowthModels();

} // namespace membw

#endif // MEMBW_ANALYSIS_GROWTH_MODELS_HH
