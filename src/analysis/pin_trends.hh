/**
 * @file
 * Historical microprocessor packaging dataset behind Figure 1.
 *
 * The paper compiled pin counts, performance, and package bandwidth
 * for 18 microprocessors (1978-1997) by hand from vendor manuals and
 * Microprocessor Report.  We reconstruct the same 18 parts from
 * public specifications.  Performance follows the paper's convention:
 * VAX MIPS for the 680x0 and early 80x86 parts, issue width times
 * clock rate for the rest — the two "cannot be compared directly, but
 * are sufficient to view 20-year trends".
 */

#ifndef MEMBW_ANALYSIS_PIN_TRENDS_HH
#define MEMBW_ANALYSIS_PIN_TRENDS_HH

#include <span>
#include <string>

#include "common/stats.hh"

namespace membw {

/** One processor data point of Figure 1. */
struct ProcessorRecord
{
    std::string name;
    int year = 0;             ///< introduction year
    double pins = 0;          ///< package pin count (Figure 1a)
    double mips = 0;          ///< performance per the paper's metric
    double pinBandwidthMBs = 0; ///< peak package bandwidth, MB/s

    /** Figure 1b's y value. */
    double mipsPerPin() const { return mips / pins; }

    /** Figure 1c's y value. */
    double
    mipsPerBandwidth() const
    {
        return mips / pinBandwidthMBs;
    }
};

/** The 18-processor dataset, in chronological order. */
std::span<const ProcessorRecord> processorDataset();

/** Look a record up by name; fatal() if absent. */
const ProcessorRecord &findProcessor(const std::string &name);

/** Exponential fit of pin count over year (the dotted 16%/yr line). */
GrowthFit pinCountGrowth();

/** Exponential fit of performance over year. */
GrowthFit performanceGrowth();

/** Exponential fit of MIPS-per-pin over year (Figure 1b trend). */
GrowthFit mipsPerPinGrowth();

} // namespace membw

#endif // MEMBW_ANALYSIS_PIN_TRENDS_HH
