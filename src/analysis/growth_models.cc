#include "analysis/growth_models.hh"

#include <cmath>

namespace membw {

namespace {

double
log2d(double x)
{
    return std::log2(x);
}

/** Tiled matrix multiply (Section 2.4's worked example). */
class TmmModel : public GrowthModel
{
  public:
    std::string name() const override { return "TMM"; }
    double memory(double n) const override { return n * n; }
    double compute(double n) const override { return n * n * n; }

    double
    traffic(double n, double s) const override
    {
        // 2N^3/L + N^2 with tile side L = sqrt(S) (paper, Section 2.4).
        const double l = std::sqrt(s);
        return 2.0 * n * n * n / l + n * n;
    }

    std::string ratioGrowthSymbol() const override { return "k^1/2"; }

    double
    ratioGrowthPredicted(double k) const override
    {
        return std::sqrt(k);
    }
};

/** Weighted-neighbor stencil over an NxN matrix. */
class StencilModel : public GrowthModel
{
  public:
    std::string name() const override { return "Stencil"; }
    double memory(double n) const override { return n * n; }
    double compute(double n) const override { return n * n; }

    double
    traffic(double n, double s) const override
    {
        // Tile of sqrt(S) x sqrt(S); halo exchange per tile gives
        // O(N^2 / sqrt(S)) traffic per sweep.
        return n * n / std::sqrt(s);
    }

    std::string ratioGrowthSymbol() const override { return "k^1/2"; }

    double
    ratioGrowthPredicted(double k) const override
    {
        return std::sqrt(k);
    }
};

/** N-point FFT (Hong-Kung bound). */
class FftModel : public GrowthModel
{
  public:
    std::string name() const override { return "FFT"; }
    double memory(double n) const override { return n; }

    double
    compute(double n) const override
    {
        return n * log2d(n);
    }

    double
    traffic(double n, double s) const override
    {
        // O(N log2 N / log2 S) (Table 2).
        return n * log2d(n) / log2d(s);
    }

    std::string ratioGrowthSymbol() const override { return "log2 k"; }

    /**
     * The paper's symbolic column evaluated literally.  C/D equals
     * log2(S), so the exact growth is log2(kS)/log2(S); "log2 k" is
     * the paper's shorthand for this logarithmic (rather than
     * polynomial) scaling.
     */
    double
    ratioGrowthPredicted(double k) const override
    {
        return log2d(k);
    }
};

/** Merge sort (same asymptotics as FFT in Table 2). */
class SortModel : public GrowthModel
{
  public:
    std::string name() const override { return "Sort"; }
    double memory(double n) const override { return n; }

    double
    compute(double n) const override
    {
        return n * log2d(n);
    }

    double
    traffic(double n, double s) const override
    {
        return n * log2d(n) / log2d(s);
    }

    std::string ratioGrowthSymbol() const override { return "log2 k"; }

    /** See FftModel::ratioGrowthPredicted. */
    double
    ratioGrowthPredicted(double k) const override
    {
        return log2d(k);
    }
};

} // namespace

std::unique_ptr<GrowthModel>
makeTmmModel()
{
    return std::make_unique<TmmModel>();
}

std::unique_ptr<GrowthModel>
makeStencilModel()
{
    return std::make_unique<StencilModel>();
}

std::unique_ptr<GrowthModel>
makeFftModel()
{
    return std::make_unique<FftModel>();
}

std::unique_ptr<GrowthModel>
makeSortModel()
{
    return std::make_unique<SortModel>();
}

std::vector<std::unique_ptr<GrowthModel>>
allGrowthModels()
{
    std::vector<std::unique_ptr<GrowthModel>> models;
    models.push_back(makeTmmModel());
    models.push_back(makeStencilModel());
    models.push_back(makeFftModel());
    models.push_back(makeSortModel());
    return models;
}

} // namespace membw
