/**
 * @file
 * Two-level adaptive branch predictor (gshare-style), matching the
 * "two-level branch predictor" with 8K/16K-entry tables of Table 5.
 */

#ifndef MEMBW_CPU_BRANCH_PRED_HH
#define MEMBW_CPU_BRANCH_PRED_HH

#include <cstdint>
#include <vector>

#include "common/bitops.hh"
#include "common/log.hh"

namespace membw {

/**
 * Global-history two-level predictor: a global branch history
 * register XOR-indexed into a table of 2-bit saturating counters.
 */
class BranchPredictor
{
  public:
    /** @param entries counter-table entries (power of two). */
    explicit BranchPredictor(unsigned entries)
        : mask_(entries - 1), table_(entries, 2) // weakly taken
    {
        if (!isPowerOfTwo(entries))
            fatal("branch predictor entries must be a power of two");
    }

    /**
     * Predict, then update with the actual @p taken outcome.
     * @return true iff the prediction was correct.
     */
    bool
    predictAndUpdate(std::uint64_t pc, bool taken)
    {
        const std::size_t index =
            static_cast<std::size_t>((history_ ^ (pc >> 2)) & mask_);
        std::uint8_t &ctr = table_[index];
        const bool prediction = ctr >= 2;

        if (taken && ctr < 3)
            ++ctr;
        else if (!taken && ctr > 0)
            --ctr;

        history_ = (history_ << 1) | (taken ? 1 : 0);
        ++branches_;
        if (prediction == taken)
            ++correct_;
        return prediction == taken;
    }

    std::uint64_t branches() const { return branches_; }
    std::uint64_t mispredictions() const { return branches_ - correct_; }

    double
    accuracy() const
    {
        return branches_ ? static_cast<double>(correct_) / branches_
                         : 1.0;
    }

  private:
    std::uint64_t mask_;
    std::vector<std::uint8_t> table_;
    std::uint64_t history_ = 0;
    std::uint64_t branches_ = 0;
    std::uint64_t correct_ = 0;
};

} // namespace membw

#endif // MEMBW_CPU_BRANCH_PRED_HH
