#include "cpu/core.hh"

#include <algorithm>
#include <vector>

#include "common/log.hh"
#include "cpu/branch_pred.hh"
#include "obs/registry.hh"
#include "resilience/checkpoint.hh"
#include "resilience/watchdog.hh"

namespace membw {

namespace {

/**
 * Bandwidth slotter: hands out at most @p width slots per cycle, at
 * or after the requested cycle.  Requests must be non-decreasing,
 * which program-order processing guarantees for fetch and retire.
 */
class Slotter
{
  public:
    explicit Slotter(unsigned width) : width_(width) {}

    Cycle
    take(Cycle earliest)
    {
        if (earliest > cycle_) {
            cycle_ = earliest;
            used_ = 0;
        }
        if (used_ >= width_) {
            ++cycle_;
            used_ = 0;
        }
        ++used_;
        return cycle_;
    }

  private:
    unsigned width_;
    Cycle cycle_ = 0;
    unsigned used_ = 0;
};

/** Ring of the last N timestamps, for window/LSQ occupancy. */
class OccupancyRing
{
  public:
    explicit OccupancyRing(unsigned slots) : ring_(slots, 0) {}

    /** Time the oldest of the last N entries freed its slot. */
    Cycle oldest() const { return ring_[pos_]; }

    /** Entries still occupied (not yet retired) at cycle @p t. */
    unsigned
    occupiedAt(Cycle t) const
    {
        unsigned n = 0;
        for (const Cycle c : ring_)
            n += c > t;
        return n;
    }

    void
    push(Cycle t)
    {
        ring_[pos_] = t;
        pos_ = (pos_ + 1) % ring_.size();
    }

  private:
    std::vector<Cycle> ring_;
    std::size_t pos_ = 0;
};

} // namespace

CoreResult
runCore(const InstrStream &stream, const CoreConfig &core,
        MemorySystem &mem)
{
    if (core.issueWidth == 0 || core.memPorts == 0 ||
        core.windowSlots == 0 || core.lsqSlots == 0)
        fatal("core parameters must be non-zero");

    BranchPredictor bpred(core.bpredEntries);
    Slotter fetch(core.issueWidth);
    Slotter retire(core.issueWidth);
    Slotter memPort(core.memPorts);
    OccupancyRing window(core.windowSlots);
    OccupancyRing lsq(core.lsqSlots);

    Cycle fetch_earliest = 0;  ///< fetch redirect point
    Cycle last_retire = 0;
    Cycle last_start = 0;      ///< in-order issue point
    Cycle last_load_done = 0;  ///< most recent load's data
    Cycle last_compute_done = 0;
    Cycle last_dispatch = 0;   ///< stall-attribution baseline
    Addr last_load_addr = 0;
    std::uint64_t branch_pc = 0;
    std::uint64_t mispredicts = 0;

    CoreStalls stalls;
    DistData window_occ;
    DistData lsq_occ;

    Addr cur_fetch_block = addrInvalid;
    std::size_t cur_op = 0;

    Watchdog localWatchdog(core.watchdogCycles);
    Watchdog &watchdog =
        core.watchdog ? *core.watchdog : localWatchdog;
    watchdog.setDiagnostic([&](StatsRegistry &reg) {
        StatsGroup g = reg.group("core");
        g.addCounter("op_index", "micro-op being processed", "ops")
            .set(cur_op);
        g.addCounter("ops_total", "micro-ops in the stream", "ops")
            .set(stream.size());
        g.addCounter("last_retire", "last in-order retire cycle",
                     "cycles")
            .set(last_retire);
        g.addCounter("last_dispatch", "last dispatch cycle", "cycles")
            .set(last_dispatch);
        g.addCounter("fetch_earliest", "fetch redirect point",
                     "cycles")
            .set(fetch_earliest);
        g.addCounter("last_load_done",
                     "most recent load completion cycle", "cycles")
            .set(last_load_done);
        StatsGroup stall = g.group("stall");
        stall.addCounter("fetch", "fetch stall cycles so far",
                         "cycles")
            .set(stalls.fetch);
        stall.addCounter("window", "window stall cycles so far",
                         "cycles")
            .set(stalls.window);
        stall.addCounter("data", "data stall cycles so far", "cycles")
            .set(stalls.data);
        stall.addCounter("mem_port", "memory-port stall cycles so far",
                         "cycles")
            .set(stalls.memPort);
    });

    for (std::size_t i = 0; i < stream.size(); ++i) {
        const MicroOp &op = stream[i];
        cur_op = i;

        if (core.progressEvery && core.progress && i &&
            i % core.progressEvery == 0)
            core.progress(i, stream.size());

        // Instruction fetch: crossing into a new fetch group costs
        // an I-cache access (free on a hit; a miss stalls fetch).
        const Addr fetch_block =
            op.pc & ~(static_cast<Addr>(core.fetchBlockBytes) - 1);
        if (fetch_block != cur_fetch_block) {
            cur_fetch_block = fetch_block;
            const Cycle at =
                std::max(fetch_earliest, window.oldest());
            const Cycle iready =
                mem.ifetch(fetch_block, core.fetchBlockBytes, at);
            if (iready > fetch_earliest)
                fetch_earliest = iready;
        }

        // Dispatch: fetch bandwidth, redirect point, window space.
        // Stall attribution measures how far each constraint pushed
        // the dispatch point past the previous one, fetch first.
        const Cycle after_fetch =
            std::max(last_dispatch, fetch_earliest);
        const Cycle constraint =
            std::max(after_fetch, window.oldest());
        stalls.fetch += after_fetch - last_dispatch;
        stalls.window += constraint - after_fetch;
        const Cycle dispatch = fetch.take(constraint);
        last_dispatch = dispatch;
        window_occ.record(window.occupiedAt(dispatch));

        // Operand readiness.
        Cycle ready = dispatch;
        switch (op.kind) {
          case OpKind::Compute:
            ready = std::max(ready, last_load_done);
            break;
          case OpKind::Load:
            if (op.dependsOnPrevLoad)
                ready = std::max(ready, last_load_done);
            break;
          case OpKind::Store:
          case OpKind::Branch:
            ready = std::max(ready, last_compute_done);
            break;
        }

        stalls.data += ready - dispatch;

        // Issue: in-order cores cannot start an op before its
        // predecessors have started; OOO cores may.
        Cycle start = ready;
        if (!core.outOfOrder) {
            start = std::max(start, last_start);
            last_start = start;
        }
        if (op.kind == OpKind::Load || op.kind == OpKind::Store) {
            const Cycle before_port = start;
            start = std::max(start, lsq.oldest());
            start = memPort.take(start);
            stalls.memPort += start - before_port;
            lsq_occ.record(lsq.occupiedAt(start));
        }

        // Execute.
        Cycle complete = start + 1;
        switch (op.kind) {
          case OpKind::Compute:
            last_compute_done = complete;
            break;
          case OpKind::Load:
            complete = mem.load(op.addr, op.size, start);
            last_load_done = complete;
            last_load_addr = op.addr;
            break;
          case OpKind::Store:
            // Data buffered at completion; memory write at retire.
            break;
          case OpKind::Branch: {
            branch_pc = branch_pc * 1664525 + 1013904223;
            const bool correct =
                bpred.predictAndUpdate(branch_pc, op.taken);
            if (!correct) {
                ++mispredicts;
                fetch_earliest = std::max(
                    fetch_earliest,
                    complete + core.mispredictPenalty);
                if (core.speculativeLoads) {
                    // Wrong-path speculation fetched and executed a
                    // load before the redirect: cache pollution plus
                    // wasted bandwidth (Section 2.1).
                    mem.wrongPathLoad(
                        last_load_addr + 16 * wordBytes, start);
                }
            }
            break;
          }
        }

        // Retire in order.  Each retirement is a forward-progress
        // event; a gap beyond the budget means the machine livelocked
        // (e.g. a memory model returned an absurd ready cycle).
        const Cycle retired =
            retire.take(std::max(complete, last_retire));
        watchdog.advance(retired);
        last_retire = retired;
        window.push(retired);
        if (op.kind == OpKind::Load || op.kind == OpKind::Store)
            lsq.push(retired);

        if (op.kind == OpKind::Store)
            mem.store(op.addr, op.size, retired);
    }

    CoreResult result;
    result.cycles = last_retire;
    result.instructions = stream.size();
    result.ipc = last_retire
                     ? static_cast<double>(stream.size()) / last_retire
                     : 0.0;
    result.branches = bpred.branches();
    result.mispredicts = mispredicts;
    result.stalls = stalls;
    result.windowOcc = window_occ;
    result.lsqOcc = lsq_occ;
    result.mem = mem.stats();
    return result;
}

void
publishCoreStats(StatsGroup &group, const CoreResult &result)
{
    auto &cycles =
        group.addCounter("cycles", "execution time", "cycles");
    cycles.set(result.cycles);
    auto &instructions = group.addCounter(
        "instructions", "retired micro-ops", "ops");
    instructions.set(result.instructions);
    group.addRatio("ipc", "instructions / cycles", instructions,
                   cycles);
    auto &branches = group.addCounter(
        "branches", "conditional branches executed", "ops");
    branches.set(result.branches);
    auto &mispredicts = group.addCounter(
        "mispredicts", "branch mispredictions", "events");
    mispredicts.set(result.mispredicts);
    group.addRatio("mispredict_rate", "mispredicts / branches",
                   mispredicts, branches);

    StatsGroup stall = group.group("stall");
    stall.addCounter("fetch",
                     "dispatch pushed by redirects and I-misses",
                     "cycles")
        .set(result.stalls.fetch);
    stall.addCounter("window", "dispatch pushed by a full window",
                     "cycles")
        .set(result.stalls.window);
    stall.addCounter("data", "issue waiting on operand data",
                     "cycles")
        .set(result.stalls.data);
    stall.addCounter("mem_port",
                     "issue waiting on LSQ space or a memory port",
                     "cycles")
        .set(result.stalls.memPort);

    group
        .addDistribution("window_occupancy",
                         "in-flight ops in the window at dispatch",
                         "ops")
        .set(result.windowOcc);
    group
        .addDistribution("lsq_occupancy",
                         "occupied LSQ slots at memory-op issue",
                         "ops")
        .set(result.lsqOcc);
}

namespace {

void
saveDist(ChkWriter &w, const DistData &d)
{
    w.u64(d.count);
    w.f64(d.sum);
    w.f64(d.sumSq);
    w.f64(d.minv);
    w.f64(d.maxv);
}

void
loadDist(ChkReader &r, DistData &d)
{
    d.count = r.u64();
    d.sum = r.f64();
    d.sumSq = r.f64();
    d.minv = r.f64();
    d.maxv = r.f64();
}

} // namespace

void
saveCoreResult(ChkWriter &w, const CoreResult &result)
{
    w.beginSection(chkTag("CORE"));
    w.u64(result.cycles);
    w.u64(result.instructions);
    w.f64(result.ipc);
    w.u64(result.branches);
    w.u64(result.mispredicts);
    w.u64(result.stalls.fetch);
    w.u64(result.stalls.window);
    w.u64(result.stalls.data);
    w.u64(result.stalls.memPort);
    saveDist(w, result.windowOcc);
    saveDist(w, result.lsqOcc);
    const MemSysStats &m = result.mem;
    w.u64(m.loads);
    w.u64(m.stores);
    w.u64(m.ifetches);
    w.u64(m.iMisses);
    w.u64(m.l1Misses);
    w.u64(m.l2Misses);
    w.u64(m.mshrMerges);
    w.u64(m.wrongPathLoads);
    w.u64(m.dramRowHits);
    w.u64(m.dramRowMisses);
    w.u64(m.dramBusyCycles);
    w.u64(m.l1l2BusBusy);
    w.u64(m.memBusBusy);
    w.u64(m.l1l2BusWait);
    w.u64(m.memBusWait);
    w.u64(m.l1l2BusTransfers);
    w.u64(m.memBusTransfers);
    w.endSection();
}

void
loadCoreResult(ChkReader &r, CoreResult &result)
{
    r.enterSection(chkTag("CORE"));
    result.cycles = r.u64();
    result.instructions = r.u64();
    result.ipc = r.f64();
    result.branches = r.u64();
    result.mispredicts = r.u64();
    result.stalls.fetch = r.u64();
    result.stalls.window = r.u64();
    result.stalls.data = r.u64();
    result.stalls.memPort = r.u64();
    loadDist(r, result.windowOcc);
    loadDist(r, result.lsqOcc);
    MemSysStats &m = result.mem;
    m.loads = r.u64();
    m.stores = r.u64();
    m.ifetches = r.u64();
    m.iMisses = r.u64();
    m.l1Misses = r.u64();
    m.l2Misses = r.u64();
    m.mshrMerges = r.u64();
    m.wrongPathLoads = r.u64();
    m.dramRowHits = r.u64();
    m.dramRowMisses = r.u64();
    m.dramBusyCycles = r.u64();
    m.l1l2BusBusy = r.u64();
    m.memBusBusy = r.u64();
    m.l1l2BusWait = r.u64();
    m.memBusWait = r.u64();
    m.l1l2BusTransfers = r.u64();
    m.memBusTransfers = r.u64();
    r.leaveSection();
}

} // namespace membw
