#include "cpu/core.hh"

#include <algorithm>
#include <vector>

#include "common/log.hh"
#include "cpu/branch_pred.hh"
#include "obs/registry.hh"

namespace membw {

namespace {

/**
 * Bandwidth slotter: hands out at most @p width slots per cycle, at
 * or after the requested cycle.  Requests must be non-decreasing,
 * which program-order processing guarantees for fetch and retire.
 */
class Slotter
{
  public:
    explicit Slotter(unsigned width) : width_(width) {}

    Cycle
    take(Cycle earliest)
    {
        if (earliest > cycle_) {
            cycle_ = earliest;
            used_ = 0;
        }
        if (used_ >= width_) {
            ++cycle_;
            used_ = 0;
        }
        ++used_;
        return cycle_;
    }

  private:
    unsigned width_;
    Cycle cycle_ = 0;
    unsigned used_ = 0;
};

/** Ring of the last N timestamps, for window/LSQ occupancy. */
class OccupancyRing
{
  public:
    explicit OccupancyRing(unsigned slots) : ring_(slots, 0) {}

    /** Time the oldest of the last N entries freed its slot. */
    Cycle oldest() const { return ring_[pos_]; }

    /** Entries still occupied (not yet retired) at cycle @p t. */
    unsigned
    occupiedAt(Cycle t) const
    {
        unsigned n = 0;
        for (const Cycle c : ring_)
            n += c > t;
        return n;
    }

    void
    push(Cycle t)
    {
        ring_[pos_] = t;
        pos_ = (pos_ + 1) % ring_.size();
    }

  private:
    std::vector<Cycle> ring_;
    std::size_t pos_ = 0;
};

} // namespace

CoreResult
runCore(const InstrStream &stream, const CoreConfig &core,
        MemorySystem &mem)
{
    if (core.issueWidth == 0 || core.memPorts == 0 ||
        core.windowSlots == 0 || core.lsqSlots == 0)
        fatal("core parameters must be non-zero");

    BranchPredictor bpred(core.bpredEntries);
    Slotter fetch(core.issueWidth);
    Slotter retire(core.issueWidth);
    Slotter memPort(core.memPorts);
    OccupancyRing window(core.windowSlots);
    OccupancyRing lsq(core.lsqSlots);

    Cycle fetch_earliest = 0;  ///< fetch redirect point
    Cycle last_retire = 0;
    Cycle last_start = 0;      ///< in-order issue point
    Cycle last_load_done = 0;  ///< most recent load's data
    Cycle last_compute_done = 0;
    Cycle last_dispatch = 0;   ///< stall-attribution baseline
    Addr last_load_addr = 0;
    std::uint64_t branch_pc = 0;
    std::uint64_t mispredicts = 0;

    CoreStalls stalls;
    DistData window_occ;
    DistData lsq_occ;

    Addr cur_fetch_block = addrInvalid;

    for (std::size_t i = 0; i < stream.size(); ++i) {
        const MicroOp &op = stream[i];

        if (core.progressEvery && core.progress && i &&
            i % core.progressEvery == 0)
            core.progress(i, stream.size());

        // Instruction fetch: crossing into a new fetch group costs
        // an I-cache access (free on a hit; a miss stalls fetch).
        const Addr fetch_block =
            op.pc & ~(static_cast<Addr>(core.fetchBlockBytes) - 1);
        if (fetch_block != cur_fetch_block) {
            cur_fetch_block = fetch_block;
            const Cycle at =
                std::max(fetch_earliest, window.oldest());
            const Cycle iready =
                mem.ifetch(fetch_block, core.fetchBlockBytes, at);
            if (iready > fetch_earliest)
                fetch_earliest = iready;
        }

        // Dispatch: fetch bandwidth, redirect point, window space.
        // Stall attribution measures how far each constraint pushed
        // the dispatch point past the previous one, fetch first.
        const Cycle after_fetch =
            std::max(last_dispatch, fetch_earliest);
        const Cycle constraint =
            std::max(after_fetch, window.oldest());
        stalls.fetch += after_fetch - last_dispatch;
        stalls.window += constraint - after_fetch;
        const Cycle dispatch = fetch.take(constraint);
        last_dispatch = dispatch;
        window_occ.record(window.occupiedAt(dispatch));

        // Operand readiness.
        Cycle ready = dispatch;
        switch (op.kind) {
          case OpKind::Compute:
            ready = std::max(ready, last_load_done);
            break;
          case OpKind::Load:
            if (op.dependsOnPrevLoad)
                ready = std::max(ready, last_load_done);
            break;
          case OpKind::Store:
          case OpKind::Branch:
            ready = std::max(ready, last_compute_done);
            break;
        }

        stalls.data += ready - dispatch;

        // Issue: in-order cores cannot start an op before its
        // predecessors have started; OOO cores may.
        Cycle start = ready;
        if (!core.outOfOrder) {
            start = std::max(start, last_start);
            last_start = start;
        }
        if (op.kind == OpKind::Load || op.kind == OpKind::Store) {
            const Cycle before_port = start;
            start = std::max(start, lsq.oldest());
            start = memPort.take(start);
            stalls.memPort += start - before_port;
            lsq_occ.record(lsq.occupiedAt(start));
        }

        // Execute.
        Cycle complete = start + 1;
        switch (op.kind) {
          case OpKind::Compute:
            last_compute_done = complete;
            break;
          case OpKind::Load:
            complete = mem.load(op.addr, op.size, start);
            last_load_done = complete;
            last_load_addr = op.addr;
            break;
          case OpKind::Store:
            // Data buffered at completion; memory write at retire.
            break;
          case OpKind::Branch: {
            branch_pc = branch_pc * 1664525 + 1013904223;
            const bool correct =
                bpred.predictAndUpdate(branch_pc, op.taken);
            if (!correct) {
                ++mispredicts;
                fetch_earliest = std::max(
                    fetch_earliest,
                    complete + core.mispredictPenalty);
                if (core.speculativeLoads) {
                    // Wrong-path speculation fetched and executed a
                    // load before the redirect: cache pollution plus
                    // wasted bandwidth (Section 2.1).
                    mem.wrongPathLoad(
                        last_load_addr + 16 * wordBytes, start);
                }
            }
            break;
          }
        }

        // Retire in order.
        const Cycle retired =
            retire.take(std::max(complete, last_retire));
        last_retire = retired;
        window.push(retired);
        if (op.kind == OpKind::Load || op.kind == OpKind::Store)
            lsq.push(retired);

        if (op.kind == OpKind::Store)
            mem.store(op.addr, op.size, retired);
    }

    CoreResult result;
    result.cycles = last_retire;
    result.instructions = stream.size();
    result.ipc = last_retire
                     ? static_cast<double>(stream.size()) / last_retire
                     : 0.0;
    result.branches = bpred.branches();
    result.mispredicts = mispredicts;
    result.stalls = stalls;
    result.windowOcc = window_occ;
    result.lsqOcc = lsq_occ;
    result.mem = mem.stats();
    return result;
}

void
publishCoreStats(StatsGroup &group, const CoreResult &result)
{
    auto &cycles =
        group.addCounter("cycles", "execution time", "cycles");
    cycles.set(result.cycles);
    auto &instructions = group.addCounter(
        "instructions", "retired micro-ops", "ops");
    instructions.set(result.instructions);
    group.addRatio("ipc", "instructions / cycles", instructions,
                   cycles);
    auto &branches = group.addCounter(
        "branches", "conditional branches executed", "ops");
    branches.set(result.branches);
    auto &mispredicts = group.addCounter(
        "mispredicts", "branch mispredictions", "events");
    mispredicts.set(result.mispredicts);
    group.addRatio("mispredict_rate", "mispredicts / branches",
                   mispredicts, branches);

    StatsGroup stall = group.group("stall");
    stall.addCounter("fetch",
                     "dispatch pushed by redirects and I-misses",
                     "cycles")
        .set(result.stalls.fetch);
    stall.addCounter("window", "dispatch pushed by a full window",
                     "cycles")
        .set(result.stalls.window);
    stall.addCounter("data", "issue waiting on operand data",
                     "cycles")
        .set(result.stalls.data);
    stall.addCounter("mem_port",
                     "issue waiting on LSQ space or a memory port",
                     "cycles")
        .set(result.stalls.memPort);

    group
        .addDistribution("window_occupancy",
                         "in-flight ops in the window at dispatch",
                         "ops")
        .set(result.windowOcc);
    group
        .addDistribution("lsq_occupancy",
                         "occupied LSQ slots at memory-op issue",
                         "ops")
        .set(result.lsqOcc);
}

} // namespace membw
