#include "cpu/core.hh"

#include <algorithm>
#include <vector>

#include "common/log.hh"
#include "cpu/branch_pred.hh"

namespace membw {

namespace {

/**
 * Bandwidth slotter: hands out at most @p width slots per cycle, at
 * or after the requested cycle.  Requests must be non-decreasing,
 * which program-order processing guarantees for fetch and retire.
 */
class Slotter
{
  public:
    explicit Slotter(unsigned width) : width_(width) {}

    Cycle
    take(Cycle earliest)
    {
        if (earliest > cycle_) {
            cycle_ = earliest;
            used_ = 0;
        }
        if (used_ >= width_) {
            ++cycle_;
            used_ = 0;
        }
        ++used_;
        return cycle_;
    }

  private:
    unsigned width_;
    Cycle cycle_ = 0;
    unsigned used_ = 0;
};

/** Ring of the last N timestamps, for window/LSQ occupancy. */
class OccupancyRing
{
  public:
    explicit OccupancyRing(unsigned slots) : ring_(slots, 0) {}

    /** Time the oldest of the last N entries freed its slot. */
    Cycle oldest() const { return ring_[pos_]; }

    void
    push(Cycle t)
    {
        ring_[pos_] = t;
        pos_ = (pos_ + 1) % ring_.size();
    }

  private:
    std::vector<Cycle> ring_;
    std::size_t pos_ = 0;
};

} // namespace

CoreResult
runCore(const InstrStream &stream, const CoreConfig &core,
        MemorySystem &mem)
{
    if (core.issueWidth == 0 || core.memPorts == 0 ||
        core.windowSlots == 0 || core.lsqSlots == 0)
        fatal("core parameters must be non-zero");

    BranchPredictor bpred(core.bpredEntries);
    Slotter fetch(core.issueWidth);
    Slotter retire(core.issueWidth);
    Slotter memPort(core.memPorts);
    OccupancyRing window(core.windowSlots);
    OccupancyRing lsq(core.lsqSlots);

    Cycle fetch_earliest = 0;  ///< fetch redirect point
    Cycle last_retire = 0;
    Cycle last_start = 0;      ///< in-order issue point
    Cycle last_load_done = 0;  ///< most recent load's data
    Cycle last_compute_done = 0;
    Addr last_load_addr = 0;
    std::uint64_t branch_pc = 0;
    std::uint64_t mispredicts = 0;

    Addr cur_fetch_block = addrInvalid;

    for (std::size_t i = 0; i < stream.size(); ++i) {
        const MicroOp &op = stream[i];

        // Instruction fetch: crossing into a new fetch group costs
        // an I-cache access (free on a hit; a miss stalls fetch).
        const Addr fetch_block =
            op.pc & ~(static_cast<Addr>(core.fetchBlockBytes) - 1);
        if (fetch_block != cur_fetch_block) {
            cur_fetch_block = fetch_block;
            const Cycle at =
                std::max(fetch_earliest, window.oldest());
            const Cycle iready =
                mem.ifetch(fetch_block, core.fetchBlockBytes, at);
            if (iready > fetch_earliest)
                fetch_earliest = iready;
        }

        // Dispatch: fetch bandwidth, redirect point, window space.
        const Cycle dispatch =
            fetch.take(std::max(fetch_earliest, window.oldest()));

        // Operand readiness.
        Cycle ready = dispatch;
        switch (op.kind) {
          case OpKind::Compute:
            ready = std::max(ready, last_load_done);
            break;
          case OpKind::Load:
            if (op.dependsOnPrevLoad)
                ready = std::max(ready, last_load_done);
            break;
          case OpKind::Store:
          case OpKind::Branch:
            ready = std::max(ready, last_compute_done);
            break;
        }

        // Issue: in-order cores cannot start an op before its
        // predecessors have started; OOO cores may.
        Cycle start = ready;
        if (!core.outOfOrder) {
            start = std::max(start, last_start);
            last_start = start;
        }
        if (op.kind == OpKind::Load || op.kind == OpKind::Store) {
            start = std::max(start, lsq.oldest());
            start = memPort.take(start);
        }

        // Execute.
        Cycle complete = start + 1;
        switch (op.kind) {
          case OpKind::Compute:
            last_compute_done = complete;
            break;
          case OpKind::Load:
            complete = mem.load(op.addr, op.size, start);
            last_load_done = complete;
            last_load_addr = op.addr;
            break;
          case OpKind::Store:
            // Data buffered at completion; memory write at retire.
            break;
          case OpKind::Branch: {
            branch_pc = branch_pc * 1664525 + 1013904223;
            const bool correct =
                bpred.predictAndUpdate(branch_pc, op.taken);
            if (!correct) {
                ++mispredicts;
                fetch_earliest = std::max(
                    fetch_earliest,
                    complete + core.mispredictPenalty);
                if (core.speculativeLoads) {
                    // Wrong-path speculation fetched and executed a
                    // load before the redirect: cache pollution plus
                    // wasted bandwidth (Section 2.1).
                    mem.wrongPathLoad(
                        last_load_addr + 16 * wordBytes, start);
                }
            }
            break;
          }
        }

        // Retire in order.
        const Cycle retired =
            retire.take(std::max(complete, last_retire));
        last_retire = retired;
        window.push(retired);
        if (op.kind == OpKind::Load || op.kind == OpKind::Store)
            lsq.push(retired);

        if (op.kind == OpKind::Store)
            mem.store(op.addr, op.size, retired);
    }

    CoreResult result;
    result.cycles = last_retire;
    result.instructions = stream.size();
    result.ipc = last_retire
                     ? static_cast<double>(stream.size()) / last_retire
                     : 0.0;
    result.branches = bpred.branches();
    result.mispredicts = mispredicts;
    result.mem = mem.stats();
    return result;
}

} // namespace membw
