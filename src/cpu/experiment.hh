/**
 * @file
 * The six machine configurations of Table 5 (experiments A-F) over
 * the Table 4 memory system, and the three-run decomposition driver
 * of Section 3.1.
 */

#ifndef MEMBW_CPU_EXPERIMENT_HH
#define MEMBW_CPU_EXPERIMENT_HH

#include <functional>
#include <string>

#include "cpu/core.hh"
#include "cpu/memsys.hh"
#include "metrics/decomposition.hh"

namespace membw {

/** One experiment: core + memory + clock. */
struct ExperimentConfig
{
    char letter = 'A';
    bool spec95 = false;
    double cpuMHz = 300.0;
    CoreConfig core;
    MemSysConfig mem;

    std::string describe() const;
};

/**
 * Build experiment @p letter ('A'-'F') with the SPEC92 or SPEC95
 * parameter set:
 *
 *  A  in-order, blocking caches, 32B/64B blocks, 8K bpred
 *  B  A with 64B/128B blocks
 *  C  A with lockup-free caches
 *  D  out-of-order (RUU) + speculative loads, lockup-free, 16K bpred
 *  E  D + tagged prefetch
 *  F  E with a 4x larger RUU/LSQ (and a faster SPEC95 clock)
 */
ExperimentConfig makeExperiment(char letter, bool spec95);

/** Results of the three decomposition runs plus full-system detail. */
struct DecompositionResult
{
    Decomposition split;
    CoreResult perfect;
    CoreResult infinite;
    CoreResult full;
};

/**
 * Run @p stream under @p config three times (perfect, infinite-width,
 * full memory) and decompose execution time (Equations 1-3).
 */
DecompositionResult runDecomposition(const InstrStream &stream,
                                     const ExperimentConfig &config);

/** The three decomposition runs, in execution order. */
constexpr unsigned decompositionPhases = 3;

/**
 * Run one decomposition phase (0 = perfect memory, 1 =
 * infinite-width, 2 = full system).  Each phase is deterministic and
 * independent, which is what makes phase-granularity checkpointing
 * sound: an interrupted phase is simply re-run from its start.
 */
CoreResult runPhase(const InstrStream &stream,
                    const ExperimentConfig &config, unsigned phase);

/** Observer over the phase's MemorySystem (attach/detach probes,
 * register profiler sources) — the system lives only for the phase. */
using MemSysHook = std::function<void(MemorySystem &)>;

/**
 * runPhase() with observation hooks: @p preRun fires after the
 * MemorySystem is built (before the first reference), @p postRun
 * after the run completes, while the system is still alive.  Either
 * may be empty.
 */
CoreResult runPhase(const InstrStream &stream,
                    const ExperimentConfig &config, unsigned phase,
                    const MemSysHook &preRun,
                    const MemSysHook &postRun);

/** Human-readable name of decomposition phase @p phase. */
const char *phaseName(unsigned phase);

/** Assemble the Equations 1-3 split from three completed phases. */
DecompositionResult
assembleDecomposition(const CoreResult &perfect,
                      const CoreResult &infinite,
                      const CoreResult &full);

/** Run only the full-system configuration. */
CoreResult runFull(const InstrStream &stream,
                   const ExperimentConfig &config);

class StatsRegistry;

/**
 * Publish a decomposition run: the T_P/T_I/T split and f_P/f_L/f_B
 * under "decomp", plus the full-system run's core counters under
 * "core" and memory-system counters under "mem".
 */
void publishDecompositionStats(StatsRegistry &registry,
                               const DecompositionResult &result);

/** Same layout rooted under an existing group — lets callers publish
 * several experiments side by side ("A.decomp.t_p", ...). */
void publishDecompositionStats(StatsGroup &group,
                               const DecompositionResult &result);

} // namespace membw

#endif // MEMBW_CPU_EXPERIMENT_HH
