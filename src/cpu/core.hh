/**
 * @file
 * Timestamp-propagation processor core model.
 *
 * Models the Table 5 machines: a 4-wide in-order superscalar with two
 * load/store units (experiments A-C) and an RUU-based out-of-order
 * core with speculative loads (experiments D-F).  Rather than a
 * cycle-by-cycle loop, each micro-op's dispatch, issue, completion,
 * and retirement cycles are derived in one program-order pass — the
 * constraints (fetch bandwidth, window occupancy, dependences,
 * memory ports, in-order retirement) are all monotone, so a single
 * pass is exact for this machine class and runs in O(n).
 */

#ifndef MEMBW_CPU_CORE_HH
#define MEMBW_CPU_CORE_HH

#include <cstddef>
#include <cstdint>
#include <functional>

#include "common/types.hh"
#include "cpu/instr_stream.hh"
#include "cpu/memsys.hh"
#include "obs/stat.hh"

namespace membw {

class StatsGroup;
class Watchdog;

/** Core parameters (Table 5). */
struct CoreConfig
{
    unsigned issueWidth = 4;  ///< fetch/issue/retire bandwidth
    unsigned memPorts = 2;    ///< load/store units
    bool outOfOrder = false;  ///< RUU core (D-F) vs in-order (A-C)
    bool speculativeLoads = false; ///< wrong-path loads on mispredict
    unsigned windowSlots = 8; ///< RUU entries (OOO) / in-flight (IO)
    unsigned lsqSlots = 8;    ///< load/store queue entries
    unsigned bpredEntries = 8192;
    Cycle mispredictPenalty = 3; ///< fetch redirect cycles
    Bytes fetchBlockBytes = 16;  ///< I-fetch group size

    /**
     * Optional heartbeat: invoked as (ops done, total ops) every
     * progressEvery micro-ops.  0 disables the hook entirely (no
     * per-op overhead beyond one branch).
     */
    std::uint64_t progressEvery = 0;
    std::function<void(std::size_t, std::size_t)> progress;

    /**
     * Forward-progress watchdog budget: the run fails with
     * WatchdogError (exit code 4) if consecutive retirements are ever
     * more than this many cycles apart — the timestamp-model
     * signature of a livelocked memory system.  0 disables the guard.
     */
    Cycle watchdogCycles = 0;

    /**
     * Optional caller-owned watchdog to drive instead of an internal
     * one (its own budget applies; watchdogCycles is ignored).  Lets
     * a tool's heartbeat report live slack/headroom for the guard.
     * Not owned; must outlive the run.
     */
    Watchdog *watchdog = nullptr;
};

/**
 * Where dispatch/issue cycles went while the core could not make
 * full-width progress.  Attribution is per micro-op and ordered:
 * fetch (redirects + I-misses) first, then window occupancy, then
 * operand data wait, then memory-port/LSQ contention.
 */
struct CoreStalls
{
    Cycle fetch = 0;   ///< redirects and I-cache misses
    Cycle window = 0;  ///< RUU / in-flight window full
    Cycle data = 0;    ///< waiting for load data / operands
    Cycle memPort = 0; ///< LSQ full or load/store ports busy
};

/** Result of one timed run. */
struct CoreResult
{
    Cycle cycles = 0;
    std::uint64_t instructions = 0;
    double ipc = 0.0;
    std::uint64_t branches = 0;
    std::uint64_t mispredicts = 0;
    CoreStalls stalls;
    DistData windowOcc; ///< RUU/in-flight occupancy at dispatch
    DistData lsqOcc;    ///< LSQ occupancy at issue of mem ops
    MemSysStats mem;
};

/**
 * Run @p stream on a core described by @p core over @p mem.
 * The MemorySystem is consumed (its state advances); pass a fresh
 * one per run.
 */
CoreResult runCore(const InstrStream &stream, const CoreConfig &core,
                   MemorySystem &mem);

/**
 * Publish a run's counters under @p group (typically "core"):
 * cycles/instructions/ipc, branch outcomes, the stall breakdown
 * under "stall", and the occupancy distributions.
 */
void publishCoreStats(StatsGroup &group, const CoreResult &result);

class ChkWriter;
class ChkReader;

/**
 * Serialize a completed run ("CORE" section) so the decomposition
 * driver can checkpoint between its phases.
 */
void saveCoreResult(ChkWriter &w, const CoreResult &result);

/** Read back what saveCoreResult() wrote (classified error on @p r). */
void loadCoreResult(ChkReader &r, CoreResult &result);

} // namespace membw

#endif // MEMBW_CPU_CORE_HH
