/**
 * @file
 * Timing memory hierarchy: two cache levels, two contended buses,
 * main memory — the Table 4 system, runnable in three modes.
 *
 *  - Perfect: every access completes in one cycle (measures T_P);
 *  - InfiniteWidth: intrinsic latencies only — infinitely wide,
 *    contention-free paths between levels (measures T_I);
 *  - Full: finite bus widths, clock ratios, and queueing (measures T).
 *
 * Functional cache state (hits, evictions, prefetches) is identical
 * across the modes; only the timing differs, which is exactly what
 * the paper's decomposition requires.
 */

#ifndef MEMBW_CPU_MEMSYS_HH
#define MEMBW_CPU_MEMSYS_HH

#include <memory>
#include <optional>
#include <unordered_map>
#include <vector>

#include "cache/cache.hh"
#include "common/types.hh"
#include "cpu/bus.hh"
#include "dram/dram.hh"

namespace membw {

/** Timing-mode selector for the decomposition runs. */
enum class MemMode : std::uint8_t
{
    Perfect,
    InfiniteWidth,
    Full,
};

/** Memory-system parameters (Table 4, plus Table 5's cache rows). */
struct MemSysConfig
{
    MemMode mode = MemMode::Full;

    Bytes l1Size = 128_KiB;
    Bytes l1Block = 32;
    unsigned l1Assoc = 1;     ///< direct-mapped L1 (Table 4)

    /**
     * SPEC95 runs split the L1 into 64KB I + 64KB D (Table 4);
     * SPEC92 runs use one unified 128KB L1, so instruction fetches
     * compete with data for the same lines.
     */
    bool splitL1 = false;
    Bytes iL1Size = 64_KiB;

    Bytes l2Size = 1_MiB;
    Bytes l2Block = 64;
    unsigned l2Assoc = 4;

    bool lockupFree = false;  ///< experiments C-F
    unsigned mshrs = 8;       ///< outstanding misses when lockup-free
    bool taggedPrefetch = false; ///< experiments E-F

    Cycle busRatio = 3;       ///< processor cycles per bus cycle
    Bytes l1l2BusBytes = 16;  ///< 128-bit L1/L2 bus
    Bytes memBusBytes = 8;    ///< 64-bit memory bus (multiplexed)

    Cycle l2AccessCycles = 9;  ///< 30ns at the processor clock
    Cycle memAccessCycles = 27;///< 90ns; infinite banks

    /**
     * Optional banked row-buffer DRAM backend (Section 2.3's FPM /
     * EDO / SDRAM / Rambus interfaces).  When unset, main memory is
     * the paper's flat-latency infinite-bank model.  Only the Full
     * mode uses the banked timing; InfiniteWidth keeps the intrinsic
     * flat latency (bank/beat effects are bandwidth, not latency).
     */
    std::optional<DramConfig> dram;
};

/** Counters exposed by the timing memory system. */
struct MemSysStats
{
    std::uint64_t loads = 0;
    std::uint64_t stores = 0;
    std::uint64_t ifetches = 0;
    std::uint64_t iMisses = 0;
    std::uint64_t l1Misses = 0;
    std::uint64_t l2Misses = 0;
    std::uint64_t mshrMerges = 0;
    std::uint64_t wrongPathLoads = 0;
    std::uint64_t dramRowHits = 0;
    std::uint64_t dramRowMisses = 0;
    Cycle dramBusyCycles = 0; ///< banked-DRAM bank busy time
    Cycle l1l2BusBusy = 0;
    Cycle memBusBusy = 0;
    Cycle l1l2BusWait = 0;  ///< cycles queued behind a busy L1/L2 bus
    Cycle memBusWait = 0;   ///< cycles queued behind a busy mem bus
    std::uint64_t l1l2BusTransfers = 0;
    std::uint64_t memBusTransfers = 0;
};

class StatsGroup;

/**
 * Publish @p stats under @p group (typically "mem"): access mix,
 * per-level miss counts, and the bus occupancy/queueing counters
 * under "bus.l1l2" / "bus.mem".
 */
void publishMemSysStats(StatsGroup &group, const MemSysStats &stats);

/**
 * The timing hierarchy.  Loads return the cycle at which the critical
 * word reaches the processor; stores retire through an infinitely
 * deep write buffer (Section 3.1) and only consume bandwidth.
 */
class MemorySystem
{
  public:
    explicit MemorySystem(const MemSysConfig &config);
    ~MemorySystem();

    /** Issue a load at cycle @p when; returns data-ready cycle. */
    Cycle load(Addr addr, Bytes size, Cycle when);

    /**
     * Fetch an instruction group at @p addr (must not span an L1
     * block).  Hits cost nothing extra (the fetch pipeline covers
     * them); returns the cycle the group is available.  SPEC92's
     * unified L1 makes these compete with data lines.
     */
    Cycle ifetch(Addr addr, Bytes bytes, Cycle when);

    /** Retire a store at cycle @p when (never stalls the core). */
    void store(Addr addr, Bytes size, Cycle when);

    /**
     * Speculative wrong-path load issued after a mispredicted branch
     * (experiments D-F): pollutes the caches and consumes bandwidth,
     * but nothing waits for it.
     */
    void wrongPathLoad(Addr addr, Cycle when);

    MemSysStats stats() const;
    const CacheStats &l1Stats() const { return l1_->stats(); }
    const CacheStats &l2Stats() const { return l2_->stats(); }

    /** Split-L1 instruction cache stats; null when unified. */
    const CacheStats *
    il1Stats() const
    {
        return il1_ ? &il1_->stats() : nullptr;
    }

    /**
     * Attach @p probe (null to detach) across the hierarchy: the
     * data L1 reports as level 0, the L2 as level 1, the split
     * instruction L1 (when present) as level 2, and the banked DRAM
     * backend (when configured) reports row outcomes.
     */
    void
    attachProbe(MemProbe *probe)
    {
        l1_->setProbe(probe, 0);
        l2_->setProbe(probe, 1);
        if (il1_)
            il1_->setProbe(probe, 2);
        if (dram_)
            dram_->setProbe(probe);
    }

  private:
    struct FetchEvent
    {
        Addr addr = 0;
        Bytes bytes = 0;
        bool l2Hit = true;
        Bytes memFetch = 0;
        Bytes memWriteback = 0;
    };
    struct WritebackEvent
    {
        Bytes bytes = 0;
        Bytes memFetch = 0;
        Bytes memWriteback = 0;
    };

    struct Outstanding
    {
        Addr block = 0;
        Cycle dataReady = 0;
        Cycle freeAt = 0;
    };

    /** Run the functional access, capturing this access's events. */
    AccessResult functionalAccess(Cache &cache, const MemRef &ref);

    /** Wire @p cache's fills/write-backs into the functional L2. */
    void installBelow(Cache &cache);

    // Non-allocating downstream callbacks (ctx = this MemorySystem):
    // L2 -> memory byte accumulators, and L1/IL1 -> functional L2
    // event capture.
    static void memFetch(void *ctx, Addr addr, Bytes bytes);
    static void memWriteback(void *ctx, Addr addr, Bytes bytes);
    static void l1Fetch(void *ctx, Addr addr, Bytes bytes);
    static void l1Writeback(void *ctx, Addr addr, Bytes bytes);

    /** Demand-miss timing; returns critical-word arrival. */
    Cycle missTiming(Cycle reqStart, const FetchEvent &demand);

    /** Occupancy-only timing for non-demand events. */
    void backgroundTiming(Cycle when, bool skipFirstFetch);

    Cycle acquireMissPort(Addr block, Cycle when, bool &merged,
                          Cycle &mergedReady);
    void releaseMissPort(Addr block, Cycle dataReady, Cycle freeAt);

    /**
     * Chip-side main-memory timing for one transfer: flat latency by
     * default, banked row-buffer timing when a DRAM model is set.
     */
    DramAccess dramService(Addr addr, Bytes bytes, Cycle ready);

    MemSysConfig config_;
    std::unique_ptr<Cache> l1_;
    std::unique_ptr<Cache> il1_; ///< null when the L1 is unified
    std::unique_ptr<Cache> l2_;
    std::unique_ptr<DramModel> dram_; ///< null = flat-latency model
    Bus l1l2Bus_;
    Bus memBus_;

    // Per-access event capture (filled by the cache callbacks).
    std::vector<FetchEvent> fetchEvents_;
    std::vector<WritebackEvent> writebackEvents_;
    Bytes memFetchAcc_ = 0;
    Bytes memWritebackAcc_ = 0;

    // Miss-port state: blocking cache (1 slot) or MSHRs.
    std::vector<Outstanding> outstanding_;
    Cycle blockingFreeAt_ = 0;

    // Blocks brought in by the prefetcher that are still in flight:
    // a demand "hit" on one waits for its arrival rather than
    // completing in a cycle.
    std::unordered_map<Addr, Cycle> prefetchInFlight_;

    MemSysStats stats_;
};

} // namespace membw

#endif // MEMBW_CPU_MEMSYS_HH
