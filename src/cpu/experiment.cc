#include "cpu/experiment.hh"

#include <cmath>

#include "common/log.hh"
#include "obs/registry.hh"

namespace membw {

namespace {

Cycle
nsToCycles(double ns, double mhz)
{
    return static_cast<Cycle>(std::ceil(ns * mhz / 1000.0));
}

} // namespace

std::string
ExperimentConfig::describe() const
{
    return std::string(1, letter) + (spec95 ? "/SPEC95" : "/SPEC92") +
           " " + (core.outOfOrder ? "OOO" : "in-order") +
           (mem.lockupFree ? " lockup-free" : " blocking") +
           (mem.taggedPrefetch ? " +prefetch" : "");
}

ExperimentConfig
makeExperiment(char letter, bool spec95)
{
    if (letter < 'A' || letter > 'F')
        fatal("experiment letter must be A-F");

    ExperimentConfig e;
    e.letter = letter;
    e.spec95 = spec95;

    // ---- clock (Table 5): A-E 300/400 MHz, F 300/600 MHz ----
    const bool is_f = letter == 'F';
    e.cpuMHz = spec95 ? (is_f ? 600.0 : 400.0) : 300.0;

    // ---- memory system (Table 4) ----
    MemSysConfig &m = e.mem;
    if (spec95) {
        m.l1Size = 64_KiB; // split: 64KB I + 64KB D (Table 4)
        m.splitL1 = true;
        m.iL1Size = 64_KiB;
        m.l2Size = 2_MiB;
        m.busRatio = 4;
    } else {
        m.l1Size = 128_KiB; // unified: I and D share the lines
        m.splitL1 = false;
        m.l2Size = 1_MiB;
        m.busRatio = 3;
    }
    m.l1Assoc = 1;
    m.l2Assoc = 4;
    m.l1l2BusBytes = 16; // 128 bits
    m.memBusBytes = 8;   // 64 bits
    m.l2AccessCycles = nsToCycles(30.0, e.cpuMHz);
    m.memAccessCycles = nsToCycles(90.0, e.cpuMHz);

    // Block sizes: B doubles them (Table 5 row "L1/L2 blocks").
    if (letter == 'B') {
        m.l1Block = 64;
        m.l2Block = 128;
    } else {
        m.l1Block = 32;
        m.l2Block = 64;
    }

    m.lockupFree = letter >= 'C';
    m.mshrs = 8;
    m.taggedPrefetch = letter >= 'E';

    // ---- core (Table 5) ----
    CoreConfig &c = e.core;
    c.issueWidth = 4;
    c.memPorts = 2;
    c.outOfOrder = letter >= 'D';
    c.speculativeLoads = c.outOfOrder;
    c.bpredEntries = c.outOfOrder ? 16384 : 8192;
    c.mispredictPenalty = 3;

    if (!c.outOfOrder) {
        c.windowSlots = 8;
        c.lsqSlots = 8;
    } else if (is_f) {
        c.windowSlots = spec95 ? 128 : 64;
        c.lsqSlots = spec95 ? 64 : 32;
    } else {
        c.windowSlots = spec95 ? 64 : 16;
        c.lsqSlots = spec95 ? 32 : 8;
    }
    return e;
}

CoreResult
runPhase(const InstrStream &stream, const ExperimentConfig &config,
         unsigned phase)
{
    return runPhase(stream, config, phase, MemSysHook(),
                    MemSysHook());
}

CoreResult
runPhase(const InstrStream &stream, const ExperimentConfig &config,
         unsigned phase, const MemSysHook &preRun,
         const MemSysHook &postRun)
{
    MemSysConfig m = config.mem;
    switch (phase) {
      case 0:
        m.mode = MemMode::Perfect;
        break;
      case 1:
        m.mode = MemMode::InfiniteWidth;
        break;
      case 2:
        m.mode = MemMode::Full;
        break;
      default:
        fatal("decomposition phase must be 0-2");
    }
    MemorySystem mem(m);
    if (preRun)
        preRun(mem);
    CoreResult result = runCore(stream, config.core, mem);
    if (postRun)
        postRun(mem);
    return result;
}

const char *
phaseName(unsigned phase)
{
    switch (phase) {
      case 0: return "perfect";
      case 1: return "infinite-width";
      case 2: return "full";
      default: return "?";
    }
}

DecompositionResult
assembleDecomposition(const CoreResult &perfect,
                      const CoreResult &infinite,
                      const CoreResult &full)
{
    DecompositionResult result;
    result.perfect = perfect;
    result.infinite = infinite;
    result.full = full;
    result.split = decompose(perfect.cycles, infinite.cycles,
                             full.cycles);
    return result;
}

DecompositionResult
runDecomposition(const InstrStream &stream,
                 const ExperimentConfig &config)
{
    const CoreResult perfect = runPhase(stream, config, 0);
    const CoreResult infinite = runPhase(stream, config, 1);
    const CoreResult full = runPhase(stream, config, 2);
    return assembleDecomposition(perfect, infinite, full);
}

CoreResult
runFull(const InstrStream &stream, const ExperimentConfig &config)
{
    MemSysConfig m = config.mem;
    m.mode = MemMode::Full;
    MemorySystem mem(m);
    return runCore(stream, config.core, mem);
}

/** Shared body for the registry-rooted and group-rooted publishers;
 * Parent is StatsRegistry or StatsGroup (both expose group()). */
template <typename Parent>
static void
publishDecompositionInto(Parent &parent,
                         const DecompositionResult &result)
{
    StatsGroup decomp = parent.group("decomp");
    auto &tp = decomp.addCounter(
        "t_p", "T_P: cycles with a perfect memory system", "cycles");
    tp.set(result.split.perfectCycles);
    decomp
        .addCounter("t_i",
                    "T_I: cycles with intrinsic latencies only",
                    "cycles")
        .set(result.split.infiniteCycles);
    auto &t = decomp.addCounter("t", "T: cycles on the full system",
                                "cycles");
    t.set(result.split.fullCycles);
    decomp
        .addCounter("t_l", "latency stall cycles T_L = T_I - T_P",
                    "cycles")
        .set(result.split.latencyStall());
    decomp
        .addCounter("t_b", "bandwidth stall cycles T_B = T - T_I",
                    "cycles")
        .set(result.split.bandwidthStall());
    decomp.addScalar("f_p", "processing fraction T_P / T")
        .set(result.split.fP());
    decomp.addScalar("f_l", "latency-stall fraction T_L / T")
        .set(result.split.fL());
    decomp.addScalar("f_b", "bandwidth-stall fraction T_B / T")
        .set(result.split.fB());

    StatsGroup core = parent.group("core");
    publishCoreStats(core, result.full);
    StatsGroup mem = parent.group("mem");
    publishMemSysStats(mem, result.full.mem);
}

void
publishDecompositionStats(StatsRegistry &registry,
                          const DecompositionResult &result)
{
    publishDecompositionInto(registry, result);
}

void
publishDecompositionStats(StatsGroup &group,
                          const DecompositionResult &result)
{
    publishDecompositionInto(group, result);
}

} // namespace membw
