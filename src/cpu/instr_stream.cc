#include "cpu/instr_stream.hh"

#include <vector>

#include "common/log.hh"
#include "common/rng.hh"

namespace membw {

namespace {

/** Where the synthetic code region lives (above all data regions). */
constexpr Addr codeBase = Addr{1} << 40;

/**
 * Loop-structured program-counter generator.  Sequential advance
 * plus taken-branch targets: mostly back edges to recent loop heads,
 * occasionally a "call" into fresh code — giving the small hot
 * I-working-set that loop-dominated codes exhibit.
 */
class PcModel
{
  public:
    PcModel(Bytes code_bytes, std::uint64_t seed)
        : codeBytes_(code_bytes), rng_(seed ^ 0x1F37C4)
    {
        // Larger programs spread control flow across more code:
        // scale the fresh-jump probability with the footprint, so a
        // small interpreter core stays I-hot while Perl/Vortex-class
        // codes pressure their I-caches.
        freshProb_ = 0.005 + static_cast<double>(code_bytes) /
                                static_cast<double>(16_MiB);
        if (freshProb_ > 0.03)
            freshProb_ = 0.03;
        loopHeads_.push_back(0);
    }

    Addr next()
    {
        const Addr pc = codeBase + offset_;
        offset_ = (offset_ + 4) % codeBytes_;
        return pc;
    }

    void
    takenBranch()
    {
        if (!rng_.chance(freshProb_)) {
            // Back edge: return to a recent loop head.
            const std::size_t pick = rng_.below(loopHeads_.size());
            offset_ = loopHeads_[loopHeads_.size() - 1 - pick];
        } else {
            // Call/jump into fresh code; remember it as a new head.
            offset_ =
                (rng_.below(codeBytes_ / 64) * 64) % codeBytes_;
            rememberHead(offset_);
        }
    }

    void
    notTakenBranch()
    {
        // Fall through; the next sequential op is a potential head.
        rememberHead(offset_);
    }

  private:
    void
    rememberHead(Addr offset)
    {
        loopHeads_.push_back(offset);
        if (loopHeads_.size() > 8)
            loopHeads_.erase(loopHeads_.begin());
    }

    Bytes codeBytes_;
    Rng rng_;
    double freshProb_ = 0.03;
    Addr offset_ = 0;
    std::vector<Addr> loopHeads_;
};

} // namespace

InstrStream
InstrStream::fromRun(const WorkloadRun &run, Bytes codeBytes,
                     std::uint64_t seed)
{
    using Kind = TraceRecorder::Annotation::Kind;

    if (codeBytes < 256)
        fatal("code footprint must be at least 256 bytes");

    InstrStream stream;
    stream.ops_.reserve(run.annotations.size() * 2);
    PcModel pcs(codeBytes, seed);

    auto push = [&](MicroOp op) {
        op.pc = pcs.next();
        stream.ops_.push_back(op);
    };

    for (const auto &a : run.annotations) {
        for (unsigned i = 0; i < a.opsBefore; ++i)
            push(MicroOp{OpKind::Compute, 0, 0, wordBytes, false,
                         false});

        if (a.kind == Kind::Branch) {
            push(MicroOp{OpKind::Branch, 0, 0, wordBytes, a.taken,
                         false});
            stream.branches_++;
            if (a.taken)
                pcs.takenBranch();
            else
                pcs.notTakenBranch();
            continue;
        }

        if (a.memIndex >= run.trace.size())
            fatal("annotation references a missing trace entry");
        const MemRef &ref = run.trace[a.memIndex];
        MicroOp op;
        op.kind = ref.isLoad() ? OpKind::Load : OpKind::Store;
        op.addr = ref.addr;
        op.size = ref.size;
        op.dependsOnPrevLoad = a.dependsOnPrevLoad && ref.isLoad();
        push(op);
        if (ref.isLoad())
            stream.loads_++;
        else
            stream.stores_++;
    }
    return stream;
}

} // namespace membw
