/**
 * @file
 * Contended split-width bus model.
 *
 * Each hierarchy boundary (L1/L2, L2/memory) is a bus with a data
 * width and a bus-to-processor clock ratio (Table 4).  Transfers
 * serialize: a request arriving while the bus is busy queues until
 * the bus frees — the mechanism behind bandwidth stall time.  In
 * infinite-width mode (used to measure T_I) transfers complete
 * instantly and never queue.
 */

#ifndef MEMBW_CPU_BUS_HH
#define MEMBW_CPU_BUS_HH

#include "common/bitops.hh"
#include "common/types.hh"

namespace membw {

/** Completion times of one bus transfer. */
struct BusTransfer
{
    Cycle grant = 0;     ///< when the bus was acquired
    Cycle firstBeat = 0; ///< first data beat done (critical word)
    Cycle done = 0;      ///< last beat done; bus freed
};

/** One bus. */
class Bus
{
  public:
    /**
     * @param widthBytes data width per beat.
     * @param cyclesPerBeat processor cycles per bus cycle.
     * @param infiniteWidth if set, transfers are instantaneous.
     */
    Bus(Bytes widthBytes, Cycle cyclesPerBeat, bool infiniteWidth)
        : width_(widthBytes), beat_(cyclesPerBeat),
          infinite_(infiniteWidth)
    {
    }

    /**
     * Transfer @p bytes starting no earlier than @p ready, after
     * @p leadBeats address/turnaround beats.
     */
    BusTransfer
    transfer(Cycle ready, Bytes bytes, unsigned leadBeats = 0)
    {
        BusTransfer t;
        if (infinite_) {
            t.grant = ready;
            t.firstBeat = ready;
            t.done = ready;
            return t;
        }
        t.grant = ready > nextFree_ ? ready : nextFree_;
        waitCycles_ += t.grant - ready;
        const Cycle lead = static_cast<Cycle>(leadBeats) * beat_;
        const Cycle beats = divCeil(bytes, width_);
        t.firstBeat = t.grant + lead + beat_;
        t.done = t.grant + lead + beats * beat_;
        nextFree_ = t.done;
        busyCycles_ += t.done - t.grant;
        ++transfers_;
        return t;
    }

    /** Cycles this bus spent occupied. */
    Cycle busyCycles() const { return busyCycles_; }
    /** Cycles transfers queued waiting for the bus to free. */
    Cycle waitCycles() const { return waitCycles_; }
    std::uint64_t transfers() const { return transfers_; }
    Cycle nextFree() const { return nextFree_; }

  private:
    Bytes width_;
    Cycle beat_;
    bool infinite_;
    Cycle nextFree_ = 0;
    Cycle busyCycles_ = 0;
    Cycle waitCycles_ = 0;
    std::uint64_t transfers_ = 0;
};

} // namespace membw

#endif // MEMBW_CPU_BUS_HH
