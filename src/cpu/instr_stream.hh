/**
 * @file
 * Micro-op stream consumed by the timing core.
 *
 * A workload run's memory trace plus its compute/branch annotations
 * are flattened into a single program-ordered stream of micro-ops —
 * the timing model's analogue of SimpleScalar's decoded instruction
 * stream.
 */

#ifndef MEMBW_CPU_INSTR_STREAM_HH
#define MEMBW_CPU_INSTR_STREAM_HH

#include <cstdint>
#include <vector>

#include "common/types.hh"
#include "workloads/workload.hh"

namespace membw {

/** Micro-op kinds the core models. */
enum class OpKind : std::uint8_t
{
    Compute, ///< ALU/FPU op; depends on the most recent load
    Load,    ///< memory read
    Store,   ///< memory write (retired through the write buffer)
    Branch,  ///< conditional branch; may redirect fetch
};

/** One micro-op. */
struct MicroOp
{
    OpKind kind = OpKind::Compute;
    Addr addr = 0;      ///< effective address (Load/Store)
    Addr pc = 0;        ///< instruction address (for I-fetch)
    Bytes size = wordBytes;
    bool taken = false; ///< branch outcome
    bool dependsOnPrevLoad = false; ///< serial load chain (Load only)
};

/** Program-ordered micro-op sequence. */
class InstrStream
{
  public:
    /**
     * Flatten a workload run into micro-ops.
     *
     * Instruction addresses are synthesized with a loop-structured
     * model: ops advance sequentially through a code region of
     * @p codeBytes; taken branches mostly return to recently seen
     * loop heads (back edges) and occasionally call into fresh code.
     * The code region is placed far above the data regions so I- and
     * D-streams only interact through shared caches.
     */
    static InstrStream fromRun(const WorkloadRun &run,
                               Bytes codeBytes = 32_KiB,
                               std::uint64_t seed = 1);

    std::size_t size() const { return ops_.size(); }
    const MicroOp &operator[](std::size_t i) const { return ops_[i]; }

    auto begin() const { return ops_.begin(); }
    auto end() const { return ops_.end(); }

    std::uint64_t loadCount() const { return loads_; }
    std::uint64_t storeCount() const { return stores_; }
    std::uint64_t branchCount() const { return branches_; }

  private:
    std::vector<MicroOp> ops_;
    std::uint64_t loads_ = 0;
    std::uint64_t stores_ = 0;
    std::uint64_t branches_ = 0;
};

} // namespace membw

#endif // MEMBW_CPU_INSTR_STREAM_HH
