#include "cpu/memsys.hh"

#include <algorithm>
#include <cassert>

#include "common/bitops.hh"
#include "common/log.hh"
#include "obs/registry.hh"

namespace membw {

namespace {

CacheConfig
l1Config(const MemSysConfig &c)
{
    CacheConfig cfg;
    cfg.name = "L1";
    cfg.size = c.l1Size;
    cfg.assoc = c.l1Assoc;
    cfg.blockBytes = c.l1Block;
    cfg.write = WritePolicy::WriteBack;
    cfg.alloc = AllocPolicy::WriteAllocate;
    cfg.repl = ReplPolicy::LRU;
    cfg.taggedPrefetch = c.taggedPrefetch;
    return cfg;
}

CacheConfig
l2Config(const MemSysConfig &c)
{
    CacheConfig cfg;
    cfg.name = "L2";
    cfg.size = c.l2Size;
    cfg.assoc = c.l2Assoc;
    cfg.blockBytes = c.l2Block;
    cfg.write = WritePolicy::WriteBack;
    cfg.alloc = AllocPolicy::WriteAllocate;
    cfg.repl = ReplPolicy::LRU;
    return cfg;
}

CacheConfig
il1Config(const MemSysConfig &c)
{
    CacheConfig cfg = l1Config(c);
    cfg.name = "IL1";
    cfg.size = c.iL1Size;
    cfg.taggedPrefetch = false; // data-side prefetcher only
    return cfg;
}

} // namespace

MemorySystem::MemorySystem(const MemSysConfig &config)
    : config_(config),
      l1_(std::make_unique<Cache>(l1Config(config))),
      l2_(std::make_unique<Cache>(l2Config(config))),
      l1l2Bus_(config.l1l2BusBytes, config.busRatio,
               config.mode != MemMode::Full),
      memBus_(config.memBusBytes, config.busRatio,
              config.mode != MemMode::Full)
{
    // L2's misses and write-backs go to main memory: accumulate the
    // byte counts so the enclosing L1 event can be costed.
    l2_->setBelow(&MemorySystem::memFetch,
                  &MemorySystem::memWriteback, this);

    if (config.splitL1)
        il1_ = std::make_unique<Cache>(il1Config(config));
    if (config.dram && config.mode == MemMode::Full)
        dram_ = std::make_unique<DramModel>(*config.dram);

    // L1 (and IL1) fills and write-backs run through the functional
    // L2 and are recorded as events for the timing interpreter.
    installBelow(*l1_);
    if (il1_)
        installBelow(*il1_);
}

void
MemorySystem::installBelow(Cache &cache)
{
    cache.setBelow(&MemorySystem::l1Fetch,
                   &MemorySystem::l1Writeback, this);
}

void
MemorySystem::memFetch(void *ctx, Addr, Bytes bytes)
{
    static_cast<MemorySystem *>(ctx)->memFetchAcc_ += bytes;
}

void
MemorySystem::memWriteback(void *ctx, Addr, Bytes bytes)
{
    static_cast<MemorySystem *>(ctx)->memWritebackAcc_ += bytes;
}

void
MemorySystem::l1Fetch(void *ctx, Addr addr, Bytes bytes)
{
    auto *self = static_cast<MemorySystem *>(ctx);
    const Bytes mf0 = self->memFetchAcc_;
    const Bytes mw0 = self->memWritebackAcc_;
    const AccessResult r =
        self->l2_->access(MemRef{addr, bytes, RefKind::Load});
    FetchEvent ev;
    ev.addr = addr;
    ev.bytes = bytes;
    ev.l2Hit = r.hit;
    ev.memFetch = self->memFetchAcc_ - mf0;
    ev.memWriteback = self->memWritebackAcc_ - mw0;
    self->fetchEvents_.push_back(ev);
}

void
MemorySystem::l1Writeback(void *ctx, Addr addr, Bytes bytes)
{
    auto *self = static_cast<MemorySystem *>(ctx);
    const Bytes mf0 = self->memFetchAcc_;
    const Bytes mw0 = self->memWritebackAcc_;
    self->l2_->access(MemRef{addr, bytes, RefKind::Store});
    WritebackEvent ev;
    ev.bytes = bytes;
    ev.memFetch = self->memFetchAcc_ - mf0;
    ev.memWriteback = self->memWritebackAcc_ - mw0;
    self->writebackEvents_.push_back(ev);
}

MemorySystem::~MemorySystem() = default;

AccessResult
MemorySystem::functionalAccess(Cache &cache, const MemRef &ref)
{
    fetchEvents_.clear();
    writebackEvents_.clear();
    return cache.access(ref);
}

Cycle
MemorySystem::acquireMissPort(Addr block, Cycle when, bool &merged,
                              Cycle &mergedReady)
{
    merged = false;
    if (!config_.lockupFree) {
        // Blocking cache: one outstanding miss; hits under miss are
        // still serviced (Section 3.1).
        return std::max(when, blockingFreeAt_);
    }

    // Lockup-free: merge with an in-flight miss to the same block.
    for (const Outstanding &o : outstanding_) {
        if (o.block == block && o.freeAt > when) {
            merged = true;
            mergedReady = std::max(o.dataReady, when);
            stats_.mshrMerges++;
            return when;
        }
    }

    // Drop retired entries; if all MSHRs are busy, wait for the
    // earliest to free.
    std::erase_if(outstanding_,
                  [when](const Outstanding &o) { return o.freeAt <= when; });
    if (outstanding_.size() >= config_.mshrs) {
        auto earliest = std::min_element(
            outstanding_.begin(), outstanding_.end(),
            [](const Outstanding &a, const Outstanding &b) {
                return a.freeAt < b.freeAt;
            });
        const Cycle wait = earliest->freeAt;
        outstanding_.erase(earliest);
        return std::max(when, wait);
    }
    return when;
}

void
MemorySystem::releaseMissPort(Addr block, Cycle dataReady, Cycle freeAt)
{
    if (!config_.lockupFree) {
        blockingFreeAt_ = freeAt;
        // Keep the single in-flight miss visible so hits to the
        // missing block itself wait for its data.
        outstanding_.clear();
        outstanding_.push_back(Outstanding{block, dataReady, freeAt});
        return;
    }
    outstanding_.push_back(Outstanding{block, dataReady, freeAt});
}

DramAccess
MemorySystem::dramService(Addr addr, Bytes bytes, Cycle ready)
{
    if (dram_)
        return dram_->access(addr, bytes, ready);
    DramAccess flat;
    flat.firstBeat = ready + config_.memAccessCycles;
    flat.done = flat.firstBeat;
    return flat;
}

Cycle
MemorySystem::missTiming(Cycle reqStart, const FetchEvent &demand)
{
    // Request trip to the (off-chip) L2 plus the L2 array access.
    Cycle at_l2 = reqStart + config_.busRatio + config_.l2AccessCycles;

    if (!demand.l2Hit) {
        // Multiplexed memory bus: one address beat, the DRAM access
        // (flat infinite-bank latency, or the banked row-buffer
        // model), then the data beats.
        const BusTransfer addr_tx = memBus_.transfer(at_l2, 0, 1);
        const DramAccess da = dramService(
            demand.addr, config_.l2Block,
            std::max(addr_tx.done, at_l2));
        const BusTransfer data_tx =
            memBus_.transfer(da.firstBeat, config_.l2Block);
        // Critical word forwards through the L2; the slower of the
        // chip interface and the bus governs it.
        at_l2 = std::max(data_tx.firstBeat, da.firstBeat + 1);
    }

    // L1 fill over the L1/L2 bus; critical word first.
    const BusTransfer fill_tx = l1l2Bus_.transfer(at_l2, demand.bytes);
    return fill_tx.firstBeat;
}

void
MemorySystem::backgroundTiming(Cycle when, bool skipFirstFetch)
{
    bool first = true;
    for (const FetchEvent &ev : fetchEvents_) {
        if (first && skipFirstFetch) {
            first = false;
            continue;
        }
        first = false;
        Cycle at_l2 = when + config_.busRatio + config_.l2AccessCycles;
        if (!ev.l2Hit) {
            const BusTransfer addr_tx = memBus_.transfer(at_l2, 0, 1);
            const DramAccess da = dramService(
                ev.addr, ev.memFetch, std::max(addr_tx.done, at_l2));
            const BusTransfer data_tx =
                memBus_.transfer(da.firstBeat, ev.memFetch);
            at_l2 = std::max(data_tx.done, da.done);
        }
        if (ev.memWriteback)
            memBus_.transfer(at_l2, ev.memWriteback, 1);
        const BusTransfer fill_tx = l1l2Bus_.transfer(at_l2, ev.bytes);

        // Remember when this (prefetch) fill actually lands so a
        // demand reference to it waits for the data, not one cycle.
        if (config_.taggedPrefetch) {
            if (prefetchInFlight_.size() > 4096) {
                std::erase_if(prefetchInFlight_,
                              [when](const auto &kv) {
                                  return kv.second <= when;
                              });
            }
            const Addr block =
                ev.addr &
                ~(static_cast<Addr>(config_.l1Block) - 1);
            prefetchInFlight_[block] = fill_tx.done;
        }
    }

    for (const WritebackEvent &ev : writebackEvents_) {
        l1l2Bus_.transfer(when, ev.bytes);
        if (ev.memFetch)
            memBus_.transfer(when, ev.memFetch, 1);
        if (ev.memWriteback)
            memBus_.transfer(when, ev.memWriteback, 1);
    }
}

Cycle
MemorySystem::load(Addr addr, Bytes size, Cycle when)
{
    stats_.loads++;
    const AccessResult result =
        functionalAccess(*l1_, MemRef{addr, size, RefKind::Load});

    if (config_.mode == MemMode::Perfect)
        return when + 1;

    if (result.hit) {
        // Prefetches or partial activity triggered by a hit only
        // consume bandwidth.
        backgroundTiming(when + 1, false);

        const Addr hit_block =
            addr & ~(static_cast<Addr>(config_.l1Block) - 1);

        // A "hit" on a block whose demand miss is still in flight
        // (the functional fill is instantaneous) completes when the
        // data actually lands — an MSHR merge.
        for (const Outstanding &o : outstanding_) {
            if (o.block == hit_block && o.dataReady > when + 1) {
                stats_.mshrMerges++;
                return o.dataReady;
            }
        }

        // Likewise for a block the prefetcher is still bringing in.
        if (config_.taggedPrefetch) {
            auto it = prefetchInFlight_.find(hit_block);
            if (it != prefetchInFlight_.end()) {
                const Cycle ready = it->second;
                prefetchInFlight_.erase(it);
                if (ready > when + 1)
                    return ready;
            }
        }
        return when + 1;
    }

    stats_.l1Misses++;
    const Addr block = addr & ~(static_cast<Addr>(config_.l1Block) - 1);

    bool merged = false;
    Cycle merged_ready = 0;
    const Cycle req_start =
        acquireMissPort(block, when + 1, merged, merged_ready);
    if (merged) {
        backgroundTiming(when + 1, false);
        return merged_ready;
    }

    if (fetchEvents_.empty())
        panic("L1 miss produced no fetch event");
    const FetchEvent &demand = fetchEvents_.front();
    if (!demand.l2Hit)
        stats_.l2Misses++;

    const Cycle data_ready = missTiming(req_start, demand);
    // The miss port is held until the full block has been filled; the
    // critical word unblocks the consumer earlier.
    const Cycle full_fill =
        data_ready +
        (config_.mode == MemMode::Full
             ? divCeil(config_.l1Block, config_.l1l2BusBytes) *
                   config_.busRatio
             : 0);
    releaseMissPort(block, data_ready, full_fill);

    // Cost the non-demand events (victim write-backs, prefetches).
    backgroundTiming(data_ready, true);

    stats_.l1l2BusBusy = l1l2Bus_.busyCycles();
    stats_.memBusBusy = memBus_.busyCycles();
    return data_ready;
}

Cycle
MemorySystem::ifetch(Addr addr, Bytes bytes, Cycle when)
{
    stats_.ifetches++;
    Cache &icache = il1_ ? *il1_ : *l1_;
    const AccessResult result = functionalAccess(
        icache, MemRef{addr, bytes, RefKind::Load});

    if (config_.mode == MemMode::Perfect)
        return when;

    if (result.hit) {
        backgroundTiming(when, false);
        const Addr hit_block =
            addr & ~(static_cast<Addr>(config_.l1Block) - 1);
        for (const Outstanding &o : outstanding_) {
            if (o.block == hit_block && o.dataReady > when)
                return o.dataReady;
        }
        return when; // covered by the fetch pipeline
    }

    stats_.iMisses++;
    const Addr block = addr & ~(static_cast<Addr>(config_.l1Block) - 1);
    bool merged = false;
    Cycle merged_ready = 0;
    const Cycle req_start =
        acquireMissPort(block, when + 1, merged, merged_ready);
    if (merged) {
        backgroundTiming(when + 1, false);
        return merged_ready;
    }
    if (fetchEvents_.empty())
        panic("I-miss produced no fetch event");
    const FetchEvent &demand = fetchEvents_.front();
    if (!demand.l2Hit)
        stats_.l2Misses++;
    const Cycle data_ready = missTiming(req_start, demand);
    const Cycle full_fill =
        data_ready + (config_.mode == MemMode::Full
                          ? divCeil(config_.l1Block,
                                    config_.l1l2BusBytes) *
                                config_.busRatio
                          : 0);
    releaseMissPort(block, data_ready, full_fill);
    backgroundTiming(data_ready, true);
    return data_ready;
}

void
MemorySystem::store(Addr addr, Bytes size, Cycle when)
{
    stats_.stores++;
    functionalAccess(*l1_, MemRef{addr, size, RefKind::Store});
    if (config_.mode == MemMode::Perfect)
        return;
    // Infinitely deep write buffer: the store never stalls the core,
    // but its fills and write-backs consume bus bandwidth.
    backgroundTiming(when, false);
}

void
MemorySystem::wrongPathLoad(Addr addr, Cycle when)
{
    stats_.wrongPathLoads++;
    functionalAccess(*l1_, MemRef{addr, wordBytes, RefKind::Load});
    if (config_.mode == MemMode::Perfect)
        return;
    backgroundTiming(when, false);
}

MemSysStats
MemorySystem::stats() const
{
    MemSysStats s = stats_;
    s.l1l2BusBusy = l1l2Bus_.busyCycles();
    s.memBusBusy = memBus_.busyCycles();
    s.l1l2BusWait = l1l2Bus_.waitCycles();
    s.memBusWait = memBus_.waitCycles();
    s.l1l2BusTransfers = l1l2Bus_.transfers();
    s.memBusTransfers = memBus_.transfers();
    if (dram_) {
        s.dramRowHits = dram_->stats().rowHits;
        s.dramRowMisses = dram_->stats().rowMisses;
        s.dramBusyCycles = dram_->stats().busyCycles;
    }
    return s;
}

namespace {

void
publishBus(StatsGroup &group, Cycle busy, Cycle wait,
           std::uint64_t transfers)
{
    auto &busyStat = group.addCounter(
        "busy_cycles", "cycles the bus was transferring", "cycles");
    busyStat.set(busy);
    auto &waitStat = group.addCounter(
        "wait_cycles", "cycles transfers queued for the bus",
        "cycles");
    waitStat.set(wait);
    auto &transferStat =
        group.addCounter("transfers", "transfers granted", "events");
    transferStat.set(transfers);
    group.addRatio("mean_queue_wait",
                   "wait_cycles / transfers (mean queue depth proxy)",
                   waitStat, transferStat, "cycles");
}

} // namespace

void
publishMemSysStats(StatsGroup &group, const MemSysStats &stats)
{
    group.addCounter("loads", "timed demand loads", "refs")
        .set(stats.loads);
    group.addCounter("stores", "timed stores", "refs")
        .set(stats.stores);
    group.addCounter("ifetches", "instruction-group fetches", "refs")
        .set(stats.ifetches);
    group.addCounter("i_misses", "instruction fetch misses", "refs")
        .set(stats.iMisses);
    group.addCounter("l1_misses", "L1 data misses", "refs")
        .set(stats.l1Misses);
    group.addCounter("l2_misses", "L2 misses", "refs")
        .set(stats.l2Misses);
    group.addCounter("mshr_merges",
                     "misses merged into an outstanding MSHR",
                     "events")
        .set(stats.mshrMerges);
    group.addCounter("wrong_path_loads",
                     "speculative wrong-path loads issued", "refs")
        .set(stats.wrongPathLoads);

    StatsGroup dram = group.group("dram");
    auto &rowHits = dram.addCounter(
        "row_hits", "accesses hitting an open row", "events");
    rowHits.set(stats.dramRowHits);
    dram.addCounter("row_misses",
                    "accesses needing precharge+activate", "events")
        .set(stats.dramRowMisses);
    auto &rowAccesses = dram.addCounter(
        "accesses", "banked-DRAM accesses (0 = flat-latency model)",
        "events");
    rowAccesses.set(stats.dramRowHits + stats.dramRowMisses);
    dram.addRatio("row_hit_rate", "row_hits / accesses", rowHits,
                  rowAccesses);
    dram.addCounter("busy_cycles", "bank busy time", "cycles")
        .set(stats.dramBusyCycles);

    StatsGroup bus = group.group("bus");
    StatsGroup l1l2 = bus.group("l1l2");
    publishBus(l1l2, stats.l1l2BusBusy, stats.l1l2BusWait,
               stats.l1l2BusTransfers);
    StatsGroup mem = bus.group("mem");
    publishBus(mem, stats.memBusBusy, stats.memBusWait,
               stats.memBusTransfers);
}

} // namespace membw
