#include "trace/trace_mmap.hh"

#include <cstdio>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "common/bitops.hh"
#include "common/crc.hh"
#include "common/log.hh"
#include "obs/trace_span.hh"
#include "resilience/fault_injection.hh"
#include "resilience/guarded_io.hh"
#include "trace/trace_io.hh"

#if defined(__unix__) || defined(__APPLE__)
#define MEMBW_HAVE_MMAP 1
#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>
#else
#define MEMBW_HAVE_MMAP 0
#endif

namespace membw {

namespace {

std::size_t
alignUp64(std::size_t n)
{
    return (n + (mmapTraceAlign - 1)) & ~(mmapTraceAlign - 1);
}

Error
mmapError(Errc code, const std::string &origin,
          const std::string &why)
{
    return Error{code, "mmap trace '" + origin + "': " + why};
}

std::uint64_t
loadLe(const std::uint8_t *p, unsigned bytes)
{
    std::uint64_t v = 0;
    for (unsigned i = 0; i < bytes; ++i)
        v |= static_cast<std::uint64_t>(p[i]) << (8 * i);
    return v;
}

void
storeLe(std::uint8_t *p, std::uint64_t v, unsigned bytes)
{
    for (unsigned i = 0; i < bytes; ++i)
        p[i] = static_cast<std::uint8_t>(v >> (8 * i));
}

/** Column offsets for @p count references; false on overflow. */
bool
columnLayout(std::uint64_t count, std::size_t &addrOff,
             std::size_t &sizeOff, std::size_t &kindOff,
             std::size_t &total)
{
    // Each reference needs 11 column bytes; cap well below overflow.
    if (count > (std::size_t{1} << 48))
        return false;
    const std::size_t n = static_cast<std::size_t>(count);
    addrOff = mmapTraceHeaderBytes;
    sizeOff = alignUp64(addrOff + n * 8);
    kindOff = alignUp64(sizeOff + n * 2);
    total = alignUp64(kindOff + n);
    return true;
}

} // namespace

Trace
MappedTrace::materialize() const
{
    Trace t;
    t.reserve(refs);
    for (std::size_t i = 0; i < refs; ++i)
        t.append(MemRef{addr[i], static_cast<Bytes>(size[i]),
                        kind[i] ? RefKind::Store : RefKind::Load});
    return t;
}

bool
isMmapTrace(const std::uint8_t *data, std::size_t size)
{
    return size >= 4 && loadLe(data, 4) == mmapTraceMagic;
}

Result<MappedTrace>
parseMmapTrace(const std::uint8_t *data, std::size_t size,
               const std::string &origin)
{
    if (size < 4)
        return mmapError(Errc::Truncated, origin,
                         "file ends inside the magic number");
    if (loadLe(data, 4) != mmapTraceMagic)
        return mmapError(Errc::BadMagic, origin,
                         "not an mmap-format trace");
    if (size < mmapTraceHeaderBytes)
        return mmapError(Errc::Truncated, origin,
                         "file ends inside the header");
    const std::uint64_t version = loadLe(data + 4, 4);
    if (version != mmapTraceVersion)
        return mmapError(Errc::BadVersion, origin,
                         "unsupported version " +
                             std::to_string(version));

    const std::uint64_t count = loadLe(data + 8, 8);
    const std::uint64_t loads = loadLe(data + 16, 8);
    const std::uint64_t stores = loadLe(data + 24, 8);
    const std::uint64_t requestBytes = loadLe(data + 32, 8);
    const std::uint32_t contentCrc =
        static_cast<std::uint32_t>(loadLe(data + 40, 4));
    const std::uint32_t payloadCrc =
        static_cast<std::uint32_t>(loadLe(data + 44, 4));
    const std::uint32_t flags =
        static_cast<std::uint32_t>(loadLe(data + 48, 4));

    if (flags & ~mmapFlagAllWordRefs)
        return mmapError(Errc::Corrupt, origin,
                         "unknown flag bits set");

    std::size_t addrOff = 0, sizeOff = 0, kindOff = 0, total = 0;
    if (!columnLayout(count, addrOff, sizeOff, kindOff, total))
        return mmapError(Errc::TooLarge, origin,
                         "implausible reference count " +
                             std::to_string(count));
    if (size < total)
        return mmapError(Errc::Truncated, origin,
                         "file ends inside the columns (" +
                             std::to_string(size) + " of " +
                             std::to_string(total) + " bytes)");
    if (size > total)
        return mmapError(Errc::Corrupt, origin,
                         "trailing bytes after the columns");

    if (crc32(data + mmapTraceHeaderBytes,
              total - mmapTraceHeaderBytes) != payloadCrc)
        return mmapError(Errc::Corrupt, origin,
                         "payload CRC mismatch");

    MappedTrace m;
    m.refs = static_cast<std::size_t>(count);
    m.contentCrc = contentCrc;
    m.allWordRefs = (flags & mmapFlagAllWordRefs) != 0;
    m.addr = reinterpret_cast<const std::uint64_t *>(data + addrOff);
    m.size = reinterpret_cast<const std::uint16_t *>(data + sizeOff);
    m.kind = data + kindOff;

    // Cross-check the header totals and flags against the columns;
    // the content CRC doubles as the logical identity checkpoint
    // resume verifies, so it must match a per-reference recompute.
    std::uint64_t sawLoads = 0, sawStores = 0;
    Bytes sawBytes = 0;
    bool sawAllWord = true;
    Crc32 crc;
    for (std::size_t i = 0; i < m.refs; ++i) {
        const Addr a = m.addr[i];
        const Bytes s = m.size[i];
        const std::uint8_t k = m.kind[i];
        if (k > 1)
            return mmapError(Errc::Corrupt, origin,
                             "record " + std::to_string(i) +
                                 ": bad kind byte");
        if (const char *why = traceRefInvalid(a, s))
            return mmapError(Errc::Corrupt, origin,
                             "record " + std::to_string(i) + ": " +
                                 why);
        if (k)
            sawStores++;
        else
            sawLoads++;
        sawBytes += s;
        if (s != wordBytes || a % wordBytes != 0)
            sawAllWord = false;
        crc.updateScalar(a);
        crc.updateScalar(static_cast<std::uint32_t>(s));
        crc.updateScalar(k);
    }
    if (sawLoads != loads || sawStores != stores ||
        sawBytes != requestBytes)
        return mmapError(Errc::Corrupt, origin,
                         "header totals disagree with the columns");
    if (m.allWordRefs && !sawAllWord)
        return mmapError(Errc::Corrupt, origin,
                         "allWordRefs flag set on non-word records");
    if (crc.value() != contentCrc)
        return mmapError(Errc::Corrupt, origin,
                         "content CRC mismatch");
    m.loads = sawLoads;
    m.stores = sawStores;
    m.requestBytes = sawBytes;
    return m;
}

Result<MappedTrace>
tryLoadMappedTrace(const std::string &path)
{
    MEMBW_SPAN("trace.mmap_load");
#if MEMBW_HAVE_MMAP
    const int fd = ::open(path.c_str(), O_RDONLY);
    if (fd < 0)
        return mmapError(Errc::IoError, path,
                         "cannot open for reading");
    struct stat st;
    if (::fstat(fd, &st) != 0 || st.st_size < 0) {
        ::close(fd);
        return mmapError(Errc::IoError, path, "cannot stat");
    }
    const std::size_t len = static_cast<std::size_t>(st.st_size);
    if (MEMBW_FAULT_POINT("mmap")) {
        ::close(fd);
        return mmapError(Errc::IoError, path,
                         "cannot map " + std::to_string(len) +
                             " bytes (injected)");
    }
    void *map = len ? ::mmap(nullptr, len, PROT_READ, MAP_PRIVATE,
                             fd, 0)
                    : nullptr;
    ::close(fd); // the mapping outlives the descriptor
    if (len && map == MAP_FAILED)
        return mmapError(Errc::IoError, path, "mmap failed");
    std::shared_ptr<const void> image(
        map, [len](const void *p) {
            if (p)
                ::munmap(const_cast<void *>(p),
                         len ? len : 1);
        });
    Result<MappedTrace> parsed = parseMmapTrace(
        static_cast<const std::uint8_t *>(map), len, path);
    if (!parsed)
        return parsed;
    MappedTrace m = std::move(parsed.value());
    m.image = std::move(image);
    return m;
#else
    std::FILE *f = std::fopen(path.c_str(), "rb");
    if (!f)
        return mmapError(Errc::IoError, path,
                         "cannot open for reading");
    std::fseek(f, 0, SEEK_END);
    const long sz = std::ftell(f);
    std::rewind(f);
    if (sz < 0) {
        std::fclose(f);
        return mmapError(Errc::IoError, path, "cannot size");
    }
    auto buffer = std::make_shared<std::vector<std::uint8_t>>(
        static_cast<std::size_t>(sz));
    if (!buffer->empty() &&
        std::fread(buffer->data(), buffer->size(), 1, f) != 1) {
        std::fclose(f);
        return mmapError(Errc::IoError, path, "cannot read");
    }
    std::fclose(f);
    Result<MappedTrace> parsed =
        parseMmapTrace(buffer->data(), buffer->size(), path);
    if (!parsed)
        return parsed;
    MappedTrace m = std::move(parsed.value());
    m.image = std::shared_ptr<const void>(buffer, buffer->data());
    return m;
#endif
}

void
saveTraceMmap(const Trace &trace, const std::string &path)
{
    MEMBW_SPAN_D("trace.mmap_save",
                 "refs=" + std::to_string(trace.size()));

    const std::size_t n = trace.size();
    std::vector<std::uint64_t> addrs;
    std::vector<std::uint16_t> sizes;
    std::vector<std::uint8_t> kinds;
    addrs.reserve(n);
    sizes.reserve(n);
    kinds.reserve(n);
    std::uint64_t loads = 0, stores = 0;
    Bytes requestBytes = 0;
    bool allWord = true;
    for (const MemRef &r : trace) {
        if (r.size > 0xffff)
            fatal("mmap trace format cannot encode a " +
                  std::to_string(r.size) + "-byte reference");
        addrs.push_back(r.addr);
        sizes.push_back(static_cast<std::uint16_t>(r.size));
        kinds.push_back(r.isStore() ? 1 : 0);
        if (r.isStore())
            stores++;
        else
            loads++;
        requestBytes += r.size;
        if (r.size != wordBytes || r.addr % wordBytes != 0)
            allWord = false;
    }

    std::size_t addrOff = 0, sizeOff = 0, kindOff = 0, total = 0;
    if (!columnLayout(n, addrOff, sizeOff, kindOff, total))
        fatal("mmap trace format: implausible reference count");

    // The payload CRC covers every post-header byte (padding
    // included), so stream it in the exact write order.
    static constexpr std::uint8_t zeros[mmapTraceAlign] = {};
    const std::size_t pad1 = sizeOff - (addrOff + n * 8);
    const std::size_t pad2 = kindOff - (sizeOff + n * 2);
    const std::size_t pad3 = total - (kindOff + n);
    Crc32 payload;
    payload.update(addrs.data(), n * 8);
    payload.update(zeros, pad1);
    payload.update(sizes.data(), n * 2);
    payload.update(zeros, pad2);
    payload.update(kinds.data(), n);
    payload.update(zeros, pad3);

    std::uint8_t header[mmapTraceHeaderBytes] = {};
    storeLe(header + 0, mmapTraceMagic, 4);
    storeLe(header + 4, mmapTraceVersion, 4);
    storeLe(header + 8, n, 8);
    storeLe(header + 16, loads, 8);
    storeLe(header + 24, stores, 8);
    storeLe(header + 32, requestBytes, 8);
    storeLe(header + 40, traceCrc32(trace), 4);
    storeLe(header + 44, payload.value(), 4);
    storeLe(header + 48, allWord ? mmapFlagAllWordRefs : 0, 4);

    GuardedFile out;
    (void)out.open(path).orDie();
    (void)out.write(header, sizeof(header)).orDie();
    (void)out.write(addrs.data(), n * 8).orDie();
    (void)out.write(zeros, pad1).orDie();
    (void)out.write(sizes.data(), n * 2).orDie();
    (void)out.write(zeros, pad2).orDie();
    (void)out.write(kinds.data(), n).orDie();
    (void)out.write(zeros, pad3).orDie();
    (void)out.commit().orDie();
}

BlockStream
buildBlockStream(const MappedTrace &trace, Bytes blockBytes)
{
    if (blockBytes < wordBytes || !isPowerOfTwo(blockBytes))
        fatal("block stream needs a power-of-two block size >= 4B");

    MEMBW_SPAN_D("block_stream.mmap_view",
                 "block=" + std::to_string(blockBytes) +
                     "B refs=" + std::to_string(trace.refs));

    BlockStream s;
    s.blockBytes = blockBytes;
    s.blockShift = floorLog2(blockBytes);
    s.refs = trace.refs;
    s.loads = trace.loads;
    s.stores = trace.stores;
    s.requestBytes = trace.requestBytes;
    s.blockNumStore.reserve(s.refs);
    s.wordMaskStore.reserve(s.refs);

    if (trace.allWordRefs) {
        // One aligned word per reference: never spans, the size
        // column is borrowed verbatim, and the word mask is a single
        // bit at the word's offset inside the block.
        for (std::size_t i = 0; i < s.refs; ++i) {
            const Addr a = trace.addr[i];
            s.blockNumStore.push_back(a >> s.blockShift);
            s.wordMaskStore.push_back(
                std::uint64_t{1}
                << ((a & (blockBytes - 1)) / wordBytes));
        }
        s.size = trace.size;
    } else {
        s.sizeStore.reserve(s.refs);
        for (std::size_t i = 0; i < s.refs; ++i) {
            const Addr a = trace.addr[i];
            const Bytes refSize = trace.size[i];
            const Addr block = alignDown(a, blockBytes);
            const bool spans =
                refSize == 0 ||
                alignDown(a + refSize - 1, blockBytes) != block;
            if (spans)
                s.spansBlock = true;
            s.blockNumStore.push_back(a >> s.blockShift);
            s.sizeStore.push_back(static_cast<std::uint16_t>(
                refSize <= blockBytes ? refSize : blockBytes));
            std::uint64_t mask = 0;
            if (!spans) {
                const unsigned first = static_cast<unsigned>(
                    (a - block) / wordBytes);
                const unsigned last = static_cast<unsigned>(
                    (a + refSize - 1 - block) / wordBytes);
                for (unsigned w = first; w <= last; ++w)
                    mask |= std::uint64_t{1} << w;
            }
            s.wordMaskStore.push_back(mask);
        }
        s.size = s.sizeStore.data();
    }

    s.blockNum = s.blockNumStore.data();
    s.wordMask = s.wordMaskStore.data();
    s.isStore = trace.kind; // on-disk kind encoding == isStore
    s.keepAlive = trace.image;
    return s;
}

} // namespace membw
