/**
 * @file
 * Chunked SoA (structure-of-arrays) view of a trace for one block
 * size.
 *
 * Sweep kernels that evaluate many cache configurations sharing one
 * block size re-derive the same per-reference quantities — block
 * number, load/store kind, request size, word mask — once per cell.
 * A BlockStream pre-decodes them once per (trace, block size) into
 * contiguous parallel arrays that workers share read-only, so a
 * sweep cell iterates flat arrays in L2-resident chunks instead of
 * pulling each MemRef through the polymorphic per-access hot loop.
 *
 * The decode also records the two trace properties the one-pass
 * sweep guards need (does any reference span a block boundary? are
 * there stores?) so eligibility checks are O(1) instead of another
 * trace walk.
 */

#ifndef MEMBW_TRACE_BLOCK_STREAM_HH
#define MEMBW_TRACE_BLOCK_STREAM_HH

#include <cstdint>
#include <vector>

#include "common/types.hh"
#include "trace/trace.hh"

namespace membw {

struct BlockStream
{
    /**
     * References per chunk.  8K references keep the four live decode
     * arrays (~152KB) inside a typical L2 slice while a kernel
     * replays the chunk once per configuration.
     */
    static constexpr std::size_t chunkRefs = std::size_t{1} << 13;

    Bytes blockBytes = 0;
    unsigned blockShift = 0; ///< log2(blockBytes)

    std::size_t refs = 0;
    std::uint64_t loads = 0;
    std::uint64_t stores = 0;
    Bytes requestBytes = 0; ///< sum of reference sizes

    /** True iff some reference crosses a block boundary (the direct
     * simulator treats that as fatal; one-pass kernels must too). */
    bool spansBlock = false;

    std::vector<std::uint64_t> blockNum; ///< addr >> blockShift
    std::vector<std::uint8_t> isStore;   ///< 0 = load, 1 = store
    std::vector<std::uint16_t> size;     ///< request bytes (<= block)
    std::vector<std::uint64_t> wordMask; ///< words touched in block
};

/**
 * Decode @p trace once for @p blockBytes (a power of two >=
 * wordBytes).  O(n); the result is immutable and safe to share
 * across sweep workers.
 */
BlockStream buildBlockStream(const Trace &trace, Bytes blockBytes);

} // namespace membw

#endif // MEMBW_TRACE_BLOCK_STREAM_HH
