/**
 * @file
 * Chunked SoA (structure-of-arrays) view of a trace for one block
 * size.
 *
 * Sweep kernels that evaluate many cache configurations sharing one
 * block size re-derive the same per-reference quantities — block
 * number, load/store kind, request size, word mask — once per cell.
 * A BlockStream pre-decodes them once per (trace, block size) into
 * contiguous parallel arrays that workers share read-only, so a
 * sweep cell iterates flat arrays in L2-resident chunks instead of
 * pulling each MemRef through the polymorphic per-access hot loop.
 *
 * The four arrays are exposed as raw read-only views so they can
 * either own their storage (the decode path fills the *Store
 * vectors) or borrow it from an mmap'd trace file whose on-disk
 * layout already matches (trace/trace_mmap.*): the kind and size
 * arrays of the mmap format are byte-compatible with isStore/size,
 * so those two never get copied or decoded on that path, and
 * keepAlive pins the mapping for the stream's lifetime.  Views into
 * owned vectors survive moves (the heap buffers transfer), but
 * copying would leave them dangling, so BlockStream is move-only.
 *
 * The decode also records the two trace properties the one-pass
 * sweep guards need (does any reference span a block boundary? are
 * there stores?) so eligibility checks are O(1) instead of another
 * trace walk.
 */

#ifndef MEMBW_TRACE_BLOCK_STREAM_HH
#define MEMBW_TRACE_BLOCK_STREAM_HH

#include <cstdint>
#include <memory>
#include <vector>

#include "common/types.hh"
#include "trace/trace.hh"

namespace membw {

struct BlockStream
{
    /**
     * References per chunk.  8K references keep the four live decode
     * arrays (~152KB) inside a typical L2 slice while a kernel
     * replays the chunk once per configuration.
     */
    static constexpr std::size_t chunkRefs = std::size_t{1} << 13;

    Bytes blockBytes = 0;
    unsigned blockShift = 0; ///< log2(blockBytes)

    std::size_t refs = 0;
    std::uint64_t loads = 0;
    std::uint64_t stores = 0;
    Bytes requestBytes = 0; ///< sum of reference sizes

    /** True iff some reference crosses a block boundary (the direct
     * simulator treats that as fatal; one-pass kernels must too). */
    bool spansBlock = false;

    /** Read-only views over the decode arrays (owned or borrowed). */
    const std::uint64_t *blockNum = nullptr; ///< addr >> blockShift
    const std::uint8_t *isStore = nullptr;   ///< 0 = load, 1 = store
    const std::uint16_t *size = nullptr;     ///< request bytes (<= block)
    const std::uint64_t *wordMask = nullptr; ///< words touched in block

    /** Owned backing storage; empty for a view that borrows. */
    std::vector<std::uint64_t> blockNumStore;
    std::vector<std::uint8_t> isStoreStore;
    std::vector<std::uint16_t> sizeStore;
    std::vector<std::uint64_t> wordMaskStore;

    /** Pins a borrowed mapping (trace_mmap) for the view lifetime. */
    std::shared_ptr<const void> keepAlive;

    BlockStream() = default;
    BlockStream(BlockStream &&) = default;
    BlockStream &operator=(BlockStream &&) = default;
    BlockStream(const BlockStream &) = delete;
    BlockStream &operator=(const BlockStream &) = delete;
};

/**
 * Decode @p trace once for @p blockBytes (a power of two >=
 * wordBytes).  O(n); the result is immutable and safe to share
 * across sweep workers.
 */
BlockStream buildBlockStream(const Trace &trace, Bytes blockBytes);

} // namespace membw

#endif // MEMBW_TRACE_BLOCK_STREAM_HH
