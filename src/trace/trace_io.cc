#include "trace/trace_io.hh"

#include <cstdint>
#include <cstdio>
#include <memory>

#include "common/log.hh"

namespace membw {

namespace {

constexpr std::uint32_t traceMagic = 0x4d425754; // "MBWT"
constexpr std::uint32_t versionRaw = 1;
constexpr std::uint32_t versionCompact = 2;

struct FileCloser
{
    void operator()(std::FILE *f) const { if (f) std::fclose(f); }
};
using FilePtr = std::unique_ptr<std::FILE, FileCloser>;

struct PackedRef
{
    std::uint64_t addr;
    std::uint32_t size;
    std::uint32_t kind;
};

std::uint64_t
zigzag(std::int64_t v)
{
    return (static_cast<std::uint64_t>(v) << 1) ^
           static_cast<std::uint64_t>(v >> 63);
}

std::int64_t
unzigzag(std::uint64_t v)
{
    return static_cast<std::int64_t>(v >> 1) ^
           -static_cast<std::int64_t>(v & 1);
}

void
putVarint(std::FILE *f, std::uint64_t v, const std::string &path)
{
    std::uint8_t buf[10];
    unsigned n = 0;
    do {
        std::uint8_t byte = v & 0x7f;
        v >>= 7;
        if (v)
            byte |= 0x80;
        buf[n++] = byte;
    } while (v);
    if (std::fwrite(buf, 1, n, f) != n)
        fatal("short write to '" + path + "'");
}

std::uint64_t
getVarint(std::FILE *f, const std::string &path)
{
    std::uint64_t v = 0;
    unsigned shift = 0;
    for (;;) {
        const int c = std::fgetc(f);
        if (c == EOF)
            fatal("truncated trace file '" + path + "'");
        v |= static_cast<std::uint64_t>(c & 0x7f) << shift;
        if (!(c & 0x80))
            return v;
        shift += 7;
        if (shift >= 64)
            fatal("corrupt varint in '" + path + "'");
    }
}

} // namespace

void
saveTrace(const Trace &trace, const std::string &path,
          TraceFormat format)
{
    FilePtr f(std::fopen(path.c_str(), "wb"));
    if (!f)
        fatal("cannot open '" + path + "' for writing");

    const std::uint32_t header[2] = {
        traceMagic,
        format == TraceFormat::Raw ? versionRaw : versionCompact};
    const std::uint64_t count = trace.size();
    if (std::fwrite(header, sizeof(header), 1, f.get()) != 1 ||
        std::fwrite(&count, sizeof(count), 1, f.get()) != 1)
        fatal("short write to '" + path + "'");

    if (format == TraceFormat::Raw) {
        for (const MemRef &r : trace) {
            const PackedRef p{r.addr,
                              static_cast<std::uint32_t>(r.size),
                              static_cast<std::uint32_t>(r.kind)};
            if (std::fwrite(&p, sizeof(p), 1, f.get()) != 1)
                fatal("short write to '" + path + "'");
        }
        return;
    }

    // Compact: per record a control varint
    //   bit0: store, bit1: size != wordBytes (varint size follows),
    //   bits2..: zigzag word-delta from the previous address.
    Addr prev = 0;
    for (const MemRef &r : trace) {
        const std::int64_t delta =
            (static_cast<std::int64_t>(r.addr) -
             static_cast<std::int64_t>(prev)) /
            static_cast<std::int64_t>(wordBytes);
        const bool odd_size = r.size != wordBytes ||
                              r.addr % wordBytes != 0;
        std::uint64_t control = zigzag(delta) << 2;
        control |= odd_size ? 2 : 0;
        control |= r.isStore() ? 1 : 0;
        if (odd_size) {
            // Rare general case: raw address + size.
            putVarint(f.get(), (2 | (r.isStore() ? 1 : 0)),
                      path); // control with delta 0
            putVarint(f.get(), r.addr, path);
            putVarint(f.get(), r.size, path);
        } else {
            putVarint(f.get(), control, path);
        }
        prev = r.addr;
    }
}

Trace
loadTrace(const std::string &path)
{
    FilePtr f(std::fopen(path.c_str(), "rb"));
    if (!f)
        fatal("cannot open '" + path + "' for reading");

    std::uint32_t header[2] = {0, 0};
    std::uint64_t count = 0;
    if (std::fread(header, sizeof(header), 1, f.get()) != 1 ||
        std::fread(&count, sizeof(count), 1, f.get()) != 1)
        fatal("truncated trace file '" + path + "'");
    if (header[0] != traceMagic)
        fatal("'" + path + "' is not a membw trace");

    Trace trace;
    trace.reserve(count);

    if (header[1] == versionRaw) {
        for (std::uint64_t i = 0; i < count; ++i) {
            PackedRef p;
            if (std::fread(&p, sizeof(p), 1, f.get()) != 1)
                fatal("truncated trace file '" + path + "'");
            if (p.kind > 1)
                fatal("corrupt record in '" + path + "'");
            trace.append(p.addr, p.size,
                         static_cast<RefKind>(p.kind));
        }
        return trace;
    }

    if (header[1] != versionCompact)
        fatal("unsupported trace version in '" + path + "'");

    Addr prev = 0;
    for (std::uint64_t i = 0; i < count; ++i) {
        const std::uint64_t control = getVarint(f.get(), path);
        const RefKind kind =
            (control & 1) ? RefKind::Store : RefKind::Load;
        if (control & 2) {
            const Addr addr = getVarint(f.get(), path);
            const Bytes size = getVarint(f.get(), path);
            trace.append(addr, size, kind);
            prev = addr;
            continue;
        }
        const std::int64_t delta = unzigzag(control >> 2);
        const Addr addr = static_cast<Addr>(
            static_cast<std::int64_t>(prev) +
            delta * static_cast<std::int64_t>(wordBytes));
        trace.append(addr, wordBytes, kind);
        prev = addr;
    }
    return trace;
}

} // namespace membw
