#include "trace/trace_io.hh"

#include "trace/trace_mmap.hh"

#include <cstdint>
#include <cstdio>
#include <cstring>
#include <memory>
#include <vector>

#include "common/crc.hh"
#include "common/log.hh"
#include "obs/trace_span.hh"
#include "resilience/fault_injection.hh"
#include "resilience/guarded_io.hh"

namespace membw {

namespace {

constexpr std::uint32_t traceMagic = 0x4d425754; // "MBWT"
constexpr std::uint32_t versionRaw = 1;
constexpr std::uint32_t versionCompact = 2;
constexpr std::size_t rawRecordBytes = 16;
constexpr std::size_t traceHeaderBytes = 16;

struct FileCloser
{
    void operator()(std::FILE *f) const { if (f) std::fclose(f); }
};
using FilePtr = std::unique_ptr<std::FILE, FileCloser>;

struct PackedRef
{
    std::uint64_t addr;
    std::uint32_t size;
    std::uint32_t kind;
};
static_assert(sizeof(PackedRef) == rawRecordBytes,
              "raw trace records are 16 bytes on disk");

std::uint64_t
zigzag(std::int64_t v)
{
    return (static_cast<std::uint64_t>(v) << 1) ^
           static_cast<std::uint64_t>(v >> 63);
}

std::int64_t
unzigzag(std::uint64_t v)
{
    return static_cast<std::int64_t>(v >> 1) ^
           -static_cast<std::int64_t>(v & 1);
}

void
putVarint(GuardedFile &out, std::uint64_t v)
{
    std::uint8_t buf[10];
    unsigned n = 0;
    do {
        std::uint8_t byte = v & 0x7f;
        v >>= 7;
        if (v)
            byte |= 0x80;
        buf[n++] = byte;
    } while (v);
    (void)out.write(buf, n).orDie();
}

/**
 * Bounds-checked cursor over the untrusted image.  Reads latch no
 * state; each returns a Result so classification happens at the
 * failure site where the record index is known.
 */
struct Cursor
{
    const std::uint8_t *data;
    std::size_t size;
    std::size_t pos = 0;

    std::size_t remaining() const { return size - pos; }

    bool
    take(void *out, std::size_t n)
    {
        if (n > remaining())
            return false;
        std::memcpy(out, data + pos, n);
        pos += n;
        return true;
    }

    /** Little-endian fixed-width read; false on truncation. */
    bool
    le(std::uint64_t &out, unsigned nbytes)
    {
        if (nbytes > remaining())
            return false;
        out = 0;
        for (unsigned i = 0; i < nbytes; ++i)
            out |= static_cast<std::uint64_t>(data[pos + i])
                   << (8 * i);
        pos += nbytes;
        return true;
    }

    /** Varint read; 0 = ok, 1 = truncated, 2 = corrupt (>64 bits). */
    int
    varint(std::uint64_t &out)
    {
        out = 0;
        unsigned shift = 0;
        for (;;) {
            if (pos >= size)
                return 1;
            const std::uint8_t c = data[pos++];
            out |= static_cast<std::uint64_t>(c & 0x7f) << shift;
            if (!(c & 0x80))
                return 0;
            shift += 7;
            if (shift >= 64)
                return 2;
        }
    }
};

Error
recordError(Errc code, const std::string &origin, std::uint64_t index,
            const std::string &why)
{
    return makeError(code, "trace '" + origin + "', record " +
                               std::to_string(index) + ": " + why);
}

/** Shared validity check for a decoded (addr, size) pair. */
const char *
refInvalid(Addr addr, Bytes size)
{
    if (size == 0)
        return "zero-byte reference";
    if (size > maxTraceRefBytes)
        return "implausible reference size";
    if (addr > ~Addr{0} - (size - 1))
        return "reference wraps the address space";
    return nullptr;
}

} // namespace

void
saveTrace(const Trace &trace, const std::string &path,
          TraceFormat format)
{
    MEMBW_SPAN_D("trace.save",
                 "refs=" + std::to_string(trace.size()));
    if (format == TraceFormat::Mmap) {
        saveTraceMmap(trace, path);
        return;
    }

    // Streamed through GuardedFile: records go to '<path>.tmp' and
    // the file only appears under its real name after a clean commit,
    // so a crash mid-save never leaves a truncated trace behind.
    GuardedFile out;
    (void)out.open(path).orDie();

    const std::uint32_t header[2] = {
        traceMagic,
        format == TraceFormat::Raw ? versionRaw : versionCompact};
    const std::uint64_t count = trace.size();
    (void)out.write(header, sizeof(header)).orDie();
    (void)out.write(&count, sizeof(count)).orDie();

    if (format == TraceFormat::Raw) {
        for (const MemRef &r : trace) {
            const PackedRef p{r.addr,
                              static_cast<std::uint32_t>(r.size),
                              static_cast<std::uint32_t>(r.kind)};
            (void)out.write(&p, sizeof(p)).orDie();
        }
        (void)out.commit().orDie();
        return;
    }

    // Compact: per record a control varint
    //   bit0: store, bit1: size != wordBytes (varint size follows),
    //   bits2..: zigzag word-delta from the previous address.
    Addr prev = 0;
    for (const MemRef &r : trace) {
        const std::int64_t delta =
            (static_cast<std::int64_t>(r.addr) -
             static_cast<std::int64_t>(prev)) /
            static_cast<std::int64_t>(wordBytes);
        const bool odd_size = r.size != wordBytes ||
                              r.addr % wordBytes != 0;
        std::uint64_t control = zigzag(delta) << 2;
        control |= odd_size ? 2 : 0;
        control |= r.isStore() ? 1 : 0;
        if (odd_size) {
            // Rare general case: raw address + size.
            putVarint(out, (2 | (r.isStore() ? 1 : 0)));
            putVarint(out, r.addr);
            putVarint(out, r.size);
        } else {
            putVarint(out, control);
        }
        prev = r.addr;
    }
    (void)out.commit().orDie();
}

Result<Trace>
parseTrace(const std::uint8_t *data, std::size_t size,
           const std::string &origin)
{
    Cursor in{data, size};

    std::uint64_t magic = 0, version = 0, count = 0;
    if (!in.le(magic, 4) || !in.le(version, 4) || !in.le(count, 8))
        return makeError(Errc::Truncated,
                         "trace '" + origin + "' is " +
                             std::to_string(size) +
                             " bytes; the header alone needs " +
                             std::to_string(traceHeaderBytes));
    if (magic != traceMagic)
        return makeError(Errc::BadMagic,
                         "'" + origin + "' is not a membw trace");
    if (version != versionRaw && version != versionCompact)
        return makeError(Errc::BadVersion,
                         "trace '" + origin +
                             "' has unsupported version " +
                             std::to_string(version) +
                             " (this build reads 1 and 2)");

    // Truncation / overflow guard BEFORE any allocation: a raw
    // record is 16 bytes and a compact record at least 1, so the
    // record count bounds below must hold for the file to be whole.
    // Dividing (rather than multiplying) sidesteps count*16 overflow.
    const std::size_t body = in.remaining();
    if (version == versionRaw) {
        if (count > body / rawRecordBytes)
            return makeError(
                Errc::Truncated,
                "trace '" + origin + "' declares " +
                    std::to_string(count) + " records (" +
                    std::to_string(count) + " * 16 bytes) but only " +
                    std::to_string(body) + " bytes follow the header");
        if (count * rawRecordBytes != body)
            return makeError(
                Errc::Corrupt,
                "trace '" + origin + "' carries " +
                    std::to_string(body - count * rawRecordBytes) +
                    " trailing bytes after the declared records");
    } else if (count > body) {
        return makeError(
            Errc::Truncated,
            "trace '" + origin + "' declares " +
                std::to_string(count) +
                " compact records but only " + std::to_string(body) +
                " bytes follow the header (each record needs at "
                "least one byte)");
    }

    Trace trace;
    // Safe: count is bounded by the bytes actually present.
    trace.reserve(static_cast<std::size_t>(count));

    if (version == versionRaw) {
        for (std::uint64_t i = 0; i < count; ++i) {
            PackedRef p;
            if (!in.take(&p, sizeof(p)))
                return recordError(Errc::Truncated, origin, i,
                                   "file ends inside the record");
            if (p.kind > 1)
                return recordError(Errc::Corrupt, origin, i,
                                   "unknown reference kind " +
                                       std::to_string(p.kind));
            if (const char *why = refInvalid(p.addr, p.size))
                return recordError(Errc::Corrupt, origin, i, why);
            trace.append(p.addr, p.size,
                         static_cast<RefKind>(p.kind));
        }
        return trace;
    }

    Addr prev = 0;
    for (std::uint64_t i = 0; i < count; ++i) {
        std::uint64_t control = 0;
        switch (in.varint(control)) {
          case 1:
            return recordError(Errc::Truncated, origin, i,
                               "file ends inside the control varint");
          case 2:
            return recordError(Errc::Corrupt, origin, i,
                               "control varint exceeds 64 bits");
        }
        const RefKind kind =
            (control & 1) ? RefKind::Store : RefKind::Load;
        if (control & 2) {
            std::uint64_t addr = 0, refSize = 0;
            if (in.varint(addr) != 0 || in.varint(refSize) != 0)
                return recordError(
                    Errc::Truncated, origin, i,
                    "file ends inside an address/size varint");
            if (const char *why = refInvalid(addr, refSize))
                return recordError(Errc::Corrupt, origin, i, why);
            trace.append(addr, refSize, kind);
            prev = addr;
            continue;
        }
        // Wrapping unsigned arithmetic: a hostile delta must not be
        // UB, and any 64-bit address is representable anyway.
        const std::uint64_t delta =
            static_cast<std::uint64_t>(unzigzag(control >> 2));
        const Addr addr = prev + delta * wordBytes;
        if (const char *why = refInvalid(addr, wordBytes))
            return recordError(Errc::Corrupt, origin, i, why);
        trace.append(addr, wordBytes, kind);
        prev = addr;
    }
    if (in.remaining())
        return makeError(Errc::Corrupt,
                         "trace '" + origin + "' carries " +
                             std::to_string(in.remaining()) +
                             " trailing bytes after the declared "
                             "records");
    return trace;
}

Result<Trace>
tryLoadTrace(const std::string &path)
{
    MEMBW_SPAN("trace.load");
    FilePtr f(std::fopen(path.c_str(), "rb"));
    if (!f)
        return makeError(Errc::IoError,
                         "cannot open '" + path + "' for reading");
    if (std::fseek(f.get(), 0, SEEK_END) != 0)
        return makeError(Errc::IoError,
                         "cannot seek in '" + path + "'");
    const long sz = std::ftell(f.get());
    if (sz < 0)
        return makeError(Errc::IoError, "cannot size '" + path + "'");
    std::rewind(f.get());
    if (MEMBW_FAULT_POINT("alloc"))
        return makeError(Errc::IoError,
                         "cannot allocate " + std::to_string(sz) +
                             " bytes for '" + path + "' (injected)");
    std::vector<std::uint8_t> image(static_cast<std::size_t>(sz));
    if (!image.empty() &&
        std::fread(image.data(), image.size(), 1, f.get()) != 1)
        return makeError(Errc::IoError,
                         "cannot read '" + path + "'");
    // The mmap format is sniffed here so loadTrace() transparently
    // accepts all three encodings; zero-copy callers that want to
    // keep the mapping use tryLoadMappedTrace() directly.
    if (isMmapTrace(image.data(), image.size())) {
        Result<MappedTrace> mapped =
            parseMmapTrace(image.data(), image.size(), path);
        if (!mapped)
            return mapped.error();
        return mapped.value().materialize();
    }
    return parseTrace(image.data(), image.size(), path);
}

Trace
loadTrace(const std::string &path)
{
    return tryLoadTrace(path).orDie();
}

const char *
traceRefInvalid(Addr addr, Bytes size)
{
    return refInvalid(addr, size);
}

std::uint32_t
traceCrc32(const Trace &trace)
{
    Crc32 crc;
    for (const MemRef &r : trace) {
        crc.updateScalar(r.addr);
        crc.updateScalar(static_cast<std::uint32_t>(r.size));
        crc.updateScalar(
            static_cast<std::uint8_t>(r.kind));
    }
    return crc.value();
}

} // namespace membw
