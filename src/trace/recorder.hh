/**
 * @file
 * QPT-style trace recorder used by the synthetic workload kernels.
 *
 * The recorder plays the role of QPT in the paper's methodology
 * (Section 4.1): kernels issue logical loads/stores against named
 * regions; the recorder lays regions out in a flat address space and
 * appends word-granularity references to a Trace.  Double-word (8B)
 * accesses are split into two consecutive single-word references,
 * exactly as QPT did.
 */

#ifndef MEMBW_TRACE_RECORDER_HH
#define MEMBW_TRACE_RECORDER_HH

#include <cstddef>
#include <string>
#include <vector>

#include "common/types.hh"
#include "trace/trace.hh"

namespace membw {

/**
 * A named, contiguous allocation in the recorded address space.
 * Handles are cheap value types; the recorder owns the layout.
 */
struct Region
{
    Addr base = 0;
    Bytes bytes = 0;

    /** Address of the word-sized element @p index (element size 4B). */
    Addr word(std::size_t index) const { return base + index * wordBytes; }

    /** Address of an 8-byte element @p index. */
    Addr dword(std::size_t index) const { return base + index * 8; }

    /** Number of 4-byte words in the region. */
    std::size_t words() const { return bytes / wordBytes; }
};

/**
 * Records the data-reference stream of a workload kernel.
 *
 * In addition to memory references, kernels annotate the *instruction*
 * stream — compute-op counts and branches — which the timing model in
 * src/cpu consumes.  Trace-only consumers (src/cache, src/mtc) read
 * just the memory trace.
 */
class TraceRecorder
{
  public:
    /** @param base  starting address for the first region. */
    explicit TraceRecorder(Addr base = 0x10000) : nextBase_(base) {}

    /**
     * Allocate a region of @p bytes (rounded up to a word), aligned to
     * @p align bytes.  Regions are padded apart so distinct arrays
     * never share a cache block unless the kernel aliases them
     * deliberately.
     */
    Region allocate(const std::string &name, Bytes bytes,
                    Bytes align = 64);

    /** Record a word load at @p addr. */
    void load(Addr addr) { record(addr, wordBytes, RefKind::Load); }

    /**
     * Record a word load whose address depends on the previously
     * loaded value (pointer chasing / computed hash probes).  The
     * timing model serializes such loads behind their producers.
     */
    void
    loadDependent(Addr addr)
    {
        record(addr, wordBytes, RefKind::Load, true);
    }

    /** Record a word store at @p addr. */
    void store(Addr addr) { record(addr, wordBytes, RefKind::Store); }

    /** Record an 8-byte load, QPT-split into two word loads. */
    void
    loadDouble(Addr addr)
    {
        record(addr, wordBytes, RefKind::Load);
        record(addr + wordBytes, wordBytes, RefKind::Load);
    }

    /** Record an 8-byte store, QPT-split into two word stores. */
    void
    storeDouble(Addr addr)
    {
        record(addr, wordBytes, RefKind::Store);
        record(addr + wordBytes, wordBytes, RefKind::Store);
    }

    /** The recorded data-reference trace (kept current as we go). */
    const Trace &trace() const { return trace_; }

    /** Move the trace out of the recorder (recorder becomes empty). */
    Trace takeTrace() { return std::move(trace_); }

    /** Names and extents of allocated regions, for diagnostics. */
    struct NamedRegion { std::string name; Region region; };
    const std::vector<NamedRegion> &regions() const { return regions_; }

    // ---- instruction-stream annotations (consumed by src/cpu) ----

    /** Note @p n non-memory (ALU/FPU) ops since the last event. */
    void compute(unsigned n) { pendingOps_ += n; }

    /** Note a conditional branch with outcome @p taken. */
    void branch(bool taken);

    /** Per-event annotation stream; see cpu/instr_stream.hh. */
    struct Annotation
    {
        enum class Kind : std::uint8_t { Mem, Branch };
        Kind kind = Kind::Mem;
        unsigned opsBefore = 0; ///< compute ops preceding this event
        bool taken = false;     ///< branch outcome (Kind::Branch)
        bool dependsOnPrevLoad = false; ///< serial load chain marker
        std::uint32_t memIndex = 0; ///< trace index (Kind::Mem)
    };

    const std::vector<Annotation> &annotations() const { return annot_; }

  private:
    void record(Addr addr, Bytes size, RefKind kind,
                bool dependent = false);

    Addr nextBase_;
    Trace trace_;
    std::vector<NamedRegion> regions_;
    std::vector<Annotation> annot_;
    unsigned pendingOps_ = 0;
};

} // namespace membw

#endif // MEMBW_TRACE_RECORDER_HH
