/**
 * @file
 * A single data-memory reference, the atom of every trace-driven
 * experiment in the paper (Sections 4-5 use data references only).
 */

#ifndef MEMBW_TRACE_MEM_REF_HH
#define MEMBW_TRACE_MEM_REF_HH

#include <cstdint>

#include "common/types.hh"

namespace membw {

/** The kind of a memory reference. */
enum class RefKind : std::uint8_t
{
    Load,
    Store,
};

/**
 * One memory reference.  Following QPT (Section 4.1), references wider
 * than one word are split into consecutive single-word references by
 * the recording layer, so size is normally wordBytes.
 */
struct MemRef
{
    Addr addr = 0;
    Bytes size = wordBytes;
    RefKind kind = RefKind::Load;

    bool isLoad() const { return kind == RefKind::Load; }
    bool isStore() const { return kind == RefKind::Store; }

    bool
    operator==(const MemRef &other) const
    {
        return addr == other.addr && size == other.size &&
               kind == other.kind;
    }
};

} // namespace membw

#endif // MEMBW_TRACE_MEM_REF_HH
