#include "trace/trace.hh"

#include <algorithm>
#include <unordered_set>

#include "common/bitops.hh"

namespace membw {

TraceStats
Trace::stats() const
{
    TraceStats s;
    std::unordered_set<Addr> words;
    words.reserve(refs_.size() / 4 + 16);

    for (const MemRef &r : refs_) {
        ++s.refs;
        if (r.isLoad())
            ++s.loads;
        else
            ++s.stores;
        s.requestBytes += r.size;
        s.minAddr = std::min(s.minAddr, r.addr);
        s.maxAddr = std::max(s.maxAddr, r.addr + r.size - 1);

        const Addr first = alignDown(r.addr, wordBytes);
        const Addr last = alignDown(r.addr + r.size - 1, wordBytes);
        for (Addr w = first; w <= last; w += wordBytes)
            words.insert(w);
    }
    s.footprintBytes = static_cast<Bytes>(words.size()) * wordBytes;
    return s;
}

} // namespace membw
