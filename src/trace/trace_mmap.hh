/**
 * @file
 * Zero-copy mmap'd trace format ("MBWM", version 1).
 *
 * The raw/compact formats (trace_io.hh) are record streams: loading
 * decodes every record into an in-memory Trace, and every sweep then
 * re-decodes that Trace into BlockStream arrays.  The mmap format
 * instead stores the trace *as* structure-of-arrays, 64-byte-aligned
 * columns that match the BlockStream layout:
 *
 *     offset 0    header (64 bytes, little-endian, see below)
 *     offset 64   addr[count]   u64   reference addresses
 *     aligned 64  size[count]   u16   reference sizes
 *     aligned 64  kind[count]   u8    0 = load, 1 = store
 *     (file length padded to a 64-byte multiple; pad bytes zero)
 *
 * Header layout (52 content bytes + 12 reserved):
 *
 *     u32 magic        "MBWM" (0x4d57424d)
 *     u32 version      1
 *     u64 count        references
 *     u64 loads        header copy of the load count
 *     u64 stores       header copy of the store count
 *     u64 requestBytes sum of reference sizes
 *     u32 contentCrc   traceCrc32() of the logical content — the
 *                      same CRC the checkpoint layer stores, so a
 *                      re-encoded trace keeps its identity
 *     u32 payloadCrc   CRC-32 of every byte after the header
 *     u32 flags        bit0: every reference is one aligned word
 *     u8  reserved[12] zero
 *
 * A loaded file is validated end to end before any use: exact file
 * length, payload CRC, per-reference sanity (kind, size, address
 * wrap) and agreement between the header totals/flags and the
 * columns — failures classify through Result<T> as
 * BadMagic/BadVersion/Truncated/Corrupt/TooLarge, and the parser is
 * fuzzed (tests/fuzz/trace_fuzz.cc).  After that, sweeps borrow the
 * columns in place: buildBlockStream(const MappedTrace&) points the
 * stream's size/isStore views straight into the mapping (the on-disk
 * encodings are chosen to match) and only computes the
 * block-size-dependent columns (block number, word mask).  The
 * mapping is pinned by shared_ptr until the last view dies.
 */

#ifndef MEMBW_TRACE_TRACE_MMAP_HH
#define MEMBW_TRACE_TRACE_MMAP_HH

#include <cstdint>
#include <memory>
#include <string>

#include "common/result.hh"
#include "trace/block_stream.hh"
#include "trace/trace.hh"

namespace membw {

constexpr std::uint32_t mmapTraceMagic = 0x4d57424d; // "MBWM"
constexpr std::uint32_t mmapTraceVersion = 1;
constexpr std::size_t mmapTraceHeaderBytes = 64;
constexpr std::size_t mmapTraceAlign = 64;

/** Header flag bits. */
constexpr std::uint32_t mmapFlagAllWordRefs = 1u << 0;

/**
 * A validated trace whose columns live in a shared mapping (or a
 * heap buffer on platforms without mmap).  Move/copy freely — views
 * share the pinned image.
 */
struct MappedTrace
{
    std::size_t refs = 0;
    std::uint64_t loads = 0;
    std::uint64_t stores = 0;
    Bytes requestBytes = 0;
    std::uint32_t contentCrc = 0; ///< == traceCrc32(materialize())
    bool allWordRefs = false;

    const std::uint64_t *addr = nullptr;
    const std::uint16_t *size = nullptr;
    const std::uint8_t *kind = nullptr;

    /** Pins the mapping/buffer the views point into. */
    std::shared_ptr<const void> image;

    /** Decode into an owning Trace (the escape hatch back to every
     * non-zero-copy consumer). */
    Trace materialize() const;
};

/** True iff @p data starts with the mmap-format magic. */
bool isMmapTrace(const std::uint8_t *data, std::size_t size);

/**
 * Validate an mmap-format image.  The returned views point into
 * @p data and carry NO ownership — callers must attach their own
 * keep-alive to MappedTrace::image (tryLoadMappedTrace does).
 * Never throws on bad bytes; fuzzed directly.
 */
Result<MappedTrace> parseMmapTrace(const std::uint8_t *data,
                                   std::size_t size,
                                   const std::string &origin);

/**
 * mmap @p path (falling back to a plain read where mmap is
 * unavailable), validate, and return views pinned to the mapping.
 */
Result<MappedTrace> tryLoadMappedTrace(const std::string &path);

/** Write @p trace to @p path in the mmap format (atomic .tmp +
 * rename, like every saveTrace path).  Throws FatalError on I/O
 * failure.  saveTrace(..., TraceFormat::Mmap) forwards here. */
void saveTraceMmap(const Trace &trace, const std::string &path);

/**
 * Zero-copy BlockStream over a validated MappedTrace: borrows the
 * kind column as isStore verbatim and the size column whenever no
 * reference exceeds the block size (always true for allWordRefs
 * traces); block numbers and word masks are computed per block size
 * as usual.  Counter-identical to buildBlockStream(materialize()).
 */
BlockStream buildBlockStream(const MappedTrace &trace,
                             Bytes blockBytes);

} // namespace membw

#endif // MEMBW_TRACE_TRACE_MMAP_HH
