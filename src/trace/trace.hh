/**
 * @file
 * In-memory reference trace container plus summary statistics.
 */

#ifndef MEMBW_TRACE_TRACE_HH
#define MEMBW_TRACE_TRACE_HH

#include <cstddef>
#include <vector>

#include "common/types.hh"
#include "trace/mem_ref.hh"

namespace membw {

/** Summary statistics over a trace (see Table 3 in the paper). */
struct TraceStats
{
    std::size_t refs = 0;       ///< total references
    std::size_t loads = 0;      ///< load count
    std::size_t stores = 0;     ///< store count
    Bytes requestBytes = 0;     ///< sum of request sizes (D_{i-1})
    Bytes footprintBytes = 0;   ///< distinct words touched * wordBytes
    Addr minAddr = addrInvalid; ///< lowest address touched
    Addr maxAddr = 0;           ///< highest address touched
};

/**
 * A recorded data-reference trace.
 *
 * Traces are append-only during generation and immutable during
 * simulation.  All simulators iterate the trace by index so that the
 * two-pass MIN simulation (src/mtc) can align its next-use side table
 * with reference positions.
 */
class Trace
{
  public:
    Trace() = default;

    void reserve(std::size_t n) { refs_.reserve(n); }

    void append(MemRef ref) { refs_.push_back(ref); }

    void
    append(Addr addr, Bytes size, RefKind kind)
    {
        refs_.push_back(MemRef{addr, size, kind});
    }

    std::size_t size() const { return refs_.size(); }
    bool empty() const { return refs_.empty(); }

    const MemRef &operator[](std::size_t i) const { return refs_[i]; }

    /** Contiguous reference array (the fused ladder kernels replay
     * it in place). */
    const MemRef *data() const { return refs_.data(); }

    auto begin() const { return refs_.begin(); }
    auto end() const { return refs_.end(); }

    /** Compute (O(n)) summary statistics, incl. word footprint. */
    TraceStats stats() const;

  private:
    std::vector<MemRef> refs_;
};

} // namespace membw

#endif // MEMBW_TRACE_TRACE_HH
