/**
 * @file
 * Binary save/load for traces so long workload generations can be
 * cached between tool invocations.
 *
 * Loading is hardened against untrusted bytes: the parser works over
 * an in-memory image with every read bounds-checked, classifies
 * failures (bad magic / unsupported version / truncation / corrupt
 * records / implausible sizes) through the common Result layer, and
 * never allocates more than the file itself could describe — a
 * truncated or hostile record count is rejected *before* any
 * allocation.  parseTrace() is the raw entry point and is fuzzed
 * directly (tests/fuzz/trace_fuzz.cc).
 */

#ifndef MEMBW_TRACE_TRACE_IO_HH
#define MEMBW_TRACE_TRACE_IO_HH

#include <cstdint>
#include <string>

#include "common/result.hh"
#include "trace/trace.hh"

namespace membw {

/** On-disk encodings. */
enum class TraceFormat
{
    Raw,     ///< packed 16-byte records; trivially seekable
    Compact, ///< zigzag-varint address deltas; ~2 bytes/reference
    Mmap,    ///< aligned SoA columns, zero-copy loadable (trace_mmap.hh)
};

/** Largest single-reference size the loader accepts, in bytes. */
constexpr Bytes maxTraceRefBytes = 4096;

/**
 * Write @p trace to @p path in the membw binary format
 * (magic "MBWT", version, count, then records in @p format).
 * Throws FatalError on I/O failure.
 */
void saveTrace(const Trace &trace, const std::string &path,
               TraceFormat format = TraceFormat::Raw);

/**
 * Parse a trace image from memory.  @p origin names the source in
 * diagnostics (a path, or "<fuzz>").  Never throws on bad bytes;
 * returns a classified Error instead.
 */
Result<Trace> parseTrace(const std::uint8_t *data, std::size_t size,
                         const std::string &origin);

/** Read @p path and parse it; classified Error on failure. */
Result<Trace> tryLoadTrace(const std::string &path);

/**
 * Read a trace previously written by saveTrace() (either format).
 * Boundary wrapper over tryLoadTrace(): throws FatalError carrying
 * the classified reason.
 */
Trace loadTrace(const std::string &path);

/**
 * CRC-32 over the trace's logical content (addr/size/kind per
 * reference), independent of the on-disk encoding.  Checkpoints
 * store it so --resume can prove it is replaying the same input.
 */
std::uint32_t traceCrc32(const Trace &trace);

/**
 * Shared validity check for a decoded (addr, size) pair: returns a
 * static reason string when the reference is implausible (zero
 * bytes, larger than maxTraceRefBytes, wraps the address space),
 * null when it is fine.  Every trace parser classifies through this
 * so the formats agree on what "corrupt" means.
 */
const char *traceRefInvalid(Addr addr, Bytes size);

} // namespace membw

#endif // MEMBW_TRACE_TRACE_IO_HH
