/**
 * @file
 * Binary save/load for traces so long workload generations can be
 * cached between tool invocations.
 */

#ifndef MEMBW_TRACE_TRACE_IO_HH
#define MEMBW_TRACE_TRACE_IO_HH

#include <string>

#include "trace/trace.hh"

namespace membw {

/** On-disk encodings. */
enum class TraceFormat
{
    Raw,     ///< packed 16-byte records; trivially seekable
    Compact, ///< zigzag-varint address deltas; ~2 bytes/reference
};

/**
 * Write @p trace to @p path in the membw binary format
 * (magic "MBWT", version, count, then records in @p format).
 * Throws FatalError on I/O failure.
 */
void saveTrace(const Trace &trace, const std::string &path,
               TraceFormat format = TraceFormat::Raw);

/** Read a trace previously written by saveTrace() (either format). */
Trace loadTrace(const std::string &path);

} // namespace membw

#endif // MEMBW_TRACE_TRACE_IO_HH
