#include "trace/recorder.hh"

#include "common/bitops.hh"
#include "common/log.hh"

namespace membw {

Region
TraceRecorder::allocate(const std::string &name, Bytes bytes, Bytes align)
{
    if (bytes == 0)
        fatal("region '" + name + "' must be non-empty");
    if (!isPowerOfTwo(align))
        fatal("region alignment must be a power of two");

    Region region;
    region.base = alignUp(nextBase_, align);
    region.bytes = alignUp(bytes, wordBytes);

    // Pad regions a block apart so arrays don't share 128B blocks.
    nextBase_ = alignUp(region.base + region.bytes + 128, align);

    regions_.push_back({name, region});
    return region;
}

void
TraceRecorder::record(Addr addr, Bytes size, RefKind kind,
                      bool dependent)
{
    Annotation a;
    a.kind = Annotation::Kind::Mem;
    a.opsBefore = pendingOps_;
    a.dependsOnPrevLoad = dependent;
    a.memIndex = static_cast<std::uint32_t>(trace_.size());
    pendingOps_ = 0;
    annot_.push_back(a);
    trace_.append(addr, size, kind);
}

void
TraceRecorder::branch(bool taken)
{
    Annotation a;
    a.kind = Annotation::Kind::Branch;
    a.opsBefore = pendingOps_;
    a.taken = taken;
    pendingOps_ = 0;
    annot_.push_back(a);
}

} // namespace membw
