#include "trace/block_stream.hh"

#include <string>

#include "common/bitops.hh"
#include "common/log.hh"
#include "obs/trace_span.hh"

namespace membw {

BlockStream
buildBlockStream(const Trace &trace, Bytes blockBytes)
{
    if (blockBytes < wordBytes || !isPowerOfTwo(blockBytes))
        fatal("block stream needs a power-of-two block size >= 4B");

    MEMBW_SPAN_D("block_stream.decode",
                 "block=" + std::to_string(blockBytes) +
                     "B refs=" + std::to_string(trace.size()));

    BlockStream s;
    s.blockBytes = blockBytes;
    s.blockShift = floorLog2(blockBytes);
    s.refs = trace.size();
    s.blockNumStore.resize(s.refs);
    s.isStoreStore.resize(s.refs);
    s.sizeStore.resize(s.refs);
    s.wordMaskStore.resize(s.refs);

    // Raw-pointer stores into the pre-sized arrays: the four
    // per-reference push_backs (capacity check each) were a
    // measurable fraction of a decode that otherwise runs at memory
    // speed, and this loop sits on the timed path of every
    // partitioned pass.
    std::uint64_t *const bnOut = s.blockNumStore.data();
    std::uint8_t *const stOut = s.isStoreStore.data();
    std::uint16_t *const szOut = s.sizeStore.data();
    std::uint64_t *const wmOut = s.wordMaskStore.data();
    const unsigned shift = s.blockShift;
    std::uint64_t stores = 0;
    std::uint64_t requestBytes = 0;
    bool spansBlock = false;

    for (std::size_t i = 0; i < s.refs; ++i) {
        const MemRef &ref = trace[i];
        const Addr block = alignDown(ref.addr, blockBytes);
        const bool spans =
            ref.size == 0 ||
            alignDown(ref.addr + ref.size - 1, blockBytes) != block;
        spansBlock |= spans;

        const bool isStore = !ref.isLoad();
        bnOut[i] = ref.addr >> shift;
        stOut[i] = isStore ? 1 : 0;
        szOut[i] = static_cast<std::uint16_t>(
            ref.size <= blockBytes ? ref.size : blockBytes);
        stores += isStore;
        requestBytes += ref.size;

        // Word mask within the block, exactly as Cache::wordsMask
        // computes it (a contiguous run of set bits).  Spanning
        // references make the stream ineligible for one-pass
        // kernels, so an empty mask is fine there.
        std::uint64_t mask = 0;
        if (!spans) {
            const unsigned first =
                static_cast<unsigned>((ref.addr - block) / wordBytes);
            const unsigned last = static_cast<unsigned>(
                (ref.addr + ref.size - 1 - block) / wordBytes);
            if (last < 64) {
                const unsigned count = last - first + 1;
                mask = (count >= 64
                            ? ~std::uint64_t{0}
                            : (std::uint64_t{1} << count) - 1)
                       << first;
            } else {
                for (unsigned w = first; w <= last; ++w)
                    mask |= std::uint64_t{1} << w;
            }
        }
        wmOut[i] = mask;
    }

    s.stores = stores;
    s.loads = s.refs - stores;
    s.requestBytes = requestBytes;
    s.spansBlock = spansBlock;

    s.blockNum = s.blockNumStore.data();
    s.isStore = s.isStoreStore.data();
    s.size = s.sizeStore.data();
    s.wordMask = s.wordMaskStore.data();
    return s;
}

} // namespace membw
