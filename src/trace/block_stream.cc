#include "trace/block_stream.hh"

#include <string>

#include "common/bitops.hh"
#include "common/log.hh"
#include "obs/trace_span.hh"

namespace membw {

BlockStream
buildBlockStream(const Trace &trace, Bytes blockBytes)
{
    if (blockBytes < wordBytes || !isPowerOfTwo(blockBytes))
        fatal("block stream needs a power-of-two block size >= 4B");

    MEMBW_SPAN_D("block_stream.decode",
                 "block=" + std::to_string(blockBytes) +
                     "B refs=" + std::to_string(trace.size()));

    BlockStream s;
    s.blockBytes = blockBytes;
    s.blockShift = floorLog2(blockBytes);
    s.refs = trace.size();
    s.blockNum.reserve(s.refs);
    s.isStore.reserve(s.refs);
    s.size.reserve(s.refs);
    s.wordMask.reserve(s.refs);

    for (const MemRef &ref : trace) {
        const Addr block = alignDown(ref.addr, blockBytes);
        const bool spans =
            ref.size == 0 ||
            alignDown(ref.addr + ref.size - 1, blockBytes) != block;
        if (spans)
            s.spansBlock = true;

        s.blockNum.push_back(ref.addr >> s.blockShift);
        s.isStore.push_back(ref.isLoad() ? 0 : 1);
        s.size.push_back(static_cast<std::uint16_t>(
            ref.size <= blockBytes ? ref.size : blockBytes));
        if (ref.isLoad())
            s.loads++;
        else
            s.stores++;
        s.requestBytes += ref.size;

        // Word mask within the block, exactly as Cache::wordsMask
        // computes it.  Spanning references make the stream
        // ineligible for one-pass kernels, so an empty mask is fine
        // there.
        std::uint64_t mask = 0;
        if (!spans) {
            const unsigned first =
                static_cast<unsigned>((ref.addr - block) / wordBytes);
            const unsigned last = static_cast<unsigned>(
                (ref.addr + ref.size - 1 - block) / wordBytes);
            for (unsigned w = first; w <= last; ++w)
                mask |= std::uint64_t{1} << w;
        }
        s.wordMask.push_back(mask);
    }
    return s;
}

} // namespace membw
