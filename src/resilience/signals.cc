#include "resilience/signals.hh"

#include <csignal>

namespace membw {

namespace {

volatile std::sig_atomic_t pendingSignal = 0;

extern "C" void
shutdownHandler(int signum)
{
    if (pendingSignal != 0) {
        // Second request: restore default disposition and re-raise,
        // so a stuck drain can still be killed from the keyboard.
        std::signal(signum, SIG_DFL);
        std::raise(signum);
        return;
    }
    pendingSignal = signum;
}

} // namespace

void
installShutdownHandlers()
{
    std::signal(SIGINT, shutdownHandler);
    std::signal(SIGTERM, shutdownHandler);
}

int
shutdownRequested()
{
    return static_cast<int>(pendingSignal);
}

const char *
shutdownSignalName()
{
    switch (pendingSignal) {
      case SIGINT: return "SIGINT";
      case SIGTERM: return "SIGTERM";
      default: return "";
    }
}

void
clearShutdownRequest()
{
    pendingSignal = 0;
}

} // namespace membw
