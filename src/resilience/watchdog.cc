#include "resilience/watchdog.hh"

#include <cstdio>

#include "obs/export.hh"
#include "obs/registry.hh"

namespace membw {

void
Watchdog::trip(Cycle now) const
{
    std::fprintf(stderr,
                 "watchdog[%s]: no forward progress for %llu cycles "
                 "(budget %llu): last progress at cycle %llu, now at "
                 "cycle %llu\n",
                 label_.c_str(),
                 static_cast<unsigned long long>(now - lastProgress_),
                 static_cast<unsigned long long>(budget_),
                 static_cast<unsigned long long>(lastProgress_),
                 static_cast<unsigned long long>(now));

    if (diagnostic_) {
        StatsRegistry registry;
        diagnostic_(registry);
        std::fprintf(stderr,
                     "watchdog[%s]: machine state at trip:\n%s",
                     label_.c_str(),
                     exportText(registry).c_str());
    }

    throw WatchdogError(
        "watchdog: simulated machine made no forward progress for " +
        std::to_string(now - lastProgress_) + " cycles (budget " +
        std::to_string(budget_) +
        "); this usually means a timing-model livelock or an "
        "unserviceable configuration — see the machine-state dump "
        "above, or raise the budget with --watchdog if the "
        "configuration is legitimately this slow");
}

} // namespace membw
