#include "resilience/guarded_io.hh"

#include <cerrno>
#include <chrono>
#include <cstdio>
#include <thread>

#include "resilience/fault_injection.hh"

namespace membw {

Result<bool>
GuardedFile::open(const std::string &path)
{
    abortWrite();
    path_ = path;
    tmp_ = path + ".tmp";
    file_ = std::fopen(tmp_.c_str(), "wb");
    if (!file_)
        return makeError(Errc::IoError,
                         "cannot open '" + tmp_ + "' for writing");
    return true;
}

Result<bool>
GuardedFile::write(const void *data, std::size_t size)
{
    if (!file_)
        return makeError(Errc::IoError,
                         "write to '" + path_ +
                             "' before open (or after a failure)");
    const auto *p = static_cast<const unsigned char *>(data);
    unsigned stalls = 0;
    while (size > 0) {
        if (MEMBW_FAULT_POINT("enospc")) {
            abortWrite();
            return makeError(Errc::IoError,
                             "no space left on device writing '" +
                                 tmp_ + "' (injected)");
        }
        std::size_t n = 0;
        if (MEMBW_FAULT_POINT("io-write")) {
            // Simulated transient failure: this attempt moves no
            // bytes, the retry loop below decides its fate.
        } else {
            n = std::fwrite(p, 1, size, file_);
        }
        p += n;
        size -= n;
        if (size == 0)
            break;
        if (n > 0) {
            stalls = 0; // progress resets the retry budget
            continue;
        }
        if (std::ferror(file_) && errno == EINTR) {
            std::clearerr(file_);
            continue;
        }
        if (++stalls > maxWriteRetries) {
            abortWrite();
            return makeError(Errc::IoError,
                             "short write to '" + tmp_ + "' (" +
                                 std::to_string(maxWriteRetries) +
                                 " retries exhausted)");
        }
        std::clearerr(file_);
        // Bounded backoff: 1, 2, 4 ms across the retry budget.
        std::this_thread::sleep_for(
            std::chrono::milliseconds(1u << (stalls - 1)));
    }
    return true;
}

Result<bool>
GuardedFile::write(std::string_view text)
{
    return write(text.data(), text.size());
}

Result<bool>
GuardedFile::commit()
{
    if (!file_)
        return makeError(Errc::IoError,
                         "commit of '" + path_ +
                             "' before open (or after a failure)");
    const bool flushed = std::fflush(file_) == 0;
    const bool closed = std::fclose(file_) == 0;
    file_ = nullptr;
    if (!flushed || !closed) {
        std::remove(tmp_.c_str());
        return makeError(Errc::IoError,
                         "cannot flush '" + tmp_ + "'");
    }
    if (MEMBW_FAULT_POINT("io-rename")) {
        std::remove(tmp_.c_str());
        return makeError(Errc::IoError,
                         "cannot rename '" + tmp_ + "' to '" + path_ +
                             "' (injected)");
    }
    if (std::rename(tmp_.c_str(), path_.c_str()) != 0) {
        std::remove(tmp_.c_str());
        return makeError(Errc::IoError,
                         "cannot rename '" + tmp_ + "' to '" + path_ +
                             "'");
    }
    return true;
}

void
GuardedFile::abortWrite()
{
    if (!file_)
        return;
    std::fclose(file_);
    file_ = nullptr;
    std::remove(tmp_.c_str());
}

Result<bool>
GuardedFile::writeAtomic(const std::string &path,
                         std::string_view contents)
{
    GuardedFile out;
    if (auto r = out.open(path); !r.ok())
        return r.error();
    if (auto r = out.write(contents); !r.ok())
        return r.error();
    return out.commit();
}

} // namespace membw
