/**
 * @file
 * Process exit codes and the error types that map onto them.
 *
 * Long sweep campaigns are driven by scripts that must distinguish
 * "this point is invalid" (skip it) from "the host interrupted us"
 * (resume it) from "the simulator livelocked" (file a bug).  Every
 * membw tool therefore exits with one of these codes, documented in
 * --help and docs/resilience.md:
 *
 *   0  success
 *   1  fatal error: invalid input or configuration (FatalError)
 *   2  usage error: unknown flag or missing required argument
 *   3  interrupted: SIGINT/SIGTERM received; the current reference
 *      was drained, a final checkpoint (if --checkpoint was given)
 *      and partial stats (if --stats-json was given) were written
 *   4  watchdog: forward-progress guard tripped (livelock/deadlock);
 *      a machine-state diagnostic was dumped to stderr
 *   5  degraded: one or more sweep cells failed but the sweep
 *      completed; surviving cells are reported and --stats-json
 *      lists the failures under "failed_cells"
 */

#ifndef MEMBW_RESILIENCE_EXIT_CODES_HH
#define MEMBW_RESILIENCE_EXIT_CODES_HH

#include "common/log.hh"

namespace membw {

constexpr int exitOk = 0;
constexpr int exitFatal = 1;
constexpr int exitUsage = 2;
constexpr int exitInterrupted = 3;
constexpr int exitWatchdog = 4;
constexpr int exitDegraded = 5;

/**
 * Thrown by the forward-progress watchdog.  Derives from FatalError
 * so library callers that only know FatalError still terminate
 * cleanly; tools catch it first and exit with exitWatchdog.
 */
class WatchdogError : public FatalError
{
  public:
    using FatalError::FatalError;
};

/** One --help paragraph documenting the table above. */
constexpr const char *exitCodeHelp =
    "Exit codes:\n"
    "  0  success\n"
    "  1  invalid input or configuration\n"
    "  2  usage error (unknown flag / missing argument)\n"
    "  3  interrupted by SIGINT/SIGTERM (checkpoint + partial stats "
    "written)\n"
    "  4  watchdog detected livelock/deadlock (diagnostic on "
    "stderr)\n"
    "  5  degraded: some sweep cells failed; surviving cells "
    "reported\n";

} // namespace membw

#endif // MEMBW_RESILIENCE_EXIT_CODES_HH
