/**
 * @file
 * Forward-progress watchdog for the timing simulators.
 *
 * The timestamp-propagation core derives every micro-op's cycles in
 * one pass, so a livelocked machine does not spin the host CPU —
 * it materializes as an absurd jump in the cycle domain: a load whose
 * "data ready" time is millions of cycles past the previous retire
 * because a bus busy-time overflowed, a DRAM bank never frees, or a
 * config produced an unserviceable request.  Left unchecked, such a
 * run burns hours and emits garbage stats.
 *
 * The Watchdog tracks the last cycle at which the machine provably
 * made forward progress (a retired instruction or a completed miss)
 * and trips when the cycle domain advances more than a budget past
 * it.  Tripping dumps a machine-state diagnostic through the stats
 * registry (the same schema as --stats-json) to stderr and throws
 * WatchdogError, which tools map to exit code 4.
 */

#ifndef MEMBW_RESILIENCE_WATCHDOG_HH
#define MEMBW_RESILIENCE_WATCHDOG_HH

#include <functional>
#include <string>

#include "common/types.hh"
#include "resilience/exit_codes.hh"

namespace membw {

class StatsRegistry;

class Watchdog
{
  public:
    /** Fills a registry with machine state for the trip diagnostic. */
    using DiagnosticFn = std::function<void(StatsRegistry &)>;

    /**
     * @p budget is the maximum tolerated gap, in cycles, between two
     * consecutive forward-progress events; 0 disables the guard.
     */
    explicit Watchdog(Cycle budget, std::string label = "core")
        : budget_(budget), label_(std::move(label))
    {
    }

    void setDiagnostic(DiagnosticFn fn) { diagnostic_ = std::move(fn); }

    bool enabled() const { return budget_ != 0; }
    Cycle budget() const { return budget_; }

    /**
     * Record a forward-progress event at cycle @p c (a retired
     * instruction or a completed miss).  Trips if @p c is more than
     * the budget past the previous progress event.
     */
    void
    advance(Cycle c)
    {
        if (c > lastProgress_) {
            const Cycle gap = c - lastProgress_;
            if (budget_ && gap > budget_)
                trip(c);
            if (gap > maxGap_)
                maxGap_ = gap;
            lastProgress_ = c;
        }
    }

    /** Last cycle at which forward progress was recorded. */
    Cycle lastProgress() const { return lastProgress_; }

    /** Largest gap observed between consecutive progress events. */
    Cycle maxGap() const { return maxGap_; }

    /**
     * Fraction of the budget never yet consumed by the worst gap
     * (1.0 = the machine never came close to tripping).  This is the
     * "watchdog slack" figure the --stats-every heartbeat reports.
     */
    double
    headroom() const
    {
        if (!budget_)
            return 1.0;
        if (maxGap_ >= budget_)
            return 0.0;
        return 1.0 - static_cast<double>(maxGap_) /
                         static_cast<double>(budget_);
    }

    /**
     * Fraction of the budget still unused at cycle @p now (1.0 =
     * fully slack, 0.0 = about to trip).  For heartbeat lines.
     */
    double
    slack(Cycle now) const
    {
        if (!budget_ || now <= lastProgress_)
            return 1.0;
        const Cycle gap = now - lastProgress_;
        if (gap >= budget_)
            return 0.0;
        return 1.0 - static_cast<double>(gap) /
                         static_cast<double>(budget_);
    }

    /** Dump the diagnostic and throw WatchdogError. */
    [[noreturn]] void trip(Cycle now) const;

  private:
    Cycle budget_;
    std::string label_;
    Cycle lastProgress_ = 0;
    Cycle maxGap_ = 0;
    DiagnosticFn diagnostic_;
};

} // namespace membw

#endif // MEMBW_RESILIENCE_WATCHDOG_HH
