/**
 * @file
 * Async-signal-safe graceful-shutdown plumbing.
 *
 * installShutdownHandlers() registers SIGINT/SIGTERM handlers that do
 * nothing but store the signal number into a volatile sig_atomic_t —
 * the only action the C and POSIX standards guarantee is safe inside
 * a handler.  Simulation loops poll shutdownRequested() between
 * references (so the current reference always drains), then write a
 * final checkpoint and partial stats and exit with exitInterrupted.
 *
 * A second delivery of the same signal while the first is still being
 * drained re-raises with default disposition, so an impatient Ctrl-C
 * Ctrl-C still kills a tool stuck writing a huge checkpoint.
 */

#ifndef MEMBW_RESILIENCE_SIGNALS_HH
#define MEMBW_RESILIENCE_SIGNALS_HH

namespace membw {

/**
 * Install the SIGINT/SIGTERM handlers.  Idempotent.  Call once from
 * main() before entering a simulation loop.
 */
void installShutdownHandlers();

/**
 * The signal number of the first shutdown request, or 0 when none is
 * pending.  Cheap enough to poll per reference.
 */
int shutdownRequested();

/** "SIGINT"/"SIGTERM" for the pending request; "" when none. */
const char *shutdownSignalName();

/** Clear a pending request (tests; accepting a drained shutdown). */
void clearShutdownRequest();

} // namespace membw

#endif // MEMBW_RESILIENCE_SIGNALS_HH
