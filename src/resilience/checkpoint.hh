/**
 * @file
 * Versioned, CRC-guarded binary checkpoint container.
 *
 * A checkpoint file is:
 *
 *   offset  size  field
 *   0       4     magic "MBWC" (0x4357424d little-endian)
 *   4       4     container version (currently 1)
 *   8       8     payload length in bytes
 *   16      4     CRC-32 of the payload
 *   20      ...   payload
 *
 * The payload is a sequence of tagged sections (u32 tag, u64 byte
 * length, bytes), each holding little-endian primitives written by
 * ChkWriter.  Sections give the format forward structure: a reader
 * verifies every tag it enters and that it consumed a section
 * exactly, so layout drift between writer and reader fails loudly
 * instead of silently misaligning.
 *
 * ChkReader is hardened against untrusted bytes: every read is
 * bounds-checked against the (CRC-verified) payload, string/blob
 * lengths are capped by the remaining payload, and the first failure
 * latches a classified Error — subsequent reads return zeros and the
 * caller checks takeError() once per section.  It never throws and
 * never allocates more than the file size, which makes it directly
 * fuzzable (tests/fuzz/checkpoint_fuzz.cc).
 *
 * Writes are atomic: the payload is staged to "<path>.tmp" and
 * renamed over the target, so a crash mid-write can lose at most the
 * newest checkpoint, never corrupt the previous one.
 */

#ifndef MEMBW_RESILIENCE_CHECKPOINT_HH
#define MEMBW_RESILIENCE_CHECKPOINT_HH

#include <cstdint>
#include <string>
#include <vector>

#include "common/result.hh"
#include "common/types.hh"

namespace membw {

class StatsRegistry;

/** Build a section tag from four characters, e.g. chkTag("HIER"). */
constexpr std::uint32_t
chkTag(const char (&s)[5])
{
    return static_cast<std::uint32_t>(
        static_cast<unsigned char>(s[0]) |
        (static_cast<unsigned char>(s[1]) << 8) |
        (static_cast<unsigned char>(s[2]) << 16) |
        (static_cast<unsigned char>(s[3]) << 24));
}

constexpr std::uint32_t checkpointMagic = chkTag("MBWC");
constexpr std::uint32_t checkpointVersion = 1;

/** Streaming little-endian checkpoint writer. */
class ChkWriter
{
  public:
    /** Open a section; sections must not nest. */
    void beginSection(std::uint32_t tag);
    /** Close the open section, patching its length. */
    void endSection();

    void u8(std::uint8_t v);
    void u32(std::uint32_t v);
    void u64(std::uint64_t v);
    void i64(std::int64_t v);
    void f64(double v);
    void str(const std::string &s);
    void bytes(const void *data, std::size_t size);

    /** Header + payload as one buffer (tests, in-memory use). */
    std::string serialize() const;

    /**
     * Atomically write the checkpoint to @p path (stage to
     * "<path>.tmp", fsync-less rename).  Classified IoError on
     * failure.
     */
    Result<bool> writeFile(const std::string &path) const;

  private:
    std::string payload_;
    std::size_t sectionStart_ = 0; ///< offset of open section's length
    bool inSection_ = false;
};

/** Bounds-checked, error-latching checkpoint reader. */
class ChkReader
{
  public:
    /** Read and verify @p path (magic, version, length, CRC). */
    static Result<ChkReader> fromFile(const std::string &path);

    /** Verify an in-memory image (fuzzing, tests). */
    static Result<ChkReader> fromMemory(const void *data,
                                        std::size_t size);

    /**
     * Enter the next section, which must carry @p tag; its length
     * must fit the remaining payload.
     */
    void enterSection(std::uint32_t tag);

    /** Leave the entered section; the cursor must sit at its end. */
    void leaveSection();

    std::uint8_t u8();
    std::uint32_t u32();
    std::uint64_t u64();
    std::int64_t i64();
    double f64();
    std::string str();
    void bytes(void *out, std::size_t size);

    /** True once any read has failed. */
    bool failed() const { return error_.code != Errc::Ok; }

    /** The latched first error ({Ok, ""} when none). */
    const Error &error() const { return error_; }

    /** Bytes left in the payload (or current section). */
    std::size_t remaining() const;

    /** True when the whole payload has been consumed cleanly. */
    bool atEnd() const { return !failed() && cursor_ == payload_.size(); }

    /** Latch @p error (for callers layering semantic validation). */
    void fail(Errc code, const std::string &message);

  private:
    ChkReader() = default;

    bool take(void *out, std::size_t size);

    std::vector<std::uint8_t> payload_;
    std::size_t cursor_ = 0;
    std::size_t sectionEnd_ = 0;
    bool inSection_ = false;
    Error error_;
};

/**
 * Serialize every stat's current value (name, kind, value — moments
 * for distributions) so an interrupted run's registry travels inside
 * its checkpoint.
 */
void saveRegistryValues(const StatsRegistry &registry, ChkWriter &w);

/** One stat's checkpointed value. */
struct RegistryValue
{
    std::string name;
    std::uint8_t kind = 0;
    double value = 0.0;
};

/** Read back what saveRegistryValues() wrote. */
std::vector<RegistryValue> loadRegistryValues(ChkReader &r);

} // namespace membw

#endif // MEMBW_RESILIENCE_CHECKPOINT_HH
