#include "resilience/fault_injection.hh"

#include <cstdlib>
#include <map>
#include <mutex>
#include <vector>

namespace membw {

namespace {

enum class Trigger
{
    At,    ///< fire once when progress crosses n
    After, ///< fire on every hit with progress > n
    Prob,  ///< fire per hit with probability p
};

struct Clause
{
    std::string site;
    Trigger trigger = Trigger::At;
    std::uint64_t n = 0;
    double p = 0.0;
    bool fired = false;
};

struct Plan
{
    std::vector<Clause> clauses;
    std::uint64_t seed = 0;
    std::map<std::string, std::uint64_t> progress;
};

std::mutex g_mutex;
Plan g_plan;

constexpr const char *knownSites[] = {
    "io-write", "io-rename", "enospc",      "alloc",
    "crash",    "cell",      "series-write"};

bool
siteKnown(const std::string &site)
{
    for (const char *s : knownSites)
        if (site == s)
            return true;
    return false;
}

std::uint64_t
splitmix64(std::uint64_t x)
{
    x += 0x9e3779b97f4a7c15ull;
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
    return x ^ (x >> 31);
}

std::uint64_t
siteHash(const std::string &site)
{
    std::uint64_t h = 0xcbf29ce484222325ull;
    for (const char c : site) {
        h ^= static_cast<unsigned char>(c);
        h *= 0x100000001b3ull;
    }
    return h;
}

/** Deterministic Bernoulli draw for (seed, site, progress unit). */
bool
probFires(const Clause &c, std::uint64_t seed, std::uint64_t unit)
{
    const std::uint64_t h =
        splitmix64(seed ^ splitmix64(siteHash(c.site) ^ unit));
    // Top 53 bits -> uniform double in [0, 1).
    const double u =
        static_cast<double>(h >> 11) * (1.0 / 9007199254740992.0);
    return u < c.p;
}

/**
 * Advance @p site from its current progress to @p to and evaluate
 * every matching clause over the crossed interval (prev, to].
 * Returns true when a Fail clause fires; a crash-site clause calls
 * _Exit(137) and never returns.  Caller holds g_mutex.
 */
bool
advanceLocked(const char *siteName, std::uint64_t to)
{
    const std::string site(siteName);
    std::uint64_t &cursor = g_plan.progress[site];
    const std::uint64_t prev = cursor;
    if (to <= prev)
        return false; // marks may repeat; only crossings fire
    cursor = to;

    bool fires = false;
    for (Clause &c : g_plan.clauses) {
        if (c.site != site)
            continue;
        switch (c.trigger) {
          case Trigger::At:
            if (!c.fired && prev < c.n && c.n <= to) {
                c.fired = true;
                fires = true;
            }
            break;
          case Trigger::After:
            if (to > c.n)
                fires = true;
            break;
          case Trigger::Prob:
            if (probFires(c, g_plan.seed, to))
                fires = true;
            break;
        }
    }
    if (fires && site == "crash") {
        // Simulated kill -9: no stdio flush, no atexit hooks, the
        // same distinctive status a SIGKILLed child would report.
        std::_Exit(137);
    }
    return fires;
}

Result<std::uint64_t>
parseU64(const std::string &text)
{
    if (text.empty())
        return makeError(Errc::BadValue, "empty number");
    std::uint64_t v = 0;
    for (const char c : text) {
        if (c < '0' || c > '9')
            return makeError(Errc::BadValue,
                             "'" + text + "' is not a number");
        const std::uint64_t digit =
            static_cast<std::uint64_t>(c - '0');
        if (v > (~std::uint64_t{0} - digit) / 10)
            return makeError(Errc::BadValue,
                             "'" + text + "' overflows 64 bits");
        v = v * 10 + digit;
    }
    return v;
}

} // namespace

namespace detail {

std::atomic<bool> faultPlanLive{false};

bool
faultHit(const char *site)
{
    std::lock_guard<std::mutex> lock(g_mutex);
    return advanceLocked(site, g_plan.progress[site] + 1);
}

bool
faultHitAt(const char *site, std::uint64_t index)
{
    // Unit i spans (i, i+1], independent of call order, so indexed
    // sites (sweep cells) fire identically at any --jobs value.
    std::lock_guard<std::mutex> lock(g_mutex);
    bool fires = false;
    for (Clause &c : g_plan.clauses) {
        if (c.site != site)
            continue;
        switch (c.trigger) {
          case Trigger::At:
            if (c.n == index + 1)
                fires = true;
            break;
          case Trigger::After:
            if (index + 1 > c.n)
                fires = true;
            break;
          case Trigger::Prob:
            if (probFires(c, g_plan.seed, index + 1))
                fires = true;
            break;
        }
    }
    if (fires && std::string(site) == "crash")
        std::_Exit(137);
    return fires;
}

bool
faultHitMark(const char *site, std::uint64_t pos)
{
    std::lock_guard<std::mutex> lock(g_mutex);
    return advanceLocked(site, pos);
}

} // namespace detail

Result<bool>
armFaultPlan(const std::string &spec)
{
    Plan plan;
    std::size_t start = 0;
    while (start <= spec.size()) {
        std::size_t end = spec.find(',', start);
        if (end == std::string::npos)
            end = spec.size();
        const std::string clause = spec.substr(start, end - start);
        start = end + 1;
        if (clause.empty()) {
            if (spec.empty())
                break;
            return makeError(Errc::BadValue,
                             "fault spec '" + spec +
                                 "' has an empty clause");
        }

        const std::size_t eq = clause.find('=');
        if (eq == std::string::npos)
            return makeError(Errc::BadValue,
                             "fault clause '" + clause +
                                 "' has no '=' (expected "
                                 "site:trigger=value)");
        const std::string value = clause.substr(eq + 1);

        const std::size_t colon = clause.find(':');
        if (colon == std::string::npos || colon > eq) {
            // Global clause: currently only seed=N.
            const std::string key = clause.substr(0, eq);
            if (key != "seed")
                return makeError(Errc::BadValue,
                                 "unknown fault-spec key '" + key +
                                     "' (expected site:trigger=value "
                                     "or seed=N)");
            auto n = parseU64(value);
            if (!n.ok())
                return makeError(Errc::BadValue,
                                 "fault seed: " + n.error().message);
            plan.seed = n.value();
            continue;
        }

        Clause c;
        c.site = clause.substr(0, colon);
        if (!siteKnown(c.site))
            return makeError(
                Errc::BadValue,
                "unknown fault site '" + c.site +
                    "' (known: io-write, io-rename, enospc, alloc, "
                    "crash, cell, series-write)");
        const std::string trigger =
            clause.substr(colon + 1, eq - colon - 1);
        if (trigger == "at" || trigger == "ref") {
            c.trigger = Trigger::At;
            auto n = parseU64(value);
            if (!n.ok())
                return makeError(Errc::BadValue,
                                 "fault clause '" + clause +
                                     "': " + n.error().message);
            if (n.value() == 0)
                return makeError(Errc::BadValue,
                                 "fault clause '" + clause +
                                     "': at= is 1-based");
            c.n = n.value();
        } else if (trigger == "after") {
            c.trigger = Trigger::After;
            auto n = parseU64(value);
            if (!n.ok())
                return makeError(Errc::BadValue,
                                 "fault clause '" + clause +
                                     "': " + n.error().message);
            c.n = n.value();
        } else if (trigger == "p") {
            c.trigger = Trigger::Prob;
            char *rest = nullptr;
            c.p = std::strtod(value.c_str(), &rest);
            if (rest == value.c_str() || *rest != '\0' || c.p < 0.0 ||
                c.p > 1.0)
                return makeError(Errc::BadValue,
                                 "fault clause '" + clause +
                                     "': p= wants a probability in "
                                     "[0, 1]");
        } else {
            return makeError(Errc::BadValue,
                             "unknown fault trigger '" + trigger +
                                 "' in '" + clause +
                                 "' (expected at=, ref=, after=, or "
                                 "p=)");
        }
        plan.clauses.push_back(std::move(c));
    }

    std::lock_guard<std::mutex> lock(g_mutex);
    g_plan = std::move(plan);
    detail::faultPlanLive.store(!g_plan.clauses.empty(),
                                std::memory_order_relaxed);
    return true;
}

void
disarmFaultPlan()
{
    std::lock_guard<std::mutex> lock(g_mutex);
    g_plan = Plan{};
    detail::faultPlanLive.store(false, std::memory_order_relaxed);
}

bool
faultPlanArmed()
{
    return detail::faultPlanLive.load(std::memory_order_relaxed);
}

} // namespace membw
