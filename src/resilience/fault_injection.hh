/**
 * @file
 * Deterministic, process-wide fault injection.
 *
 * Robustness claims ("a crash never leaves a torn artifact", "a
 * degraded sweep still reports every surviving cell") are only worth
 * what their tests exercise.  This layer lets tests and the torture
 * harness (tools/membw_torture.cc) drive the real failure paths on
 * demand: a seed-deterministic *fault plan* is armed from a spec
 * string (`--fault-inject` on both tools) and compiled-in hooks at
 * the I/O and execution sites consult it.
 *
 * The hook discipline mirrors MEMBW_PROBE (obs/mem_probe.hh): each
 * MEMBW_FAULT_POINT* site is a single relaxed atomic load until a
 * plan is armed, so production runs pay one predictable branch and
 * nothing else.
 *
 * Spec grammar (comma-separated clauses):
 *
 *   site:trigger=value[,site:trigger=value...][,seed=N]
 *
 *   io-write:p=0.001     each write attempt fails with prob. 0.001
 *   enospc:after=3       every guarded write past the 3rd gets ENOSPC
 *   alloc:at=2           the 2nd image allocation fails
 *   crash:at=12345       _Exit(137) when run progress crosses 12345
 *   cell:at=4            sweep cell index 3 (the 4th cell) fails
 *   seed=7               seed for the p= Bernoulli draws (default 0)
 *
 * Triggers (N is 1-based):
 *   at=N     fire once, when the site's progress crosses N
 *            (ref= is an accepted alias, reading naturally for the
 *            crash site: crash:ref=M)
 *   after=N  fire on every hit with progress > N
 *   p=P      fire per hit with probability P, deterministically
 *            derived from (seed, site, progress)
 *
 * Sites and their actions:
 *   io-write     GuardedFile write attempt fails (retryable)
 *   enospc       GuardedFile write fails hard (no retry)
 *   io-rename    GuardedFile commit rename fails
 *   alloc        trace/checkpoint image allocation fails
 *   series-write a SeriesWriter line write fails (series dropped)
 *   cell         a sweep cell throws (degraded mode)
 *   crash        the process _Exit(137)s at the site — the hook never
 *                returns, simulating kill -9 mid-run
 */

#ifndef MEMBW_RESILIENCE_FAULT_INJECTION_HH
#define MEMBW_RESILIENCE_FAULT_INJECTION_HH

#include <atomic>
#include <cstdint>
#include <string>

#include "common/result.hh"

namespace membw {

/**
 * Parse @p spec and arm the process-wide plan.  Replaces any armed
 * plan and resets every site counter.  Classified BadValue on an
 * unknown site, unknown trigger, or malformed number, so tools can
 * surface typos instead of silently injecting nothing.
 */
Result<bool> armFaultPlan(const std::string &spec);

/** Drop the armed plan (tests re-arm between cases). */
void disarmFaultPlan();

/** True when a plan is armed (the macro's cheap gate). */
bool faultPlanArmed();

namespace detail {

extern std::atomic<bool> faultPlanLive;

/** One ordinary hit: progress += 1.  True = injected failure. */
bool faultHit(const char *site);

/** Hit with an explicit unit index (unit i spans (i, i+1]). */
bool faultHitAt(const char *site, std::uint64_t index);

/** Advance the site's progress to the absolute position @p pos
 * (monotone per process); fires clauses whose threshold was
 * crossed.  Used where progress advances in slices (MTC steps,
 * micro-op strides). */
bool faultHitMark(const char *site, std::uint64_t pos);

} // namespace detail

/** Evaluates to true when the armed plan injects a failure here. */
#define MEMBW_FAULT_POINT(site)                                      \
    (membw::detail::faultPlanLive.load(std::memory_order_relaxed) && \
     membw::detail::faultHit(site))

#define MEMBW_FAULT_POINT_AT(site, index)                            \
    (membw::detail::faultPlanLive.load(std::memory_order_relaxed) && \
     membw::detail::faultHitAt(site, index))

#define MEMBW_FAULT_POINT_MARK(site, pos)                            \
    (membw::detail::faultPlanLive.load(std::memory_order_relaxed) && \
     membw::detail::faultHitMark(site, pos))

} // namespace membw

#endif // MEMBW_RESILIENCE_FAULT_INJECTION_HH
