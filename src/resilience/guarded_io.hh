/**
 * @file
 * Guarded, atomic artifact writes.
 *
 * Every artifact a run leaves behind (stats JSON, checkpoints, saved
 * traces, Chrome traces, epoch profiles, bench manifests) is read by
 * some downstream consumer — a resumed run, a report tool, a CI
 * gate.  A plain fopen/fwrite writer can leave a *torn* file on
 * crash or disk-full, and a torn artifact is strictly worse than a
 * missing one: it parses half-way and poisons whatever trusted it.
 *
 * GuardedFile gives each writer the same three guarantees:
 *
 *  - retry: EINTR and short writes are retried with bounded backoff
 *    (maxWriteRetries zero-progress attempts), so transient stalls
 *    do not abort an hours-long run;
 *  - atomicity: bytes are staged to `<path>.tmp` and rename(2)d onto
 *    the final path only by commit(), so readers see either the old
 *    complete file or the new complete file, never a prefix;
 *  - classification: failures come back as Result<T> errors naming
 *    the path and the cause, so tools exit 1 with a usable
 *    diagnostic instead of a stack trace.
 *
 * The write and commit paths carry MEMBW_FAULT_POINT hooks
 * (io-write, enospc, io-rename) so the torture harness can prove
 * the guarantees under injected failure.
 */

#ifndef MEMBW_RESILIENCE_GUARDED_IO_HH
#define MEMBW_RESILIENCE_GUARDED_IO_HH

#include <cstdio>
#include <string>
#include <string_view>

#include "common/result.hh"

namespace membw {

/** Zero-progress write attempts tolerated before classifying. */
constexpr unsigned maxWriteRetries = 3;

class GuardedFile
{
  public:
    GuardedFile() = default;
    ~GuardedFile() { abortWrite(); }
    GuardedFile(const GuardedFile &) = delete;
    GuardedFile &operator=(const GuardedFile &) = delete;

    /** Open `<path>.tmp` for staging writes toward @p path. */
    Result<bool> open(const std::string &path);

    /** Append @p size bytes, retrying transient short writes.  On a
     * classified failure the staging file is already cleaned up. */
    Result<bool> write(const void *data, std::size_t size);
    Result<bool> write(std::string_view text);

    /** Flush, close, and atomically rename the staging file onto the
     * final path.  After commit() the object is reusable via open().
     */
    Result<bool> commit();

    /** Close and delete the staging file (no effect after commit or
     * a failed write; the destructor calls this). */
    void abortWrite();

    bool isOpen() const { return file_ != nullptr; }

    /** Stage + write + commit in one call. */
    static Result<bool> writeAtomic(const std::string &path,
                                    std::string_view contents);

  private:
    std::FILE *file_ = nullptr;
    std::string path_;
    std::string tmp_;
};

} // namespace membw

#endif // MEMBW_RESILIENCE_GUARDED_IO_HH
