#include "resilience/checkpoint.hh"

#include <bit>
#include <cstdio>
#include <cstring>
#include <memory>

#include "common/crc.hh"
#include "obs/registry.hh"
#include "resilience/fault_injection.hh"
#include "resilience/guarded_io.hh"

namespace membw {

namespace {

constexpr std::size_t headerBytes = 20;

void
putLE(std::string &out, std::uint64_t v, unsigned nbytes)
{
    for (unsigned i = 0; i < nbytes; ++i)
        out.push_back(static_cast<char>((v >> (8 * i)) & 0xff));
}

struct FileCloser
{
    void operator()(std::FILE *f) const { if (f) std::fclose(f); }
};
using FilePtr = std::unique_ptr<std::FILE, FileCloser>;

} // namespace

void
ChkWriter::beginSection(std::uint32_t tag)
{
    if (inSection_)
        panic("ChkWriter: nested section");
    inSection_ = true;
    putLE(payload_, tag, 4);
    sectionStart_ = payload_.size();
    putLE(payload_, 0, 8); // length patched by endSection()
}

void
ChkWriter::endSection()
{
    if (!inSection_)
        panic("ChkWriter: endSection without beginSection");
    inSection_ = false;
    const std::uint64_t len = payload_.size() - sectionStart_ - 8;
    for (unsigned i = 0; i < 8; ++i)
        payload_[sectionStart_ + i] =
            static_cast<char>((len >> (8 * i)) & 0xff);
}

void ChkWriter::u8(std::uint8_t v) { putLE(payload_, v, 1); }
void ChkWriter::u32(std::uint32_t v) { putLE(payload_, v, 4); }
void ChkWriter::u64(std::uint64_t v) { putLE(payload_, v, 8); }

void
ChkWriter::i64(std::int64_t v)
{
    putLE(payload_, static_cast<std::uint64_t>(v), 8);
}

void
ChkWriter::f64(double v)
{
    putLE(payload_, std::bit_cast<std::uint64_t>(v), 8);
}

void
ChkWriter::str(const std::string &s)
{
    putLE(payload_, s.size(), 8);
    payload_.append(s);
}

void
ChkWriter::bytes(const void *data, std::size_t size)
{
    payload_.append(static_cast<const char *>(data), size);
}

std::string
ChkWriter::serialize() const
{
    if (inSection_)
        panic("ChkWriter: serialize with an open section");
    std::string out;
    out.reserve(headerBytes + payload_.size());
    putLE(out, checkpointMagic, 4);
    putLE(out, checkpointVersion, 4);
    putLE(out, payload_.size(), 8);
    putLE(out, crc32(payload_.data(), payload_.size()), 4);
    out.append(payload_);
    return out;
}

Result<bool>
ChkWriter::writeFile(const std::string &path) const
{
    // GuardedFile supplies the retry + tmp/rename discipline, so a
    // crash or disk-full mid-snapshot can never tear the previous
    // committed checkpoint.
    return GuardedFile::writeAtomic(path, serialize());
}

Result<ChkReader>
ChkReader::fromFile(const std::string &path)
{
    FilePtr f(std::fopen(path.c_str(), "rb"));
    if (!f)
        return makeError(Errc::IoError,
                         "cannot open checkpoint '" + path +
                             "' for reading");
    if (std::fseek(f.get(), 0, SEEK_END) != 0)
        return makeError(Errc::IoError,
                         "cannot seek in '" + path + "'");
    const long sz = std::ftell(f.get());
    if (sz < 0)
        return makeError(Errc::IoError,
                         "cannot size '" + path + "'");
    std::rewind(f.get());
    if (MEMBW_FAULT_POINT("alloc"))
        return makeError(Errc::IoError,
                         "cannot allocate " + std::to_string(sz) +
                             " bytes for '" + path + "' (injected)");
    std::vector<std::uint8_t> image(static_cast<std::size_t>(sz));
    if (!image.empty() &&
        std::fread(image.data(), image.size(), 1, f.get()) != 1)
        return makeError(Errc::IoError,
                         "cannot read '" + path + "'");
    return fromMemory(image.data(), image.size());
}

Result<ChkReader>
ChkReader::fromMemory(const void *data, std::size_t size)
{
    const auto *p = static_cast<const std::uint8_t *>(data);
    auto le = [&](std::size_t off, unsigned nbytes) {
        std::uint64_t v = 0;
        for (unsigned i = 0; i < nbytes; ++i)
            v |= static_cast<std::uint64_t>(p[off + i]) << (8 * i);
        return v;
    };

    if (size < headerBytes)
        return makeError(Errc::Truncated,
                         "checkpoint is " + std::to_string(size) +
                             " bytes; the header alone needs " +
                             std::to_string(headerBytes));
    if (le(0, 4) != checkpointMagic)
        return makeError(Errc::BadMagic,
                         "not a membw checkpoint (bad magic)");
    const std::uint64_t version = le(4, 4);
    if (version != checkpointVersion)
        return makeError(Errc::BadVersion,
                         "unsupported checkpoint version " +
                             std::to_string(version) +
                             " (this build reads version " +
                             std::to_string(checkpointVersion) + ")");
    const std::uint64_t payloadLen = le(8, 8);
    if (payloadLen != size - headerBytes)
        return makeError(
            Errc::Truncated,
            "checkpoint declares a " + std::to_string(payloadLen) +
                "-byte payload but carries " +
                std::to_string(size - headerBytes) + " bytes");
    const std::uint32_t wantCrc =
        static_cast<std::uint32_t>(le(16, 4));
    const std::uint32_t haveCrc =
        crc32(p + headerBytes, static_cast<std::size_t>(payloadLen));
    if (wantCrc != haveCrc)
        return makeError(Errc::Corrupt,
                         "checkpoint payload CRC mismatch "
                         "(file is corrupt or was truncated and "
                         "padded)");

    ChkReader r;
    r.payload_.assign(p + headerBytes, p + size);
    return r;
}

bool
ChkReader::take(void *out, std::size_t size)
{
    if (failed())
        return false;
    const std::size_t limit =
        inSection_ ? sectionEnd_ : payload_.size();
    if (size > limit - cursor_) {
        fail(Errc::Truncated,
             inSection_
                 ? "read of " + std::to_string(size) +
                       " bytes crosses the section boundary"
                 : "read of " + std::to_string(size) +
                       " bytes runs past the payload end");
        return false;
    }
    std::memcpy(out, payload_.data() + cursor_, size);
    cursor_ += size;
    return true;
}

void
ChkReader::enterSection(std::uint32_t tag)
{
    if (failed())
        return;
    if (inSection_) {
        fail(Errc::Corrupt, "nested section read");
        return;
    }
    std::uint8_t head[12];
    if (!take(head, sizeof(head)))
        return;
    auto le = [&](unsigned off, unsigned nbytes) {
        std::uint64_t v = 0;
        for (unsigned i = 0; i < nbytes; ++i)
            v |= static_cast<std::uint64_t>(head[off + i]) << (8 * i);
        return v;
    };
    const std::uint32_t haveTag = static_cast<std::uint32_t>(le(0, 4));
    const std::uint64_t len = le(4, 8);
    if (haveTag != tag) {
        fail(Errc::Corrupt,
             "expected section tag 0x" /* tags are fourCCs */ +
                 std::to_string(tag) + ", found 0x" +
                 std::to_string(haveTag));
        return;
    }
    if (len > payload_.size() - cursor_) {
        fail(Errc::Truncated,
             "section declares " + std::to_string(len) +
                 " bytes but only " +
                 std::to_string(payload_.size() - cursor_) +
                 " remain");
        return;
    }
    inSection_ = true;
    sectionEnd_ = cursor_ + static_cast<std::size_t>(len);
}

void
ChkReader::leaveSection()
{
    if (failed())
        return;
    if (!inSection_) {
        fail(Errc::Corrupt, "leaveSection without enterSection");
        return;
    }
    if (cursor_ != sectionEnd_) {
        fail(Errc::Corrupt,
             "section has " + std::to_string(sectionEnd_ - cursor_) +
                 " unread bytes (layout drift between writer and "
                 "reader)");
        return;
    }
    inSection_ = false;
    sectionEnd_ = 0;
}

std::uint8_t
ChkReader::u8()
{
    std::uint8_t v = 0;
    take(&v, 1);
    return v;
}

std::uint32_t
ChkReader::u32()
{
    std::uint8_t b[4] = {};
    take(b, 4);
    std::uint32_t v = 0;
    for (unsigned i = 0; i < 4; ++i)
        v |= static_cast<std::uint32_t>(b[i]) << (8 * i);
    return v;
}

std::uint64_t
ChkReader::u64()
{
    std::uint8_t b[8] = {};
    take(b, 8);
    std::uint64_t v = 0;
    for (unsigned i = 0; i < 8; ++i)
        v |= static_cast<std::uint64_t>(b[i]) << (8 * i);
    return v;
}

std::int64_t
ChkReader::i64()
{
    return static_cast<std::int64_t>(u64());
}

double
ChkReader::f64()
{
    return std::bit_cast<double>(u64());
}

std::string
ChkReader::str()
{
    const std::uint64_t len = u64();
    const std::size_t limit =
        inSection_ ? sectionEnd_ : payload_.size();
    if (failed() || len > limit - cursor_) {
        fail(Errc::Truncated,
             "string of " + std::to_string(len) +
                 " bytes does not fit the remaining payload");
        return "";
    }
    std::string s(reinterpret_cast<const char *>(
                      payload_.data() + cursor_),
                  static_cast<std::size_t>(len));
    cursor_ += static_cast<std::size_t>(len);
    return s;
}

void
ChkReader::bytes(void *out, std::size_t size)
{
    if (!take(out, size))
        std::memset(out, 0, size);
}

std::size_t
ChkReader::remaining() const
{
    return (inSection_ ? sectionEnd_ : payload_.size()) - cursor_;
}

void
ChkReader::fail(Errc code, const std::string &message)
{
    if (!failed())
        error_ = Error{code, message};
}

void
saveRegistryValues(const StatsRegistry &registry, ChkWriter &w)
{
    w.beginSection(chkTag("STAT"));
    w.u64(registry.size());
    for (const auto &stat : registry.stats()) {
        w.str(stat->name());
        w.u8(static_cast<std::uint8_t>(stat->kind()));
        w.f64(stat->numericValue());
    }
    w.endSection();
}

std::vector<RegistryValue>
loadRegistryValues(ChkReader &r)
{
    std::vector<RegistryValue> out;
    r.enterSection(chkTag("STAT"));
    const std::uint64_t count = r.u64();
    // Each entry is at least 17 bytes (8-byte name length, kind,
    // value); reject counts the section cannot possibly hold before
    // reserving anything.
    if (count > r.remaining() / 17 + 1) {
        r.fail(Errc::TooLarge,
               "stat count " + std::to_string(count) +
                   " cannot fit the section");
        return out;
    }
    out.reserve(static_cast<std::size_t>(count));
    for (std::uint64_t i = 0; i < count && !r.failed(); ++i) {
        RegistryValue v;
        v.name = r.str();
        v.kind = r.u8();
        v.value = r.f64();
        out.push_back(std::move(v));
    }
    r.leaveSection();
    return out;
}

} // namespace membw
