/**
 * @file
 * Fully-associative Belady-MIN cache — the paper's minimal-traffic
 * cache (MTC, Section 5.2) and the MIN-replacement comparison points
 * of Tables 9/10.
 *
 * The canonical MTC has all four properties: full associativity,
 * transfer size equal to the request size (4B words), MIN
 * replacement, and bypassing of lower-priority misses.  This class
 * generalizes the block size and the write-miss policy so the factor
 * isolation experiments (MIN/fa/32B/WA etc.) reuse the same engine.
 * Like the paper, write costs use MIN rather than the write-aware
 * Horwitz algorithm, so measured traffic is an aggressive bound, not
 * an exact minimum.
 */

#ifndef MEMBW_MTC_MIN_CACHE_HH
#define MEMBW_MTC_MIN_CACHE_HH

#include <cstdint>
#include <utility>
#include <vector>

#include "cache/config.hh"
#include "common/types.hh"
#include "mtc/next_use.hh"
#include "obs/mem_probe.hh"
#include "trace/trace.hh"

namespace membw {

class StatsGroup;
class ChkWriter;
class ChkReader;

/** Configuration for a MIN-replacement fully-associative cache. */
struct MinCacheConfig
{
    Bytes size = 8_KiB;
    Bytes blockBytes = wordBytes; ///< MTC uses word-sized blocks
    /** WriteAllocate or WriteValidate (always write-back). */
    AllocPolicy alloc = AllocPolicy::WriteValidate;
    /** Allow misses whose next use is furthest to bypass the cache. */
    bool allowBypass = true;

    /**
     * Write-aware victim selection (a Horwitz-inspired heuristic,
     * not the exact optimum): among the furthest-referenced
     * candidates, prefer a clean block over a dirty one when their
     * next uses are equally hopeless, saving the write-back.  The
     * paper implemented plain MIN and asserted the disparity is
     * small (Section 5.2); the ablation bench measures it.
     */
    bool writeAware = false;

    unsigned blocks() const
    {
        return static_cast<unsigned>(size / blockBytes);
    }
    void validate() const;
    std::string describe() const;
};

/** Traffic summary of a MIN-cache run. */
struct MinCacheStats
{
    std::uint64_t accesses = 0;
    std::uint64_t hits = 0;
    std::uint64_t misses = 0;
    std::uint64_t bypasses = 0;  ///< subset of misses never cached
    std::uint64_t validates = 0; ///< write-validate allocs (no fetch)

    Bytes requestBytes = 0;
    Bytes fetchBytes = 0;        ///< fills (and bypass load transfers)
    Bytes writebackBytes = 0;    ///< dirty evictions + bypassed stores
    Bytes flushWritebackBytes = 0;

    Bytes
    trafficBelow() const
    {
        return fetchBytes + writebackBytes + flushWritebackBytes;
    }

    double
    trafficRatio() const
    {
        return requestBytes
                   ? static_cast<double>(trafficBelow()) / requestBytes
                   : 0.0;
    }
};

/**
 * Two-pass MIN simulation over a whole trace.
 *
 * The constructor runs pass one (next-use table); run() performs the
 * stack simulation.  Victim choice follows Belady's MIN [3]: evict
 * the resident block referenced furthest in the future.  With
 * bypassing enabled, a miss whose own next use lies beyond every
 * resident block's next use is never cached (Section 5.2, footnote 2).
 *
 * The simulation is resumable: step() advances by a bounded number of
 * references and saveState()/loadState() checkpoint the resident set
 * and counters.  The next-use side table is rebuilt deterministically
 * by the constructor, so checkpoints stay proportional to the cache,
 * not the trace.
 */
class MinCacheSim
{
  public:
    MinCacheSim(const Trace &trace, const MinCacheConfig &config);

    /**
     * Like the two-argument constructor, but reuses a next-use table
     * previously built by makeNextUseTable() for the same trace at
     * config.blockBytes granularity, skipping pass one.  A null or
     * mismatched table is fatal.
     */
    MinCacheSim(const Trace &trace, const MinCacheConfig &config,
                NextUseTable nextUse);

    /** Simulate the full trace, including the final dirty flush. */
    MinCacheStats run();

    /** Advance by up to @p n references from the cursor. */
    void step(std::size_t n);

    /** References simulated so far. */
    std::size_t cursor() const { return cursor_; }

    /** True once every reference has been simulated. */
    bool done() const { return cursor_ == trace_.size(); }

    /**
     * Stats including the end-of-run dirty flush (Section 4.1).
     * Valid once done(); does not mutate, so mid-run heartbeats may
     * also call it for a conservative snapshot.
     */
    MinCacheStats finalize() const;

    /** Raw counters without the flush estimate — monotonic, so
     * interval samplers can diff successive snapshots safely. */
    const MinCacheStats &stats() const { return stats_; }

    /** Cumulative write-aware victim-scan heap pops. */
    std::uint64_t victimScanPops() const { return victimScanPops_; }

    /** Attach @p probe (null to detach) reporting victim-scan work. */
    void setProbe(MemProbe *probe) { probe_ = probe; }

    /** Serialize cursor, counters, and resident set ("MTCS"). */
    void saveState(ChkWriter &w) const;

    /**
     * Restore state written by saveState() for the same trace and
     * config; mismatches latch a classified error on @p r.
     */
    void loadState(ChkReader &r);

  private:
    /** One resident block in the slot pool. */
    struct Slot
    {
        Addr addr = 0;
        Tick nextUse = tickInfinity;
        std::uint64_t validMask = 0;
        std::uint64_t dirtyMask = 0;
        bool used = false;
    };

    Bytes writebackSize(const Slot &slot) const;
    void accessOne(const MemRef &ref, Tick nu);

    std::uint32_t allocSlot();
    void freeSlot(std::uint32_t i);
    void keyInsert(Tick nu, Addr addr, std::uint32_t slot);
    void resetResident();

    const Trace &trace_;
    MinCacheConfig config_;
    NextUseTable nextUse_;

    std::uint64_t fullMask_ = 0;
    unsigned capacity_ = 0;

    MinCacheStats stats_;

    /** Cumulative write-aware victim-scan heap pops.  Telemetry:
     * sampled as a trace counter and an epoch-profiler metric, and
     * checkpointed with the stats so a resumed profiled run stays
     * byte-identical; still excluded from MinCacheStats itself. */
    std::uint64_t victimScanPops_ = 0;

    MemProbe *probe_ = nullptr;

    /** Dense pool of resident blocks; freed slots are recycled via
     * freeList_.  The pool is reached through the victim-order
     * structures below, never searched. */
    std::vector<Slot> slots_;
    std::vector<std::uint32_t> freeList_;
    std::size_t resident_ = 0;

    /**
     * Hierarchical bitmap over tick indices supporting O(1) set and
     * clear and near-O(1) find-max (one word scan per level).  Used
     * for the finite next-use keys of the victim order.
     */
    class MaxBitmap
    {
      public:
        void init(std::size_t bits);
        void set(std::size_t i);
        void clear(std::size_t i);
        bool test(std::size_t i) const;
        /** Highest set bit, or false when the bitmap is empty. */
        bool findMax(std::size_t &out) const;

      private:
        std::vector<std::vector<std::uint64_t>> levels_;
    };

    /**
     * Victim order, split by the structure of next-use keys.  Trace
     * position t references exactly one block, so at most one
     * resident block has nextUse == t: the finite keys form a set of
     * distinct ticks (nuBits_) with the owning slot alongside
     * (nuOwner_).  This doubles as the residency index — the access
     * at position t hits if and only if the bit at t is set, because
     * only the block referenced at t can carry that key.  Blocks
     * keyed tickInfinity are never referenced again — they can never
     * be hit, so they leave only by eviction and a plain max-heap of
     * (addr, slot) pairs (the ordered-set tie-break: highest address
     * first) needs no re-keying or staleness handling.  The global
     * victim is the top of infHeap_ when non-empty, else the owner
     * of the highest finite tick.
     */
    MaxBitmap nuBits_;
    std::vector<std::uint32_t> nuOwner_;
    std::vector<std::pair<Addr, std::uint32_t>> infHeap_;

    std::size_t cursor_ = 0;
};

/** Convenience: run an MTC (or variant) and return its stats. */
MinCacheStats runMinCache(const Trace &trace,
                          const MinCacheConfig &config);

/** Like runMinCache(), reusing a shared next-use table. */
MinCacheStats runMinCache(const Trace &trace,
                          const MinCacheConfig &config,
                          NextUseTable nextUse);

/** Publish @p stats under @p group (typically "mtc"). */
void publishMinCacheStats(StatsGroup &group,
                          const MinCacheStats &stats);

/** The paper's canonical MTC configuration for a given size. */
MinCacheConfig canonicalMtc(Bytes size);

} // namespace membw

#endif // MEMBW_MTC_MIN_CACHE_HH
