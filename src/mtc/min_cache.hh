/**
 * @file
 * Fully-associative Belady-MIN cache — the paper's minimal-traffic
 * cache (MTC, Section 5.2) and the MIN-replacement comparison points
 * of Tables 9/10.
 *
 * The canonical MTC has all four properties: full associativity,
 * transfer size equal to the request size (4B words), MIN
 * replacement, and bypassing of lower-priority misses.  This class
 * generalizes the block size and the write-miss policy so the factor
 * isolation experiments (MIN/fa/32B/WA etc.) reuse the same engine.
 * Like the paper, write costs use MIN rather than the write-aware
 * Horwitz algorithm, so measured traffic is an aggressive bound, not
 * an exact minimum.
 */

#ifndef MEMBW_MTC_MIN_CACHE_HH
#define MEMBW_MTC_MIN_CACHE_HH

#include <cstdint>
#include <map>
#include <set>
#include <unordered_map>
#include <vector>

#include "cache/config.hh"
#include "common/types.hh"
#include "trace/trace.hh"

namespace membw {

class StatsGroup;
class ChkWriter;
class ChkReader;

/** Configuration for a MIN-replacement fully-associative cache. */
struct MinCacheConfig
{
    Bytes size = 8_KiB;
    Bytes blockBytes = wordBytes; ///< MTC uses word-sized blocks
    /** WriteAllocate or WriteValidate (always write-back). */
    AllocPolicy alloc = AllocPolicy::WriteValidate;
    /** Allow misses whose next use is furthest to bypass the cache. */
    bool allowBypass = true;

    /**
     * Write-aware victim selection (a Horwitz-inspired heuristic,
     * not the exact optimum): among the furthest-referenced
     * candidates, prefer a clean block over a dirty one when their
     * next uses are equally hopeless, saving the write-back.  The
     * paper implemented plain MIN and asserted the disparity is
     * small (Section 5.2); the ablation bench measures it.
     */
    bool writeAware = false;

    unsigned blocks() const
    {
        return static_cast<unsigned>(size / blockBytes);
    }
    void validate() const;
    std::string describe() const;
};

/** Traffic summary of a MIN-cache run. */
struct MinCacheStats
{
    std::uint64_t accesses = 0;
    std::uint64_t hits = 0;
    std::uint64_t misses = 0;
    std::uint64_t bypasses = 0;  ///< subset of misses never cached
    std::uint64_t validates = 0; ///< write-validate allocs (no fetch)

    Bytes requestBytes = 0;
    Bytes fetchBytes = 0;        ///< fills (and bypass load transfers)
    Bytes writebackBytes = 0;    ///< dirty evictions + bypassed stores
    Bytes flushWritebackBytes = 0;

    Bytes
    trafficBelow() const
    {
        return fetchBytes + writebackBytes + flushWritebackBytes;
    }

    double
    trafficRatio() const
    {
        return requestBytes
                   ? static_cast<double>(trafficBelow()) / requestBytes
                   : 0.0;
    }
};

/**
 * Two-pass MIN simulation over a whole trace.
 *
 * The constructor runs pass one (next-use table); run() performs the
 * stack simulation.  Victim choice follows Belady's MIN [3]: evict
 * the resident block referenced furthest in the future.  With
 * bypassing enabled, a miss whose own next use lies beyond every
 * resident block's next use is never cached (Section 5.2, footnote 2).
 *
 * The simulation is resumable: step() advances by a bounded number of
 * references and saveState()/loadState() checkpoint the resident set
 * and counters.  The next-use side table is rebuilt deterministically
 * by the constructor, so checkpoints stay proportional to the cache,
 * not the trace.
 */
class MinCacheSim
{
  public:
    MinCacheSim(const Trace &trace, const MinCacheConfig &config);

    /** Simulate the full trace, including the final dirty flush. */
    MinCacheStats run();

    /** Advance by up to @p n references from the cursor. */
    void step(std::size_t n);

    /** References simulated so far. */
    std::size_t cursor() const { return cursor_; }

    /** True once every reference has been simulated. */
    bool done() const { return cursor_ == trace_.size(); }

    /**
     * Stats including the end-of-run dirty flush (Section 4.1).
     * Valid once done(); does not mutate, so mid-run heartbeats may
     * also call it for a conservative snapshot.
     */
    MinCacheStats finalize() const;

    /** Serialize cursor, counters, and resident set ("MTCS"). */
    void saveState(ChkWriter &w) const;

    /**
     * Restore state written by saveState() for the same trace and
     * config; mismatches latch a classified error on @p r.
     */
    void loadState(ChkReader &r);

  private:
    struct Entry
    {
        Tick nextUse = tickInfinity;
        std::uint64_t validMask = 0;
        std::uint64_t dirtyMask = 0;
    };

    Bytes writebackSize(const Entry &entry) const;
    void accessOne(const MemRef &ref, Tick nu);

    const Trace &trace_;
    MinCacheConfig config_;
    std::vector<Tick> nextUse_;

    std::uint64_t fullMask_ = 0;
    unsigned capacity_ = 0;

    MinCacheStats stats_;
    std::unordered_map<Addr, Entry> cache_;
    /** Victim order: largest (nextUse, addr) is furthest away. */
    std::set<std::pair<Tick, Addr>> order_;
    std::size_t cursor_ = 0;
};

/** Convenience: run an MTC (or variant) and return its stats. */
MinCacheStats runMinCache(const Trace &trace,
                          const MinCacheConfig &config);

/** Publish @p stats under @p group (typically "mtc"). */
void publishMinCacheStats(StatsGroup &group,
                          const MinCacheStats &stats);

/** The paper's canonical MTC configuration for a given size. */
MinCacheConfig canonicalMtc(Bytes size);

} // namespace membw

#endif // MEMBW_MTC_MIN_CACHE_HH
