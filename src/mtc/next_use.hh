/**
 * @file
 * Forward "next use" side table for Belady MIN simulation.
 *
 * Pass one of the two-pass MTC simulation (Section 5.2): for every
 * trace position i, the tick of the next reference to the same
 * aligned block (at a caller-chosen block granularity), or
 * tickInfinity when the block is never referenced again.
 */

#ifndef MEMBW_MTC_NEXT_USE_HH
#define MEMBW_MTC_NEXT_USE_HH

#include <memory>
#include <vector>

#include "common/types.hh"
#include "trace/trace.hh"

namespace membw {

/**
 * Per-position next-use ticks for @p trace at @p blockBytes
 * granularity.  References that span two blocks (which QPT-style
 * word traces never do) take the earlier of the two next-uses.
 */
std::vector<Tick> buildNextUse(const Trace &trace, Bytes blockBytes);

/**
 * Shareable next-use table.  Every MTC cell of a sweep that uses the
 * same (trace, block granularity) pair needs the same table; build it
 * once with makeNextUseTable() and hand the same handle to each
 * MinCacheSim so pass one runs once per sweep instead of once per
 * cell.
 */
using NextUseTable = std::shared_ptr<const std::vector<Tick>>;

/** Build a shareable next-use table (see buildNextUse()). */
NextUseTable makeNextUseTable(const Trace &trace, Bytes blockBytes);

} // namespace membw

#endif // MEMBW_MTC_NEXT_USE_HH
