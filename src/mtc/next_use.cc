#include "mtc/next_use.hh"

#include <string>
#include <unordered_map>

#include "common/bitops.hh"
#include "common/log.hh"
#include "obs/trace_span.hh"

namespace membw {

std::vector<Tick>
buildNextUse(const Trace &trace, Bytes blockBytes)
{
    if (!isPowerOfTwo(blockBytes))
        fatal("next-use granularity must be a power of two");

    MEMBW_SPAN_D("mtc.next_use_build",
                 "block=" + std::to_string(blockBytes) +
                     "B refs=" + std::to_string(trace.size()));

    std::vector<Tick> next(trace.size(), tickInfinity);
    std::unordered_map<Addr, Tick> lastSeen;
    // One entry per distinct block, which can approach one per
    // reference for small blocks over sparse traces.  Reserving for
    // the worst case up front costs at most ~16 bytes per reference
    // of transient bucket space and eliminates the rehash storms
    // (log2(n) full-table rehashes) the old /8 heuristic paid on
    // every large trace.
    lastSeen.reserve(trace.size() + 16);

    // Walk backwards: lastSeen[b] is the next position at which block
    // b is referenced, relative to the position being filled in.
    for (std::size_t i = trace.size(); i-- > 0;) {
        const MemRef &ref = trace[i];
        const Addr first = alignDown(ref.addr, blockBytes);
        const Addr last =
            alignDown(ref.addr + ref.size - 1, blockBytes);

        Tick soonest = tickInfinity;
        for (Addr b = first; b <= last; b += blockBytes) {
            auto it = lastSeen.find(b);
            if (it != lastSeen.end() && it->second < soonest)
                soonest = it->second;
            lastSeen[b] = static_cast<Tick>(i);
            if (b == last)
                break; // guard against address-space wrap
        }
        next[i] = soonest;
    }
    return next;
}

NextUseTable
makeNextUseTable(const Trace &trace, Bytes blockBytes)
{
    return std::make_shared<const std::vector<Tick>>(
        buildNextUse(trace, blockBytes));
}

} // namespace membw
