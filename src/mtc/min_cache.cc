#include "mtc/min_cache.hh"

#include <algorithm>
#include <bit>
#include <cassert>

#include "common/bitops.hh"
#include "common/log.hh"
#include "mtc/next_use.hh"
#include "obs/registry.hh"
#include "resilience/checkpoint.hh"

namespace membw {

void
MinCacheConfig::validate() const
{
    if (blockBytes < wordBytes || !isPowerOfTwo(blockBytes))
        fatal("MTC block size must be a power of two >= 4B");
    if (blockBytes > 64 * wordBytes)
        fatal("MTC block size above 256B is unsupported");
    if (size == 0 || size % blockBytes != 0)
        fatal("MTC size must be a non-zero multiple of the block");
    if (alloc == AllocPolicy::WriteNoAllocate)
        fatal("MTC does not support write-no-allocate");
}

std::string
MinCacheConfig::describe() const
{
    return formatSize(size) + "/full/" + formatSize(blockBytes) +
           " MIN-" + toString(alloc) + (allowBypass ? "+bypass" : "");
}

MinCacheSim::MinCacheSim(const Trace &trace, const MinCacheConfig &config)
    : trace_(trace), config_(config)
{
    config_.validate();
    nextUse_ = buildNextUse(trace_, config_.blockBytes);

    const unsigned words_per_block =
        static_cast<unsigned>(config_.blockBytes / wordBytes);
    fullMask_ = words_per_block == 64
                    ? ~std::uint64_t{0}
                    : (std::uint64_t{1} << words_per_block) - 1;
    capacity_ = config_.blocks();
    cache_.reserve(capacity_ * 2);
}

Bytes
MinCacheSim::writebackSize(const Entry &entry) const
{
    if (entry.dirtyMask == 0)
        return 0;
    if (config_.alloc == AllocPolicy::WriteValidate)
        return static_cast<Bytes>(std::popcount(entry.dirtyMask)) *
               wordBytes;
    return config_.blockBytes;
}

void
MinCacheSim::accessOne(const MemRef &ref, Tick nu)
{
    const Bytes block_bytes = config_.blockBytes;
    const Addr block = alignDown(ref.addr, block_bytes);
    if (alignDown(ref.addr + ref.size - 1, block_bytes) != block)
        fatal("MTC reference spans a block boundary");

    auto words_mask = [&] {
        const unsigned first =
            static_cast<unsigned>((ref.addr - block) / wordBytes);
        const unsigned last = static_cast<unsigned>(
            (ref.addr + ref.size - 1 - block) / wordBytes);
        std::uint64_t mask = 0;
        for (unsigned w = first; w <= last; ++w)
            mask |= std::uint64_t{1} << w;
        return mask;
    };
    const std::uint64_t words = words_mask();

    stats_.accesses++;
    stats_.requestBytes += ref.size;

    auto it = cache_.find(block);
    if (it != cache_.end()) {
        // Hit: re-key the replacement order with the new next use.
        Entry &entry = it->second;
        order_.erase({entry.nextUse, block});
        entry.nextUse = nu;
        order_.insert({nu, block});

        if (ref.isLoad()) {
            const std::uint64_t missing = words & ~entry.validMask;
            if (missing) {
                const Bytes bytes =
                    static_cast<Bytes>(std::popcount(missing)) *
                    wordBytes;
                stats_.fetchBytes += bytes;
                entry.validMask |= missing;
            }
        } else {
            entry.validMask |= words;
            entry.dirtyMask |= words;
        }
        stats_.hits++;
        return;
    }

    stats_.misses++;

    if (cache_.size() == capacity_) {
        auto victim_it = std::prev(order_.end());
        const Tick victim_next = victim_it->first;

        if (config_.writeAware && victim_next == tickInfinity) {
            // Scan the never-referenced-again candidates for a
            // clean one; evicting it saves a write-back without
            // adding any future miss.
            auto scan = victim_it;
            for (unsigned n = 0; n < 32; ++n) {
                if (scan->first != tickInfinity)
                    break;
                auto entry = cache_.find(scan->second);
                assert(entry != cache_.end());
                if (entry->second.dirtyMask == 0) {
                    victim_it = scan;
                    break;
                }
                if (scan == order_.begin())
                    break;
                --scan;
            }
        }

        if (config_.allowBypass && nu > victim_next) {
            // The incoming block is the lowest-priority block:
            // service the request without caching it.
            stats_.bypasses++;
            if (ref.isLoad())
                stats_.fetchBytes += ref.size;
            else
                stats_.writebackBytes += ref.size;
            return;
        }

        // Evict the furthest-referenced resident block.
        const Addr victim_addr = victim_it->second;
        auto victim = cache_.find(victim_addr);
        assert(victim != cache_.end());
        stats_.writebackBytes += writebackSize(victim->second);
        cache_.erase(victim);
        order_.erase(victim_it);
    }

    Entry entry;
    entry.nextUse = nu;
    if (ref.isLoad()) {
        entry.validMask = fullMask_;
        stats_.fetchBytes += config_.blockBytes;
    } else if (config_.alloc == AllocPolicy::WriteAllocate) {
        entry.validMask = fullMask_;
        entry.dirtyMask = words;
        stats_.fetchBytes += config_.blockBytes;
    } else { // WriteValidate: allocate without fetching.
        entry.validMask = words;
        entry.dirtyMask = words;
        stats_.validates++;
    }
    cache_.emplace(block, entry);
    order_.insert({nu, block});
}

void
MinCacheSim::step(std::size_t n)
{
    const std::size_t end =
        cursor_ + std::min(n, trace_.size() - cursor_);
    for (; cursor_ < end; ++cursor_)
        accessOne(trace_[cursor_], nextUse_[cursor_]);
}

MinCacheStats
MinCacheSim::finalize() const
{
    // Program completion: flush all dirty data (Section 4.1).
    MinCacheStats stats = stats_;
    for (const auto &[addr, entry] : cache_)
        stats.flushWritebackBytes += writebackSize(entry);
    return stats;
}

MinCacheStats
MinCacheSim::run()
{
    step(trace_.size() - cursor_);
    return finalize();
}

void
MinCacheSim::saveState(ChkWriter &w) const
{
    w.beginSection(chkTag("MTCS"));

    // Identity guard: the checkpoint only restores over the same
    // trace and configuration.
    w.u64(config_.size);
    w.u64(config_.blockBytes);
    w.u8(static_cast<std::uint8_t>(config_.alloc));
    w.u8(config_.allowBypass ? 1 : 0);
    w.u8(config_.writeAware ? 1 : 0);
    w.u64(trace_.size());

    w.u64(cursor_);
    w.u64(stats_.accesses);
    w.u64(stats_.hits);
    w.u64(stats_.misses);
    w.u64(stats_.bypasses);
    w.u64(stats_.validates);
    w.u64(stats_.requestBytes);
    w.u64(stats_.fetchBytes);
    w.u64(stats_.writebackBytes);
    w.u64(stats_.flushWritebackBytes);

    // Resident set in order_ iteration order: sorted by
    // (nextUse, addr), so the image is deterministic even though the
    // backing map is unordered.
    w.u64(order_.size());
    for (const auto &[nu, addr] : order_) {
        const auto it = cache_.find(addr);
        assert(it != cache_.end());
        w.u64(nu);
        w.u64(addr);
        w.u64(it->second.validMask);
        w.u64(it->second.dirtyMask);
    }

    w.endSection();
}

void
MinCacheSim::loadState(ChkReader &r)
{
    r.enterSection(chkTag("MTCS"));

    const std::uint64_t size = r.u64();
    const std::uint64_t block = r.u64();
    const std::uint8_t alloc = r.u8();
    const std::uint8_t bypass = r.u8();
    const std::uint8_t aware = r.u8();
    const std::uint64_t refs = r.u64();
    if (r.failed())
        return;
    if (size != config_.size || block != config_.blockBytes ||
        alloc != static_cast<std::uint8_t>(config_.alloc) ||
        bypass != (config_.allowBypass ? 1 : 0) ||
        aware != (config_.writeAware ? 1 : 0)) {
        r.fail(Errc::Mismatch,
               "MTC checkpoint was taken with a different "
               "configuration (" +
                   config_.describe() + " expected)");
        return;
    }
    if (refs != trace_.size()) {
        r.fail(Errc::Mismatch,
               "MTC checkpoint covers a " + std::to_string(refs) +
                   "-reference trace; this trace has " +
                   std::to_string(trace_.size()));
        return;
    }

    cursor_ = static_cast<std::size_t>(r.u64());
    stats_ = MinCacheStats{};
    stats_.accesses = r.u64();
    stats_.hits = r.u64();
    stats_.misses = r.u64();
    stats_.bypasses = r.u64();
    stats_.validates = r.u64();
    stats_.requestBytes = r.u64();
    stats_.fetchBytes = r.u64();
    stats_.writebackBytes = r.u64();
    stats_.flushWritebackBytes = r.u64();
    if (cursor_ > trace_.size()) {
        r.fail(Errc::Corrupt,
               "MTC cursor lies beyond the end of the trace");
        return;
    }

    const std::uint64_t resident = r.u64();
    if (r.failed())
        return;
    if (resident > capacity_ || resident > r.remaining() / 32) {
        r.fail(Errc::Corrupt,
               "MTC resident count " + std::to_string(resident) +
                   " exceeds the cache capacity");
        return;
    }
    cache_.clear();
    order_.clear();
    for (std::uint64_t i = 0; i < resident && !r.failed(); ++i) {
        const Tick nu = r.u64();
        const Addr addr = r.u64();
        Entry entry;
        entry.nextUse = nu;
        entry.validMask = r.u64();
        entry.dirtyMask = r.u64();
        if (!cache_.emplace(addr, entry).second) {
            r.fail(Errc::Corrupt,
                   "MTC checkpoint repeats a resident block");
            return;
        }
        order_.insert({nu, addr});
    }

    r.leaveSection();
}

MinCacheStats
runMinCache(const Trace &trace, const MinCacheConfig &config)
{
    return MinCacheSim(trace, config).run();
}

void
publishMinCacheStats(StatsGroup &group, const MinCacheStats &stats)
{
    auto &accesses = group.addCounter(
        "accesses", "references presented to the MTC", "refs");
    accesses.set(stats.accesses);
    group.addCounter("hits", "MIN-cache hits", "refs")
        .set(stats.hits);
    auto &misses =
        group.addCounter("misses", "MIN-cache misses", "refs");
    misses.set(stats.misses);
    group.addCounter("bypasses",
                     "misses serviced without caching (footnote 2)",
                     "refs")
        .set(stats.bypasses);
    group.addCounter("validates",
                     "write-validate allocations without a fetch",
                     "events")
        .set(stats.validates);
    group.addRatio("miss_rate", "misses / accesses", misses,
                   accesses);

    StatsGroup bytes = group.group("bytes");
    auto &request = bytes.addCounter(
        "request", "traffic above the MTC (D_0)", "bytes");
    request.set(stats.requestBytes);
    bytes.addCounter("fetch", "fills and bypass load transfers",
                     "bytes")
        .set(stats.fetchBytes);
    bytes.addCounter("writeback",
                     "dirty evictions and bypassed stores", "bytes")
        .set(stats.writebackBytes);
    bytes.addCounter("flush_writeback", "end-of-run dirty flush",
                     "bytes")
        .set(stats.flushWritebackBytes);
    auto &below = bytes.addCounter(
        "below", "minimal traffic below the cache", "bytes");
    below.set(stats.trafficBelow());
    group.addRatio("traffic_ratio",
                   "minimal R = bytes.below / bytes.request", below,
                   request);
}

MinCacheConfig
canonicalMtc(Bytes size)
{
    MinCacheConfig config;
    config.size = size;
    config.blockBytes = wordBytes;
    config.alloc = AllocPolicy::WriteValidate;
    config.allowBypass = true;
    return config;
}

} // namespace membw
