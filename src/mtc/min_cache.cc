#include "mtc/min_cache.hh"

#include <bit>
#include <cassert>

#include "common/bitops.hh"
#include "common/log.hh"
#include "mtc/next_use.hh"
#include "obs/registry.hh"

namespace membw {

void
MinCacheConfig::validate() const
{
    if (blockBytes < wordBytes || !isPowerOfTwo(blockBytes))
        fatal("MTC block size must be a power of two >= 4B");
    if (blockBytes > 64 * wordBytes)
        fatal("MTC block size above 256B is unsupported");
    if (size == 0 || size % blockBytes != 0)
        fatal("MTC size must be a non-zero multiple of the block");
    if (alloc == AllocPolicy::WriteNoAllocate)
        fatal("MTC does not support write-no-allocate");
}

std::string
MinCacheConfig::describe() const
{
    return formatSize(size) + "/full/" + formatSize(blockBytes) +
           " MIN-" + toString(alloc) + (allowBypass ? "+bypass" : "");
}

MinCacheSim::MinCacheSim(const Trace &trace, const MinCacheConfig &config)
    : trace_(trace), config_(config)
{
    config_.validate();
    nextUse_ = buildNextUse(trace_, config_.blockBytes);
}

Bytes
MinCacheSim::writebackSize(const Entry &entry) const
{
    if (entry.dirtyMask == 0)
        return 0;
    if (config_.alloc == AllocPolicy::WriteValidate)
        return static_cast<Bytes>(std::popcount(entry.dirtyMask)) *
               wordBytes;
    return config_.blockBytes;
}

MinCacheStats
MinCacheSim::run()
{
    const Bytes block_bytes = config_.blockBytes;
    const unsigned words_per_block =
        static_cast<unsigned>(block_bytes / wordBytes);
    const std::uint64_t full_mask =
        words_per_block == 64
            ? ~std::uint64_t{0}
            : (std::uint64_t{1} << words_per_block) - 1;
    const unsigned capacity = config_.blocks();

    MinCacheStats stats;
    std::unordered_map<Addr, Entry> cache;
    cache.reserve(capacity * 2);
    // Replacement order: victim is the entry whose next use is
    // furthest in the future, i.e. the largest (nextUse, addr) pair.
    std::set<std::pair<Tick, Addr>> order;

    auto words_mask = [&](Addr addr, Bytes size, Addr block) {
        const unsigned first =
            static_cast<unsigned>((addr - block) / wordBytes);
        const unsigned last = static_cast<unsigned>(
            (addr + size - 1 - block) / wordBytes);
        std::uint64_t mask = 0;
        for (unsigned w = first; w <= last; ++w)
            mask |= std::uint64_t{1} << w;
        return mask;
    };

    for (std::size_t i = 0; i < trace_.size(); ++i) {
        const MemRef &ref = trace_[i];
        const Addr block = alignDown(ref.addr, block_bytes);
        if (alignDown(ref.addr + ref.size - 1, block_bytes) != block)
            fatal("MTC reference spans a block boundary");

        const std::uint64_t words =
            words_mask(ref.addr, ref.size, block);
        const Tick nu = nextUse_[i];

        stats.accesses++;
        stats.requestBytes += ref.size;

        auto it = cache.find(block);
        if (it != cache.end()) {
            // Hit: re-key the replacement order with the new next use.
            Entry &entry = it->second;
            order.erase({entry.nextUse, block});
            entry.nextUse = nu;
            order.insert({nu, block});

            if (ref.isLoad()) {
                const std::uint64_t missing =
                    words & ~entry.validMask;
                if (missing) {
                    const Bytes bytes =
                        static_cast<Bytes>(std::popcount(missing)) *
                        wordBytes;
                    stats.fetchBytes += bytes;
                    entry.validMask |= missing;
                }
            } else {
                entry.validMask |= words;
                entry.dirtyMask |= words;
            }
            stats.hits++;
            continue;
        }

        stats.misses++;

        if (cache.size() == capacity) {
            auto victim_it = std::prev(order.end());
            const Tick victim_next = victim_it->first;

            if (config_.writeAware && victim_next == tickInfinity) {
                // Scan the never-referenced-again candidates for a
                // clean one; evicting it saves a write-back without
                // adding any future miss.
                auto scan = victim_it;
                for (unsigned n = 0; n < 32; ++n) {
                    if (scan->first != tickInfinity)
                        break;
                    auto entry = cache.find(scan->second);
                    assert(entry != cache.end());
                    if (entry->second.dirtyMask == 0) {
                        victim_it = scan;
                        break;
                    }
                    if (scan == order.begin())
                        break;
                    --scan;
                }
            }

            if (config_.allowBypass && nu > victim_next) {
                // The incoming block is the lowest-priority block:
                // service the request without caching it.
                stats.bypasses++;
                if (ref.isLoad())
                    stats.fetchBytes += ref.size;
                else
                    stats.writebackBytes += ref.size;
                continue;
            }

            // Evict the furthest-referenced resident block.
            const Addr victim_addr = victim_it->second;
            auto victim = cache.find(victim_addr);
            assert(victim != cache.end());
            stats.writebackBytes += writebackSize(victim->second);
            cache.erase(victim);
            order.erase(victim_it);
        }

        Entry entry;
        entry.nextUse = nu;
        if (ref.isLoad()) {
            entry.validMask = full_mask;
            stats.fetchBytes += block_bytes;
        } else if (config_.alloc == AllocPolicy::WriteAllocate) {
            entry.validMask = full_mask;
            entry.dirtyMask = words;
            stats.fetchBytes += block_bytes;
        } else { // WriteValidate: allocate without fetching.
            entry.validMask = words;
            entry.dirtyMask = words;
            stats.validates++;
        }
        cache.emplace(block, entry);
        order.insert({nu, block});
    }

    // Program completion: flush all dirty data (Section 4.1).
    for (const auto &[addr, entry] : cache)
        stats.flushWritebackBytes += writebackSize(entry);

    return stats;
}

MinCacheStats
runMinCache(const Trace &trace, const MinCacheConfig &config)
{
    return MinCacheSim(trace, config).run();
}

void
publishMinCacheStats(StatsGroup &group, const MinCacheStats &stats)
{
    auto &accesses = group.addCounter(
        "accesses", "references presented to the MTC", "refs");
    accesses.set(stats.accesses);
    group.addCounter("hits", "MIN-cache hits", "refs")
        .set(stats.hits);
    auto &misses =
        group.addCounter("misses", "MIN-cache misses", "refs");
    misses.set(stats.misses);
    group.addCounter("bypasses",
                     "misses serviced without caching (footnote 2)",
                     "refs")
        .set(stats.bypasses);
    group.addCounter("validates",
                     "write-validate allocations without a fetch",
                     "events")
        .set(stats.validates);
    group.addRatio("miss_rate", "misses / accesses", misses,
                   accesses);

    StatsGroup bytes = group.group("bytes");
    auto &request = bytes.addCounter(
        "request", "traffic above the MTC (D_0)", "bytes");
    request.set(stats.requestBytes);
    bytes.addCounter("fetch", "fills and bypass load transfers",
                     "bytes")
        .set(stats.fetchBytes);
    bytes.addCounter("writeback",
                     "dirty evictions and bypassed stores", "bytes")
        .set(stats.writebackBytes);
    bytes.addCounter("flush_writeback", "end-of-run dirty flush",
                     "bytes")
        .set(stats.flushWritebackBytes);
    auto &below = bytes.addCounter(
        "below", "minimal traffic below the cache", "bytes");
    below.set(stats.trafficBelow());
    group.addRatio("traffic_ratio",
                   "minimal R = bytes.below / bytes.request", below,
                   request);
}

MinCacheConfig
canonicalMtc(Bytes size)
{
    MinCacheConfig config;
    config.size = size;
    config.blockBytes = wordBytes;
    config.alloc = AllocPolicy::WriteValidate;
    config.allowBypass = true;
    return config;
}

} // namespace membw
