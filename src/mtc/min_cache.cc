#include "mtc/min_cache.hh"

#include <algorithm>
#include <array>
#include <bit>
#include <cassert>

#include "common/bitops.hh"
#include "common/log.hh"
#include "mtc/next_use.hh"
#include "obs/registry.hh"
#include "obs/trace_span.hh"
#include "resilience/checkpoint.hh"

namespace membw {

void
MinCacheConfig::validate() const
{
    if (blockBytes < wordBytes || !isPowerOfTwo(blockBytes))
        fatal("MTC block size must be a power of two >= 4B");
    if (blockBytes > 64 * wordBytes)
        fatal("MTC block size above 256B is unsupported");
    if (size == 0 || size % blockBytes != 0)
        fatal("MTC size must be a non-zero multiple of the block");
    if (alloc == AllocPolicy::WriteNoAllocate)
        fatal("MTC does not support write-no-allocate");
}

std::string
MinCacheConfig::describe() const
{
    return formatSize(size) + "/full/" + formatSize(blockBytes) +
           " MIN-" + toString(alloc) + (allowBypass ? "+bypass" : "");
}

MinCacheSim::MinCacheSim(const Trace &trace, const MinCacheConfig &config)
    : MinCacheSim(trace, config,
                  makeNextUseTable(trace, config.blockBytes))
{
}

MinCacheSim::MinCacheSim(const Trace &trace, const MinCacheConfig &config,
                         NextUseTable nextUse)
    : trace_(trace), config_(config), nextUse_(std::move(nextUse))
{
    config_.validate();
    if (!nextUse_ || nextUse_->size() != trace_.size())
        fatal("MTC shared next-use table does not match the trace");

    const unsigned words_per_block =
        static_cast<unsigned>(config_.blockBytes / wordBytes);
    fullMask_ = words_per_block == 64
                    ? ~std::uint64_t{0}
                    : (std::uint64_t{1} << words_per_block) - 1;
    capacity_ = config_.blocks();
    resetResident();
}

Bytes
MinCacheSim::writebackSize(const Slot &slot) const
{
    if (slot.dirtyMask == 0)
        return 0;
    if (config_.alloc == AllocPolicy::WriteValidate)
        return static_cast<Bytes>(std::popcount(slot.dirtyMask)) *
               wordBytes;
    return config_.blockBytes;
}

void
MinCacheSim::resetResident()
{
    slots_.clear();
    // Residency is bounded by both the capacity and the number of
    // distinct blocks the trace can touch (the pool still grows on
    // demand if a restore exceeds the estimate).
    slots_.reserve(std::min<std::size_t>(capacity_, trace_.size()));
    freeList_.clear();
    resident_ = 0;
    nuBits_.init(trace_.size());
    nuOwner_.assign(trace_.size(), 0);
    infHeap_.clear();
}

std::uint32_t
MinCacheSim::allocSlot()
{
    std::uint32_t i;
    if (!freeList_.empty()) {
        i = freeList_.back();
        freeList_.pop_back();
    } else {
        i = static_cast<std::uint32_t>(slots_.size());
        slots_.emplace_back();
    }
    slots_[i] = Slot{};
    slots_[i].used = true;
    resident_++;
    return i;
}

void
MinCacheSim::freeSlot(std::uint32_t i)
{
    slots_[i].used = false;
    freeList_.push_back(i);
    resident_--;
}

void
MinCacheSim::MaxBitmap::init(std::size_t bits)
{
    levels_.clear();
    std::size_t words = (bits + 63) / 64;
    if (words == 0)
        words = 1;
    for (;;) {
        levels_.emplace_back(words, 0);
        if (words == 1)
            break;
        words = (words + 63) / 64;
    }
}

void
MinCacheSim::MaxBitmap::set(std::size_t i)
{
    for (auto &level : levels_) {
        level[i >> 6] |= std::uint64_t{1} << (i & 63);
        i >>= 6;
    }
}

void
MinCacheSim::MaxBitmap::clear(std::size_t i)
{
    for (auto &level : levels_) {
        std::uint64_t &word = level[i >> 6];
        word &= ~(std::uint64_t{1} << (i & 63));
        if (word != 0)
            break;
        i >>= 6;
    }
}

bool
MinCacheSim::MaxBitmap::test(std::size_t i) const
{
    return levels_[0][i >> 6] & (std::uint64_t{1} << (i & 63));
}

bool
MinCacheSim::MaxBitmap::findMax(std::size_t &out) const
{
    if (levels_.back()[0] == 0)
        return false;
    std::size_t i = 0;
    for (std::size_t l = levels_.size(); l-- > 0;) {
        const std::uint64_t word = levels_[l][i];
        i = (i << 6) +
            (63 - static_cast<std::size_t>(std::countl_zero(word)));
    }
    out = i;
    return true;
}

void
MinCacheSim::keyInsert(Tick nu, Addr addr, std::uint32_t slot)
{
    if (nu == tickInfinity) {
        infHeap_.emplace_back(addr, slot);
        std::push_heap(infHeap_.begin(), infHeap_.end());
    } else {
        nuBits_.set(static_cast<std::size_t>(nu));
        nuOwner_[static_cast<std::size_t>(nu)] = slot;
    }
}

void
MinCacheSim::accessOne(const MemRef &ref, Tick nu)
{
    const Bytes block_bytes = config_.blockBytes;
    const Addr block = alignDown(ref.addr, block_bytes);
    if (alignDown(ref.addr + ref.size - 1, block_bytes) != block)
        fatal("MTC reference spans a block boundary");

    auto words_mask = [&] {
        const unsigned first =
            static_cast<unsigned>((ref.addr - block) / wordBytes);
        const unsigned last = static_cast<unsigned>(
            (ref.addr + ref.size - 1 - block) / wordBytes);
        std::uint64_t mask = 0;
        for (unsigned w = first; w <= last; ++w)
            mask |= std::uint64_t{1} << w;
        return mask;
    };
    const std::uint64_t words = words_mask();

    stats_.accesses++;
    stats_.requestBytes += ref.size;

    // Residency test without a lookup: the current position is, by
    // construction, the recorded next use of the block it references
    // — so the reference hits iff the victim-order bit for this very
    // tick is set, and nuOwner_ names the resident copy.
    if (nuBits_.test(cursor_)) {
        const std::uint32_t idx = nuOwner_[cursor_];
        Slot &entry = slots_[idx];
        assert(entry.used && entry.addr == block &&
               entry.nextUse == static_cast<Tick>(cursor_));
        nuBits_.clear(cursor_);
        entry.nextUse = nu;
        keyInsert(nu, block, idx);

        if (ref.isLoad()) {
            const std::uint64_t missing = words & ~entry.validMask;
            if (missing) {
                const Bytes bytes =
                    static_cast<Bytes>(std::popcount(missing)) *
                    wordBytes;
                stats_.fetchBytes += bytes;
                entry.validMask |= missing;
            }
        } else {
            entry.validMask |= words;
            entry.dirtyMask |= words;
        }
        stats_.hits++;
        return;
    }

    stats_.misses++;

    if (resident_ == capacity_) {
        // The furthest-referenced resident block: any
        // never-referenced-again block outranks every finite key,
        // with the highest address first among them (the ordered-set
        // tie-break); otherwise the owner of the highest finite tick.
        std::size_t max_nu = 0;
        if (infHeap_.empty()) {
            const bool any = nuBits_.findMax(max_nu);
            assert(any);
            (void)any;
        }
        const Tick victim_next = infHeap_.empty()
                                     ? static_cast<Tick>(max_nu)
                                     : tickInfinity;

        if (config_.allowBypass && nu > victim_next) {
            // The incoming block is the lowest-priority block:
            // service the request without caching it.
            stats_.bypasses++;
            if (ref.isLoad())
                stats_.fetchBytes += ref.size;
            else
                stats_.writebackBytes += ref.size;
            return;
        }

        std::uint32_t victim;
        if (!infHeap_.empty()) {
            // Pop the victim — and, for the write-aware scan, up to
            // 31 runners-up in descending address order, looking for
            // a clean block whose eviction saves a write-back
            // without adding any future miss.  Candidates not
            // chosen are pushed back.
            std::pair<Addr, std::uint32_t> cand[32];
            std::size_t popped = 0;
            std::size_t chosen = 0;
            const std::size_t limit = config_.writeAware ? 32 : 1;
            while (popped < limit && !infHeap_.empty()) {
                std::pop_heap(infHeap_.begin(), infHeap_.end());
                cand[popped] = infHeap_.back();
                infHeap_.pop_back();
                const bool clean =
                    slots_[cand[popped].second].dirtyMask == 0;
                popped++;
                if (clean) {
                    chosen = popped - 1;
                    break;
                }
            }
            victim = cand[chosen].second;
            victimScanPops_ += popped;
            MEMBW_PROBE(probe_, onMtcScan(popped));
            for (std::size_t k = 0; k < popped; ++k) {
                if (k == chosen)
                    continue;
                infHeap_.push_back(cand[k]);
                std::push_heap(infHeap_.begin(), infHeap_.end());
            }
        } else {
            victim = nuOwner_[max_nu];
            nuBits_.clear(max_nu);
        }

        stats_.writebackBytes += writebackSize(slots_[victim]);
        freeSlot(victim);
    }

    const std::uint32_t idx = allocSlot();
    Slot &entry = slots_[idx];
    entry.addr = block;
    entry.nextUse = nu;
    if (ref.isLoad()) {
        entry.validMask = fullMask_;
        stats_.fetchBytes += config_.blockBytes;
    } else if (config_.alloc == AllocPolicy::WriteAllocate) {
        entry.validMask = fullMask_;
        entry.dirtyMask = words;
        stats_.fetchBytes += config_.blockBytes;
    } else { // WriteValidate: allocate without fetching.
        entry.validMask = words;
        entry.dirtyMask = words;
        stats_.validates++;
    }
    keyInsert(nu, block, idx);
}

void
MinCacheSim::step(std::size_t n)
{
    MEMBW_SPAN("mtc.step");
    const std::size_t end =
        cursor_ + std::min(n, trace_.size() - cursor_);
    const std::vector<Tick> &nextUse = *nextUse_;
    for (; cursor_ < end; ++cursor_)
        accessOne(trace_[cursor_], nextUse[cursor_]);
    tracingCounter("mtc.victim_scan_pops",
                   static_cast<double>(victimScanPops_));
}

MinCacheStats
MinCacheSim::finalize() const
{
    // Program completion: flush all dirty data (Section 4.1).
    MinCacheStats stats = stats_;
    for (const Slot &slot : slots_)
        if (slot.used)
            stats.flushWritebackBytes += writebackSize(slot);
    return stats;
}

MinCacheStats
MinCacheSim::run()
{
    step(trace_.size() - cursor_);
    return finalize();
}

void
MinCacheSim::saveState(ChkWriter &w) const
{
    w.beginSection(chkTag("MTCS"));

    // Identity guard: the checkpoint only restores over the same
    // trace and configuration.
    w.u64(config_.size);
    w.u64(config_.blockBytes);
    w.u8(static_cast<std::uint8_t>(config_.alloc));
    w.u8(config_.allowBypass ? 1 : 0);
    w.u8(config_.writeAware ? 1 : 0);
    w.u64(trace_.size());

    w.u64(cursor_);
    w.u64(stats_.accesses);
    w.u64(stats_.hits);
    w.u64(stats_.misses);
    w.u64(stats_.bypasses);
    w.u64(stats_.validates);
    w.u64(stats_.requestBytes);
    w.u64(stats_.fetchBytes);
    w.u64(stats_.writebackBytes);
    w.u64(stats_.flushWritebackBytes);
    w.u64(victimScanPops_);

    // Resident set sorted by (nextUse, addr): the image is
    // deterministic (and matches what the earlier ordered-set
    // implementation wrote) even though neither backing container
    // iterates in that order.
    std::vector<std::array<std::uint64_t, 4>> rows;
    rows.reserve(resident_);
    for (const Slot &slot : slots_)
        if (slot.used)
            rows.push_back({slot.nextUse, slot.addr, slot.validMask,
                            slot.dirtyMask});
    std::sort(rows.begin(), rows.end());
    w.u64(rows.size());
    for (const auto &row : rows)
        for (const std::uint64_t v : row)
            w.u64(v);

    w.endSection();
}

void
MinCacheSim::loadState(ChkReader &r)
{
    r.enterSection(chkTag("MTCS"));

    const std::uint64_t size = r.u64();
    const std::uint64_t block = r.u64();
    const std::uint8_t alloc = r.u8();
    const std::uint8_t bypass = r.u8();
    const std::uint8_t aware = r.u8();
    const std::uint64_t refs = r.u64();
    if (r.failed())
        return;
    if (size != config_.size || block != config_.blockBytes ||
        alloc != static_cast<std::uint8_t>(config_.alloc) ||
        bypass != (config_.allowBypass ? 1 : 0) ||
        aware != (config_.writeAware ? 1 : 0)) {
        r.fail(Errc::Mismatch,
               "MTC checkpoint was taken with a different "
               "configuration (" +
                   config_.describe() + " expected)");
        return;
    }
    if (refs != trace_.size()) {
        r.fail(Errc::Mismatch,
               "MTC checkpoint covers a " + std::to_string(refs) +
                   "-reference trace; this trace has " +
                   std::to_string(trace_.size()));
        return;
    }

    cursor_ = static_cast<std::size_t>(r.u64());
    stats_ = MinCacheStats{};
    stats_.accesses = r.u64();
    stats_.hits = r.u64();
    stats_.misses = r.u64();
    stats_.bypasses = r.u64();
    stats_.validates = r.u64();
    stats_.requestBytes = r.u64();
    stats_.fetchBytes = r.u64();
    stats_.writebackBytes = r.u64();
    stats_.flushWritebackBytes = r.u64();
    victimScanPops_ = r.u64();
    if (cursor_ > trace_.size()) {
        r.fail(Errc::Corrupt,
               "MTC cursor lies beyond the end of the trace");
        return;
    }

    const std::uint64_t resident = r.u64();
    if (r.failed())
        return;
    if (resident > capacity_ || resident > r.remaining() / 32) {
        r.fail(Errc::Corrupt,
               "MTC resident count " + std::to_string(resident) +
                   " exceeds the cache capacity");
        return;
    }
    resetResident();
    std::vector<Addr> seen;
    seen.reserve(static_cast<std::size_t>(resident));
    for (std::uint64_t i = 0; i < resident && !r.failed(); ++i) {
        const Tick nu = r.u64();
        const Addr addr = r.u64();
        const std::uint64_t valid = r.u64();
        const std::uint64_t dirty = r.u64();
        // The victim-order structures rely on finite next uses being
        // in-range and unique (position t references one block);
        // anything else is not a state this simulation can produce.
        if (nu != tickInfinity &&
            (nu >= trace_.size() ||
             nuBits_.test(static_cast<std::size_t>(nu)))) {
            r.fail(Errc::Corrupt,
                   "MTC checkpoint has an invalid next-use key");
            return;
        }
        const std::uint32_t idx = allocSlot();
        Slot &slot = slots_[idx];
        slot.addr = addr;
        slot.nextUse = nu;
        slot.validMask = valid;
        slot.dirtyMask = dirty;
        keyInsert(nu, addr, idx);
        seen.push_back(addr);
    }
    std::sort(seen.begin(), seen.end());
    if (std::adjacent_find(seen.begin(), seen.end()) != seen.end()) {
        r.fail(Errc::Corrupt,
               "MTC checkpoint repeats a resident block");
        return;
    }

    r.leaveSection();
}

MinCacheStats
runMinCache(const Trace &trace, const MinCacheConfig &config)
{
    return MinCacheSim(trace, config).run();
}

MinCacheStats
runMinCache(const Trace &trace, const MinCacheConfig &config,
            NextUseTable nextUse)
{
    return MinCacheSim(trace, config, std::move(nextUse)).run();
}

void
publishMinCacheStats(StatsGroup &group, const MinCacheStats &stats)
{
    auto &accesses = group.addCounter(
        "accesses", "references presented to the MTC", "refs");
    accesses.set(stats.accesses);
    group.addCounter("hits", "MIN-cache hits", "refs")
        .set(stats.hits);
    auto &misses =
        group.addCounter("misses", "MIN-cache misses", "refs");
    misses.set(stats.misses);
    group.addCounter("bypasses",
                     "misses serviced without caching (footnote 2)",
                     "refs")
        .set(stats.bypasses);
    group.addCounter("validates",
                     "write-validate allocations without a fetch",
                     "events")
        .set(stats.validates);
    group.addRatio("miss_rate", "misses / accesses", misses,
                   accesses);

    StatsGroup bytes = group.group("bytes");
    auto &request = bytes.addCounter(
        "request", "traffic above the MTC (D_0)", "bytes");
    request.set(stats.requestBytes);
    bytes.addCounter("fetch", "fills and bypass load transfers",
                     "bytes")
        .set(stats.fetchBytes);
    bytes.addCounter("writeback",
                     "dirty evictions and bypassed stores", "bytes")
        .set(stats.writebackBytes);
    bytes.addCounter("flush_writeback", "end-of-run dirty flush",
                     "bytes")
        .set(stats.flushWritebackBytes);
    auto &below = bytes.addCounter(
        "below", "minimal traffic below the cache", "bytes");
    below.set(stats.trafficBelow());
    group.addRatio("traffic_ratio",
                   "minimal R = bytes.below / bytes.request", below,
                   request);
}

MinCacheConfig
canonicalMtc(Bytes size)
{
    MinCacheConfig config;
    config.size = size;
    config.blockBytes = wordBytes;
    config.alloc = AllocPolicy::WriteValidate;
    config.allowBypass = true;
    return config;
}

} // namespace membw
