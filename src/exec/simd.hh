/**
 * @file
 * Runtime-dispatched SIMD tag probes for the ladder sweep kernels.
 *
 * The hot operation of the one-pass ladder kernel is an associative
 * probe: compare up to `ways` 64-bit tags of one set against a block
 * number and report the first match.  The probes here evaluate those
 * compares lane-parallel — four tags per AVX2 compare (so an 8-way
 * set is two vector compares), two per SSE2 compare — and reduce the
 * compare mask with a count-trailing-zeros, which yields the *lowest*
 * matching way.  That matters for exactness: the scalar kernel's
 * linear scan also takes the lowest match (real tags are unique
 * within a set, but the invalid-tag scan that victim selection runs
 * must pick the first free way), so every probe returns bit-identical
 * way indices and the SIMD kernels stay counter-identical to the
 * scalar one.
 *
 * Tier selection is a runtime decision (one cpuid-backed check,
 * cached): binaries built with MEMBW_SIMD carry every tier and pick
 * the widest one the host supports, clamped down by the MEMBW_SIMD
 * environment variable (scalar|sse2|avx2) for A/B testing.  Builds
 * with -DMEMBW_SIMD=OFF, or on non-x86 targets, compile the scalar
 * probe only and simdTier() always reports Scalar.
 *
 * docs/performance.md#simd-dispatch-tiers documents the tier table.
 */

#ifndef MEMBW_EXEC_SIMD_HH
#define MEMBW_EXEC_SIMD_HH

#include <cstdint>

#if defined(MEMBW_SIMD_ENABLED) && \
    (defined(__x86_64__) || defined(__i386__)) && \
    (defined(__GNUC__) || defined(__clang__))
#define MEMBW_SIMD_X86 1
#include <immintrin.h>
#else
#define MEMBW_SIMD_X86 0
#endif

namespace membw {

/** Widest vector tier a kernel may use, in ascending order. */
enum class SimdTier : std::uint8_t
{
    Scalar = 0, ///< portable linear scan
    Sse2 = 1,   ///< 2 tags per 128-bit compare (x86-64 baseline)
    Avx2 = 2,   ///< 4 tags per 256-bit compare
};

/** Stable lowercase name for reports and logs. */
const char *simdTierName(SimdTier tier);

/**
 * The widest tier this host supports (cached after the first call),
 * clamped down by the MEMBW_SIMD environment variable when set to
 * scalar, sse2, or avx2.  Scalar-only builds always return Scalar.
 */
SimdTier simdTier();

/** min(requested, simdTier()) — kernels never run above the host. */
SimdTier clampSimdTier(SimdTier requested);

/**
 * Probe functors.  find(tags, n, key) returns the lowest w < n with
 * tags[w] == key, or n when absent.  All three are exact-equivalent;
 * they differ only in how many compares retire per step.
 */
struct ScalarProbe
{
    static inline unsigned
    find(const std::uint64_t *tags, unsigned n, std::uint64_t key)
    {
        for (unsigned w = 0; w < n; ++w)
            if (tags[w] == key)
                return w;
        return n;
    }
};

#if MEMBW_SIMD_X86

struct Sse2Probe
{
    /**
     * SSE2 has no 64-bit compare, so equality is two 32-bit halves
     * ANDed after a lane swap — still one movemask per two tags.
     * Odd trailing ways fall back to the scalar scan.
     */
    static inline unsigned
    find(const std::uint64_t *tags, unsigned n, std::uint64_t key)
    {
        const __m128i k =
            _mm_set1_epi64x(static_cast<long long>(key));
        unsigned w = 0;
        for (; w + 2 <= n; w += 2) {
            const __m128i v = _mm_loadu_si128(
                reinterpret_cast<const __m128i *>(tags + w));
            const __m128i eq = _mm_cmpeq_epi32(v, k);
            const __m128i swapped =
                _mm_shuffle_epi32(eq, _MM_SHUFFLE(2, 3, 0, 1));
            const int m = _mm_movemask_pd(_mm_castsi128_pd(
                _mm_and_si128(eq, swapped)));
            if (m)
                return w + static_cast<unsigned>(
                               __builtin_ctz(static_cast<unsigned>(m)));
        }
        for (; w < n; ++w)
            if (tags[w] == key)
                return w;
        return n;
    }
};

struct Avx2Probe
{
    __attribute__((target("avx2"))) static inline unsigned
    find(const std::uint64_t *tags, unsigned n, std::uint64_t key)
    {
        const __m256i k =
            _mm256_set1_epi64x(static_cast<long long>(key));
        unsigned w = 0;
        for (; w + 4 <= n; w += 4) {
            const __m256i v = _mm256_loadu_si256(
                reinterpret_cast<const __m256i *>(tags + w));
            const int m = _mm256_movemask_pd(_mm256_castsi256_pd(
                _mm256_cmpeq_epi64(v, k)));
            if (m)
                return w + static_cast<unsigned>(
                               __builtin_ctz(static_cast<unsigned>(m)));
        }
        for (; w < n; ++w)
            if (tags[w] == key)
                return w;
        return n;
    }
};

#endif // MEMBW_SIMD_X86

} // namespace membw

#endif // MEMBW_EXEC_SIMD_HH
