#include "exec/time_partition.hh"

#include <algorithm>
#include <string>
#include <thread>

#include "common/log.hh"
#include "exec/ladder_kernel.hh"
#include "exec/ladder_sweep.hh"
#include "exec/parallel_sweep.hh"
#include "obs/trace_span.hh"

namespace membw {

namespace {

/** One (config, set-range) work unit of a partitioned sweep. */
struct PartCell
{
    std::size_t cfg = 0;
    std::uint64_t setLo = 0;
    std::uint64_t setSpan = 0;
};

} // namespace

unsigned
partitionPartsFor(const CacheConfig &cfg, unsigned jobs,
                  unsigned parts, std::size_t configCount)
{
    unsigned p = parts;
    if (p == 0) {
        // Derive: enough parts per config that the *effective*
        // workers have work even when few configs exist (1 config ->
        // jobs parts; >= jobs configs -> cross-config parallelism
        // suffices).  Every part rescans the whole stream, so parts
        // beyond the host's hardware threads are pure replay
        // overhead — the derivation clamps to hardware concurrency.
        // Explicit `parts` is honored untouched (results are
        // byte-identical at ANY count; the equivalence tests sweep
        // it directly).
        const unsigned hw = std::max(
            1u, std::thread::hardware_concurrency());
        const unsigned eff = std::min(std::max(jobs, 1u), hw);
        const std::size_t k = std::max<std::size_t>(configCount, 1);
        p = static_cast<unsigned>((eff + k - 1) / k);
    }
    const std::uint64_t sets = cfg.sets();
    if (p > sets)
        p = static_cast<unsigned>(sets);
    return std::max(p, 1u);
}

std::optional<std::vector<TrafficResult>>
partitionedLadderSweep(const BlockStream &stream,
                       const std::vector<CacheConfig> &configs,
                       const PartitionOptions &opts)
{
    if (!ladderCollapsible(stream, configs))
        fatal("partitionedLadderSweep: configs are outside the "
              "one-pass regime (check ladderCollapsible first)");

    // Lay out the cell list: each config contributes its own
    // (possibly clamped) number of contiguous set ranges, remainder
    // sets spread over the leading parts.
    std::vector<PartCell> cells;
    std::vector<unsigned> partsPerCfg(configs.size(), 1);
    for (std::size_t j = 0; j < configs.size(); ++j) {
        const unsigned p = partitionPartsFor(
            configs[j], opts.jobs, opts.parts, configs.size());
        partsPerCfg[j] = p;
        const std::uint64_t sets = configs[j].sets();
        const std::uint64_t span = sets / p;
        const std::uint64_t rem = sets % p;
        std::uint64_t lo = 0;
        for (unsigned part = 0; part < p; ++part) {
            const std::uint64_t s = span + (part < rem ? 1 : 0);
            cells.push_back(PartCell{j, lo, s});
            lo += s;
        }
    }

    MEMBW_SPAN_D("time_partition.sweep",
                 "configs=" + std::to_string(configs.size()) +
                     " cells=" + std::to_string(cells.size()) +
                     " jobs=" + std::to_string(opts.jobs));

    SweepOptions sweep;
    sweep.jobs = opts.jobs;
    sweep.cancel = opts.cancel;
    SweepResult<CacheStats> run = parallelSweep(
        cells.size(), sweep, [&](std::size_t i) {
            const PartCell &cell = cells[i];
            const CacheConfig &cfg = configs[cell.cfg];
            const bool filtered =
                cell.setSpan != cfg.sets();
            ladder::ConfigSim sim(cfg, cell.setLo, cell.setSpan);
            sim.kernel = ladder::selectKernel(sim.ways, opts.tier,
                                              sim.masked, filtered);
            // One sim per cell: no per-chunk locality to exploit,
            // so replay the whole stream in one call.
            sim.kernel(sim, stream, 0, stream.refs);
            sim.flush();
            return sim.stats;
        });
    if (run.interrupted)
        return std::nullopt;

    // Merge in part order (integer sums — order-independent, kept
    // deterministic anyway) and apply the stream totals.
    std::vector<TrafficResult> out;
    out.reserve(configs.size());
    std::size_t next = 0;
    for (std::size_t j = 0; j < configs.size(); ++j) {
        CacheStats merged;
        for (unsigned part = 0; part < partsPerCfg[j]; ++part)
            ladder::mergeStats(merged, run.cells[next++]);
        out.push_back(ladder::ladderTraffic(stream, merged));
    }
    return out;
}

std::optional<TrafficResult>
partitionedLadderRun(const BlockStream &stream, const CacheConfig &cfg,
                     const PartitionOptions &opts)
{
    std::vector<CacheConfig> configs{cfg};
    auto results = partitionedLadderSweep(stream, configs, opts);
    if (!results)
        return std::nullopt;
    return std::move(results->front());
}

WordRunOutcome
partitionedLadderRunWord(const Trace &trace, const CacheConfig &cfg,
                         const PartitionOptions &opts,
                         TrafficResult &result)
{
    if (!ladderKernelSupported(cfg))
        fatal("partitionedLadderRunWord: config outside the ladder "
              "regime (check ladderKernelSupported() first)");

    const unsigned p = partitionPartsFor(cfg, opts.jobs, opts.parts, 1);
    const std::uint64_t sets = cfg.sets();
    const std::uint64_t span = sets / p;
    const std::uint64_t rem = sets % p;
    std::vector<PartCell> cells;
    std::uint64_t lo = 0;
    for (unsigned part = 0; part < p; ++part) {
        const std::uint64_t s = span + (part < rem ? 1 : 0);
        cells.push_back(PartCell{0, lo, s});
        lo += s;
    }

    MEMBW_SPAN_D("time_partition.word_run",
                 "cells=" + std::to_string(cells.size()) +
                     " jobs=" + std::to_string(opts.jobs));

    // The validating kernels count hits+misses (= owned references)
    // and stores per worker; since set partitioning assigns every
    // reference to exactly one worker, the sums reconstruct the trace
    // totals with no separate scan.
    struct WordCell
    {
        CacheStats stats;
        bool ok = true;
    };
    SweepOptions sweep;
    sweep.jobs = opts.jobs;
    sweep.cancel = opts.cancel;
    SweepResult<WordCell> run = parallelSweep(
        cells.size(), sweep, [&](std::size_t i) {
            const PartCell &cell = cells[i];
            const bool filtered = cell.setSpan != sets;
            ladder::ConfigSim sim(cfg, cell.setLo, cell.setSpan);
            const ladder::WordKernel kernel = ladder::selectWordKernel(
                sim.ways, opts.tier, sim.masked, filtered);
            WordCell out;
            out.ok = kernel(sim, trace.data(), 0, trace.size());
            if (out.ok)
                sim.flush();
            out.stats = sim.stats;
            return out;
        });
    if (run.interrupted)
        return WordRunOutcome::Interrupted;
    for (const WordCell &cell : run.cells)
        if (!cell.ok)
            return WordRunOutcome::NotAllWord;

    CacheStats merged;
    for (const WordCell &cell : run.cells)
        ladder::mergeStats(merged, cell.stats);
    const std::uint64_t refs = merged.hits + merged.misses;
    const std::uint64_t stores = merged.stores;
    result = ladder::ladderTraffic(
        static_cast<std::size_t>(refs), refs - stores, stores,
        static_cast<std::uint64_t>(refs) * wordBytes, merged);
    return WordRunOutcome::Done;
}

TimeSliceEstimate
timeSlicedLadderEstimate(const BlockStream &stream,
                         const CacheConfig &cfg, unsigned slices,
                         std::size_t warmupWindow,
                         const PartitionOptions &opts)
{
    std::vector<CacheConfig> configs{cfg};
    if (!ladderCollapsible(stream, configs))
        fatal("timeSlicedLadderEstimate: config is outside the "
              "one-pass regime");
    slices = std::max(slices, 1u);
    if (slices > stream.refs && stream.refs > 0)
        slices = static_cast<unsigned>(stream.refs);

    TimeSliceEstimate est;
    est.slices = slices;
    est.warmupWindow = warmupWindow;

    const std::size_t len =
        stream.refs ? (stream.refs + slices - 1) / slices : 0;
    struct SliceOut
    {
        CacheStats stats;
        std::size_t warmupRefs = 0;
    };
    std::vector<SliceOut> outs = parallelSweep(
        slices, opts.jobs, [&](std::size_t sl) {
            const std::size_t begin = std::min(sl * len, stream.refs);
            const std::size_t end =
                std::min(begin + len, stream.refs);
            const std::size_t warmBegin =
                begin > warmupWindow ? begin - warmupWindow : 0;

            ladder::ConfigSim sim(cfg);
            sim.kernel = ladder::selectKernel(
                sim.ways, opts.tier, sim.masked, /*filtered=*/false);
            // Reconstruct state from the warm-up window, then zero
            // the counters so only the owned slice is counted.
            sim.kernel(sim, stream, warmBegin, begin);
            sim.stats = CacheStats{};
            sim.kernel(sim, stream, begin, end);
            if (sl + 1 == slices)
                sim.flush(); // final state approximates the real end
            SliceOut out;
            out.stats = sim.stats;
            out.warmupRefs = begin - warmBegin;
            return out;
        });

    CacheStats merged;
    for (const SliceOut &out : outs) {
        ladder::mergeStats(merged, out.stats);
        est.warmupRefs += out.warmupRefs;
    }
    est.result = ladder::ladderTraffic(stream, merged);
    return est;
}

} // namespace membw
