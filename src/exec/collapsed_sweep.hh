/**
 * @file
 * Sweep planner: route each cell of a multi-configuration sweep to
 * the cheapest exact engine.
 *
 * Given the full config list of a sweep, CollapsedSweep groups the
 * cells by block size and precomputes every group that an exact
 * one-pass engine covers:
 *
 *  - fully-associative LRU groups over load-only traces collapse
 *    into one Mattson stack-distance pass (exec/fa_sweep.*);
 *  - set-associative LRU groups collapse into one chunked
 *    BlockStream pass through the ladder kernel
 *    (exec/ladder_sweep.*), whatever their mix of sizes,
 *    associativities, and write policies.
 *
 * Everything else — Random/FIFO replacement, sectoring, stream
 * buffers, prefetch, multi-level hierarchies, MTC cells — is left
 * uncovered and the caller's per-cell fallback simulates it
 * directly, so results stay exact everywhere.
 *
 * Intended use in a parallelSweep() caller: construct the planner
 * *before* the per-cell fan-out (group passes themselves fan across
 * @p jobs workers), then each cell either consumes its precomputed
 * TrafficResult or simulates directly.  Precomputed results are
 * index-addressed, so cell accounting (ordering, --sigterm-after
 * truncation, stats publication) is unchanged.
 */

#ifndef MEMBW_EXEC_COLLAPSED_SWEEP_HH
#define MEMBW_EXEC_COLLAPSED_SWEEP_HH

#include <cstddef>
#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <vector>

#include "cache/config.hh"
#include "cache/hierarchy.hh"
#include "exec/simd.hh"
#include "trace/trace.hh"

namespace membw {

struct MappedTrace;
struct BlockStream;
class StackDistanceProfile;
class ThreadPool;

/** Which engine actually produced a sweep cell's result. */
enum class CellRoute : std::uint8_t
{
    Direct = 0,  ///< per-cell fallback simulation
    Ladder = 1,  ///< collapsed set-associative ladder pass
    Mattson = 2, ///< collapsed FA stack-distance pass
};

/** Stable lowercase name for reports and trace span details. */
const char *cellRouteName(CellRoute route);

/** Knobs for the planner (the 3-argument ctor fills defaults). */
struct CollapseOptions
{
    /** Worker threads shared by group fan-out and set partitioning. */
    unsigned jobs = 1;

    /**
     * Disable intra-trace set partitioning (--no-partition): group
     * passes still fan across jobs, but each ladder pass runs the
     * serial kernel.  Results are byte-identical either way — this
     * is the escape hatch the partition_equivalence test diffs.
     */
    bool noPartition = false;

    /** Probe tier for the ladder kernels (clamped to the host). */
    SimdTier tier = simdTier();

    /**
     * Zero-copy source: when set, ladder BlockStreams borrow this
     * validated mapping (trace_mmap.hh) instead of decoding
     * @p trace.  The two must describe the same references —
     * @p trace is still used for Mattson group passes.
     */
    const MappedTrace *mapped = nullptr;

    /**
     * Externally-owned worker pool for the group fan-out (see
     * SweepOptions::pool — the same serialization contract applies).
     * The set-partitioned kernel path still manages its own workers.
     */
    ThreadPool *pool = nullptr;

    /**
     * Artifact-cache hook: supply the decoded BlockStream for a block
     * size instead of decoding it fresh (the daemon memoizes streams
     * by trace CRC + block size).  Must return a stream equivalent to
     * buildBlockStream(trace, blockBytes).  Overrides @p mapped for
     * ladder passes when set.
     */
    std::function<std::shared_ptr<const BlockStream>(Bytes blockBytes)>
        streamProvider;

    /**
     * Artifact-cache hook: supply the Mattson stack-distance profile
     * for a block size, equivalent to
     * StackDistanceProfile(trace, blockBytes).  When unset each FA
     * group pass builds its own profile.
     */
    std::function<
        std::shared_ptr<const StackDistanceProfile>(Bytes blockBytes)>
        profileProvider;
};

class CollapsedSweep
{
  public:
    /** An empty planner covers nothing (every cell falls back). */
    CollapsedSweep() = default;

    /**
     * Plan and run every collapsible group of @p configs over
     * @p trace, fanning the group passes across @p jobs workers.
     * Results are exact and jobs-independent.
     */
    CollapsedSweep(const Trace &trace,
                   const std::vector<CacheConfig> &configs,
                   unsigned jobs);

    /**
     * As above with full options.  When partitioning is allowed
     * (jobs > 1, !noPartition) and there are fewer groups than
     * workers, ladder groups run the exact set-partitioned kernel
     * (exec/time_partition.hh) so a single big configuration still
     * uses every worker; results stay byte-identical to the serial
     * plan at any setting.
     */
    CollapsedSweep(const Trace &trace,
                   const std::vector<CacheConfig> &configs,
                   const CollapseOptions &options);

    /** True iff config @p i was covered by a one-pass group. */
    bool
    has(std::size_t i) const
    {
        return i < results_.size() && results_[i].has_value();
    }

    /** The precomputed result for a covered config. */
    const TrafficResult &
    result(std::size_t i) const
    {
        return *results_[i];
    }

    /**
     * The engine that covered config @p i — Direct for cells the
     * caller must simulate itself (also for indices never planned,
     * so it is safe on a default-constructed planner).
     */
    CellRoute
    route(std::size_t i) const
    {
        return i < routes_.size() ? routes_[i] : CellRoute::Direct;
    }

    /** Configs covered by any one-pass engine. */
    std::size_t covered() const { return covered_; }

    /** Mattson stack-distance group passes run. */
    std::size_t mattsonPasses() const { return mattsonPasses_; }

    /** Ladder-kernel group passes run. */
    std::size_t ladderPasses() const { return ladderPasses_; }

    /** Ladder passes that ran the set-partitioned parallel kernel
     * (a subset of ladderPasses()). */
    std::size_t partitionedPasses() const { return partitionedPasses_; }

  private:
    std::vector<std::optional<TrafficResult>> results_;
    std::vector<CellRoute> routes_;
    std::size_t covered_ = 0;
    std::size_t mattsonPasses_ = 0;
    std::size_t ladderPasses_ = 0;
    std::size_t partitionedPasses_ = 0;
};

} // namespace membw

#endif // MEMBW_EXEC_COLLAPSED_SWEEP_HH
