/**
 * @file
 * Deterministic parallel sweep: fan cells 0..n-1 (independent cache
 * configurations over one shared read-only Trace) across a thread
 * pool and return their results *in submission order*, so callers
 * that render tables or publish stats registries serially afterwards
 * produce byte-identical output at any --jobs value.
 *
 * Determinism contract (see docs/performance.md):
 *  - results land in cells[i] for cell i regardless of completion
 *    order; callers consume them in index order;
 *  - cell functions must be pure with respect to shared state: they
 *    may read the shared Trace but must put every output in their
 *    return value (StatsRegistry is NOT thread-safe — publish after
 *    the sweep, never from inside a cell);
 *  - if cells throw, the exception from the lowest-index failing
 *    cell that ran is rethrown after all in-flight cells drain (with
 *    jobs == 1 that is exactly the first failure, and no later cell
 *    has started);
 *  - a cancel() poll stops *scheduling* new cells; in-flight cells
 *    drain to completion and the result reports the contiguous
 *    completed prefix, so --sigterm-after N can truncate output to a
 *    deterministic N cells at any --jobs value.
 */

#ifndef MEMBW_EXEC_PARALLEL_SWEEP_HH
#define MEMBW_EXEC_PARALLEL_SWEEP_HH

#include <cstddef>
#include <exception>
#include <functional>
#include <mutex>
#include <optional>
#include <string>
#include <type_traits>
#include <utility>
#include <vector>

#include "exec/thread_pool.hh"

namespace membw {

/** One tolerated cell failure (SweepOptions::tolerateCellFailures). */
struct CellFailure
{
    std::size_t cell = 0;
    std::string message;
};

/** Knobs for parallelSweep(). */
struct SweepOptions
{
    /** Worker count; 1 (or n == 1) runs inline with no pool. */
    unsigned jobs = 1;

    /**
     * Externally-owned pool to run on instead of constructing a
     * fresh one per sweep (the daemon shares one pool across
     * requests to avoid per-request thread churn).  The sweep still
     * submits one drain-task per pool thread and calls wait(), so
     * the pool must be otherwise idle for the duration — callers
     * that share a pool must serialize sweeps on it.  jobs is
     * ignored when set (the pool's thread count wins), except for
     * the jobs <= 1 inline path, which never touches the pool.
     */
    ThreadPool *pool = nullptr;

    /**
     * Polled before each cell is started (under the sweep lock, so
     * it must be cheap).  Returning true stops scheduling further
     * cells; in-flight cells drain.  Wire shutdownRequested() here.
     */
    std::function<bool()> cancel;

    /**
     * Invoked — serialized, with monotonically increasing values —
     * whenever the contiguous completed prefix grows, with the new
     * prefix length.  Used for progress meters and the
     * --sigterm-after cell-count trigger.
     */
    std::function<void(std::size_t donePrefix)> onPrefix;

    /**
     * Degraded mode: a cell that throws a std::exception is recorded
     * in SweepResult::failedCells (default-constructed result, still
     * counts toward the completed prefix) and the sweep carries on
     * instead of rethrowing.  Exceptions that are not std::exception
     * (phase-interrupt sentinels) always propagate; so do those for
     * which abortAnyway() returns true.
     */
    bool tolerateCellFailures = false;

    /**
     * Escape hatch under tolerateCellFailures: return true to treat
     * this exception as fatal anyway (e.g. WatchdogError must still
     * abort with exit code 4, not degrade to exit code 5).
     */
    std::function<bool(const std::exception &)> abortAnyway;
};

/** Outcome of a sweep. */
template <typename R> struct SweepResult
{
    /**
     * cells[i] = result of cell i.  On interruption only the first
     * `completed` entries are meaningful; the rest are
     * default-constructed.  Failed cells (tolerateCellFailures) hold
     * default-constructed values too.
     */
    std::vector<R> cells;

    /** Length of the contiguous completed prefix (== cells.size()
     * when not interrupted). */
    std::size_t completed = 0;

    /** True iff cancel() fired before every cell was scheduled. */
    bool interrupted = false;

    /**
     * Tolerated failures in cell-index order (empty unless
     * SweepOptions::tolerateCellFailures was set).
     */
    std::vector<CellFailure> failedCells;

    bool degraded() const { return !failedCells.empty(); }
};

/**
 * Run @p fn(i) for i in [0, n) across opt.jobs workers.  R must be
 * default-constructible and movable; @p fn must be safe to invoke
 * concurrently from multiple threads on distinct indices.
 */
template <typename Fn,
          typename R = std::invoke_result_t<Fn &, std::size_t>>
SweepResult<R>
parallelSweep(std::size_t n, const SweepOptions &opt, Fn &&fn)
{
    SweepResult<R> result;
    result.cells.resize(n);

    const unsigned jobs =
        opt.pool ? opt.pool->threads() : opt.jobs;
    if (jobs <= 1 || n <= 1) {
        for (std::size_t i = 0; i < n; ++i) {
            if (opt.cancel && opt.cancel()) {
                result.interrupted = true;
                return result;
            }
            if (opt.tolerateCellFailures) {
                try {
                    result.cells[i] = fn(i);
                } catch (const std::exception &e) {
                    if (opt.abortAnyway && opt.abortAnyway(e))
                        throw;
                    result.failedCells.push_back(
                        CellFailure{i, e.what()});
                    result.cells[i] = R{};
                }
            } else {
                result.cells[i] = fn(i);
            }
            result.completed = i + 1;
            if (opt.onPrefix)
                opt.onPrefix(result.completed);
        }
        return result;
    }

    struct Shared
    {
        std::mutex mutex;
        std::size_t next = 0;       ///< next cell to schedule
        std::size_t prefix = 0;     ///< contiguous completed prefix
        bool cancelled = false;
        bool aborted = false;       ///< a cell threw
        std::vector<char> done;
        std::vector<char> failed;   ///< tolerated failures
        std::vector<std::string> failMessage;
        std::vector<std::exception_ptr> errors;
    } shared;
    shared.done.assign(n, 0);
    shared.failed.assign(n, 0);
    shared.failMessage.resize(n);
    shared.errors.resize(n);

    {
        std::optional<ThreadPool> owned;
        ThreadPool *pool = opt.pool;
        if (!pool) {
            owned.emplace(opt.jobs);
            pool = &*owned;
        }
        // One task per worker, each draining cells until none remain:
        // cheaper than n queue round-trips and keeps the claim +
        // cancel poll in one critical section.
        const unsigned nworkers = pool->threads();
        for (unsigned w = 0; w < nworkers; ++w) {
            pool->submit([&shared, &result, &opt, &fn, n] {
                for (;;) {
                    std::size_t i;
                    {
                        std::lock_guard<std::mutex> lock(shared.mutex);
                        if (shared.aborted || shared.cancelled ||
                            shared.next >= n)
                            return;
                        if (opt.cancel && opt.cancel()) {
                            shared.cancelled = true;
                            return;
                        }
                        i = shared.next++;
                    }
                    R value{};
                    bool ok = true;
                    bool tolerated = false;
                    std::string why;
                    try {
                        value = fn(i);
                    } catch (const std::exception &e) {
                        if (opt.tolerateCellFailures &&
                            !(opt.abortAnyway && opt.abortAnyway(e))) {
                            tolerated = true;
                            why = e.what();
                        } else {
                            ok = false;
                            std::lock_guard<std::mutex> lock(
                                shared.mutex);
                            shared.errors[i] =
                                std::current_exception();
                            shared.aborted = true;
                        }
                    } catch (...) {
                        // Non-std exceptions (phase-interrupt
                        // sentinels) are never tolerated.
                        ok = false;
                        std::lock_guard<std::mutex> lock(shared.mutex);
                        shared.errors[i] = std::current_exception();
                        shared.aborted = true;
                    }
                    if (ok) {
                        std::lock_guard<std::mutex> lock(shared.mutex);
                        if (tolerated) {
                            shared.failed[i] = 1;
                            shared.failMessage[i] = std::move(why);
                        } else {
                            result.cells[i] = std::move(value);
                        }
                        shared.done[i] = 1;
                        bool grew = false;
                        while (shared.prefix < n &&
                               shared.done[shared.prefix]) {
                            ++shared.prefix;
                            grew = true;
                        }
                        if (grew && opt.onPrefix)
                            opt.onPrefix(shared.prefix);
                    }
                }
            });
        }
        pool->wait();
    }

    for (std::size_t i = 0; i < n; ++i)
        if (shared.errors[i])
            std::rethrow_exception(shared.errors[i]);

    for (std::size_t i = 0; i < n; ++i)
        if (shared.failed[i])
            result.failedCells.push_back(
                CellFailure{i, std::move(shared.failMessage[i])});

    result.completed = shared.prefix;
    result.interrupted = shared.cancelled;
    return result;
}

/**
 * Convenience full-sweep overload: no cancellation, results in
 * submission order, exceptions propagate.
 */
template <typename Fn,
          typename R = std::invoke_result_t<Fn &, std::size_t>>
std::vector<R>
parallelSweep(std::size_t n, unsigned jobs, Fn &&fn)
{
    SweepOptions opt;
    opt.jobs = jobs;
    SweepResult<R> r = parallelSweep(n, opt, std::forward<Fn>(fn));
    return std::move(r.cells);
}

} // namespace membw

#endif // MEMBW_EXEC_PARALLEL_SWEEP_HH
