#include "exec/thread_pool.hh"

#include <algorithm>

namespace membw {

unsigned
defaultJobs()
{
    const unsigned hw = std::thread::hardware_concurrency();
    return hw ? std::min(hw, maxParallelJobs) : 1u;
}

ThreadPool::ThreadPool(unsigned threads)
{
    const unsigned n = std::clamp(threads, 1u, maxParallelJobs);
    workers_.reserve(n);
    for (unsigned i = 0; i < n; ++i)
        workers_.emplace_back([this] { workerLoop(); });
}

ThreadPool::~ThreadPool()
{
    {
        std::unique_lock<std::mutex> lock(mutex_);
        idleCv_.wait(lock,
                     [this] { return queue_.empty() && !running_; });
        stop_ = true;
    }
    workCv_.notify_all();
    for (std::thread &t : workers_)
        t.join();
}

void
ThreadPool::submit(std::function<void()> task)
{
    {
        std::lock_guard<std::mutex> lock(mutex_);
        queue_.push_back(std::move(task));
    }
    workCv_.notify_one();
}

void
ThreadPool::wait()
{
    std::unique_lock<std::mutex> lock(mutex_);
    idleCv_.wait(lock, [this] { return queue_.empty() && !running_; });
}

void
ThreadPool::workerLoop()
{
    for (;;) {
        std::function<void()> task;
        {
            std::unique_lock<std::mutex> lock(mutex_);
            workCv_.wait(
                lock, [this] { return stop_ || !queue_.empty(); });
            if (queue_.empty())
                return; // stop_ set and nothing left to run
            task = std::move(queue_.front());
            queue_.pop_front();
            ++running_;
        }
        task();
        {
            std::lock_guard<std::mutex> lock(mutex_);
            --running_;
            if (queue_.empty() && !running_)
                idleCv_.notify_all();
        }
    }
}

} // namespace membw
