#include "exec/thread_pool.hh"

#include <algorithm>
#include <atomic>
#include <cstdio>

#include "obs/trace_span.hh"

namespace membw {

namespace {

// Process-wide occupancy gauges (see poolQueueDepth()).  Relaxed is
// fine: every mutation happens under a pool's mutex and readers only
// want a recent value.
std::atomic<std::size_t> g_queueDepth{0};
std::atomic<std::size_t> g_busyWorkers{0};

} // namespace

unsigned
defaultJobs()
{
    const unsigned hw = std::thread::hardware_concurrency();
    return hw ? std::min(hw, maxParallelJobs) : 1u;
}

std::size_t
poolQueueDepth()
{
    return g_queueDepth.load(std::memory_order_relaxed);
}

std::size_t
poolBusyWorkers()
{
    return g_busyWorkers.load(std::memory_order_relaxed);
}

ThreadPool::ThreadPool(unsigned threads)
{
    const unsigned n = std::clamp(threads, 1u, maxParallelJobs);
    workers_.reserve(n);
    for (unsigned i = 0; i < n; ++i)
        workers_.emplace_back([this, i] { workerLoop(i); });
}

ThreadPool::~ThreadPool()
{
    {
        std::unique_lock<std::mutex> lock(mutex_);
        idleCv_.wait(lock,
                     [this] { return queue_.empty() && !running_; });
        stop_ = true;
    }
    workCv_.notify_all();
    for (std::thread &t : workers_)
        t.join();
}

void
ThreadPool::submit(std::function<void()> task)
{
    std::size_t depth;
    {
        std::lock_guard<std::mutex> lock(mutex_);
        queue_.push_back(std::move(task));
        depth = queue_.size();
    }
    g_queueDepth.fetch_add(1, std::memory_order_relaxed);
    tracingCounter("pool.queue_depth", static_cast<double>(depth));
    workCv_.notify_one();
}

void
ThreadPool::wait()
{
    std::unique_lock<std::mutex> lock(mutex_);
    idleCv_.wait(lock, [this] { return queue_.empty() && !running_; });
}

void
ThreadPool::workerLoop(unsigned index)
{
    char name[24];
    std::snprintf(name, sizeof(name), "worker-%u", index);
    bool named = false;
    for (;;) {
        std::function<void()> task;
        std::size_t depth, busy;
        {
            std::unique_lock<std::mutex> lock(mutex_);
            workCv_.wait(
                lock, [this] { return stop_ || !queue_.empty(); });
            if (queue_.empty())
                return; // stop_ set and nothing left to run
            task = std::move(queue_.front());
            queue_.pop_front();
            ++running_;
            depth = queue_.size();
            busy = running_;
        }
        g_queueDepth.fetch_sub(1, std::memory_order_relaxed);
        g_busyWorkers.fetch_add(1, std::memory_order_relaxed);
        if (!named && tracingActive()) {
            // Lazy so workers spawned before tracingInit() still
            // register under their pool name, not "thread-N".
            tracingSetThreadName(name);
            named = true;
        }
        tracingCounter("pool.queue_depth", static_cast<double>(depth));
        tracingCounter("pool.busy_workers", static_cast<double>(busy));
        task();
        {
            std::lock_guard<std::mutex> lock(mutex_);
            --running_;
            busy = running_;
            if (queue_.empty() && !running_)
                idleCv_.notify_all();
        }
        g_busyWorkers.fetch_sub(1, std::memory_order_relaxed);
        tracingCounter("pool.busy_workers", static_cast<double>(busy));
    }
}

} // namespace membw
