#include "exec/ladder_kernel.hh"

namespace membw {
namespace ladder {

namespace {

template <bool Masked, bool Filtered>
ChunkKernel
pickKernel(unsigned ways, SimdTier tier)
{
#if MEMBW_SIMD_X86
    if (tier == SimdTier::Avx2) {
        switch (ways) {
        case 1:
            return &runChunk<ScalarProbe, 1, Masked, Filtered>;
        case 2:
            return &runChunk<Sse2Probe, 2, Masked, Filtered>;
        case 4:
            return &runChunkAvx2<4, Masked, Filtered>;
        case 8:
            return &runChunkAvx2<8, Masked, Filtered>;
        default:
            return &runChunkAvx2<0, Masked, Filtered>;
        }
    }
    if (tier == SimdTier::Sse2) {
        switch (ways) {
        case 1:
            return &runChunk<ScalarProbe, 1, Masked, Filtered>;
        case 2:
            return &runChunk<Sse2Probe, 2, Masked, Filtered>;
        case 4:
            return &runChunk<Sse2Probe, 4, Masked, Filtered>;
        case 8:
            return &runChunk<Sse2Probe, 8, Masked, Filtered>;
        default:
            return &runChunk<Sse2Probe, 0, Masked, Filtered>;
        }
    }
#endif
    (void)tier;
    switch (ways) {
    case 1:
        return &runChunk<ScalarProbe, 1, Masked, Filtered>;
    case 2:
        return &runChunk<ScalarProbe, 2, Masked, Filtered>;
    case 4:
        return &runChunk<ScalarProbe, 4, Masked, Filtered>;
    case 8:
        return &runChunk<ScalarProbe, 8, Masked, Filtered>;
    default:
        return &runChunk<ScalarProbe, 0, Masked, Filtered>;
    }
}

template <bool Masked, bool Filtered>
WordKernel
pickWordKernel(unsigned ways, SimdTier tier)
{
#if MEMBW_SIMD_X86
    if (tier == SimdTier::Avx2) {
        switch (ways) {
        case 1:
            return &runWordChunk<ScalarProbe, 1, Masked, Filtered>;
        case 2:
            return &runWordChunk<Sse2Probe, 2, Masked, Filtered>;
        case 4:
            return &runWordChunkAvx2<4, Masked, Filtered>;
        case 8:
            return &runWordChunkAvx2<8, Masked, Filtered>;
        default:
            return &runWordChunkAvx2<0, Masked, Filtered>;
        }
    }
    if (tier == SimdTier::Sse2) {
        switch (ways) {
        case 1:
            return &runWordChunk<ScalarProbe, 1, Masked, Filtered>;
        case 2:
            return &runWordChunk<Sse2Probe, 2, Masked, Filtered>;
        case 4:
            return &runWordChunk<Sse2Probe, 4, Masked, Filtered>;
        case 8:
            return &runWordChunk<Sse2Probe, 8, Masked, Filtered>;
        default:
            return &runWordChunk<Sse2Probe, 0, Masked, Filtered>;
        }
    }
#endif
    (void)tier;
    switch (ways) {
    case 1:
        return &runWordChunk<ScalarProbe, 1, Masked, Filtered>;
    case 2:
        return &runWordChunk<ScalarProbe, 2, Masked, Filtered>;
    case 4:
        return &runWordChunk<ScalarProbe, 4, Masked, Filtered>;
    case 8:
        return &runWordChunk<ScalarProbe, 8, Masked, Filtered>;
    default:
        return &runWordChunk<ScalarProbe, 0, Masked, Filtered>;
    }
}

} // namespace

ChunkKernel
selectKernel(unsigned ways, SimdTier tier, bool masked, bool filtered)
{
    tier = clampSimdTier(tier);
    if (masked)
        return filtered ? pickKernel<true, true>(ways, tier)
                        : pickKernel<true, false>(ways, tier);
    return filtered ? pickKernel<false, true>(ways, tier)
                    : pickKernel<false, false>(ways, tier);
}

WordKernel
selectWordKernel(unsigned ways, SimdTier tier, bool masked,
                 bool filtered)
{
    tier = clampSimdTier(tier);
    if (masked)
        return filtered ? pickWordKernel<true, true>(ways, tier)
                        : pickWordKernel<true, false>(ways, tier);
    return filtered ? pickWordKernel<false, true>(ways, tier)
                    : pickWordKernel<false, false>(ways, tier);
}

void
mergeStats(CacheStats &into, const CacheStats &from)
{
    into.accesses += from.accesses;
    into.loads += from.loads;
    into.stores += from.stores;
    into.hits += from.hits;
    into.misses += from.misses;
    into.loadMisses += from.loadMisses;
    into.storeMisses += from.storeMisses;
    into.evictions += from.evictions;
    into.writebacks += from.writebacks;
    into.partialFills += from.partialFills;
    into.prefetches += from.prefetches;
    into.streamHits += from.streamHits;
    into.streamAllocs += from.streamAllocs;
    into.requestBytes += from.requestBytes;
    into.demandFetchBytes += from.demandFetchBytes;
    into.partialFillBytes += from.partialFillBytes;
    into.prefetchFetchBytes += from.prefetchFetchBytes;
    into.streamFetchBytes += from.streamFetchBytes;
    into.writebackBytes += from.writebackBytes;
    into.writeThroughBytes += from.writeThroughBytes;
    into.flushWritebackBytes += from.flushWritebackBytes;
}

TrafficResult
ladderTraffic(const BlockStream &stream, CacheStats stats)
{
    return ladderTraffic(stream.refs, stream.loads, stream.stores,
                         stream.requestBytes, stats);
}

TrafficResult
ladderTraffic(std::size_t refs, std::uint64_t loads,
              std::uint64_t stores, std::uint64_t requestBytes,
              CacheStats stats)
{
    stats.accesses = refs;
    stats.loads = loads;
    stats.stores = stores;
    stats.requestBytes = requestBytes;

    TrafficResult r;
    r.requestBytes = stats.requestBytes;
    r.pinBytes = stats.trafficBelow();
    r.trafficRatio = stats.trafficRatio();
    r.levelRatios = {stats.trafficRatio()};
    r.levelTraffic = {stats.trafficBelow()};
    r.levels = {stats};
    r.l1 = stats;
    return r;
}

} // namespace ladder
} // namespace membw
