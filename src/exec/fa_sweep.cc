#include "exec/fa_sweep.hh"

#include "cache/stack_distance.hh"
#include "common/bitops.hh"
#include "common/log.hh"

namespace membw {

bool
faLruCollapsible(const Trace &trace,
                 const std::vector<CacheConfig> &configs)
{
    if (configs.empty())
        return false;
    const Bytes block = configs.front().blockBytes;
    if (!isPowerOfTwo(block))
        return false;
    for (const CacheConfig &cfg : configs) {
        if (cfg.assoc != 0 || cfg.repl != ReplPolicy::LRU ||
            cfg.blockBytes != block || cfg.taggedPrefetch ||
            cfg.sectorBytes != 0 || cfg.streamBuffers != 0 ||
            cfg.size < block)
            return false;
    }
    for (const MemRef &ref : trace) {
        if (!ref.isLoad())
            return false;
        // The direct simulator rejects block-spanning references;
        // the profile would silently accept them, so bail out.
        if (alignDown(ref.addr, block) !=
            alignDown(ref.addr + ref.size - 1, block))
            return false;
    }
    return true;
}

std::vector<TrafficResult>
faLruSizeSweep(const Trace &trace,
               const std::vector<CacheConfig> &configs)
{
    if (!faLruCollapsible(trace, configs))
        fatal("faLruSizeSweep: sweep is not collapsible "
              "(check faLruCollapsible first)");
    const StackDistanceProfile profile(trace,
                                       configs.front().blockBytes);
    return faLruSizeSweep(trace, configs, profile);
}

std::vector<TrafficResult>
faLruSizeSweep(const Trace &trace,
               const std::vector<CacheConfig> &configs,
               const StackDistanceProfile &profile)
{
    if (!faLruCollapsible(trace, configs))
        fatal("faLruSizeSweep: sweep is not collapsible "
              "(check faLruCollapsible first)");

    const Bytes block = configs.front().blockBytes;

    Bytes requestBytes = 0;
    for (const MemRef &ref : trace)
        requestBytes += ref.size;

    std::vector<TrafficResult> out;
    out.reserve(configs.size());
    for (const CacheConfig &cfg : configs) {
        const std::uint64_t refs = profile.references();
        const std::uint64_t misses = profile.missesAtSize(cfg.size);

        CacheStats s;
        s.accesses = refs;
        s.loads = refs;
        s.hits = refs - misses;
        s.misses = misses;
        s.loadMisses = misses;
        // Every fill is eventually displaced — during the run once
        // the cache is full, or by the end-of-run flush — and none
        // is ever dirty, so evictions == misses and no write-backs.
        s.evictions = misses;
        s.requestBytes = requestBytes;
        s.demandFetchBytes = misses * block;

        TrafficResult r;
        r.requestBytes = s.requestBytes;
        r.pinBytes = s.trafficBelow();
        r.trafficRatio = s.trafficRatio();
        r.levelRatios = {s.trafficRatio()};
        r.levelTraffic = {s.trafficBelow()};
        r.levels = {s};
        r.l1 = s;
        out.push_back(std::move(r));
    }
    return out;
}

} // namespace membw
