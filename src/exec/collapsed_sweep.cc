#include "exec/collapsed_sweep.hh"

#include <algorithm>
#include <map>
#include <string>

#include "cache/stack_distance.hh"
#include "common/bitops.hh"
#include "exec/fa_sweep.hh"
#include "exec/ladder_sweep.hh"
#include "exec/parallel_sweep.hh"
#include "exec/time_partition.hh"
#include "obs/trace_span.hh"
#include "trace/block_stream.hh"
#include "trace/trace_mmap.hh"

namespace membw {

const char *
cellRouteName(CellRoute route)
{
    switch (route) {
    case CellRoute::Ladder:
        return "ladder";
    case CellRoute::Mattson:
        return "mattson";
    case CellRoute::Direct:
        break;
    }
    return "direct";
}

namespace {

struct Group
{
    Bytes blockBytes = 0;
    bool mattson = false; ///< false = ladder kernel
    std::vector<std::size_t> indices;
    std::vector<CacheConfig> configs;
};

/** Per-config half of the faLruCollapsible() guard; the trace half
 * (load-only, no block-spanning refs) is checked once per group. */
bool
faCandidate(const CacheConfig &cfg)
{
    return cfg.assoc == 0 && cfg.repl == ReplPolicy::LRU &&
           !cfg.taggedPrefetch && cfg.sectorBytes == 0 &&
           cfg.streamBuffers == 0 && cfg.size >= cfg.blockBytes &&
           isPowerOfTwo(cfg.blockBytes);
}

} // namespace

CollapsedSweep::CollapsedSweep(const Trace &trace,
                               const std::vector<CacheConfig> &configs,
                               unsigned jobs)
    : CollapsedSweep(trace, configs, CollapseOptions{jobs})
{
}

CollapsedSweep::CollapsedSweep(const Trace &trace,
                               const std::vector<CacheConfig> &configs,
                               const CollapseOptions &options)
{
    results_.resize(configs.size());
    routes_.assign(configs.size(), CellRoute::Direct);
    const unsigned jobs = std::max(options.jobs, 1u);

    // Group candidate configs by (block size, engine).  std::map
    // keeps group order deterministic.
    std::map<std::pair<Bytes, bool>, Group> grouped;
    for (std::size_t i = 0; i < configs.size(); ++i) {
        const CacheConfig &cfg = configs[i];
        bool mattson = false;
        if (ladderKernelSupported(cfg))
            mattson = false;
        else if (faCandidate(cfg))
            mattson = true;
        else
            continue;
        Group &g = grouped[{cfg.blockBytes, mattson}];
        g.blockBytes = cfg.blockBytes;
        g.mattson = mattson;
        g.indices.push_back(i);
        g.configs.push_back(cfg);
    }

    std::vector<Group> groups;
    groups.reserve(grouped.size());
    for (auto &[key, g] : grouped)
        groups.push_back(std::move(g));
    if (groups.empty())
        return;

    auto makeStream =
        [&](Bytes blockBytes) -> std::shared_ptr<const BlockStream> {
        if (options.streamProvider)
            return options.streamProvider(blockBytes);
        return std::make_shared<const BlockStream>(
            options.mapped
                ? buildBlockStream(*options.mapped, blockBytes)
                : buildBlockStream(trace, blockBytes));
    };
    auto runMattson = [&](const Group &g) -> std::vector<TrafficResult> {
        if (!faLruCollapsible(trace, g.configs))
            return {};
        if (options.profileProvider) {
            const auto profile = options.profileProvider(g.blockBytes);
            return faLruSizeSweep(trace, g.configs, *profile);
        }
        return faLruSizeSweep(trace, g.configs);
    };

    // With fewer groups than workers, fanning groups across the pool
    // leaves workers idle — the single-big-config case at --jobs N is
    // exactly one group.  There the ladder groups run sequentially
    // through the set-partitioned kernel instead, which spreads ONE
    // pass over every worker and stays byte-identical to the serial
    // kernel (see time_partition.hh).  --no-partition forces the
    // group-fan-out plan for the equivalence diff.
    const bool partition = !options.noPartition && jobs > 1 &&
                           groups.size() < jobs;

    std::vector<std::vector<TrafficResult>> passResults;
    std::vector<char> partitioned(groups.size(), 0);
    if (partition) {
        passResults.resize(groups.size());
        for (std::size_t gi = 0; gi < groups.size(); ++gi) {
            const Group &g = groups[gi];
            MEMBW_SPAN_D(
                g.mattson ? "collapse.mattson_pass"
                          : "collapse.partitioned_ladder_pass",
                "block=" + std::to_string(g.blockBytes) +
                    "B cells=" + std::to_string(g.configs.size()));
            if (g.mattson) {
                passResults[gi] = runMattson(g);
                continue;
            }
            const auto stream = makeStream(g.blockBytes);
            if (!ladderCollapsible(*stream, g.configs))
                continue;
            PartitionOptions popt;
            popt.jobs = jobs;
            popt.tier = options.tier;
            auto res =
                partitionedLadderSweep(*stream, g.configs, popt);
            if (res) {
                passResults[gi] = std::move(*res);
                partitioned[gi] = 1;
            }
        }
    } else {
        // One pass per group, fanned across the sweep workers.  A
        // group whose guard fails at run time (e.g. an FA group over
        // a trace with stores) simply stays uncovered.
        SweepOptions sopt;
        sopt.jobs = jobs;
        sopt.pool = options.pool;
        auto sweep = parallelSweep(
            groups.size(), sopt,
            [&](std::size_t gi) -> std::vector<TrafficResult> {
                const Group &g = groups[gi];
                MEMBW_SPAN_D(
                    g.mattson ? "collapse.mattson_pass"
                              : "collapse.ladder_pass",
                    "block=" + std::to_string(g.blockBytes) +
                        "B cells=" +
                        std::to_string(g.configs.size()));
                if (g.mattson)
                    return runMattson(g);
                const auto stream = makeStream(g.blockBytes);
                if (!ladderCollapsible(*stream, g.configs))
                    return {};
                return ladderSweep(*stream, g.configs,
                                   options.tier);
            });
        passResults = std::move(sweep.cells);
    }

    for (std::size_t gi = 0; gi < groups.size(); ++gi) {
        const Group &g = groups[gi];
        const auto &res = passResults[gi];
        if (res.empty())
            continue;
        if (g.mattson) {
            mattsonPasses_++;
        } else {
            ladderPasses_++;
            if (partitioned[gi])
                partitionedPasses_++;
        }
        for (std::size_t k = 0; k < g.indices.size(); ++k) {
            results_[g.indices[k]] = res[k];
            routes_[g.indices[k]] =
                g.mattson ? CellRoute::Mattson : CellRoute::Ladder;
            covered_++;
        }
    }
}

} // namespace membw
