#include "exec/collapsed_sweep.hh"

#include <algorithm>
#include <map>
#include <string>

#include "common/bitops.hh"
#include "exec/fa_sweep.hh"
#include "exec/ladder_sweep.hh"
#include "exec/parallel_sweep.hh"
#include "obs/trace_span.hh"
#include "trace/block_stream.hh"

namespace membw {

const char *
cellRouteName(CellRoute route)
{
    switch (route) {
    case CellRoute::Ladder:
        return "ladder";
    case CellRoute::Mattson:
        return "mattson";
    case CellRoute::Direct:
        break;
    }
    return "direct";
}

namespace {

struct Group
{
    Bytes blockBytes = 0;
    bool mattson = false; ///< false = ladder kernel
    std::vector<std::size_t> indices;
    std::vector<CacheConfig> configs;
};

/** Per-config half of the faLruCollapsible() guard; the trace half
 * (load-only, no block-spanning refs) is checked once per group. */
bool
faCandidate(const CacheConfig &cfg)
{
    return cfg.assoc == 0 && cfg.repl == ReplPolicy::LRU &&
           !cfg.taggedPrefetch && cfg.sectorBytes == 0 &&
           cfg.streamBuffers == 0 && cfg.size >= cfg.blockBytes &&
           isPowerOfTwo(cfg.blockBytes);
}

} // namespace

CollapsedSweep::CollapsedSweep(const Trace &trace,
                               const std::vector<CacheConfig> &configs,
                               unsigned jobs)
{
    results_.resize(configs.size());
    routes_.assign(configs.size(), CellRoute::Direct);

    // Group candidate configs by (block size, engine).  std::map
    // keeps group order deterministic.
    std::map<std::pair<Bytes, bool>, Group> grouped;
    for (std::size_t i = 0; i < configs.size(); ++i) {
        const CacheConfig &cfg = configs[i];
        bool mattson = false;
        if (ladderKernelSupported(cfg))
            mattson = false;
        else if (faCandidate(cfg))
            mattson = true;
        else
            continue;
        Group &g = grouped[{cfg.blockBytes, mattson}];
        g.blockBytes = cfg.blockBytes;
        g.mattson = mattson;
        g.indices.push_back(i);
        g.configs.push_back(cfg);
    }

    std::vector<Group> groups;
    groups.reserve(grouped.size());
    for (auto &[key, g] : grouped)
        groups.push_back(std::move(g));
    if (groups.empty())
        return;

    // One pass per group, fanned across the sweep workers.  A group
    // whose guard fails at run time (e.g. an FA group over a trace
    // with stores) simply stays uncovered.
    const auto passResults = parallelSweep(
        groups.size(), std::max(jobs, 1u),
        [&](std::size_t gi) -> std::vector<TrafficResult> {
            const Group &g = groups[gi];
            MEMBW_SPAN_D(
                g.mattson ? "collapse.mattson_pass"
                          : "collapse.ladder_pass",
                "block=" + std::to_string(g.blockBytes) +
                    "B cells=" + std::to_string(g.configs.size()));
            if (g.mattson) {
                if (!faLruCollapsible(trace, g.configs))
                    return {};
                return faLruSizeSweep(trace, g.configs);
            }
            const BlockStream stream =
                buildBlockStream(trace, g.blockBytes);
            if (!ladderCollapsible(stream, g.configs))
                return {};
            return ladderSweep(stream, g.configs);
        });

    for (std::size_t gi = 0; gi < groups.size(); ++gi) {
        const Group &g = groups[gi];
        const auto &res = passResults[gi];
        if (res.empty())
            continue;
        if (g.mattson)
            mattsonPasses_++;
        else
            ladderPasses_++;
        for (std::size_t k = 0; k < g.indices.size(); ++k) {
            results_[g.indices[k]] = res[k];
            routes_[g.indices[k]] =
                g.mattson ? CellRoute::Mattson : CellRoute::Ladder;
            covered_++;
        }
    }
}

} // namespace membw
