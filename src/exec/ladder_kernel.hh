/**
 * @file
 * Internal ladder-kernel machinery shared by ladder_sweep.cc and
 * time_partition.cc.  Not installed API — tools and tests go through
 * ladder_sweep.hh / time_partition.hh.
 *
 * The kernel body lives here as a function template monomorphized on
 * four axes:
 *
 *  - Probe  — the tag-compare engine (simd.hh: scalar / SSE2 / AVX2),
 *  - W      — the way count baked in at compile time for the hot
 *             geometries (1, 2, 4, 8; 0 keeps it a runtime value),
 *  - Masked — plain vs write-validate (per-word valid/dirty masks),
 *  - Filtered — whether the kernel skips references outside its
 *             owned set range (time-partitioned workers).
 *
 * selectKernel() maps a (ways, tier, masked, filtered) point to one
 * stamped-out instantiation, chosen once per configuration so the
 * per-chunk call is a single indirect jump to straight-line code.
 * Every instantiation is counter-identical to every other — the
 * probes all report the lowest matching way and the accounting is
 * shared — which is what lets the equivalence tests demand byte-equal
 * results across tiers, way specializations, and partition counts.
 *
 * AVX2 instantiations are routed through a target("avx2") wrapper so
 * the probe inlines into the chunk loop (GCC/clang refuse to inline
 * across mismatched target attributes); the wrapper is only ever
 * selected after simdTier() has verified host support.
 */

#ifndef MEMBW_EXEC_LADDER_KERNEL_HH
#define MEMBW_EXEC_LADDER_KERNEL_HH

#include <bit>
#include <cstdint>
#include <vector>

#include "cache/cache.hh"
#include "cache/config.hh"
#include "cache/hierarchy.hh"
#include "exec/simd.hh"
#include "trace/block_stream.hh"

namespace membw {
namespace ladder {

/** Empty tag sentinel: block numbers are addr >> log2(block) with
 * block >= 4B, so ~0 can never collide with a real block number. */
constexpr std::uint64_t tagInvalid = ~std::uint64_t{0};

struct ConfigSim;

/** One monomorphized chunk kernel (selected by selectKernel). */
using ChunkKernel = void (*)(ConfigSim &, const BlockStream &,
                             std::size_t, std::size_t);

/** Fused-decode variant: replays word-sized aligned references
 * straight from the MemRef array, skipping the BlockStream
 * materialization entirely (selected by selectWordKernel).  Returns
 * false the moment a reference violates the all-word invariant —
 * state and counters are then partial garbage and the caller must
 * restart on the decoded-stream path. */
using WordKernel = bool (*)(ConfigSim &, const MemRef *, std::size_t,
                            std::size_t);

/**
 * Flat-array replica of one Cache, specialized for the ladder
 * regime (LRU, no sector/stream/prefetch).  The per-line state is
 * interleaved per set — one row of 4*ways words laid out
 * [tags | lastUse | dirty | valid], rows 64B-aligned — so the
 * hit path of a 4-way config touches exactly one cache line (tags
 * and lastUse share it) instead of one line per parallel array.
 * The working set is L2-resident for the classic geometries, and
 * that line-per-probe difference is the kernel's dominant cost.
 * The LRU sequence counter and every counter update mirror
 * Cache::access()/evict()/insert() exactly, so the final CacheStats
 * match the direct simulator bit for bit.
 *
 * A partitioned replica owns sets [setLo, setLo + setSpan) only: its
 * rows cover just that span and its private seq counter preserves
 * the *per-set* reference order (all references to one set funnel
 * through one replica in trace order), which is the only order LRU
 * decisions depend on.
 *
 * Direct-mapped non-write-validate configs (dm below) collapse the
 * whole row to ONE word per set, line[s] = (tag << 1) | dirty: with
 * one way there is no lastUse to keep, the valid plane is the
 * tagInvalid sentinel, and the dirty mask only ever matters as a
 * boolean (write-back bytes are always blockBytes when !masked).
 * The shift is lossless — tags are addr >> log2(block) with block
 * >= 4B, so bit 63 is always clear — and the encoded word can never
 * equal tagInvalid.  This shrinks the probed state 4x (a 64 KiB/32B
 * config needs 16 KiB instead of 64 KiB), which keeps classic
 * direct-mapped geometries L1-resident on the host.
 */
struct ConfigSim
{
    const CacheConfig *cfg = nullptr;
    unsigned ways = 1;
    unsigned stride = 4; ///< u64s per set row (4 * ways)
    std::uint64_t setMask = 0;
    std::uint64_t setLo = 0;   ///< first owned set
    std::uint64_t setSpan = 0; ///< owned set count
    Bytes blockBytes = 0;
    bool writeBack = true;
    AllocPolicy alloc = AllocPolicy::WriteAllocate;
    bool masked = false; ///< write-validate: per-word valid/dirty
    bool dm = false;     ///< compact 1-word-per-set layout (see above)
    std::uint64_t fullMask = 0;
    ChunkKernel kernel = nullptr;

    std::uint64_t seq = 0;
    std::vector<std::uint64_t> lineStore; ///< backing (over-allocated)
    std::uint64_t *line = nullptr;        ///< 64B-aligned row base
    CacheStats stats;

    /** Full replica (all sets) unless a [setLo, setLo+setSpan) range
     * is given; @p span == 0 means "every set". */
    explicit ConfigSim(const CacheConfig &config, std::uint64_t lo = 0,
                       std::uint64_t span = 0)
        : cfg(&config),
          ways(config.ways()),
          setMask(config.sets() - 1),
          setLo(lo),
          setSpan(span ? span : config.sets()),
          blockBytes(config.blockBytes),
          writeBack(config.write == WritePolicy::WriteBack),
          alloc(config.alloc),
          masked(config.alloc == AllocPolicy::WriteValidate),
          dm(config.ways() == 1 &&
             config.alloc != AllocPolicy::WriteValidate)
    {
        const unsigned wordsPerBlock =
            static_cast<unsigned>(blockBytes / wordBytes);
        fullMask = wordsPerBlock == 64
                       ? ~std::uint64_t{0}
                       : (std::uint64_t{1} << wordsPerBlock) - 1;
        stride = dm ? 1 : 4 * ways;
        const std::size_t words =
            static_cast<std::size_t>(setSpan) * stride;
        lineStore.assign(words + 8, 0);
        line = lineStore.data();
        while (reinterpret_cast<std::uintptr_t>(line) % 64 != 0)
            ++line;
        for (std::uint64_t s = 0; s < setSpan; ++s)
            for (unsigned w = 0; w < ways; ++w)
                line[s * stride + w] = tagInvalid;
    }

    /** End-of-run flush over the owned lines, identical to
     * Cache::flush() (a partitioned flush sums to the full one —
     * every counter here is additive). */
    void
    flush()
    {
        if (dm) {
            for (std::uint64_t s = 0; s < setSpan; ++s) {
                const std::uint64_t t = line[s];
                if (t == tagInvalid)
                    continue;
                stats.evictions++;
                if (t & 1) {
                    stats.writebacks++;
                    stats.flushWritebackBytes += blockBytes;
                }
                line[s] = tagInvalid;
            }
            return;
        }
        for (std::uint64_t s = 0; s < setSpan; ++s) {
            std::uint64_t *const row = line + s * stride;
            for (unsigned w = 0; w < ways; ++w) {
                if (row[w] == tagInvalid)
                    continue;
                stats.evictions++;
                if (row[2 * ways + w]) {
                    const Bytes wb =
                        masked ? static_cast<Bytes>(std::popcount(
                                     row[2 * ways + w])) *
                                     wordBytes
                               : blockBytes;
                    stats.writebacks++;
                    stats.flushWritebackBytes += wb;
                }
                row[w] = tagInvalid;
            }
        }
    }
};

/**
 * Reference sources the chunk kernel is monomorphized over.  Both
 * yield the exact per-reference tuple (blockNum, isStore, size,
 * wordMask) the accounting consumes, so every kernel instantiation
 * stays counter-identical regardless of where the bits come from.
 */

/** Decoded SoA arrays of a materialized BlockStream. */
struct StreamSource
{
    static constexpr bool validating = false;

    const std::uint64_t *blockNum;
    const std::uint8_t *isStore;
    const std::uint16_t *size;
    const std::uint64_t *wordMask;

    explicit StreamSource(const BlockStream &s)
        : blockNum(s.blockNum),
          isStore(s.isStore),
          size(s.size),
          wordMask(s.wordMask)
    {
    }

    std::uint64_t bn(std::size_t i, unsigned) const
    {
        return blockNum[i];
    }
    bool store(std::size_t i) const { return isStore[i] != 0; }
    Bytes bytes(std::size_t i) const { return size[i]; }
    std::uint64_t mask(std::size_t i, Bytes) const
    {
        return wordMask[i];
    }
    bool word(std::size_t) const { return true; }
};

/**
 * Fused decode straight from the MemRef array.  Valid only when
 * every reference is one aligned word (the QPT recording invariant):
 * such a reference never spans a block, its word mask is a single
 * bit, and its size is wordBytes — all derivable from the address in
 * a couple of ALU ops, cheaper than re-reading them from a decoded
 * side array.  The invariant is not pre-scanned; validating makes
 * the kernel check word() per reference (two predictable compares)
 * and abort the chunk on the first violation, so an eligible trace
 * never pays a separate eligibility pass.
 */
struct WordSource
{
    static constexpr bool validating = true;

    const MemRef *refs;

    explicit WordSource(const MemRef *r) : refs(r) {}

    std::uint64_t bn(std::size_t i, unsigned blockShift) const
    {
        return refs[i].addr >> blockShift;
    }
    bool store(std::size_t i) const { return refs[i].isStore(); }
    Bytes bytes(std::size_t) const { return wordBytes; }
    std::uint64_t mask(std::size_t i, Bytes blockMask) const
    {
        return std::uint64_t{1}
               << ((refs[i].addr & blockMask) / wordBytes);
    }
    bool word(std::size_t i) const
    {
        return refs[i].size == wordBytes &&
               refs[i].addr % wordBytes == 0;
    }
};

/**
 * Replay source references [begin, end).  Masked selects the
 * write-validate variant (per-word valid/dirty, partial fills;
 * validate() guarantees WV is write-back); the plain variant tracks
 * a written-word mask per line as the dirty flag only.  Filtered
 * skips references whose set is outside [setLo, setLo + setSpan).
 *
 * The hot state lives in locals for the duration of the chunk: the
 * LRU sequence counter and the stats block would otherwise round-trip
 * through memory on every reference (the compiler cannot prove the
 * line rows don't alias the sim object).  The tag probe is a random
 * access into an L2-resident working set, but its address comes
 * straight off the sequential source array, so the out-of-order
 * window keeps several probes in flight on its own — measured on the
 * reference traces, explicit software prefetch ahead of the loop only
 * added overhead (the row interleaving already collapsed the probe
 * to a single line).
 *
 * Victim choice and eviction accounting (the miss path) are identical
 * to pickVictim() + evict(): first invalid way wins (no eviction
 * counted) — found with the same lowest-index probe the hit path
 * uses, keyed on the invalid sentinel — otherwise the lowest-lastUse
 * way (ties to the lowest index) is displaced, with a write-back when
 * dirty.
 *
 * Returns false (for validating sources) on the first reference that
 * breaks the all-word invariant; the sim state is then partial and
 * must be discarded.  A validating chunk additionally counts stores
 * into stats.stores so the caller can reconstruct the trace totals
 * (loads/stores/requestBytes) without a separate scan: every owned
 * reference lands in hits+misses, so loads = hits + misses - stores
 * and requestBytes = wordBytes * (hits + misses).
 */
template <class Probe, unsigned W, bool Masked, bool Filtered,
          class Source>
inline bool
runChunkBody(ConfigSim &c, Source src, std::size_t begin,
             std::size_t end)
{
    const unsigned n = W ? W : c.ways;
    const unsigned stride = W ? 4 * W : c.stride;
    std::uint64_t *const line = c.line;
    const std::uint64_t setMask = c.setMask;
    const std::uint64_t setLo = c.setLo;
    const std::uint64_t setSpan = c.setSpan;
    const Bytes blockBytes = c.blockBytes;
    const unsigned blockShift =
        static_cast<unsigned>(std::countr_zero(blockBytes));
    const Bytes blockMask = blockBytes - 1;
    const bool writeBack = c.writeBack;
    const bool writeAllocate = c.alloc == AllocPolicy::WriteAllocate;
    std::uint64_t seq = c.seq;
    CacheStats st = c.stats;

    // Per-chunk deltas of the per-reference counters, folded into st
    // on exit.  CacheStats is too wide to register-allocate, so
    // incrementing its fields directly costs a stack round-trip on
    // EVERY reference; four plain locals get registers.  loadMisses
    // and demandFetchBytes are derived at fold time: every load miss
    // fetches a block, stores fetch only on (unmasked) write-allocate.
    std::uint64_t hits = 0;
    std::uint64_t misses = 0;
    std::uint64_t storeMisses = 0;
    std::uint64_t stores = 0;
    const auto fold = [&] {
        const std::uint64_t loadMisses = misses - storeMisses;
        st.hits += hits;
        st.misses += misses;
        st.loadMisses += loadMisses;
        st.storeMisses += storeMisses;
        st.stores += stores;
        st.demandFetchBytes +=
            blockBytes *
            (loadMisses +
             ((!Masked && writeAllocate) ? storeMisses : 0));
        c.seq = seq;
        c.stats = st;
    };

    if constexpr (W == 1 && !Masked) {
        // Compact direct-mapped loop over the 1-word-per-set layout
        // (ConfigSim::dm): line[s] = (tag << 1) | dirty.  One load,
        // one compare per probe, no lastUse bookkeeping (the victim
        // is always way 0 and counters never read recency), and the
        // probed state is 4x smaller than the generic rows.  Every
        // counter update mirrors the generic path exactly: a filled
        // slot evicts (write-back when dirty), an invalid slot fills
        // silently, stores dirty the line only under write-back.
        for (std::size_t i = begin; i < end; ++i) {
            if constexpr (Source::validating) {
                // Before the set filter — a non-word reference may
                // span two sets, so the whole run must restart.
                if (!src.word(i)) {
                    fold();
                    return false;
                }
            }
            const std::uint64_t bn = src.bn(i, blockShift);
            const std::uint64_t set = bn & setMask;
            if (Filtered && set - setLo >= setSpan)
                continue;
            std::uint64_t *const slot =
                line + static_cast<std::size_t>(
                           Filtered ? set - setLo : set);
            const std::uint64_t t = *slot;
            const bool hit = (t >> 1) == bn;
            const auto evictFill = [&](std::uint64_t enc) {
                if (t != tagInvalid) {
                    st.evictions++;
                    if (t & 1) {
                        st.writebacks++;
                        st.writebackBytes += blockBytes;
                    }
                }
                *slot = enc;
            };
            if (!src.store(i)) {
                if (hit) {
                    hits++;
                } else {
                    misses++;
                    evictFill(bn << 1);
                }
                continue;
            }
            if constexpr (Source::validating)
                stores++;
            if (hit) {
                hits++;
                if (writeBack)
                    *slot = t | 1;
                else
                    st.writeThroughBytes += src.bytes(i);
                continue;
            }
            misses++;
            storeMisses++;
            if (writeAllocate) {
                evictFill((bn << 1) |
                          static_cast<std::uint64_t>(writeBack));
                if (!writeBack)
                    st.writeThroughBytes += src.bytes(i);
            } else { // WriteNoAllocate
                st.writeThroughBytes += src.bytes(i);
            }
        }
        fold();
        return true;
    }

    // row layout: [tags | lastUse | dirty | valid], n words each.
    // Direct-mapped rows are handled by the compact loop above;
    // touch() still skips lastUse for the W == 1 Masked variant
    // (write-validate keeps the wide rows for its per-word masks,
    // but the victim is still always way 0, so the recency stamp
    // can never influence a decision and the per-reference store +
    // counter bump it costs is pure waste).
    auto touch = [&](std::uint64_t *row, unsigned w) {
        if constexpr (W != 1)
            row[n + w] = ++seq;
        else
            (void)row, (void)w;
    };
    auto allocate = [&](std::uint64_t bn,
                        std::uint64_t *row) -> unsigned {
        unsigned v = Probe::find(row, n, tagInvalid);
        if (v >= n) {
            // Branchless min-scan: the lastUse ordering is as random
            // as the reference stream, so a compare-and-branch here
            // mispredicts constantly; conditional moves keep the
            // (miss-path-dominant) victim choice off the predictor.
            const std::uint64_t *const lu = row + n;
            std::uint64_t best = lu[0];
            v = 0;
            for (unsigned w = 1; w < n; ++w) {
                const bool lt = lu[w] < best;
                best = lt ? lu[w] : best;
                v = lt ? w : v;
            }
            st.evictions++;
            if (row[2 * n + v]) {
                const Bytes wb =
                    Masked ? static_cast<Bytes>(std::popcount(
                                 row[2 * n + v])) *
                                 wordBytes
                           : blockBytes;
                st.writebacks++;
                st.writebackBytes += wb;
            }
        }
        row[v] = bn;
        touch(row, v);
        row[2 * n + v] = 0;
        if constexpr (Masked)
            row[3 * n + v] = 0;
        return v;
    };

    for (std::size_t i = begin; i < end; ++i) {
        if constexpr (Source::validating) {
            // Checked before the set filter: a non-word reference may
            // span two blocks (two sets), so no single worker could
            // claim it — the whole partitioned run must restart on
            // the decoded-stream path.
            if (!src.word(i)) {
                fold();
                return false;
            }
        }
        const std::uint64_t bn = src.bn(i, blockShift);
        const std::uint64_t set = bn & setMask;
        if (Filtered && set - setLo >= setSpan)
            continue;
        std::uint64_t *const row =
            line + static_cast<std::size_t>(
                       Filtered ? set - setLo : set) *
                       stride;
        const unsigned w = Probe::find(row, n, bn);
        const bool hit = w < n;
        if constexpr (!Masked) {
            if (!src.store(i)) {
                if (hit) {
                    hits++;
                    touch(row, w);
                } else {
                    misses++;
                    allocate(bn, row);
                }
                continue;
            }
            if constexpr (Source::validating)
                stores++;
            if (hit) {
                hits++;
                touch(row, w);
                if (writeBack)
                    row[2 * n + w] |= src.mask(i, blockMask);
                else
                    st.writeThroughBytes += src.bytes(i);
                continue;
            }
            misses++;
            storeMisses++;
            if (writeAllocate) {
                const unsigned v = allocate(bn, row);
                if (writeBack)
                    row[2 * n + v] = src.mask(i, blockMask);
                else
                    st.writeThroughBytes += src.bytes(i);
            } else { // WriteNoAllocate
                st.writeThroughBytes += src.bytes(i);
            }
        } else {
            const std::uint64_t words = src.mask(i, blockMask);
            if (!src.store(i)) {
                if (hit) {
                    const std::uint64_t missing =
                        words & ~row[3 * n + w];
                    if (missing) {
                        const Bytes bytes =
                            static_cast<Bytes>(
                                std::popcount(missing)) *
                            wordBytes;
                        st.partialFills++;
                        st.partialFillBytes += bytes;
                        row[3 * n + w] |= missing;
                    }
                    hits++;
                    touch(row, w);
                } else {
                    misses++;
                    const unsigned v = allocate(bn, row);
                    row[3 * n + v] = c.fullMask;
                }
                continue;
            }
            if constexpr (Source::validating)
                stores++;
            if (hit) {
                hits++;
                touch(row, w);
                row[3 * n + w] |= words;
                row[2 * n + w] |= words;
                continue;
            }
            misses++;
            storeMisses++;
            // Write-validate: allocate without fetching; the written
            // words become valid and dirty.
            const unsigned v = allocate(bn, row);
            row[3 * n + v] = words;
            row[2 * n + v] = words;
        }
    }
    fold();
    return true;
}

template <class Probe, unsigned W, bool Masked, bool Filtered>
void
runChunk(ConfigSim &c, const BlockStream &s, std::size_t begin,
         std::size_t end)
{
    runChunkBody<Probe, W, Masked, Filtered>(c, StreamSource(s),
                                             begin, end);
}

template <class Probe, unsigned W, bool Masked, bool Filtered>
bool
runWordChunk(ConfigSim &c, const MemRef *refs, std::size_t begin,
             std::size_t end)
{
    return runChunkBody<Probe, W, Masked, Filtered>(c, WordSource(refs),
                                                    begin, end);
}

#if MEMBW_SIMD_X86
/** target("avx2") clones of runChunk/runWordChunk so Avx2Probe::find
 * inlines into the chunk loop; selected only after simdTier() has
 * confirmed AVX2. */
template <unsigned W, bool Masked, bool Filtered>
__attribute__((target("avx2"))) void
runChunkAvx2(ConfigSim &c, const BlockStream &s, std::size_t begin,
             std::size_t end)
{
    runChunkBody<Avx2Probe, W, Masked, Filtered>(c, StreamSource(s),
                                                 begin, end);
}

template <unsigned W, bool Masked, bool Filtered>
__attribute__((target("avx2"))) bool
runWordChunkAvx2(ConfigSim &c, const MemRef *refs, std::size_t begin,
                 std::size_t end)
{
    return runChunkBody<Avx2Probe, W, Masked, Filtered>(
        c, WordSource(refs), begin, end);
}
#endif

/**
 * The monomorphized kernel for one configuration point, with @p tier
 * clamped to the host's capability.  Way counts without a baked
 * specialization (3, 5, 6, 7, 9..16) get the runtime-way variant of
 * the widest applicable probe; 1-way configs always run scalar
 * (nothing to lane-parallelize) and 2-way configs cap at SSE2 (one
 * 128-bit compare covers the whole set).
 */
ChunkKernel selectKernel(unsigned ways, SimdTier tier, bool masked,
                         bool filtered);

/** selectKernel's fused-decode twin: the same dispatch table over
 * runWordChunk instantiations (see WordSource for the validity
 * precondition). */
WordKernel selectWordKernel(unsigned ways, SimdTier tier, bool masked,
                            bool filtered);

/** Sum every additive counter of @p from into @p into.  The
 * stream-derived totals (accesses/loads/stores/requestBytes) are
 * additive too, but partition callers overwrite them from the
 * stream, so adding them here is still correct for partial chunks. */
void mergeStats(CacheStats &into, const CacheStats &from);

/** Package final @p stats (with stream totals applied) as the
 * single-level TrafficResult the direct simulator would produce. */
TrafficResult ladderTraffic(const BlockStream &stream,
                            CacheStats stats);

/** Same, with the stream-derived totals passed directly (the fused
 * word path has no BlockStream to read them from). */
TrafficResult ladderTraffic(std::size_t refs, std::uint64_t loads,
                            std::uint64_t stores,
                            std::uint64_t requestBytes,
                            CacheStats stats);

} // namespace ladder
} // namespace membw

#endif // MEMBW_EXEC_LADDER_KERNEL_HH
