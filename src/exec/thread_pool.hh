/**
 * @file
 * Fixed-size thread pool for fanning independent simulation cells
 * (one cache configuration over a shared read-only Trace) across
 * workers.
 *
 * The pool is deliberately minimal: tasks are type-erased thunks,
 * scheduling is FIFO, and completion is observed with wait() — the
 * determinism story (submission-order merging, lowest-index
 * exception) lives one layer up in parallelSweep(), which is what
 * tools and benches actually call.
 */

#ifndef MEMBW_EXEC_THREAD_POOL_HH
#define MEMBW_EXEC_THREAD_POOL_HH

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

#include "common/parse.hh" // maxParallelJobs, tryParseJobs

namespace membw {

/**
 * The --jobs default: std::thread::hardware_concurrency(), clamped
 * to at least 1 (the standard allows 0 for "unknown").
 */
unsigned defaultJobs();

/**
 * Live occupancy across every ThreadPool in the process (queued
 * tasks / tasks mid-execution).  Telemetry only — values are racy
 * snapshots for the trace counters and --series-out sampler, never
 * for scheduling decisions.
 */
std::size_t poolQueueDepth();
std::size_t poolBusyWorkers();

/** Fixed-size FIFO worker pool. */
class ThreadPool
{
  public:
    /** Spawn @p threads workers (clamped to [1, maxParallelJobs]). */
    explicit ThreadPool(unsigned threads);

    /** Drains: blocks until every submitted task has finished. */
    ~ThreadPool();

    ThreadPool(const ThreadPool &) = delete;
    ThreadPool &operator=(const ThreadPool &) = delete;

    /**
     * Enqueue @p task.  Tasks must not throw — wrap fallible work
     * and stash the exception (parallelSweep does exactly this).
     */
    void submit(std::function<void()> task);

    /** Block until the queue is empty and no task is running. */
    void wait();

    unsigned threads() const
    {
        return static_cast<unsigned>(workers_.size());
    }

  private:
    void workerLoop(unsigned index);

    std::mutex mutex_;
    std::condition_variable workCv_; ///< wakes workers
    std::condition_variable idleCv_; ///< wakes wait()
    std::deque<std::function<void()>> queue_;
    std::size_t running_ = 0;
    bool stop_ = false;
    std::vector<std::thread> workers_;
};

} // namespace membw

#endif // MEMBW_EXEC_THREAD_POOL_HH
