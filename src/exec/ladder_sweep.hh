/**
 * @file
 * One-pass sweep kernel for set-associative LRU ladders.
 *
 * A "ladder" is any group of single-level set-associative LRU cache
 * configurations sharing one block size — the shape of every size
 * sweep behind Tables 7/8 and Figure 4.  Instead of re-walking the
 * trace once per configuration through the general simulator,
 * ladderSweep() walks a pre-decoded BlockStream once, replaying each
 * L2-resident chunk against every configuration's flat tag/LRU/dirty
 * arrays.  The decode cost (block number, word mask, load/store
 * split) is paid once per block size instead of once per cell, the
 * per-reference dispatch (virtual hooks, std::function, hash-map
 * probes) disappears entirely, and the chunk's decode arrays stay
 * cache-resident while the k configurations consume them.
 *
 * The kernel replicates Cache::access()/flush() counter for counter
 * — same LRU sequence numbers, same victim scan order, same
 * write-policy byte accounting — so its TrafficResults are
 * byte-identical to the direct simulator's (tests/ladder_test.cc and
 * the onepass_equivalence ctest assert this).  Everything outside
 * the exact regime — Random/FIFO replacement, sectoring, stream
 * buffers, tagged prefetch, fully-associative geometry, references
 * that span a block — is rejected by ladderCollapsible() and falls
 * back to direct per-cell simulation.
 */

#ifndef MEMBW_EXEC_LADDER_SWEEP_HH
#define MEMBW_EXEC_LADDER_SWEEP_HH

#include <vector>

#include "cache/config.hh"
#include "cache/hierarchy.hh"
#include "exec/simd.hh"
#include "trace/block_stream.hh"

namespace membw {

/** Widest set the kernel's linear victim/probe scan accepts. */
constexpr unsigned ladderMaxWays = 16;

/**
 * True iff @p cfg alone is within the kernel's exact regime: a
 * set-associative (1..ladderMaxWays ways) LRU cache with power-of-two
 * geometry and no prefetch, sector, or stream-buffer features.  All
 * write/allocation policies are supported (write-validate runs the
 * masked variant of the kernel).
 */
bool ladderKernelSupported(const CacheConfig &cfg);

/**
 * True iff every config shares @p stream's block size, passes
 * ladderKernelSupported(), and the stream has no block-spanning
 * references — i.e. ladderSweep() will reproduce the direct
 * simulator exactly.
 */
bool ladderCollapsible(const BlockStream &stream,
                       const std::vector<CacheConfig> &configs);

/**
 * Traffic results for each config, in order, from a single chunked
 * pass over @p stream.  Precondition: ladderCollapsible().
 *
 * Runs the widest SIMD probe tier the host supports (simdTier());
 * the overload taking an explicit @p tier clamps it to the host
 * capability and exists for the tier-equivalence tests and for
 * MEMBW_SIMD=... A/B runs — every tier produces byte-identical
 * results.
 */
std::vector<TrafficResult>
ladderSweep(const BlockStream &stream,
            const std::vector<CacheConfig> &configs);

std::vector<TrafficResult>
ladderSweep(const BlockStream &stream,
            const std::vector<CacheConfig> &configs, SimdTier tier);

} // namespace membw

#endif // MEMBW_EXEC_LADDER_SWEEP_HH
