#include "exec/ladder_sweep.hh"

#include <algorithm>
#include <cstdint>

#include "common/bitops.hh"
#include "common/log.hh"
#include "exec/ladder_kernel.hh"

namespace membw {

bool
ladderKernelSupported(const CacheConfig &cfg)
{
    if (cfg.blockBytes < wordBytes || !isPowerOfTwo(cfg.blockBytes) ||
        cfg.blockBytes > 64 * wordBytes)
        return false;
    if (cfg.size == 0 || cfg.size % cfg.blockBytes != 0)
        return false;
    if (cfg.assoc < 1 || cfg.assoc > ladderMaxWays)
        return false;
    const std::uint64_t nblocks = cfg.size / cfg.blockBytes;
    if (cfg.assoc > nblocks || nblocks % cfg.assoc != 0 ||
        !isPowerOfTwo(nblocks / cfg.assoc))
        return false;
    if (cfg.repl != ReplPolicy::LRU || cfg.taggedPrefetch ||
        cfg.sectorBytes != 0 || cfg.streamBuffers != 0)
        return false;
    // validate() rejects this pairing; keep it on the (fatal)
    // direct path rather than silently simulating it.
    if (cfg.alloc == AllocPolicy::WriteValidate &&
        cfg.write == WritePolicy::WriteThrough)
        return false;
    return true;
}

bool
ladderCollapsible(const BlockStream &stream,
                  const std::vector<CacheConfig> &configs)
{
    if (configs.empty() || stream.spansBlock)
        return false;
    for (const CacheConfig &cfg : configs) {
        if (cfg.blockBytes != stream.blockBytes ||
            !ladderKernelSupported(cfg))
            return false;
    }
    return true;
}

std::vector<TrafficResult>
ladderSweep(const BlockStream &stream,
            const std::vector<CacheConfig> &configs, SimdTier tier)
{
    if (!ladderCollapsible(stream, configs))
        fatal("ladderSweep: configs are outside the one-pass regime "
              "(check ladderCollapsible first)");

    std::vector<ladder::ConfigSim> sims;
    sims.reserve(configs.size());
    for (const CacheConfig &cfg : configs) {
        ladder::ConfigSim &sim = sims.emplace_back(cfg);
        sim.kernel = ladder::selectKernel(sim.ways, tier, sim.masked,
                                          /*filtered=*/false);
    }

    for (std::size_t begin = 0; begin < stream.refs;
         begin += BlockStream::chunkRefs) {
        const std::size_t end =
            std::min(begin + BlockStream::chunkRefs, stream.refs);
        for (ladder::ConfigSim &sim : sims)
            sim.kernel(sim, stream, begin, end);
    }

    std::vector<TrafficResult> out;
    out.reserve(sims.size());
    for (ladder::ConfigSim &sim : sims) {
        sim.flush();
        out.push_back(ladder::ladderTraffic(stream, sim.stats));
    }
    return out;
}

std::vector<TrafficResult>
ladderSweep(const BlockStream &stream,
            const std::vector<CacheConfig> &configs)
{
    return ladderSweep(stream, configs, simdTier());
}

} // namespace membw
