#include "exec/ladder_sweep.hh"

#include <algorithm>
#include <bit>
#include <cstdint>

#include "common/bitops.hh"
#include "common/log.hh"

namespace membw {

namespace {

/** Empty tag sentinel: block numbers are addr >> log2(block) with
 * block >= 4B, so ~0 can never collide with a real block number. */
constexpr std::uint64_t tagInvalid = ~std::uint64_t{0};

/**
 * Flat-array replica of one Cache, specialized for the ladder
 * regime (LRU, no sector/stream/prefetch).  Lines live in three
 * parallel arrays indexed set * ways + way; the LRU sequence counter
 * and every counter update mirror Cache::access()/evict()/insert()
 * exactly, so the final CacheStats match the direct simulator bit
 * for bit.
 */
struct ConfigSim
{
    const CacheConfig *cfg = nullptr;
    unsigned ways = 1;
    std::uint64_t setMask = 0;
    Bytes blockBytes = 0;
    bool writeBack = true;
    AllocPolicy alloc = AllocPolicy::WriteAllocate;
    bool masked = false; ///< write-validate: per-word valid/dirty
    std::uint64_t fullMask = 0;

    std::uint64_t seq = 0;
    std::vector<std::uint64_t> tag;
    std::vector<std::uint64_t> lastUse;
    std::vector<std::uint64_t> validMask; ///< masked configs only
    std::vector<std::uint64_t> dirtyMask; ///< words dirty (!=0 = dirty)
    CacheStats stats;

    explicit ConfigSim(const CacheConfig &config)
        : cfg(&config),
          ways(config.ways()),
          setMask(config.sets() - 1),
          blockBytes(config.blockBytes),
          writeBack(config.write == WritePolicy::WriteBack),
          alloc(config.alloc),
          masked(config.alloc == AllocPolicy::WriteValidate)
    {
        const unsigned wordsPerBlock =
            static_cast<unsigned>(blockBytes / wordBytes);
        fullMask = wordsPerBlock == 64
                       ? ~std::uint64_t{0}
                       : (std::uint64_t{1} << wordsPerBlock) - 1;
        const std::size_t lines =
            static_cast<std::size_t>(config.sets()) * ways;
        tag.assign(lines, tagInvalid);
        lastUse.assign(lines, 0);
        dirtyMask.assign(lines, 0);
        if (masked)
            validMask.assign(lines, 0);
    }

    /**
     * Victim choice and eviction accounting, identical to
     * pickVictim() + evict(): first invalid way wins (no eviction
     * counted); otherwise the lowest-lastUse way — ties to the
     * lowest index — is displaced, with a write-back when dirty.
     */
    std::size_t
    allocate(std::uint64_t bn, std::size_t base)
    {
        std::size_t v = base;
        bool valid = true;
        for (unsigned w = 0; w < ways; ++w) {
            if (tag[base + w] == tagInvalid) {
                v = base + w;
                valid = false;
                break;
            }
        }
        if (valid) {
            for (unsigned w = 1; w < ways; ++w)
                if (lastUse[base + w] < lastUse[v])
                    v = base + w;
            stats.evictions++;
            if (dirtyMask[v]) {
                const Bytes wb =
                    masked ? static_cast<Bytes>(
                                 std::popcount(dirtyMask[v])) *
                                 wordBytes
                           : blockBytes;
                stats.writebacks++;
                stats.writebackBytes += wb;
            }
        }
        tag[v] = bn;
        lastUse[v] = ++seq;
        dirtyMask[v] = 0;
        if (masked)
            validMask[v] = 0;
        return v;
    }

    /** End-of-run flush, identical to Cache::flush(). */
    void
    flush()
    {
        for (std::size_t l = 0; l < tag.size(); ++l) {
            if (tag[l] == tagInvalid)
                continue;
            stats.evictions++;
            if (dirtyMask[l]) {
                const Bytes wb =
                    masked ? static_cast<Bytes>(
                                 std::popcount(dirtyMask[l])) *
                                 wordBytes
                           : blockBytes;
                stats.writebacks++;
                stats.flushWritebackBytes += wb;
            }
            tag[l] = tagInvalid;
        }
    }

    /**
     * Replay stream references [begin, end) — the maskless variant:
     * with sectoring off and no write-validate, a resident line is
     * always fully valid, so only a dirty flag (kept as the written
     * word mask) is tracked per line.
     */
    void
    runChunkPlain(const BlockStream &s, std::size_t begin,
                  std::size_t end)
    {
        for (std::size_t i = begin; i < end; ++i) {
            const std::uint64_t bn = s.blockNum[i];
            const std::size_t base =
                static_cast<std::size_t>(bn & setMask) * ways;
            std::size_t line = 0;
            bool hit = false;
            for (unsigned w = 0; w < ways; ++w) {
                if (tag[base + w] == bn) {
                    line = base + w;
                    hit = true;
                    break;
                }
            }
            if (!s.isStore[i]) {
                if (hit) {
                    stats.hits++;
                    lastUse[line] = ++seq;
                } else {
                    stats.misses++;
                    stats.loadMisses++;
                    allocate(bn, base);
                    stats.demandFetchBytes += blockBytes;
                }
                continue;
            }
            if (hit) {
                stats.hits++;
                lastUse[line] = ++seq;
                if (writeBack)
                    dirtyMask[line] |= s.wordMask[i];
                else
                    stats.writeThroughBytes += s.size[i];
                continue;
            }
            stats.misses++;
            stats.storeMisses++;
            if (alloc == AllocPolicy::WriteAllocate) {
                const std::size_t v = allocate(bn, base);
                stats.demandFetchBytes += blockBytes;
                if (writeBack)
                    dirtyMask[v] = s.wordMask[i];
                else
                    stats.writeThroughBytes += s.size[i];
            } else { // WriteNoAllocate
                stats.writeThroughBytes += s.size[i];
            }
        }
    }

    /**
     * Replay stream references [begin, end) — the write-validate
     * variant with per-word valid/dirty masks and partial fills
     * (validate() guarantees WV is write-back).
     */
    void
    runChunkMasked(const BlockStream &s, std::size_t begin,
                   std::size_t end)
    {
        for (std::size_t i = begin; i < end; ++i) {
            const std::uint64_t bn = s.blockNum[i];
            const std::uint64_t words = s.wordMask[i];
            const std::size_t base =
                static_cast<std::size_t>(bn & setMask) * ways;
            std::size_t line = 0;
            bool hit = false;
            for (unsigned w = 0; w < ways; ++w) {
                if (tag[base + w] == bn) {
                    line = base + w;
                    hit = true;
                    break;
                }
            }
            if (!s.isStore[i]) {
                if (hit) {
                    const std::uint64_t missing =
                        words & ~validMask[line];
                    if (missing) {
                        const Bytes bytes =
                            static_cast<Bytes>(
                                std::popcount(missing)) *
                            wordBytes;
                        stats.partialFills++;
                        stats.partialFillBytes += bytes;
                        validMask[line] |= missing;
                    }
                    stats.hits++;
                    lastUse[line] = ++seq;
                } else {
                    stats.misses++;
                    stats.loadMisses++;
                    const std::size_t v = allocate(bn, base);
                    validMask[v] = fullMask;
                    stats.demandFetchBytes += blockBytes;
                }
                continue;
            }
            if (hit) {
                stats.hits++;
                lastUse[line] = ++seq;
                validMask[line] |= words;
                dirtyMask[line] |= words;
                continue;
            }
            stats.misses++;
            stats.storeMisses++;
            // Write-validate: allocate without fetching; the written
            // words become valid and dirty.
            const std::size_t v = allocate(bn, base);
            validMask[v] = words;
            dirtyMask[v] = words;
        }
    }
};

} // namespace

bool
ladderKernelSupported(const CacheConfig &cfg)
{
    if (cfg.blockBytes < wordBytes || !isPowerOfTwo(cfg.blockBytes) ||
        cfg.blockBytes > 64 * wordBytes)
        return false;
    if (cfg.size == 0 || cfg.size % cfg.blockBytes != 0)
        return false;
    if (cfg.assoc < 1 || cfg.assoc > ladderMaxWays)
        return false;
    const std::uint64_t nblocks = cfg.size / cfg.blockBytes;
    if (cfg.assoc > nblocks || nblocks % cfg.assoc != 0 ||
        !isPowerOfTwo(nblocks / cfg.assoc))
        return false;
    if (cfg.repl != ReplPolicy::LRU || cfg.taggedPrefetch ||
        cfg.sectorBytes != 0 || cfg.streamBuffers != 0)
        return false;
    // validate() rejects this pairing; keep it on the (fatal)
    // direct path rather than silently simulating it.
    if (cfg.alloc == AllocPolicy::WriteValidate &&
        cfg.write == WritePolicy::WriteThrough)
        return false;
    return true;
}

bool
ladderCollapsible(const BlockStream &stream,
                  const std::vector<CacheConfig> &configs)
{
    if (configs.empty() || stream.spansBlock)
        return false;
    for (const CacheConfig &cfg : configs) {
        if (cfg.blockBytes != stream.blockBytes ||
            !ladderKernelSupported(cfg))
            return false;
    }
    return true;
}

std::vector<TrafficResult>
ladderSweep(const BlockStream &stream,
            const std::vector<CacheConfig> &configs)
{
    if (!ladderCollapsible(stream, configs))
        fatal("ladderSweep: configs are outside the one-pass regime "
              "(check ladderCollapsible first)");

    std::vector<ConfigSim> sims;
    sims.reserve(configs.size());
    for (const CacheConfig &cfg : configs)
        sims.emplace_back(cfg);

    for (std::size_t begin = 0; begin < stream.refs;
         begin += BlockStream::chunkRefs) {
        const std::size_t end =
            std::min(begin + BlockStream::chunkRefs, stream.refs);
        for (ConfigSim &sim : sims) {
            if (sim.masked)
                sim.runChunkMasked(stream, begin, end);
            else
                sim.runChunkPlain(stream, begin, end);
        }
    }

    std::vector<TrafficResult> out;
    out.reserve(sims.size());
    for (ConfigSim &sim : sims) {
        sim.flush();
        CacheStats &s = sim.stats;
        s.accesses = stream.refs;
        s.loads = stream.loads;
        s.stores = stream.stores;
        s.requestBytes = stream.requestBytes;

        TrafficResult r;
        r.requestBytes = s.requestBytes;
        r.pinBytes = s.trafficBelow();
        r.trafficRatio = s.trafficRatio();
        r.levelRatios = {s.trafficRatio()};
        r.levelTraffic = {s.trafficBelow()};
        r.levels = {s};
        r.l1 = s;
        out.push_back(std::move(r));
    }
    return out;
}

} // namespace membw
