#include "exec/simd.hh"

#include <algorithm>
#include <cstdlib>
#include <string>

namespace membw {

const char *
simdTierName(SimdTier tier)
{
    switch (tier) {
    case SimdTier::Avx2:
        return "avx2";
    case SimdTier::Sse2:
        return "sse2";
    case SimdTier::Scalar:
        break;
    }
    return "scalar";
}

namespace {

SimdTier
detectTier()
{
#if MEMBW_SIMD_X86
    SimdTier best = SimdTier::Sse2; // x86-64 baseline
    if (__builtin_cpu_supports("avx2"))
        best = SimdTier::Avx2;
#else
    SimdTier best = SimdTier::Scalar;
#endif
    // The environment override only clamps *down*: requesting a tier
    // the host lacks (or a name we don't know) is ignored rather
    // than risking an illegal-instruction trap.
    if (const char *env = std::getenv("MEMBW_SIMD")) {
        const std::string v = env;
        if (v == "scalar")
            best = SimdTier::Scalar;
        else if (v == "sse2")
            best = std::min(best, SimdTier::Sse2);
        else if (v == "avx2")
            best = std::min(best, SimdTier::Avx2);
    }
    return best;
}

} // namespace

SimdTier
simdTier()
{
    static const SimdTier tier = detectTier();
    return tier;
}

SimdTier
clampSimdTier(SimdTier requested)
{
    return std::min(requested, simdTier());
}

} // namespace membw
