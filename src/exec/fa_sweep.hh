/**
 * @file
 * One-pass collapse of fully-associative LRU size sweeps.
 *
 * Mattson's stack algorithm (cache/stack_distance.hh) yields the
 * miss count of *every* fully-associative LRU capacity in a single
 * O(n log n) trace pass.  For load-only traces with no prefetch,
 * stream buffers, or sectoring, a cache's entire traffic story is
 * determined by those miss counts — every miss fetches exactly one
 * full block and nothing is ever dirty — so an m-point size sweep
 * that would cost m trace passes through the direct simulator
 * collapses into one profiling pass plus m histogram lookups.
 *
 * The reconstruction is exact: faLruSizeSweep() reproduces, counter
 * for counter, the TrafficResult the direct simulator produces for
 * the same configs (sweep_test.cc asserts this).  When the geometry
 * or trace falls outside the exact regime, faLruCollapsible()
 * returns false and callers fall back to per-config simulation.
 */

#ifndef MEMBW_EXEC_FA_SWEEP_HH
#define MEMBW_EXEC_FA_SWEEP_HH

#include <vector>

#include "cache/config.hh"
#include "cache/hierarchy.hh"
#include "trace/trace.hh"

namespace membw {

class StackDistanceProfile;

/**
 * True iff the @p configs sweep over @p trace can be collapsed into
 * one stack-distance pass with exact results: every config is a
 * single-level fully-associative LRU cache with one common block
 * size and no prefetch/stream/sector features, and every reference
 * in the trace is a load contained in one block.
 */
bool faLruCollapsible(const Trace &trace,
                      const std::vector<CacheConfig> &configs);

/**
 * Traffic results for each config of a collapsible sweep, in order,
 * from a single trace pass.  Precondition: faLruCollapsible().
 */
std::vector<TrafficResult>
faLruSizeSweep(const Trace &trace,
               const std::vector<CacheConfig> &configs);

/**
 * As above, but reusing a precomputed @p profile (which must be
 * StackDistanceProfile(trace, configs.front().blockBytes)) instead of
 * re-walking the trace — the artifact-cache hook for the daemon,
 * where the profile is memoized by trace CRC + block size.
 */
std::vector<TrafficResult>
faLruSizeSweep(const Trace &trace,
               const std::vector<CacheConfig> &configs,
               const StackDistanceProfile &profile);

} // namespace membw

#endif // MEMBW_EXEC_FA_SWEEP_HH
