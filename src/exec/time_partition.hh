/**
 * @file
 * Intra-trace parallelism for the ladder kernel: make ONE
 * configuration (or a handful) scale across ThreadPool workers
 * instead of only scaling across many sweep cells.
 *
 * Two strategies live here:
 *
 * **Set partitioning (exact, the production path).**  The sets of a
 * set-associative cache never interact — a reference touches exactly
 * the set its block number indexes, and LRU state, dirty masks and
 * every traffic counter are per-set.  So the set index range is
 * split across workers; each worker scans the whole reference stream
 * but simulates only its owned sets (the Filtered kernel variant in
 * ladder_kernel.hh), and the per-worker CacheStats are summed in
 * part order.  Each worker's private LRU sequence counter preserves
 * the per-set reference order — the only order LRU decisions depend
 * on — and integer sums are associative, so the merged result is
 * byte-identical to the serial kernel at ANY worker/partition count.
 * That is what lets the --no-partition escape hatch demand a byte
 * diff, not a tolerance.  The cost model: every worker still streams
 * the decode arrays (read bandwidth is shared), but tag/LRU state
 * per worker shrinks by the partition factor, and the skip test is
 * one subtract+compare per reference.
 *
 * **Time slicing with warm-up windows (approximate, the study
 * path).**  Sampled-simulation style: the trace is cut into S time
 * slices; each worker cold-starts, replays a warm-up window of W
 * references before its slice to reconstruct cache state, zeroes its
 * counters, then counts its own slice (the last slice also flushes).
 * Cold-start state is the only approximation, so W >= trace length
 * degenerates to the exact serial result — the property the unit
 * tests pin — and the error shrinks monotonically-in-expectation as
 * W grows while redundant replay work grows as S*W.
 * timeSlicedLadderEstimate() exists to *measure* that trade-off (the
 * exactness-vs-warm-up-window report in micro_throughput and
 * docs/performance.md); results routed to users always come from the
 * exact set-partitioned path.
 */

#ifndef MEMBW_EXEC_TIME_PARTITION_HH
#define MEMBW_EXEC_TIME_PARTITION_HH

#include <cstddef>
#include <functional>
#include <optional>
#include <vector>

#include "cache/cache.hh"
#include "cache/config.hh"
#include "cache/hierarchy.hh"
#include "exec/ladder_sweep.hh"
#include "exec/simd.hh"
#include "trace/block_stream.hh"

namespace membw {

/** Knobs for the partitioned ladder runs. */
struct PartitionOptions
{
    /** Worker threads (parallelSweep semantics; 1 runs inline). */
    unsigned jobs = 1;

    /**
     * Set partitions per configuration; 0 derives it from jobs and
     * the config count (enough parts that jobs workers stay busy).
     * Clamped per config to its set count — a 1-set config cannot
     * split and simply runs serial.
     */
    unsigned parts = 0;

    /** Probe tier (clamped to host capability); defaults to the
     * widest supported. */
    SimdTier tier = simdTier();

    /** Polled between cells; true stops scheduling (interrupt). */
    std::function<bool()> cancel;
};

/**
 * Effective partition count for @p cfg: requested (or derived)
 * parts, clamped to the config's set count and to at least 1.
 */
unsigned partitionPartsFor(const CacheConfig &cfg, unsigned jobs,
                           unsigned parts, std::size_t configCount);

/**
 * Exact set-partitioned equivalent of ladderSweep(): traffic results
 * for each config, in order, byte-identical to the serial kernel at
 * any jobs/parts.  Precondition: ladderCollapsible(stream, configs).
 * Returns nullopt iff opts.cancel interrupted the run (partial
 * partition results are meaningless — a config is only correct once
 * every one of its set ranges has been replayed).
 */
std::optional<std::vector<TrafficResult>>
partitionedLadderSweep(const BlockStream &stream,
                       const std::vector<CacheConfig> &configs,
                       const PartitionOptions &opts);

/** Single-config convenience wrapper around the sweep form. */
std::optional<TrafficResult>
partitionedLadderRun(const BlockStream &stream,
                     const CacheConfig &cfg,
                     const PartitionOptions &opts);

/** How a fused word-kernel attempt ended. */
enum class WordRunOutcome
{
    Done,        ///< result is valid
    Interrupted, ///< opts.cancel fired; result untouched
    NotAllWord,  ///< trace has a non-word ref; rerun via BlockStream
};

/**
 * Fused-decode variant: set-partitioned replay straight off the
 * MemRef array, with no BlockStream materialized at all.  Exactly
 * equivalent to buildBlockStream() + partitionedLadderRun() — the
 * WordSource kernels derive the identical per-reference tuple from
 * the address — but skips the decode pass entirely, which matters
 * because the decode runs at memory speed and the single-config run
 * pays it un-amortized.
 *
 * The all-word eligibility is NOT pre-scanned: the run is optimistic,
 * the kernels validate each reference inline (and count the trace
 * totals as they go), and the first violating reference aborts the
 * attempt with NotAllWord — the caller then falls back to the
 * decoded-stream path.  An eligible trace therefore pays zero extra
 * passes over the reference array.  Precondition:
 * ladderKernelSupported(cfg).
 */
WordRunOutcome
partitionedLadderRunWord(const Trace &trace, const CacheConfig &cfg,
                         const PartitionOptions &opts,
                         TrafficResult &result);

/** Outcome of one time-sliced approximate run. */
struct TimeSliceEstimate
{
    /** Approximate traffic result (exact when warmupWindow covers
     * the whole stream). */
    TrafficResult result;

    std::size_t slices = 0;
    std::size_t warmupWindow = 0; ///< requested W, in references

    /** Redundant warm-up references actually replayed across all
     * slices (the extra work the approximation costs). */
    std::size_t warmupRefs = 0;
};

/**
 * Time-sliced warm-up-window estimator for ONE config (see file
 * header).  Exactness property: warmupWindow >= stream.refs makes
 * the result byte-identical to ladderSweep().  Precondition:
 * ladderCollapsible(stream, {cfg}); slices >= 1.
 */
TimeSliceEstimate
timeSlicedLadderEstimate(const BlockStream &stream,
                         const CacheConfig &cfg, unsigned slices,
                         std::size_t warmupWindow,
                         const PartitionOptions &opts);

} // namespace membw

#endif // MEMBW_EXEC_TIME_PARTITION_HH
