add_test([=[GoldenTraces.FingerprintsAreStable]=]  /root/repo/build/tests/test_golden [==[--gtest_filter=GoldenTraces.FingerprintsAreStable]==] --gtest_also_run_disabled_tests)
set_tests_properties([=[GoldenTraces.FingerprintsAreStable]=]  PROPERTIES WORKING_DIRECTORY /root/repo/build/tests SKIP_REGULAR_EXPRESSION [==[\[  SKIPPED \]]==])
set(  test_golden_TESTS GoldenTraces.FingerprintsAreStable)
