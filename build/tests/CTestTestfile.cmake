# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/test_common[1]_include.cmake")
include("/root/repo/build/tests/test_trace[1]_include.cmake")
include("/root/repo/build/tests/test_cache[1]_include.cmake")
include("/root/repo/build/tests/test_hierarchy[1]_include.cmake")
include("/root/repo/build/tests/test_mtc[1]_include.cmake")
include("/root/repo/build/tests/test_property[1]_include.cmake")
include("/root/repo/build/tests/test_workloads[1]_include.cmake")
include("/root/repo/build/tests/test_cpu[1]_include.cmake")
include("/root/repo/build/tests/test_metrics[1]_include.cmake")
include("/root/repo/build/tests/test_analysis[1]_include.cmake")
include("/root/repo/build/tests/test_integration[1]_include.cmake")
include("/root/repo/build/tests/test_extensions[1]_include.cmake")
include("/root/repo/build/tests/test_ifetch[1]_include.cmake")
include("/root/repo/build/tests/test_golden[1]_include.cmake")
include("/root/repo/build/tests/test_dram[1]_include.cmake")
include("/root/repo/build/tests/test_core_behavior[1]_include.cmake")
include("/root/repo/build/tests/test_sweep[1]_include.cmake")
