
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/sweep_test.cc" "tests/CMakeFiles/test_sweep.dir/sweep_test.cc.o" "gcc" "tests/CMakeFiles/test_sweep.dir/sweep_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/mtc/CMakeFiles/membw_mtc.dir/DependInfo.cmake"
  "/root/repo/build/src/cpu/CMakeFiles/membw_cpu.dir/DependInfo.cmake"
  "/root/repo/build/src/workloads/CMakeFiles/membw_workloads.dir/DependInfo.cmake"
  "/root/repo/build/src/cache/CMakeFiles/membw_cache.dir/DependInfo.cmake"
  "/root/repo/build/src/trace/CMakeFiles/membw_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/dram/CMakeFiles/membw_dram.dir/DependInfo.cmake"
  "/root/repo/build/src/metrics/CMakeFiles/membw_metrics.dir/DependInfo.cmake"
  "/root/repo/build/src/analysis/CMakeFiles/membw_analysis.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/membw_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
