# Empty dependencies file for test_core_behavior.
# This may be replaced when dependencies are built.
