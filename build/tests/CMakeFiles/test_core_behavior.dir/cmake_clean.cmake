file(REMOVE_RECURSE
  "CMakeFiles/test_core_behavior.dir/core_behavior_test.cc.o"
  "CMakeFiles/test_core_behavior.dir/core_behavior_test.cc.o.d"
  "test_core_behavior"
  "test_core_behavior.pdb"
  "test_core_behavior[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_core_behavior.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
