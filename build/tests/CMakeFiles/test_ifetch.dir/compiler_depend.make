# Empty compiler generated dependencies file for test_ifetch.
# This may be replaced when dependencies are built.
