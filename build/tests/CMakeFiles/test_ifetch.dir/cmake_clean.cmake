file(REMOVE_RECURSE
  "CMakeFiles/test_ifetch.dir/ifetch_test.cc.o"
  "CMakeFiles/test_ifetch.dir/ifetch_test.cc.o.d"
  "test_ifetch"
  "test_ifetch.pdb"
  "test_ifetch[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_ifetch.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
