file(REMOVE_RECURSE
  "CMakeFiles/test_mtc.dir/mtc_test.cc.o"
  "CMakeFiles/test_mtc.dir/mtc_test.cc.o.d"
  "test_mtc"
  "test_mtc.pdb"
  "test_mtc[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_mtc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
