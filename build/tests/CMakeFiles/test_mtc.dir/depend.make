# Empty dependencies file for test_mtc.
# This may be replaced when dependencies are built.
