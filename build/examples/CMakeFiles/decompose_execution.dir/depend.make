# Empty dependencies file for decompose_execution.
# This may be replaced when dependencies are built.
