file(REMOVE_RECURSE
  "CMakeFiles/decompose_execution.dir/decompose_execution.cpp.o"
  "CMakeFiles/decompose_execution.dir/decompose_execution.cpp.o.d"
  "decompose_execution"
  "decompose_execution.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/decompose_execution.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
