file(REMOVE_RECURSE
  "CMakeFiles/cache_design_explorer.dir/cache_design_explorer.cpp.o"
  "CMakeFiles/cache_design_explorer.dir/cache_design_explorer.cpp.o.d"
  "cache_design_explorer"
  "cache_design_explorer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cache_design_explorer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
