# Empty dependencies file for cache_design_explorer.
# This may be replaced when dependencies are built.
