file(REMOVE_RECURSE
  "CMakeFiles/optimal_cache_study.dir/optimal_cache_study.cpp.o"
  "CMakeFiles/optimal_cache_study.dir/optimal_cache_study.cpp.o.d"
  "optimal_cache_study"
  "optimal_cache_study.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/optimal_cache_study.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
