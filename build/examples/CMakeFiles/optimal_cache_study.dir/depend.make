# Empty dependencies file for optimal_cache_study.
# This may be replaced when dependencies are built.
