file(REMOVE_RECURSE
  "CMakeFiles/working_set_curves.dir/working_set_curves.cpp.o"
  "CMakeFiles/working_set_curves.dir/working_set_curves.cpp.o.d"
  "working_set_curves"
  "working_set_curves.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/working_set_curves.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
