# Empty dependencies file for working_set_curves.
# This may be replaced when dependencies are built.
