# Empty dependencies file for sec53_flexible_blocks.
# This may be replaced when dependencies are built.
