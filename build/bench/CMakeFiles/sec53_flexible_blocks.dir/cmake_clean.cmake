file(REMOVE_RECURSE
  "CMakeFiles/sec53_flexible_blocks.dir/sec53_flexible_blocks.cc.o"
  "CMakeFiles/sec53_flexible_blocks.dir/sec53_flexible_blocks.cc.o.d"
  "sec53_flexible_blocks"
  "sec53_flexible_blocks.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sec53_flexible_blocks.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
