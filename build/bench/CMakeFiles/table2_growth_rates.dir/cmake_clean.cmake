file(REMOVE_RECURSE
  "CMakeFiles/table2_growth_rates.dir/table2_growth_rates.cc.o"
  "CMakeFiles/table2_growth_rates.dir/table2_growth_rates.cc.o.d"
  "table2_growth_rates"
  "table2_growth_rates.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table2_growth_rates.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
