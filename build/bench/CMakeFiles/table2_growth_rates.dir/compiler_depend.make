# Empty compiler generated dependencies file for table2_growth_rates.
# This may be replaced when dependencies are built.
