# Empty compiler generated dependencies file for ablation_dram_interface.
# This may be replaced when dependencies are built.
