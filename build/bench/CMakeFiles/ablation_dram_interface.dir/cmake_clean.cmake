file(REMOVE_RECURSE
  "CMakeFiles/ablation_dram_interface.dir/ablation_dram_interface.cc.o"
  "CMakeFiles/ablation_dram_interface.dir/ablation_dram_interface.cc.o.d"
  "ablation_dram_interface"
  "ablation_dram_interface.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_dram_interface.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
