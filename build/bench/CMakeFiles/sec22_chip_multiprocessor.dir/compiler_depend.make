# Empty compiler generated dependencies file for sec22_chip_multiprocessor.
# This may be replaced when dependencies are built.
