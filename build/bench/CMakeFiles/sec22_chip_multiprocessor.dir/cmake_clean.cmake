file(REMOVE_RECURSE
  "CMakeFiles/sec22_chip_multiprocessor.dir/sec22_chip_multiprocessor.cc.o"
  "CMakeFiles/sec22_chip_multiprocessor.dir/sec22_chip_multiprocessor.cc.o.d"
  "sec22_chip_multiprocessor"
  "sec22_chip_multiprocessor.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sec22_chip_multiprocessor.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
