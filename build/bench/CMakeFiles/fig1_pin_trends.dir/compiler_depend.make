# Empty compiler generated dependencies file for fig1_pin_trends.
# This may be replaced when dependencies are built.
