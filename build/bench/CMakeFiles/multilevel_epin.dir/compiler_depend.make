# Empty compiler generated dependencies file for multilevel_epin.
# This may be replaced when dependencies are built.
