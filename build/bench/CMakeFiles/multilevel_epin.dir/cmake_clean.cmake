file(REMOVE_RECURSE
  "CMakeFiles/multilevel_epin.dir/multilevel_epin.cc.o"
  "CMakeFiles/multilevel_epin.dir/multilevel_epin.cc.o.d"
  "multilevel_epin"
  "multilevel_epin.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/multilevel_epin.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
