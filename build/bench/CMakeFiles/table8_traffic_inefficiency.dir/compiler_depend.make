# Empty compiler generated dependencies file for table8_traffic_inefficiency.
# This may be replaced when dependencies are built.
