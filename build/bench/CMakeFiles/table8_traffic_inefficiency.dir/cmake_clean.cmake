file(REMOVE_RECURSE
  "CMakeFiles/table8_traffic_inefficiency.dir/table8_traffic_inefficiency.cc.o"
  "CMakeFiles/table8_traffic_inefficiency.dir/table8_traffic_inefficiency.cc.o.d"
  "table8_traffic_inefficiency"
  "table8_traffic_inefficiency.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table8_traffic_inefficiency.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
