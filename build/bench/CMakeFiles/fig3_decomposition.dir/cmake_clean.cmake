file(REMOVE_RECURSE
  "CMakeFiles/fig3_decomposition.dir/fig3_decomposition.cc.o"
  "CMakeFiles/fig3_decomposition.dir/fig3_decomposition.cc.o.d"
  "fig3_decomposition"
  "fig3_decomposition.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig3_decomposition.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
