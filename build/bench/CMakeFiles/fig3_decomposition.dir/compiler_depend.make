# Empty compiler generated dependencies file for fig3_decomposition.
# This may be replaced when dependencies are built.
