# Empty dependencies file for sec6_future_systems.
# This may be replaced when dependencies are built.
