file(REMOVE_RECURSE
  "CMakeFiles/sec6_future_systems.dir/sec6_future_systems.cc.o"
  "CMakeFiles/sec6_future_systems.dir/sec6_future_systems.cc.o.d"
  "sec6_future_systems"
  "sec6_future_systems.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sec6_future_systems.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
