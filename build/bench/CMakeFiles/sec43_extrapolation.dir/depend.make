# Empty dependencies file for sec43_extrapolation.
# This may be replaced when dependencies are built.
