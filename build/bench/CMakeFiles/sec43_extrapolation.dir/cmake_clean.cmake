file(REMOVE_RECURSE
  "CMakeFiles/sec43_extrapolation.dir/sec43_extrapolation.cc.o"
  "CMakeFiles/sec43_extrapolation.dir/sec43_extrapolation.cc.o.d"
  "sec43_extrapolation"
  "sec43_extrapolation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sec43_extrapolation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
