file(REMOVE_RECURSE
  "CMakeFiles/ablation_stream_buffers.dir/ablation_stream_buffers.cc.o"
  "CMakeFiles/ablation_stream_buffers.dir/ablation_stream_buffers.cc.o.d"
  "ablation_stream_buffers"
  "ablation_stream_buffers.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_stream_buffers.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
