# Empty dependencies file for ablation_stream_buffers.
# This may be replaced when dependencies are built.
