# Empty compiler generated dependencies file for table7_traffic_ratios.
# This may be replaced when dependencies are built.
