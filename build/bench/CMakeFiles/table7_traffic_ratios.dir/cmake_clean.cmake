file(REMOVE_RECURSE
  "CMakeFiles/table7_traffic_ratios.dir/table7_traffic_ratios.cc.o"
  "CMakeFiles/table7_traffic_ratios.dir/table7_traffic_ratios.cc.o.d"
  "table7_traffic_ratios"
  "table7_traffic_ratios.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table7_traffic_ratios.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
