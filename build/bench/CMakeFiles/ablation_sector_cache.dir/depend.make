# Empty dependencies file for ablation_sector_cache.
# This may be replaced when dependencies are built.
