file(REMOVE_RECURSE
  "CMakeFiles/ablation_sector_cache.dir/ablation_sector_cache.cc.o"
  "CMakeFiles/ablation_sector_cache.dir/ablation_sector_cache.cc.o.d"
  "ablation_sector_cache"
  "ablation_sector_cache.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_sector_cache.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
