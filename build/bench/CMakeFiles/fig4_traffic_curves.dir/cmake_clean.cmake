file(REMOVE_RECURSE
  "CMakeFiles/fig4_traffic_curves.dir/fig4_traffic_curves.cc.o"
  "CMakeFiles/fig4_traffic_curves.dir/fig4_traffic_curves.cc.o.d"
  "fig4_traffic_curves"
  "fig4_traffic_curves.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig4_traffic_curves.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
