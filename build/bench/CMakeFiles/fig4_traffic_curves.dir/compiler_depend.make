# Empty compiler generated dependencies file for fig4_traffic_curves.
# This may be replaced when dependencies are built.
