# Empty dependencies file for table1_technique_effects.
# This may be replaced when dependencies are built.
