file(REMOVE_RECURSE
  "CMakeFiles/table1_technique_effects.dir/table1_technique_effects.cc.o"
  "CMakeFiles/table1_technique_effects.dir/table1_technique_effects.cc.o.d"
  "table1_technique_effects"
  "table1_technique_effects.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table1_technique_effects.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
