# Empty compiler generated dependencies file for table9_factor_isolation.
# This may be replaced when dependencies are built.
