file(REMOVE_RECURSE
  "CMakeFiles/table9_factor_isolation.dir/table9_factor_isolation.cc.o"
  "CMakeFiles/table9_factor_isolation.dir/table9_factor_isolation.cc.o.d"
  "table9_factor_isolation"
  "table9_factor_isolation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table9_factor_isolation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
