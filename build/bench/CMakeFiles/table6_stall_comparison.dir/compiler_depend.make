# Empty compiler generated dependencies file for table6_stall_comparison.
# This may be replaced when dependencies are built.
