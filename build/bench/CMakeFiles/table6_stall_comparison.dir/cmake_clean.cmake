file(REMOVE_RECURSE
  "CMakeFiles/table6_stall_comparison.dir/table6_stall_comparison.cc.o"
  "CMakeFiles/table6_stall_comparison.dir/table6_stall_comparison.cc.o.d"
  "table6_stall_comparison"
  "table6_stall_comparison.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table6_stall_comparison.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
