file(REMOVE_RECURSE
  "CMakeFiles/ablation_write_aware_min.dir/ablation_write_aware_min.cc.o"
  "CMakeFiles/ablation_write_aware_min.dir/ablation_write_aware_min.cc.o.d"
  "ablation_write_aware_min"
  "ablation_write_aware_min.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_write_aware_min.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
