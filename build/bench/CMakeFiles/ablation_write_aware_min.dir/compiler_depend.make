# Empty compiler generated dependencies file for ablation_write_aware_min.
# This may be replaced when dependencies are built.
