# Empty dependencies file for membw_trace.
# This may be replaced when dependencies are built.
