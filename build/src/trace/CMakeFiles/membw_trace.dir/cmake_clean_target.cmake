file(REMOVE_RECURSE
  "libmembw_trace.a"
)
