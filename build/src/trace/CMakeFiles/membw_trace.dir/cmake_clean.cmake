file(REMOVE_RECURSE
  "CMakeFiles/membw_trace.dir/recorder.cc.o"
  "CMakeFiles/membw_trace.dir/recorder.cc.o.d"
  "CMakeFiles/membw_trace.dir/trace.cc.o"
  "CMakeFiles/membw_trace.dir/trace.cc.o.d"
  "CMakeFiles/membw_trace.dir/trace_io.cc.o"
  "CMakeFiles/membw_trace.dir/trace_io.cc.o.d"
  "libmembw_trace.a"
  "libmembw_trace.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/membw_trace.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
