file(REMOVE_RECURSE
  "libmembw_cpu.a"
)
