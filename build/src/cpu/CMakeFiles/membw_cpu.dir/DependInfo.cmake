
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/cpu/core.cc" "src/cpu/CMakeFiles/membw_cpu.dir/core.cc.o" "gcc" "src/cpu/CMakeFiles/membw_cpu.dir/core.cc.o.d"
  "/root/repo/src/cpu/experiment.cc" "src/cpu/CMakeFiles/membw_cpu.dir/experiment.cc.o" "gcc" "src/cpu/CMakeFiles/membw_cpu.dir/experiment.cc.o.d"
  "/root/repo/src/cpu/instr_stream.cc" "src/cpu/CMakeFiles/membw_cpu.dir/instr_stream.cc.o" "gcc" "src/cpu/CMakeFiles/membw_cpu.dir/instr_stream.cc.o.d"
  "/root/repo/src/cpu/memsys.cc" "src/cpu/CMakeFiles/membw_cpu.dir/memsys.cc.o" "gcc" "src/cpu/CMakeFiles/membw_cpu.dir/memsys.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/membw_common.dir/DependInfo.cmake"
  "/root/repo/build/src/trace/CMakeFiles/membw_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/cache/CMakeFiles/membw_cache.dir/DependInfo.cmake"
  "/root/repo/build/src/dram/CMakeFiles/membw_dram.dir/DependInfo.cmake"
  "/root/repo/build/src/workloads/CMakeFiles/membw_workloads.dir/DependInfo.cmake"
  "/root/repo/build/src/metrics/CMakeFiles/membw_metrics.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
