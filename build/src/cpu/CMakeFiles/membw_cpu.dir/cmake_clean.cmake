file(REMOVE_RECURSE
  "CMakeFiles/membw_cpu.dir/core.cc.o"
  "CMakeFiles/membw_cpu.dir/core.cc.o.d"
  "CMakeFiles/membw_cpu.dir/experiment.cc.o"
  "CMakeFiles/membw_cpu.dir/experiment.cc.o.d"
  "CMakeFiles/membw_cpu.dir/instr_stream.cc.o"
  "CMakeFiles/membw_cpu.dir/instr_stream.cc.o.d"
  "CMakeFiles/membw_cpu.dir/memsys.cc.o"
  "CMakeFiles/membw_cpu.dir/memsys.cc.o.d"
  "libmembw_cpu.a"
  "libmembw_cpu.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/membw_cpu.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
