# Empty dependencies file for membw_cpu.
# This may be replaced when dependencies are built.
