file(REMOVE_RECURSE
  "CMakeFiles/membw_cache.dir/cache.cc.o"
  "CMakeFiles/membw_cache.dir/cache.cc.o.d"
  "CMakeFiles/membw_cache.dir/config.cc.o"
  "CMakeFiles/membw_cache.dir/config.cc.o.d"
  "CMakeFiles/membw_cache.dir/hierarchy.cc.o"
  "CMakeFiles/membw_cache.dir/hierarchy.cc.o.d"
  "CMakeFiles/membw_cache.dir/stack_distance.cc.o"
  "CMakeFiles/membw_cache.dir/stack_distance.cc.o.d"
  "libmembw_cache.a"
  "libmembw_cache.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/membw_cache.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
