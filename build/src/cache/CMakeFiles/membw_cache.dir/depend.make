# Empty dependencies file for membw_cache.
# This may be replaced when dependencies are built.
