file(REMOVE_RECURSE
  "libmembw_cache.a"
)
