file(REMOVE_RECURSE
  "libmembw_metrics.a"
)
