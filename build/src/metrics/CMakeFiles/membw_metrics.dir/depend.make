# Empty dependencies file for membw_metrics.
# This may be replaced when dependencies are built.
