file(REMOVE_RECURSE
  "CMakeFiles/membw_metrics.dir/decomposition.cc.o"
  "CMakeFiles/membw_metrics.dir/decomposition.cc.o.d"
  "CMakeFiles/membw_metrics.dir/traffic.cc.o"
  "CMakeFiles/membw_metrics.dir/traffic.cc.o.d"
  "libmembw_metrics.a"
  "libmembw_metrics.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/membw_metrics.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
