
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/workloads/bitvector.cc" "src/workloads/CMakeFiles/membw_workloads.dir/bitvector.cc.o" "gcc" "src/workloads/CMakeFiles/membw_workloads.dir/bitvector.cc.o.d"
  "/root/repo/src/workloads/conflict_arrays.cc" "src/workloads/CMakeFiles/membw_workloads.dir/conflict_arrays.cc.o" "gcc" "src/workloads/CMakeFiles/membw_workloads.dir/conflict_arrays.cc.o.d"
  "/root/repo/src/workloads/fft_mm.cc" "src/workloads/CMakeFiles/membw_workloads.dir/fft_mm.cc.o" "gcc" "src/workloads/CMakeFiles/membw_workloads.dir/fft_mm.cc.o.d"
  "/root/repo/src/workloads/hash_table.cc" "src/workloads/CMakeFiles/membw_workloads.dir/hash_table.cc.o" "gcc" "src/workloads/CMakeFiles/membw_workloads.dir/hash_table.cc.o.d"
  "/root/repo/src/workloads/object_db.cc" "src/workloads/CMakeFiles/membw_workloads.dir/object_db.cc.o" "gcc" "src/workloads/CMakeFiles/membw_workloads.dir/object_db.cc.o.d"
  "/root/repo/src/workloads/pointer_chase.cc" "src/workloads/CMakeFiles/membw_workloads.dir/pointer_chase.cc.o" "gcc" "src/workloads/CMakeFiles/membw_workloads.dir/pointer_chase.cc.o.d"
  "/root/repo/src/workloads/registry.cc" "src/workloads/CMakeFiles/membw_workloads.dir/registry.cc.o" "gcc" "src/workloads/CMakeFiles/membw_workloads.dir/registry.cc.o.d"
  "/root/repo/src/workloads/small_set.cc" "src/workloads/CMakeFiles/membw_workloads.dir/small_set.cc.o" "gcc" "src/workloads/CMakeFiles/membw_workloads.dir/small_set.cc.o.d"
  "/root/repo/src/workloads/streaming.cc" "src/workloads/CMakeFiles/membw_workloads.dir/streaming.cc.o" "gcc" "src/workloads/CMakeFiles/membw_workloads.dir/streaming.cc.o.d"
  "/root/repo/src/workloads/workload.cc" "src/workloads/CMakeFiles/membw_workloads.dir/workload.cc.o" "gcc" "src/workloads/CMakeFiles/membw_workloads.dir/workload.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/membw_common.dir/DependInfo.cmake"
  "/root/repo/build/src/trace/CMakeFiles/membw_trace.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
