# Empty dependencies file for membw_workloads.
# This may be replaced when dependencies are built.
