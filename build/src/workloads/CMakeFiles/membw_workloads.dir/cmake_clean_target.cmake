file(REMOVE_RECURSE
  "libmembw_workloads.a"
)
