file(REMOVE_RECURSE
  "CMakeFiles/membw_workloads.dir/bitvector.cc.o"
  "CMakeFiles/membw_workloads.dir/bitvector.cc.o.d"
  "CMakeFiles/membw_workloads.dir/conflict_arrays.cc.o"
  "CMakeFiles/membw_workloads.dir/conflict_arrays.cc.o.d"
  "CMakeFiles/membw_workloads.dir/fft_mm.cc.o"
  "CMakeFiles/membw_workloads.dir/fft_mm.cc.o.d"
  "CMakeFiles/membw_workloads.dir/hash_table.cc.o"
  "CMakeFiles/membw_workloads.dir/hash_table.cc.o.d"
  "CMakeFiles/membw_workloads.dir/object_db.cc.o"
  "CMakeFiles/membw_workloads.dir/object_db.cc.o.d"
  "CMakeFiles/membw_workloads.dir/pointer_chase.cc.o"
  "CMakeFiles/membw_workloads.dir/pointer_chase.cc.o.d"
  "CMakeFiles/membw_workloads.dir/registry.cc.o"
  "CMakeFiles/membw_workloads.dir/registry.cc.o.d"
  "CMakeFiles/membw_workloads.dir/small_set.cc.o"
  "CMakeFiles/membw_workloads.dir/small_set.cc.o.d"
  "CMakeFiles/membw_workloads.dir/streaming.cc.o"
  "CMakeFiles/membw_workloads.dir/streaming.cc.o.d"
  "CMakeFiles/membw_workloads.dir/workload.cc.o"
  "CMakeFiles/membw_workloads.dir/workload.cc.o.d"
  "libmembw_workloads.a"
  "libmembw_workloads.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/membw_workloads.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
