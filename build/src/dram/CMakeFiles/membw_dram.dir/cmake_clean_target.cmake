file(REMOVE_RECURSE
  "libmembw_dram.a"
)
