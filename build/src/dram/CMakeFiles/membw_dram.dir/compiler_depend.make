# Empty compiler generated dependencies file for membw_dram.
# This may be replaced when dependencies are built.
