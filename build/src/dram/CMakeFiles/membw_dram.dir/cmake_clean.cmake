file(REMOVE_RECURSE
  "CMakeFiles/membw_dram.dir/dram.cc.o"
  "CMakeFiles/membw_dram.dir/dram.cc.o.d"
  "libmembw_dram.a"
  "libmembw_dram.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/membw_dram.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
