# Empty dependencies file for membw_common.
# This may be replaced when dependencies are built.
