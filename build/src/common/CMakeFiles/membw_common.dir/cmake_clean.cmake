file(REMOVE_RECURSE
  "CMakeFiles/membw_common.dir/stats.cc.o"
  "CMakeFiles/membw_common.dir/stats.cc.o.d"
  "CMakeFiles/membw_common.dir/table.cc.o"
  "CMakeFiles/membw_common.dir/table.cc.o.d"
  "libmembw_common.a"
  "libmembw_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/membw_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
