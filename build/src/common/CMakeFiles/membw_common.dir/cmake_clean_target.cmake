file(REMOVE_RECURSE
  "libmembw_common.a"
)
