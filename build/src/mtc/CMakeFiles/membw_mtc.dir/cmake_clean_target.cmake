file(REMOVE_RECURSE
  "libmembw_mtc.a"
)
