
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/mtc/min_cache.cc" "src/mtc/CMakeFiles/membw_mtc.dir/min_cache.cc.o" "gcc" "src/mtc/CMakeFiles/membw_mtc.dir/min_cache.cc.o.d"
  "/root/repo/src/mtc/next_use.cc" "src/mtc/CMakeFiles/membw_mtc.dir/next_use.cc.o" "gcc" "src/mtc/CMakeFiles/membw_mtc.dir/next_use.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/membw_common.dir/DependInfo.cmake"
  "/root/repo/build/src/trace/CMakeFiles/membw_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/cache/CMakeFiles/membw_cache.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
