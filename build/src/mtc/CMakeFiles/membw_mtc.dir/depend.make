# Empty dependencies file for membw_mtc.
# This may be replaced when dependencies are built.
