file(REMOVE_RECURSE
  "CMakeFiles/membw_mtc.dir/min_cache.cc.o"
  "CMakeFiles/membw_mtc.dir/min_cache.cc.o.d"
  "CMakeFiles/membw_mtc.dir/next_use.cc.o"
  "CMakeFiles/membw_mtc.dir/next_use.cc.o.d"
  "libmembw_mtc.a"
  "libmembw_mtc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/membw_mtc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
