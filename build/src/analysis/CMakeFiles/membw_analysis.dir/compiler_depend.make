# Empty compiler generated dependencies file for membw_analysis.
# This may be replaced when dependencies are built.
