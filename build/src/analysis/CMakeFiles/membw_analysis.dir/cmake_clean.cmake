file(REMOVE_RECURSE
  "CMakeFiles/membw_analysis.dir/extrapolation.cc.o"
  "CMakeFiles/membw_analysis.dir/extrapolation.cc.o.d"
  "CMakeFiles/membw_analysis.dir/growth_models.cc.o"
  "CMakeFiles/membw_analysis.dir/growth_models.cc.o.d"
  "CMakeFiles/membw_analysis.dir/pin_trends.cc.o"
  "CMakeFiles/membw_analysis.dir/pin_trends.cc.o.d"
  "libmembw_analysis.a"
  "libmembw_analysis.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/membw_analysis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
