
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/analysis/extrapolation.cc" "src/analysis/CMakeFiles/membw_analysis.dir/extrapolation.cc.o" "gcc" "src/analysis/CMakeFiles/membw_analysis.dir/extrapolation.cc.o.d"
  "/root/repo/src/analysis/growth_models.cc" "src/analysis/CMakeFiles/membw_analysis.dir/growth_models.cc.o" "gcc" "src/analysis/CMakeFiles/membw_analysis.dir/growth_models.cc.o.d"
  "/root/repo/src/analysis/pin_trends.cc" "src/analysis/CMakeFiles/membw_analysis.dir/pin_trends.cc.o" "gcc" "src/analysis/CMakeFiles/membw_analysis.dir/pin_trends.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/membw_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
