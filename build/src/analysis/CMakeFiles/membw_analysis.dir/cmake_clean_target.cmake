file(REMOVE_RECURSE
  "libmembw_analysis.a"
)
