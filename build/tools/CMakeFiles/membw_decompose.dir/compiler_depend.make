# Empty compiler generated dependencies file for membw_decompose.
# This may be replaced when dependencies are built.
