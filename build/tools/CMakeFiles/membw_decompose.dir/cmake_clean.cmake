file(REMOVE_RECURSE
  "CMakeFiles/membw_decompose.dir/membw_decompose.cc.o"
  "CMakeFiles/membw_decompose.dir/membw_decompose.cc.o.d"
  "membw_decompose"
  "membw_decompose.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/membw_decompose.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
