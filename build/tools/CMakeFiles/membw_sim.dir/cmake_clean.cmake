file(REMOVE_RECURSE
  "CMakeFiles/membw_sim.dir/membw_sim.cc.o"
  "CMakeFiles/membw_sim.dir/membw_sim.cc.o.d"
  "membw_sim"
  "membw_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/membw_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
