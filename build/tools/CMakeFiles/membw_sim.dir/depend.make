# Empty dependencies file for membw_sim.
# This may be replaced when dependencies are built.
