#!/usr/bin/env bash
# Build, test, and regenerate every paper artifact into results/.
#
# Usage: scripts/reproduce.sh [scale]
#   scale  trace-length multiplier passed to every bench (default:
#          each bench's own default; larger values sharpen Table 8's
#          inefficiency ceilings at the cost of runtime).
set -euo pipefail
cd "$(dirname "$0")/.."

SCALE="${1:-}"

cmake -B build -G Ninja
cmake --build build
ctest --test-dir build --output-on-failure

mkdir -p results
for b in build/bench/*; do
    [ -f "$b" ] && [ -x "$b" ] || continue
    name=$(basename "$b")
    echo "== $name"
    # Every bench also emits machine-readable telemetry (manifest +
    # table records) next to its text artifact; see
    # docs/observability.md for the schema.
    if [ -n "$SCALE" ]; then
        "$b" --scale "$SCALE" --json "results/$name.json" \
            > "results/$name.txt"
    else
        "$b" --json "results/$name.json" > "results/$name.txt"
    fi
done
echo "All artifacts regenerated under results/ (.txt + .json)."
