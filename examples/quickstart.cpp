/**
 * @file
 * Quickstart: simulate a cache over a synthetic SPEC-like workload
 * and report the paper's three headline metrics — miss rate, traffic
 * ratio (Equation 4), and effective pin bandwidth (Equation 5).
 *
 * Usage: quickstart [workload] [cache-size-KB]
 */

#include <cstdio>
#include <cstdlib>
#include <string>

#include "cache/hierarchy.hh"
#include "metrics/traffic.hh"
#include "workloads/workload.hh"

using namespace membw;

int
main(int argc, char **argv)
{
    const std::string name = argc > 1 ? argv[1] : "Swm";
    const Bytes cache_kb = argc > 2 ? std::atoi(argv[2]) : 64;

    // 1. Generate a reference trace by *executing* the synthetic
    //    kernel that mirrors the SPEC benchmark's memory behaviour.
    auto workload = makeWorkload(name);
    WorkloadParams params;
    params.scale = 1.0;
    const Trace trace = workload->trace(params);
    const TraceStats ts = trace.stats();
    std::printf("%s: %zu references, %.2f MB touched "
                "(%.2f MB nominal data set)\n",
                name.c_str(), ts.refs,
                ts.footprintBytes / 1048576.0,
                workload->nominalDataSetBytes() / 1048576.0);

    // 2. Run it through a cache (the paper's Table 7 configuration).
    CacheConfig config;
    config.name = "L1";
    config.size = cache_kb * 1_KiB;
    config.assoc = 1;
    config.blockBytes = 32;
    const TrafficResult result = runTrace(trace, config);

    std::printf("cache: %s\n", config.describe().c_str());
    std::printf("  miss rate       : %.2f%%\n",
                result.l1.missRate() * 100.0);
    std::printf("  traffic above   : %.1f KB\n",
                result.requestBytes / 1024.0);
    std::printf("  traffic below   : %.1f KB\n",
                result.pinBytes / 1024.0);
    std::printf("  traffic ratio R : %.3f\n", result.trafficRatio);

    // 3. Effective pin bandwidth for a 1996-class 800 MB/s package.
    const double pin_bw = 800e6;
    const double e_pin =
        effectivePinBandwidth(pin_bw, result.levelRatios);
    std::printf("  E_pin           : %.0f MB/s (physical %.0f MB/s)"
                "\n",
                e_pin / 1e6, pin_bw / 1e6);
    if (result.trafficRatio > 1.0)
        std::printf("  NOTE: R > 1 — this cache AMPLIFIES traffic; "
                    "the processor would see\n  less bandwidth than "
                    "with no cache at all (Section 4.2).\n");
    return 0;
}
