/**
 * @file
 * Flexible-cache design explorer — the paper's Section 5.3/6
 * proposal that future machines let software tune cache parameters
 * per application.  Sweeps block size, associativity, and write
 * policy for one workload and reports the traffic-minimizing
 * design.
 *
 * Usage: cache_design_explorer [workload] [cache-size-KB]
 */

#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "cache/hierarchy.hh"
#include "common/stats.hh"
#include "common/table.hh"
#include "workloads/workload.hh"

using namespace membw;

int
main(int argc, char **argv)
{
    const std::string name = argc > 1 ? argv[1] : "Eqntott";
    const Bytes size_kb = argc > 2 ? std::atoi(argv[2]) : 64;
    const Bytes size = size_kb * 1_KiB;

    WorkloadParams params;
    params.scale = 0.5;
    const Trace trace = makeWorkload(name)->trace(params);
    std::printf("%s, %s cache: sweeping block size x associativity "
                "x write policy\n\n",
                name.c_str(), formatSize(size).c_str());

    struct Candidate
    {
        CacheConfig config;
        TrafficResult result;
    };
    std::vector<Candidate> all;

    TextTable t;
    t.header({"config", "miss%", "R", "traffic KB"});
    for (Bytes block : {4u, 16u, 32u, 64u, 128u}) {
        for (unsigned assoc : {1u, 4u, 0u}) {
            for (AllocPolicy alloc : {AllocPolicy::WriteAllocate,
                                      AllocPolicy::WriteValidate}) {
                CacheConfig cfg;
                cfg.size = size;
                cfg.assoc = assoc;
                cfg.blockBytes = block;
                cfg.alloc = alloc;
                const TrafficResult r = runTrace(trace, cfg);
                all.push_back({cfg, r});
                t.row({cfg.describe(),
                       fixed(r.l1.missRate() * 100, 1),
                       fixed(r.trafficRatio, 3),
                       std::to_string(r.pinBytes / 1024)});
            }
        }
    }
    std::printf("%s\n", t.render().c_str());

    const Candidate *best_traffic = &all[0];
    const Candidate *best_miss = &all[0];
    for (const Candidate &c : all) {
        if (c.result.pinBytes < best_traffic->result.pinBytes)
            best_traffic = &c;
        if (c.result.l1.missRate() < best_miss->result.l1.missRate())
            best_miss = &c;
    }
    std::printf("min traffic : %s (R=%.3f)\n",
                best_traffic->config.describe().c_str(),
                best_traffic->result.trafficRatio);
    std::printf("min misses  : %s (miss %.1f%%)\n",
                best_miss->config.describe().c_str(),
                best_miss->result.l1.missRate() * 100);
    if (!(best_traffic->config.blockBytes ==
              best_miss->config.blockBytes &&
          best_traffic->config.alloc == best_miss->config.alloc))
        std::printf("\nThe two optima differ — minimizing miss rate "
                    "is NOT minimizing traffic,\nwhich is why the "
                    "paper replaces miss rate with traffic ratio "
                    "when bandwidth\nis the constraint "
                    "(Section 4).\n");
    return 0;
}
