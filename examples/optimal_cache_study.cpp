/**
 * @file
 * Optimal-cache study: compare a real cache against the same-size
 * minimal-traffic cache (MTC) across sizes, reporting the traffic
 * inefficiency G and the resulting upper bound on effective pin
 * bandwidth (Equations 6-7).
 *
 * Usage: optimal_cache_study [workload]
 */

#include <cstdio>
#include <string>
#include <vector>

#include "cache/hierarchy.hh"
#include "common/stats.hh"
#include "common/table.hh"
#include "metrics/traffic.hh"
#include "mtc/min_cache.hh"
#include "workloads/workload.hh"

using namespace membw;

int
main(int argc, char **argv)
{
    const std::string name = argc > 1 ? argv[1] : "Compress";

    WorkloadParams params;
    params.scale = 1.0;
    auto workload = makeWorkload(name);
    const Trace trace = workload->trace(params);
    std::printf("%s: %zu refs, data set %.2f MB\n\n", name.c_str(),
                trace.size(),
                workload->nominalDataSetBytes() / 1048576.0);

    const double pin_bw_mb = 800.0; // physical package MB/s

    TextTable t;
    t.header({"size", "cache R", "MTC R", "G", "E_pin MB/s",
              "OE_pin MB/s"});
    for (Bytes size : {4_KiB, 16_KiB, 64_KiB, 256_KiB}) {
        if (size >= workload->nominalDataSetBytes())
            break;
        CacheConfig cfg;
        cfg.size = size;
        cfg.assoc = 1;
        cfg.blockBytes = 32;
        const TrafficResult cache = runTrace(trace, cfg);
        const MinCacheStats mtc =
            runMinCache(trace, canonicalMtc(size));

        const double g = trafficInefficiency(cache.pinBytes,
                                             mtc.trafficBelow());
        const std::vector<double> ratios{cache.trafficRatio};
        const std::vector<double> gaps{g};
        const double e_pin =
            effectivePinBandwidth(pin_bw_mb, ratios);
        const double oe_pin =
            optimalEffectivePinBandwidth(pin_bw_mb, ratios, gaps);

        t.row({formatSize(size), fixed(cache.trafficRatio, 3),
               fixed(mtc.trafficRatio(), 4), fixed(g, 1),
               fixed(e_pin, 0), fixed(oe_pin, 0)});
    }
    std::printf("%s\n", t.render().c_str());
    std::printf("OE_pin/E_pin = G: the headroom a perfectly-managed "
                "on-chip memory of the\nsame size would add "
                "(Section 5's \"one to two orders of magnitude\").\n");
    return 0;
}
