/**
 * @file
 * Execution-time decomposition demo: run one workload on one of the
 * paper's six machines (A-F) and split its runtime into processing,
 * latency-stall, and bandwidth-stall time (Section 2's f_P/f_L/f_B).
 *
 * Usage: decompose_execution [workload] [experiment A-F]
 */

#include <cstdio>
#include <string>

#include "cpu/experiment.hh"
#include "workloads/workload.hh"

using namespace membw;

int
main(int argc, char **argv)
{
    const std::string name = argc > 1 ? argv[1] : "Tomcatv";
    const char letter = argc > 2 ? argv[2][0] : 'F';
    const bool spec95 =
        std::find(spec95Names().begin(), spec95Names().end(), name) !=
        spec95Names().end();

    WorkloadParams params;
    params.scale = 0.5;
    const auto run = makeWorkload(name)->run(params);
    const InstrStream stream = InstrStream::fromRun(run, codeFootprintBytes(name), params.seed);

    const ExperimentConfig config = makeExperiment(letter, spec95);
    std::printf("%s on experiment %s (%.0f MHz)\n", name.c_str(),
                config.describe().c_str(), config.cpuMHz);
    std::printf("stream: %zu micro-ops (%llu loads, %llu stores, "
                "%llu branches)\n\n",
                stream.size(),
                static_cast<unsigned long long>(stream.loadCount()),
                static_cast<unsigned long long>(stream.storeCount()),
                static_cast<unsigned long long>(
                    stream.branchCount()));

    const DecompositionResult r = runDecomposition(stream, config);

    std::printf("T_P (perfect memory)      : %llu cycles\n",
                static_cast<unsigned long long>(
                    r.split.perfectCycles));
    std::printf("T_I (infinite-width paths): %llu cycles\n",
                static_cast<unsigned long long>(
                    r.split.infiniteCycles));
    std::printf("T   (full system)         : %llu cycles\n\n",
                static_cast<unsigned long long>(r.split.fullCycles));

    auto bar = [](double f) {
        std::string s;
        for (int i = 0; i < static_cast<int>(f * 50 + 0.5); ++i)
            s += '#';
        return s;
    };
    std::printf("f_P = %5.1f%%  %s\n", r.split.fP() * 100,
                bar(r.split.fP()).c_str());
    std::printf("f_L = %5.1f%%  %s\n", r.split.fL() * 100,
                bar(r.split.fL()).c_str());
    std::printf("f_B = %5.1f%%  %s\n\n", r.split.fB() * 100,
                bar(r.split.fB()).c_str());

    std::printf("IPC %.2f | L1 misses %llu | L2 misses %llu | "
                "mispredicts %llu | wrong-path loads %llu\n",
                r.full.ipc,
                static_cast<unsigned long long>(r.full.mem.l1Misses),
                static_cast<unsigned long long>(r.full.mem.l2Misses),
                static_cast<unsigned long long>(r.full.mispredicts),
                static_cast<unsigned long long>(
                    r.full.mem.wrongPathLoads));
    if (r.split.fB() > r.split.fL())
        std::printf("\nBandwidth stalls exceed latency stalls — the "
                    "paper's thesis in action.\n");
    return 0;
}
