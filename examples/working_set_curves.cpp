/**
 * @file
 * Working-set curves via one-pass stack-distance profiling.
 *
 * A fifth use of the public API: Mattson's stack algorithm yields
 * the fully-associative LRU miss ratio of *every* cache size from a
 * single pass, exposing each benchmark's working-set knees — the
 * structure behind the Table 7 columns.
 *
 * Usage: working_set_curves [workload ...]
 */

#include <cstdio>
#include <string>
#include <vector>

#include "cache/config.hh"
#include "cache/stack_distance.hh"
#include "common/stats.hh"
#include "common/table.hh"
#include "workloads/workload.hh"

using namespace membw;

int
main(int argc, char **argv)
{
    std::vector<std::string> names;
    for (int i = 1; i < argc; ++i)
        names.push_back(argv[i]);
    if (names.empty())
        names = {"Compress", "Espresso", "Swm"};

    const std::vector<Bytes> sizes = {
        1_KiB,  2_KiB,  4_KiB,   8_KiB,   16_KiB, 32_KiB,
        64_KiB, 128_KiB, 256_KiB, 512_KiB, 1_MiB};

    for (const auto &name : names) {
        WorkloadParams params;
        params.scale = 0.5;
        const Trace trace = makeWorkload(name)->trace(params);
        const StackDistanceProfile profile(trace, 32);

        std::printf("%s: %llu refs, %llu cold misses\n", name.c_str(),
                    static_cast<unsigned long long>(
                        profile.references()),
                    static_cast<unsigned long long>(
                        profile.coldMisses()));

        TextTable t;
        t.header({"size", "miss ratio", "curve"});
        double prev = 1.0;
        for (Bytes size : sizes) {
            const double mr = profile.missRatioAtSize(size);
            std::string bar;
            for (int i = 0; i < static_cast<int>(mr * 60 + 0.5); ++i)
                bar += '*';
            // Mark working-set knees: a halving between octaves.
            const bool knee = mr < prev * 0.5;
            t.row({formatSize(size), fixed(mr, 4),
                   bar + (knee ? "  <- knee" : "")});
            prev = mr;
        }
        std::printf("%s\n", t.render().c_str());
    }
    std::printf("Knees mark working sets becoming resident — where "
                "Table 7's per-benchmark\ntraffic ratios drop.\n");
    return 0;
}
